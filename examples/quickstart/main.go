// Quickstart: share one simulated Fermi GPU among four SPMD worker
// processes through the GPU Virtualization Manager.
//
// Each worker sees its own Virtual GPU, sends a vector-addition task
// through the REQ/SND/STR/STP/RCV/RLS protocol, and gets real results
// back — the device runs in functional mode. The run prints each
// worker's turnaround in virtual time and the device statistics showing
// zero context switches.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/vgpu"
)

const (
	workers = 4
	n       = 1 << 20 // 1M floats per worker
)

func main() {
	env := sim.NewEnv()
	// ExecWorkers sizes the pool that runs functional kernel bodies:
	// 0 = one worker per core, 1 = the serial reference path. Results are
	// bit-identical either way (DESIGN.md §3, SerialOnly contract).
	dev, err := gpusim.New(env, gpusim.Config{Arch: fermi.TeslaC2070(), Functional: true, ExecWorkers: 0})
	if err != nil {
		log.Fatal(err)
	}

	// One manager owns the device's only context; its STR barrier spans
	// all four workers so their streams flush together.
	mgr := gvm.New(env, gvm.Config{Device: dev, Parties: workers})
	mgr.Start()

	spec := &task.Spec{
		Name:     "vecadd",
		InBytes:  2 * n * 4,
		OutBytes: n * 4,
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			return []*cuda.Kernel{kernels.NewVecAdd(b.In, b.In+cuda.DevPtr(n*4), b.Out, n)}, nil
		},
	}

	for w := 0; w < workers; w++ {
		w := w
		env.Go(fmt.Sprintf("worker-%d", w), func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			start := p.Now()

			v, err := vgpu.Connect(p, mgr, spec)
			if err != nil {
				log.Fatalf("worker %d: %v", w, err)
			}
			in := make([]float32, 2*n)
			for i := 0; i < n; i++ {
				in[i] = float32(i)
				in[n+i] = float32(w * 1000)
			}
			out := make([]byte, n*4)
			if err := v.RunCycle(p, cuda.HostFloat32Bytes(in), out); err != nil {
				log.Fatalf("worker %d: %v", w, err)
			}
			res := cuda.Float32s(byteMem(out), 0, n)
			for i := 0; i < n; i++ {
				if res[i] != float32(i)+float32(w*1000) {
					log.Fatalf("worker %d: wrong result at %d: %g", w, i, res[i])
				}
			}
			if err := v.Release(p); err != nil {
				log.Fatalf("worker %d: %v", w, err)
			}
			fmt.Printf("worker %d: %d elements verified, turnaround %.2f ms (virtual)\n",
				w, n, p.Now().Sub(start).Seconds()*1e3)
		})
	}

	if err := env.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndevice: %d kernels, %d context switches (virtualization keeps it at zero)\n",
		dev.KernelsRun, dev.ContextSwitches)
	fmt.Printf("manager: %d sessions served, %d barrier flushes\n",
		mgr.SessionsOpened(), mgr.Flushes())
}

type byteMem []byte

func (b byteMem) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }
