// Cluster: node-local GPU virtualization vs rCUDA-style remote access.
//
// The paper targets nodes whose cores outnumber their GPUs; its related
// work [11] instead shares GPUs *across* nodes, which the paper argues
// "can result in communication overheads in accessing GPUs from remote
// compute nodes". This example measures both, two ways:
//
// Simulated (default) — on the simulated cluster:
//
//	A) one GPU node, 8 cores, node-local GVM (the paper's design);
//	B) eight GPU-less nodes reaching the same GPU over the interconnect,
//	   once on QDR InfiniBand and once on gigabit Ethernet.
//
// Real (-real) — with actual OS processes against a live gvmd: the same
// SPMD job runs twice, first against a Unix-socket daemon with /dev/shm
// segments as the data plane (node-local shape), then against a TCP
// daemon with payloads inline on the wire (the rCUDA shape, here over
// loopback). Both runs are measured in wall-clock time, so the protocol
// and data-plane overhead of remote access is observed, not modeled.
//
// The remote shape extends one level up: put a gvmfed federation
// router in front of several TCP gvmd nodes (see the README's
// "Federation" section) and point examples/multiprocess -connect at
// the router — the same SPMD job then measures the two-level shape,
// with node placement and cross-node failover in the path. The router
// forces payloads inline exactly like the rCUDA-shape run here, so its
// extra hop is directly comparable.
//
// Run with: go run ./examples/cluster [-real [-procs 4] [-n 1000000]]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"gpuvirt/internal/cluster"
	"gpuvirt/internal/cuda"
	"gpuvirt/internal/ipc"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

func main() {
	real := flag.Bool("real", false, "run real client processes against live daemons instead of the simulated cluster")
	procs := flag.Int("procs", 4, "worker processes per real run")
	nFlag := flag.Int("n", 1_000_000, "vector elements per real worker (8n bytes in, 4n out)")
	role := flag.String("role", "", "internal: worker")
	addr := flag.String("addr", "", "internal: daemon address")
	rank := flag.Int("rank", 0, "internal: worker rank")
	flag.Parse()

	if *role == "worker" {
		if err := worker(*addr, *rank, *nFlag); err != nil {
			log.Fatalf("worker %d: %v", *rank, err)
		}
		return
	}
	if *real {
		realComparison(*procs, *nFlag)
		return
	}
	simulated()
}

// simulated is the modeled comparison on the simulated cluster.
func simulated() {
	w := workloads.VectorAdd(10_000_000) // 80 MB in, 40 MB out per process
	spec := func(node, rank int) *task.Spec { return w.Spec(rank) }

	local := runJob(cluster.Config{
		Nodes: 1, GPUNodes: 1, CoresPerNode: 8, Parties: 8,
	}, 8, spec)
	fmt.Printf("A) local virtualization, 8 procs on the GPU node:\n")
	fmt.Printf("     turnaround %8.1f ms, network time 0\n", local.Turnaround.Seconds()*1e3)

	for _, net := range []struct {
		name string
		ic   cluster.Interconnect
	}{
		{"QDR InfiniBand", cluster.QDRInfiniBand()},
		{"gigabit Ethernet", cluster.GigabitEthernet()},
	} {
		remote := runJob(cluster.Config{
			Nodes: 9, GPUNodes: 1, CoresPerNode: 1, Interconnect: net.ic,
		}, 1, spec)
		fmt.Printf("B) remote access over %s, 8 GPU-less nodes + 1 idle GPU node:\n", net.name)
		fmt.Printf("     turnaround %8.1f ms (%.2fx local), %d remote procs, %8.1f ms on the wire\n",
			remote.Turnaround.Seconds()*1e3,
			remote.Turnaround.Seconds()/local.Turnaround.Seconds(),
			remote.RemoteProcs,
			remote.NetworkTime.Seconds()*1e3)
	}
	fmt.Println("\nnode-local virtualization avoids every network hop — the paper's Section II argument quantified")
}

func runJob(cfg cluster.Config, procsPerNode int, spec func(node, rank int) *task.Spec) cluster.JobResult {
	env := sim.NewEnv()
	c, err := cluster.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunJob(procsPerNode, spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// realComparison runs the same SPMD job against two live daemons: a
// unix-socket one on the shm plane, then a TCP one on the inline plane.
func realComparison(procs, n int) {
	fmt.Printf("real mode: %d worker processes, %d elements each (%.1f MB in, %.1f MB out per proc)\n",
		procs, n, float64(8*n)/1e6, float64(4*n)/1e6)

	unixWall := realRun("unix", procs, n)
	tcpWall := realRun("tcp", procs, n)

	fmt.Printf("\nA) node-local    (unix socket + shm segments):  %8.1f ms wall\n", unixWall.Seconds()*1e3)
	fmt.Printf("B) rCUDA-style   (tcp + payloads on the wire):  %8.1f ms wall (%.2fx local)\n",
		tcpWall.Seconds()*1e3, tcpWall.Seconds()/unixWall.Seconds())
	fmt.Println("\nsame protocol, same daemon — only the transport and data plane differ (tcp here is loopback; a real network adds its latency on top)")
}

// realRun brings up a daemon on the given transport, drives procs worker
// processes through one full cycle each, and returns the wall time from
// first spawn to last exit.
func realRun(scheme string, procs, n int) time.Duration {
	dir, err := os.MkdirTemp("", "gvmd-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	listen := "tcp://127.0.0.1:0"
	if scheme == "unix" {
		listen = "unix://" + filepath.Join(dir, "gvmd.sock")
	}
	srv, err := ipc.NewServer(ipc.ServerConfig{
		Listen:     []string{listen},
		Parties:    procs,
		Functional: true,
		ShmDir:     dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addrs()[0]
	fmt.Printf("\n%s daemon on %s:\n", scheme, addr)

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	cmds := make([]*exec.Cmd, procs)
	for i := range cmds {
		cmds[i] = exec.Command(self,
			"-role=worker", "-addr="+addr, fmt.Sprintf("-rank=%d", i), fmt.Sprintf("-n=%d", n))
		cmds[i].Stdout = os.Stdout
		cmds[i].Stderr = os.Stderr
		cmds[i].Env = append(os.Environ(), "GVMD_SHM_DIR="+dir)
		if err := cmds[i].Start(); err != nil {
			log.Fatal(err)
		}
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("worker %d failed: %v", i, err)
		}
	}
	return time.Since(start)
}

func worker(addr string, rank, n int) error {
	client, err := ipc.Dial(addr, os.Getenv("GVMD_SHM_DIR"))
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	sess, err := client.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, rank)
	if err != nil {
		return err
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i % 1024)
		in[n+i] = float32(rank + 1)
	}
	out := make([]byte, n*4)
	if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
		return err
	}
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(i%1024)+float32(rank+1) {
			return fmt.Errorf("bad result at %d: %g", i, res[i])
		}
	}
	if err := sess.Release(); err != nil {
		return err
	}
	fmt.Printf("  worker %d: %s plane, turnaround %.1f ms wall\n",
		rank, sess.Plane(), time.Since(start).Seconds()*1e3)
	return nil
}

type byteMem []byte

func (b byteMem) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }
