// Cluster: node-local GPU virtualization vs rCUDA-style remote access.
//
// The paper targets nodes whose cores outnumber their GPUs; its related
// work [11] instead shares GPUs *across* nodes, which the paper argues
// "can result in communication overheads in accessing GPUs from remote
// compute nodes". This example measures both on the simulated cluster:
//
//	A) one GPU node, 8 cores, node-local GVM (the paper's design);
//	B) eight GPU-less nodes reaching the same GPU over the interconnect,
//	   once on QDR InfiniBand and once on gigabit Ethernet.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"gpuvirt/internal/cluster"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

func main() {
	w := workloads.VectorAdd(10_000_000) // 80 MB in, 40 MB out per process
	spec := func(node, rank int) *task.Spec { return w.Spec(rank) }

	local := runJob(cluster.Config{
		Nodes: 1, GPUNodes: 1, CoresPerNode: 8, Parties: 8,
	}, 8, spec)
	fmt.Printf("A) local virtualization, 8 procs on the GPU node:\n")
	fmt.Printf("     turnaround %8.1f ms, network time 0\n", local.Turnaround.Seconds()*1e3)

	for _, net := range []struct {
		name string
		ic   cluster.Interconnect
	}{
		{"QDR InfiniBand", cluster.QDRInfiniBand()},
		{"gigabit Ethernet", cluster.GigabitEthernet()},
	} {
		remote := runJob(cluster.Config{
			Nodes: 9, GPUNodes: 1, CoresPerNode: 1, Interconnect: net.ic,
		}, 1, spec)
		fmt.Printf("B) remote access over %s, 8 GPU-less nodes + 1 idle GPU node:\n", net.name)
		fmt.Printf("     turnaround %8.1f ms (%.2fx local), %d remote procs, %8.1f ms on the wire\n",
			remote.Turnaround.Seconds()*1e3,
			remote.Turnaround.Seconds()/local.Turnaround.Seconds(),
			remote.RemoteProcs,
			remote.NetworkTime.Seconds()*1e3)
	}
	fmt.Println("\nnode-local virtualization avoids every network hop — the paper's Section II argument quantified")
}

func runJob(cfg cluster.Config, procsPerNode int, spec func(node, rank int) *task.Spec) cluster.JobResult {
	env := sim.NewEnv()
	c, err := cluster.New(env, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunJob(procsPerNode, spec)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
