// Black-Scholes option pricing under SPMD GPU sharing.
//
// Eight pricing processes (one per CPU core of the paper's node) each
// price a book of European options on the shared GPU, first through the
// conventional per-process-context path, then through the virtualization
// manager. The example prices real options (functional mode), verifies
// put-call parity on the results, and reports the turnaround-time
// speedup the virtualization layer delivers.
//
// Run with: go run ./examples/blackscholes
package main

import (
	"fmt"
	"log"
	"math"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/workloads"
)

func main() {
	const (
		procs   = 8
		options = 100_000 // per process; reduced from the paper's 1M for a fast functional demo
		nit     = 4
		grid    = 480
	)
	w := workloads.BlackScholes(options, nit, grid)

	cfg := spmd.Config{
		Arch:       fermi.TeslaC2070(),
		N:          procs,
		Functional: true,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
		FillInput:  w.Fill,
		CheckOutput: func(rank int, out []byte) error {
			if err := w.Check(rank, out); err != nil {
				return err
			}
			return checkParity(rank, out, options)
		},
	}

	direct, err := spmd.RunDirect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	virt, err := spmd.RunVirt(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Black-Scholes: %d processes x %d options, %d iterations, grid %d\n",
		procs, options, nit, grid)
	fmt.Printf("  direct sharing:   %8.1f ms  (%d context switches)\n",
		direct.Turnaround.Seconds()*1e3, direct.ContextSwitches)
	fmt.Printf("  virtualized:      %8.1f ms  (%d context switches, %d barrier flushes)\n",
		virt.Turnaround.Seconds()*1e3, virt.ContextSwitches, virt.Flushes)
	fmt.Printf("  speedup:          %8.2fx\n",
		direct.Turnaround.Seconds()/virt.Turnaround.Seconds())
	fmt.Println("  all books priced and verified: values match the host reference and satisfy put-call parity")
}

// checkParity verifies C - P = S - X e^{-rT} across the book.
func checkParity(rank int, out []byte, n int) error {
	p := kernels.DefaultBSParams()
	// Rebuild this rank's inputs the same way the workload filled them.
	w := workloads.BlackScholes(n, 1, 4)
	in := make([]byte, w.Spec(rank).InBytes)
	w.Fill(rank, in)
	s := floats(in, 0, n)
	x := floats(in, n*4, n)
	tm := floats(in, 2*n*4, n)
	call := floats(out, 0, n)
	put := floats(out, n*4, n)
	for i := 0; i < n; i++ {
		lhs := float64(call[i]) - float64(put[i])
		rhs := float64(s[i]) - float64(x[i])*math.Exp(-float64(p.Riskfree)*float64(tm[i]))
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(rhs)) {
			return fmt.Errorf("rank %d option %d violates put-call parity: %g vs %g", rank, i, lhs, rhs)
		}
	}
	return nil
}

func floats(b []byte, off, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		bits := uint32(b[off+4*i]) | uint32(b[off+4*i+1])<<8 |
			uint32(b[off+4*i+2])<<16 | uint32(b[off+4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}
