// Molecular electrostatics under SPMD GPU sharing: the VMD-style direct
// Coulomb summation from the paper's Table IV.
//
// Each of the eight processes owns one slab of a molecular system and
// computes the electrostatic potential of its atoms on a lattice slice —
// the way VMD parallelizes cionize across nodes. The example runs
// functionally (real potentials, validated against the host reference),
// compares both sharing modes and prints a small section of the
// potential map.
//
// Run with: go run ./examples/molecular
package main

import (
	"fmt"
	"log"
	"math"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/workloads"
)

func main() {
	const (
		procs  = 8
		atoms  = 2000 // per process; the paper's 100K runs in timing mode via gvmbench
		nit    = 2
		blocks = 48
		gridX  = 64
		gridY  = 48
	)
	w := workloads.Electrostatics(atoms, nit, blocks, gridX, gridY)

	var potential []float32 // rank 0's map, for display
	cfg := spmd.Config{
		Arch:       fermi.TeslaC2070(),
		N:          procs,
		Functional: true,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
		FillInput:  w.Fill,
		CheckOutput: func(rank int, out []byte) error {
			if err := w.Check(rank, out); err != nil {
				return err
			}
			if rank == 0 {
				potential = decodeF32(out, gridX*gridY)
			}
			return nil
		},
	}

	direct, err := spmd.RunDirect(cfg)
	if err != nil {
		log.Fatal(err)
	}
	virt, err := spmd.RunVirt(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Electrostatics: %d processes x %d atoms onto a %dx%d lattice slice (%d planes)\n",
		procs, atoms, gridX, gridY, nit)
	fmt.Printf("  direct sharing: %8.1f ms    virtualized: %8.1f ms    speedup %.2fx\n",
		direct.Turnaround.Seconds()*1e3, virt.Turnaround.Seconds()*1e3,
		direct.Turnaround.Seconds()/virt.Turnaround.Seconds())

	fmt.Println("\npotential map (rank 0, every 8th lattice point, sign-magnitude glyphs):")
	for y := 0; y < gridY; y += 8 {
		for x := 0; x < gridX; x += 2 {
			fmt.Printf("%c", glyph(potential[y*gridX+x]))
		}
		fmt.Println()
	}
}

func decodeF32(b []byte, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		bits := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

// glyph maps a potential value to a character by magnitude and sign.
func glyph(v float32) byte {
	ramp := []byte(" .:-=+*#%@")
	mag := math.Log1p(math.Abs(float64(v)))
	idx := int(mag * 3)
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	if v < 0 {
		lower := []byte(" ,;~^'\"oO0")
		return lower[idx]
	}
	return ramp[idx]
}
