// Multiprocess: real OS processes sharing the GPU through the gvmd
// daemon, over Unix-domain sockets and /dev/shm segments.
//
// The parent process starts an in-process daemon with an STR barrier
// spanning all workers, then spawns itself N times with -role=worker.
// Each worker process dials the daemon, opens a VGPU session for a
// vector-add task, runs one full protocol cycle with real data and
// verifies the results. This is the paper's deployment shape: one GVM
// run-time per node, one SPMD process per core.
//
// Run with: go run ./examples/multiprocess
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/ipc"
	"gpuvirt/internal/workloads"
)

const (
	workers = 4
	n       = 1 << 16 // floats per worker
)

func main() {
	role := flag.String("role", "parent", "internal: parent|worker")
	socket := flag.String("socket", "", "internal: daemon socket path")
	rank := flag.Int("rank", 0, "internal: worker rank")
	flag.Parse()

	switch *role {
	case "parent":
		parent()
	case "worker":
		if err := worker(*socket, *rank); err != nil {
			log.Fatalf("worker %d: %v", *rank, err)
		}
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

func parent() {
	dir, err := os.MkdirTemp("", "gvmd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	socket := filepath.Join(dir, "gvmd.sock")

	srv, err := ipc.NewServer(ipc.ServerConfig{
		Socket:      socket,
		Parties:     workers, // barrier: all workers' streams flush together
		Functional:  true,
		ShmDir:      dir,
		ExecWorkers: 0, // kernel-execution pool: one worker per core
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("parent: daemon on %s, spawning %d worker processes\n", socket, workers)

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmds := make([]*exec.Cmd, workers)
	for i := range cmds {
		cmds[i] = exec.Command(self,
			"-role=worker", "-socket="+socket, fmt.Sprintf("-rank=%d", i))
		cmds[i].Stdout = os.Stdout
		cmds[i].Stderr = os.Stderr
		cmds[i].Env = append(os.Environ(), "GVMD_SHM_DIR="+dir)
		if err := cmds[i].Start(); err != nil {
			log.Fatal(err)
		}
	}
	failed := false
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Printf("worker %d failed: %v", i, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("parent: all workers verified their results through the daemon")
}

func worker(socket string, rank int) error {
	client, err := ipc.Dial(socket, os.Getenv("GVMD_SHM_DIR"))
	if err != nil {
		return err
	}
	defer client.Close()

	sess, err := client.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, rank)
	if err != nil {
		return err
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i)
		in[n+i] = float32(rank + 1)
	}
	out := make([]byte, n*4)
	if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
		return err
	}
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(i)+float32(rank+1) {
			return fmt.Errorf("bad result at %d: %g", i, res[i])
		}
	}
	virtMS := sess.VirtualMS
	if err := sess.Release(); err != nil {
		return err
	}
	fmt.Printf("worker %d (pid %d): %d elements verified, device clock %.2f ms\n",
		rank, os.Getpid(), n, virtMS)
	return nil
}

type byteMem []byte

func (b byteMem) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }
