// Multiprocess: real OS processes sharing the GPU through the gvmd
// daemon.
//
// By default the parent process starts an in-process daemon on a
// Unix-domain socket (with /dev/shm segments as the data plane) and an
// STR barrier spanning all workers, then spawns itself N times with
// -role=worker. Each worker process dials the daemon, opens a VGPU
// session for a vector-add task, runs one full protocol cycle with real
// data and verifies the results. This is the paper's deployment shape:
// one GVM run-time per node, one SPMD process per core.
//
// With -connect the parent skips the in-process daemon and points the
// workers at an already-running gvmd instead — any transport the daemon
// listens on works, e.g. -connect tcp://127.0.0.1:7070 for remote-style
// access with payloads inline on the wire (start that daemon with
// -parties matching -workers).
//
// Run with: go run ./examples/multiprocess
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/ipc"
	"gpuvirt/internal/workloads"
)

const n = 1 << 16 // floats per worker

func main() {
	role := flag.String("role", "parent", "internal: parent|worker")
	addr := flag.String("addr", "", "internal: daemon address for workers")
	rank := flag.Int("rank", 0, "internal: worker rank")
	workers := flag.Int("workers", 4, "number of SPMD worker processes")
	connect := flag.String("connect", "", "dial an external gvmd at this address (unix:///path or tcp://host:port) instead of starting one in-process")
	timeout := flag.Duration("timeout", 0, "per-request I/O timeout on client round trips (0 = none)")
	duration := flag.Duration("duration", 0, "keep re-running full verified cycles until this much wall time has elapsed (0 = one cycle); spans daemon restarts for failover drills")
	weight := flag.Int("weight", 0, "this worker's weighted-fair SM share (0 = derive from -priority)")
	priority := flag.Int("priority", 0, "this worker's session priority (eviction order and default weight class)")
	weights := flag.String("weights", "", "comma-separated per-rank weights, e.g. 1,1,4,8 (padded with the last value)")
	priorities := flag.String("priorities", "", "comma-separated per-rank priorities (padded with the last value)")
	flag.Parse()

	switch *role {
	case "parent":
		parent(*workers, *connect, *timeout, *duration, perRank(*weights, *workers), perRank(*priorities, *workers))
	case "worker":
		if err := worker(*addr, *rank, *timeout, *duration, *weight, *priority); err != nil {
			log.Fatalf("worker %d: %v", *rank, err)
		}
	default:
		log.Fatalf("unknown role %q", *role)
	}
}

// perRank parses a comma-separated int list into one value per rank,
// padding short lists with their last entry (so -weights 1,8 over four
// workers means 1,8,8,8) and zeros when the flag is unset.
func perRank(list string, n int) []int {
	vals := make([]int, n)
	if list == "" {
		return vals
	}
	parts := strings.Split(list, ",")
	last := 0
	for i := 0; i < n; i++ {
		if i < len(parts) {
			v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
			if err != nil {
				log.Fatalf("bad per-rank list %q: %v", list, err)
			}
			last = v
		}
		vals[i] = last
	}
	return vals
}

func parent(workers int, connect string, timeout, duration time.Duration, weights, priorities []int) {
	addr := connect
	shmDir := os.Getenv("GVMD_SHM_DIR")
	if connect == "" {
		dir, err := os.MkdirTemp("", "gvmd-example")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		shmDir = dir

		srv, err := ipc.NewServer(ipc.ServerConfig{
			Socket:      filepath.Join(dir, "gvmd.sock"),
			Parties:     workers, // barrier: all workers' streams flush together
			Functional:  true,
			ShmDir:      dir,
			ExecWorkers: 0, // kernel-execution pool: one worker per core
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr = srv.Addr()
	}
	fmt.Printf("parent: daemon on %s, spawning %d worker processes\n", addr, workers)

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmds := make([]*exec.Cmd, workers)
	for i := range cmds {
		cmds[i] = exec.Command(self,
			"-role=worker", "-addr="+addr, fmt.Sprintf("-rank=%d", i),
			fmt.Sprintf("-timeout=%s", timeout),
			fmt.Sprintf("-duration=%s", duration),
			fmt.Sprintf("-weight=%d", weights[i]),
			fmt.Sprintf("-priority=%d", priorities[i]))
		cmds[i].Stdout = os.Stdout
		cmds[i].Stderr = os.Stderr
		cmds[i].Env = append(os.Environ(), "GVMD_SHM_DIR="+shmDir)
		if err := cmds[i].Start(); err != nil {
			log.Fatal(err)
		}
	}
	failed := false
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Printf("worker %d failed: %v", i, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("parent: all workers verified their results through the daemon")
}

func worker(addr string, rank int, timeout, duration time.Duration, weight, priority int) error {
	client, err := ipc.DialOptions(addr, ipc.Options{
		ShmDir:  os.Getenv("GVMD_SHM_DIR"),
		Timeout: timeout,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	sess, err := client.RequestOptions(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, rank,
		ipc.SessionOptions{Weight: weight, Priority: priority})
	if err != nil {
		return err
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i)
		in[n+i] = float32(rank + 1)
	}
	out := make([]byte, n*4)
	cycles := 0
	for {
		if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
			return fmt.Errorf("cycle %d: %w", cycles, err)
		}
		res := cuda.Float32s(byteMem(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != float32(i)+float32(rank+1) {
				return fmt.Errorf("cycle %d: bad result at %d: %g", cycles, i, res[i])
			}
		}
		cycles++
		if time.Since(start) >= duration {
			break
		}
	}
	virtMS := sess.VirtualMS
	if err := sess.Release(); err != nil {
		return err
	}
	fmt.Printf("worker %d (pid %d): %d elements verified over %s plane in %d cycle(s), turnaround %.1f ms wall, device clock %.2f ms\n",
		rank, os.Getpid(), n, sess.Plane(), cycles, time.Since(start).Seconds()*1e3, virtMS)
	return nil
}

type byteMem []byte

func (b byteMem) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }
