#!/bin/sh
# End-to-end smoke test: a gvmd daemon on a TCP loopback port, driven by
# the multiprocess example as two real client processes. Passes only if
# every worker verifies its results and reports a turnaround time.
set -eu

workdir=$(mktemp -d)
bindir="$workdir/bin"
addrfile="$workdir/gvmd.addr"
logfile="$workdir/gvmd.log"
gvmd_pid=""

cleanup() {
    if [ -n "$gvmd_pid" ] && kill -0 "$gvmd_pid" 2>/dev/null; then
        kill "$gvmd_pid" 2>/dev/null || true
        wait "$gvmd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "smoke: building gvmd and the multiprocess example"
${GO:-go} build -o "$bindir/gvmd" ./cmd/gvmd
${GO:-go} build -o "$bindir/multiprocess" ./examples/multiprocess

echo "smoke: starting gvmd on a TCP loopback port"
"$bindir/gvmd" -listen tcp://127.0.0.1:0 -parties 2 -addr-file "$addrfile" \
    >"$logfile" 2>&1 &
gvmd_pid=$!

# The daemon writes the addr file only once every listener is bound.
tries=0
while [ ! -s "$addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: gvmd never published its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
    if ! kill -0 "$gvmd_pid" 2>/dev/null; then
        echo "smoke: gvmd exited early" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n1 "$addrfile")
echo "smoke: gvmd is serving on $addr"

out=$("$bindir/multiprocess" -workers 2 -connect "$addr")
echo "$out"

turnarounds=$(echo "$out" | grep -c "turnaround" || true)
if [ "$turnarounds" -ne 2 ]; then
    echo "smoke: expected 2 worker turnaround lines, got $turnarounds" >&2
    exit 1
fi

kill "$gvmd_pid"
wait "$gvmd_pid" 2>/dev/null || true
gvmd_pid=""
if [ -e "$addrfile" ]; then
    echo "smoke: gvmd left its addr file behind on shutdown" >&2
    exit 1
fi
echo "smoke: OK"
