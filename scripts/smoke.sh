#!/bin/sh
# End-to-end smoke test: a 2-shard gvmd daemon on a TCP loopback port,
# driven by the multiprocess example as four real client processes.
# Passes only if every worker verifies its results and reports a
# turnaround time, and the daemon's /metrics endpoint serves well-formed
# Prometheus text with nonzero verb counters and sessions placed on BOTH
# gpu labels after the round.
set -eu

# fetch URL: curl if present, wget fallback.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    elif command -v wget >/dev/null 2>&1; then
        wget -qO- "$1"
    else
        echo "smoke: neither curl nor wget available" >&2
        return 1
    fi
}

workdir=$(mktemp -d)
bindir="$workdir/bin"
addrfile="$workdir/gvmd.addr"
logfile="$workdir/gvmd.log"
gvmd_pid=""

cleanup() {
    if [ -n "$gvmd_pid" ] && kill -0 "$gvmd_pid" 2>/dev/null; then
        kill "$gvmd_pid" 2>/dev/null || true
        wait "$gvmd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "smoke: building gvmd and the multiprocess example"
${GO:-go} build -o "$bindir/gvmd" ./cmd/gvmd
${GO:-go} build -o "$bindir/multiprocess" ./examples/multiprocess

echo "smoke: starting a 2-shard gvmd on a TCP loopback port"
# Two shards at -parties 2 each: the 4 workers split 2/2 under
# least-sessions placement and each shard's own STR barrier fills.
"$bindir/gvmd" -listen tcp://127.0.0.1:0 -gpus 2 -parties 2 \
    -placement least-sessions -addr-file "$addrfile" \
    -metrics 127.0.0.1:0 \
    >"$logfile" 2>&1 &
gvmd_pid=$!

# The daemon writes the addr file only once every listener is bound.
tries=0
while [ ! -s "$addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: gvmd never published its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
    if ! kill -0 "$gvmd_pid" 2>/dev/null; then
        echo "smoke: gvmd exited early" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n1 "$addrfile")
metrics_url=$(grep '^http://' "$addrfile" | head -n1)
echo "smoke: gvmd is serving on $addr (metrics at $metrics_url)"
if [ -z "$metrics_url" ]; then
    echo "smoke: gvmd did not publish a metrics URL in its addr file" >&2
    exit 1
fi

out=$("$bindir/multiprocess" -workers 4 -connect "$addr")
echo "$out"

turnarounds=$(echo "$out" | grep -c "turnaround" || true)
if [ "$turnarounds" -ne 4 ]; then
    echo "smoke: expected 4 worker turnaround lines, got $turnarounds" >&2
    exit 1
fi

echo "smoke: scraping $metrics_url"
scrape=$(fetch "$metrics_url")
if [ -z "$scrape" ]; then
    echo "smoke: /metrics scrape returned nothing" >&2
    exit 1
fi
# Every non-comment line must be a valid Prometheus text sample:
# name{labels} value, where value is an optionally signed integer.
bad=$(echo "$scrape" | grep -v '^#' | grep -vE '^[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})? -?[0-9]+$' || true)
if [ -n "$bad" ]; then
    echo "smoke: malformed Prometheus sample line(s):" >&2
    echo "$bad" >&2
    exit 1
fi
# Four workers each sent one STR — the verb counter must be nonzero.
str_count=$(echo "$scrape" | grep -E '^gvmd_verb_requests_total\{verb="STR"\} [0-9]+$' | awk '{print $2}')
if [ -z "$str_count" ] || [ "$str_count" -eq 0 ]; then
    echo "smoke: gvmd_verb_requests_total{verb=\"STR\"} missing or zero after a four-process round" >&2
    echo "$scrape" | grep '^gvmd_verb' >&2 || true
    exit 1
fi
# The placement layer spread the sessions: both shards opened some.
for gpu in 0 1; do
    opened=$(echo "$scrape" | grep -E "^gvm_sessions_opened_total\{gpu=\"$gpu\"\} [0-9]+$" | awk '{print $2}')
    if [ -z "$opened" ] || [ "$opened" -eq 0 ]; then
        echo "smoke: gvm_sessions_opened_total{gpu=\"$gpu\"} missing or zero — sessions did not reach shard $gpu" >&2
        echo "$scrape" | grep '^gvm_sessions' >&2 || true
        exit 1
    fi
done
echo "smoke: metrics OK (STR count = $str_count, sessions on both shards)"

kill "$gvmd_pid"
wait "$gvmd_pid" 2>/dev/null || true
gvmd_pid=""
if [ -e "$addrfile" ]; then
    echo "smoke: gvmd left its addr file behind on shutdown" >&2
    exit 1
fi

# Second round: the zero-syscall ring transport. The daemon listens on
# ring://, clients negotiate shared-memory submission/completion rings,
# and the doorbell counter proves verbs actually travelled through the
# rings rather than falling back to the socket.
echo "smoke: starting gvmd on a ring:// listener"
shmdir="$workdir/shm"
mkdir -p "$shmdir"
addrfile="$workdir/gvmd-ring.addr"
logfile="$workdir/gvmd-ring.log"
"$bindir/gvmd" -listen "ring://$workdir/gvmd-ring.sock" -parties 2 \
    -shm "$shmdir" -addr-file "$addrfile" -metrics 127.0.0.1:0 \
    >"$logfile" 2>&1 &
gvmd_pid=$!
tries=0
while [ ! -s "$addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: ring gvmd never published its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
    if ! kill -0 "$gvmd_pid" 2>/dev/null; then
        echo "smoke: ring gvmd exited early" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n1 "$addrfile")
metrics_url=$(grep '^http://' "$addrfile" | head -n1)
echo "smoke: ring gvmd is serving on $addr (metrics at $metrics_url)"

out=$(GVMD_SHM_DIR="$shmdir" "$bindir/multiprocess" -workers 2 -connect "$addr")
echo "$out"
turnarounds=$(echo "$out" | grep -c "turnaround" || true)
if [ "$turnarounds" -ne 2 ]; then
    echo "smoke: expected 2 worker turnaround lines over ring://, got $turnarounds" >&2
    exit 1
fi

scrape=$(fetch "$metrics_url")
doorbells=$(echo "$scrape" | grep -E '^gvmd_ring_doorbells_total\{gpu="0"\} [0-9]+$' | awk '{print $2}')
if [ -z "$doorbells" ] || [ "$doorbells" -eq 0 ]; then
    echo "smoke: gvmd_ring_doorbells_total{gpu=\"0\"} missing or zero after a ring:// round" >&2
    echo "$scrape" | grep '^gvmd_ring' >&2 || true
    exit 1
fi
echo "smoke: ring metrics OK (doorbells = $doorbells)"

kill "$gvmd_pid"
wait "$gvmd_pid" 2>/dev/null || true
gvmd_pid=""

# Third round: memory overcommit. The daemon's card is shrunk so it fits
# only two of the four workers' arenas (each worker stages 768 KiB on a
# 1.6 MiB device) and -overcommit 2.0 admits all four anyway; the
# residency engine must evict idle sessions to host snapshots and
# restore them transparently, and every worker still verifies its
# results byte-for-byte.
echo "smoke: starting gvmd with -overcommit 2.0 on a shrunken card"
addrfile="$workdir/gvmd-oc.addr"
logfile="$workdir/gvmd-oc.log"
"$bindir/gvmd" -listen tcp://127.0.0.1:0 -overcommit 2.0 \
    -mem $((1600 * 1024)) -addr-file "$addrfile" -metrics 127.0.0.1:0 \
    >"$logfile" 2>&1 &
gvmd_pid=$!
tries=0
while [ ! -s "$addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: overcommit gvmd never published its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
    if ! kill -0 "$gvmd_pid" 2>/dev/null; then
        echo "smoke: overcommit gvmd exited early" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n1 "$addrfile")
metrics_url=$(grep '^http://' "$addrfile" | head -n1)
echo "smoke: overcommit gvmd is serving on $addr (metrics at $metrics_url)"

out=$("$bindir/multiprocess" -workers 4 -connect "$addr")
echo "$out"
turnarounds=$(echo "$out" | grep -c "turnaround" || true)
if [ "$turnarounds" -ne 4 ]; then
    echo "smoke: expected 4 worker turnaround lines under overcommit, got $turnarounds" >&2
    exit 1
fi

scrape=$(fetch "$metrics_url")
evictions=$(echo "$scrape" | grep -E '^gvm_evictions_total\{gpu="0"\} [0-9]+$' | awk '{print $2}')
swapout=$(echo "$scrape" | grep -E '^gvm_swap_bytes_total\{dir="out",gpu="0"\} [0-9]+$' | awk '{print $2}')
if [ -z "$evictions" ] || [ "$evictions" -eq 0 ]; then
    echo "smoke: gvm_evictions_total{gpu=\"0\"} missing or zero after over-packing a 1.6 MiB card" >&2
    echo "$scrape" | grep -E '^gvm_(evictions|restores|swap|resident|reserved)' >&2 || true
    exit 1
fi
# Whether a restore also fired depends on interleaving (an eviction can
# land on a session that is already done), so only the swap-out traffic
# is asserted alongside the eviction count.
if [ -z "$swapout" ] || [ "$swapout" -eq 0 ]; then
    echo "smoke: gvm_swap_bytes_total{dir=\"out\"} missing or zero despite $evictions evictions" >&2
    echo "$scrape" | grep -E '^gvm_(evictions|restores|swap|resident|reserved)' >&2 || true
    exit 1
fi
echo "smoke: overcommit metrics OK (evictions = $evictions, swapped out = $swapout bytes)"

kill "$gvmd_pid"
wait "$gvmd_pid" 2>/dev/null || true
gvmd_pid=""

# Fourth round: fault injection and failover. A 2-shard daemon hangs
# GPU 0 on its first kernel launch mid-run; the sessions placed there
# must live-migrate to GPU 1, every worker must still exit 0 with
# byte-verified results, and the failover counter must be nonzero.
echo "smoke: starting a 2-shard gvmd with a hang fault armed on gpu 0"
addrfile="$workdir/gvmd-fault.addr"
logfile="$workdir/gvmd-fault.log"
"$bindir/gvmd" -listen tcp://127.0.0.1:0 -gpus 2 \
    -fault-inject "gpu=0,after=1,kind=hang" \
    -addr-file "$addrfile" -metrics 127.0.0.1:0 \
    >"$logfile" 2>&1 &
gvmd_pid=$!
tries=0
while [ ! -s "$addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: fault gvmd never published its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
    if ! kill -0 "$gvmd_pid" 2>/dev/null; then
        echo "smoke: fault gvmd exited early" >&2
        cat "$logfile" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n1 "$addrfile")
metrics_url=$(grep '^http://' "$addrfile" | head -n1)
echo "smoke: fault gvmd is serving on $addr (metrics at $metrics_url)"

out=$("$bindir/multiprocess" -workers 4 -connect "$addr")
echo "$out"
turnarounds=$(echo "$out" | grep -c "turnaround" || true)
if [ "$turnarounds" -ne 4 ]; then
    echo "smoke: expected 4 worker turnaround lines through a faulted shard, got $turnarounds" >&2
    exit 1
fi

scrape=$(fetch "$metrics_url")
faults=$(echo "$scrape" | grep -E '^gpusim_faults_total\{gpu="0",kind="hang"\} [0-9]+$' | awk '{print $2}')
failovers=$(echo "$scrape" | grep -E '^node_failovers_total [0-9]+$' | awk '{print $2}')
health=$(echo "$scrape" | grep -E '^node_shard_health\{gpu="0"\} [0-9]+$' | awk '{print $2}')
if [ -z "$faults" ] || [ "$faults" -eq 0 ]; then
    echo "smoke: gpusim_faults_total{gpu=\"0\",kind=\"hang\"} missing or zero — the injector never fired" >&2
    echo "$scrape" | grep -E '^(gpusim_faults|node_)' >&2 || true
    exit 1
fi
if [ -z "$failovers" ] || [ "$failovers" -eq 0 ]; then
    echo "smoke: node_failovers_total missing or zero after a hang fault on gpu 0" >&2
    echo "$scrape" | grep -E '^(gpusim_faults|node_)' >&2 || true
    exit 1
fi
if [ -z "$health" ] || [ "$health" -ne 3 ]; then
    echo "smoke: node_shard_health{gpu=\"0\"} = '$health', want 3 (unhealthy) after a hang fault" >&2
    echo "$scrape" | grep '^node_shard_health' >&2 || true
    exit 1
fi
echo "smoke: failover metrics OK (faults = $faults, failovers = $failovers, gpu 0 unhealthy)"

kill "$gvmd_pid"
wait "$gvmd_pid" 2>/dev/null || true
gvmd_pid=""

# Fifth round: two-level federation. gvmfed fronts two single-shard gvmd
# nodes over TCP; eight workers run verified cycles through the router
# for two seconds while one backend is SIGTERM'd mid-run. Every worker
# must still exit 0 (the router re-creates the dead node's sessions on
# the survivor and the clients replay), and the router's
# fed_failovers_total must be nonzero.
echo "smoke: building gvmfed"
${GO:-go} build -o "$bindir/gvmfed" ./cmd/gvmfed

node_a_pid=""
node_b_pid=""
gvmfed_pid=""
fed_cleanup() {
    for pid in "$node_a_pid" "$node_b_pid" "$gvmfed_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
}
trap 'fed_cleanup; cleanup' EXIT INT TERM

echo "smoke: starting two gvmd nodes and a gvmfed router"
for node in a b; do
    addrfile="$workdir/gvmd-$node.addr"
    "$bindir/gvmd" -listen tcp://127.0.0.1:0 \
        -addr-file "$addrfile" \
        >"$workdir/gvmd-$node.log" 2>&1 &
    eval "node_${node}_pid=$!"
done
for node in a b; do
    addrfile="$workdir/gvmd-$node.addr"
    tries=0
    while [ ! -s "$addrfile" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "smoke: gvmd node $node never published its address" >&2
            cat "$workdir/gvmd-$node.log" >&2
            exit 1
        fi
        sleep 0.1
    done
done

fed_addrfile="$workdir/gvmfed.addr"
"$bindir/gvmfed" -listen tcp://127.0.0.1:0 \
    -backend-file "$workdir/gvmd-a.addr" -backend-file "$workdir/gvmd-b.addr" \
    -placement least-sessions -poll 50ms \
    -addr-file "$fed_addrfile" -metrics 127.0.0.1:0 \
    >"$workdir/gvmfed.log" 2>&1 &
gvmfed_pid=$!
tries=0
while [ ! -s "$fed_addrfile" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "smoke: gvmfed never published its address" >&2
        cat "$workdir/gvmfed.log" >&2
        exit 1
    fi
    if ! kill -0 "$gvmfed_pid" 2>/dev/null; then
        echo "smoke: gvmfed exited early" >&2
        cat "$workdir/gvmfed.log" >&2
        exit 1
    fi
    sleep 0.1
done
fed_addr=$(head -n1 "$fed_addrfile")
fed_metrics_url=$(grep '^http://' "$fed_addrfile" | head -n1)
echo "smoke: gvmfed is routing on $fed_addr (metrics at $fed_metrics_url)"

"$bindir/multiprocess" -workers 8 -connect "$fed_addr" -duration 2s \
    >"$workdir/fed-workers.log" 2>&1 &
mp_pid=$!
sleep 0.7
echo "smoke: SIGTERM'ing gvmd node a mid-run"
kill "$node_a_pid"
wait "$node_a_pid" 2>/dev/null || true
node_a_pid=""
if ! wait "$mp_pid"; then
    echo "smoke: a worker failed after the mid-run backend kill" >&2
    cat "$workdir/fed-workers.log" >&2
    cat "$workdir/gvmfed.log" >&2
    exit 1
fi
cat "$workdir/fed-workers.log"
turnarounds=$(grep -c "turnaround" "$workdir/fed-workers.log" || true)
if [ "$turnarounds" -ne 8 ]; then
    echo "smoke: expected 8 worker turnaround lines through gvmfed, got $turnarounds" >&2
    exit 1
fi

scrape=$(fetch "$fed_metrics_url")
failovers=$(echo "$scrape" | grep -E '^fed_failovers_total [0-9]+$' | awk '{print $2}')
dead=$(echo "$scrape" | grep -E '^fed_nodes\{state="dead"\} [0-9]+$' | awk '{print $2}')
if [ -z "$failovers" ] || [ "$failovers" -eq 0 ]; then
    echo "smoke: fed_failovers_total missing or zero after SIGTERM'ing a backend mid-run" >&2
    echo "$scrape" | grep '^fed_' >&2 || true
    exit 1
fi
if [ -z "$dead" ] || [ "$dead" -ne 1 ]; then
    echo "smoke: fed_nodes{state=\"dead\"} = '$dead', want 1 after killing one of two nodes" >&2
    echo "$scrape" | grep '^fed_nodes' >&2 || true
    exit 1
fi
echo "smoke: federation metrics OK (failovers = $failovers, one node dead, one alive)"

fed_cleanup
node_b_pid=""
gvmfed_pid=""
echo "smoke: OK"
