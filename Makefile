GO ?= go

.PHONY: all ci vet build test race bench-short bench-json

all: ci

# Tier-1 gate (README "CI gate"): everything a change must keep green.
ci: vet build test race bench-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick smoke of the data-plane hot-path benchmarks (executor, IPC
# framing, shm copies, simulator calendar) — catches perf regressions
# that break, not ones that merely slow down.
bench-short:
	$(GO) test -run '^$$' -bench 'FunctionalExec|IPCFrame|ShmCopy|Calendar' -benchtime 100ms -benchmem ./...

# Regenerate the machine-readable hot-path numbers.
bench-json:
	$(GO) run ./cmd/gvmbench -benchjson results/BENCH_pr1.json
