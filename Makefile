GO ?= go

.PHONY: all ci fmt vet build test race bench bench-short bench-json interference-short fed-short smoke

all: ci

# Tier-1 gate (README "CI gate"): everything a change must keep green.
ci: fmt vet build test race bench-short interference-short chaos-short fed-short smoke

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The GOARCH=386 pass type-checks the tree on a 32-bit target: the ring
# doorbell/sequence words are deliberately 32-bit atomics, and this
# catches any accidental 64-bit atomic that would trap unaligned there.
vet:
	$(GO) vet ./...
	GOARCH=386 $(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so inter-test coupling (shared
# sockets, leaked state) surfaces in CI instead of in the field.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Quick smoke of the data-plane hot-path benchmarks (executor, IPC
# framing, wire round trip, daemon cycle throughput, shm copies,
# simulator calendar) — catches perf regressions that break, not ones
# that merely slow down.
bench-short:
	$(GO) test -run '^$$' -bench 'IPCPipeRoundTrip|RingCycle' -benchtime 20x -benchmem ./internal/transport/ ./internal/ipc/
	$(GO) test -run '^$$' -bench 'DaemonThroughput' -benchtime 20x -benchmem ./internal/ipc/
	$(GO) test -run '^$$' -bench 'FunctionalExec|IPCFrame|ShmCopy|Calendar' -benchtime 100ms -benchmem ./...

# CI-sized chaos run: fault injection under 8-client pipelined load on a
# 2-shard daemon — no session lost, outputs byte-identical to a
# fault-free serial reference, both shards drained after release — plus
# the byte-identical mid-job drain migration.
chaos-short:
	$(GO) test -race -run 'TestChaosFaultInjection8Clients|TestDrainMigratesMidJobByteIdentical' -count=1 ./internal/ipc/

# CI-sized federation run: the gvmfed router's policy matrix
# (byte-identical to direct single-node), the cross-node mid-job live
# migration, and the 8-client kill-one-backend chaos round — all under
# the race detector.
fed-short:
	$(GO) test -race -run 'TestFederationMatrixByteIdentical|TestCrossNodeMigrationMidJobByteIdentical|TestFederationChaosKillNodeMidRun' -count=1 ./internal/fed/

# CI-sized QoS interference run: asserts weighted-fair co-location keeps
# the latency tenant's p99 within 2x solo while the FIFO baseline blows
# past it, with <= 15% batch throughput cost and byte-identical outputs.
interference-short:
	$(GO) test -run TestInterferenceShort -count=1 ./internal/experiments/

# Full benchmark matrix: data-plane microbenchmarks plus daemon cycle
# throughput at 1/2/4/8 clients over inproc/unix/tcp/ring, pipelined vs
# serial, the shard-scaling sweep (1/2/4 GPUs x 1/4/8 clients), the
# federated throughput sweep (gvmfed fronting 1/2 nodes x 1/4/8
# clients, quantifying the proxy hop against the direct numbers), the
# memory-oversubscription sweep (sessions totaling 1x/2x/4x device
# memory: swap traffic and p99 turnaround), and the QoS interference
# co-location sweep (solo vs FIFO vs weighted-fair tail latency, batch
# throughput cost, 1:2:4 fairness races), written as the PR10 JSON
# artifact.
bench:
	$(GO) run ./cmd/gvmbench -benchjson results/BENCH_pr10.json

# Regenerate the machine-readable hot-path numbers (alias of bench;
# earlier PR artifacts are kept as historical records).
bench-json: bench

# End-to-end daemon smoke: gvmd on a TCP loopback port, a two-process
# multiprocess round against it, non-empty turnaround output, and a
# well-formed /metrics scrape with nonzero verb counters.
smoke:
	./scripts/smoke.sh
