module gpuvirt

go 1.22
