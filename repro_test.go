// The capstone test: one assertion per headline claim of the paper's
// evaluation, against the live system. If this passes, the reproduction
// stands. (Per-artifact detail lives in internal/experiments' tests.)
package gpuvirt_test

import (
	"math"
	"testing"

	"gpuvirt/internal/experiments"
)

func TestPaperHeadlineResults(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweep skipped in -short mode")
	}

	// Table II: the profiled parameters reproduce the paper's published
	// measurements.
	profiles, err := experiments.TableII()
	if err != nil {
		t.Fatal(err)
	}
	va, ep := profiles[0], profiles[1]
	approx := func(name string, gotMS, wantMS, tol float64) {
		t.Helper()
		if math.Abs(gotMS-wantMS)/wantMS > tol {
			t.Errorf("%s = %.3f ms, paper reports %.3f ms", name, gotMS, wantMS)
		}
	}
	approx("VectorAdd Tinit", va.Tinit.Seconds()*1e3, 1519.386, 0.01)
	approx("VectorAdd Tdata_in", va.TdataIn.Seconds()*1e3, 135.874, 0.03)
	approx("EP Tcomp", ep.Tcomp.Seconds()*1e3, 8951.346, 0.02)

	// Table III: EP's theoretical speedup equals the paper's 8.341 and
	// experiment lands within 20% below theory for both benchmarks.
	speedups, err := experiments.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if got := speedups[1].Theoretical; math.Abs(got-8.341) > 0.05 {
		t.Errorf("EP theoretical speedup = %.3f, paper reports 8.341", got)
	}
	for _, r := range speedups {
		if r.Deviation < 0 || r.Deviation > 0.20 {
			t.Errorf("%s deviation = %.1f%%, paper band is [0, 20]%%", r.Name, r.Deviation*100)
		}
	}

	// Figure 9: EP's virtualized turnaround is flat across 1..8 procs.
	micro, err := experiments.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	epSeries := micro[1]
	if epSeries.VirtMS[7] > epSeries.VirtMS[0]*1.01 {
		t.Errorf("EP virt turnaround grew %.0f -> %.0f ms; the paper shows it flat",
			epSeries.VirtMS[0], epSeries.VirtMS[7])
	}

	// Figure 10: virtualization overhead stays under the paper's ~25%.
	overheads, err := experiments.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range overheads {
		if p.OverheadPct > 25 {
			t.Errorf("overhead at %d MB = %.1f%%, paper bound is ~25%%", p.DataMB, p.OverheadPct)
		}
	}

	// Figure 16: application speedups span the paper's 1.4-4.1x band
	// with MG and CG on top.
	apps, err := experiments.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	byName := map[string]float64{}
	for _, r := range apps {
		lo = math.Min(lo, r.Experimental)
		hi = math.Max(hi, r.Experimental)
		byName[r.Name] = r.Experimental
	}
	if lo < 1.3 || hi > 4.5 {
		t.Errorf("application speedups span [%.2f, %.2f]; the paper reports 1.4-4.1", lo, hi)
	}
	for _, other := range []string{"MM", "BlackScholes", "Electrostatics"} {
		if byName["MG"] <= byName[other] || byName["CG"] <= byName[other] {
			t.Errorf("MG/CG (%.2f/%.2f) must achieve the best gains (vs %s %.2f), as the paper reports",
				byName["MG"], byName["CG"], other, byName[other])
		}
	}
}
