// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// Wall-clock ns/op measures the simulator itself; the paper's metrics —
// virtual turnaround times and speedups — are attached as custom metrics
// (virt-ms, novirt-ms, speedup and friends).
package gpuvirt_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/experiments"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/model"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/task"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// --- Table II ---

func BenchmarkTableII_Profiles(b *testing.B) {
	var rows []model.Params
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Tinit.Seconds()*1e3, "vecadd-Tinit-ms")
	b.ReportMetric(rows[0].TdataIn.Seconds()*1e3, "vecadd-Tin-ms")
	b.ReportMetric(rows[1].Tcomp.Seconds()*1e3, "ep-Tcomp-ms")
}

// --- Figure 9 ---

func benchSeries(b *testing.B, w workloads.Workload, n int) {
	cfg := spmd.Config{
		Arch:       experiments.Arch(),
		N:          n,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
	}
	var dms, vms float64
	for i := 0; i < b.N; i++ {
		dres, err := spmd.RunDirect(cfg)
		if err != nil {
			b.Fatal(err)
		}
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dms = dres.Turnaround.Seconds() * 1e3
		vms = vres.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(dms, "novirt-ms")
	b.ReportMetric(vms, "virt-ms")
	b.ReportMetric(dms/vms, "speedup")
}

func BenchmarkFigure9_VectorAdd8(b *testing.B) { benchSeries(b, workloads.PaperVectorAdd(), 8) }
func BenchmarkFigure9_EP8(b *testing.B)        { benchSeries(b, workloads.PaperEP(), 8) }

// --- Table III ---

func BenchmarkTableIII_Speedups(b *testing.B) {
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Experimental, "vecadd-speedup")
	b.ReportMetric(rows[0].Theoretical, "vecadd-theory")
	b.ReportMetric(rows[1].Experimental, "ep-speedup")
	b.ReportMetric(rows[1].Theoretical, "ep-theory")
}

// --- Figure 10 ---

func BenchmarkFigure10_Overhead(b *testing.B) {
	var pts []experiments.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].OverheadPct, "overhead-25MB-pct")
	b.ReportMetric(pts[len(pts)-1].OverheadPct, "overhead-400MB-pct")
}

// --- Table IV ---

func BenchmarkTableIV_Classes(b *testing.B) {
	var rows []experiments.AppRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CycleMS, r.Name+"-cycle-ms")
	}
}

// --- Figures 11-15: one benchmark per application figure ---

func BenchmarkFigure11_MM(b *testing.B)           { benchSeries(b, workloads.PaperMM(), 8) }
func BenchmarkFigure12_MG(b *testing.B)           { benchSeries(b, workloads.PaperMG(), 8) }
func BenchmarkFigure13_BlackScholes(b *testing.B) { benchSeries(b, workloads.PaperBlackScholes(), 8) }
func BenchmarkFigure14_CG(b *testing.B)           { benchSeries(b, workloads.PaperCG(), 8) }
func BenchmarkFigure15_Electrostatics(b *testing.B) {
	benchSeries(b, workloads.PaperElectrostatics(), 8)
}

// --- Figure 16 ---

func BenchmarkFigure16_Speedups(b *testing.B) {
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure16()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Experimental, r.Name+"-speedup")
	}
}

// --- Equation 6 ---

func BenchmarkSmaxBound(b *testing.B) {
	p := model.Params{
		Ntask: 8, Tinit: 1519 * sim.Millisecond, TctxSwitch: 148 * sim.Millisecond,
		TdataIn: 136 * sim.Millisecond, Tcomp: 10 * sim.Millisecond, TdataOut: 67 * sim.Millisecond,
	}
	var s float64
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 1024; n *= 2 {
			s = p.WithNtask(n).Speedup()
		}
	}
	b.ReportMetric(s, "speedup-n1024")
	b.ReportMetric(p.Smax(), "smax")
}

// --- Ablations (DESIGN.md §5) ---

// AblationBarrier: the paper's synchronized flush (barrier over all
// parties) vs immediate per-request flushing.
func BenchmarkAblationBarrier(b *testing.B) {
	w := workloads.PaperMG() // both transfers and compute in flight
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var with, without float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		noBar := base
		noBar.PartiesOverride = 1
		r2, err := spmd.RunVirt(noBar)
		if err != nil {
			b.Fatal(err)
		}
		with = r1.Turnaround.Seconds() * 1e3
		without = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(with, "barrier-ms")
	b.ReportMetric(without, "nobarrier-ms")
}

// AblationPinned: pinned staging buffers (the paper's design) vs
// pageable staging.
func BenchmarkAblationPinned(b *testing.B) {
	w := workloads.PaperVectorAdd()
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var pinned, pageable float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		pg := base
		pg.PageableStaging = true
		r2, err := spmd.RunVirt(pg)
		if err != nil {
			b.Fatal(err)
		}
		pinned = r1.Turnaround.Seconds() * 1e3
		pageable = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(pinned, "pinned-ms")
	b.ReportMetric(pageable, "pageable-ms")
}

// AblationKernelWindow: sensitivity to Fermi's concurrent-kernel window.
func BenchmarkAblationKernelWindow(b *testing.B) {
	w := workloads.PaperEP()
	var t1, t4, t16 float64
	run := func(window int) float64 {
		arch := experiments.Arch()
		arch.MaxConcurrentKernels = window
		cfg := spmd.Config{Arch: arch, N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
		res, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Turnaround.Seconds() * 1e3
	}
	for i := 0; i < b.N; i++ {
		t1, t4, t16 = run(1), run(4), run(16)
	}
	b.ReportMetric(t1, "window1-ms")
	b.ReportMetric(t4, "window4-ms")
	b.ReportMetric(t16, "window16-ms")
}

// AblationOverlap: Fermi's copy/compute overlap vs a pre-Fermi device
// (Tesla C1060) with neither overlap nor concurrent kernels.
func BenchmarkAblationOverlap(b *testing.B) {
	// Black-Scholes blocks (128 threads) fit both architectures; the
	// workload moves 20 MB per process and computes for hundreds of ms,
	// so copy/compute overlap is visible.
	w := workloads.BlackScholes(1_000_000, 64, 240)
	var fermiMS, gt200MS float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(spmd.Config{Arch: fermi.TeslaC2070(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := spmd.RunVirt(spmd.Config{Arch: fermi.TeslaC1060(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost})
		if err != nil {
			b.Fatal(err)
		}
		fermiMS = r1.Turnaround.Seconds() * 1e3
		gt200MS = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(fermiMS, "fermi-ms")
	b.ReportMetric(gt200MS, "gt200-ms")
}

// AblationBlockingSTP: the paper's poll-based STP handshake vs a
// blocking status response.
func BenchmarkAblationBlockingSTP(b *testing.B) {
	w := workloads.PaperEP()
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var polled, blocking float64
	var polls int
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		bl := base
		bl.BlockingSTP = true
		r2, err := spmd.RunVirt(bl)
		if err != nil {
			b.Fatal(err)
		}
		polled = r1.Turnaround.Seconds() * 1e3
		blocking = r2.Turnaround.Seconds() * 1e3
		polls = r1.STPPolls
	}
	b.ReportMetric(polled, "polled-ms")
	b.ReportMetric(blocking, "blocking-ms")
	b.ReportMetric(float64(polls), "stp-polls")
}

// --- Simulator micro-benchmarks ---

func BenchmarkSimEngineEvents(b *testing.B) {
	env := sim.NewEnv()
	for i := 0; i < b.N; i++ {
		env.After(sim.Duration(i), func() {})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOccupancyCalc(b *testing.B) {
	arch := fermi.TeslaC2070()
	r := fermi.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 21, SharedMemPerBlock: 4096}
	for i := 0; i < b.N; i++ {
		if _, err := arch.Occupancy(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceAllocator(b *testing.B) {
	a := gpusim.NewAllocator(1<<30, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelWaveScheduling(b *testing.B) {
	// Cost of simulating one paper-scale vector-add kernel (48829
	// blocks, ~3500 waves).
	w := workloads.PaperVectorAdd()
	cfg := spmd.Config{Arch: experiments.Arch(), N: 1, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	for i := 0; i < b.N; i++ {
		if _, err := spmd.RunDirect(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper ---

// ExtensionCluster: node-local virtualization vs rCUDA-style remote GPU
// access over two interconnects (the paper's Section II argument).
func BenchmarkExtensionCluster(b *testing.B) {
	var rows []experiments.ClusterRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionCluster()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TurnaroundMS, "local-ms")
	b.ReportMetric(rows[1].TurnaroundMS, "remote-ib-ms")
	b.ReportMetric(rows[2].TurnaroundMS, "remote-gige-ms")
}

// ExtensionMultiGPU: scaling the manager across 1/2/4 GPUs for a
// device-saturating workload.
func BenchmarkExtensionMultiGPU(b *testing.B) {
	var rows []experiments.MultiGPURow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionMultiGPU()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Scaling, fmt.Sprintf("%dgpu-scaling", r.GPUs))
	}
}

// AblationFlushPolicy: flush-order sensitivity under a heterogeneous
// batch (one large task, seven small). Under simultaneous SPMD arrival,
// FIFO naturally approximates SJF — staging time correlates with job
// size, so small jobs reach the barrier first — while the adversarial
// largest-first order multiplies mean turnaround. (When a large job
// arrives first, SJF strictly beats FIFO: see
// vgpu.TestFlushPolicySJFImprovesMeanTurnaround.)
func BenchmarkAblationFlushPolicy(b *testing.B) {
	specFor := func(i int) *task.Spec {
		if i == 0 {
			return workloads.VectorAdd(1 << 24).Spec(i) // 128 MiB in
		}
		return workloads.VectorAdd(1 << 18).Spec(i) // 2 MiB in
	}
	run := func(policy gvm.FlushPolicy) float64 {
		cfg := spmd.Config{
			Arch: experiments.Arch(), N: 8,
			SpecFor:     specFor,
			FlushPolicy: policy,
		}
		res, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, d := range res.PerProcess {
			mean += d.Seconds() * 1e3
		}
		return mean / float64(len(res.PerProcess))
	}
	var fifo, sjf, ljf float64
	for i := 0; i < b.N; i++ {
		fifo = run(gvm.FlushFIFO)
		sjf = run(gvm.FlushSJF)
		ljf = run(gvm.FlushLJF)
	}
	b.ReportMetric(fifo, "fifo-meanturn-ms")
	b.ReportMetric(sjf, "sjf-meanturn-ms")
	b.ReportMetric(ljf, "ljf-meanturn-ms")
}

// --- Data-plane fast paths: parallel executor, IPC framing, shm ---

// benchArena is flat functional device memory for running kernels outside
// the simulator (the simulator's Device is not needed to execute a
// kernel's Func).
type benchArena struct {
	data []byte
	next int64
}

func (m *benchArena) Bytes(p cuda.DevPtr, n int64) []byte {
	return m.data[p : int64(p)+n : int64(p)+n]
}

func (m *benchArena) alloc(n int64) cuda.DevPtr {
	p := cuda.DevPtr(m.next)
	m.next += (n + 255) &^ 255
	return p
}

func newBenchArena(n int64) *benchArena {
	return &benchArena{data: make([]byte, n), next: 256}
}

// benchFunctionalExec times one full kernel sequence per op, serially via
// the reference RunFunctional and through a 4-worker Executor. On a
// single-core host the parallel variant measures pool overhead, not
// speedup; the cores metric records the distinction.
func benchFunctionalExec(b *testing.B, build func(m *benchArena) []*cuda.Kernel) {
	const workers = 4
	b.Run("serial", func(b *testing.B) {
		mem := newBenchArena(64 << 20)
		ks := build(mem)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range ks {
				if err := k.RunFunctional(mem); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		mem := newBenchArena(64 << 20)
		ks := build(mem)
		ex := cuda.NewExecutor(workers)
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range ks {
				if err := ex.Run(k, mem); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkFunctionalExec_MM(b *testing.B) {
	benchFunctionalExec(b, func(m *benchArena) []*cuda.Kernel {
		const n = 256 // 16x16 tile blocks = 256 blocks
		pa, pb, pc := m.alloc(n*n*4), m.alloc(n*n*4), m.alloc(n*n*4)
		av := cuda.Float32s(m, pa, n*n)
		bv := cuda.Float32s(m, pb, n*n)
		for i := range av {
			av[i] = float32(i%13) / 13
			bv[i] = float32(i%11) / 11
		}
		return []*cuda.Kernel{kernels.NewMM(pa, pb, pc, n)}
	})
}

func BenchmarkFunctionalExec_Electrostatics(b *testing.B) {
	benchFunctionalExec(b, func(m *benchArena) []*cuda.Kernel {
		const natoms = 2000
		p := kernels.ESParams{GridX: 128, GridY: 64, Spacing: 0.5, Z: 1}
		pa := m.alloc(natoms * 4 * 4)
		po := m.alloc(int64(p.GridX*p.GridY) * 4)
		atoms := cuda.Float32s(m, pa, natoms*4)
		for i := range atoms {
			atoms[i] = float32(i%29) * 0.3
		}
		return []*cuda.Kernel{kernels.NewElectrostatics(pa, po, natoms, 1, 32, p)}
	})
}

func BenchmarkFunctionalExec_BlackScholes(b *testing.B) {
	benchFunctionalExec(b, func(m *benchArena) []*cuda.Kernel {
		const n = 100_000
		ps, px, pt := m.alloc(n*4), m.alloc(n*4), m.alloc(n*4)
		pc, pp := m.alloc(n*4), m.alloc(n*4)
		s := cuda.Float32s(m, ps, n)
		x := cuda.Float32s(m, px, n)
		tt := cuda.Float32s(m, pt, n)
		for i := range s {
			s[i] = 5 + float32(i%100)
			x[i] = 1 + float32(i%50)
			tt[i] = 0.25 + float32(i%40)/4
		}
		return []*cuda.Kernel{kernels.NewBlackScholes(ps, px, pt, pc, pp, n, 4, 60, kernels.DefaultBSParams())}
	})
}

// benchRequest is a representative control-plane message (the REQ verb
// carries the largest payload of the six).
func benchRequest() transport.Request {
	return transport.Request{
		Verb: "REQ",
		Rank: 3,
		Ref: &workloads.Ref{
			Name:   "vecadd",
			Params: map[string]int{"n": 50_000_000, "grid": 48829},
		},
	}
}

func BenchmarkIPCFrame_JSON(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		var got transport.Request
		if err := json.Unmarshal(buf, &got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIPCFrame_Binary(b *testing.B) {
	req := benchRequest()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = transport.EncodeRequestBinary(buf[:0], req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := transport.DecodeRequestBinary(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShmCopy round-trips 1 MiB through a file-backed segment — the
// daemon's per-request SND/RCV data-plane traffic.
func benchShmCopy(b *testing.B, unmap bool) {
	const n = 1 << 20
	s, err := shm.NewFile(b.TempDir(), "bench-seg", n)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if unmap {
		shm.Unmap(s)
	} else if s.Bytes() == nil {
		b.Skip("mmap unavailable on this platform")
	}
	src := make([]byte, n)
	dst := make([]byte, n)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(2 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteAt(src, 0); err != nil {
			b.Fatal(err)
		}
		if err := s.ReadAt(dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShmCopy_File(b *testing.B) { benchShmCopy(b, true) }
func BenchmarkShmCopy_Mmap(b *testing.B) { benchShmCopy(b, false) }
