// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// Wall-clock ns/op measures the simulator itself; the paper's metrics —
// virtual turnaround times and speedups — are attached as custom metrics
// (virt-ms, novirt-ms, speedup and friends).
package gpuvirt_test

import (
	"fmt"
	"testing"

	"gpuvirt/internal/experiments"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/model"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

// --- Table II ---

func BenchmarkTableII_Profiles(b *testing.B) {
	var rows []model.Params
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Tinit.Seconds()*1e3, "vecadd-Tinit-ms")
	b.ReportMetric(rows[0].TdataIn.Seconds()*1e3, "vecadd-Tin-ms")
	b.ReportMetric(rows[1].Tcomp.Seconds()*1e3, "ep-Tcomp-ms")
}

// --- Figure 9 ---

func benchSeries(b *testing.B, w workloads.Workload, n int) {
	cfg := spmd.Config{
		Arch:       experiments.Arch(),
		N:          n,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
	}
	var dms, vms float64
	for i := 0; i < b.N; i++ {
		dres, err := spmd.RunDirect(cfg)
		if err != nil {
			b.Fatal(err)
		}
		vres, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dms = dres.Turnaround.Seconds() * 1e3
		vms = vres.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(dms, "novirt-ms")
	b.ReportMetric(vms, "virt-ms")
	b.ReportMetric(dms/vms, "speedup")
}

func BenchmarkFigure9_VectorAdd8(b *testing.B) { benchSeries(b, workloads.PaperVectorAdd(), 8) }
func BenchmarkFigure9_EP8(b *testing.B)        { benchSeries(b, workloads.PaperEP(), 8) }

// --- Table III ---

func BenchmarkTableIII_Speedups(b *testing.B) {
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Experimental, "vecadd-speedup")
	b.ReportMetric(rows[0].Theoretical, "vecadd-theory")
	b.ReportMetric(rows[1].Experimental, "ep-speedup")
	b.ReportMetric(rows[1].Theoretical, "ep-theory")
}

// --- Figure 10 ---

func BenchmarkFigure10_Overhead(b *testing.B) {
	var pts []experiments.OverheadPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].OverheadPct, "overhead-25MB-pct")
	b.ReportMetric(pts[len(pts)-1].OverheadPct, "overhead-400MB-pct")
}

// --- Table IV ---

func BenchmarkTableIV_Classes(b *testing.B) {
	var rows []experiments.AppRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.CycleMS, r.Name+"-cycle-ms")
	}
}

// --- Figures 11-15: one benchmark per application figure ---

func BenchmarkFigure11_MM(b *testing.B)           { benchSeries(b, workloads.PaperMM(), 8) }
func BenchmarkFigure12_MG(b *testing.B)           { benchSeries(b, workloads.PaperMG(), 8) }
func BenchmarkFigure13_BlackScholes(b *testing.B) { benchSeries(b, workloads.PaperBlackScholes(), 8) }
func BenchmarkFigure14_CG(b *testing.B)           { benchSeries(b, workloads.PaperCG(), 8) }
func BenchmarkFigure15_Electrostatics(b *testing.B) {
	benchSeries(b, workloads.PaperElectrostatics(), 8)
}

// --- Figure 16 ---

func BenchmarkFigure16_Speedups(b *testing.B) {
	var rows []experiments.SpeedupRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure16()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Experimental, r.Name+"-speedup")
	}
}

// --- Equation 6 ---

func BenchmarkSmaxBound(b *testing.B) {
	p := model.Params{
		Ntask: 8, Tinit: 1519 * sim.Millisecond, TctxSwitch: 148 * sim.Millisecond,
		TdataIn: 136 * sim.Millisecond, Tcomp: 10 * sim.Millisecond, TdataOut: 67 * sim.Millisecond,
	}
	var s float64
	for i := 0; i < b.N; i++ {
		for n := 1; n <= 1024; n *= 2 {
			s = p.WithNtask(n).Speedup()
		}
	}
	b.ReportMetric(s, "speedup-n1024")
	b.ReportMetric(p.Smax(), "smax")
}

// --- Ablations (DESIGN.md §5) ---

// AblationBarrier: the paper's synchronized flush (barrier over all
// parties) vs immediate per-request flushing.
func BenchmarkAblationBarrier(b *testing.B) {
	w := workloads.PaperMG() // both transfers and compute in flight
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var with, without float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		noBar := base
		noBar.PartiesOverride = 1
		r2, err := spmd.RunVirt(noBar)
		if err != nil {
			b.Fatal(err)
		}
		with = r1.Turnaround.Seconds() * 1e3
		without = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(with, "barrier-ms")
	b.ReportMetric(without, "nobarrier-ms")
}

// AblationPinned: pinned staging buffers (the paper's design) vs
// pageable staging.
func BenchmarkAblationPinned(b *testing.B) {
	w := workloads.PaperVectorAdd()
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var pinned, pageable float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		pg := base
		pg.PageableStaging = true
		r2, err := spmd.RunVirt(pg)
		if err != nil {
			b.Fatal(err)
		}
		pinned = r1.Turnaround.Seconds() * 1e3
		pageable = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(pinned, "pinned-ms")
	b.ReportMetric(pageable, "pageable-ms")
}

// AblationKernelWindow: sensitivity to Fermi's concurrent-kernel window.
func BenchmarkAblationKernelWindow(b *testing.B) {
	w := workloads.PaperEP()
	var t1, t4, t16 float64
	run := func(window int) float64 {
		arch := experiments.Arch()
		arch.MaxConcurrentKernels = window
		cfg := spmd.Config{Arch: arch, N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
		res, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Turnaround.Seconds() * 1e3
	}
	for i := 0; i < b.N; i++ {
		t1, t4, t16 = run(1), run(4), run(16)
	}
	b.ReportMetric(t1, "window1-ms")
	b.ReportMetric(t4, "window4-ms")
	b.ReportMetric(t16, "window16-ms")
}

// AblationOverlap: Fermi's copy/compute overlap vs a pre-Fermi device
// (Tesla C1060) with neither overlap nor concurrent kernels.
func BenchmarkAblationOverlap(b *testing.B) {
	// Black-Scholes blocks (128 threads) fit both architectures; the
	// workload moves 20 MB per process and computes for hundreds of ms,
	// so copy/compute overlap is visible.
	w := workloads.BlackScholes(1_000_000, 64, 240)
	var fermiMS, gt200MS float64
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(spmd.Config{Arch: fermi.TeslaC2070(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := spmd.RunVirt(spmd.Config{Arch: fermi.TeslaC1060(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost})
		if err != nil {
			b.Fatal(err)
		}
		fermiMS = r1.Turnaround.Seconds() * 1e3
		gt200MS = r2.Turnaround.Seconds() * 1e3
	}
	b.ReportMetric(fermiMS, "fermi-ms")
	b.ReportMetric(gt200MS, "gt200-ms")
}

// AblationBlockingSTP: the paper's poll-based STP handshake vs a
// blocking status response.
func BenchmarkAblationBlockingSTP(b *testing.B) {
	w := workloads.PaperEP()
	base := spmd.Config{Arch: experiments.Arch(), N: 8, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	var polled, blocking float64
	var polls int
	for i := 0; i < b.N; i++ {
		r1, err := spmd.RunVirt(base)
		if err != nil {
			b.Fatal(err)
		}
		bl := base
		bl.BlockingSTP = true
		r2, err := spmd.RunVirt(bl)
		if err != nil {
			b.Fatal(err)
		}
		polled = r1.Turnaround.Seconds() * 1e3
		blocking = r2.Turnaround.Seconds() * 1e3
		polls = r1.STPPolls
	}
	b.ReportMetric(polled, "polled-ms")
	b.ReportMetric(blocking, "blocking-ms")
	b.ReportMetric(float64(polls), "stp-polls")
}

// --- Simulator micro-benchmarks ---

func BenchmarkSimEngineEvents(b *testing.B) {
	env := sim.NewEnv()
	for i := 0; i < b.N; i++ {
		env.After(sim.Duration(i), func() {})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkOccupancyCalc(b *testing.B) {
	arch := fermi.TeslaC2070()
	r := fermi.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 21, SharedMemPerBlock: 4096}
	for i := 0; i < b.N; i++ {
		if _, err := arch.Occupancy(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceAllocator(b *testing.B) {
	a := gpusim.NewAllocator(1<<30, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelWaveScheduling(b *testing.B) {
	// Cost of simulating one paper-scale vector-add kernel (48829
	// blocks, ~3500 waves).
	w := workloads.PaperVectorAdd()
	cfg := spmd.Config{Arch: experiments.Arch(), N: 1, SpecFor: w.Spec, SwitchCost: w.SwitchCost}
	for i := 0; i < b.N; i++ {
		if _, err := spmd.RunDirect(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper ---

// ExtensionCluster: node-local virtualization vs rCUDA-style remote GPU
// access over two interconnects (the paper's Section II argument).
func BenchmarkExtensionCluster(b *testing.B) {
	var rows []experiments.ClusterRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionCluster()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].TurnaroundMS, "local-ms")
	b.ReportMetric(rows[1].TurnaroundMS, "remote-ib-ms")
	b.ReportMetric(rows[2].TurnaroundMS, "remote-gige-ms")
}

// ExtensionMultiGPU: scaling the manager across 1/2/4 GPUs for a
// device-saturating workload.
func BenchmarkExtensionMultiGPU(b *testing.B) {
	var rows []experiments.MultiGPURow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtensionMultiGPU()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Scaling, fmt.Sprintf("%dgpu-scaling", r.GPUs))
	}
}

// AblationFlushPolicy: flush-order sensitivity under a heterogeneous
// batch (one large task, seven small). Under simultaneous SPMD arrival,
// FIFO naturally approximates SJF — staging time correlates with job
// size, so small jobs reach the barrier first — while the adversarial
// largest-first order multiplies mean turnaround. (When a large job
// arrives first, SJF strictly beats FIFO: see
// vgpu.TestFlushPolicySJFImprovesMeanTurnaround.)
func BenchmarkAblationFlushPolicy(b *testing.B) {
	specFor := func(i int) *task.Spec {
		if i == 0 {
			return workloads.VectorAdd(1 << 24).Spec(i) // 128 MiB in
		}
		return workloads.VectorAdd(1 << 18).Spec(i) // 2 MiB in
	}
	run := func(policy gvm.FlushPolicy) float64 {
		cfg := spmd.Config{
			Arch: experiments.Arch(), N: 8,
			SpecFor:     specFor,
			FlushPolicy: policy,
		}
		res, err := spmd.RunVirt(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, d := range res.PerProcess {
			mean += d.Seconds() * 1e3
		}
		return mean / float64(len(res.PerProcess))
	}
	var fifo, sjf, ljf float64
	for i := 0; i < b.N; i++ {
		fifo = run(gvm.FlushFIFO)
		sjf = run(gvm.FlushSJF)
		ljf = run(gvm.FlushLJF)
	}
	b.ReportMetric(fifo, "fifo-meanturn-ms")
	b.ReportMetric(sjf, "sjf-meanturn-ms")
	b.ReportMetric(ljf, "ljf-meanturn-ms")
}
