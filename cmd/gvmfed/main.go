// Command gvmfed runs the federation router: a second placement level
// fronting N gvmd nodes. Clients dial gvmfed exactly as they would a
// single gvmd — same six-verb protocol, same retry behavior — and the
// router places each session on a backend node with the SAME placement
// policies gvmd uses across its GPU shards (two-level placement: the
// router picks the node, the node's policy picks the GPU).
//
// The router polls every backend's capacity/health advertisement (the
// STA verb) to drive placement and failure detection. A node that
// drains (gvmd SIGUSR1) has its sessions live-migrated to the other
// nodes — extract (MIG), re-place, adopt (ADP) — without the clients
// noticing; a node that dies has its sessions re-created on survivors
// and the clients' jittered retry loops replay their cycles.
//
// Usage:
//
//	gvmfed -listen tcp://:7080 -backend tcp://nodeA:7070 -backend tcp://nodeB:7070
//	gvmfed -listen unix:///tmp/gvmfed.sock -backend-file /tmp/nodeA.addr -backend-file /tmp/nodeB.addr
//
// Clients connect with internal/ipc.Dial (or examples/multiprocess,
// examples/cluster -real) using gvmfed's address; -addr-file publishes
// it for scripts, like gvmd's.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpuvirt/internal/fed"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/transport"
)

// repeatedFlags collects repeated string flag values.
type repeatedFlags []string

func (l *repeatedFlags) String() string { return strings.Join(*l, ",") }
func (l *repeatedFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var listen, backends, backendFiles repeatedFlags
	flag.Var(&listen, "listen", "transport address to serve clients on: tcp://host:port, unix:///path, inproc://name (repeatable; default tcp://127.0.0.1:7080)")
	flag.Var(&backends, "backend", "backend gvmd address, e.g. tcp://host:7070 (repeatable)")
	flag.Var(&backendFiles, "backend-file", "read one backend gvmd address from this -addr-file (first line; repeatable)")
	placement := flag.String("placement", "least-sessions", "node placement policy: "+strings.Join(node.PolicyNames(), "|"))
	poll := flag.Duration("poll", 200*time.Millisecond, "backend advertisement poll interval")
	addrFile := flag.String("addr-file", "", "write the bound addresses to this file, one per line (useful with tcp://...:0)")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics at http://<addr>/metrics (fed_* series: nodes by state, placements, proxy latency, failovers, migrated bytes)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	logLevel := flag.String("log-level", "", "structured routing/failover logging to stderr: debug|info|warn|error; empty disables")
	flag.Parse()

	logger, err := slogByLevel(*logLevel)
	if err != nil {
		log.Fatalf("gvmfed: %v", err)
	}
	for _, f := range backendFiles {
		addr, err := readAddrFile(f)
		if err != nil {
			log.Fatalf("gvmfed: -backend-file %s: %v", f, err)
		}
		backends = append(backends, addr)
	}
	if len(backends) == 0 {
		log.Fatalf("gvmfed: no backends (use -backend or -backend-file)")
	}
	if len(listen) == 0 {
		listen = repeatedFlags{"tcp://127.0.0.1:7080"}
	}
	for _, addr := range listen {
		if scheme, target := transport.SplitAddr(addr); scheme == "unix" {
			os.Remove(target) // stale socket from an unclean exit blocks the bind
		} else if scheme == "ring" {
			log.Fatalf("gvmfed: ring:// cannot front remote nodes (the mapped segment lives with one daemon); use tcp:// or unix://")
		}
	}

	reg := metrics.NewRegistry()
	http.Handle("/metrics", metrics.Handler(reg))
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("gvmfed: pprof: %v", err)
			}
		}()
		log.Printf("gvmfed: pprof on http://%s/debug/pprof/", *pprofAddr)
	}
	var metricsURL string
	if *metricsAddr != "" {
		// Bind explicitly so ":0" resolves to a concrete port for the addr
		// file.
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("gvmfed: metrics listen %s: %v", *metricsAddr, err)
		}
		metricsURL = fmt.Sprintf("http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, nil); err != nil {
				log.Printf("gvmfed: metrics: %v", err)
			}
		}()
		log.Printf("gvmfed: metrics on %s", metricsURL)
	}

	router, err := fed.New(fed.Config{
		Backends:     backends,
		Placement:    *placement,
		PollInterval: *poll,
		Metrics:      reg,
		Log:          logger,
	})
	if err != nil {
		log.Fatalf("gvmfed: %v", err)
	}
	if err := router.Start(listen); err != nil {
		log.Fatalf("gvmfed: %v", err)
	}
	addrs := router.Addrs()
	log.Printf("gvmfed: routing %s across %d node(s): %s (placement=%s poll=%v)",
		strings.Join(addrs, ", "), len(backends), strings.Join(backends, ", "), router.Placement(), *poll)
	if *addrFile != "" {
		lines := append([]string{}, addrs...)
		if metricsURL != "" {
			lines = append(lines, metricsURL)
		}
		if err := os.WriteFile(*addrFile, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			router.Close()
			log.Fatalf("gvmfed: write %s: %v", *addrFile, err)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("gvmfed: %v: shutting down", got)
	done := make(chan struct{})
	go func() {
		if err := router.Close(); err != nil {
			log.Printf("gvmfed: close: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case got = <-sig:
		log.Printf("gvmfed: %v: forcing exit", got)
	}
	for _, addr := range listen {
		if scheme, target := transport.SplitAddr(addr); scheme == "unix" {
			os.Remove(target)
		}
	}
	if *addrFile != "" {
		os.Remove(*addrFile)
	}
}

// readAddrFile pulls the daemon address out of a gvmd -addr-file: the
// first line (later lines are the metrics URL and the v2 advertisement
// trailer).
func readAddrFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	line, _, _ := strings.Cut(strings.TrimSpace(string(b)), "\n")
	line = strings.TrimSpace(line)
	if line == "" {
		return "", fmt.Errorf("empty addr file")
	}
	return line, nil
}

func slogByLevel(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}
