// Command gvmtrace runs one SPMD scenario with the execution tracer
// attached and prints the resulting Gantt chart of the GPU's engines —
// the driver lane (context creation and switches), both DMA engines and
// the SM array — for the virtualized and the direct execution, making
// the paper's timeline figures (3-6) visible for any workload.
//
// Usage:
//
//	gvmtrace -workload vecadd -procs 4 -mode both -width 100
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/trace"
	"gpuvirt/internal/workloads"
)

func main() {
	name := flag.String("workload", "vecadd", "workload: "+strings.Join(workloads.Names(), "|"))
	procs := flag.Int("procs", 4, "number of SPMD processes")
	mode := flag.String("mode", "both", "virt|direct|both")
	width := flag.Int("width", 100, "chart width in characters")
	flag.Parse()

	w, err := workloads.FromRef(workloads.Ref{Name: *name})
	if err != nil {
		log.Fatalf("gvmtrace: %v", err)
	}
	run := func(virt bool) {
		tr := trace.New()
		cfg := spmd.Config{
			Arch:       fermi.TeslaC2070(),
			N:          *procs,
			SpecFor:    w.Spec,
			SwitchCost: w.SwitchCost,
			Tracer:     tr,
		}
		var res spmd.Result
		var err error
		if virt {
			res, err = spmd.RunVirt(cfg)
		} else {
			res, err = spmd.RunDirect(cfg)
		}
		if err != nil {
			log.Fatalf("gvmtrace: %v", err)
		}
		fmt.Printf("=== %s: %s, %d processes, turnaround %.1f ms ===\n",
			map[bool]string{true: "VIRTUALIZED", false: "DIRECT"}[virt],
			w.Name, *procs, res.Turnaround.Seconds()*1e3)
		fmt.Print(tr.Gantt(*width))
		for _, lane := range tr.Lanes() {
			fmt.Printf("  lane %-8s busy %8.1f ms over %d spans\n",
				lane, tr.Busy(lane).Seconds()*1e3, len(tr.LaneSpans(lane)))
		}
		fmt.Println()
	}
	if *mode == "direct" || *mode == "both" {
		run(false)
	}
	if *mode == "virt" || *mode == "both" {
		run(true)
	}
}
