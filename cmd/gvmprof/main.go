// Command gvmprof extracts a workload's execution-model parameters (the
// paper's Table II procedure): Tinit for N simultaneous processes, the
// cycle stages Tdata_in / Tcomp / Tdata_out from a solo run on an idle
// device, and the per-application context-switch cost — then evaluates
// the analytical model (equations 1-6) on them.
//
// Usage:
//
//	gvmprof -workload vecadd -procs 8
//	gvmprof -workload ep -param m=24 -procs 4
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/spmd"
	"gpuvirt/internal/workloads"
)

func main() {
	name := flag.String("workload", "vecadd", "workload: "+strings.Join(workloads.Names(), "|"))
	procs := flag.Int("procs", 8, "number of SPMD processes (Ntask)")
	params := multiFlag{}
	flag.Var(&params, "param", "workload parameter key=value (repeatable)")
	flag.Parse()

	ref := workloads.Ref{Name: *name, Params: params.m}
	w, err := workloads.FromRef(ref)
	if err != nil {
		log.Fatalf("gvmprof: %v", err)
	}
	cfg := spmd.Config{
		Arch:       fermi.TeslaC2070(),
		N:          *procs,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
	}
	p, err := spmd.Profile(cfg)
	if err != nil {
		log.Fatalf("gvmprof: %v", err)
	}
	fmt.Printf("Workload:        %s (%s)\n", w.Name, w.ProblemSize)
	fmt.Printf("Grid size:       %d\n", w.GridSize)
	fmt.Printf("Class:           %s\n", w.Class)
	fmt.Printf("Ntask:           %d\n", p.Ntask)
	fmt.Printf("Tinit:           %10.3f ms\n", p.Tinit.Seconds()*1e3)
	fmt.Printf("Tdata_in:        %10.3f ms\n", p.TdataIn.Seconds()*1e3)
	fmt.Printf("Tcomp:           %10.3f ms\n", p.Tcomp.Seconds()*1e3)
	fmt.Printf("Tdata_out:       %10.3f ms\n", p.TdataOut.Seconds()*1e3)
	fmt.Printf("Tctx_switch:     %10.3f ms\n", p.TctxSwitch.Seconds()*1e3)
	fmt.Printf("\nAnalytical model (Section IV):\n")
	fmt.Printf("Ttotal_no_vt:    %10.3f ms   (equation 1)\n", p.TotalNoVirt().Seconds()*1e3)
	fmt.Printf("Ttotal_vt:       %10.3f ms   (equation 4)\n", p.TotalVirt().Seconds()*1e3)
	fmt.Printf("Speedup S:       %10.3f      (equation 5)\n", p.Speedup())
	if s := p.Smax(); s > 0 {
		fmt.Printf("Smax:            %10.3f      (equation 6)\n", s)
	} else {
		fmt.Printf("Smax:            unbounded (no I/O term)\n")
	}
}

type multiFlag struct{ m map[string]int }

func (f *multiFlag) String() string { return fmt.Sprint(f.m) }

func (f *multiFlag) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", v)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	if f.m == nil {
		f.m = make(map[string]int)
	}
	f.m[k] = n
	return nil
}
