// Command gvmbench regenerates the tables and figures of the paper's
// evaluation on the simulated Tesla C2070 node.
//
// Usage:
//
//	gvmbench                              # run everything
//	gvmbench -experiment fig9             # run one artifact
//	gvmbench -benchjson results/BENCH.json # data-plane microbenchmarks
//
// Artifacts: table2, fig9, table3, fig10, table4, fig11-15, fig16.
// -benchjson measures the data-plane hot paths (functional kernel
// execution serial vs parallel, IPC framing, shm copies, the simulator
// calendar) and writes them as JSON instead of running artifacts.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuvirt/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "artifact to regenerate: table2|fig9|table3|fig10|table4|fig11-15|fig16|ext-cluster|ext-multigpu|all")
	benchJSON := flag.String("benchjson", "", "write data-plane microbenchmark results as JSON to this path and exit")
	flag.Parse()

	if *benchJSON != "" {
		if err := experiments.WriteMicroBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "gvmbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gvmbench: wrote %s\n", *benchJSON)
		return
	}

	runners := []struct {
		name string
		run  func() (string, error)
	}{
		{"table2", func() (string, error) {
			rows, err := experiments.TableII()
			if err != nil {
				return "", err
			}
			return experiments.RenderTableII(rows), nil
		}},
		{"fig9", func() (string, error) {
			series, err := experiments.Figure9()
			if err != nil {
				return "", err
			}
			return experiments.RenderSeries("FIGURE 9. TURNAROUND TIME, MICRO-BENCHMARKS", series), nil
		}},
		{"table3", func() (string, error) {
			rows, err := experiments.TableIII()
			if err != nil {
				return "", err
			}
			return experiments.RenderTableIII(rows), nil
		}},
		{"fig10", func() (string, error) {
			pts, err := experiments.Figure10()
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure10(pts), nil
		}},
		{"table4", func() (string, error) {
			rows, err := experiments.TableIV()
			if err != nil {
				return "", err
			}
			return experiments.RenderTableIV(rows), nil
		}},
		{"fig11-15", func() (string, error) {
			series, err := experiments.Figures11to15()
			if err != nil {
				return "", err
			}
			return experiments.RenderSeries("FIGURES 11-15. TURNAROUND TIME, APPLICATION BENCHMARKS", series), nil
		}},
		{"fig16", func() (string, error) {
			rows, err := experiments.Figure16()
			if err != nil {
				return "", err
			}
			return experiments.RenderFigure16(rows), nil
		}},
		{"ext-cluster", func() (string, error) {
			rows, err := experiments.ExtensionCluster()
			if err != nil {
				return "", err
			}
			return experiments.RenderExtensionCluster(rows), nil
		}},
		{"ext-npb", func() (string, error) {
			series, err := experiments.ExtensionNPB()
			if err != nil {
				return "", err
			}
			return experiments.RenderSeries("EXTENSION. ADDITIONAL NPB KERNELS (IS, FT, class S)", series), nil
		}},
		{"ext-multigpu", func() (string, error) {
			rows, err := experiments.ExtensionMultiGPU()
			if err != nil {
				return "", err
			}
			return experiments.RenderExtensionMultiGPU(rows), nil
		}},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		out, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvmbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "gvmbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
