// Command gvmd runs the GPU Virtualization Manager as a real daemon: it
// owns a simulated Fermi GPU and serves the paper's six-verb protocol
// (REQ/SND/STR/STP/RCV/RLS) to separate OS processes over any mix of
// transports. Unix-domain sockets pair with file-backed shared-memory
// segments under /dev/shm as the data plane; TCP listeners default to
// carrying payloads inline over the wire, which is what makes remote
// (rCUDA-style) VGPU access work across machines. A ring:// listener is
// a unix socket whose sessions negotiate shared-memory
// submission/completion rings: after REQ every verb travels through the
// mmap'd segment, so a warm cycle performs zero syscalls (see DESIGN.md
// §3).
//
// Usage:
//
//	gvmd -listen unix:///tmp/gvmd.sock -parties 4 -functional
//	gvmd -listen tcp://:7070
//	gvmd -listen ring:///tmp/gvmd.sock -listen tcp://:7070
//
// Clients connect with internal/ipc.Dial using the same address syntax
// (see examples/multiprocess and examples/cluster -real).
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/ipc"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/transport"
)

// listenFlags collects repeated -listen values.
type listenFlags []string

func (l *listenFlags) String() string { return strings.Join(*l, ",") }
func (l *listenFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var listen listenFlags
	flag.Var(&listen, "listen", "transport address to serve: unix:///path, tcp://host:port, ring:///path (repeatable; default unix:///tmp/gvmd.sock)")
	socket := flag.String("socket", "", "legacy alias for -listen unix://<path>")
	addrFile := flag.String("addr-file", "", "write the bound addresses to this file, one per line (useful with tcp://...:0)")
	parties := flag.Int("parties", 1, "STR barrier width (number of SPMD processes)")
	functional := flag.Bool("functional", true, "carry real data and compute real results")
	shmDir := flag.String("shm", "", "shared-memory directory (default /dev/shm)")
	archName := flag.String("arch", "c2070", "gpu architecture: c2070|c2050|gtx480|c1060")
	gpus := flag.Int("gpus", 1, "number of per-GPU manager shards the daemon runs (each with its own owner goroutine and STR barrier)")
	placement := flag.String("placement", "least-sessions", "session placement policy across shards: "+strings.Join(node.PolicyNames(), "|"))
	barrierTimeout := flag.Duration("barrier-timeout", 0, "flush partial STR batches after this long (0 = strict barrier)")
	execWorkers := flag.Int("exec-workers", 0, "functional kernel execution worker pool (0 = GOMAXPROCS, 1 = serial)")
	preemptRatio := flag.Float64("preempt-ratio", 0, "wave-boundary preemption threshold: a pending kernel preempts an active one iff weight > ratio*activeWeight (0 = default 1.0, negative disables)")
	jsonWire := flag.Bool("json-wire", false, "speak newline-delimited JSON on the control socket (debugging; clients must use DialJSON)")
	maxSessionBytes := flag.Int64("max-session-bytes", 0, "reject REQ whose staging footprint (InBytes+OutBytes) exceeds this many bytes (0 = no per-session limit)")
	overcommit := flag.Float64("overcommit", 1.0, "admit sessions while reserved bytes stay within this factor of each GPU's memory; above 1.0 idle sessions are evicted to host snapshots on demand")
	memBytes := flag.Int64("mem", 0, "override each simulated GPU's device memory in bytes (0 = architecture default; shrink it to demo -overcommit eviction)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for CPU/alloc profiles of the daemon hot path")
	metricsAddr := flag.String("metrics", "", "serve Prometheus text metrics at http://<addr>/metrics (e.g. localhost:9090; also mounted on the -pprof mux)")
	faultInject := flag.String("fault-inject", "", "inject simulated XID faults on kernel launches, e.g. 'gpu=0,after=25,kind=hang' or 'rate=0.01,seed=7,kinds=hang|fatal' (faulted shards are evacuated by live session migration)")
	logLevel := flag.String("log-level", "", "structured verb logging to stderr: debug (one line per verb), info (one line per flush), warn, error; empty disables")
	flag.Parse()

	reg := metrics.NewRegistry()
	// The -pprof mux serves /metrics too, so one debug listener covers
	// profiles and telemetry.
	http.Handle("/metrics", metrics.Handler(reg))

	logger, err := slogByLevel(*logLevel)
	if err != nil {
		log.Fatalf("gvmd: %v", err)
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the /debug/pprof handlers via the
			// net/http/pprof import.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("gvmd: pprof: %v", err)
			}
		}()
		log.Printf("gvmd: pprof on http://%s/debug/pprof/", *pprofAddr)
	}
	var metricsURL string
	if *metricsAddr != "" {
		// Bind explicitly (rather than ListenAndServe) so ":0" resolves to
		// a concrete port that can go into the addr file.
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("gvmd: metrics listen %s: %v", *metricsAddr, err)
		}
		metricsURL = fmt.Sprintf("http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, nil); err != nil {
				log.Printf("gvmd: metrics: %v", err)
			}
		}()
		log.Printf("gvmd: metrics on %s", metricsURL)
	}

	arch, err := archByName(*archName)
	if err != nil {
		log.Fatalf("gvmd: %v", err)
	}
	var faultPlan *gpusim.FaultPlan
	if *faultInject != "" {
		faultPlan, err = gpusim.ParseFaultSpec(*faultInject)
		if err != nil {
			log.Fatalf("gvmd: -fault-inject: %v", err)
		}
	}
	if *memBytes < 0 {
		log.Fatalf("gvmd: -mem must be >= 0, got %d", *memBytes)
	}
	if *memBytes > 0 {
		arch.MemBytes = *memBytes
	}
	if *socket != "" {
		listen = append(listenFlags{"unix://" + *socket}, listen...)
	}
	if len(listen) == 0 {
		listen = listenFlags{"unix:///tmp/gvmd.sock"}
	}

	// Clean up after a daemon that died without its signal handler: stale
	// unix sockets block the new bind, stale segments leak /dev/shm.
	for _, addr := range listen {
		if scheme, target := transport.SplitAddr(addr); scheme == "unix" || scheme == "ring" {
			os.Remove(target)
		}
	}
	if n, err := shm.RemoveStale(*shmDir, "gvmd-seg-"); err != nil {
		log.Printf("gvmd: stale segment cleanup: %v", err)
	} else if n > 0 {
		log.Printf("gvmd: removed %d stale shm segment(s)", n)
	}

	srv, err := ipc.NewServer(ipc.ServerConfig{
		Listen:          listen,
		Arch:            arch,
		Parties:         *parties,
		Functional:      *functional,
		ShmDir:          *shmDir,
		GPUs:            *gpus,
		Placement:       *placement,
		ExecWorkers:     *execWorkers,
		PreemptRatio:    *preemptRatio,
		JSONWire:        *jsonWire,
		MaxSessionBytes: *maxSessionBytes,
		Overcommit:      *overcommit,
		BarrierTimeout:  *barrierTimeout,
		FaultPlan:       faultPlan,
		Logger:          log.New(os.Stderr, "gvmd: ", log.LstdFlags),
		Metrics:         reg,
		Slog:            logger,
	})
	if err != nil {
		log.Fatalf("gvmd: %v", err)
	}
	addrs := srv.Addrs()
	log.Printf("gvmd: serving %dx %s on %s (placement=%s parties=%d/shard functional=%v)",
		*gpus, arch.Name, strings.Join(addrs, ", "), srv.Node().Policy(), *parties, *functional)
	if *addrFile != "" {
		// Written only after every listener is bound, so a waiter that
		// sees the file can connect immediately. The metrics URL rides
		// along as an extra http:// line for scrapers to discover, and the
		// last line is the v2 capacity/health advertisement (one JSON
		// object) a federation router reads to seed node-level placement.
		// v1 readers (head -n1 for the address, grep ^http:// for the
		// scrape URL) are unaffected.
		lines := append([]string{}, addrs...)
		if metricsURL != "" {
			lines = append(lines, metricsURL)
		}
		if ad, err := node.MarshalAd(srv.Node().Advertise()); err == nil {
			lines = append(lines, string(ad))
		}
		if err := os.WriteFile(*addrFile, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			srv.Close()
			log.Fatalf("gvmd: write %s: %v", *addrFile, err)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	// SIGUSR1 gracefully drains the WHOLE node: every shard stops taking
	// placements at once and the daemon's advertisement turns
	// unplaceable. Behind gvmfed that is the maintenance signal — the
	// router sees the next poll and live-migrates every session to the
	// other nodes; standalone, sessions keep serving in place until their
	// clients finish (no placements ping-pong between shards that are
	// both about to drain).
	var got os.Signal
	for got == nil || got == syscall.SIGUSR1 {
		got = <-sig
		if got != syscall.SIGUSR1 {
			break
		}
		log.Printf("gvmd: SIGUSR1: draining all %d gpu(s)", srv.Node().NumShards())
		srv.DrainAll()
	}
	log.Printf("gvmd: %v: shutting down", got)
	done := make(chan struct{})
	go func() {
		// Close releases every live session, so file-backed shm segments
		// are removed and unix listeners unlink their socket files.
		if err := srv.Close(); err != nil {
			log.Printf("gvmd: close: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case got = <-sig:
		log.Printf("gvmd: %v: forcing exit", got)
	}
	// Belt and braces: sockets are normally unlinked by listener close and
	// segments by session teardown, but a forced exit must not leave
	// residue for the next run to trip over.
	for _, addr := range listen {
		if scheme, target := transport.SplitAddr(addr); scheme == "unix" || scheme == "ring" {
			os.Remove(target)
		}
	}
	if *addrFile != "" {
		os.Remove(*addrFile)
	}
	shm.RemoveStale(*shmDir, "gvmd-seg-")
}

func slogByLevel(level string) (*slog.Logger, error) {
	if level == "" {
		return nil, nil
	}
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug|info|warn|error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

func archByName(name string) (fermi.Arch, error) {
	switch name {
	case "c2070":
		return fermi.TeslaC2070(), nil
	case "c2050":
		return fermi.TeslaC2050(), nil
	case "gtx480":
		return fermi.GeForceGTX480(), nil
	case "c1060":
		return fermi.TeslaC1060(), nil
	default:
		return fermi.Arch{}, fmt.Errorf("unknown architecture %q", name)
	}
}
