// Command gvmd runs the GPU Virtualization Manager as a real daemon: it
// owns a simulated Fermi GPU and serves the paper's six-verb protocol
// (REQ/SND/STR/STP/RCV/RLS) to separate OS processes over a Unix-domain
// socket, with file-backed shared-memory segments under /dev/shm as the
// data plane — the daemon-mode equivalent of the in-simulation GVM.
//
// Usage:
//
//	gvmd -socket /tmp/gvmd.sock -parties 4 -functional
//
// Clients connect with internal/ipc.Dial (see examples/multiprocess).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/ipc"
)

func main() {
	socket := flag.String("socket", "/tmp/gvmd.sock", "unix socket path")
	parties := flag.Int("parties", 1, "STR barrier width (number of SPMD processes)")
	functional := flag.Bool("functional", true, "carry real data and compute real results")
	shmDir := flag.String("shm", "", "shared-memory directory (default /dev/shm)")
	archName := flag.String("arch", "c2070", "gpu architecture: c2070|c2050|gtx480|c1060")
	gpus := flag.Int("gpus", 1, "number of simulated GPUs the manager owns")
	barrierTimeout := flag.Duration("barrier-timeout", 0, "flush partial STR batches after this long (0 = strict barrier)")
	execWorkers := flag.Int("exec-workers", 0, "functional kernel execution worker pool (0 = GOMAXPROCS, 1 = serial)")
	jsonWire := flag.Bool("json-wire", false, "speak newline-delimited JSON on the control socket (debugging; clients must use DialJSON)")
	flag.Parse()

	arch, err := archByName(*archName)
	if err != nil {
		log.Fatalf("gvmd: %v", err)
	}
	os.Remove(*socket) // stale socket from a previous run
	srv, err := ipc.NewServer(ipc.ServerConfig{
		Socket:         *socket,
		Arch:           arch,
		Parties:        *parties,
		Functional:     *functional,
		ShmDir:         *shmDir,
		GPUs:           *gpus,
		ExecWorkers:    *execWorkers,
		JSONWire:       *jsonWire,
		BarrierTimeout: *barrierTimeout,
		Logger:         log.New(os.Stderr, "gvmd: ", log.LstdFlags),
	})
	if err != nil {
		log.Fatalf("gvmd: %v", err)
	}
	log.Printf("gvmd: serving %dx %s on %s (parties=%d functional=%v)",
		*gpus, arch.Name, *socket, *parties, *functional)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("gvmd: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("gvmd: close: %v", err)
	}
	os.Remove(*socket)
}

func archByName(name string) (fermi.Arch, error) {
	switch name {
	case "c2070":
		return fermi.TeslaC2070(), nil
	case "c2050":
		return fermi.TeslaC2050(), nil
	case "gtx480":
		return fermi.GeForceGTX480(), nil
	case "c1060":
		return fermi.TeslaC1060(), nil
	default:
		return fermi.Arch{}, fmt.Errorf("unknown architecture %q", name)
	}
}
