package node

import (
	"fmt"
	"strings"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// ocSpec builds a vector-add spec over n float32 elements (2n in, n out).
func ocSpec(n int) *task.Spec {
	return &task.Spec{
		Name:     "vecadd",
		InBytes:  int64(2 * n * 4),
		OutBytes: int64(n * 4),
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			a := b.In
			bb := b.In + cuda.DevPtr(n*4)
			return []*cuda.Kernel{kernels.NewVecAdd(a, bb, b.Out, n)}, nil
		},
	}
}

// TestOvercommitAdmitsBeyondCapacity pins the layer split: at overcommit
// 2.0 the node admits reserved bytes up to twice the card, the manager's
// eviction engine makes them resident on demand, and one more session is
// still rejected — by the node, naming the overcommit factor.
func TestOvercommitAdmitsBeyondCapacity(t *testing.T) {
	const n = 4096 // 48 KiB per session
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 64 << 10 // fits one session's arenas
	nd, err := New(Config{GPUs: 1, Arch: arch, Overcommit: 2.0, SharedEnv: env})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	env.Go("client", func(p *sim.Proc) {
		p.Wait(nd.Shard(0).Mgr.Ready())
		v1, idx1, err := nd.Connect(p, ocSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		// Second session exceeds physical capacity but fits the 2x quota:
		// admitted, with the manager evicting idle v1 to make it resident.
		v2, idx2, err := nd.Connect(p, ocSpec(n))
		if err != nil {
			t.Errorf("session within the 2x quota rejected: %v", err)
			return
		}
		if nd.Shard(0).Mgr.Evictions() == 0 {
			t.Error("second session became resident without an eviction")
		}
		// Third exceeds the quota: the NODE rejects it (the managers never
		// see it), and the error teaches reserved vs resident.
		_, _, err = nd.Connect(p, ocSpec(n))
		if err == nil {
			t.Error("session beyond the overcommit quota admitted")
		} else if !strings.Contains(err.Error(), "overcommit 2") ||
			!strings.Contains(err.Error(), "reserved") {
			t.Errorf("rejection does not explain the quota: %v", err)
		}
		for _, rel := range []struct {
			v   interface{ Release(*sim.Proc) error }
			idx int
		}{{v1, idx1}, {v2, idx2}} {
			if err := rel.v.Release(p); err != nil {
				t.Error(err)
			}
			nd.Release(rel.idx, ocSpec(n).InBytes, ocSpec(n).OutBytes)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for _, l := range nd.Loads() {
		if l.Sessions != 0 || l.Bytes != 0 || l.Resident != 0 {
			t.Fatalf("shard %d not drained: %+v", l.Shard, l)
		}
	}
}

// TestOvercommitStressTenX is the residency layer's acceptance stress:
// ten full-card functional sessions packed onto one GPU at overcommit 10
// all run cycles concurrently — every output byte-identical to the
// host-computed expectation — while the eviction engine shuttles arenas
// between device and host snapshots. Afterwards nothing leaks: no open
// sessions, no resident bytes, no reservations.
func TestOvercommitStressTenX(t *testing.T) {
	const (
		n        = 4096 // 48 KiB of arenas per session
		sessions = 10
		cycles   = 2
	)
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 64 << 10 // one session resident at a time
	nd, err := New(Config{
		GPUs: 1, Arch: arch, Functional: true,
		Overcommit: 10, SharedEnv: env,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	mgr := nd.Shard(0).Mgr
	dev := nd.Shard(0).Dev
	for s := 0; s < sessions; s++ {
		s := s
		env.Go(fmt.Sprintf("client-%d", s), func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			spec := ocSpec(n)
			v, idx, err := nd.Connect(p, spec)
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			for c := 0; c < cycles; c++ {
				in := make([]float32, 2*n)
				for i := 0; i < n; i++ {
					in[i] = float32((i + s*3 + c*11) % 127)
					in[n+i] = float32((i*5 + s + c) % 131)
				}
				out := make([]byte, n*4)
				if err := v.RunCycle(p, cuda.HostFloat32Bytes(in), out); err != nil {
					t.Errorf("session %d cycle %d: %v", s, c, err)
					return
				}
				got := cuda.Float32s(sliceMemOC(out), 0, n)
				for i := 0; i < n; i++ {
					if got[i] != in[i]+in[n+i] {
						t.Errorf("session %d cycle %d: out[%d] = %g, want %g",
							s, c, i, got[i], in[i]+in[n+i])
						return
					}
				}
			}
			if err := v.Release(p); err != nil {
				t.Errorf("session %d: release: %v", s, err)
			}
			nd.Release(idx, spec.InBytes, spec.OutBytes)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.Evictions() == 0 || mgr.Restores() == 0 {
		t.Fatalf("10x packing ran without swapping: evictions=%d restores=%d",
			mgr.Evictions(), mgr.Restores())
	}
	if mgr.OpenSessions() != 0 {
		t.Fatalf("%d sessions leaked", mgr.OpenSessions())
	}
	if dev.MemInUse() != 0 || dev.MemReserved() != 0 {
		t.Fatalf("leak: resident=%d reserved=%d", dev.MemInUse(), dev.MemReserved())
	}
	for _, l := range nd.Loads() {
		if l.Sessions != 0 || l.Bytes != 0 {
			t.Fatalf("placement not drained: %+v", l)
		}
	}
}

// sliceMemOC adapts a byte slice to cuda.Memory for typed views.
type sliceMemOC []byte

func (s sliceMemOC) Bytes(p cuda.DevPtr, n int64) []byte { return s[p : int64(p)+n] }
