package node

import (
	"strings"
	"testing"

	"gpuvirt/internal/fermi"
)

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	// The empty name is the default policy.
	p, err := PolicyByName("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != LeastSessions {
		t.Fatalf("default policy = %q, want %q", p.Name(), LeastSessions)
	}
	// Unknown names fail with an error listing every valid choice.
	_, err = PolicyByName("bogus")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list policy %q", err, name)
		}
	}
}

// TestPolicyPicks pins each policy's choice on a fixed candidate set.
func TestPolicyPicks(t *testing.T) {
	cands := []Load{
		{Shard: 0, Sessions: 3, Bytes: 300, MemFree: 700},
		{Shard: 1, Sessions: 1, Bytes: 500, MemFree: 500},
		{Shard: 2, Sessions: 2, Bytes: 100, MemFree: 900},
	}
	for _, tc := range []struct {
		policy string
		want   int
	}{
		{LeastSessions, 1}, // fewest placed sessions
		{LeastMemory, 2},   // most free device memory
		{WeightedBytes, 2}, // smallest placed footprint
	} {
		p, err := PolicyByName(tc.policy)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Pick(cands, 64); got != tc.want {
			t.Errorf("%s picked cands[%d], want cands[%d]", tc.policy, got, tc.want)
		}
	}
	// Round-robin ignores load and cycles through the candidates.
	rr, err := PolicyByName(RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2, 0, 1} {
		if got := rr.Pick(cands, 64); got != want {
			t.Fatalf("round-robin pick %d = cands[%d], want cands[%d]", i, got, want)
		}
	}
}

// TestPolicyTieBreak pins the deterministic tie rule: equal loads go to
// the lowest shard index, so placement is reproducible run to run.
func TestPolicyTieBreak(t *testing.T) {
	cands := []Load{
		{Shard: 0, Sessions: 2, Bytes: 200, MemFree: 800},
		{Shard: 1, Sessions: 2, Bytes: 200, MemFree: 800},
	}
	for _, name := range []string{LeastSessions, LeastMemory, WeightedBytes} {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Pick(cands, 64); got != 0 {
			t.Errorf("%s broke the tie to cands[%d], want cands[0]", name, got)
		}
	}
}

// TestSLOPolicyPicks pins the SLO policy: lowest observed p99 turnaround
// wins even against a session-count advantage, cold shards (no latency
// signal yet) attract sessions first, and full ties fall back to fewest
// sessions then lowest index.
func TestSLOPolicyPicks(t *testing.T) {
	p, err := PolicyByName(SLO)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded shard with the best tail latency beats an idle-but-slow one.
	cands := []Load{
		{Shard: 0, Sessions: 1, P99TurnNS: 5_000_000},
		{Shard: 1, Sessions: 4, P99TurnNS: 2_000_000},
		{Shard: 2, Sessions: 2, P99TurnNS: 3_000_000},
	}
	if got := p.Pick(cands, 64); got != 1 {
		t.Errorf("slo picked cands[%d], want cands[1] (lowest p99)", got)
	}
	// A cold shard reports p99 = 0 and wins over any measured latency.
	cands[2].P99TurnNS = 0
	if got := p.Pick(cands, 64); got != 2 {
		t.Errorf("slo picked cands[%d], want cands[2] (cold shard)", got)
	}
	// Equal p99 falls back to fewest sessions.
	even := []Load{
		{Shard: 0, Sessions: 3, P99TurnNS: 0},
		{Shard: 1, Sessions: 1, P99TurnNS: 0},
	}
	if got := p.Pick(even, 64); got != 1 {
		t.Errorf("slo tie picked cands[%d], want cands[1] (fewest sessions)", got)
	}
	// Full tie goes to the lowest index for run-to-run reproducibility.
	even[1].Sessions = 3
	if got := p.Pick(even, 64); got != 0 {
		t.Errorf("slo full tie picked cands[%d], want cands[0]", got)
	}
}

// TestPlacementSkewProperty is the property test for the placement
// layer: placing K sessions over N shards never skews the shards beyond
// the policy's balance bound. Session-count policies stay within one
// session of each other; byte-weighted policies stay within one maximal
// footprint. Checked after EVERY placement, not just at the end.
func TestPlacementSkewProperty(t *testing.T) {
	const k = 96
	// Deterministic footprint sequence (LCG), 1-8 MiB per session.
	footprints := make([]int64, k)
	seed := uint32(12345)
	var maxFoot int64
	for i := range footprints {
		seed = seed*1664525 + 1013904223
		footprints[i] = int64(1+seed%8) << 20
		if footprints[i] > maxFoot {
			maxFoot = footprints[i]
		}
	}
	for _, policy := range PolicyNames() {
		for _, gpus := range []int{2, 3, 4} {
			nd, err := New(Config{GPUs: gpus, Placement: policy})
			if err != nil {
				t.Fatal(err)
			}
			shards := make([]int, k)
			for i, f := range footprints {
				// Round-robin balances arrivals, not bytes: give it (and
				// least-sessions) uniform footprints so its bound is exact.
				if policy == RoundRobin || policy == LeastSessions {
					f = 1 << 20
					footprints[i] = f
				}
				idx, err := nd.Place(f, 0)
				if err != nil {
					t.Fatalf("%s/%d gpus: place %d: %v", policy, gpus, i, err)
				}
				shards[i] = idx
				var minS, maxS, minB, maxB int64
				for j, l := range nd.Loads() {
					if j == 0 || l.Sessions < minS {
						minS = l.Sessions
					}
					if l.Sessions > maxS {
						maxS = l.Sessions
					}
					if j == 0 || l.Bytes < minB {
						minB = l.Bytes
					}
					if l.Bytes > maxB {
						maxB = l.Bytes
					}
				}
				switch policy {
				case LeastSessions, RoundRobin:
					if maxS-minS > 1 {
						t.Fatalf("%s/%d gpus after %d placements: session skew %d, bound 1",
							policy, gpus, i+1, maxS-minS)
					}
				case WeightedBytes, LeastMemory:
					if maxB-minB > maxFoot {
						t.Fatalf("%s/%d gpus after %d placements: byte skew %d, bound %d",
							policy, gpus, i+1, maxB-minB, maxFoot)
					}
				}
			}
			// Releasing everything returns every shard to zero load.
			for i, idx := range shards {
				nd.Release(idx, footprints[i], 0)
			}
			for _, l := range nd.Loads() {
				if l.Sessions != 0 || l.Bytes != 0 {
					t.Fatalf("%s/%d gpus: shard %d holds %d sessions / %d bytes after full release",
						policy, gpus, l.Shard, l.Sessions, l.Bytes)
				}
			}
		}
	}
}

// TestAdmissionMaxSessionBytes rejects a session whose staging footprint
// exceeds the per-session cap, naming the flag and the limit.
func TestAdmissionMaxSessionBytes(t *testing.T) {
	nd, err := New(Config{GPUs: 2, MaxSessionBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = nd.Place(800, 300)
	if err == nil {
		t.Fatal("oversized session placed despite MaxSessionBytes")
	}
	if !strings.Contains(err.Error(), "max-session-bytes") || !strings.Contains(err.Error(), "1000") {
		t.Fatalf("rejection does not name the limit: %v", err)
	}
	if idx, err := nd.Place(600, 300); err != nil || idx != 0 {
		t.Fatalf("in-limit session: shard %d, err %v", idx, err)
	}
}

// TestAdmissionMemoryFit covers the device-memory admission filter: a
// session only lands on shards with the headroom for it, and when no
// shard fits the error names every candidate GPU and its free memory.
func TestAdmissionMemoryFit(t *testing.T) {
	arch := fermi.TeslaC2070()
	arch.MemBytes = 1024
	nd, err := New(Config{GPUs: 2, Arch: arch})
	if err != nil {
		t.Fatal(err)
	}
	// Too big for any shard: the error enumerates the GPUs.
	_, err = nd.Place(2048, 0)
	if err == nil {
		t.Fatal("unfittable session placed")
	}
	for _, want := range []string{"reservation headroom", "gpu 0 healthy: 1024 B headroom", "gpu 1 healthy: 1024 B headroom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("admission error %q missing %q", err, want)
		}
	}
	// Fill shard 0; the next session must skip it even though the policy
	// (least-sessions) would otherwise balance onto it.
	if idx, err := nd.Place(1024, 0); err != nil || idx != 0 {
		t.Fatalf("first fill: shard %d, err %v", idx, err)
	}
	if idx, err := nd.Place(600, 0); err != nil || idx != 1 {
		t.Fatalf("session should land on the only shard with headroom: shard %d, err %v", idx, err)
	}
	// Both shards full now: admission fails and reports the real headroom.
	_, err = nd.Place(600, 0)
	if err == nil {
		t.Fatal("session placed with no shard headroom")
	}
	if !strings.Contains(err.Error(), "gpu 0 healthy: 0 B headroom") || !strings.Contains(err.Error(), "gpu 1 healthy: 424 B headroom") {
		t.Fatalf("admission error %q does not report per-GPU headroom", err)
	}
}
