// Package node is the multi-GPU layer above gvm: it owns N independent
// per-GPU shards — each one a sim.Env, a simulated device, and a
// gvm.Manager (the paper's one-GPU GVM) — plus the pluggable placement
// policy that assigns new sessions to shards. The paper's design is one
// manager per GPU context; a multi-GPU HPC node (Section VII, and the
// authors' journal extension arXiv:1511.07658) is therefore N managers
// behind one placement decision, not one manager with extra devices.
//
// Shards are fully independent: separate virtual clocks, separate STR
// barrier generations (Config.Parties is the width of EACH shard's
// barrier), separate staging pools. The daemon runs one owner goroutine
// per shard, so shards execute in parallel on real CPUs; simulation-mode
// callers may instead share one Env across every shard (SharedEnv) and
// keep the single-threaded discipline.
package node

import (
	"fmt"
	"log/slog"
	"strconv"
	"sync"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/vgpu"
)

// Shard is one GPU's slice of the node: its simulation environment (own
// clock unless the node was built with SharedEnv), its device, and the
// gvm.Manager owning the device's single context.
type Shard struct {
	Index int
	Env   *sim.Env
	Dev   *gpusim.Device
	Mgr   *gvm.Manager
}

// Config configures a node.
type Config struct {
	// GPUs is the number of shards (default 1).
	GPUs int
	// Arch is every shard's device architecture (zero value: Tesla C2070).
	Arch fermi.Arch
	// Functional carries real data end to end on every shard.
	Functional bool
	// ExecWorkers sizes each device's functional kernel-execution pool.
	ExecWorkers int
	// PreemptRatio is each shard's wave-boundary preemption threshold
	// (gpusim.Config.PreemptRatio): a pending kernel preempts an active
	// one iff its weight exceeds ratio x the active kernel's weight.
	// 0 = default 1.0; negative disables preemption.
	PreemptRatio float64
	// Parties is the STR barrier width OF EACH SHARD: a shard flushes
	// when Parties of ITS sessions have issued STR. Placement decides
	// which sessions share a shard (and hence a barrier), so Parties > 1
	// with GPUs > 1 needs client counts in multiples of Parties*GPUs for
	// strict barriers to fill. Default 1 (no barrier batching).
	Parties int
	// Placement names the policy assigning sessions to shards (see
	// PolicyNames; default least-sessions). Validated by New.
	Placement string
	// MaxSessionBytes caps one session's staging footprint
	// (InBytes+OutBytes); Place rejects a larger session with an error
	// naming the limit. 0 = no per-session cap (device-memory fit still
	// applies).
	MaxSessionBytes int64
	// Overcommit is the quota-admission factor: a shard admits a session
	// while reserved bytes stay within Overcommit x its device capacity.
	// 1.0 (or 0, the default) is the classic fit-or-reject admission;
	// 2.0 admits up to twice the device memory, relying on the managers'
	// eviction engine to page idle sessions' arenas to host snapshots.
	// Values below 1 underbook the device (burn-in headroom). Must be
	// > 0 when set.
	Overcommit float64
	// BarrierTimeout bounds each shard's partial-barrier wait (gvm
	// semantics, per shard).
	BarrierTimeout sim.Duration
	// FlushPolicy orders each shard's barrier batches.
	FlushPolicy gvm.FlushPolicy
	// SharedEnv, when non-nil, puts every shard on this one environment
	// instead of a private one per shard: simulation-mode callers (the
	// experiments) drive all shards under one virtual clock. The daemon
	// leaves it nil so each shard's owner goroutine runs in parallel.
	SharedEnv *sim.Env
	// Metrics receives every shard's manager series (gpu-labelled) plus
	// the node's placement gauges. nil creates a private registry.
	Metrics *metrics.Registry
	// FaultPlan, when non-nil, installs launch-path fault injectors on
	// the shards it targets (gvmd -fault-inject). Each shard derives its
	// own deterministic injector via FaultPlan.ForGPU.
	FaultPlan *gpusim.FaultPlan
	// Log is handed to every shard's manager.
	Log *slog.Logger
}

// Node owns the shards and the placement policy. Placement state is O(1)
// per operation: per-shard session and byte counters move on Place and
// Release, so choosing a shard never rescans live sessions.
type Node struct {
	cfg    Config
	shards []*Shard
	reg    *metrics.Registry

	mu     sync.Mutex
	placer *Placer
	// Per-shard placement loads, mutated under mu. The gauges double as
	// the scrape-visible node_placed_* series, and being atomics they can
	// be read off-lock (Loads, tests, /metrics).
	placedSessions []*metrics.Gauge
	placedBytes    []*metrics.Gauge
	// turnNS are the shards' live gvm_turnaround_ns histograms (the same
	// instruments the managers observe into — registration is
	// idempotent); the SLO policy reads their p99 at placement time.
	turnNS []*metrics.Histogram
	// health holds each shard's HealthState in the node_shard_health
	// gauge (the gauge atomic IS the state, so scrapes and Place read
	// the same word). Escalations go through SetHealth.
	health []*metrics.Gauge
	// faultHandler is the failover engine's escalation callback
	// (SetFaultHandler); invoked outside mu.
	faultHandler func(shard int, h HealthState)
}

// New builds the node's shards and validates the placement config. Call
// Start to bring the managers up.
func New(cfg Config) (*Node, error) {
	if cfg.GPUs == 0 {
		cfg.GPUs = 1
	}
	if cfg.GPUs < 1 {
		return nil, fmt.Errorf("node: GPUs must be >= 1, got %d", cfg.GPUs)
	}
	if cfg.Parties < 0 {
		return nil, fmt.Errorf("node: Parties must be >= 0, got %d", cfg.Parties)
	}
	if cfg.Arch.SMs == 0 {
		cfg.Arch = fermi.TeslaC2070()
	}
	if cfg.Overcommit < 0 || (cfg.Overcommit > 0 && cfg.Overcommit < 1e-9) {
		return nil, fmt.Errorf("node: Overcommit must be > 0, got %g", cfg.Overcommit)
	}
	if cfg.Overcommit == 0 {
		cfg.Overcommit = 1.0
	}
	placer, err := NewPlacer(cfg.Placement, "GPU")
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := &Node{cfg: cfg, reg: reg, placer: placer}
	for i := 0; i < cfg.GPUs; i++ {
		env := cfg.SharedEnv
		if env == nil {
			env = sim.NewEnv()
		}
		dev, err := gpusim.New(env, gpusim.Config{
			Arch:         cfg.Arch,
			Functional:   cfg.Functional,
			ExecWorkers:  cfg.ExecWorkers,
			PreemptRatio: cfg.PreemptRatio,
		})
		if err != nil {
			return nil, fmt.Errorf("node: gpu %d: %w", i, err)
		}
		mgr := gvm.New(env, gvm.Config{
			Device:          dev,
			GPUIndex:        i,
			SessionIDStride: cfg.GPUs,
			Parties:         cfg.Parties,
			Overcommit:      cfg.Overcommit,
			BarrierTimeout:  cfg.BarrierTimeout,
			FlushPolicy:     cfg.FlushPolicy,
			Metrics:         reg,
			Log:             cfg.Log,
		})
		n.shards = append(n.shards, &Shard{Index: i, Env: env, Dev: dev, Mgr: mgr})
		gl := metrics.L("gpu", strconv.Itoa(i))
		n.placedSessions = append(n.placedSessions,
			reg.Gauge("node_placed_sessions", "sessions the placement layer has assigned to the shard", gl))
		n.placedBytes = append(n.placedBytes,
			reg.Gauge("node_placed_bytes", "staging bytes the placement layer has reserved on the shard", gl))
		// gvm.New above already registered this series; the idempotent
		// registry hands back the same instrument the manager observes.
		n.turnNS = append(n.turnNS,
			reg.Histogram("gvm_turnaround_ns", "virtual ns from STR arrival to cycle completion", gl))
		n.health = append(n.health,
			reg.Gauge("node_shard_health", "shard health state: 0 healthy, 1 degraded, 2 draining, 3 unhealthy", gl))
		// Device fault events drive the shard health machine. The counter
		// set is pre-registered per kind so a scrape before any fault
		// still shows the series at zero.
		dev.SetIndex(i)
		dev.SetFaultInjector(cfg.FaultPlan.ForGPU(i))
		faults := map[gpusim.FaultKind]*metrics.Counter{}
		for _, k := range []gpusim.FaultKind{gpusim.XidMemory, gpusim.XidHang, gpusim.XidFatal} {
			faults[k] = reg.Counter("gpusim_faults_total", "injected device faults by kind", gl, metrics.L("kind", k.String()))
		}
		shard := i
		dev.OnFault(func(kind gpusim.FaultKind) {
			if c := faults[kind]; c != nil {
				c.Inc()
			}
			n.SetHealth(shard, healthFor(kind))
		})
	}
	return n, nil
}

// Start spawns every shard's manager. With per-shard environments it
// also drains each one so every manager is Ready on return; with
// SharedEnv the caller runs the environment itself (the managers come up
// alongside the caller's own processes).
func (n *Node) Start() error {
	for _, sh := range n.shards {
		sh.Mgr.Start()
	}
	if n.cfg.SharedEnv != nil {
		return nil
	}
	for _, sh := range n.shards {
		if err := sh.Env.Run(); err != nil {
			return fmt.Errorf("node: gpu %d: %w", sh.Index, err)
		}
	}
	return nil
}

// Metrics returns the registry shared by the node and its shards.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// NumShards returns the shard count.
func (n *Node) NumShards() int { return len(n.shards) }

// Shard returns shard i.
func (n *Node) Shard(i int) *Shard { return n.shards[i] }

// Shards returns every shard in index order.
func (n *Node) Shards() []*Shard { return n.shards }

// Policy returns the active placement policy's name.
func (n *Node) Policy() string { return n.placer.Policy() }

// SessionShard maps a session id back to the shard that minted it (ids
// are striped GPUIndex+1, GPUIndex+1+GPUs, ...). It does not check
// liveness.
func (n *Node) SessionShard(id int) int {
	if id < 1 {
		return -1
	}
	return (id - 1) % len(n.shards)
}

// Overcommit returns the node's quota-admission factor (>= defaulted).
func (n *Node) Overcommit() float64 { return n.cfg.Overcommit }

// quota returns one shard's admission capacity: Overcommit x device
// memory, the ceiling its reserved (placed) bytes may reach.
func (n *Node) quota(sh *Shard) int64 {
	return int64(n.cfg.Overcommit * float64(sh.Dev.Arch().MemBytes))
}

// Loads snapshots every shard's placement load in index order.
func (n *Node) Loads() []Load {
	loads := make([]Load, len(n.shards))
	for i, sh := range n.shards {
		loads[i] = Load{
			Shard:     i,
			Health:    HealthState(n.health[i].Value()),
			Sessions:  n.placedSessions[i].Value(),
			Bytes:     n.placedBytes[i].Value(),
			MemFree:   n.quota(sh) - n.placedBytes[i].Value(),
			Resident:  sh.Dev.MemResident(),
			P99TurnNS: n.turnNS[i].Quantile(0.99),
		}
	}
	return loads
}

// Place runs admission control and the placement policy for a session
// with the given staging footprint, reserving the footprint on the
// chosen shard. Admission is by RESERVED bytes against the overcommit
// quota (reserved <= Overcommit x capacity), not by physical fit: under
// overcommit the shard's eviction engine makes the bytes resident on
// demand. The caller must pair a successful Place with Release (even
// when the shard's manager later rejects the REQ). O(GPUs), no session
// scans.
func (n *Node) Place(inBytes, outBytes int64) (int, error) {
	footprint := inBytes + outBytes
	if max := n.cfg.MaxSessionBytes; max > 0 && footprint > max {
		return -1, fmt.Errorf(
			"node: session staging %d bytes (in %d + out %d) exceeds the daemon's -max-session-bytes limit %d",
			footprint, inBytes, outBytes, max)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// The shared two-level Placer does the health filter and the policy
	// pick; n.mu makes snapshot→select→reserve atomic against concurrent
	// Places.
	idx, err := n.placer.Select(n.Loads(), footprint)
	if err != nil {
		return -1, fmt.Errorf("node: %v (overcommit %.2g)", err, n.cfg.Overcommit)
	}
	n.placedSessions[idx].Inc()
	n.placedBytes[idx].Add(footprint)
	return idx, nil
}

// Release returns a session's reservation to shard idx (the inverse of
// Place; call it when the session is torn down or its REQ failed).
func (n *Node) Release(idx int, inBytes, outBytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.placedSessions[idx].Dec()
	n.placedBytes[idx].Add(-(inBytes + outBytes))
}

// Connect places spec's session and opens a VGPU bound to the chosen
// shard's manager — the simulation-mode equivalent of the daemon's REQ
// path (vgpu keeps its API; only the manager it binds to is decided
// here). The caller should pair a successful Connect with
// Release(shard, spec.InBytes, spec.OutBytes) after VGPU.Release.
func (n *Node) Connect(p *sim.Proc, spec *task.Spec) (*vgpu.VGPU, int, error) {
	return n.ConnectOpts(p, spec, vgpu.Opts{})
}

// ConnectOpts is Connect with explicit session options (weight, priority,
// memory quota) forwarded to the shard's manager.
func (n *Node) ConnectOpts(p *sim.Proc, spec *task.Spec, o vgpu.Opts) (*vgpu.VGPU, int, error) {
	if spec == nil {
		return nil, -1, fmt.Errorf("node: nil task spec")
	}
	idx, err := n.Place(spec.InBytes, spec.OutBytes)
	if err != nil {
		return nil, -1, err
	}
	v, err := vgpu.ConnectOpts(p, n.shards[idx].Mgr, spec, o)
	if err != nil {
		n.Release(idx, spec.InBytes, spec.OutBytes)
		return nil, -1, err
	}
	return v, idx, nil
}
