package node

import (
	"fmt"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// vecSpec builds a vector-add task spec over n float32 elements.
func vecSpec(n int) *task.Spec {
	return &task.Spec{
		Name:     "vecadd",
		InBytes:  int64(2 * n * 4),
		OutBytes: int64(n * 4),
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			a := b.In
			bb := b.In + cuda.DevPtr(n*4)
			return []*cuda.Kernel{kernels.NewVecAdd(a, bb, b.Out, n)}, nil
		},
	}
}

type memBytes []byte

func (b memBytes) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }

// TestNodeSpreadsSessions is the multi-GPU placement acceptance test
// (formerly a vgpu test against the manager's ExtraDevices): four
// sessions over two shards land two per shard, each shard's own barrier
// (Parties=2) fills, and each device runs exactly its own kernels.
func TestNodeSpreadsSessions(t *testing.T) {
	env := sim.NewEnv()
	nd, err := New(Config{GPUs: 2, Parties: 2, SharedEnv: env})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 4)
	placed := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			for _, sh := range nd.Shards() {
				p.Wait(sh.Mgr.Ready())
			}
			v, shard, err := nd.Connect(p, vecSpec(1<<20))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i], placed[i] = v.Session(), shard
			if err := v.RunCycle(p, nil, nil); err != nil {
				t.Error(err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// Least-sessions placement: two sessions per shard, two kernels each.
	if nd.Shard(0).Dev.KernelsRun != 2 || nd.Shard(1).Dev.KernelsRun != 2 {
		t.Fatalf("kernels split %d/%d, want 2/2",
			nd.Shard(0).Dev.KernelsRun, nd.Shard(1).Dev.KernelsRun)
	}
	// Session ids are striped per shard, so they never collide across
	// shards and SessionShard recovers the owner from the id alone.
	seen := map[int]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("session id %d minted twice", id)
		}
		seen[id] = true
		if got := nd.SessionShard(id); got != placed[i] {
			t.Errorf("SessionShard(%d) = %d, but the session was placed on shard %d", id, got, placed[i])
		}
	}
}

// TestNodeHalvesSaturatedTurnaround: 8 device-saturating sessions on two
// shards should roughly halve the one-shard makespan (each shard's
// barrier spans the 8/gpus sessions placed on it).
func TestNodeHalvesSaturatedTurnaround(t *testing.T) {
	bigSpec := func() *task.Spec {
		return &task.Spec{
			Name:    "filler",
			InBytes: 8, OutBytes: 8,
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				return []*cuda.Kernel{{
					Name: "fill", Grid: cuda.Dim(14), Block: cuda.Dim(1024),
					CyclesPerThread: 1e6,
				}}, nil
			},
		}
	}
	run := func(gpus int) sim.Duration {
		env := sim.NewEnv()
		nd, err := New(Config{GPUs: gpus, Parties: 8 / gpus, SharedEnv: env})
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		var makespan sim.Duration
		for i := 0; i < 8; i++ {
			env.Go("c", func(p *sim.Proc) {
				for _, sh := range nd.Shards() {
					p.Wait(sh.Mgr.Ready())
				}
				t0 := p.Now()
				v, _, err := nd.Connect(p, bigSpec())
				if err != nil {
					t.Error(err)
					return
				}
				if err := v.RunCycle(p, nil, nil); err != nil {
					t.Error(err)
					return
				}
				if d := p.Now().Sub(t0); d > makespan {
					makespan = d
				}
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	one, two := run(1), run(2)
	ratio := float64(one) / float64(two)
	if ratio < 1.6 {
		t.Fatalf("2-shard speedup = %.2f, want ~2 for a saturating workload", ratio)
	}
}

// TestSuspendResumeAcrossShards runs the SUS/RES extension on both
// shards at once: each session's device footprint drops to zero on ITS
// shard while suspended, and the restored state computes the right
// answer afterwards — shard isolation for the suspend path.
func TestSuspendResumeAcrossShards(t *testing.T) {
	const n = 1024
	arch := fermi.TeslaC2070()
	arch.MemBytes = 256 << 20
	env := sim.NewEnv()
	nd, err := New(Config{GPUs: 2, Arch: arch, Functional: true, SharedEnv: env})
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		i := i
		env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			for _, sh := range nd.Shards() {
				p.Wait(sh.Mgr.Ready())
			}
			v, shard, err := nd.Connect(p, vecSpec(n))
			if err != nil {
				t.Error(err)
				return
			}
			in := make([]float32, 2*n)
			for j := 0; j < n; j++ {
				in[j] = float32(j)
				in[n+j] = float32(10 * (i + 1))
			}
			if err := v.SendInput(p, cuda.HostFloat32Bytes(in)); err != nil {
				t.Error(err)
				return
			}
			if err := v.Start(p); err != nil {
				t.Error(err)
				return
			}
			if err := v.Wait(p); err != nil {
				t.Error(err)
				return
			}
			if err := v.Suspend(p); err != nil {
				t.Error(err)
				return
			}
			if got := nd.Shard(shard).Dev.MemInUse(); got != 0 {
				t.Errorf("shard %d holds %d bytes while its session is suspended", shard, got)
			}
			if err := v.Resume(p); err != nil {
				t.Error(err)
				return
			}
			out := make([]byte, n*4)
			if err := v.ReceiveOutput(p, out); err != nil {
				t.Error(err)
				return
			}
			res := cuda.Float32s(memBytes(out), 0, n)
			for j := 0; j < n; j++ {
				if want := float32(j) + float32(10*(i+1)); res[j] != want {
					t.Errorf("client %d: out[%d] = %g, want %g", i, j, res[j], want)
					return
				}
			}
			if err := v.Release(p); err != nil {
				t.Error(err)
				return
			}
			nd.Release(shard, int64(2*n*4), int64(n*4))
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := nd.Shard(i).Mgr.Suspensions(); got != 1 {
			t.Errorf("shard %d suspensions = %d, want 1", i, got)
		}
		if got := nd.Shard(i).Mgr.Resumes(); got != 1 {
			t.Errorf("shard %d resumes = %d, want 1", i, got)
		}
	}
	for _, l := range nd.Loads() {
		if l.Sessions != 0 || l.Bytes != 0 {
			t.Errorf("shard %d placement not drained: %d sessions, %d bytes", l.Shard, l.Sessions, l.Bytes)
		}
	}
}
