package node

import (
	"sync"
	"testing"
)

func TestDrainOrdering(t *testing.T) {
	var d Drain[int]
	if !d.Empty() {
		t.Fatal("new drain not empty")
	}
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if d.Empty() {
		t.Fatal("drain empty after pushes")
	}
	var got []int
	if n := d.Drain(func(v int) { got = append(got, v) }); n != 10 {
		t.Fatalf("drained %d values, want 10", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want push order", i, v)
		}
	}
	if n := d.Drain(func(int) {}); n != 0 || !d.Empty() {
		t.Fatal("drain not empty after draining")
	}
}

func TestDrainConcurrentProducers(t *testing.T) {
	const producers, per = 8, 1000
	var d Drain[int]
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Push(p*per + i)
			}
		}(p)
	}
	wg.Wait()
	seen := make(map[int]bool, producers*per)
	last := make(map[int]int) // producer -> last value seen (per-producer FIFO)
	d.Drain(func(v int) {
		if seen[v] {
			t.Fatalf("value %d delivered twice", v)
		}
		seen[v] = true
		p := v / per
		if prev, ok := last[p]; ok && v <= prev {
			t.Fatalf("producer %d out of order: %d after %d", p, v, prev)
		}
		last[p] = v
	})
	if len(seen) != producers*per {
		t.Fatalf("delivered %d values, want %d", len(seen), producers*per)
	}
}
