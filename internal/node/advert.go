package node

import "encoding/json"

// The capacity/health advertisement is the machine-readable snapshot a
// gvmd node exports for the federation router: gvmd writes one as the
// trailing JSON line of its -addr-file (the "addr-file v2" format — the
// plain address lines stay first, so v1 readers that take line one are
// unaffected) and serves a live one on every STA verb, which gvmfed
// polls to drive node-level placement. The schema deliberately mirrors
// Load: the router turns an Advertisement into one node-level Load and
// feeds it to the same Placer/Policy machinery the node itself uses for
// shards.

// AdvertVersion is the advertisement schema version.
const AdvertVersion = 2

// ShardAd is one shard's slice of a node advertisement.
type ShardAd struct {
	// GPU is the shard index on its node.
	GPU int `json:"gpu"`
	// Health is the shard's HealthState name ("healthy", "degraded",
	// "draining", "unhealthy").
	Health string `json:"health"`
	// Sessions is the number of sessions placed on the shard.
	Sessions int64 `json:"sessions"`
	// ReservedBytes is the placed staging footprint.
	ReservedBytes int64 `json:"reserved_bytes"`
	// FreeBytes is the reservation headroom under the overcommit quota.
	FreeBytes int64 `json:"free_bytes"`
	// ResidentBytes is physically resident device memory.
	ResidentBytes int64 `json:"resident_bytes"`
	// CapacityBytes is the admission quota (overcommit x device memory).
	CapacityBytes int64 `json:"capacity_bytes"`
	// P99TurnNS is the shard's observed p99 turnaround in virtual ns.
	P99TurnNS int64 `json:"p99_turn_ns"`
}

// Advertisement is one node's capacity/health export.
type Advertisement struct {
	V          int       `json:"v"`
	GPUs       int       `json:"gpus"`
	Arch       string    `json:"arch"`
	Placement  string    `json:"placement"`
	Overcommit float64   `json:"overcommit"`
	Shards     []ShardAd `json:"shards"`
}

// Advertise snapshots the node's current capacity and health. Safe from
// any goroutine (every input is an atomic gauge or a quantile read).
func (n *Node) Advertise() Advertisement {
	ad := Advertisement{
		V:          AdvertVersion,
		GPUs:       len(n.shards),
		Arch:       n.cfg.Arch.Name,
		Placement:  n.Policy(),
		Overcommit: n.cfg.Overcommit,
	}
	for i, l := range n.Loads() {
		ad.Shards = append(ad.Shards, ShardAd{
			GPU:           i,
			Health:        l.Health.String(),
			Sessions:      l.Sessions,
			ReservedBytes: l.Bytes,
			FreeBytes:     l.MemFree,
			ResidentBytes: l.Resident,
			CapacityBytes: n.quota(n.shards[i]),
			P99TurnNS:     l.P99TurnNS,
		})
	}
	return ad
}

// MarshalAd renders an advertisement as one JSON line (no trailing
// newline), the STA response payload and the -addr-file v2 trailer.
func MarshalAd(ad Advertisement) ([]byte, error) { return json.Marshal(ad) }

// UnmarshalAd parses an advertisement.
func UnmarshalAd(data []byte) (Advertisement, error) {
	var ad Advertisement
	err := json.Unmarshal(data, &ad)
	return ad, err
}

// ParseHealth maps a health state name back to its HealthState; unknown
// names conservatively parse as Unhealthy.
func ParseHealth(s string) HealthState {
	switch s {
	case "healthy":
		return Healthy
	case "degraded":
		return Degraded
	case "draining":
		return Draining
	default:
		return Unhealthy
	}
}

// NodeLoad folds an advertisement into one node-level Load for the
// federation Placer: sessions and reserved bytes summed over every
// shard, headroom summed over PLACEABLE shards only (a draining shard's
// free bytes are not headroom anyone can use), p99 the worst placeable
// shard's. The node's health is the best shard's — one healthy shard
// keeps the node placeable, while a node whose every shard is draining
// or dead reports the worst state so the router evacuates it.
func NodeLoad(idx int, ad Advertisement) Load {
	l := Load{Shard: idx, Health: Unhealthy}
	best := Unhealthy
	for _, sh := range ad.Shards {
		h := ParseHealth(sh.Health)
		if h < best {
			best = h
		}
		l.Sessions += sh.Sessions
		l.Bytes += sh.ReservedBytes
		l.Resident += sh.ResidentBytes
		if h.Placeable() {
			l.MemFree += sh.FreeBytes
			if sh.P99TurnNS > l.P99TurnNS {
				l.P99TurnNS = sh.P99TurnNS
			}
		}
	}
	l.Health = best
	return l
}
