package node

import (
	"fmt"

	"gpuvirt/internal/gpusim"
)

// HealthState is one shard's position in the health state machine:
//
//	Healthy --(memory fault)--> Degraded --(hang/fatal)--> Unhealthy
//	   \---------(drain signal)------> Draining --(hang/fatal)--^
//
// Transitions only escalate (rank order below); a faulted simulated
// device never recovers in place, it is replaced by migrating its
// sessions away. Placement offers candidates only from Healthy shards;
// Degraded shards keep serving their existing sessions but receive no
// new ones; Unhealthy and Draining shards must be evacuated by the
// failover engine (Draining is the graceful, operator-initiated form).
type HealthState int32

const (
	// Healthy shards accept new placements.
	Healthy HealthState = iota
	// Degraded shards (memory faults) serve existing sessions but take
	// no new placements.
	Degraded
	// Draining shards are being decommissioned gracefully: no new
	// placements, and the failover engine migrates every session off.
	Draining
	// Unhealthy shards (hang/fatal faults) cannot make progress; every
	// session must fail over immediately.
	Unhealthy
)

func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("HealthState(%d)", int32(h))
	}
}

// Placeable reports whether a shard in this state accepts new sessions.
func (h HealthState) Placeable() bool { return h == Healthy }

// Evacuate reports whether a shard in this state must have its sessions
// migrated away.
func (h HealthState) Evacuate() bool { return h == Draining || h == Unhealthy }

// healthFor maps a device fault to the shard health it implies.
func healthFor(kind gpusim.FaultKind) HealthState {
	switch kind {
	case gpusim.XidMemory:
		return Degraded
	case gpusim.XidHang, gpusim.XidFatal:
		return Unhealthy
	default:
		return Healthy
	}
}

// Health returns shard i's current health. Safe from any goroutine (the
// state is the node_shard_health gauge's atomic).
func (n *Node) Health(i int) HealthState {
	return HealthState(n.health[i].Value())
}

// SetHealth escalates shard i to h (downgrades are ignored — the
// machine only moves toward Unhealthy) and, on a change, invokes the
// fault handler outside the node lock. Safe from any goroutine.
func (n *Node) SetHealth(i int, h HealthState) {
	n.mu.Lock()
	cur := HealthState(n.health[i].Value())
	if h <= cur {
		n.mu.Unlock()
		return
	}
	n.health[i].Set(int64(h))
	fn := n.faultHandler
	n.mu.Unlock()
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("shard health escalated", "gpu", i, "from", cur.String(), "to", h.String())
	}
	if fn != nil {
		fn(i, h)
	}
}

// Drain marks shard i for graceful decommission: no new placements and
// the fault handler (the failover engine) migrates its sessions away.
func (n *Node) Drain(i int) { n.SetHealth(i, Draining) }

// DrainAll drains the whole node: every shard is marked Draining before
// any fault handler fires, so the per-shard evacuations that follow
// cannot ping-pong sessions onto a sibling that is about to drain too.
// With no placeable shard left the intra-node failover engine leaves
// sessions serving in place; a federation router sees the node
// advertise itself unplaceable and migrates the sessions across nodes.
func (n *Node) DrainAll() {
	n.mu.Lock()
	changed := make([]int, 0, len(n.health))
	for i := range n.health {
		if HealthState(n.health[i].Value()) < Draining {
			n.health[i].Set(int64(Draining))
			changed = append(changed, i)
		}
	}
	fn := n.faultHandler
	n.mu.Unlock()
	for _, i := range changed {
		if n.cfg.Log != nil {
			n.cfg.Log.Warn("shard health escalated", "gpu", i, "to", Draining.String())
		}
		if fn != nil {
			fn(i, Draining)
		}
	}
}

// SetFaultHandler installs the callback invoked whenever a shard's
// health escalates (fault injection or Drain). The handler runs on the
// goroutine that caused the escalation — for device faults that is the
// shard's owner goroutine, so it must not block on work routed through
// that same owner; the ipc server's handler hands off to a background
// goroutine. Install before serving traffic.
func (n *Node) SetFaultHandler(fn func(shard int, h HealthState)) {
	n.mu.Lock()
	n.faultHandler = fn
	n.mu.Unlock()
}
