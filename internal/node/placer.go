package node

import (
	"fmt"
	"strings"
	"sync"
)

// Placer is one level of the two-level placement hierarchy: the shared
// admission-filter + policy-pick engine that both the node (choosing a
// GPU shard for a session) and the federation router (choosing a gvmd
// node for a session) drive with the same Policy implementations. The
// level only changes the Loads fed in and the noun used in rejection
// errors — the filtering and the policies are identical, so a policy
// written once composes at node level and shard level with no
// duplicated code.
//
// Select is serialized under the Placer's own lock, which is what lets
// stateful policies (round-robin's cursor) stay unguarded.
type Placer struct {
	// Noun names one placement target in rejection errors: "GPU" at the
	// node→shard level, "node" at the federation→node level.
	Noun string

	mu     sync.Mutex
	policy Policy
}

// NewPlacer builds a placer for one hierarchy level from a policy name
// (see PolicyNames) and the target noun used in errors.
func NewPlacer(policyName, noun string) (*Placer, error) {
	policy, err := PolicyByName(policyName)
	if err != nil {
		return nil, err
	}
	return &Placer{Noun: noun, policy: policy}, nil
}

// noun is the per-entry label used when rendering loads ("gpu 0: ...",
// "node 1: ...").
func (pl *Placer) noun() string { return strings.ToLower(pl.Noun) }

// Policy returns the active policy's name.
func (pl *Placer) Policy() string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.policy.Name()
}

// Select runs this level's admission filter and placement policy over
// the current loads and returns the chosen target's id (Load.Shard).
// Targets whose health is not Placeable are invisible to the policy;
// of the rest, only those with footprint bytes of reservation headroom
// are candidates. Rejections name every target's health state alongside
// its free bytes, so an Unhealthy target is distinguishable from a full
// one.
func (pl *Placer) Select(all []Load, footprint int64) (int, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	cands := make([]Load, 0, len(all))
	placeable := 0
	for _, l := range all {
		// Degraded/draining/unhealthy targets are invisible to the
		// policy: faults must never attract new sessions.
		if !l.Health.Placeable() {
			continue
		}
		placeable++
		if footprint <= l.MemFree {
			cands = append(cands, l)
		}
	}
	if placeable == 0 {
		return -1, fmt.Errorf("no healthy %s to place on (%s)", pl.Noun, describeLoads(pl.noun(), all))
	}
	if len(cands) == 0 {
		return -1, fmt.Errorf("session footprint %d bytes exceeds every healthy %s's reservation headroom (%s)",
			footprint, pl.Noun, describeLoads(pl.noun(), all))
	}
	k := pl.policy.Pick(cands, footprint)
	if k < 0 || k >= len(cands) {
		k = 0
	}
	return cands[k].Shard, nil
}
