package node

import "sync/atomic"

// Drain is a multi-producer single-consumer event queue: any goroutine
// may Push, one owner goroutine Drains. It is the registration side
// channel of the ring control plane — connection goroutines hand new
// (or closing) session rings to the shard owner without taking a lock
// the owner's sweep loop would have to contend on.
//
// The implementation is a Treiber push stack: Push is one
// compare-and-swap on the head pointer, Drain is one atomic swap plus a
// list reversal, so the owner's fast path (empty drain) is a single
// atomic load of nil. Unlike a channel there is no capacity to size and
// an empty check never syscalls or parks.
type Drain[T any] struct {
	head atomic.Pointer[drainNode[T]]
}

type drainNode[T any] struct {
	v    T
	next *drainNode[T]
}

// Push enqueues v. Safe from any goroutine.
func (d *Drain[T]) Push(v T) {
	n := &drainNode[T]{v: v}
	for {
		old := d.head.Load()
		n.next = old
		if d.head.CompareAndSwap(old, n) {
			return
		}
	}
}

// Drain removes every queued value and applies fn to each in push order
// (oldest first). It returns how many values it delivered. Only the
// owner goroutine may call it.
func (d *Drain[T]) Drain(fn func(T)) int {
	top := d.head.Swap(nil)
	if top == nil {
		return 0
	}
	// The stack pops newest-first; reverse to deliver in push order so
	// a session's register always precedes its unregister.
	var rev *drainNode[T]
	for top != nil {
		next := top.next
		top.next = rev
		rev = top
		top = next
	}
	n := 0
	for ; rev != nil; rev = rev.next {
		fn(rev.v)
		n++
	}
	return n
}

// Empty reports whether the drain has no queued values (a single atomic
// load; the answer may be stale by the time the caller acts on it).
func (d *Drain[T]) Empty() bool { return d.head.Load() == nil }
