package node

import (
	"strings"
	"testing"
)

// TestPlacerSharedAcrossLevels pins the two-level placement contract:
// the SAME Policy implementation drives a Placer at the node→shard
// level and at the federation→node level — only the Loads and the noun
// differ.
func TestPlacerSharedAcrossLevels(t *testing.T) {
	loads := []Load{
		{Shard: 0, Health: Healthy, Sessions: 3, MemFree: 1 << 30},
		{Shard: 1, Health: Healthy, Sessions: 1, MemFree: 1 << 30},
	}
	for _, noun := range []string{"GPU", "node"} {
		pl, err := NewPlacer("least-sessions", noun)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := pl.Select(loads, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("%s-level least-sessions picked %d, want 1 (fewest sessions)", noun, idx)
		}
	}
}

func TestPlacerUnknownPolicy(t *testing.T) {
	if _, err := NewPlacer("no-such-policy", "node"); err == nil {
		t.Fatal("NewPlacer accepted an unknown policy name")
	}
}

// TestPlacerFiltersUnplaceable checks that degraded/draining/unhealthy
// targets are invisible to the policy even when they have the most
// headroom.
func TestPlacerFiltersUnplaceable(t *testing.T) {
	pl, err := NewPlacer("least-memory", "node")
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{
		{Shard: 0, Health: Draining, MemFree: 8 << 30},
		{Shard: 1, Health: Unhealthy, MemFree: 8 << 30},
		{Shard: 2, Health: Healthy, Bytes: 4 << 20, MemFree: 1 << 30},
		{Shard: 3, Health: Degraded, MemFree: 8 << 30},
	}
	for i := 0; i < 3; i++ {
		idx, err := pl.Select(loads, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 2 {
			t.Fatalf("Select picked %d, want 2 (the only placeable target)", idx)
		}
	}
}

// TestPlacerRejectionNamesHealthStates checks satellite 2's contract:
// rejection errors name each target's health state alongside its free
// bytes, so an unhealthy target is distinguishable from a full one.
func TestPlacerRejectionNamesHealthStates(t *testing.T) {
	pl, err := NewPlacer("least-sessions", "node")
	if err != nil {
		t.Fatal(err)
	}
	loads := []Load{
		{Shard: 0, Health: Unhealthy, MemFree: 8 << 30},
		{Shard: 1, Health: Draining, MemFree: 2 << 30},
	}
	_, err = pl.Select(loads, 1<<20)
	if err == nil {
		t.Fatal("Select succeeded with no placeable target")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no healthy node") {
		t.Fatalf("error %q does not lead with the level's noun", msg)
	}
	for _, want := range []string{"node 0", "unhealthy", "node 1", "draining", "headroom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not name %q", msg, want)
		}
	}

	// Full-but-healthy reads differently from unhealthy: the footprint
	// error still names each target's state.
	loads = []Load{{Shard: 0, Health: Healthy, MemFree: 1 << 10}}
	_, err = pl.Select(loads, 1<<20)
	if err == nil {
		t.Fatal("Select fit a footprint over the headroom")
	}
	msg = err.Error()
	if !strings.Contains(msg, "exceeds every healthy node") || !strings.Contains(msg, "healthy") {
		t.Fatalf("headroom error %q does not name the health state", msg)
	}
}

// TestDrainAllMarksEveryShard checks the whole-node drain entry used by
// gvmd's SIGUSR1 handler: every shard below Draining escalates to
// Draining in one call (no intra-node ping-pong), and worse states keep
// theirs.
func TestDrainAllMarksEveryShard(t *testing.T) {
	nd, err := New(Config{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	nd.SetHealth(2, Unhealthy)
	nd.DrainAll()
	for i, want := range []HealthState{Draining, Draining, Unhealthy} {
		if got := nd.Health(i); got != want {
			t.Fatalf("gpu %d after DrainAll = %v, want %v", i, got, want)
		}
	}
	if _, err := nd.Place(1<<10, 1<<10); err == nil {
		t.Fatal("Place succeeded on a fully drained node")
	}
}

// TestAdvertisementRoundTrip checks the addr-file v2 / STA schema: a
// node's advertisement survives MarshalAd/UnmarshalAd, and NodeLoad
// folds it into one federation-level Load.
func TestAdvertisementRoundTrip(t *testing.T) {
	nd, err := New(Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nd.Place(1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	nd.Drain(1)

	ad := nd.Advertise()
	if ad.V != AdvertVersion {
		t.Fatalf("advertisement version = %d, want %d", ad.V, AdvertVersion)
	}
	if ad.GPUs != 2 || len(ad.Shards) != 2 {
		t.Fatalf("advertisement covers %d/%d shards, want 2/2", ad.GPUs, len(ad.Shards))
	}
	blob, err := MarshalAd(ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAd(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != ad.V || got.GPUs != ad.GPUs || got.Placement != ad.Placement || len(got.Shards) != len(ad.Shards) {
		t.Fatalf("advertisement round trip changed the header: %+v != %+v", got, ad)
	}
	for i := range ad.Shards {
		if got.Shards[i] != ad.Shards[i] {
			t.Fatalf("shard %d round trip: %+v != %+v", i, got.Shards[i], ad.Shards[i])
		}
	}

	l := NodeLoad(7, got)
	if l.Shard != 7 {
		t.Fatalf("NodeLoad id = %d, want 7", l.Shard)
	}
	if l.Health != Healthy {
		t.Fatalf("node health = %v, want healthy (best shard wins)", l.Health)
	}
	if l.Sessions != 1 || l.Bytes != 2<<20 {
		t.Fatalf("NodeLoad folded %d sessions / %d bytes, want 1 / %d", l.Sessions, l.Bytes, 2<<20)
	}
	// The draining shard's free bytes are not headroom anyone can use.
	if want := got.Shards[0].FreeBytes; l.MemFree != want {
		t.Fatalf("NodeLoad headroom = %d, want the placeable shard's %d", l.MemFree, want)
	}
}

// TestParseHealth checks unknown names conservatively parse unhealthy.
func TestParseHealth(t *testing.T) {
	for name, want := range map[string]HealthState{
		"healthy": Healthy, "degraded": Degraded, "draining": Draining,
		"unhealthy": Unhealthy, "banana": Unhealthy, "": Unhealthy,
	} {
		if got := ParseHealth(name); got != want {
			t.Fatalf("ParseHealth(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestNodeLoadAllDrainingIsUnplaceable checks a node whose every shard
// drains reports an unplaceable state so the router evacuates it.
func TestNodeLoadAllDrainingIsUnplaceable(t *testing.T) {
	ad := Advertisement{V: AdvertVersion, GPUs: 2, Shards: []ShardAd{
		{GPU: 0, Health: "draining", FreeBytes: 1 << 30},
		{GPU: 1, Health: "draining", FreeBytes: 1 << 30},
	}}
	l := NodeLoad(0, ad)
	if l.Health.Placeable() {
		t.Fatalf("all-draining node folded to placeable state %v", l.Health)
	}
	if l.MemFree != 0 {
		t.Fatalf("all-draining node advertises %d free bytes as headroom, want 0", l.MemFree)
	}
}
