package node

import (
	"fmt"
	"sort"
	"strings"
)

// Load is one shard's placement-relevant load, maintained by the node in
// O(1) per REQ/RLS (no session-map rescans): counters move when a
// session is placed or released, never by iterating live sessions.
type Load struct {
	// Shard is the placement target's index at this hierarchy level: the
	// GPU index when the node places a session on a shard, the backend
	// node index when the federation router places a session on a gvmd.
	Shard int
	// Health is the target's health state; the Placer only offers
	// Placeable targets to the policy, and rejection errors name the
	// state so an Unhealthy target is distinguishable from a full one.
	Health HealthState
	// Sessions is the number of sessions currently placed on the shard.
	Sessions int64
	// Bytes is the aggregate staging footprint (InBytes+OutBytes) of the
	// placed sessions — the shard's RESERVED bytes from the placement
	// layer's point of view.
	Bytes int64
	// MemFree is the reservation headroom left under the node's
	// overcommit quota (Overcommit x capacity - Bytes). Under overcommit
	// this is admission headroom, not physically free device memory.
	MemFree int64
	// Resident is the shard's physically resident device memory — what
	// the manager has actually allocated on the card. Reserved bytes
	// beyond Resident are evicted arenas (or not-yet-touched
	// reservations) living in host snapshots.
	Resident int64
	// P99TurnNS is the shard's observed p99 STR→completion turnaround in
	// virtual nanoseconds, read from the live gvm_turnaround_ns metric
	// (0 until the shard has completed a cycle). The SLO policy places by
	// this instead of by session count.
	P99TurnNS int64
}

// Policy picks the shard for a new session. Pick receives the admissible
// candidates (every shard whose free device memory fits the footprint,
// ascending shard index) and returns an index INTO cands. The node calls
// Pick under its placement lock, so policies may keep unguarded state
// (e.g. a round-robin cursor).
type Policy interface {
	Name() string
	Pick(cands []Load, footprint int64) int
}

// Policy names accepted by PolicyByName (and gvmd -placement).
const (
	LeastSessions = "least-sessions"
	RoundRobin    = "round-robin"
	LeastMemory   = "least-memory"
	WeightedBytes = "weighted-bytes"
	SLO           = "slo"
)

// PolicyNames lists the built-in policies in flag-help order.
func PolicyNames() []string {
	return []string{LeastSessions, RoundRobin, LeastMemory, WeightedBytes, SLO}
}

// PolicyByName returns a fresh instance of a built-in policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", LeastSessions:
		return leastSessions{}, nil
	case RoundRobin:
		return &roundRobin{}, nil
	case LeastMemory:
		return leastMemory{}, nil
	case WeightedBytes:
		return weightedBytes{}, nil
	case SLO:
		return sloPolicy{}, nil
	}
	return nil, fmt.Errorf("node: unknown placement policy %q (want %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// leastSessions picks the shard with the fewest placed sessions (ties go
// to the lowest index) — the pre-shard daemon's placement behaviour.
type leastSessions struct{}

func (leastSessions) Name() string { return LeastSessions }

func (leastSessions) Pick(cands []Load, _ int64) int {
	best := 0
	for i, c := range cands {
		if c.Sessions < cands[best].Sessions {
			best = i
		}
	}
	return best
}

// roundRobin cycles through the candidates regardless of load: useful
// when sessions are uniform and arrival order should dictate spread.
type roundRobin struct{ cursor int }

func (*roundRobin) Name() string { return RoundRobin }

func (r *roundRobin) Pick(cands []Load, _ int64) int {
	i := r.cursor % len(cands)
	r.cursor++
	return i
}

// leastMemory picks the shard with the most free device memory (i.e. the
// least memory in use), so memory-heavy sessions spread by footprint
// headroom rather than session count.
type leastMemory struct{}

func (leastMemory) Name() string { return LeastMemory }

func (leastMemory) Pick(cands []Load, _ int64) int {
	best := 0
	for i, c := range cands {
		if c.MemFree > cands[best].MemFree {
			best = i
		}
	}
	return best
}

// weightedBytes picks the shard with the smallest placed staging
// footprint: sessions are weighted by their bytes, so one large session
// counts as many small ones when balancing.
type weightedBytes struct{}

func (weightedBytes) Name() string { return WeightedBytes }

func (weightedBytes) Pick(cands []Load, _ int64) int {
	best := 0
	for i, c := range cands {
		if c.Bytes < cands[best].Bytes {
			best = i
		}
	}
	return best
}

// sloPolicy picks the shard with the lowest observed p99 turnaround —
// the live latency a new tenant would actually experience there — read
// from each shard's gvm_turnaround_ns histogram. Shards with no
// completed cycles report 0 and thus attract sessions first (cold shards
// are the best SLO bet); ties fall back to fewest sessions, then lowest
// index, so a cold multi-shard node behaves like least-sessions until
// latency signal accumulates.
type sloPolicy struct{}

func (sloPolicy) Name() string { return SLO }

func (sloPolicy) Pick(cands []Load, _ int64) int {
	best := 0
	for i, c := range cands[1:] {
		b := cands[best]
		if c.P99TurnNS < b.P99TurnNS ||
			(c.P99TurnNS == b.P99TurnNS && c.Sessions < b.Sessions) {
			best = i + 1
		}
	}
	return best
}

// describeLoads renders candidate loads for admission errors, e.g.
// "gpu 0 healthy: 512 B headroom (1024 B reserved, 768 B resident)".
// Each entry names the target's health state alongside its free bytes —
// an Unhealthy target shows up as such instead of masquerading as a
// full one. Headroom is what is left under the overcommit quota;
// reserved vs resident shows how much of the placed footprint actually
// sits on the card. noun labels one target ("gpu", "node").
func describeLoads(noun string, loads []Load) string {
	sorted := append([]Load(nil), loads...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d %s: %d B headroom (%d B reserved, %d B resident)",
			noun, l.Shard, l.Health, l.MemFree, l.Bytes, l.Resident)
	}
	return b.String()
}
