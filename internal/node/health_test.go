package node

import (
	"strings"
	"testing"

	"gpuvirt/internal/gpusim"
)

func TestHealthForMapsFaultKinds(t *testing.T) {
	for _, tc := range []struct {
		kind gpusim.FaultKind
		want HealthState
	}{
		{gpusim.FaultNone, Healthy},
		{gpusim.XidMemory, Degraded},
		{gpusim.XidHang, Unhealthy},
		{gpusim.XidFatal, Unhealthy},
	} {
		if got := healthFor(tc.kind); got != tc.want {
			t.Errorf("healthFor(%v) = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestHealthStatePredicates(t *testing.T) {
	for _, tc := range []struct {
		h                   HealthState
		placeable, evacuate bool
	}{
		{Healthy, true, false},
		{Degraded, false, false},
		{Draining, false, true},
		{Unhealthy, false, true},
	} {
		if got := tc.h.Placeable(); got != tc.placeable {
			t.Errorf("%v.Placeable() = %v, want %v", tc.h, got, tc.placeable)
		}
		if got := tc.h.Evacuate(); got != tc.evacuate {
			t.Errorf("%v.Evacuate() = %v, want %v", tc.h, got, tc.evacuate)
		}
	}
}

// TestSetHealthEscalatesOnly pins the state machine's one rule: health
// moves only toward Unhealthy, and the fault handler fires exactly once
// per transition.
func TestSetHealthEscalatesOnly(t *testing.T) {
	nd, err := New(Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	type event struct {
		shard int
		h     HealthState
	}
	var events []event
	nd.SetFaultHandler(func(shard int, h HealthState) {
		events = append(events, event{shard, h})
	})

	nd.SetHealth(0, Degraded)
	nd.SetHealth(0, Degraded) // same state: no transition, no callback
	nd.SetHealth(0, Healthy)  // downgrade: ignored
	if got := nd.Health(0); got != Degraded {
		t.Fatalf("health after downgrade attempt = %v, want degraded", got)
	}
	nd.SetHealth(0, Unhealthy)
	nd.SetHealth(0, Draining) // below unhealthy: ignored
	if got := nd.Health(0); got != Unhealthy {
		t.Fatalf("health = %v, want unhealthy (escalate-only)", got)
	}
	if got := nd.Health(1); got != Healthy {
		t.Fatalf("gpu 1 health = %v, want healthy (untouched)", got)
	}
	want := []event{{0, Degraded}, {0, Unhealthy}}
	if len(events) != len(want) {
		t.Fatalf("handler fired %d times (%v), want %v", len(events), events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("handler events = %v, want %v", events, want)
		}
	}
}

// TestDrainIsAnEscalation checks Drain is the graceful evacuation entry:
// it marks the shard Draining via the same escalate-only machine, so an
// already-Unhealthy shard keeps its state.
func TestDrainIsAnEscalation(t *testing.T) {
	nd, err := New(Config{GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	nd.Drain(0)
	if got := nd.Health(0); got != Draining {
		t.Fatalf("health after Drain = %v, want draining", got)
	}
	nd.SetHealth(1, Unhealthy)
	nd.Drain(1)
	if got := nd.Health(1); got != Unhealthy {
		t.Fatalf("Drain downgraded an unhealthy shard to %v", got)
	}
}

// TestPlaceSkipsUnplaceableShards checks placement only ever offers
// Healthy shards to the policy, and fails with a clear error when no
// shard is placeable.
func TestPlaceSkipsUnplaceableShards(t *testing.T) {
	nd, err := New(Config{GPUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	nd.SetHealth(0, Degraded)
	nd.SetHealth(2, Unhealthy)
	for i := 0; i < 4; i++ {
		idx, err := nd.Place(1<<10, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Fatalf("placement %d landed on gpu %d, want 1 (the only healthy shard)", i, idx)
		}
	}
	nd.Drain(1)
	_, err = nd.Place(1<<10, 1<<10)
	if err == nil {
		t.Fatal("Place succeeded with every shard unplaceable")
	}
	if !strings.Contains(err.Error(), "no healthy GPU") {
		t.Fatalf("error %q does not say no healthy GPU remains", err)
	}
}
