//go:build !linux

package shm

import (
	"sync/atomic"
	"time"
)

// Non-Linux fallback: poll the doorbell word with short sleeps. Counters
// still advance so the syscall-accounting tests stay meaningful.

func futexWait(d *atomic.Uint32, val uint32, timeout time.Duration) {
	futexWaits.Add(1)
	if timeout <= 0 {
		timeout = 10 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for d.Load() == val && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
}

func futexWake(d *atomic.Uint32) { futexWakes.Add(1) }
