//go:build !unix

package shm

import (
	"errors"
	"os"
)

// mapFile is unavailable on this platform; file segments use positioned
// file I/O throughout.
func mapFile(f *os.File, n int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func unmapFile(b []byte) error { return nil }
