package shm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemorySegmentRoundTrip(t *testing.T) {
	s := NewMemory(64, true)
	defer s.Close()
	if s.Size() != 64 {
		t.Fatalf("Size = %d", s.Size())
	}
	data := []byte("hello shared memory")
	if err := s.WriteAt(data, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.ReadAt(got, 8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
	if s.Bytes() == nil {
		t.Fatal("functional segment has no backing")
	}
}

func TestMemorySegmentBounds(t *testing.T) {
	s := NewMemory(16, true)
	defer s.Close()
	cases := []struct {
		n   int
		off int64
	}{
		{4, -1}, // negative offset
		{4, 13}, // crosses the end
		{17, 0}, // larger than the segment
		{1, 16}, // just past the end
	}
	for _, c := range cases {
		if err := s.WriteAt(make([]byte, c.n), c.off); err == nil {
			t.Errorf("WriteAt(%d bytes at %d) succeeded", c.n, c.off)
		}
		if err := s.ReadAt(make([]byte, c.n), c.off); err == nil {
			t.Errorf("ReadAt(%d bytes at %d) succeeded", c.n, c.off)
		}
	}
}

func TestTimingOnlySegment(t *testing.T) {
	s := NewMemory(32, false)
	defer s.Close()
	if s.Bytes() != nil {
		t.Fatal("timing-only segment has backing memory")
	}
	// Bounds are still enforced; data is discarded.
	if err := s.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(make([]byte, 8), 30); err == nil {
		t.Fatal("out-of-bounds write accepted on timing-only segment")
	}
	if err := s.ReadAt(make([]byte, 8), 24); err != nil {
		t.Fatal(err)
	}
}

func TestFileSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir, "seg-test", 128)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5}
	if err := s.WriteAt(data, 40); err != nil {
		t.Fatal(err)
	}
	// Another attachment (a second "process") sees the same bytes.
	o, err := OpenFile(dir, "seg-test")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := o.ReadAt(got, 40); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-attachment read %v, want %v", got, data)
	}
	if o.Size() != 128 {
		t.Fatalf("attached size = %d", o.Size())
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	// Owner close removes the file.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-test")); !os.IsNotExist(err) {
		t.Fatal("owner Close did not remove the segment file")
	}
}

func TestFileSegmentBounds(t *testing.T) {
	s, err := NewFile(t.TempDir(), "b", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt(make([]byte, 8), 12); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if err := s.ReadAt(make([]byte, 8), -1); err == nil {
		t.Fatal("negative-offset read accepted")
	}
	if b := s.Bytes(); b != nil && int64(len(b)) != s.Size() {
		t.Fatalf("mapped slice is %d bytes, segment is %d", len(b), s.Size())
	}
}

// TestFileSegmentMmapVisibility checks that the mmap fast path and the
// file itself stay coherent: bytes written through Bytes() are visible to
// a second attachment and vice versa.
func TestFileSegmentMmapVisibility(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir, "seg-mmap", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Bytes() == nil {
		t.Skip("mmap unavailable on this platform; file-I/O fallback covered elsewhere")
	}
	o, err := OpenFile(dir, "seg-mmap")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	// Direct slice write on one attachment, ReadAt on the other.
	copy(s.Bytes()[10:], "shared")
	got := make([]byte, 6)
	if err := o.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared" {
		t.Fatalf("cross-attachment read %q, want %q", got, "shared")
	}
	// WriteAt on one attachment, direct slice read on the other.
	if err := o.WriteAt([]byte("reply"), 32); err != nil {
		t.Fatal(err)
	}
	if string(s.Bytes()[32:37]) != "reply" {
		t.Fatalf("mapped view reads %q, want %q", s.Bytes()[32:37], "reply")
	}
}

// TestFileSegmentEmpty: zero-length segments cannot be mapped and must
// still behave (bounds errors, nil-safe Bytes).
func TestFileSegmentEmpty(t *testing.T) {
	s, err := NewFile(t.TempDir(), "seg-empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write into empty segment accepted")
	}
	if err := s.ReadAt(nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingSegment(t *testing.T) {
	if _, err := OpenFile(t.TempDir(), "nope"); err == nil {
		t.Fatal("OpenFile of a missing segment succeeded")
	}
}

func TestDefaultDirExists(t *testing.T) {
	st, err := os.Stat(DefaultDir())
	if err != nil || !st.IsDir() {
		t.Fatalf("DefaultDir %q unusable: %v", DefaultDir(), err)
	}
}

// Property: any sequence of in-bounds writes followed by reads returns
// exactly what was written last to each byte.
func TestQuickMemorySegmentConsistency(t *testing.T) {
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		const size = 4096
		s := NewMemory(size, true)
		defer s.Close()
		shadow := make([]byte, size)
		for _, op := range ops {
			off := int64(op.Off % size)
			data := op.Data
			if int64(len(data))+off > size {
				data = data[:size-off]
			}
			if err := s.WriteAt(data, off); err != nil {
				return false
			}
			copy(shadow[off:], data)
		}
		got := make([]byte, size)
		if err := s.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
