// Package shm provides the virtual shared-memory segments the GVM uses as
// its data plane: one segment per client process, written by the client
// and staged into pinned host memory by the manager (paper Section V).
//
// Segments come in two flavors: in-memory segments for the simulator
// (optionally timing-only, carrying no bytes), and file-backed segments
// under /dev/shm for the real multi-process daemon, which is what POSIX
// shared memory is on Linux.
package shm

import (
	"fmt"
	"os"
	"path/filepath"
)

// Segment is a fixed-size shared memory region.
type Segment interface {
	// Size returns the segment's capacity in bytes.
	Size() int64
	// WriteAt copies p into the segment at off. In timing-only segments
	// it validates bounds and discards the data.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from the segment at off.
	ReadAt(p []byte, off int64) error
	// Bytes returns the backing slice, or nil for timing-only and
	// file-backed segments.
	Bytes() []byte
	// Close releases the segment.
	Close() error
}

// NewMemory returns an in-memory segment of n bytes. If functional is
// false the segment is timing-only: bounds are enforced but no memory is
// reserved and no bytes move.
func NewMemory(n int64, functional bool) Segment {
	s := &memSegment{size: n}
	if functional {
		s.data = make([]byte, n)
	}
	return s
}

type memSegment struct {
	size int64
	data []byte
}

func (s *memSegment) Size() int64 { return s.size }

func (s *memSegment) check(n int, off int64) error {
	if off < 0 || off+int64(n) > s.size {
		return fmt.Errorf("shm: access [%d, %d) outside segment of %d bytes", off, off+int64(n), s.size)
	}
	return nil
}

func (s *memSegment) WriteAt(p []byte, off int64) error {
	if err := s.check(len(p), off); err != nil {
		return err
	}
	if s.data != nil {
		copy(s.data[off:], p)
	}
	return nil
}

func (s *memSegment) ReadAt(p []byte, off int64) error {
	if err := s.check(len(p), off); err != nil {
		return err
	}
	if s.data != nil {
		copy(p, s.data[off:])
	}
	return nil
}

func (s *memSegment) Bytes() []byte { return s.data }
func (s *memSegment) Close() error  { s.data = nil; return nil }

// DefaultDir returns the directory for file-backed segments: /dev/shm if
// present (Linux POSIX shared memory), else the system temp directory.
func DefaultDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// NewFile creates (or truncates) a file-backed segment named name in dir
// ("" = DefaultDir), sized to n bytes. This is the real-IPC data plane
// used by the gvmd daemon; separate OS processes open the same name.
func NewFile(dir, name string, n int64) (Segment, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: create %s: %w", path, err)
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size %s: %w", path, err)
	}
	return &fileSegment{f: f, size: n, path: path, owner: true}, nil
}

// OpenFile attaches to an existing file-backed segment.
func OpenFile(dir, name string) (Segment, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSegment{f: f, size: st.Size(), path: path}, nil
}

type fileSegment struct {
	f     *os.File
	size  int64
	path  string
	owner bool
}

func (s *fileSegment) Size() int64 { return s.size }

func (s *fileSegment) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("shm: access outside segment %s", s.path)
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

func (s *fileSegment) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("shm: access outside segment %s", s.path)
	}
	_, err := s.f.ReadAt(p, off)
	return err
}

func (s *fileSegment) Bytes() []byte { return nil }

func (s *fileSegment) Close() error {
	err := s.f.Close()
	if s.owner {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}
