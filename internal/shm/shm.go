// Package shm provides the virtual shared-memory segments the GVM uses as
// its data plane: one segment per client process, written by the client
// and staged into pinned host memory by the manager (paper Section V).
//
// Segments come in two flavors: in-memory segments for the simulator
// (optionally timing-only, carrying no bytes), and file-backed segments
// under /dev/shm for the real multi-process daemon, which is what POSIX
// shared memory is on Linux.
package shm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Segment is a fixed-size shared memory region.
type Segment interface {
	// Size returns the segment's capacity in bytes.
	Size() int64
	// WriteAt copies p into the segment at off. In timing-only segments
	// it validates bounds and discards the data.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from the segment at off.
	ReadAt(p []byte, off int64) error
	// Bytes returns the backing slice: the in-memory buffer for
	// functional memory segments, the mmap'd region for file-backed
	// segments on platforms that support it. It returns nil for
	// timing-only segments and when the mapping is unavailable, in which
	// case callers must go through ReadAt/WriteAt.
	Bytes() []byte
	// Close releases the segment.
	Close() error
}

// NewMemory returns an in-memory segment of n bytes. If functional is
// false the segment is timing-only: bounds are enforced but no memory is
// reserved and no bytes move.
func NewMemory(n int64, functional bool) Segment {
	s := &memSegment{size: n}
	if functional {
		s.data = make([]byte, n)
	}
	return s
}

type memSegment struct {
	size int64
	data []byte
}

func (s *memSegment) Size() int64 { return s.size }

func (s *memSegment) check(n int, off int64) error {
	if off < 0 || off+int64(n) > s.size {
		return fmt.Errorf("shm: access [%d, %d) outside segment of %d bytes", off, off+int64(n), s.size)
	}
	return nil
}

func (s *memSegment) WriteAt(p []byte, off int64) error {
	if err := s.check(len(p), off); err != nil {
		return err
	}
	if s.data != nil {
		copy(s.data[off:], p)
	}
	return nil
}

func (s *memSegment) ReadAt(p []byte, off int64) error {
	if err := s.check(len(p), off); err != nil {
		return err
	}
	if s.data != nil {
		copy(p, s.data[off:])
	}
	return nil
}

func (s *memSegment) Bytes() []byte { return s.data }
func (s *memSegment) Close() error  { s.data = nil; return nil }

// DefaultDir returns the directory for file-backed segments: /dev/shm if
// present (Linux POSIX shared memory), else the system temp directory.
func DefaultDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// NewFile creates (or truncates) a file-backed segment named name in dir
// ("" = DefaultDir), sized to n bytes. This is the real-IPC data plane
// used by the gvmd daemon; separate OS processes open the same name.
func NewFile(dir, name string, n int64) (Segment, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: create %s: %w", path, err)
	}
	if err := f.Truncate(n); err != nil {
		f.Close()
		return nil, fmt.Errorf("shm: size %s: %w", path, err)
	}
	s := &fileSegment{f: f, size: n, path: path, owner: true}
	s.mapped, _ = mapFile(f, n) // fast path only; pread/pwrite fallback stays
	return s, nil
}

// OpenFile attaches to an existing file-backed segment.
func OpenFile(dir, name string) (Segment, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shm: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &fileSegment{f: f, size: st.Size(), path: path}
	s.mapped, _ = mapFile(f, s.size)
	return s, nil
}

// RemoveStale deletes file-backed segments left in dir ("" = DefaultDir)
// by a previous daemon that died without cleaning up. Only plain files
// whose names start with prefix are touched. It returns how many were
// removed; the error reflects the first failure, after attempting all.
func RemoveStale(dir, prefix string) (int, error) {
	if prefix == "" {
		return 0, fmt.Errorf("shm: RemoveStale needs a non-empty prefix")
	}
	if dir == "" {
		dir = DefaultDir()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("shm: scan %s: %w", dir, err)
	}
	removed := 0
	var firstErr error
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		if rmErr := os.Remove(filepath.Join(dir, e.Name())); rmErr != nil {
			if firstErr == nil {
				firstErr = rmErr
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}

// fileSegment is a file under /dev/shm, mmap'd into the process when the
// platform allows it. With the mapping in place, ReadAt/WriteAt are plain
// memcpy and Bytes exposes the shared region directly, so daemon-mode
// SND/RCV stop paying one pread/pwrite syscall per transfer; without it
// (mmap failure or non-unix build) every access falls back to positioned
// file I/O, which is always correct.
type fileSegment struct {
	f      *os.File
	size   int64
	path   string
	owner  bool
	mapped []byte
}

func (s *fileSegment) Size() int64 { return s.size }

func (s *fileSegment) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("shm: access outside segment %s", s.path)
	}
	if s.mapped != nil {
		copy(s.mapped[off:], p)
		return nil
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

func (s *fileSegment) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("shm: access outside segment %s", s.path)
	}
	if s.mapped != nil {
		copy(p, s.mapped[off:])
		return nil
	}
	_, err := s.f.ReadAt(p, off)
	return err
}

func (s *fileSegment) Bytes() []byte { return s.mapped }

// Unmap drops a file-backed segment's mapping, forcing every later access
// through positioned file I/O. A no-op for other segment kinds. This
// exists so benchmarks can measure the pread/pwrite fallback against the
// mapped fast path on the same platform.
func Unmap(s Segment) {
	if fs, ok := s.(*fileSegment); ok && fs.mapped != nil {
		_ = unmapFile(fs.mapped)
		fs.mapped = nil
	}
}

func (s *fileSegment) Close() error {
	var err error
	if s.mapped != nil {
		err = unmapFile(s.mapped)
		s.mapped = nil
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.owner {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}
