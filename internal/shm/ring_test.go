package shm

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func newTestRing(t testing.TB, c RingConfig, inBytes, outBytes int64) (*SessionRing, *SessionRing) {
	t.Helper()
	seg := NewMemory(RingSegmentSize(c, inBytes, outBytes), true)
	srv, err := InitSessionRing(seg, c, inBytes, outBytes, "door-seg", 64)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := AttachSessionRing(seg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli
}

func TestRingPushPeekRelease(t *testing.T) {
	srv, cli := newTestRing(t, DefaultRingConfig(), 0, 0)
	if cli.DoorFile() != "door-seg" || cli.DoorOff() != 64 {
		t.Fatalf("attach read doorbell %q/%d", cli.DoorFile(), cli.DoorOff())
	}
	// Client submits, server consumes.
	if !cli.Sub.Push([]byte("hello")) {
		t.Fatal("push failed on an empty ring")
	}
	rec, ok := srv.Sub.Peek()
	if !ok || string(rec) != "hello" {
		t.Fatalf("peek = %q, %v", rec, ok)
	}
	srv.Sub.Release()
	if _, ok := srv.Sub.Peek(); ok {
		t.Fatal("peek succeeded on a drained ring")
	}
}

func TestRingWraparound(t *testing.T) {
	c := RingConfig{Slots: 4, SlotSize: 64}
	srv, cli := newTestRing(t, c, 0, 0)
	// Push/consume far more records than slots, crossing the wrap many
	// times, verifying FIFO content the whole way.
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("rec-%03d", i))
		if !cli.Sub.Push(rec) {
			t.Fatalf("push %d failed", i)
		}
		got, ok := srv.Sub.Peek()
		if !ok || !bytes.Equal(got, rec) {
			t.Fatalf("peek %d = %q, %v", i, got, ok)
		}
		srv.Sub.Release()
	}
}

func TestRingFullBackpressure(t *testing.T) {
	c := RingConfig{Slots: 4, SlotSize: 64}
	srv, cli := newTestRing(t, c, 0, 0)
	for i := 0; i < c.Slots; i++ {
		if !cli.Sub.Push([]byte{byte(i)}) {
			t.Fatalf("push %d failed before the ring was full", i)
		}
	}
	if cli.Sub.Push([]byte{9}) {
		t.Fatal("push succeeded on a full ring")
	}
	// Draining one slot frees exactly one push.
	if _, ok := srv.Sub.Peek(); !ok {
		t.Fatal("peek failed on a full ring")
	}
	srv.Sub.Release()
	if !cli.Sub.Push([]byte{9}) {
		t.Fatal("push failed after a release")
	}
	if cli.Sub.Push([]byte{10}) {
		t.Fatal("second push succeeded with no release")
	}
}

func TestRingOversizeRecord(t *testing.T) {
	c := RingConfig{Slots: 4, SlotSize: 64}
	_, cli := newTestRing(t, c, 0, 0)
	big := make([]byte, cli.Sub.MaxRecord()+1)
	if cli.Sub.Push(big) {
		t.Fatal("push accepted a record larger than a slot")
	}
	if !cli.Sub.Push(big[:cli.Sub.MaxRecord()]) {
		t.Fatal("push rejected a max-size record")
	}
}

func TestSessionRingStaging(t *testing.T) {
	srv, cli := newTestRing(t, DefaultRingConfig(), 128, 256)
	if len(srv.In()) != 128 || len(srv.Out()) != 256 {
		t.Fatalf("server staging %d/%d", len(srv.In()), len(srv.Out()))
	}
	// Both sides see the same staging memory.
	cli.In()[0] = 0xAB
	if srv.In()[0] != 0xAB {
		t.Fatal("client input write not visible to the server")
	}
	srv.Out()[255] = 0xCD
	if cli.Out()[255] != 0xCD {
		t.Fatal("server output write not visible to the client")
	}
}

func TestRingGeometryRejected(t *testing.T) {
	seg := NewMemory(RingSegmentSize(DefaultRingConfig(), 0, 0), true)
	for _, c := range []RingConfig{
		{Slots: 3, SlotSize: 64},       // not a power of two
		{Slots: 4, SlotSize: 60},       // not cache-line aligned
		{Slots: 0, SlotSize: 64},       // empty
		{Slots: 1 << 20, SlotSize: 64}, // absurd
	} {
		if _, err := InitSessionRing(seg, c, 0, 0, "", 0); err == nil {
			t.Fatalf("InitSessionRing accepted %+v", c)
		}
	}
	// Timing-only segments carry no bytes: rings cannot live there.
	if _, err := InitSessionRing(NewMemory(1<<20, false), DefaultRingConfig(), 0, 0, "", 0); err == nil {
		t.Fatal("InitSessionRing accepted a timing-only segment")
	}
	if _, err := AttachSessionRing(NewMemory(1<<20, false)); err == nil {
		t.Fatal("AttachSessionRing accepted a timing-only segment")
	}
}

// TestRingHeaderCorruption drives AttachSessionRing over a grid of
// single-field corruptions: none may panic, and every accepted attach
// must keep all ring regions inside the segment.
func TestRingHeaderCorruption(t *testing.T) {
	c := DefaultRingConfig()
	size := RingSegmentSize(c, 64, 64)
	for field := 0; field < 72; field += 4 {
		for _, val := range []uint64{0, 1, 0xFFFFFFFF, uint64(size), uint64(size) * 2, 1 << 40} {
			seg := NewMemory(size, true)
			if _, err := InitSessionRing(seg, c, 64, 64, "door", 0); err != nil {
				t.Fatal(err)
			}
			buf := seg.Bytes()
			buf[field] = byte(val)
			buf[field+1] = byte(val >> 8)
			buf[field+2] = byte(val >> 16)
			buf[field+3] = byte(val >> 24)
			sr, err := AttachSessionRing(seg)
			if err != nil {
				continue // rejected: fine
			}
			// Accepted: exercising the rings must stay in bounds (the
			// masked indexing would panic on an out-of-range slice).
			sr.Sub.Push([]byte("x"))
			if rec, ok := sr.Sub.Peek(); ok {
				_ = rec[len(rec)-1]
				sr.Sub.Release()
			}
			sr.Cpl.Push([]byte("y"))
		}
	}
}

// FuzzRingHeader feeds arbitrary bytes as a ring segment: attach must
// reject or accept without ever panicking, and an accepted ring must
// confine all accesses to the segment.
func FuzzRingHeader(f *testing.F) {
	c := RingConfig{Slots: 4, SlotSize: 64}
	good := NewMemory(RingSegmentSize(c, 32, 32), true)
	if _, err := InitSessionRing(good, c, 32, 32, "door", 0); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), good.Bytes()...))
	f.Add(make([]byte, ringHdrSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Round the buffer up to 4-byte alignment-compatible backing.
		buf := make([]byte, len(raw))
		copy(buf, raw)
		seg := &memSegment{size: int64(len(buf)), data: buf}
		sr, err := AttachSessionRing(seg)
		if err != nil {
			return
		}
		// Corrupt sequence words land here too (they are inside raw):
		// every operation must stay in bounds, stall, or fail cleanly.
		sr.Sub.Push([]byte("abc"))
		if rec, ok := sr.Sub.Peek(); ok && len(rec) > 0 {
			_ = rec[len(rec)-1]
			sr.Sub.Release()
		}
		sr.Cpl.Push([]byte("def"))
		if rec, ok := sr.Cpl.Peek(); ok && len(rec) > 0 {
			_ = rec[len(rec)-1]
			sr.Cpl.Release()
		}
		sr.ClientDoor().Add(2)
	})
}

func TestDoorbellProtocol(t *testing.T) {
	var d atomic.Uint32
	w0, k0 := FutexStats()
	// Ring with no sleeper armed: counter bumps, no wake syscall.
	DoorRing(&d)
	if v := d.Load(); v != 2 {
		t.Fatalf("door = %d, want 2", v)
	}
	if w, k := FutexStats(); w != w0 || k != k0 {
		t.Fatal("unarmed ring paid a futex syscall")
	}
	// Armed sleeper: the value changed since arming, so DoorSleep returns
	// immediately without a syscall.
	armed := DoorArm(&d)
	if armed&1 == 0 {
		t.Fatal("DoorArm did not set the sleep bit")
	}
	DoorRing(&d) // changes the word and pays one wake (sleeper armed)
	if _, k := FutexStats(); k != k0+1 {
		t.Fatal("armed ring did not futex-wake")
	}
	DoorSleep(&d, armed, time.Second)
	DoorDisarm(&d)
	if v := d.Load(); v&1 != 0 {
		t.Fatal("DoorDisarm left the sleep bit set")
	}

	// Sleep then cross-goroutine ring: must wake well before the timeout.
	armed = DoorArm(&d)
	done := make(chan struct{})
	go func() {
		DoorSleep(&d, armed, 10*time.Second)
		close(done)
	}()
	time.Sleep(time.Millisecond)
	DoorRing(&d)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DoorSleep missed the wakeup")
	}
	DoorDisarm(&d)
}
