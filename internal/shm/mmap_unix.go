//go:build unix

package shm

import (
	"os"
	"syscall"
)

// mapFile maps n bytes of f shared read-write. A zero-length mapping is
// invalid on most unixes, so empty segments stay on the file-I/O path.
func mapFile(f *os.File, n int64) ([]byte, error) {
	if n <= 0 || int64(int(n)) != n {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(n), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
