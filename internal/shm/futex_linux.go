//go:build linux

package shm

import (
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Shared (non-private) futex ops: the doorbell words live in shm segments
// mapped by several processes.
const (
	futexWaitOp = 0 // FUTEX_WAIT
	futexWakeOp = 1 // FUTEX_WAKE
)

// futexWait sleeps until *d changes from val, a wake arrives, or the
// timeout elapses (0 = forever). The kernel atomically re-checks the
// value under its bucket lock, so a ring between DoorArm's re-check and
// this call returns immediately with EAGAIN — no lost wakeups.
func futexWait(d *atomic.Uint32, val uint32, timeout time.Duration) {
	futexWaits.Add(1)
	var tsp unsafe.Pointer
	if timeout > 0 {
		ts := syscall.NsecToTimespec(int64(timeout))
		tsp = unsafe.Pointer(&ts)
	}
	_, _, _ = syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(d)), futexWaitOp, uintptr(val), uintptr(tsp), 0, 0)
}

// futexWake wakes one waiter sleeping on d.
func futexWake(d *atomic.Uint32) {
	futexWakes.Add(1)
	_, _, _ = syscall.Syscall6(syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(d)), futexWakeOp, 1, 0, 0, 0)
}
