package shm

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"
)

// This file lays out the zero-syscall control plane: per-session lock-free
// SPSC submission and completion rings living inside an ordinary shm
// segment, plus the futex-backed doorbells that let both sides sleep when
// idle. The layout replaces the paper's POSIX message queues (its Figure 7
// control plane) with a path where a warm verb round trip is a handful of
// cache-line operations and no kernel crossings.
//
// Each ring is a power-of-two array of fixed-size slots in Vyukov
// sequence-slot style: slot i carries a sequence word initialized to i.
// The producer at position p claims slot p&mask when its sequence equals
// p, writes the record, and publishes by storing p+1; the consumer at
// position p consumes when the sequence equals p+1 and recycles the slot
// by storing p+slotCount, which is exactly what the producer expects on
// its next lap. Positions live in each side's private memory — only the
// sequence words are shared — so a corrupted (or hostile) peer can stall
// its own ring but can never redirect the other side outside its own slot
// array: every index is masked before use and every record length is
// bounds-checked against the slot.
//
// Because each ring has exactly one producer and one consumer, the
// sequence word needs plain loads and stores with acquire/release order —
// no CAS anywhere on the hot path. Go's sync/atomic provides sequentially
// consistent operations, which are strictly stronger.
//
// All shared atomics are 32-bit so the layout is safe on GOARCH=386
// (64-bit header fields exist but are written once before publication and
// read non-atomically after validation).

// Ring geometry and header field offsets. The header occupies one page;
// the doorbell word sits on its own cache line.
const (
	ringMagic   = 0x47525631 // "1VRG" little-endian
	ringVersion = 1

	ringHdrSize = 4096
	slotHdrSize = 8 // seq u32 + len u32

	offMagic     = 0
	offVersion   = 4
	offSlotCount = 8
	offSlotSize  = 12
	offSubOff    = 16
	offCplOff    = 24
	offInOff     = 32
	offInBytes   = 40
	offOutOff    = 48
	offOutBytes  = 56
	offDoorOff   = 64
	offDoorFile  = 68 // u8 length + bytes, within the header page
	maxDoorFile  = 186

	offClientDoor = 512 // server→client completion doorbell (own cache line)
)

// Package-wide futex counters: the syscall evidence behind the
// zero-syscall acceptance test. A warm pipelined ring cycle must leave
// both untouched.
var (
	futexWaits atomic.Int64
	futexWakes atomic.Int64
)

// FutexStats returns how many futex waits and wakes the ring doorbells
// have performed since process start.
func FutexStats() (waits, wakes int64) { return futexWaits.Load(), futexWakes.Load() }

// RingConfig sizes a session's rings.
type RingConfig struct {
	// Slots is the slot count per ring; must be a power of two.
	Slots int
	// SlotSize is the bytes per slot including the 8-byte slot header;
	// must be a multiple of 64 (whole cache lines, so adjacent slots never
	// share a line). The largest record a slot carries is SlotSize-8.
	SlotSize int
}

// DefaultRingConfig holds 64 records of up to 504 bytes per direction —
// 64 KiB of ring per session — which fits every pipelined verb batch the
// client emits with room for deep pipelining.
func DefaultRingConfig() RingConfig { return RingConfig{Slots: 64, SlotSize: 512} }

func (c RingConfig) validate() error {
	if c.Slots < 1 || c.Slots&(c.Slots-1) != 0 || c.Slots > 1<<16 {
		return fmt.Errorf("shm: ring slot count %d: want a power of two in [1, 65536]", c.Slots)
	}
	if c.SlotSize < 64 || c.SlotSize%64 != 0 || c.SlotSize > 1<<20 {
		return fmt.Errorf("shm: ring slot size %d: want a multiple of 64 in [64, 1MiB]", c.SlotSize)
	}
	return nil
}

// RingSegmentSize returns the segment size needed for a session ring with
// the given geometry and staging capacities.
func RingSegmentSize(c RingConfig, inBytes, outBytes int64) int64 {
	ring := int64(c.Slots) * int64(c.SlotSize)
	return ringHdrSize + 2*ring + inBytes + outBytes
}

// Ring is one direction of a session ring: a single-producer
// single-consumer slot array. The position field is private to the side
// using the ring, so a Ring value must not be shared between goroutines.
type Ring struct {
	slots    []byte
	mask     uint32
	slotSize uint32
	pos      uint32
}

// MaxRecord returns the largest record one slot carries.
func (r *Ring) MaxRecord() int { return int(r.slotSize) - slotHdrSize }

func (r *Ring) slot(pos uint32) []byte {
	off := (pos & r.mask) * r.slotSize
	return r.slots[off : off+r.slotSize]
}

// Push publishes rec into the next slot. It returns false when the record
// exceeds MaxRecord or the ring is full (the consumer has not recycled
// the slot yet) — the producer's backpressure signal.
func (r *Ring) Push(rec []byte) bool {
	if len(rec) > r.MaxRecord() {
		return false
	}
	slot := r.slot(r.pos)
	seq := u32at(slot, 0)
	if seq.Load() != r.pos {
		return false
	}
	binary.LittleEndian.PutUint32(slot[4:8], uint32(len(rec)))
	copy(slot[slotHdrSize:], rec)
	seq.Store(r.pos + 1) // release: publish record to the consumer
	r.pos++
	return true
}

// Peek returns the record at the head of the ring without consuming it,
// or false when the ring is empty. The returned slice aliases the slot;
// it is valid until Release. A corrupted length never escapes the slot:
// it is clamped by the bounds check and reported as empty.
func (r *Ring) Peek() ([]byte, bool) {
	slot := r.slot(r.pos)
	if u32at(slot, 0).Load() != r.pos+1 {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(slot[4:8])
	if int(n) > r.MaxRecord() {
		return nil, false
	}
	return slot[slotHdrSize : slotHdrSize+n], true
}

// Release recycles the slot Peek returned, handing it back to the
// producer for its next lap. Call only after a successful Peek.
func (r *Ring) Release() {
	slot := r.slot(r.pos)
	u32at(slot, 0).Store(r.pos + r.mask + 1) // pos + slotCount
	r.pos++
}

// SessionRing is one session's full control-plane surface inside a shared
// segment: submission ring (client→server), completion ring
// (server→client), staging regions, and the client's completion doorbell.
// The server side also records which shard doorbell segment clients must
// ring after a submission.
type SessionRing struct {
	Sub Ring // client produces, server consumes
	Cpl Ring // server produces, client consumes

	buf        []byte
	in, out    []byte
	clientDoor *atomic.Uint32
	doorFile   string
	doorOff    uint32
}

// In returns the input staging region (nil when the session moves no
// input bytes).
func (s *SessionRing) In() []byte { return s.in }

// Out returns the output staging region.
func (s *SessionRing) Out() []byte { return s.out }

// ClientDoor returns the completion doorbell the server rings after
// pushing to the completion ring.
func (s *SessionRing) ClientDoor() *atomic.Uint32 { return s.clientDoor }

// DoorFile names the shard doorbell segment the client must ring after a
// submission; DoorOff is the doorbell word's byte offset inside it.
func (s *SessionRing) DoorFile() string { return s.doorFile }

// DoorOff returns the shard doorbell's byte offset within DoorFile.
func (s *SessionRing) DoorOff() uint32 { return s.doorOff }

func u32at(b []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b[off]))
}

func ringBuf(seg Segment) ([]byte, error) {
	buf := seg.Bytes()
	if len(buf) == 0 {
		return nil, fmt.Errorf("shm: session rings need a mapped segment (timing-only or unmapped segment given)")
	}
	if uintptr(unsafe.Pointer(&buf[0]))%4 != 0 {
		return nil, fmt.Errorf("shm: segment base not 4-byte aligned")
	}
	return buf, nil
}

// InitSessionRing lays a fresh session ring out inside seg (the server
// side owns initialization). doorFile/doorOff name the shard doorbell the
// client rings after each submission.
func InitSessionRing(seg Segment, c RingConfig, inBytes, outBytes int64, doorFile string, doorOff uint32) (*SessionRing, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(doorFile) > maxDoorFile {
		return nil, fmt.Errorf("shm: doorbell segment name %q too long", doorFile)
	}
	need := RingSegmentSize(c, inBytes, outBytes)
	buf, err := ringBuf(seg)
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) < need {
		return nil, fmt.Errorf("shm: segment is %d bytes, ring layout needs %d", len(buf), need)
	}
	ring := int64(c.Slots) * int64(c.SlotSize)
	subOff := int64(ringHdrSize)
	cplOff := subOff + ring
	inOff := cplOff + ring
	outOff := inOff + inBytes

	le := binary.LittleEndian
	le.PutUint32(buf[offMagic:], ringMagic)
	le.PutUint32(buf[offVersion:], ringVersion)
	le.PutUint32(buf[offSlotCount:], uint32(c.Slots))
	le.PutUint32(buf[offSlotSize:], uint32(c.SlotSize))
	le.PutUint64(buf[offSubOff:], uint64(subOff))
	le.PutUint64(buf[offCplOff:], uint64(cplOff))
	le.PutUint64(buf[offInOff:], uint64(inOff))
	le.PutUint64(buf[offInBytes:], uint64(inBytes))
	le.PutUint64(buf[offOutOff:], uint64(outOff))
	le.PutUint64(buf[offOutBytes:], uint64(outBytes))
	le.PutUint32(buf[offDoorOff:], doorOff)
	buf[offDoorFile] = byte(len(doorFile))
	copy(buf[offDoorFile+1:], doorFile)

	sr := &SessionRing{
		buf:        buf,
		clientDoor: u32at(buf, offClientDoor),
		doorFile:   doorFile,
		doorOff:    doorOff,
	}
	sr.clientDoor.Store(0)
	initRing(&sr.Sub, buf[subOff:subOff+ring], c)
	initRing(&sr.Cpl, buf[cplOff:cplOff+ring], c)
	if inBytes > 0 {
		sr.in = buf[inOff : inOff+inBytes]
	}
	if outBytes > 0 {
		sr.out = buf[outOff : outOff+outBytes]
	}
	return sr, nil
}

func initRing(r *Ring, slots []byte, c RingConfig) {
	r.slots = slots
	r.mask = uint32(c.Slots - 1)
	r.slotSize = uint32(c.SlotSize)
	for i := 0; i < c.Slots; i++ {
		u32at(slots, i*c.SlotSize).Store(uint32(i))
	}
}

// AttachSessionRing binds the client side of a session ring laid out by
// InitSessionRing, validating the header before trusting any of it: bad
// magic/version/geometry or any region escaping the segment is an error,
// never a panic.
func AttachSessionRing(seg Segment) (*SessionRing, error) {
	buf, err := ringBuf(seg)
	if err != nil {
		return nil, err
	}
	if len(buf) < ringHdrSize {
		return nil, fmt.Errorf("shm: segment too small for a ring header (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	if got := le.Uint32(buf[offMagic:]); got != ringMagic {
		return nil, fmt.Errorf("shm: ring magic %#x, want %#x", got, ringMagic)
	}
	if got := le.Uint32(buf[offVersion:]); got != ringVersion {
		return nil, fmt.Errorf("shm: ring version %d, want %d", got, ringVersion)
	}
	c := RingConfig{
		Slots:    int(le.Uint32(buf[offSlotCount:])),
		SlotSize: int(le.Uint32(buf[offSlotSize:])),
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	ring := uint64(c.Slots) * uint64(c.SlotSize)
	subOff := le.Uint64(buf[offSubOff:])
	cplOff := le.Uint64(buf[offCplOff:])
	inOff := le.Uint64(buf[offInOff:])
	inBytes := le.Uint64(buf[offInBytes:])
	outOff := le.Uint64(buf[offOutOff:])
	outBytes := le.Uint64(buf[offOutBytes:])
	size := uint64(len(buf))
	for _, reg := range [...][2]uint64{
		{subOff, ring}, {cplOff, ring}, {inOff, inBytes}, {outOff, outBytes},
	} {
		if reg[0] < ringHdrSize || reg[0]+reg[1] < reg[0] || reg[0]+reg[1] > size {
			return nil, fmt.Errorf("shm: ring region [%d,+%d) escapes the %d-byte segment", reg[0], reg[1], size)
		}
		if reg[0]%4 != 0 {
			return nil, fmt.Errorf("shm: ring region offset %d not 4-byte aligned", reg[0])
		}
	}
	nameLen := int(buf[offDoorFile])
	if nameLen > maxDoorFile {
		return nil, fmt.Errorf("shm: doorbell segment name length %d out of range", nameLen)
	}
	sr := &SessionRing{
		buf:        buf,
		clientDoor: u32at(buf, offClientDoor),
		doorFile:   string(buf[offDoorFile+1 : offDoorFile+1+nameLen]),
		doorOff:    le.Uint32(buf[offDoorOff:]),
	}
	initRingAttach(&sr.Sub, buf[subOff:subOff+ring], c)
	initRingAttach(&sr.Cpl, buf[cplOff:cplOff+ring], c)
	if inBytes > 0 {
		sr.in = buf[inOff : inOff+inBytes]
	}
	if outBytes > 0 {
		sr.out = buf[outOff : outOff+outBytes]
	}
	return sr, nil
}

// initRingAttach binds an already-initialized ring without resetting the
// sequence words (the server did that once).
func initRingAttach(r *Ring, slots []byte, c RingConfig) {
	r.slots = slots
	r.mask = uint32(c.Slots - 1)
	r.slotSize = uint32(c.SlotSize)
}

// Doorbell protocol: the word's bit 0 is the "consumer is sleeping" flag;
// the upper 31 bits count rings. A producer bumps the counter and only
// pays the futex wake when a sleeper is armed, so the steady busy state
// does zero syscalls.

// DoorRing bumps the doorbell after pushing work and wakes the consumer
// if it armed the sleep bit.
func DoorRing(d *atomic.Uint32) {
	if d.Add(2)&1 != 0 {
		futexWake(d)
	}
}

// DoorArm sets the sleep bit and returns the armed word. The caller must
// re-check its rings for work published before the bit was visible, and
// only then DoorSleep on the returned value — the re-check closes the
// lost-wakeup window.
func DoorArm(d *atomic.Uint32) uint32 {
	for {
		v := d.Load()
		if v&1 != 0 {
			return v
		}
		if d.CompareAndSwap(v, v|1) {
			return v | 1
		}
	}
}

// DoorDisarm clears the sleep bit after waking.
func DoorDisarm(d *atomic.Uint32) {
	for {
		v := d.Load()
		if v&1 == 0 {
			return
		}
		if d.CompareAndSwap(v, v&^uint32(1)) {
			return
		}
	}
}

// DoorSleep blocks until the doorbell's word changes from armed or the
// timeout elapses (0 = a platform default). Spurious returns are allowed;
// callers loop around a work re-check.
func DoorSleep(d *atomic.Uint32, armed uint32, timeout time.Duration) {
	if d.Load() != armed {
		return
	}
	futexWait(d, armed, timeout)
}

// DoorStride is the byte distance between doorbell words in a doorbell
// segment: one cache line each, so shards ringing concurrently never
// bounce a line.
const DoorStride = 64

// DoorSegmentSize sizes a doorbell segment holding n words.
func DoorSegmentSize(n int) int64 {
	if n < 1 {
		n = 1
	}
	return int64(n) * DoorStride
}

// DoorWordAt binds the doorbell word at byte offset off inside a mapped
// segment. It validates bounds and 4-byte alignment, so a corrupt
// advertised offset is an error, never a fault.
func DoorWordAt(seg Segment, off uint32) (*atomic.Uint32, error) {
	buf, err := ringBuf(seg)
	if err != nil {
		return nil, err
	}
	if int64(off)+4 > int64(len(buf)) {
		return nil, fmt.Errorf("shm: doorbell offset %d outside %d-byte segment", off, len(buf))
	}
	if off%4 != 0 {
		return nil, fmt.Errorf("shm: doorbell offset %d not 4-byte aligned", off)
	}
	return u32at(buf, int(off)), nil
}
