package cuda

import (
	"fmt"
	"runtime"
	"sync"
)

// Executor runs functional kernel launches with a bounded worker pool,
// fanning the thread blocks of one launch out across workers in
// deterministic, contiguous block-range chunks.
//
// The parallel path is bit-identical to serial execution (RunFunctional)
// for every kernel that honors the SerialOnly contract: each block's
// writes must be disjoint from every other block's reads and writes
// within the same launch — the same discipline real CUDA kernels need,
// since the hardware gives no inter-block ordering either. Each chunk is
// a contiguous flat block range executed in ascending order, so per-block
// results (including float rounding) cannot depend on the worker count.
//
// Kernels that break the contract — cross-block reductions or scans that
// exploit the host loop's sequential block order — declare
// Kernel.SerialOnly and are executed by the serial reference path
// regardless of the pool size.
type Executor struct {
	workers int
}

// Serial is the single-worker executor: every launch runs on the calling
// goroutine via RunFunctional. A nil *Executor behaves the same, so a
// zero-configured device stays serial-safe.
var Serial = &Executor{workers: 1}

// NewExecutor returns an executor with the given pool size. workers <= 0
// selects GOMAXPROCS, mirroring the host's SPMD core count.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers}
}

// Workers returns the pool size.
func (e *Executor) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// Run executes k's functional body for every block of the grid against
// mem. Launches with at least two blocks per worker run on the pool;
// smaller launches and SerialOnly kernels take the serial reference path.
// It returns an error if the kernel has no functional body.
func (e *Executor) Run(k *Kernel, mem Memory) error {
	if k.Func == nil {
		return fmt.Errorf("cuda: kernel %q has no functional body", k.Name)
	}
	blocks := k.Blocks()
	if e == nil || k.SerialOnly || e.workers <= 1 || blocks < 2*e.workers {
		return k.RunFunctional(mem)
	}
	workers := e.workers
	var wg sync.WaitGroup
	panics := make([]any, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		lo := w * blocks / workers
		hi := (w + 1) * blocks / workers
		go func() {
			defer wg.Done()
			defer func() {
				// Functional bodies panic on device-memory misuse; carry
				// the panic back to the launching goroutine so it surfaces
				// exactly as in serial execution.
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			k.runBlockRange(mem, lo, hi)
		}()
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	return nil
}

// runBlockRange executes the kernel body for flat block indices [lo, hi)
// in ascending order. Flat order matches RunFunctional: x fastest, then
// y, then z.
func (k *Kernel) runBlockRange(mem Memory, lo, hi int) {
	g := k.Grid.Norm()
	bd := k.Block.Norm()
	for i := lo; i < hi; i++ {
		x := i % g.X
		y := (i / g.X) % g.Y
		z := i / (g.X * g.Y)
		k.Func(&BlockCtx{
			BlockIdx: Dim3{X: x, Y: y, Z: z},
			GridDim:  g,
			BlockDim: bd,
			Mem:      mem,
			Args:     k.Args,
		})
	}
}
