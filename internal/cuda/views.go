package cuda

import (
	"math"
	"unsafe"
)

// The typed-view helpers below alias device memory as numeric slices.
// Device allocations are 256-byte aligned (see gpusim's allocator), so the
// unsafe reinterpretation is always correctly aligned.

// Float32s views n float32 values of device memory at p.
func Float32s(m Memory, p DevPtr, n int) []float32 {
	b := m.Bytes(p, int64(n)*4)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
}

// Float64s views n float64 values of device memory at p.
func Float64s(m Memory, p DevPtr, n int) []float64 {
	b := m.Bytes(p, int64(n)*8)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

// Int32s views n int32 values of device memory at p.
func Int32s(m Memory, p DevPtr, n int) []int32 {
	b := m.Bytes(p, int64(n)*4)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// Uint64s views n uint64 values of device memory at p.
func Uint64s(m Memory, p DevPtr, n int) []uint64 {
	b := m.Bytes(p, int64(n)*8)
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
}

// HostFloat32Bytes reinterprets a float32 slice as its byte representation
// (little-endian on all supported platforms), for host<->device copies.
func HostFloat32Bytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// HostFloat64Bytes reinterprets a float64 slice as bytes.
func HostFloat64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// AlmostEqual reports whether two floats agree to within rel relative
// tolerance (or 1e-12 absolute near zero), for kernel result validation.
func AlmostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-12 {
		return diff < 1e-12
	}
	return diff/scale <= rel
}
