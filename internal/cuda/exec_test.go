package cuda

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// sliceMem is a trivial Memory backed by one flat byte slice; DevPtr is an
// offset into it.
type sliceMem []byte

func (m sliceMem) Bytes(p DevPtr, n int64) []byte { return m[p : int64(p)+n] }

// markKernel writes each block's flat index (as a byte) into its own slot,
// the canonical disjoint-writes kernel.
func markKernel(grid Dim3) (*Kernel, sliceMem) {
	g := grid.Norm()
	mem := make(sliceMem, g.Count())
	k := &Kernel{
		Name:  "mark",
		Grid:  grid,
		Block: Dim(1),
		Func: func(c *BlockCtx) {
			i := c.BlockIdx.Flat(c.GridDim)
			c.Mem.Bytes(DevPtr(i), 1)[0] = byte(i)
		},
	}
	return k, mem
}

func TestExecutorCoversAllBlocks(t *testing.T) {
	grids := []Dim3{Dim(1), Dim(7), Dim(64), Dim(5, 3), Dim(4, 3, 2), Dim(33, 2, 5)}
	for _, grid := range grids {
		for _, workers := range []int{1, 2, 3, 8, 17} {
			t.Run(fmt.Sprintf("grid=%v/workers=%d", grid, workers), func(t *testing.T) {
				k, mem := markKernel(grid)
				if err := NewExecutor(workers).Run(k, mem); err != nil {
					t.Fatal(err)
				}
				for i, v := range mem {
					if v != byte(i) {
						t.Fatalf("block %d wrote %d, want %d", i, v, byte(i))
					}
				}
			})
		}
	}
}

func TestExecutorMatchesSerial(t *testing.T) {
	k, want := markKernel(Dim(100))
	if err := k.RunFunctional(want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		k2, got := markKernel(Dim(100))
		if err := NewExecutor(workers).Run(k2, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: byte %d differs: %d vs %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestExecutorSerialOnlyFallback(t *testing.T) {
	// A running-sum kernel is order-dependent: correct only if blocks run
	// in ascending flat order on one goroutine. SerialOnly must guarantee
	// that even on a multi-worker executor.
	var order []int
	k := &Kernel{
		Name:       "scan",
		Grid:       Dim(64),
		Block:      Dim(1),
		SerialOnly: true,
		Func: func(c *BlockCtx) {
			order = append(order, c.BlockIdx.X)
		},
	}
	if err := NewExecutor(8).Run(k, sliceMem(nil)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 64 {
		t.Fatalf("ran %d blocks, want 64", len(order))
	}
	for i, b := range order {
		if b != i {
			t.Fatalf("block order[%d] = %d, want %d (SerialOnly must run in serial order)", i, b, i)
		}
	}
}

func TestExecutorSmallLaunchStaysSerial(t *testing.T) {
	// Launches with fewer than two blocks per worker take the serial path;
	// an append with no synchronization would race otherwise, and -race
	// verifies this.
	var order []int
	k := &Kernel{
		Name:  "tiny",
		Grid:  Dim(7),
		Block: Dim(1),
		Func:  func(c *BlockCtx) { order = append(order, c.BlockIdx.X) },
	}
	if err := NewExecutor(4).Run(k, sliceMem(nil)); err != nil {
		t.Fatal(err)
	}
	if len(order) != 7 {
		t.Fatalf("ran %d blocks, want 7", len(order))
	}
}

func TestExecutorNoBody(t *testing.T) {
	k := &Kernel{Name: "timing-only", Grid: Dim(8), Block: Dim(32)}
	if err := NewExecutor(4).Run(k, nil); err == nil {
		t.Fatal("want error for kernel without functional body")
	}
}

func TestExecutorNilAndSerialBehaveSerial(t *testing.T) {
	var e *Executor
	if e.Workers() != 1 {
		t.Fatalf("nil executor Workers() = %d, want 1", e.Workers())
	}
	k, mem := markKernel(Dim(32))
	if err := e.Run(k, mem); err != nil {
		t.Fatal(err)
	}
	if Serial.Workers() != 1 {
		t.Fatalf("Serial.Workers() = %d, want 1", Serial.Workers())
	}
}

func TestExecutorPanicPropagates(t *testing.T) {
	var ran atomic.Int64
	k := &Kernel{
		Name:  "boom",
		Grid:  Dim(64),
		Block: Dim(1),
		Func: func(c *BlockCtx) {
			ran.Add(1)
			if c.BlockIdx.X == 40 {
				panic("kernel fault at block 40")
			}
		},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic to propagate to the launching goroutine")
		}
		if s, ok := r.(string); !ok || s != "kernel fault at block 40" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	_ = NewExecutor(4).Run(k, sliceMem(nil))
}

func TestNewExecutorDefaultsToGOMAXPROCS(t *testing.T) {
	if w := NewExecutor(0).Workers(); w < 1 {
		t.Fatalf("NewExecutor(0).Workers() = %d, want >= 1", w)
	}
	if w := NewExecutor(5).Workers(); w != 5 {
		t.Fatalf("NewExecutor(5).Workers() = %d, want 5", w)
	}
}
