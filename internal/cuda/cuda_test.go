package cuda

import (
	"testing"
	"testing/quick"

	"gpuvirt/internal/fermi"
)

func TestDimConstruction(t *testing.T) {
	if d := Dim(5); d != (Dim3{5, 1, 1}) {
		t.Fatalf("Dim(5) = %+v", d)
	}
	if d := Dim(4, 3); d != (Dim3{4, 3, 1}) {
		t.Fatalf("Dim(4,3) = %+v", d)
	}
	if d := Dim(4, 3, 2); d != (Dim3{4, 3, 2}) {
		t.Fatalf("Dim(4,3,2) = %+v", d)
	}
	if d := Dim(0); d != (Dim3{1, 1, 1}) {
		t.Fatalf("Dim(0) = %+v, want normalized", d)
	}
}

func TestDimCountAndFlat(t *testing.T) {
	e := Dim(4, 3, 2)
	if e.Count() != 24 {
		t.Fatalf("Count = %d", e.Count())
	}
	// Flat is x-major: idx = (z*Y + y)*X + x.
	if got := (Dim3{X: 1, Y: 2, Z: 1}).Flat(e); got != (1*3+2)*4+1 {
		t.Fatalf("Flat = %d", got)
	}
	if got := (Dim3{}).Flat(e); got != 0 {
		t.Fatalf("Flat origin = %d", got)
	}
}

func TestDimString(t *testing.T) {
	cases := []struct {
		d    Dim3
		want string
	}{
		{Dim(7), "7"},
		{Dim(4, 2), "4x2"},
		{Dim(4, 2, 3), "4x2x3"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestKernelAccounting(t *testing.T) {
	k := &Kernel{
		Name: "k", Grid: Dim(10, 2), Block: Dim(32, 4),
		CyclesPerThread: 3, MemBytesPerThread: 5,
	}
	if k.Blocks() != 20 {
		t.Fatalf("Blocks = %d", k.Blocks())
	}
	if k.Threads() != 20*128 {
		t.Fatalf("Threads = %d", k.Threads())
	}
	if k.TotalWorkCycles() != float64(20*128*3) {
		t.Fatalf("TotalWorkCycles = %v", k.TotalWorkCycles())
	}
	if k.TotalMemBytes() != float64(20*128*5) {
		t.Fatalf("TotalMemBytes = %v", k.TotalMemBytes())
	}
}

func TestKernelValidate(t *testing.T) {
	arch := fermi.TeslaC2070()
	good := &Kernel{Name: "ok", Grid: Dim(4), Block: Dim(128)}
	if err := good.Validate(arch); err != nil {
		t.Fatal(err)
	}
	bad := []*Kernel{
		{Name: "bigblock", Grid: Dim(1), Block: Dim(2048)},
		{Name: "negcost", Grid: Dim(1), Block: Dim(32), CyclesPerThread: -1},
		{Name: "negmem", Grid: Dim(1), Block: Dim(32), MemBytesPerThread: -1},
		{Name: "fatshmem", Grid: Dim(1), Block: Dim(32), SharedMemPerBlock: 1 << 20},
	}
	for _, k := range bad {
		if err := k.Validate(arch); err == nil {
			t.Errorf("%s: Validate accepted invalid kernel", k.Name)
		}
	}
}

func TestKernelClone(t *testing.T) {
	k := &Kernel{Name: "k", Grid: Dim(1), Block: Dim(32), Args: []any{1, 2}}
	c := k.Clone()
	c.Args[0] = 99
	if k.Args[0] != 1 {
		t.Fatal("Clone shares Args with the original")
	}
}

type testMemory struct{ data []byte }

func (m *testMemory) Bytes(p DevPtr, n int64) []byte { return m.data[p : int64(p)+n] }

func TestRunFunctionalVisitsAllBlocksInOrder(t *testing.T) {
	var visits []Dim3
	k := &Kernel{
		Name: "visit", Grid: Dim(2, 2, 2), Block: Dim(1),
		Func: func(bc *BlockCtx) { visits = append(visits, bc.BlockIdx) },
	}
	if err := k.RunFunctional(&testMemory{}); err != nil {
		t.Fatal(err)
	}
	if len(visits) != 8 {
		t.Fatalf("visited %d blocks, want 8", len(visits))
	}
	// Deterministic x-fastest order.
	if visits[0] != (Dim3{0, 0, 0}) || visits[1] != (Dim3{1, 0, 0}) || visits[2] != (Dim3{0, 1, 0}) {
		t.Fatalf("visit order = %v", visits[:3])
	}
}

func TestRunFunctionalWithoutBody(t *testing.T) {
	k := &Kernel{Name: "nobody", Grid: Dim(1), Block: Dim(1)}
	if err := k.RunFunctional(&testMemory{}); err == nil {
		t.Fatal("RunFunctional succeeded without a body")
	}
}

func TestTypedViewsRoundTrip(t *testing.T) {
	m := &testMemory{data: make([]byte, 1024)}
	f32 := Float32s(m, 0, 8)
	f32[3] = 2.5
	if Float32s(m, 0, 8)[3] != 2.5 {
		t.Fatal("Float32s view not aliasing")
	}
	f64 := Float64s(m, 256, 4)
	f64[0] = -1.25
	if Float64s(m, 256, 4)[0] != -1.25 {
		t.Fatal("Float64s view not aliasing")
	}
	i32 := Int32s(m, 512, 4)
	i32[2] = -7
	if Int32s(m, 512, 4)[2] != -7 {
		t.Fatal("Int32s view not aliasing")
	}
	u64 := Uint64s(m, 768, 2)
	u64[1] = 1 << 50
	if Uint64s(m, 768, 2)[1] != 1<<50 {
		t.Fatal("Uint64s view not aliasing")
	}
}

func TestHostBytesAlias(t *testing.T) {
	v := []float32{1, 2, 3}
	b := HostFloat32Bytes(v)
	if len(b) != 12 {
		t.Fatalf("len = %d", len(b))
	}
	v[0] = 9
	if Float32s(&testMemory{data: b}, 0, 1)[0] != 9 {
		t.Fatal("HostFloat32Bytes does not alias")
	}
	d := []float64{1.5}
	bd := HostFloat64Bytes(d)
	if len(bd) != 8 {
		t.Fatalf("float64 len = %d", len(bd))
	}
	if HostFloat32Bytes(nil) != nil || HostFloat64Bytes(nil) != nil {
		t.Fatal("nil slices should map to nil")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0, 0) {
		t.Fatal("identical values not equal")
	}
	if !AlmostEqual(100, 100.001, 1e-4) {
		t.Fatal("within tolerance rejected")
	}
	if AlmostEqual(100, 101, 1e-4) {
		t.Fatal("outside tolerance accepted")
	}
	if !AlmostEqual(0, 1e-13, 1e-9) {
		t.Fatal("near-zero handling broken")
	}
}

// Property: Flat is a bijection from coordinates to [0, Count).
func TestQuickFlatBijection(t *testing.T) {
	f := func(xr, yr, zr uint8) bool {
		e := Dim3{X: int(xr%5) + 1, Y: int(yr%5) + 1, Z: int(zr%5) + 1}
		seen := make(map[int]bool)
		for z := 0; z < e.Z; z++ {
			for y := 0; y < e.Y; y++ {
				for x := 0; x < e.X; x++ {
					i := (Dim3{X: x, Y: y, Z: z}).Flat(e)
					if i < 0 || i >= e.Count() || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return len(seen) == e.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
