// Package cuda provides a CUDA-like host programming framework for the GPU
// simulator: grid/block geometry, kernel descriptors with both a functional
// implementation (the kernel really computes its result on the host) and a
// cost model (cycles of work per thread, used by the simulator's timing
// engine), plus typed views of device memory.
//
// Functional kernels are written at *block* granularity: the function is
// invoked once per thread block and loops over the block's threads itself.
// This preserves the CUDA decomposition (indexing by blockIdx/threadIdx)
// while staying efficient in Go.
//
// Functional execution comes in two flavors. Kernel.RunFunctional is the
// serial reference: every block in deterministic grid order on the
// calling goroutine. Executor fans a launch's blocks out across a bounded
// worker pool in contiguous chunks; for kernels whose blocks write
// disjoint memory (the common CUDA discipline) the result is bit-identical
// to the serial path, and kernels that need sequential block order declare
// Kernel.SerialOnly to opt out. See Executor for the full contract.
package cuda

import (
	"fmt"

	"gpuvirt/internal/fermi"
)

// Dim3 is a CUDA dim3: a 3-dimensional extent. Zero components are
// treated as 1 by Norm.
type Dim3 struct{ X, Y, Z int }

// Dim returns a Dim3 with the given extents; y and z default to 1 when 0.
func Dim(x int, yz ...int) Dim3 {
	d := Dim3{X: x, Y: 1, Z: 1}
	if len(yz) > 0 {
		d.Y = yz[0]
	}
	if len(yz) > 1 {
		d.Z = yz[1]
	}
	return d.Norm()
}

// Norm replaces zero components with 1.
func (d Dim3) Norm() Dim3 {
	if d.X == 0 {
		d.X = 1
	}
	if d.Y == 0 {
		d.Y = 1
	}
	if d.Z == 0 {
		d.Z = 1
	}
	return d
}

// Count returns X*Y*Z.
func (d Dim3) Count() int {
	d = d.Norm()
	return d.X * d.Y * d.Z
}

// Flat converts the coordinate to a flat index within extent e
// (x-major, CUDA convention: idx = (z*e.Y + y)*e.X + x).
func (d Dim3) Flat(e Dim3) int {
	e = e.Norm()
	return (d.Z*e.Y+d.Y)*e.X + d.X
}

// String formats the dim as "XxYxZ" (suppressing trailing 1s).
func (d Dim3) String() string {
	d = d.Norm()
	switch {
	case d.Z != 1:
		return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
	case d.Y != 1:
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	default:
		return fmt.Sprintf("%d", d.X)
	}
}

// DevPtr is a device memory address (0 is the null pointer).
type DevPtr uint64

// Memory is the view of device memory that functional kernels receive.
// In timing-only simulations Bytes returns nil and kernels must not be
// executed functionally.
type Memory interface {
	// Bytes returns a mutable slice aliasing n bytes of device memory at p.
	Bytes(p DevPtr, n int64) []byte
}

// BlockCtx is the execution context handed to a functional kernel for one
// thread block.
type BlockCtx struct {
	BlockIdx Dim3 // this block's coordinates within the grid
	GridDim  Dim3
	BlockDim Dim3
	Mem      Memory
	Args     []any
}

// GlobalBase returns the flat global index of thread (0,0,0) of this block
// for 1-D launches: blockIdx.X * blockDim.X.
func (c *BlockCtx) GlobalBase() int { return c.BlockIdx.X * c.BlockDim.X }

// Arg returns argument i (panics if out of range, like a bad kernel call).
func (c *BlockCtx) Arg(i int) any { return c.Args[i] }

// Ptr returns argument i as a DevPtr.
func (c *BlockCtx) Ptr(i int) DevPtr { return c.Args[i].(DevPtr) }

// Int returns argument i as an int.
func (c *BlockCtx) Int(i int) int { return c.Args[i].(int) }

// Float32Arg returns argument i as a float32.
func (c *BlockCtx) Float32Arg(i int) float32 { return c.Args[i].(float32) }

// Float64Arg returns argument i as a float64.
func (c *BlockCtx) Float64Arg(i int) float64 { return c.Args[i].(float64) }

// BlockFunc is a functional kernel body invoked once per thread block.
type BlockFunc func(c *BlockCtx)

// Kernel is a launchable GPU kernel: geometry, per-block resource
// footprint, a cost model for the timing engine, and an optional
// functional body.
type Kernel struct {
	Name  string
	Grid  Dim3
	Block Dim3

	// Resource footprint per block (occupancy inputs).
	RegsPerThread     int
	SharedMemPerBlock int

	// Cost model: SP-lane cycles of work per thread, and device-memory
	// traffic per thread in bytes (enforces a bandwidth floor on the
	// kernel's duration).
	CyclesPerThread   float64
	MemBytesPerThread float64

	// Func optionally computes the kernel's real result. It may be nil
	// for timing-only workloads.
	Func BlockFunc
	Args []any

	// SerialOnly marks a functional body whose blocks do NOT write
	// disjoint memory — cross-block reductions, scans, or anything that
	// relies on the serial host loop's block order. Executor always runs
	// such kernels through the serial reference path. Kernels leaving
	// this false promise block-disjoint writes and may be executed by any
	// number of workers with bit-identical results.
	SerialOnly bool
}

// Threads returns the total number of threads in the launch.
func (k *Kernel) Threads() int { return k.Grid.Count() * k.Block.Count() }

// Blocks returns the total number of thread blocks in the launch.
func (k *Kernel) Blocks() int { return k.Grid.Count() }

// Resources returns the occupancy inputs for this kernel.
func (k *Kernel) Resources() fermi.BlockResources {
	return fermi.BlockResources{
		ThreadsPerBlock:   k.Block.Count(),
		RegsPerThread:     k.RegsPerThread,
		SharedMemPerBlock: k.SharedMemPerBlock,
	}
}

// Validate reports configuration errors in the launch.
func (k *Kernel) Validate(arch fermi.Arch) error {
	if k.Grid.Count() < 1 {
		return fmt.Errorf("cuda: kernel %q: empty grid", k.Name)
	}
	if k.Block.Count() < 1 {
		return fmt.Errorf("cuda: kernel %q: empty block", k.Name)
	}
	if k.CyclesPerThread < 0 || k.MemBytesPerThread < 0 {
		return fmt.Errorf("cuda: kernel %q: negative cost model", k.Name)
	}
	if _, err := arch.Occupancy(k.Resources()); err != nil {
		return fmt.Errorf("cuda: kernel %q: %w", k.Name, err)
	}
	return nil
}

// TotalWorkCycles returns the cost model's total lane-cycles for the launch.
func (k *Kernel) TotalWorkCycles() float64 {
	return float64(k.Threads()) * k.CyclesPerThread
}

// TotalMemBytes returns the cost model's total device-memory traffic.
func (k *Kernel) TotalMemBytes() float64 {
	return float64(k.Threads()) * k.MemBytesPerThread
}

// Clone returns a copy of the kernel with freshly copied Args, so a
// template kernel can be launched with per-process arguments.
func (k *Kernel) Clone() *Kernel {
	c := *k
	c.Args = append([]any(nil), k.Args...)
	return &c
}

// RunFunctional executes the kernel body for every block in the grid, in
// deterministic block order, against mem. It is the host-side reference
// execution used by tests and functional examples. It returns an error if
// the kernel has no functional body.
func (k *Kernel) RunFunctional(mem Memory) error {
	if k.Func == nil {
		return fmt.Errorf("cuda: kernel %q has no functional body", k.Name)
	}
	k.runBlockRange(mem, 0, k.Blocks())
	return nil
}
