package transport

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gpuvirt/internal/shm"
)

// Ring-plane tuning. The spin budget is how many scheduler yields each
// side burns before arming its doorbell and parking on a futex; the park
// slice bounds one futex wait so a dead peer degrades into periodic
// re-checks instead of a hang.
const (
	ringSpinBudget = 512
	ringParkSlice  = 100 * time.Millisecond
)

// RingPlane is the client side of the zero-syscall control plane: after
// REQ negotiates PlaneRing, every verb of the session travels as a
// binary frame through the submission ring and its response comes back
// through the completion ring, both inside one mmap'd segment shared
// with the daemon. Payloads move through the segment's staging regions,
// which the daemon has rebound as the session's pinned staging — so a
// warm SND→STR→STP→RCV cycle crosses the kernel zero times and copies
// each payload byte exactly once (the client's own StageIn/CollectOut
// memcpy, which IS the host<->staging copy).
//
// RingPlane also implements DataPlane so the session's payload helpers
// work unchanged; a Trip is not safe for concurrent use (the rings are
// strictly SPSC) — ipc.Session serializes trips with its own mutex.
type RingPlane struct {
	seg     shm.Segment
	doorSeg shm.Segment
	sr      *shm.SessionRing
	door    *atomic.Uint32 // shard submission doorbell (rung after Push)

	enc     frameEncoder
	rec     []byte   // retained contiguous-frame scratch
	resp    Response // retained decode target; backing arrays reused
	trips   int64
	timeout time.Duration
}

// openRingPlane attaches the client half of a ring session advertised by
// a REQ response: the session segment, its rings, and the shard doorbell
// word the daemon told us to ring after each submission.
func openRingPlane(shmDir string, resp Response) (*RingPlane, error) {
	seg, err := shm.OpenFile(shmDir, resp.Segment)
	if err != nil {
		return nil, fmt.Errorf("transport: attach ring plane: %w", err)
	}
	sr, err := shm.AttachSessionRing(seg)
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("transport: attach ring plane: %w", err)
	}
	doorSeg, err := shm.OpenFile(shmDir, sr.DoorFile())
	if err != nil {
		seg.Close()
		return nil, fmt.Errorf("transport: attach ring doorbell: %w", err)
	}
	door, err := shm.DoorWordAt(doorSeg, sr.DoorOff())
	if err != nil {
		doorSeg.Close()
		seg.Close()
		return nil, fmt.Errorf("transport: attach ring doorbell: %w", err)
	}
	return &RingPlane{seg: seg, doorSeg: doorSeg, sr: sr, door: door}, nil
}

func (p *RingPlane) Kind() string { return PlaneRing }

// SetTimeout bounds each Trip's wait for a response (0 = wait forever).
// The deadline is only consulted on the slow (parked) path, so the warm
// path never reads the clock.
func (p *RingPlane) SetTimeout(d time.Duration) { p.timeout = d }

// Trips returns how many ring round trips the plane has made.
func (p *RingPlane) Trips() int64 { return p.trips }

// StageIn copies SND input into the segment's staging region, which the
// daemon rebound as the session's pinned staging — this one memcpy is
// the entire host-side data path.
func (p *RingPlane) StageIn(data []byte, req *Request) error {
	if data == nil {
		return nil
	}
	in := p.sr.In()
	if len(data) != len(in) {
		return fmt.Errorf("transport: ring StageIn got %d bytes, staging holds %d", len(data), len(in))
	}
	copy(in, data)
	return nil
}

// CollectOut copies RCV results out of the segment's staging region.
func (p *RingPlane) CollectOut(buf []byte, resp *Response) error {
	if buf == nil {
		return nil
	}
	out := p.sr.Out()
	if len(buf) != len(out) {
		return fmt.Errorf("transport: ring CollectOut buffer is %d bytes, staging holds %d", len(buf), len(out))
	}
	copy(buf, out)
	return nil
}

func (p *RingPlane) Close() error {
	err := p.doorSeg.Close()
	if cerr := p.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// Trip submits one request record and waits for its response record.
// The returned Response is owned by the plane and valid only until the
// next Trip (its strings are interned constants, its Batch backing is
// reused). Requests must not carry Data — ring payloads travel through
// the staging regions.
func (p *RingPlane) Trip(req Request) (*Response, error) {
	if err := p.enc.encodeRequest(req); err != nil {
		return nil, err
	}
	p.rec = p.enc.flatten(p.rec[:0])
	p.enc.clearAliases()
	if len(p.rec) > p.sr.Sub.MaxRecord() {
		return nil, fmt.Errorf("transport: ring record %d bytes exceeds slot capacity %d", len(p.rec), p.sr.Sub.MaxRecord())
	}
	// Backpressure: the ring holds every frame a serial session can have
	// in flight, so a full ring means the daemon is behind (or gone) —
	// cold path, plain yields.
	var pushDeadline time.Time
	for spins := 0; !p.sr.Sub.Push(p.rec); spins++ {
		if spins < ringSpinBudget {
			runtime.Gosched()
			continue
		}
		if p.timeout > 0 {
			if pushDeadline.IsZero() {
				pushDeadline = time.Now().Add(p.timeout)
			} else if time.Now().After(pushDeadline) {
				return nil, fmt.Errorf("transport: ring submission stalled for %v (daemon hung or stopped?)", p.timeout)
			}
		}
		time.Sleep(50 * time.Microsecond)
	}
	shm.DoorRing(p.door)
	p.trips++

	rec, err := p.awaitCpl()
	if err != nil {
		return nil, err
	}
	// Decode fully (strings interned, Batch backing reused, nothing
	// aliases the slot) before recycling it back to the daemon.
	derr := DecodeResponseBinaryInto(&p.resp, rec)
	p.sr.Cpl.Release()
	if derr != nil {
		return nil, derr
	}
	return &p.resp, nil
}

// awaitCpl waits for the next completion record: spin first (the daemon
// answers warm verbs in microseconds), then arm the client doorbell and
// park on it in bounded slices.
func (p *RingPlane) awaitCpl() ([]byte, error) {
	for i := 0; i < ringSpinBudget; i++ {
		if rec, ok := p.sr.Cpl.Peek(); ok {
			return rec, nil
		}
		runtime.Gosched()
	}
	var deadline time.Time
	if p.timeout > 0 {
		deadline = time.Now().Add(p.timeout)
	}
	door := p.sr.ClientDoor()
	for {
		armed := shm.DoorArm(door)
		// Re-check after arming: a completion published before the armed
		// bit was visible would otherwise be a lost wakeup.
		if rec, ok := p.sr.Cpl.Peek(); ok {
			shm.DoorDisarm(door)
			return rec, nil
		}
		shm.DoorSleep(door, armed, ringParkSlice)
		shm.DoorDisarm(door)
		if rec, ok := p.sr.Cpl.Peek(); ok {
			return rec, nil
		}
		if p.timeout > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: ring: no response within %v (daemon hung or stopped?)", p.timeout)
		}
	}
}
