package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
)

// poolDelta runs fn and returns how far the pool's get/put balance moved:
// 0 means every buffer fn drew was returned (or was never pooled).
func poolDelta(t *testing.T, fn func()) int64 {
	t.Helper()
	g0, p0, _, _ := PoolStats()
	fn()
	g1, p1, _, _ := PoolStats()
	return (g1 - g0) - (p1 - p0)
}

// TestPoolBalanceRoundTrips drives frames of several size classes —
// inline, external (> inlineDataThreshold), and above rbufHighWater so
// the read buffer swaps both up and back down — and asserts the pool
// get/put counters balance once both connection ends are released.
func TestPoolBalanceRoundTrips(t *testing.T) {
	delta := poolDelta(t, func() {
		cc, sc := net.Pipe()
		client, server := NewConn(cc), NewConn(sc)
		done := make(chan error, 1)
		go func() {
			defer server.Release()
			for {
				req, err := server.ReadRequest()
				if err != nil {
					done <- nil // client closed
					return
				}
				if err := server.WriteResponse(Response{Status: "ACK", Data: req.Data}); err != nil {
					done <- err
					return
				}
			}
		}()
		for _, n := range []int{16, 4097, rbufHighWater + 1, 64, 1 << 16} {
			payload := make([]byte, n)
			payload[0], payload[n-1] = 0xab, 0xcd
			if err := client.WriteRequest(Request{Verb: "SND", Session: 1, Data: payload}); err != nil {
				t.Errorf("write %d bytes: %v", n, err)
				break
			}
			resp, err := client.ReadResponse()
			if err != nil {
				t.Errorf("read %d bytes: %v", n, err)
				break
			}
			if len(resp.Data) != n || resp.Data[0] != 0xab || resp.Data[n-1] != 0xcd {
				t.Errorf("echo of %d bytes corrupted", n)
				break
			}
		}
		client.Close()
		server.Close()
		if err := <-done; err != nil {
			t.Errorf("server: %v", err)
		}
		client.Release()
	})
	if delta != 0 {
		t.Fatalf("pool leaked %d buffers across round trips", delta)
	}
}

// TestPoolBalanceTruncatedFrame kills the connection mid-payload: the
// reader has already drawn a pool buffer for the declared length, and
// Release must still return it.
func TestPoolBalanceTruncatedFrame(t *testing.T) {
	delta := poolDelta(t, func() {
		cc, sc := net.Pipe()
		server := NewConn(sc)
		go func() {
			frame, err := EncodeRequestBinary(nil, Request{Verb: "SND", Session: 1, Data: make([]byte, 4096)})
			if err != nil {
				t.Error(err)
				cc.Close()
				return
			}
			cc.Write(frame[:len(frame)/2])
			cc.Close()
		}()
		if _, err := server.ReadRequest(); err == nil {
			t.Error("truncated frame did not error")
		}
		server.Close()
		server.Release()
	})
	if delta != 0 {
		t.Fatalf("pool leaked %d buffers on a truncated frame", delta)
	}
}

// TestEncodeErrorLeavesEncoderClean asserts the nested-batch encode error
// clears the encoder's aliases (no caller payload stays pinned) and the
// connection still frames correctly afterwards.
func TestEncodeErrorLeavesEncoderClean(t *testing.T) {
	cc, sc := net.Pipe()
	client, server := NewConn(cc), NewConn(sc)
	defer func() {
		client.Close()
		server.Close()
		client.Release()
		server.Release()
	}()
	payload := make([]byte, 8192) // external segment: aliased, not copied
	bad := Request{Verb: "BAT", Batch: []Request{{
		Verb: "BAT", Data: payload, Batch: []Request{{Verb: "SND"}},
	}}}
	err := client.WriteRequest(bad)
	if err == nil || !strings.Contains(err.Error(), "nested batch") {
		t.Fatalf("err = %v, want nested-batch error", err)
	}
	if len(client.we.segs) != 0 {
		t.Fatalf("encoder retained %d segments after a failed encode", len(client.we.segs))
	}
	for i, b := range client.we.iovBuf[:cap(client.we.iovBuf)] {
		if b != nil {
			t.Fatalf("iovBuf[%d] still aliases a payload after a failed encode", i)
		}
	}
	// The same connection must produce a correct next frame.
	go func() {
		req, err := server.ReadRequest()
		if err != nil {
			t.Error(err)
			return
		}
		server.WriteResponse(Response{Status: "ACK", Session: req.Session})
	}()
	if err := client.WriteRequest(Request{Verb: "STP", Session: 7}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.ReadResponse()
	if err != nil || resp.Session != 7 {
		t.Fatalf("round trip after failed encode: resp=%+v err=%v", resp, err)
	}
}

// failAfterWriter errors every Write after the first n calls, simulating
// a connection dying mid-writev.
type failAfterWriter struct {
	net.Conn
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("injected write failure")
	}
	f.n--
	return f.Conn.Write(p)
}

// TestShortWriteClearsAliases forces the writev path to die partway
// through a multi-segment frame and asserts the encoder drops its
// payload aliases anyway.
func TestShortWriteClearsAliases(t *testing.T) {
	cc, sc := net.Pipe()
	defer sc.Close()
	go func() { // drain whatever the first Write delivers
		buf := make([]byte, 1<<16)
		for {
			if _, err := sc.Read(buf); err != nil {
				return
			}
		}
	}()
	client := NewConn(&failAfterWriter{Conn: cc, n: 1})
	defer func() {
		client.Close()
		client.Release()
	}()
	payload := make([]byte, 8192) // forces the multi-segment writev path
	if err := client.WriteRequest(Request{Verb: "SND", Session: 1, Data: payload}); err == nil {
		t.Fatal("injected write failure did not surface")
	}
	if len(client.we.segs) != 0 {
		t.Fatalf("encoder retained %d segments after a short write", len(client.we.segs))
	}
	for i, b := range client.we.iovBuf[:cap(client.we.iovBuf)] {
		if b != nil {
			t.Fatalf("iovBuf[%d] still aliases a payload after a short write", i)
		}
	}
}
