package transport

import (
	"encoding/json"
	"errors"
	"fmt"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/node"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/vgpu"
	"gpuvirt/internal/workloads"
)

// Federation verbs: the daemon-side half of the gvmfed protocol.
//
//	STA — capacity/health advertisement: the router polls it to drive
//	      node-level placement (the same JSON as the -addr-file v2
//	      trailer, but live).
//	MIG — extract one session for cross-node migration: quiesce,
//	      snapshot, serialize, and forget it. Sent by the router on the
//	      session's own sticky connection when the node is draining.
//	ADP — adopt a MIG blob under a freshly minted local id: the inverse
//	      end, sent by the router on the session's new sticky connection
//	      to the surviving node.
//
// MIG/ADP reuse PR9's ExtractSession/AdoptSession machinery one level
// up: intra-node failover moves a session between shards behind one
// dispatcher; these verbs move it between dispatchers.

// MigBlob is the cross-node migration payload: the serialized gvm
// session state plus everything the adopting node needs that cannot
// ride inside it — the workload reference and rank (kernel builders are
// closures; the target rebuilds the spec from its own registry) and the
// staging footprint for placement.
type MigBlob struct {
	Ref      workloads.Ref   `json:"ref"`
	Rank     int             `json:"rank"`
	InBytes  int64           `json:"in_bytes"`
	OutBytes int64           `json:"out_bytes"`
	Started  bool            `json:"started,omitempty"` // an STR has not been STP'd yet
	Ext      json.RawMessage `json:"ext"`
}

// serveSTA answers the node's current capacity/health advertisement.
// Connection-goroutine side, no owner submit: every input is an atomic
// gauge or quantile read.
func (d *Dispatcher) serveSTA() Response {
	ad, err := node.MarshalAd(d.cfg.Node.Advertise())
	if err != nil {
		return errResp(err)
	}
	return Response{Status: "ACK", Data: ad}
}

// serveMIG extracts a session for cross-node migration and answers with
// the serialized MigBlob. The session leaves this node entirely: it is
// unpublished from the dispatcher, its plane closed, its placement
// reservation released. The router must send MIG on the session's own
// (sticky) connection — the ownership check holds like any other verb.
func (d *Dispatcher) serveMIG(req Request, cs *ConnState, submit ShardSubmitter) (Response, bool) {
	s, err := d.lookup(req.Session, cs)
	if err != nil {
		return errResp(err), true
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errResp(fmt.Errorf("transport: session %d is closed", s.id)), true
	}
	if _, isRing := s.plane.(*ringHostPlane); isRing {
		// A ring client's mapped segment names this node's doorbells;
		// the mapping cannot follow the session to another process.
		s.mu.Unlock()
		return errResp(fmt.Errorf("transport: session %d uses the ring plane; cross-node migration needs inline", s.id)), true
	}
	s.migrating = true
	from := s.shard
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.migrating = false
		s.mu.Unlock()
	}()

	fromMgr := d.cfg.Node.Shard(from).Mgr
	var (
		ext     *gvm.ExtractedSession
		xerr    error
		started bool
	)
	if !submit(from, func(p *sim.Proc) {
		ext, xerr = fromMgr.ExtractSession(p, s.id)
		started = s.started // owner-goroutine state, read under the owner
	}) {
		return Response{}, false
	}
	if xerr != nil {
		return errResp(fmt.Errorf("transport: MIG extract session %d from gpu %d: %w", s.id, from, xerr)), true
	}
	extB, err := ext.Encode()
	if err == nil {
		var blob []byte
		blob, err = json.Marshal(MigBlob{
			Ref: s.ref, Rank: s.rank,
			InBytes: s.inB, OutBytes: s.outB,
			Started: started,
			Ext:     extB,
		})
		if err == nil {
			// Point of no return: the session has left this node. The
			// sticky connection stays up (the router owns its lifetime)
			// but the id no longer resolves here.
			d.mu.Lock()
			delete(d.sessions, s.id)
			d.mu.Unlock()
			cs.dropOwned(s.id)
			s.mu.Lock()
			s.closed = true
			plane := s.plane
			s.mu.Unlock()
			if plane != nil {
				_ = plane.Close()
			}
			d.cfg.Node.Release(from, s.inB, s.outB)
			if d.cfg.Log != nil {
				d.cfg.Log.Info("session extracted for cross-node migration",
					"session", s.id, "gpu", from, "bytes", ext.Bytes())
			}
			return Response{Status: "ACK", Session: s.id, Data: blob}, true
		}
	}
	// Serialization failed: put the session back so it keeps serving.
	mgr := d.cfg.Node.Shard(from).Mgr
	var (
		nv        *vgpu.VGPU
		aerr      error
		sIn, sOut []byte
	)
	if !submit(from, func(p *sim.Proc) {
		nv, aerr = vgpu.Adopt(p, mgr, ext)
		if aerr == nil && d.cfg.Functional {
			sIn, sOut = mgr.Staging(s.id)
		}
	}) {
		return Response{}, false
	}
	if aerr != nil {
		return errResp(fmt.Errorf("transport: session %d stranded: encode: %v; re-adopt on gpu %d: %v", s.id, err, from, aerr)), true
	}
	s.mu.Lock()
	s.v = nv
	s.stageIn, s.stageOut = sIn, sOut
	s.mu.Unlock()
	return errResp(fmt.Errorf("transport: MIG encode session %d: %w", s.id, err)), true
}

// serveADP adopts a MIG blob under a freshly minted local session id
// (the source node's striped ids can collide with live local ones) and
// answers like a REQ: the new id, the inline plane, and the staging
// sizes. The adopting connection becomes the session's owner — the
// router sends ADP as the first frame on the session's new sticky
// connection.
func (d *Dispatcher) serveADP(req Request, cs *ConnState, submit ShardSubmitter) (Response, bool) {
	if len(req.Data) == 0 {
		return errResp(errors.New("transport: ADP needs a migration blob")), true
	}
	var blob MigBlob
	if err := json.Unmarshal(req.Data, &blob); err != nil {
		return errResp(fmt.Errorf("transport: ADP decode: %w", err)), true
	}
	ext, err := gvm.DecodeExtracted(blob.Ext)
	if err != nil {
		return errResp(err), true
	}
	w, err := workloads.FromRef(blob.Ref)
	if err != nil {
		return errResp(err), true
	}
	spec := w.Spec(blob.Rank)
	ext.Spec = spec
	srcID := ext.ID

	// Two-level placement, lower level: the router picked this node, the
	// node's own policy picks the shard.
	shard, err := d.cfg.Node.Place(spec.InBytes, spec.OutBytes)
	if err != nil {
		return errResp(err), true
	}
	mgr := d.cfg.Node.Shard(shard).Mgr
	var (
		id                int
		v                 *vgpu.VGPU
		aerr              error
		stageIn, stageOut []byte
		vms               float64
	)
	if !submit(shard, func(p *sim.Proc) {
		id = mgr.MintSessionID()
		ext.SetID(id)
		v, aerr = vgpu.Adopt(p, mgr, ext)
		if aerr == nil && d.cfg.Functional {
			stageIn, stageOut = mgr.Staging(id)
		}
		vms = p.Now().Milliseconds()
	}) {
		d.cfg.Node.Release(shard, spec.InBytes, spec.OutBytes)
		return Response{}, false
	}
	if aerr != nil {
		d.cfg.Node.Release(shard, spec.InBytes, spec.OutBytes)
		r := errResp(fmt.Errorf("transport: ADP adopt on gpu %d: %w", shard, aerr))
		r.VirtualMS = vms
		return r, true
	}
	s := &hostSession{
		id: id, v: v, shard: shard,
		inB: spec.InBytes, outB: spec.OutBytes,
		owner: cs, met: d.met, stageIn: stageIn, stageOut: stageOut,
		ref: blob.Ref, rank: blob.Rank,
		started: blob.Started, // pre-publication write, no lock needed
	}
	s.plane, _ = NewHostPlane(PlaneInline, "", "", spec.InBytes, spec.OutBytes)
	d.mu.Lock()
	d.sessions[id] = s
	d.mu.Unlock()
	cs.owned = append(cs.owned, id)
	if d.cfg.Log != nil {
		d.cfg.Log.Info("session adopted from cross-node migration",
			"session", id, "source-session", srcID, "gpu", shard)
	}
	return Response{
		Status:    "ACK",
		Session:   id,
		Plane:     PlaneInline,
		InBytes:   spec.InBytes,
		OutBytes:  spec.OutBytes,
		VirtualMS: vms,
	}, true
}
