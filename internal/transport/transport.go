// Package transport is the pluggable connection layer of the daemon-mode
// virtualization stack. It separates three concerns that used to be
// fused inside package ipc:
//
//   - Transport — how a client reaches the daemon: dial/listen plus the
//     round-trip framing that runs on the resulting connection. Three
//     transports are registered: unix (Unix-domain sockets, the classic
//     gvmd path), tcp (remote rCUDA-style access across nodes), and
//     inproc (a socket-free in-process pipe for tests and co-located
//     deployments).
//   - DataPlane / HostPlane — how SND/RCV payload bytes move: through a
//     file-backed shared-memory segment (PlaneShm, for clients that
//     share a filesystem with the daemon) or inline inside the control
//     frame (PlaneInline, for remote clients with no shared /dev/shm).
//   - Dispatcher — the one server-side verb state machine. Every
//     transport feeds decoded Requests to the same Dispatcher, which
//     delegates to gvm.Manager through the same vgpu client API the
//     simulation uses, so the REQ/SND/STR/STP/RCV/RLS protocol is
//     implemented exactly once.
//
// Addresses are URLs: "unix:///tmp/gvmd.sock", "tcp://host:7070",
// "inproc://name". A bare path with no scheme means unix, preserving the
// historical gvmd -socket form.
package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Data-plane kinds, selected per session at REQ time.
const (
	// PlaneShm exchanges payloads through a file-backed shared-memory
	// segment; client and daemon must share a filesystem.
	PlaneShm = "shm"
	// PlaneInline carries payloads inside the control frames themselves,
	// so a remote client needs nothing but the connection. One payload is
	// bounded by MaxFrame.
	PlaneInline = "inline"
	// PlaneRing moves the whole session — control verbs AND payloads —
	// through lock-free submission/completion rings inside one mmap'd
	// shared-memory segment (see ring.go). The socket only carries REQ;
	// every later verb is a ring record, so a warm cycle crosses the
	// kernel zero times. Requires a shared filesystem, like PlaneShm.
	PlaneRing = "ring"
)

// Transport binds the verb protocol to one kind of connection.
type Transport interface {
	// Scheme names the transport in addresses ("unix", "tcp", "inproc").
	Scheme() string
	// Dial opens a client connection to target (the address with the
	// scheme stripped).
	Dial(target string) (net.Conn, error)
	// Listen binds a server listener on target.
	Listen(target string) (Listener, error)
	// DefaultPlane is the data plane a session gets when the client does
	// not force one: shm for co-located transports, inline for remote.
	DefaultPlane() string
}

// Listener accepts connections for one transport binding.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
	// Addr returns the bound address in URL form (with the actual port
	// for tcp://...:0 requests).
	Addr() string
	Scheme() string
}

var registry = struct {
	sync.Mutex
	m map[string]Transport
}{m: make(map[string]Transport)}

// Register adds a transport to the scheme registry, replacing any
// previous transport with the same scheme.
func Register(t Transport) {
	registry.Lock()
	defer registry.Unlock()
	registry.m[t.Scheme()] = t
}

// Lookup resolves a scheme to its registered transport.
func Lookup(scheme string) (Transport, error) {
	registry.Lock()
	defer registry.Unlock()
	t, ok := registry.m[scheme]
	if !ok {
		return nil, fmt.Errorf("transport: unknown scheme %q (have unix, tcp, inproc, ring)", scheme)
	}
	return t, nil
}

// SplitAddr splits "scheme://target" into its parts. An address with no
// scheme is a unix socket path.
func SplitAddr(addr string) (scheme, target string) {
	if i := strings.Index(addr, "://"); i >= 0 {
		return addr[:i], addr[i+3:]
	}
	return "unix", addr
}

// DialAddr connects to a transport address and returns the connection
// together with the transport that produced it (for its DefaultPlane).
func DialAddr(addr string) (net.Conn, Transport, error) {
	scheme, target := SplitAddr(addr)
	t, err := Lookup(scheme)
	if err != nil {
		return nil, nil, err
	}
	nc, err := t.Dial(target)
	if err != nil {
		return nil, nil, err
	}
	return nc, t, nil
}

// ListenAddr binds a listener on a transport address.
func ListenAddr(addr string) (Listener, error) {
	scheme, target := SplitAddr(addr)
	t, err := Lookup(scheme)
	if err != nil {
		return nil, err
	}
	return t.Listen(target)
}

// netListener adapts a net.Listener to the Listener interface.
type netListener struct {
	ln     net.Listener
	scheme string
}

func (l netListener) Accept() (net.Conn, error) { return l.ln.Accept() }
func (l netListener) Close() error              { return l.ln.Close() }
func (l netListener) Addr() string              { return l.scheme + "://" + l.ln.Addr().String() }
func (l netListener) Scheme() string            { return l.scheme }

type unixTransport struct{}

func (unixTransport) Scheme() string       { return "unix" }
func (unixTransport) DefaultPlane() string { return PlaneShm }
func (unixTransport) Dial(target string) (net.Conn, error) {
	return net.Dial("unix", target)
}
func (unixTransport) Listen(target string) (Listener, error) {
	ln, err := net.Listen("unix", target)
	if err != nil {
		return nil, err
	}
	return netListener{ln: ln, scheme: "unix"}, nil
}

type tcpTransport struct{}

func (tcpTransport) Scheme() string       { return "tcp" }
func (tcpTransport) DefaultPlane() string { return PlaneInline }
func (tcpTransport) Dial(target string) (net.Conn, error) {
	return net.Dial("tcp", target)
}
func (tcpTransport) Listen(target string) (Listener, error) {
	ln, err := net.Listen("tcp", target)
	if err != nil {
		return nil, err
	}
	return netListener{ln: ln, scheme: "tcp"}, nil
}

// ringTransport is the zero-syscall control plane's scheme: the listener
// and dial are ordinary unix sockets (REQ negotiation and codec preamble
// still travel there), but sessions default to the ring data plane, so
// after REQ every verb moves through the session's shared-memory rings
// and never touches the socket again.
type ringTransport struct{}

func (ringTransport) Scheme() string       { return "ring" }
func (ringTransport) DefaultPlane() string { return PlaneRing }
func (ringTransport) Dial(target string) (net.Conn, error) {
	return net.Dial("unix", target)
}
func (ringTransport) Listen(target string) (Listener, error) {
	ln, err := net.Listen("unix", target)
	if err != nil {
		return nil, err
	}
	return netListener{ln: ln, scheme: "ring"}, nil
}

// inprocTransport serves dials from the same process through synchronous
// in-memory pipes — no OS socket, no filesystem. Names live in a
// process-global registry.
type inprocTransport struct {
	mu  sync.Mutex
	lns map[string]*inprocListener
}

func (t *inprocTransport) Scheme() string       { return "inproc" }
func (t *inprocTransport) DefaultPlane() string { return PlaneShm }

func (t *inprocTransport) Dial(name string) (net.Conn, error) {
	t.mu.Lock()
	l := t.lns[name]
	t.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no inproc listener %q", name)
	}
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		return nil, fmt.Errorf("transport: inproc listener %q closed", name)
	}
}

func (t *inprocTransport) Listen(name string) (Listener, error) {
	if name == "" {
		return nil, errors.New("transport: inproc listener needs a name")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.lns[name]; ok {
		return nil, fmt.Errorf("transport: inproc name %q already in use", name)
	}
	l := &inprocListener{t: t, name: name, ch: make(chan net.Conn), done: make(chan struct{})}
	t.lns[name] = l
	return l, nil
}

type inprocListener struct {
	t    *inprocTransport
	name string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.t.mu.Lock()
	if l.t.lns[l.name] == l {
		delete(l.t.lns, l.name)
	}
	l.t.mu.Unlock()
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *inprocListener) Addr() string   { return "inproc://" + l.name }
func (l *inprocListener) Scheme() string { return "inproc" }

func init() {
	Register(unixTransport{})
	Register(tcpTransport{})
	Register(ringTransport{})
	Register(&inprocTransport{lns: make(map[string]*inprocListener)})
}
