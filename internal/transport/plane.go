package transport

import (
	"fmt"

	"gpuvirt/internal/shm"
)

// DataPlane is the client-side binding of one session's payload path:
// how SND input bytes reach the daemon and how RCV output bytes come
// back. The control plane (verb frames) is the same either way.
type DataPlane interface {
	Kind() string
	// StageIn makes data visible to the daemon ahead of SND: the shm
	// plane copies it into the shared segment, the inline plane attaches
	// it to the request frame. data may be nil in timing-only mode.
	StageIn(data []byte, req *Request) error
	// CollectOut recovers RCV results into buf: the shm plane reads the
	// segment, the inline plane copies out of the response frame. buf may
	// be nil in timing-only mode.
	CollectOut(buf []byte, resp *Response) error
	Close() error
}

// OpenPlane attaches the client side of the data plane a REQ response
// selected. shmDir must match the daemon's segment directory for the shm
// plane ("" = /dev/shm).
func OpenPlane(shmDir string, resp Response) (DataPlane, error) {
	switch resp.Plane {
	case PlaneShm:
		seg, err := shm.OpenFile(shmDir, resp.Segment)
		if err != nil {
			return nil, fmt.Errorf("transport: attach shm data plane: %w", err)
		}
		return &shmPlane{seg: seg, inBytes: resp.InBytes}, nil
	case PlaneInline:
		return inlinePlane{}, nil
	case PlaneRing:
		return openRingPlane(shmDir, resp)
	case "":
		// Tolerate a daemon that predates plane negotiation: a segment
		// name means shm, nothing means inline.
		if resp.Segment != "" {
			return OpenPlane(shmDir, Response{Plane: PlaneShm, Segment: resp.Segment, InBytes: resp.InBytes})
		}
		return inlinePlane{}, nil
	default:
		return nil, fmt.Errorf("transport: unknown data plane %q", resp.Plane)
	}
}

// shmPlane exchanges payloads through a file-backed shared-memory
// segment: input at offset 0, output at offset inBytes.
type shmPlane struct {
	seg     shm.Segment
	inBytes int64
}

func (p *shmPlane) Kind() string { return PlaneShm }

func (p *shmPlane) StageIn(data []byte, req *Request) error {
	if data == nil {
		return nil
	}
	return p.seg.WriteAt(data, 0)
}

func (p *shmPlane) CollectOut(buf []byte, resp *Response) error {
	if buf == nil {
		return nil
	}
	return p.seg.ReadAt(buf, p.inBytes)
}

func (p *shmPlane) Close() error { return p.seg.Close() }

// inlinePlane rides payloads inside the control frames; nothing to
// attach, nothing to clean up. One payload is bounded by MaxFrame.
type inlinePlane struct{}

func (inlinePlane) Kind() string { return PlaneInline }

func (inlinePlane) StageIn(data []byte, req *Request) error {
	req.Data = data
	return nil
}

func (inlinePlane) CollectOut(buf []byte, resp *Response) error {
	if buf == nil {
		return nil
	}
	if len(resp.Data) != len(buf) {
		return fmt.Errorf("transport: inline RCV carried %d bytes, want %d", len(resp.Data), len(buf))
	}
	copy(buf, resp.Data)
	return nil
}

func (inlinePlane) Close() error { return nil }

// HostPlane is the daemon-side half of a session's data plane.
type HostPlane interface {
	Kind() string
	// Segment names the shared-memory segment advertised to the client
	// ("" for the inline plane).
	Segment() string
	// CopyIn fills dst with the SND payload the client staged.
	CopyIn(req *Request, dst []byte) error
	// CopyOut publishes the RCV payload in src to the client. The inline
	// plane aliases src into resp.Data without copying, so src must stay
	// untouched until the response frame has been written.
	CopyOut(src []byte, resp *Response) error
	Close() error
}

// NewHostPlane creates the daemon side of a session's data plane.
func NewHostPlane(kind, dir, name string, inBytes, outBytes int64) (HostPlane, error) {
	switch kind {
	case PlaneShm:
		size := inBytes + outBytes
		if size < 1 {
			size = 1
		}
		seg, err := shm.NewFile(dir, name, size)
		if err != nil {
			return nil, err
		}
		return &shmHostPlane{seg: seg, name: name, inBytes: inBytes}, nil
	case PlaneInline:
		return inlineHostPlane{}, nil
	default:
		return nil, fmt.Errorf("transport: unknown data plane %q (want %q or %q)", kind, PlaneShm, PlaneInline)
	}
}

type shmHostPlane struct {
	seg     shm.Segment
	name    string
	inBytes int64
}

func (h *shmHostPlane) Kind() string    { return PlaneShm }
func (h *shmHostPlane) Segment() string { return h.name }

func (h *shmHostPlane) CopyIn(req *Request, dst []byte) error {
	return h.seg.ReadAt(dst, 0)
}

func (h *shmHostPlane) CopyOut(src []byte, resp *Response) error {
	return h.seg.WriteAt(src, h.inBytes)
}

func (h *shmHostPlane) Close() error { return h.seg.Close() }

type inlineHostPlane struct{}

func (inlineHostPlane) Kind() string    { return PlaneInline }
func (inlineHostPlane) Segment() string { return "" }

func (inlineHostPlane) CopyIn(req *Request, dst []byte) error {
	if len(req.Data) != len(dst) {
		return fmt.Errorf("transport: inline SND carried %d bytes, session stages %d", len(req.Data), len(dst))
	}
	copy(dst, req.Data)
	return nil
}

func (inlineHostPlane) CopyOut(src []byte, resp *Response) error {
	// Zero-copy: the response frame is written (writev) before the
	// session can start another cycle that would overwrite src.
	resp.Data = src
	return nil
}

func (inlineHostPlane) Close() error { return nil }
