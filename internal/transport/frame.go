package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sort"

	"gpuvirt/internal/workloads"
)

// Binary wire format. Each frame is a fixed header followed by a varint
// payload:
//
//	[0]    magic 0xB1
//	[1]    kind: 'Q' request, 'S' response
//	[2:6]  payload length, uint32 little-endian (<= MaxFrame)
//
// Request payload:  verb, session, rank, ref-present byte, then (if
// present) ref name + param count + sorted key/value pairs, then the
// data-plane name and the optional inline payload. A BAT container
// appends a sub-request count and each sub-request's fields (same
// layout, no nesting); single-verb frames carry no batch section at all,
// so they are byte-identical to the pre-batch format. A frame whose REQ
// carries extension fields (MemQuota, Priority, Weight) appends, after the batch
// section (count 0 when there is none), an extension-flags uvarint
// followed by one varint per set flag — bit 0 MemQuota, bit 1 Priority,
// bit 2 Weight.
// Frames without extension fields omit the section entirely, keeping
// them byte-identical to the pre-extension format.
// Response payload: status, session, err, plane, segment, inBytes,
// outBytes, virtualMS (float64 bits, 8 bytes little-endian), optional
// inline payload, then the optional sub-response section mirroring the
// request's batch.
// Strings are uvarint length + bytes; integers are zigzag varints; byte
// payloads are a presence byte then uvarint length + bytes (nil and
// empty slices round-trip distinctly).
//
// The header magic doubles as a mode detector: a JSON peer's first byte is
// '{', a binary peer's is 0xB1, so either side can report a clean
// mode-mismatch error instead of decoding garbage.
const (
	frameMagic   = 0xB1
	kindRequest  = 'Q'
	kindResponse = 'S'
	headerLen    = 6

	// MaxFrame bounds one frame's payload. Control-plane messages are
	// tiny, but the inline data plane rides SND/RCV payloads inside the
	// frame, so the bound is sized for payloads (64 MiB); sessions moving
	// more per cycle should use the shm data plane.
	MaxFrame = 1 << 26

	// inlineDataThreshold is the largest payload copied into the meta
	// buffer instead of riding as its own writev segment: below it, one
	// syscall beats avoiding one memcpy.
	inlineDataThreshold = 4096
)

// internTable holds every string constant the protocol puts on the wire;
// decoding returns these canonical values instead of allocating, which is
// what keeps the steady-state SND/RCV decode path at zero allocations.
var internTable = [...]string{
	"REQ", "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES", "BAT",
	"STA", "MIG", "ADP",
	"ACK", "WAIT", "ERR",
	PlaneShm, PlaneInline, PlaneRing,
}

func intern(b []byte) string {
	for _, s := range &internTable {
		if string(b) == s {
			return s
		}
	}
	return string(b)
}

// frameEncoder assembles one frame as an ordered list of segments: spans
// of its meta buffer interleaved with external payload slices that are
// never copied (they ride writev scatter-gather straight from the
// caller's buffer). The encoder is reused across frames by Conn.
type frameEncoder struct {
	buf  []byte // header + every non-payload field
	segs []frameSeg
	mark int // start of the open buf span
	// iovBuf is the persistent backing array for iov. WriteTo consumes iov
	// in place (advances its header past the backing), so buffers() must
	// rebuild from a header that still points at the array's base or every
	// frame would reallocate it.
	iovBuf [][]byte
	iov    net.Buffers
}

type frameSeg struct {
	off, end int    // span of frameEncoder.buf when ext is nil
	ext      []byte // external payload, referenced not copied
}

func (e *frameEncoder) reset() {
	e.buf = e.buf[:0]
	e.clearAliases()
}

// clearAliases drops every external payload reference the encoder holds
// (segment list and iov backing array). Callers' payload buffers are
// often pooled; an alias retained here past the frame's write — or past
// an encode error — would pin the buffer, and alias live data once the
// pool recycles it.
func (e *frameEncoder) clearAliases() {
	for i := range e.segs {
		e.segs[i].ext = nil
	}
	e.segs = e.segs[:0]
	for i := range e.iovBuf {
		e.iovBuf[i] = nil
	}
	e.iovBuf = e.iovBuf[:0]
	e.mark = 0
}

// external closes the open meta span and appends p as its own segment.
func (e *frameEncoder) external(p []byte) {
	if len(e.buf) > e.mark {
		e.segs = append(e.segs, frameSeg{off: e.mark, end: len(e.buf)})
	}
	e.segs = append(e.segs, frameSeg{ext: p})
	e.mark = len(e.buf)
}

func (e *frameEncoder) str(s string) {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *frameEncoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *frameEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *frameEncoder) byteVal(b byte)   { e.buf = append(e.buf, b) }

// bytes encodes an optional payload: presence byte, then length + bytes.
// Large payloads become external segments (zero copy).
func (e *frameEncoder) bytes(p []byte) {
	if p == nil {
		e.byteVal(0)
		return
	}
	e.byteVal(1)
	e.uvarint(uint64(len(p)))
	if len(p) == 0 {
		return
	}
	if len(p) <= inlineDataThreshold {
		e.buf = append(e.buf, p...)
		return
	}
	e.external(p)
}

// finish validates the payload length and patches the frame header. It
// must be called exactly once, after all fields are encoded.
func (e *frameEncoder) finish() error {
	n := len(e.buf) - headerLen
	for _, s := range e.segs {
		n += len(s.ext)
	}
	if n > MaxFrame {
		return fmt.Errorf("transport: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(e.buf[headerLen-4:headerLen], uint32(n))
	if len(e.buf) > e.mark {
		e.segs = append(e.segs, frameSeg{off: e.mark, end: len(e.buf)})
		e.mark = len(e.buf)
	}
	return nil
}

// buffers resolves the segment list against the (final) meta buffer into
// a reusable net.Buffers for writev.
func (e *frameEncoder) buffers() net.Buffers {
	e.iovBuf = e.iovBuf[:0]
	for _, s := range e.segs {
		if s.ext != nil {
			e.iovBuf = append(e.iovBuf, s.ext)
		} else {
			e.iovBuf = append(e.iovBuf, e.buf[s.off:s.end])
		}
	}
	e.iov = net.Buffers(e.iovBuf)
	return e.iov
}

// flatten appends the complete contiguous frame to dst.
func (e *frameEncoder) flatten(dst []byte) []byte {
	for _, s := range e.segs {
		if s.ext != nil {
			dst = append(dst, s.ext...)
		} else {
			dst = append(dst, e.buf[s.off:s.end]...)
		}
	}
	return dst
}

func (e *frameEncoder) encodeRequest(req Request) error {
	e.reset()
	e.buf = append(e.buf, frameMagic, kindRequest, 0, 0, 0, 0)
	if err := e.requestFields(req); err != nil {
		return err
	}
	ext := req.MemQuota != 0 || req.Priority != 0 || req.Weight != 0
	if len(req.Batch) > 0 || ext {
		// The extension section sits after the batch section, so a frame
		// carrying extensions always emits the batch count (possibly 0).
		e.uvarint(uint64(len(req.Batch)))
		for i := range req.Batch {
			if len(req.Batch[i].Batch) > 0 {
				return fmt.Errorf("transport: nested batch in %s frame", req.Verb)
			}
			if req.Batch[i].MemQuota != 0 || req.Batch[i].Priority != 0 || req.Batch[i].Weight != 0 {
				// REQ is disallowed inside BAT, and the fields are REQ-only.
				return fmt.Errorf("transport: MemQuota/Priority/Weight on batch sub-request %s", req.Batch[i].Verb)
			}
			if err := e.requestFields(req.Batch[i]); err != nil {
				return err
			}
		}
	}
	if ext {
		var flags uint64
		if req.MemQuota != 0 {
			flags |= 1
		}
		if req.Priority != 0 {
			flags |= 2
		}
		if req.Weight != 0 {
			flags |= 4
		}
		e.uvarint(flags)
		if flags&1 != 0 {
			e.varint(req.MemQuota)
		}
		if flags&2 != 0 {
			e.varint(int64(req.Priority))
		}
		if flags&4 != 0 {
			e.varint(int64(req.Weight))
		}
	}
	return e.finish()
}

func (e *frameEncoder) requestFields(req Request) error {
	e.str(req.Verb)
	e.varint(int64(req.Session))
	e.varint(int64(req.Rank))
	if req.Ref == nil {
		e.byteVal(0)
	} else {
		e.byteVal(1)
		e.str(req.Ref.Name)
		keys := make([]string, 0, len(req.Ref.Params))
		for k := range req.Ref.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.varint(int64(req.Ref.Params[k]))
		}
	}
	e.str(req.Plane)
	e.bytes(req.Data)
	return nil
}

func (e *frameEncoder) encodeResponse(resp Response) error {
	e.reset()
	e.buf = append(e.buf, frameMagic, kindResponse, 0, 0, 0, 0)
	e.responseFields(resp)
	if len(resp.Batch) > 0 {
		e.uvarint(uint64(len(resp.Batch)))
		for i := range resp.Batch {
			if len(resp.Batch[i].Batch) > 0 {
				return fmt.Errorf("transport: nested batch in response frame")
			}
			e.responseFields(resp.Batch[i])
		}
	}
	return e.finish()
}

func (e *frameEncoder) responseFields(resp Response) {
	e.str(resp.Status)
	e.varint(int64(resp.Session))
	e.str(resp.Err)
	e.str(resp.Plane)
	e.str(resp.Segment)
	e.varint(resp.InBytes)
	e.varint(resp.OutBytes)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(resp.VirtualMS))
	e.bytes(resp.Data)
}

// EncodeRequestBinary appends a complete binary request frame to dst and
// returns the extended slice, so callers can reuse one buffer across
// frames. Conn uses the scatter-gather path instead; this contiguous form
// serves tests, fuzzing and offline tooling.
func EncodeRequestBinary(dst []byte, req Request) ([]byte, error) {
	var e frameEncoder
	if err := e.encodeRequest(req); err != nil {
		return nil, err
	}
	return e.flatten(dst), nil
}

// EncodeResponseBinary appends a complete binary response frame to dst.
func EncodeResponseBinary(dst []byte, resp Response) ([]byte, error) {
	var e frameEncoder
	if err := e.encodeResponse(resp); err != nil {
		return nil, err
	}
	return e.flatten(dst), nil
}

// DecodeRequestBinary parses one complete binary request frame. The
// returned request's Data (and sub-request Data) alias the frame buffer;
// they are valid only as long as the caller keeps frame intact.
func DecodeRequestBinary(frame []byte) (Request, error) {
	payload, err := framePayload(frame, kindRequest)
	if err != nil {
		return Request{}, err
	}
	return decodeRequestPayload(payload)
}

// DecodeResponseBinary parses one complete binary response frame; the
// same aliasing rule as DecodeRequestBinary applies.
func DecodeResponseBinary(frame []byte) (Response, error) {
	payload, err := framePayload(frame, kindResponse)
	if err != nil {
		return Response{}, err
	}
	return decodeResponsePayload(payload)
}

// DecodeRequestBinaryInto parses one complete binary request frame into
// *req, reusing req.Batch's backing array across calls — the allocation-
// free decode the ring control plane runs per record. Every field of
// *req is overwritten. On error *req is unspecified. The same aliasing
// rule as DecodeRequestBinary applies: req.Data and sub-request Data
// alias frame.
func DecodeRequestBinaryInto(req *Request, frame []byte) error {
	payload, err := framePayload(frame, kindRequest)
	if err != nil {
		return err
	}
	batch := req.Batch[:0]
	r := frameReader{b: payload}
	*req = r.requestFields()
	if r.err == nil && r.off < len(r.b) {
		n := r.uvarint()
		if n > uint64(len(r.b)) { // each sub-request takes >= 6 bytes
			r.fail("batch count %d overruns payload", n)
		} else {
			if uint64(cap(batch)) < n {
				batch = make([]Request, 0, n)
			}
			for i := uint64(0); i < n && r.err == nil; i++ {
				batch = append(batch, r.requestFields())
			}
			req.Batch = batch
		}
	}
	if r.err == nil && r.off < len(r.b) {
		r.requestExt(req)
	}
	return r.finish()
}

// DecodeResponseBinaryInto parses one complete binary response frame
// into *resp, reusing resp.Batch's backing array; the counterpart of
// DecodeRequestBinaryInto for the client side of the ring.
func DecodeResponseBinaryInto(resp *Response, frame []byte) error {
	payload, err := framePayload(frame, kindResponse)
	if err != nil {
		return err
	}
	batch := resp.Batch[:0]
	r := frameReader{b: payload}
	*resp = r.responseFields()
	if r.err == nil && r.off < len(r.b) {
		n := r.uvarint()
		if n > uint64(len(r.b)) {
			r.fail("batch count %d overruns payload", n)
		} else {
			if uint64(cap(batch)) < n {
				batch = make([]Response, 0, n)
			}
			for i := uint64(0); i < n && r.err == nil; i++ {
				batch = append(batch, r.responseFields())
			}
			resp.Batch = batch
		}
	}
	return r.finish()
}

// framePayload validates a whole-frame buffer's header and returns its
// payload bytes.
func framePayload(frame []byte, kind byte) ([]byte, error) {
	if len(frame) < headerLen {
		return nil, fmt.Errorf("transport: truncated frame header (%d bytes)", len(frame))
	}
	if frame[0] != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic 0x%02x", frame[0])
	}
	if frame[1] != kind {
		return nil, fmt.Errorf("transport: unexpected frame kind %q (want %q)", frame[1], kind)
	}
	n := binary.LittleEndian.Uint32(frame[2:6])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	if uint32(len(frame)-headerLen) != n {
		return nil, fmt.Errorf("transport: frame length mismatch: header says %d, have %d payload bytes", n, len(frame)-headerLen)
	}
	return frame[headerLen:], nil
}

// frameReader is a cursor over one frame's payload; the first decode error
// sticks and subsequent reads return zero values.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: corrupt frame: "+format, args...)
	}
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// str decodes a string, returning the canonical interned value for
// protocol constants (verbs, statuses, plane names) so hot-path decodes
// allocate nothing.
func (r *frameReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string of %d bytes overruns payload at offset %d", n, r.off)
		return ""
	}
	s := intern(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *frameReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("payload overrun at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// bytesVal decodes an optional byte payload as a sub-slice ALIASING the
// frame buffer — no copy. Callers that outlive the frame buffer (Conn
// reuses it for the next frame) must copy before then.
func (r *frameReader) bytesVal() []byte {
	if r.byteVal() == 0 {
		return nil
	}
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("byte payload of %d overruns frame at offset %d", n, r.off)
		return nil
	}
	out := r.b[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *frameReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("float64 overruns payload at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *frameReader) finish() error {
	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes", len(r.b)-r.off)
	}
	return r.err
}

func (r *frameReader) requestFields() Request {
	var req Request
	req.Verb = r.str()
	req.Session = int(r.varint())
	req.Rank = int(r.varint())
	if r.byteVal() != 0 {
		ref := &workloads.Ref{Name: r.str()}
		if n := r.uvarint(); n > 0 {
			if n > uint64(len(r.b)) { // each pair takes >= 2 bytes
				r.fail("param count %d overruns payload", n)
			} else {
				ref.Params = make(map[string]int, n)
				for i := uint64(0); i < n && r.err == nil; i++ {
					k := r.str()
					ref.Params[k] = int(r.varint())
				}
			}
		}
		req.Ref = ref
	}
	req.Plane = r.str()
	req.Data = r.bytesVal()
	return req
}

func decodeRequestPayload(payload []byte) (Request, error) {
	r := frameReader{b: payload}
	req := r.requestFields()
	if r.err == nil && r.off < len(r.b) {
		n := r.uvarint()
		if n > uint64(len(r.b)) { // each sub-request takes >= 6 bytes
			r.fail("batch count %d overruns payload", n)
		} else if n > 0 {
			req.Batch = make([]Request, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				req.Batch = append(req.Batch, r.requestFields())
			}
		}
	}
	if r.err == nil && r.off < len(r.b) {
		r.requestExt(&req)
	}
	if err := r.finish(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// requestExt decodes the optional trailing extension section: an
// extension-flags uvarint, then one varint per set flag. Unknown flags
// fail the frame — their encoding length is unknowable, so skipping them
// would desynchronize the reader.
func (r *frameReader) requestExt(req *Request) {
	flags := r.uvarint()
	if flags&1 != 0 {
		req.MemQuota = r.varint()
	}
	if flags&2 != 0 {
		req.Priority = int(r.varint())
	}
	if flags&4 != 0 {
		req.Weight = int(r.varint())
	}
	if flags&^uint64(7) != 0 {
		r.fail("unknown request extension flags %#x", flags)
	}
}

func (r *frameReader) responseFields() Response {
	var resp Response
	resp.Status = r.str()
	resp.Session = int(r.varint())
	resp.Err = r.str()
	resp.Plane = r.str()
	resp.Segment = r.str()
	resp.InBytes = r.varint()
	resp.OutBytes = r.varint()
	resp.VirtualMS = r.f64()
	resp.Data = r.bytesVal()
	return resp
}

func decodeResponsePayload(payload []byte) (Response, error) {
	r := frameReader{b: payload}
	resp := r.responseFields()
	if r.err == nil && r.off < len(r.b) {
		n := r.uvarint()
		if n > uint64(len(r.b)) {
			r.fail("batch count %d overruns payload", n)
		} else {
			resp.Batch = make([]Response, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				resp.Batch = append(resp.Batch, r.responseFields())
			}
		}
	}
	if err := r.finish(); err != nil {
		return Response{}, err
	}
	return resp, nil
}
