package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"gpuvirt/internal/workloads"
)

// Binary wire format. Each frame is a fixed header followed by a varint
// payload:
//
//	[0]    magic 0xB1
//	[1]    kind: 'Q' request, 'S' response
//	[2:6]  payload length, uint32 little-endian (<= MaxFrame)
//
// Request payload:  verb, session, rank, ref-present byte, then (if
// present) ref name + param count + sorted key/value pairs, then the
// data-plane name and the optional inline payload.
// Response payload: status, session, err, plane, segment, inBytes,
// outBytes, virtualMS (float64 bits, 8 bytes little-endian), optional
// inline payload.
// Strings are uvarint length + bytes; integers are zigzag varints; byte
// payloads are a presence byte then uvarint length + bytes (nil and
// empty slices round-trip distinctly).
//
// The header magic doubles as a mode detector: a JSON peer's first byte is
// '{', a binary peer's is 0xB1, so either side can report a clean
// mode-mismatch error instead of decoding garbage.
const (
	frameMagic   = 0xB1
	kindRequest  = 'Q'
	kindResponse = 'S'
	headerLen    = 6

	// MaxFrame bounds one frame's payload. Control-plane messages are
	// tiny, but the inline data plane rides SND/RCV payloads inside the
	// frame, so the bound is sized for payloads (64 MiB); sessions moving
	// more per cycle should use the shm data plane.
	MaxFrame = 1 << 26
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendBytes encodes an optional byte payload: presence byte, then
// length + bytes when present.
func appendBytes(b []byte, p []byte) []byte {
	if p == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// EncodeRequestBinary appends a complete binary request frame to dst and
// returns the extended slice, so callers can reuse one buffer across
// frames.
func EncodeRequestBinary(dst []byte, req Request) ([]byte, error) {
	dst = append(dst, frameMagic, kindRequest, 0, 0, 0, 0)
	start := len(dst)
	dst = appendString(dst, req.Verb)
	dst = binary.AppendVarint(dst, int64(req.Session))
	dst = binary.AppendVarint(dst, int64(req.Rank))
	if req.Ref == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendString(dst, req.Ref.Name)
		keys := make([]string, 0, len(req.Ref.Params))
		for k := range req.Ref.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = binary.AppendVarint(dst, int64(req.Ref.Params[k]))
		}
	}
	dst = appendString(dst, req.Plane)
	dst = appendBytes(dst, req.Data)
	return finishFrame(dst, start)
}

// EncodeResponseBinary appends a complete binary response frame to dst.
func EncodeResponseBinary(dst []byte, resp Response) ([]byte, error) {
	dst = append(dst, frameMagic, kindResponse, 0, 0, 0, 0)
	start := len(dst)
	dst = appendString(dst, resp.Status)
	dst = binary.AppendVarint(dst, int64(resp.Session))
	dst = appendString(dst, resp.Err)
	dst = appendString(dst, resp.Plane)
	dst = appendString(dst, resp.Segment)
	dst = binary.AppendVarint(dst, resp.InBytes)
	dst = binary.AppendVarint(dst, resp.OutBytes)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(resp.VirtualMS))
	dst = appendBytes(dst, resp.Data)
	return finishFrame(dst, start)
}

func finishFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(n))
	return dst, nil
}

// DecodeRequestBinary parses one complete binary request frame.
func DecodeRequestBinary(frame []byte) (Request, error) {
	payload, err := framePayload(frame, kindRequest)
	if err != nil {
		return Request{}, err
	}
	return decodeRequestPayload(payload)
}

// DecodeResponseBinary parses one complete binary response frame.
func DecodeResponseBinary(frame []byte) (Response, error) {
	payload, err := framePayload(frame, kindResponse)
	if err != nil {
		return Response{}, err
	}
	return decodeResponsePayload(payload)
}

// framePayload validates a whole-frame buffer's header and returns its
// payload bytes.
func framePayload(frame []byte, kind byte) ([]byte, error) {
	if len(frame) < headerLen {
		return nil, fmt.Errorf("transport: truncated frame header (%d bytes)", len(frame))
	}
	if frame[0] != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic 0x%02x", frame[0])
	}
	if frame[1] != kind {
		return nil, fmt.Errorf("transport: unexpected frame kind %q (want %q)", frame[1], kind)
	}
	n := binary.LittleEndian.Uint32(frame[2:6])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	if uint32(len(frame)-headerLen) != n {
		return nil, fmt.Errorf("transport: frame length mismatch: header says %d, have %d payload bytes", n, len(frame)-headerLen)
	}
	return frame[headerLen:], nil
}

// frameReader is a cursor over one frame's payload; the first decode error
// sticks and subsequent reads return zero values.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: corrupt frame: "+format, args...)
	}
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string of %d bytes overruns payload at offset %d", n, r.off)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *frameReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("payload overrun at offset %d", r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// bytesVal decodes an optional byte payload, copying it out of the
// (reused) frame buffer.
func (r *frameReader) bytesVal() []byte {
	if r.byteVal() == 0 {
		return nil
	}
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("byte payload of %d overruns frame at offset %d", n, r.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

func (r *frameReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b)-r.off < 8 {
		r.fail("float64 overruns payload at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *frameReader) finish() error {
	if r.err == nil && r.off != len(r.b) {
		r.fail("%d trailing bytes", len(r.b)-r.off)
	}
	return r.err
}

func decodeRequestPayload(payload []byte) (Request, error) {
	r := frameReader{b: payload}
	var req Request
	req.Verb = r.str()
	req.Session = int(r.varint())
	req.Rank = int(r.varint())
	if r.byteVal() != 0 {
		ref := &workloads.Ref{Name: r.str()}
		if n := r.uvarint(); n > 0 {
			if n > uint64(len(payload)) { // each pair takes >= 2 bytes
				r.fail("param count %d overruns payload", n)
			} else {
				ref.Params = make(map[string]int, n)
				for i := uint64(0); i < n && r.err == nil; i++ {
					k := r.str()
					ref.Params[k] = int(r.varint())
				}
			}
		}
		req.Ref = ref
	}
	req.Plane = r.str()
	req.Data = r.bytesVal()
	if err := r.finish(); err != nil {
		return Request{}, err
	}
	return req, nil
}

func decodeResponsePayload(payload []byte) (Response, error) {
	r := frameReader{b: payload}
	var resp Response
	resp.Status = r.str()
	resp.Session = int(r.varint())
	resp.Err = r.str()
	resp.Plane = r.str()
	resp.Segment = r.str()
	resp.InBytes = r.varint()
	resp.OutBytes = r.varint()
	resp.VirtualMS = r.f64()
	resp.Data = r.bytesVal()
	if err := r.finish(); err != nil {
		return Response{}, err
	}
	return resp, nil
}
