package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"gpuvirt/internal/workloads"
)

// Request is a wire-encoded protocol request.
type Request struct {
	Verb    string         `json:"verb"` // REQ SND STR STP RCV RLS
	Session int            `json:"session,omitempty"`
	Ref     *workloads.Ref `json:"workload,omitempty"` // REQ only
	Rank    int            `json:"rank,omitempty"`     // REQ only
	// Plane names the data plane the client wants for the session (REQ
	// only): PlaneShm, PlaneInline, or "" to accept the transport's
	// default.
	Plane string `json:"plane,omitempty"`
	// Data carries the SND payload on the inline data plane (nil on the
	// shm plane, where the payload travels through the segment).
	Data []byte `json:"data,omitempty"`
	// Batch carries the sub-requests of a BAT container frame, executed
	// in order in one daemon round trip (verb pipelining). Sub-requests
	// must not nest batches. Empty for ordinary single-verb frames, whose
	// wire form is unchanged from the pre-batch protocol.
	Batch []Request `json:"batch,omitempty"`
	// MemQuota (REQ only) is an optional hard per-session device-memory
	// limit in bytes, enforced by the manager at every allocation. 0 (the
	// wire default) means unlimited; frames without the field are
	// byte-identical to the pre-quota format.
	MemQuota int64 `json:"mem_quota,omitempty"`
	// Priority (REQ only) orders eviction under memory pressure: lower
	// priority sessions are evicted first. 0 is the default class.
	Priority int `json:"priority,omitempty"`
	// Weight (REQ only) is the session's weighted-fair share of SM
	// compute time (and its preemption precedence). 0 (the wire default)
	// derives the weight from Priority; frames without the field are
	// byte-identical to the pre-QoS format.
	Weight int `json:"weight,omitempty"`
}

// Response is a wire-encoded protocol response.
type Response struct {
	Status  string `json:"status"` // ACK WAIT ERR
	Session int    `json:"session,omitempty"`
	Err     string `json:"err,omitempty"`
	// REQ extras: the chosen data plane, and — on the shm plane — where
	// the segment lives and how big the staging areas are.
	Plane    string `json:"plane,omitempty"`
	Segment  string `json:"segment,omitempty"`
	InBytes  int64  `json:"in_bytes,omitempty"`
	OutBytes int64  `json:"out_bytes,omitempty"`
	// Data carries the RCV payload on the inline data plane.
	Data []byte `json:"data,omitempty"`
	// VirtualMS is the simulated GPU clock at response time, so clients
	// can report device-side timings.
	VirtualMS float64 `json:"virtual_ms"`
	// Batch carries the per-sub-request responses of a BAT frame, in the
	// order the sub-requests were given; processing stops at the first
	// failing sub-request.
	Batch []Response `json:"batch,omitempty"`
}

// Codec preamble: the first byte a client sends after connecting names
// its control-plane codec, so a daemon speaking the other codec rejects
// the connection with a clear "codec mismatch" error instead of a
// confusing frame-decode failure.
const (
	PreambleBinary byte = 'B'
	PreambleJSON   byte = 'J'
)

// WritePreamble sends the client's codec preamble byte.
func WritePreamble(w io.Writer, jsonWire bool) error {
	b := PreambleBinary
	if jsonWire {
		b = PreambleJSON
	}
	_, err := w.Write([]byte{b})
	return err
}

// ReadPreamble consumes a client's codec preamble byte and reports which
// codec it declared.
func ReadPreamble(r io.Reader) (jsonWire bool, err error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return false, err
	}
	switch b[0] {
	case PreambleBinary:
		return false, nil
	case PreambleJSON:
		return true, nil
	default:
		return false, fmt.Errorf("transport: bad codec preamble 0x%02x (want 'B' or 'J')", b[0])
	}
}

// Conn frames requests and responses over a stream connection. The
// default codec is the length-prefixed binary format (frame.go), reusing
// one encode and one decode buffer across frames; NewConnJSON selects the
// human-readable JSON mode for debugging. Both read paths sniff the
// peer's first byte and report a clean mode-mismatch error rather than
// decoding the other codec's bytes as garbage.
type Conn struct {
	c    net.Conn
	r    *bufio.Reader
	json bool
	enc  *json.Encoder // JSON mode only
	we   frameEncoder  // binary mode: reused scatter-gather encoder
	rbuf []byte        // binary mode: reused pooled payload buffer
	hdr  [headerLen]byte
}

// rbufHighWater caps the read buffer a connection retains between frames.
// One giant inline frame would otherwise pin up to MaxFrame bytes for the
// connection's lifetime; above the mark the buffer goes back to the pool
// after use and the next small frame draws a small one.
const rbufHighWater = 1 << 20

// NewConn wraps a connection with the binary frame codec.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c)}
}

// NewConnJSON wraps a connection with the newline-delimited JSON codec,
// the debugging fallback (readable with socat/nc). Both peers must agree
// on the mode.
func NewConnJSON(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), json: true, enc: json.NewEncoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// Release returns the connection's pooled read buffer. Call it at most
// once, when no read can be in flight — the reading goroutine after its
// loop exits, or a peer that has already closed and joined the reader.
// Releasing while a concurrent ReadRequest still aliases rbuf would hand
// live bytes back to the pool.
func (c *Conn) Release() {
	putBuf(c.rbuf)
	c.rbuf = nil
}

// SetDeadline bounds both reads and writes on the underlying connection;
// the zero time clears it. Clients use it to put an I/O timeout around
// each round trip so a hung daemon cannot block them forever.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// JSON reports whether the connection speaks the JSON debugging codec.
func (c *Conn) JSON() bool { return c.json }

// WriteRequest sends one request frame. Payloads above the inline
// threshold are not copied: they ride a writev (net.Buffers) straight
// from req.Data, so the caller must not mutate it until the call returns.
func (c *Conn) WriteRequest(req Request) error {
	if c.json {
		return c.enc.Encode(req)
	}
	if err := c.we.encodeRequest(req); err != nil {
		// A failed encode (e.g. nested batch) aborts mid-frame: drop the
		// payload aliases accumulated so far so the encoder is clean for
		// the next frame and pins nothing.
		c.we.clearAliases()
		return err
	}
	return c.writeFrame()
}

// WriteResponse sends one response frame; the same no-copy rule as
// WriteRequest applies to resp.Data.
func (c *Conn) WriteResponse(resp Response) error {
	if c.json {
		return c.enc.Encode(resp)
	}
	if err := c.we.encodeResponse(resp); err != nil {
		c.we.clearAliases()
		return err
	}
	return c.writeFrame()
}

// writeFrame flushes the encoder's segment list. A single-segment frame
// (everything inline) takes the plain Write path; multi-segment frames use
// writev so large payloads are never copied into the encode buffer.
func (c *Conn) writeFrame() error {
	bufs := c.we.buffers()
	var err error
	if len(bufs) == 1 {
		_, err = c.c.Write(bufs[0])
	} else {
		// WriteTo consumes the slice (advances/nils entries); the encoder
		// rebuilds it from its segment list on the next frame. Called on the
		// encoder's own iov field (not a local) so the net.Buffers header does
		// not escape to the heap on every frame.
		_, err = c.we.iov.WriteTo(c.c)
	}
	// Whether the write completed or died short, the frame is over: drop
	// payload aliases so the reused encoder does not pin (or later alias)
	// the caller's pooled buffers.
	c.we.clearAliases()
	return err
}

// ReadRequest receives one request frame.
func (c *Conn) ReadRequest() (Request, error) {
	if c.json {
		var req Request
		line, err := c.readJSONLine()
		if err != nil {
			return req, err
		}
		if err := json.Unmarshal(line, &req); err != nil {
			return req, fmt.Errorf("transport: bad request frame: %w", err)
		}
		return req, nil
	}
	payload, err := c.readFrame(kindRequest)
	if err != nil {
		return Request{}, err
	}
	return decodeRequestPayload(payload)
}

// ReadResponse receives one response frame.
func (c *Conn) ReadResponse() (Response, error) {
	if c.json {
		var resp Response
		line, err := c.readJSONLine()
		if err != nil {
			return resp, err
		}
		if err := json.Unmarshal(line, &resp); err != nil {
			return resp, fmt.Errorf("transport: bad response frame: %w", err)
		}
		return resp, nil
	}
	payload, err := c.readFrame(kindResponse)
	if err != nil {
		return Response{}, err
	}
	return decodeResponsePayload(payload)
}

// readJSONLine reads one newline-delimited JSON frame, detecting a binary
// peer by its magic byte.
func (c *Conn) readJSONLine() ([]byte, error) {
	if b, err := c.r.Peek(1); err == nil && b[0] == frameMagic {
		return nil, fmt.Errorf("transport: mode mismatch: peer sent a binary frame on a JSON connection")
	}
	return c.r.ReadBytes('\n')
}

// readFrame reads one binary frame of the given kind and returns its
// payload in the connection's reused buffer (valid until the next read).
func (c *Conn) readFrame(kind byte) ([]byte, error) {
	b, err := c.r.Peek(1)
	if err != nil {
		return nil, err // clean EOF between frames passes through
	}
	if b[0] == '{' {
		return nil, fmt.Errorf("transport: mode mismatch: peer is speaking JSON on a binary connection")
	}
	if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: truncated frame header: %w", err)
	}
	if c.hdr[0] != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic 0x%02x", c.hdr[0])
	}
	if c.hdr[1] != kind {
		return nil, fmt.Errorf("transport: unexpected frame kind %q (want %q)", c.hdr[1], kind)
	}
	n := binary.LittleEndian.Uint32(c.hdr[2:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	// Swap the retained buffer when it is too small, or when it is above
	// the high-water mark and this frame no longer needs that much. Any
	// payload aliases handed out by the previous read are dead by contract
	// ("valid until the next read"), so returning the old buffer to the
	// pool here is safe.
	if cap(c.rbuf) < int(n) || (cap(c.rbuf) > rbufHighWater && int(n) <= rbufHighWater) {
		putBuf(c.rbuf)
		c.rbuf = getBuf(int(n))
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	return buf, nil
}
