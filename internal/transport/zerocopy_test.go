package transport

import (
	"bytes"
	"net"
	"testing"

	"gpuvirt/internal/workloads"
)

// connPair returns two binary-codec Conns joined by an in-memory pipe.
func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestBatchRequestRoundTrip(t *testing.T) {
	req := Request{
		Verb: "BAT",
		Batch: []Request{
			{Verb: "SND", Session: 7, Data: []byte("payload-bytes")},
			{Verb: "STR", Session: 7},
			{Verb: "STP", Session: 7},
			{Verb: "RCV", Session: 7},
		},
	}
	frame, err := EncodeRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequestBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Verb != "BAT" || len(got.Batch) != 4 {
		t.Fatalf("decoded %q with %d subs", got.Verb, len(got.Batch))
	}
	for i, want := range req.Batch {
		sub := got.Batch[i]
		if sub.Verb != want.Verb || sub.Session != want.Session || !bytes.Equal(sub.Data, want.Data) {
			t.Fatalf("sub %d: got %+v want %+v", i, sub, want)
		}
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resp := Response{
		Status: "ACK",
		Batch: []Response{
			{Status: "ACK", Session: 7, VirtualMS: 1.5},
			{Status: "ERR", Session: 7, Err: "boom"},
			{Status: "ACK", Session: 7, Data: []byte{1, 2, 3}},
		},
	}
	frame, err := EncodeResponseBinary(nil, resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponseBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != "ACK" || len(got.Batch) != 3 {
		t.Fatalf("decoded %q with %d subs", got.Status, len(got.Batch))
	}
	if got.Batch[1].Err != "boom" || got.Batch[2].Data[2] != 3 {
		t.Fatalf("sub responses corrupted: %+v", got.Batch)
	}
}

// TestNonBatchFrameBytesUnchanged pins the wire compatibility guarantee:
// a single-verb frame must be byte-identical to the pre-batch format (no
// batch section appended), so legacy peers can decode it.
func TestNonBatchFrameBytesUnchanged(t *testing.T) {
	req := Request{Verb: "SND", Session: 3, Data: []byte("abc")}
	frame, err := EncodeRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built pre-batch layout: header, verb, session, rank, no-ref,
	// empty plane, data presence + len + bytes — and nothing after.
	want := []byte{
		frameMagic, kindRequest, 13, 0, 0, 0,
		3, 'S', 'N', 'D', // verb
		6,    // session 3 zigzag
		0,    // rank 0
		0,    // no ref
		0,    // plane ""
		1, 3, // data present, 3 bytes
		'a', 'b', 'c',
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("single-verb frame changed:\n got %v\nwant %v", frame, want)
	}
}

func TestNestedBatchRejected(t *testing.T) {
	req := Request{Verb: "BAT", Batch: []Request{
		{Verb: "BAT", Batch: []Request{{Verb: "SND"}}},
	}}
	if _, err := EncodeRequestBinary(nil, req); err == nil {
		t.Fatal("nested batch encoded")
	}
}

// TestHotPathZeroAlloc asserts the acceptance criterion for pooled
// zero-copy framing: a warm SND/RCV round trip (write request with
// payload, echo peer reads it and responds with a payload, read the
// response) allocates nothing on either side.
func TestHotPathZeroAlloc(t *testing.T) {
	client, server := connPair(t)
	const n = 64 << 10
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	echoErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(echoErr)
		for {
			req, err := server.ReadRequest()
			if err != nil {
				select {
				case <-done:
				default:
					echoErr <- err
				}
				return
			}
			// Respond with the request's payload (aliases the read
			// buffer, exactly as the daemon's zero-copy RCV path does).
			if err := server.WriteResponse(Response{Status: "ACK", Session: req.Session, Data: req.Data}); err != nil {
				echoErr <- err
				return
			}
		}
	}()
	roundTrip := func() {
		if err := client.WriteRequest(Request{Verb: "SND", Session: 1, Data: payload}); err != nil {
			t.Fatal(err)
		}
		resp, err := client.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != "ACK" || len(resp.Data) != n {
			t.Fatalf("echo came back %q with %d bytes", resp.Status, len(resp.Data))
		}
	}
	for i := 0; i < 4; i++ {
		roundTrip() // warm the pools and retained buffers
	}
	if allocs := testing.AllocsPerRun(50, roundTrip); allocs > 0 {
		t.Fatalf("warm SND/RCV round trip allocates %.1f objects/op, want 0", allocs)
	}
	close(done)
	client.Close()
	if err := <-echoErr; err != nil {
		t.Fatal(err)
	}
}

// TestReadBufferShrinks covers the rbuf high-water satellite: one giant
// frame must not pin a giant read buffer for the connection's lifetime.
func TestReadBufferShrinks(t *testing.T) {
	client, server := connPair(t)
	go func() {
		big := Request{Verb: "SND", Session: 1, Data: make([]byte, 4<<20)}
		_ = client.WriteRequest(big)
		_ = client.WriteRequest(Request{Verb: "STR", Session: 1})
	}()
	if _, err := server.ReadRequest(); err != nil {
		t.Fatal(err)
	}
	if cap(server.rbuf) < 4<<20 {
		t.Fatalf("rbuf cap %d after a 4 MiB frame", cap(server.rbuf))
	}
	if _, err := server.ReadRequest(); err != nil {
		t.Fatal(err)
	}
	if cap(server.rbuf) > rbufHighWater {
		t.Fatalf("rbuf cap %d retained above the %d high-water mark", cap(server.rbuf), rbufHighWater)
	}
}

func TestBufPoolClasses(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 512}, {1, 512}, {512, 512}, {513, 1024},
		{1 << 20, 1 << 20}, {(1 << 20) + 1, 2 << 20}, {MaxFrame, MaxFrame},
	}
	for _, c := range cases {
		b := getBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Errorf("getBuf(%d) = len %d cap %d, want len %d cap %d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		putBuf(b)
	}
	// Oversized buffers fall back to plain allocation and are not pooled.
	huge := getBuf(MaxFrame + 1)
	if len(huge) != MaxFrame+1 {
		t.Fatalf("oversized getBuf len %d", len(huge))
	}
	putBuf(huge) // must not panic or pool it
}

// TestInterning pins that protocol constants decode to canonical strings
// without allocating, and arbitrary strings still round-trip.
func TestInterning(t *testing.T) {
	req := Request{Verb: "RCV", Session: 2, Plane: PlaneInline,
		Ref: &workloads.Ref{Name: "very-custom-workload"}}
	frame, err := EncodeRequestBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequestBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Verb != "RCV" || got.Plane != PlaneInline || got.Ref.Name != "very-custom-workload" {
		t.Fatalf("decoded %+v", got)
	}
}

// BenchmarkIPCPipeRoundTrip measures the warm wire hot path (64 KiB SND
// echo over an in-memory pipe) with allocation reporting; the PR3
// acceptance number is 0 allocs/op.
func BenchmarkIPCPipeRoundTrip(b *testing.B) {
	a, peer := net.Pipe()
	client, server := NewConn(a), NewConn(peer)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			req, err := server.ReadRequest()
			if err != nil {
				return
			}
			if err := server.WriteResponse(Response{Status: "ACK", Data: req.Data}); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteRequest(Request{Verb: "SND", Session: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := client.ReadResponse(); err != nil {
			b.Fatal(err)
		}
	}
}
