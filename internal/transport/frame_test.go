package transport

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestBinaryRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Verb: "REQ", Ref: refp("mm", map[string]int{"n": 2048, "nit": 3}), Rank: 7},
		{Verb: "REQ", Ref: refp("blackscholes", nil), Plane: PlaneInline},
		{Verb: "SND", Session: 42},
		{Verb: "SND", Session: 7, Data: []byte{1, 2, 3, 0xff}},
		{Verb: "SND", Session: 8, Data: []byte{}}, // empty != nil on the wire
		{Verb: "STP", Session: -1},
		{},
	}
	a, b := fuzzPipeConn(t, NewConn)
	for _, want := range reqs {
		want := want
		// Join the writer before the next iteration reuses the conn: a
		// Conn is single-writer, and WriteRequest still touches encoder
		// state after the pipe's read unblocks.
		wrote := make(chan struct{})
		go func() {
			defer close(wrote)
			if err := a.WriteRequest(want); err != nil {
				t.Errorf("write %+v: %v", want, err)
			}
		}()
		got, err := b.ReadRequest()
		if err != nil {
			t.Fatalf("read %+v: %v", want, err)
		}
		<-wrote
		if !requestsEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestBinaryRequestExtensionRoundTrip(t *testing.T) {
	reqs := []Request{
		{Verb: "REQ", Ref: refp("mm", map[string]int{"n": 64}), MemQuota: 1 << 30},
		{Verb: "REQ", Ref: refp("mm", nil), Priority: 7},
		{Verb: "REQ", Ref: refp("mm", nil), Priority: -2},
		{Verb: "REQ", Ref: refp("mm", nil), MemQuota: 4096, Priority: 3},
		{Verb: "REQ", Ref: refp("mm", nil), Weight: 8},
		{Verb: "REQ", Ref: refp("mm", nil), MemQuota: 4096, Priority: 3, Weight: 4},
		{Verb: "BAT", MemQuota: 96 << 10, Batch: []Request{
			{Verb: "SND", Session: 4, Data: []byte{9}},
			{Verb: "STR", Session: 4},
		}},
	}
	for _, want := range reqs {
		frame, err := EncodeRequestBinary(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequestBinary(frame)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		// requestsEqual covers MemQuota/Priority, but assert them directly
		// too: they are the fields under test.
		if got.MemQuota != want.MemQuota || got.Priority != want.Priority {
			t.Fatalf("extensions lost: got quota=%d prio=%d, want quota=%d prio=%d",
				got.MemQuota, got.Priority, want.MemQuota, want.Priority)
		}
		if !requestsEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		if len(got.Batch) != len(want.Batch) {
			t.Fatalf("batch length: got %d, want %d", len(got.Batch), len(want.Batch))
		}
		for i := range want.Batch {
			if !requestsEqual(got.Batch[i], want.Batch[i]) {
				t.Fatalf("batch[%d]: got %+v, want %+v", i, got.Batch[i], want.Batch[i])
			}
		}
	}
}

func TestBinaryRequestExtensionUnknownFlagRejected(t *testing.T) {
	// Priority 1 encodes as a trailing [flags=0x02, zigzag(1)=0x02] pair;
	// flipping the flags byte to an unassigned bit must fail the frame —
	// the decoder cannot know how long an unknown extension is.
	frame, err := EncodeRequestBinary(nil, Request{Verb: "REQ", Ref: refp("mm", nil), Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if frame[len(frame)-2] != 0x02 {
		t.Fatalf("flags byte = %#x, want 0x02 (layout changed?)", frame[len(frame)-2])
	}
	frame[len(frame)-2] = 0x08
	if _, err := DecodeRequestBinary(frame); err == nil ||
		!strings.Contains(err.Error(), "unknown request extension") {
		t.Fatalf("unknown flag: got %v, want extension-flags rejection", err)
	}
}

func TestBinaryExtensionOnBatchSubRequestRejected(t *testing.T) {
	// MemQuota/Priority are REQ-only and REQ is disallowed inside BAT; the
	// encoder refuses rather than silently dropping the fields.
	_, err := EncodeRequestBinary(nil, Request{Verb: "BAT", Batch: []Request{
		{Verb: "SND", Session: 1, MemQuota: 4096},
	}})
	if err == nil || !strings.Contains(err.Error(), "batch sub-request") {
		t.Fatalf("quota on sub-request: got %v, want encode rejection", err)
	}
}

func TestBinaryOversizedFrameRejected(t *testing.T) {
	// Write side: an encoder-produced payload over MaxFrame must error out
	// before anything hits the wire.
	huge := Request{Verb: strings.Repeat("x", MaxFrame+1)}
	if _, err := EncodeRequestBinary(nil, huge); err == nil {
		t.Fatal("want encode error for payload exceeding MaxFrame")
	}
	// Read side: a crafted header claiming an oversized payload must be
	// rejected from the length alone, without attempting the read.
	a, b := fuzzPipeConn(t, NewConn)
	hdr := []byte{frameMagic, kindRequest, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[2:], MaxFrame+1)
	go b.c.Write(hdr)
	_, err := a.ReadRequest()
	if err == nil || !strings.Contains(err.Error(), "exceeds MaxFrame") {
		t.Fatalf("oversized frame: got %v, want MaxFrame rejection", err)
	}
}

func TestBinaryTruncatedFrame(t *testing.T) {
	frame, err := EncodeRequestBinary(nil, Request{Verb: "REQ", Ref: refp("mm", map[string]int{"n": 64})})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, headerLen - 1, headerLen, len(frame) - 1} {
		a, b := fuzzPipeConn(t, NewConn)
		go func() {
			b.c.Write(frame[:cut])
			b.c.Close() // EOF mid-frame
		}()
		_, err := a.ReadRequest()
		if err == nil || !strings.Contains(err.Error(), "truncated frame") {
			t.Fatalf("cut at %d: got %v, want truncated-frame error", cut, err)
		}
	}
}

func TestBinaryWrongKindRejected(t *testing.T) {
	frame, err := EncodeResponseBinary(nil, Response{Status: "ACK"})
	if err != nil {
		t.Fatal(err)
	}
	a, b := fuzzPipeConn(t, NewConn)
	go b.c.Write(frame)
	if _, err := a.ReadRequest(); err == nil || !strings.Contains(err.Error(), "frame kind") {
		t.Fatalf("response frame read as request: got %v, want kind error", err)
	}
}

func TestModeMismatchDetected(t *testing.T) {
	// A JSON peer talking to a binary reader: re-wrap the pipe's far end
	// with the other codec.
	a, b := fuzzPipeConn(t, NewConn)
	go NewConnJSON(b.c).WriteRequest(Request{Verb: "REQ"})
	if _, err := a.ReadRequest(); err == nil || !strings.Contains(err.Error(), "mode mismatch") {
		t.Fatalf("binary reader vs JSON writer: got %v, want mode-mismatch error", err)
	}
	// A binary peer talking to a JSON reader.
	c, d := fuzzPipeConn(t, NewConnJSON)
	go NewConn(d.c).WriteResponse(Response{Status: "ACK"})
	if _, err := c.ReadResponse(); err == nil || !strings.Contains(err.Error(), "mode mismatch") {
		t.Fatalf("JSON reader vs binary writer: got %v, want mode-mismatch error", err)
	}
}
