package transport

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/shm"
)

// RingHostConfig configures the daemon side of the ring control plane.
type RingHostConfig struct {
	// ShmDir is where the doorbell segment lives ("" = /dev/shm); it must
	// match the dispatcher's segment directory.
	ShmDir string
	// Prefix names the doorbell segment file (default "gvmd-seg", so the
	// daemon's startup RemoveStale sweep reclaims orphans of crashed
	// daemons along with ordinary session segments).
	Prefix string
	// Shards is how many per-GPU owner loops the daemon runs; each gets
	// its own doorbell word on its own cache line.
	Shards int
	// Ring sizes every session's rings (zero value: DefaultRingConfig).
	Ring shm.RingConfig
	// Metrics receives the ring instruments (nil creates a private
	// registry).
	Metrics *metrics.Registry
}

// RingHost is the daemon half of the zero-syscall control plane: one
// process-wide doorbell segment with a word per shard, plus a RingShard
// per owner loop that sweeps the shard's session rings. Clients ring a
// shard's doorbell after every submission; an owner that went idle and
// armed the sleep bit gets a futex wake, a busy owner sees nothing but
// the counter — the steady state is syscall-free on both sides.
type RingHost struct {
	dir      string
	ring     shm.RingConfig
	doorSeg  shm.Segment
	doorName string
	shards   []*RingShard
}

// NewRingHost creates the doorbell segment and one RingShard per shard.
func NewRingHost(cfg RingHostConfig) (*RingHost, error) {
	if cfg.Prefix == "" {
		cfg.Prefix = "gvmd-seg"
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Ring.Slots == 0 && cfg.Ring.SlotSize == 0 {
		cfg.Ring = shm.DefaultRingConfig()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	name := fmt.Sprintf("%s-door-%d", cfg.Prefix, os.Getpid())
	seg, err := shm.NewFile(cfg.ShmDir, name, shm.DoorSegmentSize(cfg.Shards))
	if err != nil {
		return nil, fmt.Errorf("transport: ring doorbell segment: %w", err)
	}
	h := &RingHost{dir: cfg.ShmDir, ring: cfg.Ring, doorSeg: seg, doorName: name}
	h.shards = make([]*RingShard, cfg.Shards)
	for i := range h.shards {
		door, derr := shm.DoorWordAt(seg, uint32(i*shm.DoorStride))
		if derr != nil {
			seg.Close()
			return nil, derr
		}
		gpu := metrics.L("gpu", strconv.Itoa(i))
		rs := &RingShard{
			host:    h,
			index:   i,
			door:    door,
			armCh:   make(chan uint32, 1),
			wakeCh:  make(chan struct{}, 1),
			records: cfg.Metrics.Counter("gvmd_ring_records_total", "submission-ring records consumed", gpu),
			sweeps:  cfg.Metrics.Counter("gvmd_ring_sweeps_total", "ring sweeps that made progress", gpu),
			open:    cfg.Metrics.Gauge("gvmd_ring_sessions", "live ring-plane sessions", gpu),
		}
		// The doorbell word's upper 31 bits ARE the ring count, so the
		// counter comes for free (it wraps at 2^31 rings, like any u32-
		// backed counter would).
		d := door
		cfg.Metrics.CounterFunc("gvmd_ring_doorbells_total", "shard submission doorbell rings", func() int64 {
			return int64(d.Load() >> 1)
		}, gpu)
		h.shards[i] = rs
	}
	return h, nil
}

// DoorName returns the doorbell segment's file name, advertised to every
// ring session so clients can map the shard doorbell.
func (h *RingHost) DoorName() string { return h.doorName }

// Config returns the per-session ring geometry.
func (h *RingHost) Config() shm.RingConfig { return h.ring }

// NumShards returns how many shard doorbells the host holds.
func (h *RingHost) NumShards() int { return len(h.shards) }

// Shard returns shard i's ring sweep state.
func (h *RingHost) Shard(i int) *RingShard { return h.shards[i] }

// Close releases every remaining session segment and the doorbell
// segment. Call only after the owner loops have stopped.
func (h *RingHost) Close() error {
	for _, rs := range h.shards {
		rs.events.Drain(func(ev ringEvent) {
			if ev.close {
				ev.sess.closeOwner()
			} else {
				rs.sessions = append(rs.sessions, ev.sess)
			}
		})
		for _, s := range rs.sessions {
			s.closeOwner()
		}
		rs.sessions = nil
	}
	return h.doorSeg.Close()
}

// RingAll rings every shard doorbell — the shutdown kick that pops
// parked owner loops and wakers out of their futex waits promptly.
func (h *RingHost) RingAll() {
	for _, rs := range h.shards {
		shm.DoorRing(rs.door)
	}
}

// ringEvent is one registration-side-channel entry: a session ring to
// start sweeping, or (close) one to stop sweeping and unmap.
type ringEvent struct {
	sess  *ringSession
	close bool
}

// RingShard is one owner loop's ring state: its doorbell word, the MPSC
// drain connection goroutines register sessions through, and the
// owner-private session list the sweep walks. All methods except
// Register/Unregister are owner-goroutine-only.
type RingShard struct {
	host  *RingHost
	index int
	door  *atomic.Uint32

	events node.Drain[ringEvent]

	sessions []*ringSession // owner-goroutine private

	armCh  chan uint32   // owner -> waker: doorbell word to sleep on
	wakeCh chan struct{} // waker -> owner: the doorbell rang while parked

	// fwd holds the doorbells of shards that adopted sessions migrated
	// off this shard. A migrated ring client keeps ringing THIS shard's
	// door (the door offset was baked into its ring header at attach and
	// cached at map time), so every sweep forwards the ring to the
	// adopting shards' doors. Guarded by fwdMu (written by the failover
	// engine's goroutine, read by the owner's sweep).
	fwdMu sync.Mutex
	fwd   []*atomic.Uint32

	records *metrics.Counter
	sweeps  *metrics.Counter
	open    *metrics.Gauge
}

// Forward registers a doorbell to ring on every sweep of this shard —
// the failover engine's bridge for migrated ring clients, whose mapped
// ring header still names this shard's door. Any goroutine may call it;
// it rings the target once immediately in case the client already rang.
func (rs *RingShard) Forward(door *atomic.Uint32) {
	rs.fwdMu.Lock()
	for _, d := range rs.fwd {
		if d == door {
			rs.fwdMu.Unlock()
			return
		}
	}
	rs.fwd = append(rs.fwd, door)
	rs.fwdMu.Unlock()
	shm.DoorRing(door)
}

// forward rings every adopted-session doorbell (no-op until a migration
// installs one).
func (rs *RingShard) forward() {
	rs.fwdMu.Lock()
	for _, d := range rs.fwd {
		shm.DoorRing(d)
	}
	rs.fwdMu.Unlock()
}

// Door returns the shard's submission doorbell word.
func (rs *RingShard) Door() *atomic.Uint32 { return rs.door }

// ArmCh is the owner->waker handoff of the armed doorbell value.
func (rs *RingShard) ArmCh() chan uint32 { return rs.armCh }

// WakeCh is the waker->owner doorbell-rang signal.
func (rs *RingShard) WakeCh() chan struct{} { return rs.wakeCh }

// Register hands a new session ring to the shard owner and rings the
// doorbell so a parked owner picks it up. Any goroutine may call it.
func (rs *RingShard) Register(sess *ringSession) {
	rs.events.Push(ringEvent{sess: sess})
	shm.DoorRing(rs.door)
}

// Unregister tells the shard owner to stop sweeping sess and unmap its
// segment. Any goroutine may call it; the segment stays mapped until the
// owner applies the event, so a sweep never races the unmap.
func (rs *RingShard) Unregister(sess *ringSession) {
	rs.events.Push(ringEvent{sess: sess, close: true})
	shm.DoorRing(rs.door)
}

// Sweep applies queued register/unregister events, retries completions
// waiting for ring space, and gives every session's submission ring a
// consume pass. It reports whether it made progress; the owner loop
// keeps sweeping (interleaved with calendar drains) until a sweep comes
// back dry, then spins, then parks on the doorbell.
func (rs *RingShard) Sweep() bool {
	progress := false
	rs.forward()
	if !rs.events.Empty() {
		rs.events.Drain(func(ev ringEvent) {
			progress = true
			if ev.close {
				rs.remove(ev.sess)
				ev.sess.closeOwner()
			} else {
				rs.sessions = append(rs.sessions, ev.sess)
				rs.open.Inc()
			}
		})
	}
	live := rs.sessions[:0]
	for _, s := range rs.sessions {
		if s.step() {
			progress = true
		}
		if s.done {
			rs.open.Dec()
			s.closeOwner()
			continue
		}
		live = append(live, s)
	}
	for i := len(live); i < len(rs.sessions); i++ {
		rs.sessions[i] = nil
	}
	rs.sessions = live
	if progress {
		rs.sweeps.Inc()
	}
	return progress
}

func (rs *RingShard) remove(sess *ringSession) {
	for i, s := range rs.sessions {
		if s == sess {
			rs.sessions = append(rs.sessions[:i], rs.sessions[i+1:]...)
			rs.open.Dec()
			return
		}
	}
}

// ringSession is the daemon-side state machine of one ring-plane
// session: it consumes request frames from the submission ring, drives
// them through gvm's direct verb path, and produces response frames on
// the completion ring. All fields are owner-goroutine-only; completions
// arrive via gvm.DirectNotify on the same goroutine (inline in
// DirectVerb or from a calendar event during the owner's drain).
type ringSession struct {
	id    int
	shard *RingShard
	mgr   *gvm.Manager
	seg   shm.Segment
	sr    *shm.SessionRing

	// onRelease runs once gvm has released the session through the ring
	// RLS path (dispatcher bookkeeping: session table + node placement).
	onRelease func()

	enc frameEncoder
	rec []byte  // retained response-frame scratch
	req Request // retained decode target; Batch backing reused

	// In-flight frame state. idx is the step currently executing (an
	// index into req.Batch for BAT frames, ignored for single verbs).
	active    bool
	batch     bool
	idx       int
	waiting   bool // a DirectVerb completion is pending in the calendar
	issuing   bool // inside advance(): inline notifies must not recurse
	failed    bool
	one       Response   // single-verb response
	batchResp []Response // retained per-step response backing
	pending   bool       // encoded response waiting for completion-ring space
	released  bool       // gvm session released (ring RLS acked)
	done      bool       // ready for the sweep to unmap
	closed    bool
}

// step is one sweep pass over the session: deliver a stalled completion
// first, then (when idle) consume the next submission.
func (s *ringSession) step() bool {
	progress := false
	if s.pending {
		if !s.sr.Cpl.Push(s.rec) {
			return false // still blocked on completion-ring space
		}
		s.pending = false
		s.completed()
		progress = true
	}
	for !s.active && !s.pending && !s.done {
		rec, ok := s.sr.Sub.Peek()
		if !ok {
			break
		}
		progress = true
		s.begin(rec)
	}
	return progress
}

// begin decodes and validates one submission record, recycles its slot,
// and starts executing it. The slot can be recycled immediately after
// decode: decode-into leaves no alias into the frame (verbs and planes
// intern, other strings copy) and ring requests must not carry Data.
func (s *ringSession) begin(rec []byte) {
	err := DecodeRequestBinaryInto(&s.req, rec)
	s.sr.Sub.Release()
	s.shard.records.Inc()
	if err != nil {
		s.fail(fmt.Sprintf("transport: ring record: %v", err))
		return
	}
	s.req.Data = nil
	for i := range s.req.Batch {
		s.req.Batch[i].Data = nil
	}
	s.active = true
	s.idx = 0
	s.failed = false
	s.one = Response{}
	switch {
	case s.req.Verb == "BAT":
		if len(s.req.Batch) == 0 {
			s.fail("transport: empty BAT")
			return
		}
		lastRank := -1
		for i := range s.req.Batch {
			sub := &s.req.Batch[i]
			rank, allowed := batchVerbRank[sub.Verb]
			if !allowed {
				s.fail(fmt.Sprintf("transport: verb %q not allowed in BAT", sub.Verb))
				return
			}
			if sub.Session != s.id {
				s.fail(fmt.Sprintf("transport: ring BAT addresses session %d on session %d's ring", sub.Session, s.id))
				return
			}
			if rank <= lastRank {
				s.fail(fmt.Sprintf("transport: BAT verbs for session %d must appear once each, in SND<STR<STP<RCV<RLS order", s.id))
				return
			}
			lastRank = rank
		}
		s.batch = true
		if cap(s.batchResp) < len(s.req.Batch) {
			s.batchResp = make([]Response, len(s.req.Batch))
		}
		s.batchResp = s.batchResp[:len(s.req.Batch)]
	default:
		if _, ok := ringVerbOf(s.req.Verb); !ok {
			s.fail(fmt.Sprintf("transport: verb %q not allowed on a session ring", s.req.Verb))
			return
		}
		if s.req.Session != s.id {
			s.fail(fmt.Sprintf("transport: ring record addresses session %d on session %d's ring", s.req.Session, s.id))
			return
		}
		s.batch = false
	}
	s.advance()
}

// ringVerbOf maps a wire verb onto gvm's direct verb set. REQ and BAT
// (and anything unknown) are excluded: a ring belongs to one session
// that already exists.
func ringVerbOf(v string) (gvm.Verb, bool) {
	switch v {
	case "SND":
		return gvm.SND, true
	case "STR":
		return gvm.STR, true
	case "STP":
		return gvm.STP, true
	case "RCV":
		return gvm.RCV, true
	case "RLS":
		return gvm.RLS, true
	case "SUS":
		return gvm.SUS, true
	case "RES":
		return gvm.RES, true
	}
	return 0, false
}

// advance issues verbs until one leaves its completion in the calendar
// (waiting) or the frame is finished. It is driven from begin and —
// for calendar completions — from notify.
func (s *ringSession) advance() {
	s.issuing = true
	for s.active && !s.waiting {
		if s.failed || (s.batch && s.idx >= len(s.req.Batch)) || (!s.batch && s.idx >= 1) {
			s.finish()
			break
		}
		verbStr := s.req.Verb
		if s.batch {
			verbStr = s.req.Batch[s.idx].Verb
		}
		verb, _ := ringVerbOf(verbStr)
		s.waiting = true
		if err := s.mgr.DirectVerb(s.id, verb); err != nil {
			// Synchronous errors are caller bugs (unknown/unbound
			// session); report them like a protocol ERR.
			s.waiting = false
			s.record("ERR", err.Error())
			s.failed = true
		}
	}
	s.issuing = false
}

// notify is the session's gvm.DirectNotify: it records the completed
// step and, when the completion arrived from a calendar event rather
// than inline in DirectVerb, resumes issuing.
func (s *ringSession) notify(verb gvm.Verb, st gvm.Status, errMsg string) {
	if s.closed || !s.active || !s.waiting {
		return // stale completion after teardown
	}
	s.waiting = false
	s.record(st.String(), errMsg)
	if st != gvm.ACK {
		s.failed = true
	}
	if verb == gvm.RLS && st == gvm.ACK {
		s.released = true
		if s.onRelease != nil {
			s.onRelease()
		}
	}
	if !s.issuing {
		s.advance()
	}
}

// record stores the current step's response and moves to the next step.
func (s *ringSession) record(status, errMsg string) {
	r := Response{
		Status:    status,
		Session:   s.id,
		Err:       errMsg,
		VirtualMS: s.mgr.Env().Now().Milliseconds(),
	}
	if s.batch {
		if s.idx < len(s.batchResp) {
			s.batchResp[s.idx] = r
		}
	} else {
		s.one = r
	}
	s.idx++
}

// fail aborts the in-flight frame with a single ERR response (used for
// records that never reached execution: decode or validation errors).
func (s *ringSession) fail(msg string) {
	s.active = true
	s.batch = false
	s.one = Response{Status: "ERR", Session: s.id, Err: msg, VirtualMS: s.mgr.Env().Now().Milliseconds()}
	s.finish()
}

// finish encodes the frame's response and pushes it to the completion
// ring (deferring to the sweep when the ring is full).
func (s *ringSession) finish() {
	s.active = false
	var resp Response
	if s.batch {
		for k := s.idx; k < len(s.batchResp); k++ {
			s.batchResp[k] = Response{
				Status:  "ERR",
				Session: s.id,
				Err:     "transport: skipped after earlier BAT failure",
			}
		}
		resp = Response{
			Status:    "ACK",
			Session:   s.id,
			VirtualMS: s.mgr.Env().Now().Milliseconds(),
			Batch:     s.batchResp,
		}
	} else {
		resp = s.one
	}
	if err := s.enc.encodeResponse(resp); err != nil {
		_ = s.enc.encodeResponse(Response{Status: "ERR", Session: s.id, Err: err.Error()})
	}
	s.rec = s.enc.flatten(s.rec[:0])
	s.enc.clearAliases()
	if len(s.rec) > s.sr.Cpl.MaxRecord() {
		_ = s.enc.encodeResponse(Response{
			Status: "ERR", Session: s.id,
			Err: fmt.Sprintf("transport: ring response %d bytes exceeds slot capacity %d", len(s.rec), s.sr.Cpl.MaxRecord()),
		})
		s.rec = s.enc.flatten(s.rec[:0])
		s.enc.clearAliases()
	}
	if s.sr.Cpl.Push(s.rec) {
		s.completed()
	} else {
		s.pending = true
	}
}

// completed rings the client's doorbell for a delivered response; after
// a ring RLS the session is finished and the next sweep unmaps it (the
// client's own mapping outlives ours, so it still reads the response).
func (s *ringSession) completed() {
	shm.DoorRing(s.sr.ClientDoor())
	if s.released {
		s.done = true
	}
}

// detach pulls the session out of its shard's sweep WITHOUT unmapping
// the segment — the client keeps its mapping, and after adoption the
// same ringSession re-registers on the failover target's sweep. An
// in-flight frame cannot complete here anymore (its gvm session is
// about to leave this shard), so it finishes with a retryable error;
// the client re-submits the frame and the target's sweep serves it.
// Source-shard owner-goroutine only.
func (s *ringSession) detach() {
	if s.active {
		s.waiting = false
		s.record("ERR", gvm.Retryable(fmt.Sprintf("transport: session %d migrating off gpu %d", s.id, s.shard.index)))
		s.failed = true
		s.finish()
	}
	s.shard.remove(s)
}

// closeOwner unmaps the session segment. Idempotent; owner-goroutine
// (or post-shutdown RingHost.Close) only.
func (s *ringSession) closeOwner() {
	if s.closed {
		return
	}
	s.closed = true
	_ = s.seg.Close()
}

// ringHostPlane is the dispatcher-facing HostPlane of a ring session.
// The owner never copies payloads for ring sessions (staging is rebound
// onto the client-visible segment), so the copy hooks only guard against
// misuse; Close routes teardown through the shard owner so the segment
// is unmapped exactly once, race-free with the sweep.
type ringHostPlane struct {
	name string
	rs   *RingShard
	sess *ringSession
}

func (h *ringHostPlane) Kind() string    { return PlaneRing }
func (h *ringHostPlane) Segment() string { return h.name }

func (h *ringHostPlane) CopyIn(req *Request, dst []byte) error {
	return errors.New("transport: ring sessions stage payloads through the mapped segment, not the socket")
}

func (h *ringHostPlane) CopyOut(src []byte, resp *Response) error {
	return errors.New("transport: ring sessions collect payloads through the mapped segment, not the socket")
}

func (h *ringHostPlane) Close() error {
	h.rs.Unregister(h.sess)
	return nil
}
