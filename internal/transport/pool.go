package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-classed frame-buffer pool. Read and staging buffers on the verb
// hot path (one per frame, up to MaxFrame bytes for inline SND/RCV
// payloads) are recycled here instead of being allocated per frame, so a
// warm connection moving 64 MiB payloads does zero hot-path allocations
// beyond the first pool miss per size class.
//
// Classes are powers of two from minBufClass to MaxFrame. A buffer
// returned by getBuf always comes from the class that fits n, so putBuf
// can recycle it by capacity without tracking provenance.

const (
	// minBufClass is the smallest pooled capacity (512 B); control-plane
	// frames are smaller, but sub-512 B allocations are cheap enough that
	// finer classes would only add pool traffic.
	minBufClass = 9
	maxBufClass = 26 // 1 << 26 == MaxFrame
)

var bufPools [maxBufClass - minBufClass + 1]sync.Pool

// Package-level pool accounting. A get that found a recycled buffer is a
// hit; a get that had to allocate (empty class or unpoolable size) is a
// miss. gets-puts is the number of buffers currently checked out (or
// dropped on an error path — the leak signal the pool-balance tests and
// the transport_pool_* metrics watch).
var poolGets, poolPuts, poolHits, poolMisses atomic.Int64

// PoolStats reports cumulative frame-buffer pool counters.
func PoolStats() (gets, puts, hits, misses int64) {
	return poolGets.Load(), poolPuts.Load(), poolHits.Load(), poolMisses.Load()
}

// bufClass maps a size to its pool index, or -1 for sizes beyond MaxFrame
// (never pooled).
func bufClass(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < minBufClass {
		return 0
	}
	if c > maxBufClass {
		return -1
	}
	return c - minBufClass
}

// getBuf returns a buffer of length n from the pool (capacity is n's size
// class). Sizes beyond MaxFrame fall back to a plain allocation.
func getBuf(n int) []byte {
	poolGets.Add(1)
	c := bufClass(n)
	if c < 0 {
		poolMisses.Add(1)
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		poolHits.Add(1)
		return (*v.(*[]byte))[:n]
	}
	poolMisses.Add(1)
	return make([]byte, n, 1<<(c+minBufClass))
}

// putBuf recycles a buffer obtained from getBuf. Buffers whose capacity
// is not a pooled class (foreign or oversized) are dropped for the GC.
// The caller must not retain any alias of b after the put.
func putBuf(b []byte) {
	if b == nil {
		return
	}
	poolPuts.Add(1)
	c := bufClass(cap(b))
	if c < 0 || cap(b) != 1<<(c+minBufClass) {
		return
	}
	b = b[:cap(b)]
	bufPools[c].Put(&b)
}
