package transport

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"gpuvirt/internal/workloads"
)

// fuzzPipeConn adapts an in-memory pipe to exercise a frame codec.
func fuzzPipeConn(t testing.TB, wrap func(net.Conn) *Conn) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	_ = a.SetDeadline(time.Now().Add(2 * time.Second))
	_ = b.SetDeadline(time.Now().Add(2 * time.Second))
	ca, cb := wrap(a), wrap(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// FuzzReadRequest feeds arbitrary bytes to the JSON request decoder: it
// must either produce a request or an error, never panic.
func FuzzReadRequest(f *testing.F) {
	f.Add([]byte(`{"verb":"REQ","session":1}` + "\n"))
	f.Add([]byte(`{"verb":"SND","session":-9}` + "\n"))
	f.Add([]byte(`{}` + "\n"))
	f.Add([]byte(`garbage` + "\n"))
	f.Add([]byte(`{"verb":` + "\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		if !bytes.ContainsRune(frame, '\n') {
			frame = append(frame, '\n')
		}
		a, b := fuzzPipeConn(t, NewConnJSON)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = a.ReadRequest() // must not panic
		}()
		if _, err := b.c.Write(frame); err != nil {
			return
		}
		<-done
	})
}

// FuzzDecodeRequestBinary feeds arbitrary bytes to the binary request
// decoder: decode must never panic, and every frame the encoder produces
// must decode back equal.
func FuzzDecodeRequestBinary(f *testing.F) {
	seed, _ := EncodeRequestBinary(nil, Request{Verb: "REQ", Session: 3, Rank: 1})
	f.Add(seed)
	withRef, _ := EncodeRequestBinary(nil, Request{Verb: "REQ", Ref: refp("mm", map[string]int{"n": 2048})})
	f.Add(withRef)
	f.Add([]byte{frameMagic, kindRequest, 0, 0, 0, 0})
	f.Add([]byte{frameMagic, kindRequest, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := DecodeRequestBinary(frame) // must not panic
		if err != nil {
			return
		}
		// Anything that decoded cleanly must re-encode and decode stably.
		enc, err := EncodeRequestBinary(nil, req)
		if err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		again, err := DecodeRequestBinary(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !requestsEqual(req, again) {
			t.Fatalf("unstable round trip: %+v vs %+v", req, again)
		}
	})
}

// FuzzResponseRoundTrip: any response written must decode back equal, in
// both codecs.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add("ACK", 1, "", "shm", "seg-1", int64(10), int64(20), 1.5, []byte(nil))
	f.Add("ERR", 0, "boom", "", "", int64(0), int64(0), 0.0, []byte{})
	f.Add("ACK", -3, "", "inline", "", int64(-1), int64(1<<40), math.Inf(1), []byte{0xB1, '{', 0})
	f.Fuzz(func(t *testing.T, status string, session int, errStr, plane, seg string, in, out int64, vms float64, data []byte) {
		want := Response{
			Status: status, Session: session, Err: errStr,
			Plane: plane, Segment: seg, InBytes: in, OutBytes: out, VirtualMS: vms,
			Data: data,
		}
		// Binary: loss-free for every float64, including NaN/Inf.
		frame, err := EncodeResponseBinary(nil, want)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		got, err := DecodeResponseBinary(frame)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if !responsesEqual(got, want) {
			t.Fatalf("binary round trip: got %+v, want %+v", got, want)
		}
		// JSON debugging mode over a pipe.
		a, b := fuzzPipeConn(t, NewConnJSON)
		go func() { _ = a.WriteResponse(want) }()
		jgot, err := b.ReadResponse()
		if err != nil {
			// JSON cannot represent some float64 values (NaN/Inf) — the
			// encoder errors rather than corrupting the stream.
			return
		}
		// The JSON debug codec flattens empty payloads to nil (omitempty),
		// so only the bytes are compared, not nil-ness.
		jwant := want
		if len(jwant.Data) == 0 {
			jwant.Data = nil
		}
		if len(jgot.Data) == 0 {
			jgot.Data = nil
		}
		if !responsesEqual(jgot, jwant) {
			t.Fatalf("JSON round trip: got %+v, want %+v", jgot, jwant)
		}
	})
}

func refp(name string, params map[string]int) *workloads.Ref {
	return &workloads.Ref{Name: name, Params: params}
}

func requestsEqual(a, b Request) bool {
	if a.Verb != b.Verb || a.Session != b.Session || a.Rank != b.Rank || a.Plane != b.Plane {
		return false
	}
	if a.MemQuota != b.MemQuota || a.Priority != b.Priority || a.Weight != b.Weight {
		return false
	}
	if !bytesEqualStrict(a.Data, b.Data) {
		return false
	}
	if (a.Ref == nil) != (b.Ref == nil) {
		return false
	}
	if a.Ref == nil {
		return true
	}
	if a.Ref.Name != b.Ref.Name || len(a.Ref.Params) != len(b.Ref.Params) {
		return false
	}
	for k, v := range a.Ref.Params {
		if b.Ref.Params[k] != v {
			return false
		}
	}
	return true
}

func responsesEqual(a, b Response) bool {
	return a.Status == b.Status && a.Session == b.Session && a.Err == b.Err &&
		a.Plane == b.Plane && a.Segment == b.Segment &&
		a.InBytes == b.InBytes && a.OutBytes == b.OutBytes &&
		math.Float64bits(a.VirtualMS) == math.Float64bits(b.VirtualMS) &&
		bytesEqualStrict(a.Data, b.Data)
}

// bytesEqualStrict distinguishes nil from empty: the wire encodes the
// difference, so round trips must preserve it.
func bytesEqualStrict(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return bytes.Equal(a, b)
}
