package transport

import (
	"errors"
	"fmt"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/vgpu"
	"gpuvirt/internal/workloads"
)

// DispatcherConfig configures the server-side verb dispatcher.
type DispatcherConfig struct {
	// Mgr is the GPU Virtualization Manager every verb ultimately lands
	// on.
	Mgr *gvm.Manager
	// Functional carries real payload bytes end to end; otherwise
	// sessions are timing-only and the data planes stay idle.
	Functional bool
	// ShmDir is where shm-plane segments live ("" = /dev/shm).
	ShmDir string
	// SegPrefix names shm-plane segment files (default "gvmd-seg").
	SegPrefix string
}

// Dispatcher is the one server-side implementation of the
// REQ/SND/STR/STP/RCV/RLS protocol for real clients. Every transport —
// in-process, unix socket, tcp — decodes frames into Requests and hands
// them here; the dispatcher drives the same vgpu client API the
// simulation uses, so gvm.Manager remains the single verb state machine.
//
// The dispatcher is not safe for concurrent use: servers call it from
// their single simulation-owner goroutine, preserving the simulator's
// deterministic single-threaded discipline.
type Dispatcher struct {
	cfg      DispatcherConfig
	sessions map[int]*hostSession
}

// hostSession is the daemon-side state of one client session: the vgpu
// handle doing the protocol work, plus staging buffers and the data
// plane moving payloads to and from the client process.
type hostSession struct {
	id      int
	v       *vgpu.VGPU
	plane   HostPlane
	in      []byte
	out     []byte
	started bool
}

// ConnState is the dispatcher's per-connection state: which sessions the
// connection opened (released if it drops) and the data plane a REQ gets
// when the client does not ask for one.
type ConnState struct {
	// DefaultPlane is set by the server from the accepting transport:
	// PlaneShm for co-located transports, PlaneInline for tcp.
	DefaultPlane string
	owned        []int
}

// NewDispatcher creates a dispatcher serving cfg.Mgr.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.SegPrefix == "" {
		cfg.SegPrefix = "gvmd-seg"
	}
	return &Dispatcher{cfg: cfg, sessions: make(map[int]*hostSession)}
}

func errResp(err error) Response { return Response{Status: "ERR", Err: err.Error()} }

// Handle services one request on a simulation process.
func (d *Dispatcher) Handle(p *sim.Proc, req Request, cs *ConnState) Response {
	switch req.Verb {
	case "REQ":
		return d.handleREQ(p, req, cs)
	case "SND", "STR", "STP", "RCV", "RLS":
		s, ok := d.sessions[req.Session]
		if !ok {
			return errResp(fmt.Errorf("transport: unknown session %d", req.Session))
		}
		return d.handleVerb(p, req, s, cs)
	default:
		return errResp(fmt.Errorf("transport: unknown verb %q", req.Verb))
	}
}

func (d *Dispatcher) handleREQ(p *sim.Proc, req Request, cs *ConnState) Response {
	if req.Ref == nil {
		return errResp(errors.New("transport: REQ needs a workload reference"))
	}
	w, err := workloads.FromRef(*req.Ref)
	if err != nil {
		return errResp(err)
	}
	spec := w.Spec(req.Rank)
	kind := req.Plane
	if kind == "" {
		kind = cs.DefaultPlane
	}
	if kind == "" {
		kind = PlaneShm
	}
	v, err := vgpu.Connect(p, d.cfg.Mgr, spec)
	if err != nil {
		return errResp(err)
	}
	s := &hostSession{id: v.Session(), v: v}
	name := fmt.Sprintf("%s-%d", d.cfg.SegPrefix, s.id)
	s.plane, err = NewHostPlane(kind, d.cfg.ShmDir, name, spec.InBytes, spec.OutBytes)
	if err != nil {
		_ = v.Release(p)
		return errResp(err)
	}
	if d.cfg.Functional {
		if spec.InBytes > 0 {
			s.in = make([]byte, spec.InBytes)
		}
		if spec.OutBytes > 0 {
			s.out = make([]byte, spec.OutBytes)
		}
	}
	d.sessions[s.id] = s
	cs.owned = append(cs.owned, s.id)
	return Response{
		Status:   "ACK",
		Session:  s.id,
		Plane:    s.plane.Kind(),
		Segment:  s.plane.Segment(),
		InBytes:  spec.InBytes,
		OutBytes: spec.OutBytes,
	}
}

func (d *Dispatcher) handleVerb(p *sim.Proc, req Request, s *hostSession, cs *ConnState) Response {
	resp := Response{Status: "ACK", Session: s.id}
	switch req.Verb {
	case "SND":
		if s.in != nil {
			if err := s.plane.CopyIn(&req, s.in); err != nil {
				return errResp(err)
			}
		}
		if err := s.v.SendInput(p, s.in); err != nil {
			return errResp(err)
		}
	case "STR":
		if err := s.v.Start(p); err != nil {
			return errResp(err)
		}
		s.started = true
	case "STP":
		// The owner drains the calendar after every flush, so by the
		// time an STP arrives execution has finished in virtual time.
		if !s.started {
			return errResp(errors.New("transport: STP before STR"))
		}
		if err := s.v.Wait(p); err != nil {
			return errResp(err)
		}
		s.started = false
	case "RCV":
		if err := s.v.ReceiveOutput(p, s.out); err != nil {
			return errResp(err)
		}
		if s.out != nil {
			if err := s.plane.CopyOut(s.out, &resp); err != nil {
				return errResp(err)
			}
		}
	case "RLS":
		d.release(p, s.id)
		for i, id := range cs.owned {
			if id == s.id {
				cs.owned = append(cs.owned[:i], cs.owned[i+1:]...)
				break
			}
		}
	}
	return resp
}

// HangUp releases every session a disconnected client left open.
func (d *Dispatcher) HangUp(p *sim.Proc, cs *ConnState) {
	for _, id := range cs.owned {
		d.release(p, id)
	}
	cs.owned = nil
}

// ReleaseAll tears down every live session; servers call it at shutdown
// so device memory and file-backed segments are reclaimed.
func (d *Dispatcher) ReleaseAll(p *sim.Proc) {
	ids := make([]int, 0, len(d.sessions))
	for id := range d.sessions {
		ids = append(ids, id)
	}
	for _, id := range ids {
		d.release(p, id)
	}
}

// OpenSessions returns the number of live dispatcher sessions.
func (d *Dispatcher) OpenSessions() int { return len(d.sessions) }

func (d *Dispatcher) release(p *sim.Proc, id int) {
	s, ok := d.sessions[id]
	if !ok {
		return
	}
	delete(d.sessions, id)
	_ = s.v.Release(p)
	_ = s.plane.Close()
}
