package transport

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/vgpu"
	"gpuvirt/internal/workloads"
)

// DispatcherConfig configures the server-side verb dispatcher.
type DispatcherConfig struct {
	// Node owns the per-GPU manager shards every verb ultimately lands
	// on. The dispatcher places each REQ through the node's policy and
	// from then on routes the session's verbs to its owning shard only
	// (admission control — MaxSessionBytes, device-memory fit — lives in
	// the node layer).
	Node *node.Node
	// Functional carries real payload bytes end to end; otherwise
	// sessions are timing-only and the data planes stay idle.
	Functional bool
	// ShmDir is where shm-plane segments live ("" = /dev/shm).
	ShmDir string
	// SegPrefix names shm-plane segment files (default "gvmd-seg").
	SegPrefix string
	// Metrics receives the dispatcher's per-verb instruments. nil creates
	// a private registry; the daemon passes the registry it shares with
	// gvm and ipc so one /metrics scrape covers the whole path.
	Metrics *metrics.Registry
	// Rings, when non-nil, enables the ring data plane: REQ may negotiate
	// PlaneRing and the session's later verbs travel through shared-memory
	// rings swept by the shard owner loops. nil daemons reject PlaneRing
	// with the same "unknown data plane" wording older daemons use, which
	// is what drives the client's automatic unix+shm fallback.
	Rings *RingHost
	// Log, when non-nil, receives one Debug line per served verb.
	Log *slog.Logger
}

// ShardSubmitter runs fn on shard's simulation-owner goroutine and waits
// for it; it returns false if the server shut down before fn completed.
type ShardSubmitter func(shard int, fn func(p *sim.Proc)) bool

// Dispatcher is the one server-side implementation of the
// REQ/SND/STR/STP/RCV/RLS protocol for real clients. Every transport —
// in-process, unix socket, tcp — decodes frames into Requests and hands
// them to Serve; the dispatcher drives the same vgpu client API the
// simulation uses, so gvm.Manager remains the single verb state machine.
//
// Serve runs on connection goroutines and splits every verb into a
// connection-side phase (payload staging: data-plane copies in and out of
// the manager's pinned buffers) and a minimal owner-side phase submitted
// to the simulation owner (state mutation and virtual time only). The
// owner's critical section is therefore O(scheduling), not O(bytes):
// concurrent clients overlap their memcpys on their own goroutines while
// the owner only serializes the simulation. Sessions are opened in gvm's
// direct-staging mode, so no byte ever moves on the owner goroutine.
type Dispatcher struct {
	cfg DispatcherConfig
	met *dispMetrics

	mu       sync.RWMutex // guards the session table
	sessions map[int]*hostSession
}

// dispMetrics are the dispatcher's registry-backed instruments. All maps
// are built once at construction and only read afterwards, so the verb
// hot path costs a map lookup plus a few atomic adds — no allocations
// (the warm-path zero-alloc test holds them to that).
type dispMetrics struct {
	verbs    map[string]*verbInst
	other    *verbInst // catch-all for unknown verbs
	bytesIn  *metrics.Counter
	bytesOut *metrics.Counter
	copyIn   map[string]*metrics.Histogram // plane kind -> wall ns
	copyOut  map[string]*metrics.Histogram
	batSteps *metrics.Histogram

	// Failover instruments: sessions migrated off unhealthy/draining
	// shards, the host bytes their snapshots moved, and wall-clock
	// migration latency.
	failovers     *metrics.Counter
	migratedBytes *metrics.Counter
	migLatencyNS  *metrics.Histogram
}

// verbInst is one verb's request/error/latency triple.
type verbInst struct {
	reqs *metrics.Counter
	errs *metrics.Counter
	lat  *metrics.Histogram
}

func (dm *dispMetrics) verb(v string) *verbInst {
	if vi := dm.verbs[v]; vi != nil {
		return vi
	}
	return dm.other
}

func newDispMetrics(reg *metrics.Registry) *dispMetrics {
	dm := &dispMetrics{
		verbs:    make(map[string]*verbInst),
		bytesIn:  reg.Counter("gvmd_verb_bytes_total", "payload bytes staged by verb", metrics.L("verb", "SND"), metrics.L("dir", "in")),
		bytesOut: reg.Counter("gvmd_verb_bytes_total", "payload bytes staged by verb", metrics.L("verb", "RCV"), metrics.L("dir", "out")),
		copyIn:   make(map[string]*metrics.Histogram),
		copyOut:  make(map[string]*metrics.Histogram),
		batSteps: reg.Histogram("gvmd_bat_steps", "sub-requests per BAT frame"),
		failovers: reg.Counter("node_failovers_total",
			"sessions live-migrated off unhealthy or draining shards"),
		migratedBytes: reg.Counter("node_migrated_bytes_total",
			"host bytes moved by session failover (arena snapshots plus staging)"),
		migLatencyNS: reg.Histogram("node_migration_latency_ns",
			"wall-clock latency of one session failover (extract to adopt)"),
	}
	mk := func(v string) *verbInst {
		return &verbInst{
			reqs: reg.Counter("gvmd_verb_requests_total", "requests served by verb", metrics.L("verb", v)),
			errs: reg.Counter("gvmd_verb_errors_total", "ERR responses by verb", metrics.L("verb", v)),
			lat:  reg.Histogram("gvmd_verb_latency_ns", "wall-clock verb service time", metrics.L("verb", v)),
		}
	}
	for _, v := range []string{"REQ", "BAT", "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES", "STA", "MIG", "ADP"} {
		dm.verbs[v] = mk(v)
	}
	dm.other = mk("other")
	for _, plane := range []string{PlaneShm, PlaneInline} {
		dm.copyIn[plane] = reg.Histogram("gvmd_copy_ns", "wall-clock data-plane copy time", metrics.L("plane", plane), metrics.L("dir", "in"))
		dm.copyOut[plane] = reg.Histogram("gvmd_copy_ns", "wall-clock data-plane copy time", metrics.L("plane", plane), metrics.L("dir", "out"))
	}
	reg.CounterFunc("transport_pool_gets_total", "frame-buffer pool gets", func() int64 { g, _, _, _ := PoolStats(); return g })
	reg.CounterFunc("transport_pool_puts_total", "frame-buffer pool puts", func() int64 { _, p, _, _ := PoolStats(); return p })
	reg.CounterFunc("transport_pool_hits_total", "frame-buffer pool hits", func() int64 { _, _, h, _ := PoolStats(); return h })
	reg.CounterFunc("transport_pool_misses_total", "frame-buffer pool misses", func() int64 { _, _, _, m := PoolStats(); return m })
	return dm
}

// hostSession is the daemon-side state of one client session: the vgpu
// handle doing the protocol work, the data plane moving payloads to and
// from the client process, and the pinned staging the connection
// goroutine copies into (SND) and out of (RCV) directly.
type hostSession struct {
	id    int
	inB   int64        // staging footprint reserved on the shard
	outB  int64        //   (returned to the node on release)
	owner *ConnState   // the connection that opened the session
	met   *dispMetrics // the owning dispatcher's instruments
	// ref/rank identify the session's workload in wire-serializable form;
	// the cross-node MIG path ships them with the extracted state so the
	// adopting node can rebuild the (non-serializable) kernel spec.
	ref  workloads.Ref
	rank int

	// migMu serializes failover migrations against verb dispatch and
	// teardown: migrate holds it across both owner submits (source
	// extract, target adopt), and every owner-phase caller holds it
	// around its submit so a verb never runs while the session is
	// between shards. Lock order: migMu before mu; neither is ever
	// taken by an owner-goroutine closure, so holding migMu across a
	// Submitter call cannot deadlock.
	migMu sync.Mutex

	// mu guards the connection-side staging state (plane + buffers) and
	// the session's location (shard + vgpu handle, remapped atomically
	// by failover) against teardown: release marks the session closed
	// under mu before closing the plane, and staging copies check closed
	// under mu first. It is never held across a Submitter call.
	mu        sync.Mutex
	closed    bool
	migrating bool // a failover is moving the session between shards
	v         *vgpu.VGPU
	shard     int // the node shard (GPU) hosting the session
	plane     HostPlane
	stageIn   []byte // pinned SND staging (nil when timing-only or 0 bytes)
	stageOut  []byte // pinned RCV staging

	started bool // owner-goroutine state: an STR has not been STP'd yet
}

// loc snapshots the session's current placement.
func (s *hostSession) loc() (shard int, v *vgpu.VGPU) {
	s.mu.Lock()
	shard, v = s.shard, s.v
	s.mu.Unlock()
	return shard, v
}

// copyIn stages a SND payload from the data plane straight into the
// session's pinned staging buffer. Connection-goroutine side.
func (s *hostSession) copyIn(req *Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: session %d is closed", s.id)
	}
	if s.migrating {
		return errors.New(gvm.Retryable(fmt.Sprintf("transport: session %d migrating", s.id)))
	}
	if s.stageIn == nil {
		return nil // timing-only: no bytes move
	}
	start := time.Now()
	if err := s.plane.CopyIn(req, s.stageIn); err != nil {
		return err
	}
	s.met.copyIn[s.plane.Kind()].Observe(int64(time.Since(start)))
	s.met.bytesIn.Add(int64(len(s.stageIn)))
	return nil
}

// copyOut publishes RCV results from pinned staging through the data
// plane. Connection-goroutine side.
func (s *hostSession) copyOut(resp *Response) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("transport: session %d is closed", s.id)
	}
	if s.migrating {
		return errors.New(gvm.Retryable(fmt.Sprintf("transport: session %d migrating", s.id)))
	}
	if s.stageOut == nil {
		return nil
	}
	start := time.Now()
	if err := s.plane.CopyOut(s.stageOut, resp); err != nil {
		return err
	}
	s.met.copyOut[s.plane.Kind()].Observe(int64(time.Since(start)))
	s.met.bytesOut.Add(int64(len(s.stageOut)))
	return nil
}

// ConnState is the dispatcher's per-connection state: which sessions the
// connection opened (released if it drops) and the data plane a REQ gets
// when the client does not ask for one. Only the owning connection may
// address its sessions.
type ConnState struct {
	// DefaultPlane is set by the server from the accepting transport:
	// PlaneShm for co-located transports, PlaneInline for tcp.
	DefaultPlane string
	owned        []int
}

func (cs *ConnState) dropOwned(id int) {
	for i, o := range cs.owned {
		if o == id {
			cs.owned = append(cs.owned[:i], cs.owned[i+1:]...)
			return
		}
	}
}

// NewDispatcher creates a dispatcher serving cfg.Node's shards.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.SegPrefix == "" {
		cfg.SegPrefix = "gvmd-seg"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Dispatcher{cfg: cfg, met: newDispMetrics(cfg.Metrics), sessions: make(map[int]*hostSession)}
}

// Metrics returns the registry holding the dispatcher's instruments.
func (d *Dispatcher) Metrics() *metrics.Registry { return d.cfg.Metrics }

func errResp(err error) Response { return Response{Status: "ERR", Err: err.Error()} }

// batchVerbRank orders the verbs allowed inside a BAT frame. Each session
// may run at most one cycle per batch (its verbs must appear in strictly
// increasing rank), which is what makes the zero-copy RCV response safe:
// nothing later in the batch can overwrite that session's staging.
var batchVerbRank = map[string]int{"SND": 0, "STR": 1, "STP": 2, "RCV": 3, "RLS": 4}

// Serve services one request from a connection goroutine, submitting only
// the verb's owner-side phase to the owning shard's simulation owner
// (session→shard resolves once at REQ; every later verb routes by the
// session's recorded shard). It returns ok == false when the server shut
// down before the request completed (the connection should close without
// replying).
func (d *Dispatcher) Serve(req Request, cs *ConnState, submit ShardSubmitter) (resp Response, ok bool) {
	vi := d.met.verb(req.Verb)
	vi.reqs.Inc()
	start := time.Now()
	switch req.Verb {
	case "REQ":
		resp, ok = d.serveREQ(req, cs, submit)
	case "BAT":
		resp, ok = d.serveBAT(req, cs, submit)
	case "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES":
		resp, ok = d.serveVerb(req, cs, submit)
	case "STA":
		resp, ok = d.serveSTA(), true
	case "MIG":
		resp, ok = d.serveMIG(req, cs, submit)
	case "ADP":
		resp, ok = d.serveADP(req, cs, submit)
	default:
		resp, ok = errResp(fmt.Errorf("transport: unknown verb %q", req.Verb)), true
	}
	dur := time.Since(start)
	vi.lat.Observe(int64(dur))
	if ok && resp.Status == "ERR" {
		vi.errs.Inc()
	}
	if log := d.cfg.Log; log != nil && log.Enabled(context.Background(), slog.LevelDebug) {
		log.Debug("verb served",
			"verb", req.Verb, "session", req.Session, "status", resp.Status,
			"dur", dur, "err", resp.Err)
	}
	return resp, ok
}

func (d *Dispatcher) lookup(id int, cs *ConnState) (*hostSession, error) {
	d.mu.RLock()
	s := d.sessions[id]
	d.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("transport: unknown session %d", id)
	}
	if s.owner != cs {
		return nil, fmt.Errorf("transport: session %d belongs to another connection", id)
	}
	return s, nil
}

func (d *Dispatcher) serveREQ(req Request, cs *ConnState, submit ShardSubmitter) (Response, bool) {
	if req.Ref == nil {
		return errResp(errors.New("transport: REQ needs a workload reference")), true
	}
	w, err := workloads.FromRef(*req.Ref)
	if err != nil {
		return errResp(err), true
	}
	spec := w.Spec(req.Rank)
	kind := req.Plane
	if kind == "" {
		kind = cs.DefaultPlane
	}
	if kind == "" {
		kind = PlaneShm
	}
	switch kind {
	case PlaneShm, PlaneInline:
	case PlaneRing:
		if d.cfg.Rings == nil {
			// Match the pre-ring wording exactly: the client's fallback
			// treats "unknown data plane" as "renegotiate with shm".
			return errResp(fmt.Errorf("transport: unknown data plane %q (want %q or %q)", kind, PlaneShm, PlaneInline)), true
		}
	default:
		return errResp(fmt.Errorf("transport: unknown data plane %q (want %q, %q or %q)", kind, PlaneShm, PlaneInline, PlaneRing)), true
	}

	// Admission + placement: the node picks the shard once, here; every
	// later verb for the session routes straight to it.
	shard, err := d.cfg.Node.Place(spec.InBytes, spec.OutBytes)
	if err != nil {
		return errResp(err), true
	}
	mgr := d.cfg.Node.Shard(shard).Mgr

	// Owner phase: open the gvm session (direct staging — the dispatcher
	// moves the bytes, the owner only accounts virtual time).
	var (
		v                 *vgpu.VGPU
		stageIn, stageOut []byte
		verr              error
		vms               float64
	)
	if !submit(shard, func(p *sim.Proc) {
		v, verr = vgpu.ConnectOpts(p, mgr, spec, vgpu.Opts{
			Direct: true, MemQuota: req.MemQuota, Priority: req.Priority, Weight: req.Weight,
		})
		if verr == nil && d.cfg.Functional {
			stageIn, stageOut = mgr.Staging(v.Session())
		}
		vms = p.Now().Milliseconds()
	}) {
		d.cfg.Node.Release(shard, spec.InBytes, spec.OutBytes)
		return Response{}, false
	}
	if verr != nil {
		d.cfg.Node.Release(shard, spec.InBytes, spec.OutBytes)
		r := errResp(verr)
		r.VirtualMS = vms
		return r, true
	}

	if kind == PlaneRing {
		return d.serveRingREQ(cs, submit, shard, mgr, v, spec.InBytes, spec.OutBytes, vms)
	}

	// Connection phase: create the data plane (shm file creation is real
	// I/O and stays off the owner) and publish the session.
	s := &hostSession{
		id: v.Session(), v: v, shard: shard,
		inB: spec.InBytes, outB: spec.OutBytes,
		owner: cs, met: d.met, stageIn: stageIn, stageOut: stageOut,
		ref: *req.Ref, rank: req.Rank,
	}
	name := fmt.Sprintf("%s-%d", d.cfg.SegPrefix, s.id)
	s.plane, err = NewHostPlane(kind, d.cfg.ShmDir, name, spec.InBytes, spec.OutBytes)
	if err != nil {
		submit(shard, func(p *sim.Proc) { _ = v.Release(p) })
		d.cfg.Node.Release(shard, spec.InBytes, spec.OutBytes)
		return errResp(err), true
	}
	d.mu.Lock()
	d.sessions[s.id] = s
	d.mu.Unlock()
	cs.owned = append(cs.owned, s.id)
	return Response{
		Status:    "ACK",
		Session:   s.id,
		Plane:     s.plane.Kind(),
		Segment:   s.plane.Segment(),
		InBytes:   spec.InBytes,
		OutBytes:  spec.OutBytes,
		VirtualMS: vms,
	}, true
}

// serveRingREQ finishes a REQ that negotiated the ring plane: it lays
// the session's rings out in a fresh segment, rebinds gvm's pinned
// staging onto the segment's staging regions (so SND/RCV payload bytes
// are shared, not copied), and registers the session with its shard's
// ring sweep. Connection-goroutine side, with one owner submit for the
// bind.
func (d *Dispatcher) serveRingREQ(cs *ConnState, submit ShardSubmitter, shard int, mgr *gvm.Manager, v *vgpu.VGPU, inB, outB int64, vms float64) (Response, bool) {
	rh := d.cfg.Rings
	id := v.Session()
	name := fmt.Sprintf("%s-%d", d.cfg.SegPrefix, id)
	rcfg := rh.Config()
	abort := func() {
		submit(shard, func(p *sim.Proc) { _ = v.Release(p) })
		d.cfg.Node.Release(shard, inB, outB)
	}
	seg, err := shm.NewFile(d.cfg.ShmDir, name, shm.RingSegmentSize(rcfg, inB, outB))
	if err != nil {
		abort()
		return errResp(err), true
	}
	sr, err := shm.InitSessionRing(seg, rcfg, inB, outB, rh.DoorName(), uint32(shard*shm.DoorStride))
	if err != nil {
		seg.Close()
		abort()
		return errResp(err), true
	}
	rs := rh.Shard(shard)
	sess := &ringSession{id: id, shard: rs, mgr: mgr, seg: seg, sr: sr}
	s := &hostSession{
		id: id, v: v, shard: shard, inB: inB, outB: outB,
		owner: cs, met: d.met,
		plane: &ringHostPlane{name: name, rs: rs, sess: sess},
	}
	sess.onRelease = func() { d.ringReleased(s) }
	var berr error
	if !submit(shard, func(p *sim.Proc) {
		berr = mgr.BindDirect(id, sr.In(), sr.Out(), sess.notify)
	}) {
		seg.Close()
		d.cfg.Node.Release(shard, inB, outB)
		return Response{}, false
	}
	if berr != nil {
		seg.Close()
		abort()
		return errResp(berr), true
	}
	d.mu.Lock()
	d.sessions[id] = s
	d.mu.Unlock()
	cs.owned = append(cs.owned, id)
	rs.Register(sess)
	return Response{
		Status:    "ACK",
		Session:   id,
		Plane:     PlaneRing,
		Segment:   name,
		InBytes:   inB,
		OutBytes:  outB,
		VirtualMS: vms,
	}, true
}

// ringReleased is the ring-RLS counterpart of releaseOwner: gvm already
// tore the session down inside DirectVerb, so only dispatcher
// bookkeeping remains. It runs on the owner goroutine (from the
// session's DirectNotify); the connection's owned list is left alone —
// HangUp tolerates ids that have left the session table.
func (d *Dispatcher) ringReleased(s *hostSession) {
	d.mu.Lock()
	if cur := d.sessions[s.id]; cur != s {
		d.mu.Unlock()
		return
	}
	delete(d.sessions, s.id)
	d.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	shard := s.shard
	s.mu.Unlock()
	d.cfg.Node.Release(shard, s.inB, s.outB)
}

func (d *Dispatcher) serveVerb(req Request, cs *ConnState, submit ShardSubmitter) (Response, bool) {
	s, err := d.lookup(req.Session, cs)
	if err != nil {
		return errResp(err), true
	}
	// Failover on touch: if the session's shard has been marked for
	// evacuation, move the session before dispatching — the verb then
	// runs on the healthy target instead of bouncing.
	d.rescueIfUnhealthy(s, submit)
	if req.Verb == "SND" {
		if err := s.copyIn(&req); err != nil {
			return errResp(err), true
		}
	}
	resp := Response{Status: "ACK", Session: s.id}
	var verr error
	s.migMu.Lock()
	shard, _ := s.loc()
	if !submit(shard, func(p *sim.Proc) {
		if cur, _ := s.loc(); cur != shard {
			// Unreachable while migMu pins the placement; kept as a
			// tripwire for future call paths that skip the lock.
			verr = errors.New(gvm.Retryable("transport: session migrated during dispatch"))
			return
		}
		verr = d.ownerVerb(p, s, req.Verb)
		resp.VirtualMS = p.Now().Milliseconds()
	}) {
		s.migMu.Unlock()
		return Response{}, false
	}
	s.migMu.Unlock()
	if verr != nil {
		r := errResp(verr)
		r.VirtualMS = resp.VirtualMS
		return r, true
	}
	switch req.Verb {
	case "RCV":
		if err := s.copyOut(&resp); err != nil {
			return errResp(err), true
		}
	case "RLS":
		cs.dropOwned(s.id)
	}
	return resp, true
}

// ownerVerb is the owner-side phase of one data verb: pure simulation
// state and virtual time, no payload bytes. SND and RCV run the vgpu
// calls with nil buffers — only the virtual host-copy sleeps remain,
// because direct sessions skip gvm's segment copies too.
func (d *Dispatcher) ownerVerb(p *sim.Proc, s *hostSession, verb string) error {
	switch verb {
	case "SND":
		return s.v.SendInput(p, nil)
	case "STR":
		if err := s.v.Start(p); err != nil {
			return err
		}
		s.started = true
		return nil
	case "STP":
		// The owner drains the calendar after every flush, so by the
		// time an STP arrives execution has finished in virtual time.
		if !s.started {
			return errors.New("transport: STP before STR")
		}
		if err := s.v.Wait(p); err != nil {
			return err
		}
		s.started = false
		return nil
	case "RCV":
		return s.v.ReceiveOutput(p, nil)
	case "RLS":
		d.releaseOwner(p, s)
		return nil
	case "SUS":
		return s.v.Suspend(p)
	case "RES":
		return s.v.Resume(p)
	default:
		return fmt.Errorf("transport: unknown verb %q", verb)
	}
}

// serveBAT runs a pipelined verb batch: every sub-verb's connection phase
// plus one owner round trip PER RUN of consecutive same-shard steps, so a
// full SPMD cycle (SND+STR+STP+RCV) against one session costs a single
// submission instead of four. A batch addressing sessions on several
// shards submits once per contiguous same-shard run, in batch order.
func (d *Dispatcher) serveBAT(req Request, cs *ConnState, submit ShardSubmitter) (Response, bool) {
	if len(req.Batch) == 0 {
		return errResp(errors.New("transport: empty BAT")), true
	}
	type step struct {
		req  Request
		s    *hostSession
		resp Response
		err  error
		ran  bool
	}
	steps := make([]step, len(req.Batch))
	lastRank := make(map[int]int, 2)
	for i := range req.Batch {
		sub := req.Batch[i]
		rank, allowed := batchVerbRank[sub.Verb]
		if !allowed {
			return errResp(fmt.Errorf("transport: verb %q not allowed in BAT", sub.Verb)), true
		}
		if len(sub.Batch) > 0 {
			return errResp(errors.New("transport: nested BAT")), true
		}
		s, err := d.lookup(sub.Session, cs)
		if err != nil {
			return errResp(err), true
		}
		if last, seen := lastRank[sub.Session]; seen && rank <= last {
			return errResp(fmt.Errorf(
				"transport: BAT verbs for session %d must appear once each, in SND<STR<STP<RCV<RLS order", sub.Session)), true
		}
		lastRank[sub.Session] = rank
		// Inner steps count against their own verb series too, so a
		// scrape's SND/STR/STP/RCV counters reflect protocol traffic
		// whether or not the client pipelines.
		d.met.verb(sub.Verb).reqs.Inc()
		steps[i] = step{req: sub, s: s}
	}
	d.met.batSteps.Observe(int64(len(steps)))

	// Failover on touch, once per distinct session in the batch. Sessions
	// belong to exactly one connection and a connection serves one frame
	// at a time, so no two in-flight batches share a session — locking
	// the migMus in batch order below cannot deadlock against another
	// batch (migrate only ever holds one).
	uniq := make([]*hostSession, 0, len(lastRank))
	seenSess := make(map[int]bool, len(lastRank))
	for i := range steps {
		if s := steps[i].s; !seenSess[s.id] {
			seenSess[s.id] = true
			uniq = append(uniq, s)
		}
	}
	for _, s := range uniq {
		d.rescueIfUnhealthy(s, submit)
	}

	// Connection phase: stage every SND payload into pinned memory.
	limit := len(steps)
	for i := range steps {
		if steps[i].req.Verb == "SND" {
			if err := steps[i].s.copyIn(&steps[i].req); err != nil {
				steps[i].err = err
				limit = i
				break
			}
		}
	}

	// Owner phase: one submission per contiguous same-shard run of staged
	// steps, stopping the whole batch at the first failure. Every
	// session's migMu is held across the phase so its placement cannot
	// change between the shard snapshot and the owner closure running.
	for _, s := range uniq {
		s.migMu.Lock()
	}
	unlock := func() {
		for _, s := range uniq {
			s.migMu.Unlock()
		}
	}
	shardOf := make(map[int]int, len(uniq))
	for _, s := range uniq {
		sh, _ := s.loc()
		shardOf[s.id] = sh
	}
	var vms float64
	failed := false
	for i := 0; i < limit && !failed; {
		j := i
		shard := shardOf[steps[i].s.id]
		for j < limit && shardOf[steps[j].s.id] == shard {
			j++
		}
		lo, hi := i, j
		if !submit(shard, func(p *sim.Proc) {
			for k := lo; k < hi; k++ {
				st := &steps[k]
				st.ran = true
				st.err = d.ownerVerb(p, st.s, st.req.Verb)
				st.resp.VirtualMS = p.Now().Milliseconds()
				if st.err != nil {
					failed = true
					break
				}
			}
			vms = p.Now().Milliseconds()
		}) {
			unlock()
			return Response{}, false
		}
		i = j
	}
	unlock()

	// Connection phase: collect RCV results, finish RLS bookkeeping,
	// assemble per-step responses.
	out := Response{Status: "ACK", VirtualMS: vms, Batch: make([]Response, len(steps))}
	for i := range steps {
		st := &steps[i]
		sub := &out.Batch[i]
		sub.Session = st.req.Session
		sub.VirtualMS = st.resp.VirtualMS
		switch {
		case st.err != nil:
			sub.Status = "ERR"
			sub.Err = st.err.Error()
			d.met.verb(st.req.Verb).errs.Inc()
		case !st.ran:
			sub.Status = "ERR"
			sub.Err = "transport: skipped after earlier BAT failure"
		default:
			sub.Status = "ACK"
			switch st.req.Verb {
			case "RCV":
				if err := st.s.copyOut(sub); err != nil {
					sub.Status = "ERR"
					sub.Err = err.Error()
				}
			case "RLS":
				cs.dropOwned(st.req.Session)
			}
		}
	}
	return out, true
}

// releaseOwner tears one session down. Owning-shard owner-goroutine
// side: unpublish first so no new connection phase can find it, then mark
// it closed under its mutex (waiting out any staging copy in flight)
// before releasing the gvm session, the data plane, and the node's
// placement reservation.
func (d *Dispatcher) releaseOwner(p *sim.Proc, s *hostSession) {
	d.mu.Lock()
	cur, live := d.sessions[s.id]
	if live && cur == s {
		delete(d.sessions, s.id)
	}
	d.mu.Unlock()
	if !live || cur != s {
		return // already released
	}
	s.mu.Lock()
	s.closed = true
	plane, v, shard := s.plane, s.v, s.shard
	s.mu.Unlock()
	_ = v.Release(p)
	if plane != nil {
		_ = plane.Close()
	}
	d.cfg.Node.Release(shard, s.inB, s.outB)
}

// HangUp releases every session a disconnected client left open,
// submitting each teardown to its owning shard. Connection-goroutine
// side (servers call it from the connection's cleanup).
func (d *Dispatcher) HangUp(cs *ConnState, submit ShardSubmitter) {
	for _, id := range cs.owned {
		d.mu.RLock()
		s := d.sessions[id]
		d.mu.RUnlock()
		if s != nil && s.owner == cs {
			s.migMu.Lock()
			shard, _ := s.loc()
			submit(shard, func(p *sim.Proc) { d.releaseOwner(p, s) })
			s.migMu.Unlock()
		}
	}
	cs.owned = nil
}

// ReleaseAll tears down every live session on every shard; servers call
// it at shutdown so device memory and file-backed segments are reclaimed.
func (d *Dispatcher) ReleaseAll(submit ShardSubmitter) {
	d.mu.RLock()
	live := make([]*hostSession, 0, len(d.sessions))
	for _, s := range d.sessions {
		live = append(live, s)
	}
	d.mu.RUnlock()
	for _, s := range live {
		s := s
		s.migMu.Lock()
		shard, _ := s.loc()
		submit(shard, func(p *sim.Proc) { d.releaseOwner(p, s) })
		s.migMu.Unlock()
	}
}

// rescueIfUnhealthy migrates s off its shard when the shard is marked
// for evacuation (Unhealthy or Draining). Verb paths call it before
// dispatching so a session on a faulted shard moves at the next client
// touch even if the background evacuation has not reached it yet.
// Failures are logged, not returned: the verb proceeds and reports its
// own (retryable) error.
func (d *Dispatcher) rescueIfUnhealthy(s *hostSession, submit ShardSubmitter) {
	shard, _ := s.loc()
	if !d.cfg.Node.Health(shard).Evacuate() {
		return
	}
	if err := d.migrate(s, submit); err != nil && d.cfg.Log != nil {
		d.cfg.Log.Warn("session failover failed", "session", s.id, "err", err)
	}
}

// EvacuateShard live-migrates every session off shard. The daemon wires
// it to the node's fault handler (and to drain requests) so a shard
// going Unhealthy empties itself in the background; verbs arriving for
// a session mid-move answer retryable errors the client retries.
func (d *Dispatcher) EvacuateShard(shard int, submit ShardSubmitter) {
	d.mu.RLock()
	victims := make([]*hostSession, 0, len(d.sessions))
	for _, s := range d.sessions {
		if sh, _ := s.loc(); sh == shard {
			victims = append(victims, s)
		}
	}
	d.mu.RUnlock()
	for _, s := range victims {
		if err := d.migrate(s, submit); err != nil && d.cfg.Log != nil {
			d.cfg.Log.Warn("session failover failed",
				"session", s.id, "shard", shard, "err", err)
		}
	}
}

// migrate live-migrates one session off its current shard: quiesce and
// extract on the source owner (gvm.Manager.ExtractSession snapshots the
// session's arenas with the suspend machinery), re-place through the
// node's live policy — which only sees healthy shards — adopt on the
// target owner, and atomically remap the session's routing. Verbs that
// race the move answer retryable errors; an interrupted execution cycle
// re-runs on the target, which is byte-identical because kernels are
// deterministic functions of the staged input. If no healthy shard can
// take the session it is re-adopted on the source so teardown keeps
// working, and the error reports the stranding.
func (d *Dispatcher) migrate(s *hostSession, submit ShardSubmitter) error {
	s.migMu.Lock()
	defer s.migMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	from := s.shard
	if !d.cfg.Node.Health(from).Evacuate() {
		s.mu.Unlock()
		return nil // another migration already moved it
	}
	s.migrating = true
	rp, _ := s.plane.(*ringHostPlane)
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.migrating = false
		s.mu.Unlock()
	}()

	start := time.Now()
	fromMgr := d.cfg.Node.Shard(from).Mgr

	// Source owner: pull a ring session out of its shard's sweep (the
	// in-flight frame, if any, answers a retryable error; the client's
	// mapping stays valid), then quiesce and extract the gvm session.
	var (
		ext  *gvm.ExtractedSession
		xerr error
	)
	if !submit(from, func(p *sim.Proc) {
		if rp != nil {
			rp.sess.detach()
		}
		ext, xerr = fromMgr.ExtractSession(p, s.id)
	}) {
		return errors.New("transport: shutdown during migration")
	}
	if xerr != nil {
		return fmt.Errorf("transport: extract session %d from gpu %d: %w", s.id, from, xerr)
	}

	// adoptOn lands the extracted session on shard: adopt into the gvm
	// manager, rebind the ring segment (or refresh the pinned staging
	// pointers), and remap the dispatcher's routing. The ring session's
	// mgr/shard fields are set inside the owner closure so the target
	// sweep observes them through the Register happens-before edge.
	adoptOn := func(shard int) error {
		mgr := d.cfg.Node.Shard(shard).Mgr
		var (
			nv        *vgpu.VGPU
			aerr      error
			sIn, sOut []byte
		)
		if !submit(shard, func(p *sim.Proc) {
			nv, aerr = vgpu.Adopt(p, mgr, ext)
			if aerr != nil {
				return
			}
			if rp != nil {
				sr := rp.sess.sr
				if berr := mgr.BindDirect(s.id, sr.In(), sr.Out(), rp.sess.notify); berr != nil {
					aerr = fmt.Errorf("transport: rebind ring session %d on gpu %d: %w", s.id, shard, berr)
					return
				}
				rp.sess.mgr = mgr
				rp.sess.shard = d.cfg.Rings.Shard(shard)
			} else if d.cfg.Functional {
				sIn, sOut = mgr.Staging(s.id)
			}
		}) {
			return errors.New("transport: shutdown during migration")
		}
		if aerr != nil {
			return aerr
		}
		s.mu.Lock()
		s.v = nv
		s.shard = shard
		if rp == nil {
			s.stageIn, s.stageOut = sIn, sOut
		} else {
			rp.rs = d.cfg.Rings.Shard(shard)
		}
		s.mu.Unlock()
		if rp != nil {
			d.cfg.Rings.Shard(shard).Register(rp.sess)
		}
		return nil
	}

	to, perr := d.cfg.Node.Place(s.inB, s.outB)
	if perr != nil {
		// Nowhere healthy to go: park the session back on the source so
		// release paths still reclaim its memory, and report the strand.
		if rerr := adoptOn(from); rerr != nil {
			return fmt.Errorf("transport: session %d stranded: placement: %v; re-adopt on gpu %d: %v",
				s.id, perr, from, rerr)
		}
		return fmt.Errorf("transport: no healthy shard for session %d: %w", s.id, perr)
	}
	if aerr := adoptOn(to); aerr != nil {
		d.cfg.Node.Release(to, s.inB, s.outB)
		if rerr := adoptOn(from); rerr != nil {
			return fmt.Errorf("transport: session %d stranded: adopt on gpu %d: %v; re-adopt on gpu %d: %v",
				s.id, to, aerr, from, rerr)
		}
		return fmt.Errorf("transport: adopt session %d on gpu %d: %w", s.id, to, aerr)
	}
	d.cfg.Node.Release(from, s.inB, s.outB)
	if rp != nil {
		// The client's ring header still names the source shard's door;
		// forward its rings to the adopting shard so the target owner
		// wakes on new submissions.
		d.cfg.Rings.Shard(from).Forward(d.cfg.Rings.Shard(to).Door())
	}

	d.met.failovers.Inc()
	d.met.migratedBytes.Add(ext.Bytes())
	d.met.migLatencyNS.Observe(int64(time.Since(start)))
	if d.cfg.Log != nil {
		d.cfg.Log.Info("session failover",
			"session", s.id, "from", from, "to", to,
			"bytes", ext.Bytes(), "rerun", ext.Rerun)
	}
	return nil
}

// OpenSessions returns the number of live dispatcher sessions.
func (d *Dispatcher) OpenSessions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sessions)
}
