package transport

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuvirt/internal/shm"
)

func TestSplitAddr(t *testing.T) {
	cases := []struct {
		addr, scheme, target string
	}{
		{"unix:///tmp/gvmd.sock", "unix", "/tmp/gvmd.sock"},
		{"tcp://127.0.0.1:7070", "tcp", "127.0.0.1:7070"},
		{"tcp://:0", "tcp", ":0"},
		{"inproc://name", "inproc", "name"},
		{"/tmp/gvmd.sock", "unix", "/tmp/gvmd.sock"}, // bare path = unix
		{"bogus://x", "bogus", "x"},
	}
	for _, c := range cases {
		scheme, target := SplitAddr(c.addr)
		if scheme != c.scheme || target != c.target {
			t.Errorf("SplitAddr(%q) = %q, %q; want %q, %q", c.addr, scheme, target, c.scheme, c.target)
		}
	}
}

func TestDialUnknownScheme(t *testing.T) {
	if _, _, err := DialAddr("bogus://x"); err == nil {
		t.Fatal("dial on an unregistered scheme succeeded")
	}
	if _, err := ListenAddr("bogus://x"); err == nil {
		t.Fatal("listen on an unregistered scheme succeeded")
	}
}

func TestDefaultPlanes(t *testing.T) {
	for scheme, want := range map[string]string{
		"unix":   PlaneShm,
		"inproc": PlaneShm,
		"tcp":    PlaneInline,
	} {
		tr, err := Lookup(scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if got := tr.DefaultPlane(); got != want {
			t.Errorf("%s default plane = %q, want %q", scheme, got, want)
		}
	}
}

func TestInprocLifecycle(t *testing.T) {
	ln, err := ListenAddr("inproc://lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	if ln.Addr() != "inproc://lifecycle" {
		t.Fatalf("Addr = %q", ln.Addr())
	}
	// Double-listen on the same name is rejected.
	if _, err := ListenAddr("inproc://lifecycle"); err == nil {
		t.Fatal("second listener on the same inproc name accepted")
	}
	// Dial/accept hand over a usable duplex pipe.
	type res struct {
		n   int
		err error
	}
	got := make(chan res, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- res{0, err}
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		n, err := conn.Read(buf)
		got <- res{n, err}
	}()
	nc, _, err := DialAddr(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil || r.n != 5 {
		t.Fatalf("server read %d bytes, err %v", r.n, r.err)
	}
	nc.Close()
	// After Close the name is free again, dialing it fails, and Accept
	// unblocks with an error.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("Accept on a closed inproc listener succeeded")
	}
	if _, _, err := DialAddr("inproc://lifecycle"); err == nil {
		t.Fatal("dial on a closed inproc name succeeded")
	}
	ln2, err := ListenAddr("inproc://lifecycle")
	if err != nil {
		t.Fatalf("name not released by Close: %v", err)
	}
	ln2.Close()
	if err := ln2.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestInprocDialUnknownName(t *testing.T) {
	if _, _, err := DialAddr("inproc://nobody-home"); err == nil {
		t.Fatal("dial on an unregistered inproc name succeeded")
	}
}

func TestInprocConnSupportsDeadlines(t *testing.T) {
	ln, err := ListenAddr("inproc://deadline")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(time.Second) // never answers in time
		}
	}()
	nc, _, err := DialAddr(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := nc.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read past deadline succeeded")
	}
}

// TestPlaneRoundTrips drives each client plane against its host plane
// directly, without a daemon in between.
func TestPlaneRoundTrips(t *testing.T) {
	in := []byte{1, 2, 3, 4}
	out := []byte{9, 8, 7}
	for _, kind := range []string{PlaneShm, PlaneInline} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			host, err := NewHostPlane(kind, dir, "seg-test", int64(len(in)), int64(len(out)))
			if err != nil {
				t.Fatal(err)
			}
			defer host.Close()
			if host.Kind() != kind {
				t.Fatalf("host plane kind = %q", host.Kind())
			}
			resp := Response{Plane: kind, Segment: host.Segment(), InBytes: int64(len(in)), OutBytes: int64(len(out))}
			client, err := OpenPlane(dir, resp)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			// Client stages input; host copies it in.
			req := Request{Verb: "SND"}
			if err := client.StageIn(in, &req); err != nil {
				t.Fatal(err)
			}
			dst := make([]byte, len(in))
			if err := host.CopyIn(&req, dst); err != nil {
				t.Fatal(err)
			}
			if string(dst) != string(in) {
				t.Fatalf("host read %v, want %v", dst, in)
			}

			// Host publishes output; client collects it.
			var rcv Response
			rcv.Plane = kind
			if err := host.CopyOut(out, &rcv); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, len(out))
			if err := client.CollectOut(buf, &rcv); err != nil {
				t.Fatal(err)
			}
			if string(buf) != string(out) {
				t.Fatalf("client read %v, want %v", buf, out)
			}
		})
	}
}

func TestShmHostPlaneRemovesSegment(t *testing.T) {
	dir := t.TempDir()
	host, err := NewHostPlane(PlaneShm, dir, "seg-rm", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "seg-rm")
	seg, err := shm.OpenFile(dir, "seg-rm")
	if err != nil {
		t.Fatalf("segment file missing while plane open: %v", err)
	}
	seg.Close()
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := shm.OpenFile(dir, "seg-rm"); err == nil {
		t.Fatalf("segment %s survived host plane Close", path)
	}
}

func TestInlinePlaneSizeMismatch(t *testing.T) {
	p := inlinePlane{}
	buf := make([]byte, 4)
	resp := Response{Data: []byte{1, 2}}
	if err := p.CollectOut(buf, &resp); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("short inline payload accepted: %v", err)
	}
}
