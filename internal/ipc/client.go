package ipc

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// Options configures a client connection.
type Options struct {
	// JSONWire dials with the newline-delimited JSON debugging codec;
	// the daemon must run with -json-wire.
	JSONWire bool
	// ShmDir is the daemon's shm data-plane directory ("" = /dev/shm).
	// Only the shm plane uses it.
	ShmDir string
	// Plane forces a data plane (transport.PlaneShm or
	// transport.PlaneInline); "" takes the transport's default — shm for
	// unix/inproc, inline for tcp.
	Plane string
	// Timeout bounds each request round trip's socket I/O (SetDeadline
	// around write+read), so a hung or SIGSTOP'd daemon surfaces as an
	// error instead of blocking the client forever. 0 (the default)
	// disables the deadline. A timed-out connection may hold a partial
	// frame and must be closed, not reused.
	Timeout time.Duration
	// NoPipeline disables verb pipelining: RunCycle issues its four verbs
	// as separate round trips instead of one BAT frame. Pipelining also
	// turns itself off for the connection when the daemon rejects BAT as
	// an unknown verb (a pre-pipelining daemon over the JSON wire).
	NoPipeline bool
}

// Client is a real-process connection to a gvmd daemon. It is the thin
// transport binding of the one vgpu-style client API: verbs travel as
// frames, payloads through the session's data plane, and all protocol
// state lives server-side in the shared dispatcher.
type Client struct {
	mu         sync.Mutex
	conn       *transport.Conn
	nc         net.Conn
	shmDir     string
	plane      string
	timeout    time.Duration
	noPipeline bool
	trips      int64
}

// Dial connects to a daemon address — "unix:///path" (or a bare socket
// path), "tcp://host:port", "inproc://name" — using the binary wire
// codec. shmDir must match the daemon's data-plane directory ("" =
// /dev/shm) when the shm plane is in play.
func Dial(addr, shmDir string) (*Client, error) {
	return DialOptions(addr, Options{ShmDir: shmDir})
}

// DialJSON connects using the JSON debugging codec; the daemon must be
// running with JSONWire set.
func DialJSON(addr, shmDir string) (*Client, error) {
	return DialOptions(addr, Options{ShmDir: shmDir, JSONWire: true})
}

// DialOptions connects to a daemon address with explicit options.
func DialOptions(addr string, o Options) (*Client, error) {
	nc, tr, err := transport.DialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s: %w", addr, err)
	}
	if err := transport.WritePreamble(nc, o.JSONWire); err != nil {
		nc.Close()
		return nil, fmt.Errorf("ipc: dial %s: %w", addr, err)
	}
	conn := transport.NewConn(nc)
	if o.JSONWire {
		conn = transport.NewConnJSON(nc)
	}
	plane := o.Plane
	if plane == "" {
		plane = tr.DefaultPlane()
	}
	return &Client{conn: conn, nc: nc, shmDir: o.ShmDir, plane: plane, timeout: o.Timeout, noPipeline: o.NoPipeline}, nil
}

// Close drops the connection; the daemon releases any sessions left open.
func (c *Client) Close() error {
	// Close the raw connection first: it unblocks any round trip stuck in
	// a read. Then taking mu waits that round trip out, after which no
	// read is in flight and the pooled read buffer can be released.
	err := c.nc.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conn.Release()
	return err
}

// SetRequestTimeout sets the per-round-trip I/O deadline for subsequent
// requests (0 disables it).
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// RoundTrips returns how many request round trips the client has made;
// tests use it to assert that a pipelined cycle costs one frame exchange.
func (c *Client) RoundTrips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trips
}

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trips++
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.conn.WriteRequest(req); err != nil {
		return Response{}, c.wrapTimeout(req.Verb, err)
	}
	resp, err := c.conn.ReadResponse()
	if err != nil {
		return Response{}, c.wrapTimeout(req.Verb, err)
	}
	if resp.Status == "ERR" {
		return resp, fmt.Errorf("ipc: %s: %s", req.Verb, resp.Err)
	}
	return resp, nil
}

func (c *Client) wrapTimeout(verb string, err error) error {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("ipc: %s: no response within %v (daemon hung or stopped?): %w", verb, c.timeout, err)
	}
	return err
}

// Failover retry backoff bounds. Exponential growth from the base,
// clamped per try, with full ±50% jitter — N workers bounced by the
// same node failover must not thundering-herd the router in lockstep —
// and a max-elapsed budget so a daemon that can never re-place the
// session fails the call instead of hanging the client.
const (
	failoverBase       = time.Millisecond
	failoverMaxDelay   = 32 * time.Millisecond
	failoverMaxElapsed = 2 * time.Second
)

// failoverBackoff yields the sleep before each failover retry. Not
// goroutine-safe; each retry loop owns one.
type failoverBackoff struct {
	attempt int
	slept   time.Duration
	rnd     func() float64 // [0,1); nil = math/rand (tests inject)
}

// next returns the next sleep and whether the elapsed budget allows
// another retry. Every returned delay lies in
// [failoverBase/2, 1.5*failoverMaxDelay) and the sum of all returned
// delays never exceeds failoverMaxElapsed.
func (b *failoverBackoff) next() (time.Duration, bool) {
	if b.slept >= failoverMaxElapsed {
		return 0, false
	}
	d := failoverBase << b.attempt
	if d <= 0 || d > failoverMaxDelay {
		d = failoverMaxDelay
	}
	r := b.rnd
	if r == nil {
		r = rand.Float64
	}
	d = time.Duration(float64(d) * (0.5 + r())) // jitter: [0.5x, 1.5x)
	if d < 1 {
		d = 1
	}
	if remaining := failoverMaxElapsed - b.slept; d > remaining {
		d = remaining
	}
	b.attempt++
	b.slept += d
	return d, true
}

// retryFailover runs fn, re-issuing it while the daemon answers with a
// retryable error — the session is being live-migrated off a faulted
// shard or a draining node, or the verb raced the move. The first retry
// usually lands on the session's new home (daemons migrate on touch;
// the federation router re-places on the next verb); the jittered,
// budgeted backoff covers background evacuations still in flight. All
// verbs are safe to re-issue: SND restages the same bytes, STR re-runs
// a deterministic cycle, STP/RCV only observe.
func retryFailover(fn func() error) error {
	var bo failoverBackoff
	for {
		err := fn()
		if err == nil || !gvm.IsRetryable(err.Error()) {
			return err
		}
		d, ok := bo.next()
		if !ok {
			return err
		}
		time.Sleep(d)
	}
}

// Session is one VGPU session over the wire: the client-side handle of
// the paper's API layer for real processes. Its method set mirrors
// vgpu.VGPU; payload movement is delegated to the session's data plane.
type Session struct {
	c        *Client
	id       int
	plane    transport.DataPlane
	inBytes  int64
	outBytes int64
	// ring is set when the session negotiated the ring plane: every verb
	// then travels as a record through the session's shared-memory rings
	// and never touches the socket. ringMu serializes trips (the rings
	// are strictly SPSC); ringReqs is the retained BAT sub-request
	// backing that keeps a pipelined ring cycle allocation-free.
	ring     *transport.RingPlane
	ringMu   sync.Mutex
	ringReqs [4]Request
	// VirtualMS is the simulated-GPU clock at the last response.
	VirtualMS float64
}

// SessionOptions are the optional REQ parameters a client may attach
// when opening a session.
type SessionOptions struct {
	// MemQuota is a hard per-session device-memory cap in bytes, enforced
	// daemon-side at every allocation. 0 = unlimited. Daemons predating
	// the field ignore it (the wire encoding is backward compatible).
	MemQuota int64
	// Priority orders eviction under memory pressure: lower-priority
	// sessions are evicted first. 0 is the default class.
	Priority int
	// Weight is the session's weighted-fair share of SM compute time and
	// its preemption precedence. 0 derives the weight from Priority;
	// 1 everywhere reproduces the unweighted scheduler. Daemons predating
	// the field ignore it (the wire encoding is backward compatible).
	Weight int
}

// Request opens a VGPU session for the given workload reference. A
// client that asked for the ring plane against a daemon without ring
// support (the REQ fails with "unknown data plane") renegotiates the
// connection down to the shm plane automatically, so ring:// addresses
// degrade to the classic unix+shm path instead of erroring.
func (c *Client) Request(ref workloads.Ref, rank int) (*Session, error) {
	return c.RequestOptions(ref, rank, SessionOptions{})
}

// RequestOptions opens a VGPU session with explicit session options.
func (c *Client) RequestOptions(ref workloads.Ref, rank int, o SessionOptions) (*Session, error) {
	c.mu.Lock()
	reqPlane, timeout := c.plane, c.timeout
	c.mu.Unlock()
	req := Request{Verb: "REQ", Ref: &ref, Rank: rank, Plane: reqPlane,
		MemQuota: o.MemQuota, Priority: o.Priority, Weight: o.Weight}
	resp, err := c.roundTrip(req)
	if err != nil {
		if reqPlane == transport.PlaneRing && strings.Contains(err.Error(), "unknown data plane") {
			c.mu.Lock()
			c.plane = transport.PlaneShm
			c.mu.Unlock()
			req.Plane = transport.PlaneShm
			resp, err = c.roundTrip(req)
		}
		if err != nil {
			return nil, err
		}
	}
	plane, err := transport.OpenPlane(c.shmDir, resp)
	if err != nil {
		return nil, err
	}
	s := &Session{
		c:        c,
		id:       resp.Session,
		plane:    plane,
		inBytes:  resp.InBytes,
		outBytes: resp.OutBytes,
	}
	if rp, ok := plane.(*transport.RingPlane); ok {
		rp.SetTimeout(timeout)
		s.ring = rp
	}
	return s, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() int { return s.id }

// InBytes returns the input staging size.
func (s *Session) InBytes() int64 { return s.inBytes }

// OutBytes returns the output staging size.
func (s *Session) OutBytes() int64 { return s.outBytes }

// Plane returns the data plane kind the session negotiated.
func (s *Session) Plane() string { return s.plane.Kind() }

func (s *Session) verb(verb string) error {
	return retryFailover(func() error {
		if s.ring != nil {
			_, err := s.ringTrip(Request{Verb: verb, Session: s.id})
			return err
		}
		resp, err := s.c.roundTrip(Request{Verb: verb, Session: s.id})
		if err != nil {
			return err
		}
		s.VirtualMS = resp.VirtualMS
		return nil
	})
}

// ringTrip performs one ring round trip under the session's trip lock.
// The returned response is owned by the ring plane and valid until the
// next trip.
func (s *Session) ringTrip(req Request) (*transport.Response, error) {
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	resp, err := s.ring.Trip(req)
	if err != nil {
		return nil, err
	}
	if resp.Status == "ERR" {
		return nil, fmt.Errorf("ipc: %s: %s", req.Verb, resp.Err)
	}
	s.VirtualMS = resp.VirtualMS
	return resp, nil
}

// RingTrips returns how many ring round trips the session has made (0
// for socket sessions); tests use it to assert verbs stayed off the
// socket.
func (s *Session) RingTrips() int64 {
	if s.ring == nil {
		return 0
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	return s.ring.Trips()
}

// SendInput stages the input through the data plane and issues SND.
// data may be nil against a timing-only daemon.
func (s *Session) SendInput(data []byte) error {
	if data != nil && int64(len(data)) != s.inBytes {
		return fmt.Errorf("ipc: input is %d bytes, session stages %d", len(data), s.inBytes)
	}
	req := Request{Verb: "SND", Session: s.id}
	if data != nil {
		if err := s.plane.StageIn(data, &req); err != nil {
			return err
		}
	}
	// The staged bytes survive a retry: the plane (or req.Data for the
	// inline plane) still holds them, and the daemon restages from
	// scratch on each attempt.
	return retryFailover(func() error {
		if s.ring != nil {
			_, err := s.ringTrip(req)
			return err
		}
		resp, err := s.c.roundTrip(req)
		if err != nil {
			return err
		}
		s.VirtualMS = resp.VirtualMS
		return nil
	})
}

// Start issues STR; it returns once the daemon's barrier has flushed all
// parties' streams.
func (s *Session) Start() error { return s.verb("STR") }

// Wait issues STP until completion. Because the daemon drains virtual
// time after each flush, a single STP normally suffices; WAIT responses
// back off in real time.
func (s *Session) Wait() error {
	if s.ring != nil {
		// Ring STP is blocking-style: the daemon acks once the stream
		// completes, so a single trip suffices and nothing ever polls.
		return retryFailover(func() error {
			resp, err := s.ringTrip(Request{Verb: "STP", Session: s.id})
			if err != nil {
				return err
			}
			if resp.Status != "ACK" {
				return errors.New("ipc: unexpected STP status " + resp.Status)
			}
			return nil
		})
	}
	delay := time.Millisecond
	for {
		var resp Response
		err := retryFailover(func() error {
			r, err := s.c.roundTrip(Request{Verb: "STP", Session: s.id})
			if err != nil {
				return err
			}
			resp = r
			return nil
		})
		if err != nil {
			return err
		}
		s.VirtualMS = resp.VirtualMS
		switch resp.Status {
		case "ACK":
			return nil
		case "WAIT":
			time.Sleep(delay)
			if delay < 50*time.Millisecond {
				delay *= 2
			}
		default:
			return errors.New("ipc: unexpected STP status " + resp.Status)
		}
	}
}

// Receive issues RCV and collects the results through the data plane.
func (s *Session) Receive(buf []byte) error {
	if buf != nil && int64(len(buf)) != s.outBytes {
		return fmt.Errorf("ipc: output buffer is %d bytes, session stages %d", len(buf), s.outBytes)
	}
	if s.ring != nil {
		return retryFailover(func() error {
			resp, err := s.ringTrip(Request{Verb: "RCV", Session: s.id})
			if err != nil {
				return err
			}
			return s.plane.CollectOut(buf, resp)
		})
	}
	var resp Response
	if err := retryFailover(func() error {
		r, err := s.c.roundTrip(Request{Verb: "RCV", Session: s.id})
		if err != nil {
			return err
		}
		resp = r
		return nil
	}); err != nil {
		return err
	}
	s.VirtualMS = resp.VirtualMS
	return s.plane.CollectOut(buf, &resp)
}

// Suspend issues SUS: the daemon evacuates the session's device arenas
// into a host snapshot and frees its device memory. The session stays
// alive (and keeps its reservation); Resume restores it.
func (s *Session) Suspend() error { return s.verb("SUS") }

// Resume issues RES, restoring a suspended session's device state.
// Sessions the daemon evicted under memory pressure restore themselves
// transparently on their next verb; explicit Resume is only needed
// after an explicit Suspend.
func (s *Session) Resume() error { return s.verb("RES") }

// Release issues RLS and detaches the data plane.
func (s *Session) Release() error {
	err := s.verb("RLS")
	if cerr := s.plane.Close(); err == nil {
		err = cerr
	}
	return err
}

// Do sends a batch of verbs as one BAT frame — one daemon round trip —
// and returns the per-verb responses in order. The daemon stops at the
// first failing verb; later responses report themselves skipped. Each
// session may run at most one cycle (SND<STR<STP<RCV<RLS, each at most
// once, in order) per batch.
func (c *Client) Do(reqs []Request) ([]Response, error) {
	resp, err := c.roundTrip(Request{Verb: "BAT", Batch: reqs})
	if err != nil {
		return nil, err
	}
	if len(resp.Batch) != len(reqs) {
		return nil, fmt.Errorf("ipc: BAT returned %d responses for %d requests", len(resp.Batch), len(reqs))
	}
	return resp.Batch, nil
}

// RunCycle performs one full cycle: send, start, wait, receive. By
// default the four verbs travel pipelined in one BAT round trip; against
// a daemon that predates pipelining (or with Options.NoPipeline) they
// fall back to four serial round trips.
func (s *Session) RunCycle(in, out []byte) error {
	if in != nil && int64(len(in)) != s.inBytes {
		return fmt.Errorf("ipc: input is %d bytes, session stages %d", len(in), s.inBytes)
	}
	if out != nil && int64(len(out)) != s.outBytes {
		return fmt.Errorf("ipc: output buffer is %d bytes, session stages %d", len(out), s.outBytes)
	}
	s.c.mu.Lock()
	pipelined := !s.c.noPipeline
	s.c.mu.Unlock()
	if !pipelined {
		return s.runCycleSerial(in, out)
	}
	if s.ring != nil {
		return s.runCycleRing(in, out)
	}

	reqs := []Request{
		{Verb: "SND", Session: s.id},
		{Verb: "STR", Session: s.id},
		{Verb: "STP", Session: s.id},
		{Verb: "RCV", Session: s.id},
	}
	if in != nil {
		if err := s.plane.StageIn(in, &reqs[0]); err != nil {
			return err
		}
	}
	// A failover mid-batch fails one step with a retryable error (later
	// steps report skipped); re-issuing the whole cycle is safe — SND
	// restages the same bytes and the cycle is deterministic.
	var resps []Response
	err := retryFailover(func() error {
		rs, err := s.c.Do(reqs)
		if err != nil {
			return err
		}
		for i, r := range rs {
			if r.Status != "ACK" {
				return fmt.Errorf("ipc: %s (pipelined): %s", reqs[i].Verb, r.Err)
			}
		}
		resps = rs
		return nil
	})
	if err != nil {
		if strings.Contains(err.Error(), "unknown verb") {
			// Pre-pipelining daemon: remember and fall back to serial.
			s.c.mu.Lock()
			s.c.noPipeline = true
			s.c.mu.Unlock()
			return s.runCycleSerial(in, out)
		}
		return err
	}
	s.VirtualMS = resps[3].VirtualMS
	return s.plane.CollectOut(out, &resps[3])
}

// runCycleRing is the warm path the ring plane exists for: one BAT
// record through the submission ring, one response record back — zero
// syscalls, zero allocations, and the only byte movement is the
// caller's own staging copies into and out of the mapped segment.
func (s *Session) runCycleRing(in, out []byte) error {
	if in != nil {
		if err := s.plane.StageIn(in, nil); err != nil {
			return err
		}
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	s.ringReqs[0] = Request{Verb: "SND", Session: s.id}
	s.ringReqs[1] = Request{Verb: "STR", Session: s.id}
	s.ringReqs[2] = Request{Verb: "STP", Session: s.id}
	s.ringReqs[3] = Request{Verb: "RCV", Session: s.id}
	// A failover aborts the in-flight frame with a retryable error; the
	// re-issued frame queues in the submission ring and the adopting
	// shard's sweep serves it once the session lands there.
	var resp *transport.Response
	err := retryFailover(func() error {
		r, err := s.ring.Trip(Request{Verb: "BAT", Session: s.id, Batch: s.ringReqs[:]})
		if err != nil {
			return err
		}
		if r.Status != "ACK" {
			return fmt.Errorf("ipc: BAT: %s", r.Err)
		}
		if len(r.Batch) != len(s.ringReqs) {
			return fmt.Errorf("ipc: ring BAT returned %d responses for %d requests", len(r.Batch), len(s.ringReqs))
		}
		for i := range r.Batch {
			if r.Batch[i].Status != "ACK" {
				return fmt.Errorf("ipc: %s (pipelined): %s", s.ringReqs[i].Verb, r.Batch[i].Err)
			}
		}
		resp = r
		return nil
	})
	if err != nil {
		return err
	}
	s.VirtualMS = resp.Batch[3].VirtualMS
	return s.plane.CollectOut(out, &resp.Batch[3])
}

func (s *Session) runCycleSerial(in, out []byte) error {
	if err := s.SendInput(in); err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if err := s.Wait(); err != nil {
		return err
	}
	return s.Receive(out)
}
