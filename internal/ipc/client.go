package ipc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gpuvirt/internal/shm"
	"gpuvirt/internal/workloads"
)

// Client is a real-process connection to a gvmd daemon.
type Client struct {
	mu     sync.Mutex
	conn   *Conn
	shmDir string
}

// Dial connects to the daemon at the given Unix socket path using the
// binary wire codec. shmDir must match the daemon's data-plane directory
// ("" = /dev/shm).
func Dial(socket, shmDir string) (*Client, error) {
	return dial(socket, shmDir, NewConn)
}

// DialJSON connects using the JSON debugging codec; the daemon must be
// running with JSONWire set.
func DialJSON(socket, shmDir string) (*Client, error) {
	return dial(socket, shmDir, NewConnJSON)
}

func dial(socket, shmDir string, wrap func(net.Conn) *Conn) (*Client, error) {
	nc, err := net.Dial("unix", socket)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s: %w", socket, err)
	}
	return &Client{conn: wrap(nc), shmDir: shmDir}, nil
}

// Close drops the connection; the daemon releases any sessions left open.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.conn.WriteRequest(req); err != nil {
		return Response{}, err
	}
	resp, err := c.conn.ReadResponse()
	if err != nil {
		return Response{}, err
	}
	if resp.Status == "ERR" {
		return resp, fmt.Errorf("ipc: %s: %s", req.Verb, resp.Err)
	}
	return resp, nil
}

// Session is one VGPU session over the wire: the client-side handle of
// the paper's API layer for real processes.
type Session struct {
	c        *Client
	id       int
	seg      shm.Segment
	inBytes  int64
	outBytes int64
	// VirtualMS is the simulated-GPU clock at the last response.
	VirtualMS float64
}

// Request opens a VGPU session for the given workload reference.
func (c *Client) Request(ref workloads.Ref, rank int) (*Session, error) {
	resp, err := c.roundTrip(Request{Verb: "REQ", Ref: &ref, Rank: rank})
	if err != nil {
		return nil, err
	}
	seg, err := shm.OpenFile(c.shmDir, resp.Segment)
	if err != nil {
		return nil, fmt.Errorf("ipc: attach data plane: %w", err)
	}
	return &Session{
		c:        c,
		id:       resp.Session,
		seg:      seg,
		inBytes:  resp.InBytes,
		outBytes: resp.OutBytes,
	}, nil
}

// ID returns the daemon-assigned session id.
func (s *Session) ID() int { return s.id }

// InBytes returns the input staging size.
func (s *Session) InBytes() int64 { return s.inBytes }

// OutBytes returns the output staging size.
func (s *Session) OutBytes() int64 { return s.outBytes }

func (s *Session) verb(verb string) error {
	resp, err := s.c.roundTrip(Request{Verb: verb, Session: s.id})
	if err != nil {
		return err
	}
	s.VirtualMS = resp.VirtualMS
	return nil
}

// SendInput writes the input into the shared segment and issues SND.
// data may be nil against a timing-only daemon.
func (s *Session) SendInput(data []byte) error {
	if data != nil {
		if int64(len(data)) != s.inBytes {
			return fmt.Errorf("ipc: input is %d bytes, session stages %d", len(data), s.inBytes)
		}
		if err := s.seg.WriteAt(data, 0); err != nil {
			return err
		}
	}
	return s.verb("SND")
}

// Start issues STR; it returns once the daemon's barrier has flushed all
// parties' streams.
func (s *Session) Start() error { return s.verb("STR") }

// Wait issues STP until completion. Because the daemon drains virtual
// time after each flush, a single STP normally suffices; WAIT responses
// back off in real time.
func (s *Session) Wait() error {
	delay := time.Millisecond
	for {
		resp, err := s.c.roundTrip(Request{Verb: "STP", Session: s.id})
		if err != nil {
			return err
		}
		s.VirtualMS = resp.VirtualMS
		switch resp.Status {
		case "ACK":
			return nil
		case "WAIT":
			time.Sleep(delay)
			if delay < 50*time.Millisecond {
				delay *= 2
			}
		default:
			return errors.New("ipc: unexpected STP status " + resp.Status)
		}
	}
}

// Receive issues RCV and reads the results from the shared segment.
func (s *Session) Receive(buf []byte) error {
	if err := s.verb("RCV"); err != nil {
		return err
	}
	if buf != nil {
		if int64(len(buf)) != s.outBytes {
			return fmt.Errorf("ipc: output buffer is %d bytes, session stages %d", len(buf), s.outBytes)
		}
		return s.seg.ReadAt(buf, s.inBytes)
	}
	return nil
}

// Release issues RLS and detaches the data plane.
func (s *Session) Release() error {
	err := s.verb("RLS")
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	return err
}

// RunCycle performs one full cycle: send, start, wait, receive.
func (s *Session) RunCycle(in, out []byte) error {
	if err := s.SendInput(in); err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if err := s.Wait(); err != nil {
		return err
	}
	return s.Receive(out)
}
