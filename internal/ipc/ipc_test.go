package ipc

import (
	"os"
	"sync"
	"testing"

	"gpuvirt/internal/cuda"
	"time"

	"gpuvirt/internal/sim"
	"gpuvirt/internal/workloads"
)

func tempSocket(t *testing.T) string {
	t.Helper()
	f, err := os.CreateTemp("/tmp", "gvmd-*.sock")
	if err != nil {
		t.Fatal(err)
	}
	path := f.Name()
	f.Close()
	os.Remove(path)
	t.Cleanup(func() { os.Remove(path) })
	return path
}

func startServer(t *testing.T, parties int, functional bool) *Server {
	t.Helper()
	dir := t.TempDir()
	s, err := NewServer(ServerConfig{
		Socket:     tempSocket(t),
		Parties:    parties,
		Functional: functional,
		ShmDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSingleClientFunctionalVecAdd(t *testing.T) {
	s := startServer(t, 1, true)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 2048
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess.InBytes() != 2*n*4 || sess.OutBytes() != n*4 {
		t.Fatalf("sizes = %d/%d", sess.InBytes(), sess.OutBytes())
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i)
		in[n+i] = 10
	}
	out := make([]byte, n*4)
	if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
		t.Fatal(err)
	}
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(i)+10 {
			t.Fatalf("out[%d] = %g", i, res[i])
		}
	}
	if sess.VirtualMS <= 0 {
		t.Fatal("no virtual time reported")
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

type byteMem []byte

func (b byteMem) Bytes(p cuda.DevPtr, n int64) []byte { return b[p : int64(p)+n] }

func TestBarrierAcrossRealConnections(t *testing.T) {
	s := startServer(t, 3, false)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), s.cfg.ShmDir)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			sess, err := c.Request(workloads.Ref{Name: "ep", Params: map[string]int{"m": 16, "grid": 4}}, i)
			if err != nil {
				errs[i] = err
				return
			}
			if err := sess.RunCycle(nil, nil); err != nil {
				errs[i] = err
				return
			}
			errs[i] = sess.Release()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	s := startServer(t, 1, false)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Request(workloads.Ref{Name: "nope"}, 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestProtocolMisuse(t *testing.T) {
	s := startServer(t, 1, false)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// STP before STR is rejected rather than hanging the daemon.
	if err := sess.verb("STP"); err == nil {
		t.Fatal("STP before STR accepted")
	}
	// Unknown session.
	if _, err := c.roundTrip(Request{Verb: "SND", Session: 9999}); err == nil {
		t.Fatal("unknown session accepted")
	}
	// Unknown verb.
	if _, err := c.roundTrip(Request{Verb: "BOGUS", Session: sess.ID()}); err == nil {
		t.Fatal("unknown verb accepted")
	}
}

func TestDisconnectCleansUpSessions(t *testing.T) {
	s := startServer(t, 1, false)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}, 0); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The daemon releases the abandoned session; the manager ends with
	// zero open sessions. Poll briefly: cleanup is asynchronous.
	deadline := 400
	for ; deadline > 0; deadline-- {
		open := -1
		if !s.submitProbe(0, func() { open = s.node.Shard(0).Mgr.OpenSessions() }) {
			t.Fatal("server closed early")
		}
		if open == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("abandoned session never released")
}

// submitProbe runs fn on one shard's owner goroutine (test helper): it
// synchronizes with that shard's pending owner work before reading.
func (s *Server) submitProbe(shard int, fn func()) bool {
	return s.submit(shard, func(p *sim.Proc) { fn() })
}

func TestMultipleCyclesOneSession(t *testing.T) {
	s := startServer(t, 1, true)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 512
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 2*n)
	out := make([]byte, n*4)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < n; i++ {
			in[i] = float32(i * cycle)
			in[n+i] = 1
		}
		if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		res := cuda.Float32s(byteMem(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != float32(i*cycle)+1 {
				t.Fatalf("cycle %d: out[%d] = %g", cycle, i, res[i])
			}
		}
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.FromRef(workloads.Ref{Name: name})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Spec == nil {
			t.Errorf("%s: nil spec", name)
		}
	}
	if _, err := workloads.FromRef(workloads.Ref{Name: "bogus"}); err == nil {
		t.Error("bogus ref accepted")
	}
}

func TestDaemonBarrierTimeoutUnwedges(t *testing.T) {
	// Parties=3 but only two clients ever show up: with a barrier
	// timeout the daemon flushes the partial batch and both complete.
	dir := t.TempDir()
	s, err := NewServer(ServerConfig{
		Socket:         tempSocket(t),
		Parties:        3,
		ShmDir:         dir,
		BarrierTimeout: 100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), dir)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			sess, err := c.Request(workloads.Ref{Name: "ep", Params: map[string]int{"m": 12, "grid": 4}}, i)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = sess.RunCycle(nil, nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestDaemonMultiGPU(t *testing.T) {
	// Barriers are per shard: with 2 shards at Parties=2 each,
	// least-sessions placement puts 2 of the 4 clients on each shard and
	// each shard's barrier fills independently.
	dir := t.TempDir()
	s, err := NewServer(ServerConfig{
		Socket:  tempSocket(t),
		Parties: 2,
		ShmDir:  dir,
		GPUs:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), dir)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 4096}}, i)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = sess.RunCycle(nil, nil)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := s.node.NumShards(); got != 2 {
		t.Fatalf("daemon owns %d shards, want 2", got)
	}
	for i := 0; i < 2; i++ {
		mgr := s.node.Shard(i).Mgr
		if got := mgr.SessionsOpened(); got != 2 {
			t.Errorf("gpu %d opened %d sessions, want 2", i, got)
		}
		if got := mgr.Flushes(); got != 1 {
			t.Errorf("gpu %d flushed %d batches, want 1", i, got)
		}
	}
}
