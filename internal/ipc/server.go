package ipc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/node"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
)

// ServerConfig configures a daemon.
type ServerConfig struct {
	// Socket is the legacy single-unix-socket form; it is equivalent to
	// prepending "unix://<Socket>" to Listen.
	Socket string
	// Listen is the set of transport addresses to serve:
	// "unix:///tmp/gvmd.sock", "tcp://:7070", "inproc://name". A daemon
	// may listen on several at once; sessions from every transport share
	// the one manager (and its STR barrier).
	Listen     []string
	Arch       fermi.Arch // zero value: Tesla C2070
	Parties    int        // STR barrier width (default 1)
	Functional bool       // carry real data end to end
	ShmDir     string     // shm data-plane directory ("" = /dev/shm)
	// ExecWorkers sizes the functional kernel-execution worker pool
	// (gpusim.Config.ExecWorkers): 0 = GOMAXPROCS, 1 = serial.
	ExecWorkers int
	// PreemptRatio is each GPU's wave-boundary preemption threshold
	// (gpusim.Config.PreemptRatio): a pending kernel preempts an active
	// one iff its weight exceeds ratio x the active kernel's weight.
	// 0 = default 1.0; negative disables preemption.
	PreemptRatio float64
	// GPUs is the number of per-GPU manager shards the daemon runs
	// (default 1). Each shard is an independent sim.Env + device +
	// gvm.Manager with its own owner goroutine, so shards serve verbs in
	// parallel; Parties is the STR barrier width of EACH shard.
	GPUs int
	// Placement names the policy assigning new sessions to shards (see
	// node.PolicyNames; default least-sessions).
	Placement string
	// JSONWire selects the newline-delimited JSON control-plane codec
	// instead of the default binary frames — a debugging aid (frames are
	// readable with socat); clients must dial with DialJSON. Clients
	// announce their codec in a one-byte preamble, so a mismatch is
	// rejected with a clear error instead of a frame-decode failure.
	JSONWire bool
	// MaxSessionBytes caps one session's staging footprint
	// (InBytes+OutBytes); REQ beyond the limit is rejected with a clear
	// error. 0 = no per-session limit.
	MaxSessionBytes int64
	// Overcommit is the quota-admission factor (gvmd -overcommit): each
	// GPU admits sessions while their reserved bytes stay within
	// Overcommit x its device capacity, relying on the managers' eviction
	// engine to page idle sessions to host snapshots. 0 or 1 = classic
	// fit-or-reject admission.
	Overcommit float64
	// BarrierTimeout flushes a partial STR batch after this much virtual
	// time, so a crashed client cannot wedge the daemon (0 = strict).
	// Caveat: the daemon drains virtual time eagerly after every request,
	// so virtual time races far ahead of wall time and an armed timeout
	// fires during the next drain — with a timeout set, barrier batching
	// effectively degrades to per-request flushing. Use it as a liveness
	// guard, not as a grace period.
	BarrierTimeout sim.Duration
	Logger         *log.Logger
	// FaultPlan, when non-nil, installs seeded fault injectors on the
	// shards' launch paths (gvmd -fault-inject). Injected faults escalate
	// shard health; Unhealthy shards are evacuated automatically by live
	// session migration.
	FaultPlan *gpusim.FaultPlan
	// Metrics is the registry shared by the manager, the dispatcher and
	// the server's own connection instruments; a /metrics scrape of it
	// covers the whole daemon path. nil creates one (Server.Metrics()).
	Metrics *metrics.Registry
	// Slog receives structured logging: one Debug line per verb served
	// and one Info line per barrier flush. nil disables it.
	Slog *slog.Logger
}

// Server is the gvmd daemon: it owns a node of per-GPU manager shards
// and serves the six-verb protocol to real OS processes over any set of
// transports (unix, tcp, inproc). All verb handling lives in the shared
// transport.Dispatcher; each shard's simulation work runs on that
// shard's own owner goroutine — connection handlers submit closures to
// the owning shard and wait, so the deterministic single-threaded
// discipline of each simulator is preserved under concurrent clients
// while distinct shards run in parallel.
type Server struct {
	cfg ServerConfig
	lns []transport.Listener

	work []chan workItem // one owner queue per shard
	quit chan struct{}

	node  *node.Node
	disp  *transport.Dispatcher
	rings *transport.RingHost // non-nil when a ring:// listener is bound

	met serverMetrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// serverMetrics are the server's own connection-layer instruments; the
// managers' and dispatcher's series live in the same shared registry.
type serverMetrics struct {
	connections *metrics.Gauge       // live client connections
	disconnects *metrics.Counter     // connections that have ended
	frameErrors *metrics.Counter     // bad preambles, codec mismatches, non-EOF read errors
	queueWaitNS []*metrics.Histogram // per shard: wall ns a submit waited for its owner goroutine
}

type workItem struct {
	fn       func(p *sim.Proc)
	done     chan struct{}
	enqueued time.Time
}

// NewServer creates and starts a daemon listening on every address in
// cfg.Listen (plus cfg.Socket, if set).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Arch.SMs == 0 {
		cfg.Arch = fermi.TeslaC2070()
	}
	if cfg.Parties == 0 {
		cfg.Parties = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	addrs := cfg.Listen
	if cfg.Socket != "" {
		addrs = append([]string{"unix://" + cfg.Socket}, addrs...)
	}
	if len(addrs) == 0 {
		return nil, errors.New("ipc: no listen address (set Socket or Listen)")
	}
	var lns []transport.Listener
	closeAll := func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
	for _, addr := range addrs {
		ln, err := transport.ListenAddr(addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("ipc: listen %s: %w", addr, err)
		}
		lns = append(lns, ln)
	}
	if cfg.GPUs == 0 {
		cfg.GPUs = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		lns:  lns,
		quit: make(chan struct{}),
		met: serverMetrics{
			connections: cfg.Metrics.Gauge("ipc_connections", "live client connections"),
			disconnects: cfg.Metrics.Counter("ipc_disconnects_total", "client connections ended"),
			frameErrors: cfg.Metrics.Counter("ipc_frame_errors_total", "bad preambles, codec mismatches and non-EOF frame read errors"),
		},
	}
	n, err := node.New(node.Config{
		GPUs:            cfg.GPUs,
		Arch:            cfg.Arch,
		Functional:      cfg.Functional,
		ExecWorkers:     cfg.ExecWorkers,
		PreemptRatio:    cfg.PreemptRatio,
		Parties:         cfg.Parties,
		Placement:       cfg.Placement,
		MaxSessionBytes: cfg.MaxSessionBytes,
		Overcommit:      cfg.Overcommit,
		BarrierTimeout:  cfg.BarrierTimeout,
		FaultPlan:       cfg.FaultPlan,
		Metrics:         cfg.Metrics,
		Log:             cfg.Slog,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	s.node = n
	if err := n.Start(); err != nil { // bring every shard's manager up
		closeAll()
		return nil, err
	}
	// A ring:// listener turns the ring control plane on: the daemon lays
	// a doorbell segment out and runs each shard owner as a sweep loop
	// instead of a blocking queue receiver.
	for _, ln := range lns {
		if ln.Scheme() == "ring" {
			rh, rerr := transport.NewRingHost(transport.RingHostConfig{
				ShmDir:  cfg.ShmDir,
				Shards:  n.NumShards(),
				Metrics: cfg.Metrics,
			})
			if rerr != nil {
				closeAll()
				return nil, rerr
			}
			s.rings = rh
			break
		}
	}
	s.disp = transport.NewDispatcher(transport.DispatcherConfig{
		Node:       n,
		Functional: cfg.Functional,
		ShmDir:     cfg.ShmDir,
		Metrics:    cfg.Metrics,
		Log:        cfg.Slog,
		Rings:      s.rings,
	})
	s.work = make([]chan workItem, n.NumShards())
	s.met.queueWaitNS = make([]*metrics.Histogram, n.NumShards())
	for i := range s.work {
		s.work[i] = make(chan workItem)
		s.met.queueWaitNS[i] = cfg.Metrics.Histogram("gvmd_owner_queue_wait_ns",
			"wall ns a request waited for the shard's simulation-owner goroutine",
			metrics.L("gpu", strconv.Itoa(i)))
	}
	// Failover: a shard escalating to a state that demands evacuation
	// (Unhealthy after a hang/fatal fault, or Draining) hands every one
	// of its sessions to the dispatcher's live-migration engine. The
	// handler fires on the shard's own goroutine mid-escalation, so the
	// evacuation — which submits owner work — runs in the background.
	n.SetFaultHandler(func(shard int, h node.HealthState) {
		if !h.Evacuate() {
			return
		}
		go s.disp.EvacuateShard(shard, s.submit)
	})
	s.wg.Add(n.NumShards() + len(lns))
	for i := range s.work {
		go s.owner(i)
	}
	if s.rings != nil {
		s.wg.Add(n.NumShards())
		for i := 0; i < n.NumShards(); i++ {
			go s.waker(s.rings.Shard(i))
		}
	}
	for _, ln := range lns {
		go s.accept(ln)
	}
	return s, nil
}

// Metrics returns the daemon's shared telemetry registry (every shard's
// manager, the dispatcher, the node and connection-layer series).
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Node returns the daemon's shard layer: per-GPU managers plus the
// placement policy. Tests and stats consumers address shards explicitly
// (there is no "the device" on a multi-GPU daemon).
func (s *Server) Node() *node.Node { return s.node }

// Drain marks a shard Draining — no new placements land on it — and
// live-migrates its sessions to the remaining healthy shards. gvmd
// triggers it on SIGUSR1 for graceful maintenance; already-Unhealthy
// shards keep their state (health only escalates).
func (s *Server) Drain(shard int) error {
	if shard < 0 || shard >= s.node.NumShards() {
		return fmt.Errorf("ipc: drain: no such gpu %d", shard)
	}
	s.node.Drain(shard)
	go s.disp.EvacuateShard(shard, s.submit)
	return nil
}

// DrainAll gracefully decommissions the whole node: every shard stops
// taking placements at once. gvmd triggers it on SIGUSR1. Intra-node
// failover has nowhere to go, so sessions keep serving in place; a
// fronting gvmfed sees the node advertise itself unplaceable and
// live-migrates the sessions to other nodes.
func (s *Server) DrainAll() {
	s.node.DrainAll()
}

// Addr returns the first listener's address in URL form (Dial accepts
// it directly).
func (s *Server) Addr() string { return s.lns[0].Addr() }

// Addrs returns every bound listener address in URL form, in the order
// configured — useful with tcp://...:0, where the OS picks the port.
func (s *Server) Addrs() []string {
	addrs := make([]string, len(s.lns))
	for i, ln := range s.lns {
		addrs[i] = ln.Addr()
	}
	return addrs
}

// Close shuts the daemon down, releasing every live session so device
// memory and file-backed shm segments are reclaimed (unix listeners
// unlink their socket files as they close).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var err error
	for _, ln := range s.lns {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	// Tear down sessions abandoned by still-connected clients before the
	// owners stop, so every shard's segments and device memory are freed.
	s.disp.ReleaseAll(s.submit)
	// Signal shutdown instead of closing the work channels: connection
	// handlers (including deferred session cleanup) may still be trying
	// to submit, and a send racing a close is a data race.
	close(s.quit)
	if s.rings != nil {
		// Kick every parked owner loop and waker out of its futex wait so
		// shutdown does not ride out a park slice.
		s.rings.RingAll()
	}
	s.wg.Wait()
	if s.rings != nil {
		// The owner loops have stopped; reclaim every remaining session
		// segment and the doorbell segment.
		if rerr := s.rings.Close(); err == nil {
			err = rerr
		}
	}
	return err
}

// owner executes closures submitted to one shard on that shard's
// simulation processes, one batch at a time, preserving the simulator's
// single-threaded discipline per shard (distinct shards run in
// parallel).
func (s *Server) owner(shard int) {
	defer s.wg.Done()
	env := s.node.Shard(shard).Env
	if s.rings != nil {
		s.ringOwner(shard, env)
		return
	}
	for {
		var it workItem
		select {
		case <-s.quit:
			return
		case it = <-s.work[shard]:
		}
		s.met.queueWaitNS[shard].Observe(int64(time.Since(it.enqueued)))
		s.runItem(env, shard, it)
	}
}

// runItem executes one submitted closure on the shard's simulation and
// drains the virtual calendar it scheduled.
func (s *Server) runItem(env *sim.Env, shard int, it workItem) {
	env.Go("ipc-request", func(p *sim.Proc) {
		p.Daemonize() // may park at the STR barrier until peers arrive
		it.fn(p)
		close(it.done)
	})
	if err := env.Run(); err != nil {
		s.cfg.Logger.Printf("gvmd: gpu %d simulation error: %v", shard, err)
	}
}

// ringOwner is the shard owner loop of a ring daemon: instead of
// blocking on the work channel it alternates draining submitted work,
// sweeping the shard's session rings, and running the calendar, then
// spins briefly and finally parks on the shard doorbell. The futex wait
// itself runs on the shard's waker goroutine so the owner can keep
// select-ing on work submissions and shutdown while parked — clients
// ring the doorbell after every ring submission, so a parked owner
// wakes in one futex round trip while a busy owner never syscalls.
func (s *Server) ringOwner(shard int, env *sim.Env) {
	rs := s.rings.Shard(shard)
	door := rs.Door()
	const spinBudget = 128
	idle := 0
	for {
		progress := false
		for {
			var it workItem
			select {
			case it = <-s.work[shard]:
			case <-s.quit:
				return
			default:
			}
			if it.fn == nil {
				break
			}
			s.met.queueWaitNS[shard].Observe(int64(time.Since(it.enqueued)))
			s.runItem(env, shard, it)
			progress = true
		}
		if rs.Sweep() {
			progress = true
		}
		// Drain any calendar events the sweep scheduled (direct verbs
		// charge their virtual cost as calendar events and complete
		// through notifies fired during this drain).
		if err := env.Run(); err != nil {
			s.cfg.Logger.Printf("gvmd: gpu %d simulation error: %v", shard, err)
		}
		if progress {
			idle = 0
			continue
		}
		if idle++; idle < spinBudget {
			runtime.Gosched()
			continue
		}
		idle = 0
		// Arm the doorbell's sleep bit, then re-check: a submission
		// published before the bit was visible must not be slept past.
		armed := shm.DoorArm(door)
		if rs.Sweep() {
			shm.DoorDisarm(door)
			continue
		}
		select {
		case rs.ArmCh() <- armed:
		default:
			// The waker already holds (or is sleeping on) an armed value;
			// any doorbell ring still changes the word and wakes it.
		}
		select {
		case <-s.quit:
			return
		case it := <-s.work[shard]:
			shm.DoorDisarm(door)
			s.met.queueWaitNS[shard].Observe(int64(time.Since(it.enqueued)))
			s.runItem(env, shard, it)
		case <-rs.WakeCh():
			shm.DoorDisarm(door)
		}
	}
}

// waker is a shard's parking proxy: it performs the bounded futex waits
// on the shard doorbell so the owner loop stays responsive to channel
// work while parked, and nudges the owner when the doorbell rings.
func (s *Server) waker(rs *transport.RingShard) {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case armed := <-rs.ArmCh():
			shm.DoorSleep(rs.Door(), armed, 100*time.Millisecond)
			select {
			case rs.WakeCh() <- struct{}{}:
			default:
			}
		}
	}
}

// submit runs fn on a simulation process of the given shard and waits
// for it. It returns false if the server shut down before fn completed.
func (s *Server) submit(shard int, fn func(p *sim.Proc)) bool {
	item := workItem{fn: fn, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case s.work[shard] <- item:
	case <-s.quit:
		return false
	}
	select {
	case <-item.done:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) accept(ln transport.Listener) {
	defer s.wg.Done()
	tr, err := transport.Lookup(ln.Scheme())
	if err != nil {
		s.cfg.Logger.Printf("gvmd: %v", err)
		return
	}
	defaultPlane := tr.DefaultPlane()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Connection handlers are not tracked by wg: a handler may be
		// parked at the STR barrier waiting for peers, and Close must
		// not wait for it.
		go s.serveConn(conn, defaultPlane)
	}
}

func (s *Server) serveConn(nc net.Conn, defaultPlane string) {
	clientJSON, err := transport.ReadPreamble(nc)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.cfg.Logger.Printf("gvmd: preamble: %v", err)
			s.met.frameErrors.Inc()
		}
		nc.Close()
		return
	}
	if clientJSON != s.cfg.JSONWire {
		s.met.frameErrors.Inc()
		// Reject in the CLIENT's codec so the mismatch surfaces as a
		// clean error on its next read, not as frame garbage.
		msg := "ipc: codec mismatch: daemon speaks the binary wire (dial without DialJSON)"
		reply := transport.NewConnJSON(nc)
		if s.cfg.JSONWire {
			msg = "ipc: codec mismatch: daemon speaks JSON wire (dial with DialJSON)"
			reply = transport.NewConn(nc)
		}
		_ = reply.WriteResponse(transport.Response{Status: "ERR", Err: msg})
		nc.Close()
		return
	}
	conn := transport.NewConn(nc)
	if s.cfg.JSONWire {
		conn = transport.NewConnJSON(nc)
	}
	s.met.connections.Inc()
	defer func() {
		conn.Close()
		// This goroutine is the connection's only reader and its read
		// loop has exited, so the pooled read buffer can go back.
		conn.Release()
		s.met.connections.Dec()
		s.met.disconnects.Inc()
	}()
	cs := &transport.ConnState{DefaultPlane: defaultPlane}
	defer func() {
		// Release sessions the client abandoned, each on its own shard.
		s.disp.HangUp(cs, s.submit)
	}()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logger.Printf("gvmd: read: %v", err)
				s.met.frameErrors.Inc()
			}
			return
		}
		// The dispatcher runs payload staging here on the connection
		// goroutine and submits only each verb's owner-side phase, so the
		// owner's critical section stays O(scheduling), not O(bytes).
		resp, ok := s.disp.Serve(req, cs, s.submit)
		if !ok {
			return
		}
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}
