package ipc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"sync"
	"time"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
)

// ServerConfig configures a daemon.
type ServerConfig struct {
	// Socket is the legacy single-unix-socket form; it is equivalent to
	// prepending "unix://<Socket>" to Listen.
	Socket string
	// Listen is the set of transport addresses to serve:
	// "unix:///tmp/gvmd.sock", "tcp://:7070", "inproc://name". A daemon
	// may listen on several at once; sessions from every transport share
	// the one manager (and its STR barrier).
	Listen     []string
	Arch       fermi.Arch // zero value: Tesla C2070
	Parties    int        // STR barrier width (default 1)
	Functional bool       // carry real data end to end
	ShmDir     string     // shm data-plane directory ("" = /dev/shm)
	// ExecWorkers sizes the functional kernel-execution worker pool
	// (gpusim.Config.ExecWorkers): 0 = GOMAXPROCS, 1 = serial.
	ExecWorkers int
	// GPUs is the number of simulated devices the manager owns
	// (default 1; the multi-GPU extension).
	GPUs int
	// JSONWire selects the newline-delimited JSON control-plane codec
	// instead of the default binary frames — a debugging aid (frames are
	// readable with socat); clients must dial with DialJSON. Clients
	// announce their codec in a one-byte preamble, so a mismatch is
	// rejected with a clear error instead of a frame-decode failure.
	JSONWire bool
	// MaxSessionBytes caps one session's staging footprint
	// (InBytes+OutBytes); REQ beyond the limit is rejected with a clear
	// error. 0 = no per-session limit.
	MaxSessionBytes int64
	// BarrierTimeout flushes a partial STR batch after this much virtual
	// time, so a crashed client cannot wedge the daemon (0 = strict).
	// Caveat: the daemon drains virtual time eagerly after every request,
	// so virtual time races far ahead of wall time and an armed timeout
	// fires during the next drain — with a timeout set, barrier batching
	// effectively degrades to per-request flushing. Use it as a liveness
	// guard, not as a grace period.
	BarrierTimeout sim.Duration
	Logger         *log.Logger
	// Metrics is the registry shared by the manager, the dispatcher and
	// the server's own connection instruments; a /metrics scrape of it
	// covers the whole daemon path. nil creates one (Server.Metrics()).
	Metrics *metrics.Registry
	// Slog receives structured logging: one Debug line per verb served
	// and one Info line per barrier flush. nil disables it.
	Slog *slog.Logger
}

// Server is the gvmd daemon: it owns one simulated GPU plus one GVM and
// serves the six-verb protocol to real OS processes over any set of
// transports (unix, tcp, inproc). All verb handling lives in the shared
// transport.Dispatcher; all simulation work runs on a single owner
// goroutine — connection handlers submit closures to it and wait, so the
// deterministic single-threaded discipline of the simulator is preserved
// under concurrent clients.
type Server struct {
	cfg ServerConfig
	lns []transport.Listener

	work chan workItem
	quit chan struct{}

	// Owner-goroutine state.
	env  *sim.Env
	dev  *gpusim.Device
	mgr  *gvm.Manager
	disp *transport.Dispatcher

	met serverMetrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// serverMetrics are the server's own connection-layer instruments; the
// manager's and dispatcher's series live in the same shared registry.
type serverMetrics struct {
	connections *metrics.Gauge     // live client connections
	disconnects *metrics.Counter   // connections that have ended
	frameErrors *metrics.Counter   // bad preambles, codec mismatches, non-EOF read errors
	queueWaitNS *metrics.Histogram // wall ns a submit waited for the owner goroutine
}

type workItem struct {
	fn       func(p *sim.Proc)
	done     chan struct{}
	enqueued time.Time
}

// NewServer creates and starts a daemon listening on every address in
// cfg.Listen (plus cfg.Socket, if set).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Arch.SMs == 0 {
		cfg.Arch = fermi.TeslaC2070()
	}
	if cfg.Parties == 0 {
		cfg.Parties = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	addrs := cfg.Listen
	if cfg.Socket != "" {
		addrs = append([]string{"unix://" + cfg.Socket}, addrs...)
	}
	if len(addrs) == 0 {
		return nil, errors.New("ipc: no listen address (set Socket or Listen)")
	}
	var lns []transport.Listener
	closeAll := func() {
		for _, ln := range lns {
			ln.Close()
		}
	}
	for _, addr := range addrs {
		ln, err := transport.ListenAddr(addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("ipc: listen %s: %w", addr, err)
		}
		lns = append(lns, ln)
	}
	if cfg.GPUs == 0 {
		cfg.GPUs = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		lns:  lns,
		work: make(chan workItem),
		quit: make(chan struct{}),
		env:  sim.NewEnv(),
		met: serverMetrics{
			connections: cfg.Metrics.Gauge("ipc_connections", "live client connections"),
			disconnects: cfg.Metrics.Counter("ipc_disconnects_total", "client connections ended"),
			frameErrors: cfg.Metrics.Counter("ipc_frame_errors_total", "bad preambles, codec mismatches and non-EOF frame read errors"),
			queueWaitNS: cfg.Metrics.Histogram("gvmd_owner_queue_wait_ns", "wall ns a request waited for the simulation-owner goroutine"),
		},
	}
	devs := make([]*gpusim.Device, cfg.GPUs)
	var err error
	for i := range devs {
		devs[i], err = gpusim.New(s.env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional, ExecWorkers: cfg.ExecWorkers})
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	s.dev = devs[0]
	s.mgr = gvm.New(s.env, gvm.Config{
		Device:         devs[0],
		ExtraDevices:   devs[1:],
		Parties:        cfg.Parties,
		BarrierTimeout: cfg.BarrierTimeout,
		Metrics:        cfg.Metrics,
		Log:            cfg.Slog,
	})
	s.mgr.Start()
	if err := s.env.Run(); err != nil { // bring the manager up
		closeAll()
		return nil, err
	}
	s.disp = transport.NewDispatcher(transport.DispatcherConfig{
		Mgr:             s.mgr,
		Functional:      cfg.Functional,
		ShmDir:          cfg.ShmDir,
		MaxSessionBytes: cfg.MaxSessionBytes,
		Metrics:         cfg.Metrics,
		Log:             cfg.Slog,
	})
	s.wg.Add(1 + len(lns))
	go s.owner()
	for _, ln := range lns {
		go s.accept(ln)
	}
	return s, nil
}

// Metrics returns the daemon's shared telemetry registry (manager,
// dispatcher and connection-layer series).
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Addr returns the first listener's address in URL form (Dial accepts
// it directly).
func (s *Server) Addr() string { return s.lns[0].Addr() }

// Addrs returns every bound listener address in URL form, in the order
// configured — useful with tcp://...:0, where the OS picks the port.
func (s *Server) Addrs() []string {
	addrs := make([]string, len(s.lns))
	for i, ln := range s.lns {
		addrs[i] = ln.Addr()
	}
	return addrs
}

// Close shuts the daemon down, releasing every live session so device
// memory and file-backed shm segments are reclaimed (unix listeners
// unlink their socket files as they close).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var err error
	for _, ln := range s.lns {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	// Tear down sessions abandoned by still-connected clients before the
	// owner stops, so their segments and device memory are freed.
	s.submit(func(p *sim.Proc) { s.disp.ReleaseAll(p) })
	// Signal shutdown instead of closing the work channel: connection
	// handlers (including deferred session cleanup) may still be trying
	// to submit, and a send racing a close is a data race.
	close(s.quit)
	s.wg.Wait()
	return err
}

// owner executes submitted closures on simulation processes, one batch
// at a time, preserving the simulator's single-threaded discipline.
func (s *Server) owner() {
	defer s.wg.Done()
	for {
		var it workItem
		select {
		case <-s.quit:
			return
		case it = <-s.work:
		}
		s.met.queueWaitNS.Observe(int64(time.Since(it.enqueued)))
		s.env.Go("ipc-request", func(p *sim.Proc) {
			p.Daemonize() // may park at the STR barrier until peers arrive
			it.fn(p)
			close(it.done)
		})
		if err := s.env.Run(); err != nil {
			s.cfg.Logger.Printf("gvmd: simulation error: %v", err)
		}
	}
}

// submit runs fn on a simulation process and waits for it. It returns
// false if the server shut down before fn completed.
func (s *Server) submit(fn func(p *sim.Proc)) bool {
	item := workItem{fn: fn, done: make(chan struct{}), enqueued: time.Now()}
	select {
	case s.work <- item:
	case <-s.quit:
		return false
	}
	select {
	case <-item.done:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) accept(ln transport.Listener) {
	defer s.wg.Done()
	tr, err := transport.Lookup(ln.Scheme())
	if err != nil {
		s.cfg.Logger.Printf("gvmd: %v", err)
		return
	}
	defaultPlane := tr.DefaultPlane()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Connection handlers are not tracked by wg: a handler may be
		// parked at the STR barrier waiting for peers, and Close must
		// not wait for it.
		go s.serveConn(conn, defaultPlane)
	}
}

func (s *Server) serveConn(nc net.Conn, defaultPlane string) {
	clientJSON, err := transport.ReadPreamble(nc)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			s.cfg.Logger.Printf("gvmd: preamble: %v", err)
			s.met.frameErrors.Inc()
		}
		nc.Close()
		return
	}
	if clientJSON != s.cfg.JSONWire {
		s.met.frameErrors.Inc()
		// Reject in the CLIENT's codec so the mismatch surfaces as a
		// clean error on its next read, not as frame garbage.
		msg := "ipc: codec mismatch: daemon speaks the binary wire (dial without DialJSON)"
		reply := transport.NewConnJSON(nc)
		if s.cfg.JSONWire {
			msg = "ipc: codec mismatch: daemon speaks JSON wire (dial with DialJSON)"
			reply = transport.NewConn(nc)
		}
		_ = reply.WriteResponse(transport.Response{Status: "ERR", Err: msg})
		nc.Close()
		return
	}
	conn := transport.NewConn(nc)
	if s.cfg.JSONWire {
		conn = transport.NewConnJSON(nc)
	}
	s.met.connections.Inc()
	defer func() {
		conn.Close()
		// This goroutine is the connection's only reader and its read
		// loop has exited, so the pooled read buffer can go back.
		conn.Release()
		s.met.connections.Dec()
		s.met.disconnects.Inc()
	}()
	cs := &transport.ConnState{DefaultPlane: defaultPlane}
	defer func() {
		// Release sessions the client abandoned.
		s.submit(func(p *sim.Proc) { s.disp.HangUp(p, cs) })
	}()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logger.Printf("gvmd: read: %v", err)
				s.met.frameErrors.Inc()
			}
			return
		}
		// The dispatcher runs payload staging here on the connection
		// goroutine and submits only each verb's owner-side phase, so the
		// owner's critical section stays O(scheduling), not O(bytes).
		resp, ok := s.disp.Serve(req, cs, s.submit)
		if !ok {
			return
		}
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}
