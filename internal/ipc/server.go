package ipc

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/vgpu"
	"gpuvirt/internal/workloads"
)

// ServerConfig configures a daemon.
type ServerConfig struct {
	Socket     string     // Unix socket path
	Arch       fermi.Arch // zero value: Tesla C2070
	Parties    int        // STR barrier width (default 1)
	Functional bool       // carry real data end to end
	ShmDir     string     // data-plane directory ("" = /dev/shm)
	// ExecWorkers sizes the functional kernel-execution worker pool
	// (gpusim.Config.ExecWorkers): 0 = GOMAXPROCS, 1 = serial.
	ExecWorkers int
	// GPUs is the number of simulated devices the manager owns
	// (default 1; the multi-GPU extension).
	GPUs int
	// JSONWire selects the newline-delimited JSON control-plane codec
	// instead of the default binary frames — a debugging aid (frames are
	// readable with socat); clients must dial with DialJSON.
	JSONWire bool
	// BarrierTimeout flushes a partial STR batch after this much virtual
	// time, so a crashed client cannot wedge the daemon (0 = strict).
	// Caveat: the daemon drains virtual time eagerly after every request,
	// so virtual time races far ahead of wall time and an armed timeout
	// fires during the next drain — with a timeout set, barrier batching
	// effectively degrades to per-request flushing. Use it as a liveness
	// guard, not as a grace period.
	BarrierTimeout sim.Duration
	Logger         *log.Logger
}

// Server is the gvmd daemon: it owns one simulated GPU plus one GVM and
// serves the six-verb protocol to real OS processes. All simulation work
// runs on a single owner goroutine; socket handlers submit closures to it
// and wait, so the deterministic single-threaded discipline of the
// simulator is preserved under concurrent clients.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	work chan workItem
	quit chan struct{}

	// Owner-goroutine state.
	env      *sim.Env
	dev      *gpusim.Device
	mgr      *gvm.Manager
	sessions map[int]*serverSession

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

type workItem struct {
	fn   func(p *sim.Proc)
	done chan struct{}
}

type serverSession struct {
	id      int
	v       *vgpu.VGPU
	seg     shm.Segment
	w       workloads.Workload
	in      []byte
	out     []byte
	inN     int64
	outN    int64
	segNm   string
	started bool
}

// NewServer creates and starts a daemon listening on cfg.Socket.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Arch.SMs == 0 {
		cfg.Arch = fermi.TeslaC2070()
	}
	if cfg.Parties == 0 {
		cfg.Parties = 1
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("unix", cfg.Socket)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen: %w", err)
	}
	if cfg.GPUs == 0 {
		cfg.GPUs = 1
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		work:     make(chan workItem),
		quit:     make(chan struct{}),
		env:      sim.NewEnv(),
		sessions: make(map[int]*serverSession),
	}
	devs := make([]*gpusim.Device, cfg.GPUs)
	for i := range devs {
		devs[i], err = gpusim.New(s.env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional, ExecWorkers: cfg.ExecWorkers})
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.dev = devs[0]
	s.mgr = gvm.New(s.env, gvm.Config{
		Device:         devs[0],
		ExtraDevices:   devs[1:],
		Parties:        cfg.Parties,
		BarrierTimeout: cfg.BarrierTimeout,
	})
	s.mgr.Start()
	if err := s.env.Run(); err != nil { // bring the manager up
		ln.Close()
		return nil, err
	}
	s.wg.Add(2)
	go s.owner()
	go s.accept()
	return s, nil
}

// Addr returns the socket path.
func (s *Server) Addr() string { return s.cfg.Socket }

// Close shuts the daemon down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	// Signal shutdown instead of closing the work channel: connection
	// handlers (including deferred session cleanup) may still be trying
	// to submit, and a send racing a close is a data race.
	close(s.quit)
	s.wg.Wait()
	return err
}

// owner executes submitted closures on simulation processes, one batch
// at a time, preserving the simulator's single-threaded discipline.
func (s *Server) owner() {
	defer s.wg.Done()
	for {
		var it workItem
		select {
		case <-s.quit:
			return
		case it = <-s.work:
		}
		s.env.Go("ipc-request", func(p *sim.Proc) {
			p.Daemonize() // may park at the STR barrier until peers arrive
			it.fn(p)
			close(it.done)
		})
		if err := s.env.Run(); err != nil {
			s.cfg.Logger.Printf("gvmd: simulation error: %v", err)
		}
	}
}

// submit runs fn on a simulation process and waits for it. It returns
// false if the server shut down before fn completed.
func (s *Server) submit(fn func(p *sim.Proc)) bool {
	item := workItem{fn: fn, done: make(chan struct{})}
	select {
	case s.work <- item:
	case <-s.quit:
		return false
	}
	select {
	case <-item.done:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		// Connection handlers are not tracked by wg: a handler may be
		// parked at the STR barrier waiting for peers, and Close must
		// not wait for it.
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(nc net.Conn) {
	conn := NewConn(nc)
	if s.cfg.JSONWire {
		conn = NewConnJSON(nc)
	}
	defer conn.Close()
	var owned []int // sessions opened by this connection
	defer func() {
		// Release sessions the client abandoned.
		for _, id := range owned {
			id := id
			s.submit(func(p *sim.Proc) { s.release(p, id) })
		}
	}()
	for {
		req, err := conn.ReadRequest()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.cfg.Logger.Printf("gvmd: read: %v", err)
			}
			return
		}
		var resp Response
		ok := s.submit(func(p *sim.Proc) {
			resp = s.handle(p, req, &owned)
			resp.VirtualMS = p.Now().Milliseconds()
		})
		if !ok {
			return
		}
		if err := conn.WriteResponse(resp); err != nil {
			return
		}
	}
}

func errResp(err error) Response { return Response{Status: "ERR", Err: err.Error()} }

// handle services one request on a simulation process.
func (s *Server) handle(p *sim.Proc, req Request, owned *[]int) Response {
	switch req.Verb {
	case "REQ":
		return s.handleREQ(p, req, owned)
	case "SND", "STR", "STP", "RCV", "RLS":
		sess, ok := s.sessions[req.Session]
		if !ok {
			return errResp(fmt.Errorf("ipc: unknown session %d", req.Session))
		}
		return s.handleVerb(p, req.Verb, sess, owned)
	default:
		return errResp(fmt.Errorf("ipc: unknown verb %q", req.Verb))
	}
}

func (s *Server) handleREQ(p *sim.Proc, req Request, owned *[]int) Response {
	if req.Ref == nil {
		return errResp(errors.New("ipc: REQ needs a workload reference"))
	}
	w, err := workloads.FromRef(*req.Ref)
	if err != nil {
		return errResp(err)
	}
	spec := w.Spec(req.Rank)
	v, err := vgpu.Connect(p, s.mgr, spec)
	if err != nil {
		return errResp(err)
	}
	sess := &serverSession{
		id:   v.Session(),
		v:    v,
		w:    w,
		inN:  spec.InBytes,
		outN: spec.OutBytes,
	}
	sess.segNm = fmt.Sprintf("gvmd-seg-%d", sess.id)
	sess.seg, err = shm.NewFile(s.cfg.ShmDir, sess.segNm, maxI64(spec.InBytes+spec.OutBytes, 1))
	if err != nil {
		_ = v.Release(p)
		return errResp(err)
	}
	if s.cfg.Functional {
		if spec.InBytes > 0 {
			sess.in = make([]byte, spec.InBytes)
		}
		if spec.OutBytes > 0 {
			sess.out = make([]byte, spec.OutBytes)
		}
	}
	s.sessions[sess.id] = sess
	*owned = append(*owned, sess.id)
	return Response{
		Status:   "ACK",
		Session:  sess.id,
		Segment:  sess.segNm,
		InBytes:  spec.InBytes,
		OutBytes: spec.OutBytes,
	}
}

func (s *Server) handleVerb(p *sim.Proc, verb string, sess *serverSession, owned *[]int) Response {
	switch verb {
	case "SND":
		if sess.in != nil {
			if err := sess.seg.ReadAt(sess.in, 0); err != nil {
				return errResp(err)
			}
		}
		if err := sess.v.SendInput(p, sess.in); err != nil {
			return errResp(err)
		}
	case "STR":
		if err := sess.v.Start(p); err != nil {
			return errResp(err)
		}
		sess.started = true
	case "STP":
		// The owner drains the calendar after every flush, so by the
		// time an STP arrives execution has finished in virtual time.
		if !sess.started {
			return errResp(errors.New("ipc: STP before STR"))
		}
		if err := sess.v.Wait(p); err != nil {
			return errResp(err)
		}
		sess.started = false
	case "RCV":
		if err := sess.v.ReceiveOutput(p, sess.out); err != nil {
			return errResp(err)
		}
		if sess.out != nil {
			if err := sess.seg.WriteAt(sess.out, sess.inN); err != nil {
				return errResp(err)
			}
		}
	case "RLS":
		s.release(p, sess.id)
		for i, id := range *owned {
			if id == sess.id {
				*owned = append((*owned)[:i], (*owned)[i+1:]...)
				break
			}
		}
	}
	return Response{Status: "ACK", Session: sess.id}
}

func (s *Server) release(p *sim.Proc, id int) {
	sess, ok := s.sessions[id]
	if !ok {
		return
	}
	delete(s.sessions, id)
	_ = sess.v.Release(p)
	_ = sess.seg.Close()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
