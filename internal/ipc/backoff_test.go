package ipc

import (
	"math/rand"
	"testing"
	"time"
)

// The failover backoff must stay inside its documented envelope for any
// jitter draw: each delay in [failoverBase/2, 1.5*failoverMaxDelay),
// total sleep capped at failoverMaxElapsed, and the retry budget finite
// (a daemon that can never re-place the session fails the call).
func TestFailoverBackoffBounds(t *testing.T) {
	for _, draw := range []struct {
		name string
		rnd  func() float64
	}{
		{"min-jitter", func() float64 { return 0 }},
		{"max-jitter", func() float64 { return 0.999999 }},
		{"seeded", rand.New(rand.NewSource(42)).Float64},
	} {
		t.Run(draw.name, func(t *testing.T) {
			bo := failoverBackoff{rnd: draw.rnd}
			var total time.Duration
			retries := 0
			for {
				d, ok := bo.next()
				if !ok {
					break
				}
				retries++
				if retries > 10_000 {
					t.Fatal("backoff never exhausted its elapsed budget")
				}
				if d < 1 {
					t.Fatalf("retry %d: non-positive delay %v", retries, d)
				}
				if d >= time.Duration(1.5*float64(failoverMaxDelay))+1 {
					t.Fatalf("retry %d: delay %v above the 1.5x max-delay jitter ceiling", retries, d)
				}
				total += d
			}
			if total > failoverMaxElapsed {
				t.Fatalf("total sleep %v exceeds the max-elapsed cap %v", total, failoverMaxElapsed)
			}
			if total < failoverMaxElapsed {
				t.Fatalf("backoff gave up at %v with budget %v left", total, failoverMaxElapsed-total)
			}
		})
	}
}

// Delays must grow exponentially until the per-try clamp: with jitter
// pinned to 1.0x, the sequence is exactly base, 2*base, ... up to
// failoverMaxDelay and then stays there.
func TestFailoverBackoffGrowth(t *testing.T) {
	bo := failoverBackoff{rnd: func() float64 { return 0.5 }} // jitter factor exactly 1.0
	want := failoverBase
	for i := 0; i < 12; i++ {
		d, ok := bo.next()
		if !ok {
			t.Fatalf("budget exhausted after only %d tries", i)
		}
		if d != want {
			t.Fatalf("try %d: delay %v, want %v", i, d, want)
		}
		if want < failoverMaxDelay {
			want *= 2
			if want > failoverMaxDelay {
				want = failoverMaxDelay
			}
		}
	}
}

// Two workers with different jitter draws must not sleep in lockstep —
// the whole point of the jitter.
func TestFailoverBackoffJitterSpreads(t *testing.T) {
	a := failoverBackoff{rnd: rand.New(rand.NewSource(1)).Float64}
	b := failoverBackoff{rnd: rand.New(rand.NewSource(2)).Float64}
	same := 0
	for i := 0; i < 8; i++ {
		da, _ := a.next()
		db, _ := b.next()
		if da == db {
			same++
		}
	}
	if same == 8 {
		t.Fatal("independent workers drew identical delay sequences")
	}
}
