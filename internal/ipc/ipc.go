// Package ipc binds the virtualization protocol to real OS processes:
// a thin client (Dial/Session) and the gvmd server glue, both riding the
// pluggable connection layer in internal/transport. The wire codec
// (length-prefixed binary frames, with a newline-delimited JSON
// debugging mode), the transports (unix, tcp, inproc) and the data
// planes (file-backed shared memory, inline-over-the-wire) all live in
// internal/transport; the verb state machine lives once, in
// transport.Dispatcher delegating to gvm.Manager. This package only
// wires listeners and connections to that machinery — the daemon-mode
// counterpart of the in-simulation vgpu API.
package ipc

import "gpuvirt/internal/transport"

// Wire types are defined by the transport layer; aliased here so client
// code reads naturally.
type (
	// Request is a wire-encoded protocol request.
	Request = transport.Request
	// Response is a wire-encoded protocol response.
	Response = transport.Response
)
