package ipc

import (
	"path/filepath"
	"strings"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/workloads"
)

// startTinyServer boots a functional daemon whose single GPU fits about
// one vecadd-4096 session (48 KiB of arenas on a 64 KiB card) at the
// given overcommit factor.
func startTinyServer(t *testing.T, overcommit float64, ring bool) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 64 << 10
	cfg := ServerConfig{
		ShmDir:     dir,
		Functional: true,
		Arch:       arch,
		Overcommit: overcommit,
	}
	if ring {
		cfg.Listen = []string{"ring://" + filepath.Join(dir, "gvmd.sock")}
	} else {
		cfg.Socket = tempSocket(t)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, dir
}

// TestDaemonSuspendResumeOverWire drives the SUS/RES extension verbs
// through the socket transport: state staged before the suspend must
// survive the round trip to a host snapshot and back.
func TestDaemonSuspendResumeOverWire(t *testing.T) {
	srv := startServer(t, 1, true)
	c, err := Dial(srv.Addr(), srv.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 2048
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i)
		in[n+i] = 5
	}
	if err := sess.SendInput(cuda.HostFloat32Bytes(in)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Suspend(); err != nil {
		t.Fatalf("SUS over the wire: %v", err)
	}
	mgr := srv.node.Shard(0).Mgr
	if mgr.Suspensions() != 1 {
		t.Fatalf("suspensions = %d, want 1", mgr.Suspensions())
	}
	// Verbs on a client-suspended session fail until the explicit RES.
	if err := sess.Start(); err == nil {
		t.Fatal("STR on suspended session succeeded")
	} else if !strings.Contains(err.Error(), "suspended") {
		t.Fatalf("STR error does not explain the suspension: %v", err)
	}
	if err := sess.Resume(); err != nil {
		t.Fatalf("RES over the wire: %v", err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	if err := sess.Receive(out); err != nil {
		t.Fatal(err)
	}
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(i)+5 {
			t.Fatalf("out[%d] = %g, want %g (input lost across SUS/RES)", i, res[i], float32(i)+5)
		}
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonSuspendResumeOverRing drives SUS/RES as ring records: the
// extension verbs ride the shared-memory control plane like any data
// verb, never touching the socket.
func TestDaemonSuspendResumeOverRing(t *testing.T) {
	srv, dir := startTinyServer(t, 1.0, true)
	c, err := Dial(srv.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 2048
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(2 * i)
		in[n+i] = 3
	}
	if err := sess.SendInput(cuda.HostFloat32Bytes(in)); err != nil {
		t.Fatal(err)
	}
	trips := sess.RingTrips()
	if err := sess.Suspend(); err != nil {
		t.Fatalf("SUS over the ring: %v", err)
	}
	if err := sess.Resume(); err != nil {
		t.Fatalf("RES over the ring: %v", err)
	}
	if got := sess.RingTrips(); got != trips+2 {
		t.Fatalf("SUS/RES took %d ring trips, want 2", got-trips)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n*4)
	if err := sess.Receive(out); err != nil {
		t.Fatal(err)
	}
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(2*i)+3 {
			t.Fatalf("out[%d] = %g, want %g", i, res[i], float32(2*i)+3)
		}
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonEvictionDuringPipelinedBAT packs two full-card sessions onto
// one GPU at overcommit 4 and alternates pipelined cycles between them:
// every BAT's first verb lands on an evicted session and the manager
// must restore it mid-batch, transparently, with byte-identical results.
func TestDaemonEvictionDuringPipelinedBAT(t *testing.T) {
	srv, dir := startTinyServer(t, 4.0, false)
	c, err := Dial(srv.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 4096
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	s1, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Request(ref, 0)
	if err != nil {
		t.Fatalf("REQ within the overcommit quota rejected: %v", err)
	}
	mgr := srv.node.Shard(0).Mgr
	if mgr.Evictions() == 0 {
		t.Fatal("second session became resident without evicting the first")
	}
	mk := func(seed int) ([]float32, []byte) {
		in := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			in[i] = float32((i + seed) % 127)
			in[n+i] = float32((i*3 + seed) % 131)
		}
		return in, cuda.HostFloat32Bytes(in)
	}
	for cycle := 0; cycle < 3; cycle++ {
		for si, sess := range []*Session{s1, s2} {
			in, inB := mk(cycle*7 + si)
			out := make([]byte, n*4)
			if err := sess.RunCycle(inB, out); err != nil {
				t.Fatalf("cycle %d session %d: %v", cycle, si, err)
			}
			res := cuda.Float32s(byteMem(out), 0, n)
			for i := 0; i < n; i++ {
				if res[i] != in[i]+in[n+i] {
					t.Fatalf("cycle %d session %d: out[%d] = %g, want %g",
						cycle, si, i, res[i], in[i]+in[n+i])
				}
			}
		}
	}
	// Each cycle's BAT hit a swapped-out session: restores accumulated.
	if mgr.Restores() < 3 {
		t.Fatalf("restores = %d, want >= 3 (one per ping-pong)", mgr.Restores())
	}
	if err := s1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Release(); err != nil {
		t.Fatal(err)
	}
	if open := srv.disp.OpenSessions(); open != 0 {
		t.Fatalf("%d dispatcher sessions leaked", open)
	}
	dev := srv.node.Shard(0).Dev
	if dev.MemInUse() != 0 || dev.MemReserved() != 0 {
		t.Fatalf("leak: resident=%d reserved=%d", dev.MemInUse(), dev.MemReserved())
	}
}

// TestDaemonQuotaAndPriorityOnREQ sends the optional MemQuota/Priority
// REQ fields over the binary wire: an under-quota REQ is rejected by the
// manager's allocation-time check, and an in-quota one works.
func TestDaemonQuotaAndPriorityOnREQ(t *testing.T) {
	srv := startServer(t, 1, true)
	c, err := Dial(srv.Addr(), srv.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 2048 // 16 KiB in + 8 KiB out of arenas
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	if _, err := c.RequestOptions(ref, 0, SessionOptions{MemQuota: 8 << 10}); err == nil {
		t.Fatal("REQ exceeding its own MemQuota accepted")
	} else if !strings.Contains(err.Error(), "quota") {
		t.Fatalf("rejection does not name the quota: %v", err)
	}
	sess, err := c.RequestOptions(ref, 0, SessionOptions{MemQuota: 64 << 10, Priority: 3})
	if err != nil {
		t.Fatalf("in-quota REQ rejected: %v", err)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}
