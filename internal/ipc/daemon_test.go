package ipc

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// startServerOn starts a daemon on an explicit listener set.
func startServerOn(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.ShmDir == "" {
		cfg.ShmDir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// vecaddCycle runs one functional vecadd cycle and returns the output
// bytes the daemon produced.
func vecaddCycle(t *testing.T, c *Client, n, rank int) []byte {
	t.Helper()
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, rank)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32(i)
		in[n+i] = 0.5
	}
	out := make([]byte, n*4)
	if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
		t.Fatal(err)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTransportPlaneMatrix drives the same functional workload through
// every transport with every data plane: one daemon, six ways in, one
// right answer.
func TestTransportPlaneMatrix(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Listen: []string{
			"unix://" + tempSocket(t),
			"tcp://127.0.0.1:0",
			"inproc://matrix",
		},
		Functional: true,
	})
	addrs := s.Addrs()
	const n = 1024
	for i, addr := range addrs {
		for _, plane := range []string{transport.PlaneShm, transport.PlaneInline} {
			addr, plane := addr, plane
			t.Run(fmt.Sprintf("%s/%s", []string{"unix", "tcp", "inproc"}[i], plane), func(t *testing.T) {
				c, err := DialOptions(addr, Options{ShmDir: s.cfg.ShmDir, Plane: plane})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got := sess.Plane(); got != plane {
					t.Fatalf("negotiated plane %q, want %q", got, plane)
				}
				if err := sess.Release(); err != nil {
					t.Fatal(err)
				}
				out := vecaddCycle(t, c, n, 0)
				res := cuda.Float32s(byteMem(out), 0, n)
				for j := 0; j < n; j++ {
					if res[j] != float32(j)+0.5 {
						t.Fatalf("out[%d] = %g", j, res[j])
					}
				}
			})
		}
	}
}

// TestTCPInlineMatchesUnixShm is the acceptance check for the data-plane
// split: a TCP client on the inline plane must receive byte-identical
// RCV results to a unix-socket client on the shm plane for the same
// workload.
func TestTCPInlineMatchesUnixShm(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Listen:     []string{"unix://" + tempSocket(t), "tcp://127.0.0.1:0"},
		Functional: true,
	})
	unixAddr, tcpAddr := s.Addrs()[0], s.Addrs()[1]

	const n = 2048
	cu, err := Dial(unixAddr, s.cfg.ShmDir) // unix defaults to shm
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	ct, err := Dial(tcpAddr, s.cfg.ShmDir) // tcp defaults to inline
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	outShm := vecaddCycle(t, cu, n, 0)
	outInline := vecaddCycle(t, ct, n, 0)
	if string(outShm) != string(outInline) {
		t.Fatal("tcp/inline output differs from unix/shm output for the same workload")
	}
}

// TestCodecMismatchRejected covers both directions of the preamble
// handshake: the daemon names the wire it speaks instead of failing with
// frame garbage.
func TestCodecMismatchRejected(t *testing.T) {
	t.Run("json-client-binary-daemon", func(t *testing.T) {
		s := startServerOn(t, ServerConfig{Socket: tempSocket(t)})
		c, err := DialJSON(s.Addr(), s.cfg.ShmDir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 64}}, 0)
		if err == nil || !strings.Contains(err.Error(), "codec mismatch") {
			t.Fatalf("got %v, want codec mismatch error", err)
		}
		if !strings.Contains(err.Error(), "binary wire") {
			t.Fatalf("error does not name the daemon's codec: %v", err)
		}
	})
	t.Run("binary-client-json-daemon", func(t *testing.T) {
		s := startServerOn(t, ServerConfig{Socket: tempSocket(t), JSONWire: true})
		c, err := Dial(s.Addr(), s.cfg.ShmDir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 64}}, 0)
		if err == nil || !strings.Contains(err.Error(), "codec mismatch") {
			t.Fatalf("got %v, want codec mismatch error", err)
		}
		if !strings.Contains(err.Error(), "JSON wire") {
			t.Fatalf("error does not name the daemon's codec: %v", err)
		}
	})
}

// TestDisconnectMidSessionFreesResources kills a client between SND and
// STR — the worst spot, with the input staged and a barrier pending —
// and checks the daemon releases the session, frees its device memory,
// and (with a barrier timeout) lets the surviving party complete.
func TestDisconnectMidSessionFreesResources(t *testing.T) {
	for _, scheme := range []string{"unix", "tcp"} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			addr := "tcp://127.0.0.1:0"
			if scheme == "unix" {
				addr = "unix://" + tempSocket(t)
			}
			s := startServerOn(t, ServerConfig{
				Listen:         []string{addr},
				Parties:        2,
				Functional:     true,
				BarrierTimeout: 100 * sim.Millisecond,
			})

			victim, err := DialOptions(s.Addr(), Options{ShmDir: s.cfg.ShmDir})
			if err != nil {
				t.Fatal(err)
			}
			vs, err := victim.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := vs.SendInput(make([]byte, vs.InBytes())); err != nil {
				t.Fatal(err)
			}
			var memAfterREQ int64 = -1
			if !s.submitProbe(0, func() { memAfterREQ = s.node.Shard(0).Dev.MemInUse() }) {
				t.Fatal("server closed early")
			}
			if memAfterREQ <= 0 {
				t.Fatalf("expected device memory in use after REQ, got %d", memAfterREQ)
			}
			victim.Close() // dies between SND and STR

			// The survivor runs a full cycle; the barrier timeout flushes
			// its STR without the dead peer.
			survivor, err := Dial(s.Addr(), s.cfg.ShmDir)
			if err != nil {
				t.Fatal(err)
			}
			defer survivor.Close()
			done := make(chan error, 1)
			go func() {
				sess, err := survivor.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 512}}, 1)
				if err != nil {
					done <- err
					return
				}
				if err := sess.RunCycle(make([]byte, sess.InBytes()), make([]byte, sess.OutBytes())); err != nil {
					done <- err
					return
				}
				done <- sess.Release()
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("survivor: %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("survivor wedged behind the dead client's barrier slot")
			}

			// Disconnect cleanup is asynchronous: poll until the victim's
			// session is gone and its device memory is back.
			for deadline := 400; deadline > 0; deadline-- {
				open, mem := -1, int64(-1)
				if !s.submitProbe(0, func() {
					open = s.node.Shard(0).Mgr.OpenSessions()
					mem = s.node.Shard(0).Dev.MemInUse()
				}) {
					t.Fatal("server closed early")
				}
				if open == 0 && mem == 0 {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			t.Fatal("dead client's session or device memory never reclaimed")
		})
	}
}

// TestRequestTimeout points a client at a listener that accepts and
// reads but never answers: with a request timeout set the round trip
// fails with a deadline error instead of blocking forever.
func TestRequestTimeout(t *testing.T) {
	ln, err := transport.ListenAddr("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // a daemon that went out to lunch
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := DialOptions(ln.Addr(), Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 64}}, 0)
	if err == nil {
		t.Fatal("request against a mute daemon succeeded")
	}
	if !strings.Contains(err.Error(), "no response within") {
		t.Fatalf("got %v, want request-timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
	c.Close() // unblocks the mute server's read loop
	wg.Wait()
}

// TestInprocTransport exercises the in-process transport end to end:
// same daemon, no socket files involved.
func TestInprocTransport(t *testing.T) {
	s := startServerOn(t, ServerConfig{Listen: []string{"inproc://daemon-test"}, Functional: true})
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 256
	out := vecaddCycle(t, c, n, 0)
	res := cuda.Float32s(byteMem(out), 0, n)
	for i := 0; i < n; i++ {
		if res[i] != float32(i)+0.5 {
			t.Fatalf("out[%d] = %g", i, res[i])
		}
	}
}
