// Package ipc carries the virtualization protocol between real OS
// processes: a newline-delimited JSON wire format over Unix-domain
// sockets for the control plane, and file-backed shared-memory segments
// (package shm) for the data plane. It is the daemon-mode counterpart of
// the in-simulation message queues: gvmd serves SPMD client processes on
// one node exactly as the paper's GVM does, with GPU timing provided by
// the simulator.
package ipc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"

	"gpuvirt/internal/workloads"
)

// Request is a wire-encoded protocol request.
type Request struct {
	Verb    string         `json:"verb"` // REQ SND STR STP RCV RLS
	Session int            `json:"session,omitempty"`
	Ref     *workloads.Ref `json:"workload,omitempty"` // REQ only
	Rank    int            `json:"rank,omitempty"`     // REQ only
}

// Response is a wire-encoded protocol response.
type Response struct {
	Status  string `json:"status"` // ACK WAIT ERR
	Session int    `json:"session,omitempty"`
	Err     string `json:"err,omitempty"`
	// REQ extras: where the data plane lives and how big it is.
	Segment  string `json:"segment,omitempty"`
	InBytes  int64  `json:"in_bytes,omitempty"`
	OutBytes int64  `json:"out_bytes,omitempty"`
	// VirtualMS is the simulated GPU clock at response time, so clients
	// can report device-side timings.
	VirtualMS float64 `json:"virtual_ms"`
}

// Conn frames requests and responses over a stream connection.
type Conn struct {
	c   net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

// NewConn wraps a connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), enc: json.NewEncoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// WriteRequest sends one request frame.
func (c *Conn) WriteRequest(req Request) error { return c.enc.Encode(req) }

// WriteResponse sends one response frame.
func (c *Conn) WriteResponse(resp Response) error { return c.enc.Encode(resp) }

// ReadRequest receives one request frame.
func (c *Conn) ReadRequest() (Request, error) {
	var req Request
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return req, err
	}
	if err := json.Unmarshal(line, &req); err != nil {
		return req, fmt.Errorf("ipc: bad request frame: %w", err)
	}
	return req, nil
}

// ReadResponse receives one response frame.
func (c *Conn) ReadResponse() (Response, error) {
	var resp Response
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return resp, err
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return resp, fmt.Errorf("ipc: bad response frame: %w", err)
	}
	return resp, nil
}
