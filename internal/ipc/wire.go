// Package ipc carries the virtualization protocol between real OS
// processes: a length-prefixed binary wire format over Unix-domain
// sockets for the control plane (with a newline-delimited JSON mode kept
// as a debugging fallback), and file-backed shared-memory segments
// (package shm) for the data plane. It is the daemon-mode counterpart of
// the in-simulation message queues: gvmd serves SPMD client processes on
// one node exactly as the paper's GVM does, with GPU timing provided by
// the simulator.
package ipc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"

	"gpuvirt/internal/workloads"
)

// Request is a wire-encoded protocol request.
type Request struct {
	Verb    string         `json:"verb"` // REQ SND STR STP RCV RLS
	Session int            `json:"session,omitempty"`
	Ref     *workloads.Ref `json:"workload,omitempty"` // REQ only
	Rank    int            `json:"rank,omitempty"`     // REQ only
}

// Response is a wire-encoded protocol response.
type Response struct {
	Status  string `json:"status"` // ACK WAIT ERR
	Session int    `json:"session,omitempty"`
	Err     string `json:"err,omitempty"`
	// REQ extras: where the data plane lives and how big it is.
	Segment  string `json:"segment,omitempty"`
	InBytes  int64  `json:"in_bytes,omitempty"`
	OutBytes int64  `json:"out_bytes,omitempty"`
	// VirtualMS is the simulated GPU clock at response time, so clients
	// can report device-side timings.
	VirtualMS float64 `json:"virtual_ms"`
}

// Conn frames requests and responses over a stream connection. The
// default codec is the length-prefixed binary format (frame.go), reusing
// one encode and one decode buffer across frames; NewConnJSON selects the
// human-readable JSON mode for debugging. Both read paths sniff the
// peer's first byte and report a clean mode-mismatch error rather than
// decoding the other codec's bytes as garbage.
type Conn struct {
	c    net.Conn
	r    *bufio.Reader
	json bool
	enc  *json.Encoder // JSON mode only
	wbuf []byte        // binary mode: reused encode buffer
	rbuf []byte        // binary mode: reused payload buffer
	hdr  [headerLen]byte
}

// NewConn wraps a connection with the binary frame codec.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c)}
}

// NewConnJSON wraps a connection with the newline-delimited JSON codec,
// the debugging fallback (readable with socat/nc). Both peers must agree
// on the mode.
func NewConnJSON(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), json: true, enc: json.NewEncoder(c)}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// WriteRequest sends one request frame.
func (c *Conn) WriteRequest(req Request) error {
	if c.json {
		return c.enc.Encode(req)
	}
	buf, err := EncodeRequestBinary(c.wbuf[:0], req)
	if err != nil {
		return err
	}
	c.wbuf = buf
	_, err = c.c.Write(buf)
	return err
}

// WriteResponse sends one response frame.
func (c *Conn) WriteResponse(resp Response) error {
	if c.json {
		return c.enc.Encode(resp)
	}
	buf, err := EncodeResponseBinary(c.wbuf[:0], resp)
	if err != nil {
		return err
	}
	c.wbuf = buf
	_, err = c.c.Write(buf)
	return err
}

// ReadRequest receives one request frame.
func (c *Conn) ReadRequest() (Request, error) {
	if c.json {
		var req Request
		line, err := c.readJSONLine()
		if err != nil {
			return req, err
		}
		if err := json.Unmarshal(line, &req); err != nil {
			return req, fmt.Errorf("ipc: bad request frame: %w", err)
		}
		return req, nil
	}
	payload, err := c.readFrame(kindRequest)
	if err != nil {
		return Request{}, err
	}
	return decodeRequestPayload(payload)
}

// ReadResponse receives one response frame.
func (c *Conn) ReadResponse() (Response, error) {
	if c.json {
		var resp Response
		line, err := c.readJSONLine()
		if err != nil {
			return resp, err
		}
		if err := json.Unmarshal(line, &resp); err != nil {
			return resp, fmt.Errorf("ipc: bad response frame: %w", err)
		}
		return resp, nil
	}
	payload, err := c.readFrame(kindResponse)
	if err != nil {
		return Response{}, err
	}
	return decodeResponsePayload(payload)
}

// readJSONLine reads one newline-delimited JSON frame, detecting a binary
// peer by its magic byte.
func (c *Conn) readJSONLine() ([]byte, error) {
	if b, err := c.r.Peek(1); err == nil && b[0] == frameMagic {
		return nil, fmt.Errorf("ipc: mode mismatch: peer sent a binary frame on a JSON connection")
	}
	return c.r.ReadBytes('\n')
}

// readFrame reads one binary frame of the given kind and returns its
// payload in the connection's reused buffer (valid until the next read).
func (c *Conn) readFrame(kind byte) ([]byte, error) {
	b, err := c.r.Peek(1)
	if err != nil {
		return nil, err // clean EOF between frames passes through
	}
	if b[0] == '{' {
		return nil, fmt.Errorf("ipc: mode mismatch: peer is speaking JSON on a binary connection")
	}
	if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
		return nil, fmt.Errorf("ipc: truncated frame header: %w", err)
	}
	if c.hdr[0] != frameMagic {
		return nil, fmt.Errorf("ipc: bad frame magic 0x%02x", c.hdr[0])
	}
	if c.hdr[1] != kind {
		return nil, fmt.Errorf("ipc: unexpected frame kind %q (want %q)", c.hdr[1], kind)
	}
	n := binary.LittleEndian.Uint32(c.hdr[2:])
	if n > MaxFrame {
		return nil, fmt.Errorf("ipc: frame payload %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("ipc: truncated frame: %w", err)
	}
	return buf, nil
}
