package ipc

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/node"
	"gpuvirt/internal/workloads"
)

// shardStats reads one shard's session and memory accounting on its
// owner goroutine.
func shardStats(t *testing.T, s *Server, shard int) (open int, inUse, reserved int64) {
	t.Helper()
	if !s.submitProbe(shard, func() {
		sh := s.node.Shard(shard)
		open = sh.Mgr.OpenSessions()
		inUse = sh.Dev.MemInUse()
		reserved = sh.Dev.MemReserved()
	}) {
		t.Fatal("server closed early")
	}
	return
}

// waitShardsClean polls until every shard reports zero open sessions,
// zero device memory in use and zero reserved bytes (failover cleanup
// is asynchronous: evacuations and hang-up releases race the probes).
func waitShardsClean(t *testing.T, s *Server) {
	t.Helper()
	for deadline := 800; deadline > 0; deadline-- {
		clean := true
		for shard := 0; shard < s.node.NumShards(); shard++ {
			open, inUse, reserved := shardStats(t, s, shard)
			if open != 0 || inUse != 0 || reserved != 0 {
				clean = false
				break
			}
		}
		if clean {
			for _, l := range s.node.Loads() {
				if l.Sessions != 0 || l.Bytes != 0 {
					t.Fatalf("gpu %d placement not drained: %d sessions, %d bytes",
						l.Shard, l.Sessions, l.Bytes)
				}
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for shard := 0; shard < s.node.NumShards(); shard++ {
		open, inUse, reserved := shardStats(t, s, shard)
		t.Errorf("gpu %d: %d open sessions, %d bytes in use, %d reserved after release",
			shard, open, inUse, reserved)
	}
	t.Fatal("shards never drained to zero")
}

// TestDrainMigratesMidJobByteIdentical is the byte-identical mid-job
// migration check: a session sends its input and starts a cycle on
// shard A, the operator drains shard A mid-flight, and the client's
// STP/RCV — transparently re-issued after the retryable migration
// errors — must be served from shard B with the exact bytes a
// migration-free run produces.
func TestDrainMigratesMidJobByteIdentical(t *testing.T) {
	const n = 1024
	s := startServerOn(t, ServerConfig{
		Listen:     []string{"inproc://drain-midjob"},
		Functional: true,
		GPUs:       2,
	})
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Migration-free reference: same workload, same rank, same input.
	cRef, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer cRef.Close()
	refSess, err := cRef.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, refSess.InBytes())
	want := make([]byte, refSess.OutBytes())
	w.Fill(0, in)
	if err := refSess.RunCycle(in, want); err != nil {
		t.Fatal(err)
	}
	if err := refSess.Release(); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.SendInput(in); err != nil {
		t.Fatal(err)
	}
	if err := sess.Start(); err != nil {
		t.Fatal(err)
	}

	// Find the shard that owns the running session and drain it.
	src := -1
	for shard := 0; shard < 2; shard++ {
		if open, _, _ := shardStats(t, s, shard); open == 1 {
			src = shard
		}
	}
	if src < 0 {
		t.Fatal("no shard owns the session after STR")
	}
	if err := s.Drain(src); err != nil {
		t.Fatal(err)
	}
	if got := s.node.Health(src); got != node.Draining {
		t.Fatalf("gpu %d health = %v after Drain, want draining", src, got)
	}

	// STP and RCV complete from the target shard; the bytes must match.
	if err := sess.Wait(); err != nil {
		t.Fatalf("Wait across migration: %v", err)
	}
	out := make([]byte, sess.OutBytes())
	if err := sess.Receive(out); err != nil {
		t.Fatalf("Receive across migration: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("RCV digest changed across mid-job migration")
	}

	// The session now lives on the other shard, and the source is empty.
	for deadline := 400; ; deadline-- {
		srcOpen, _, _ := shardStats(t, s, src)
		dstOpen, _, _ := shardStats(t, s, 1-src)
		if srcOpen == 0 && dstOpen == 1 {
			break
		}
		if deadline == 0 {
			t.Fatalf("session placement after drain: src %d open, dst %d open; want 0 and 1",
				srcOpen, dstOpen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	samples := scrapeMetrics(t, s.Metrics())
	if got := samples["node_failovers_total"]; got < 1 {
		t.Errorf("node_failovers_total = %d, want >= 1", got)
	}
	if got := samples["node_migrated_bytes_total"]; got <= 0 {
		t.Errorf("node_migrated_bytes_total = %d, want > 0", got)
	}
	if got := samples["node_migration_latency_ns_count"]; got < 1 {
		t.Errorf("node_migration_latency_ns_count = %d, want >= 1", got)
	}

	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
	waitShardsClean(t, s)
}

// TestChaosFaultInjection8Clients is the chaos check: fault injection
// on gpu 0 under 8-client pipelined load on a 2-shard daemon. Every
// cycle the fault interrupts is transparently re-run after failover, so
// no session is lost, every rank's output is byte-identical to a
// fault-free serial reference, and both shards drain to zero after
// release. The deterministic case trips on an exact launch count; the
// seeded case draws per launch, exercising the same path under a
// randomized trigger.
func TestChaosFaultInjection8Clients(t *testing.T) {
	for _, tc := range []struct {
		name, spec string
	}{
		{"deterministic-hang", "gpu=0,after=6,kind=hang"},
		{"seeded-random", "gpu=0,rate=0.3,seed=11,kinds=hang|fatal"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan, err := gpusim.ParseFaultSpec(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			s := startServerOn(t, ServerConfig{
				Listen:     []string{"inproc://chaos-" + tc.name},
				Functional: true,
				GPUs:       2,
				FaultPlan:  plan,
			})
			const clients, cycles = 8, 3
			ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
			w, err := workloads.FromRef(ref)
			if err != nil {
				t.Fatal(err)
			}

			outs := make([][]byte, clients)
			errs := make([]error, clients)
			var wg sync.WaitGroup
			for r := 0; r < clients; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					errs[rank] = func() error {
						c, err := Dial(s.Addr(), s.cfg.ShmDir)
						if err != nil {
							return err
						}
						defer c.Close()
						sess, err := c.Request(ref, rank)
						if err != nil {
							return err
						}
						in := make([]byte, sess.InBytes())
						out := make([]byte, sess.OutBytes())
						w.Fill(rank, in)
						for i := 0; i < cycles; i++ {
							if err := sess.RunCycle(in, out); err != nil {
								return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
							}
							if err := w.Check(rank, out); err != nil {
								return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
							}
						}
						outs[rank] = out
						return sess.Release()
					}()
				}(r)
			}
			wg.Wait()
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d lost its session: %v", rank, err)
				}
			}

			// Fault-free serial reference: gpu 0 is Unhealthy by now, so
			// these sessions run on the surviving shard, one at a time.
			c, err := DialOptions(s.Addr(), Options{ShmDir: s.cfg.ShmDir, NoPipeline: true})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for rank := 0; rank < clients; rank++ {
				sess, err := c.Request(ref, rank)
				if err != nil {
					t.Fatal(err)
				}
				in := make([]byte, sess.InBytes())
				want := make([]byte, sess.OutBytes())
				w.Fill(rank, in)
				if err := sess.RunCycle(in, want); err != nil {
					t.Fatal(err)
				}
				if err := sess.Release(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(outs[rank], want) {
					t.Fatalf("rank %d: output under fault injection differs from fault-free serial reference", rank)
				}
			}

			samples := scrapeMetrics(t, s.Metrics())
			faults := samples[`gpusim_faults_total{gpu="0",kind="hang"}`] +
				samples[`gpusim_faults_total{gpu="0",kind="fatal"}`]
			if tc.name == "deterministic-hang" && faults != 1 {
				t.Errorf("gpusim_faults_total on gpu 0 = %d, want exactly 1", faults)
			}
			if faults > 0 {
				// A fault fired on a launch, so some session was mid-cycle
				// on gpu 0 and had to move.
				if got := samples["node_failovers_total"]; got < 1 {
					t.Errorf("node_failovers_total = %d after %d faults, want >= 1", got, faults)
				}
				if got := s.node.Health(0); got != node.Unhealthy {
					t.Errorf("gpu 0 health = %v after hang/fatal fault, want unhealthy", got)
				}
				if got := samples[`node_shard_health{gpu="0"}`]; got != int64(node.Unhealthy) {
					t.Errorf(`node_shard_health{gpu="0"} = %d, want %d`, got, int64(node.Unhealthy))
				}
				if open, _, _ := shardStats(t, s, 0); open != 0 {
					t.Errorf("unhealthy gpu 0 still holds %d sessions", open)
				}
			} else if tc.name == "seeded-random" {
				t.Logf("seeded injector drew no fault this run (spec %q)", tc.spec)
			}
			if got := s.node.Health(1); got != node.Healthy {
				t.Errorf("gpu 1 health = %v, want healthy (faults target gpu 0)", got)
			}

			waitShardsClean(t, s)
		})
	}
}
