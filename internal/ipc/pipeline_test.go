package ipc

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// TestPipelinedCycleOneRoundTrip is the acceptance check for verb
// pipelining: a full SND+STR+STP+RCV cycle must cost exactly one frame
// exchange, while a NoPipeline client pays four.
func TestPipelinedCycleOneRoundTrip(t *testing.T) {
	s := startServer(t, 1, true)
	const n = 512
	in := make([]byte, 2*n*4)
	out := make([]byte, n*4)

	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := c.RoundTrips()
	if err := sess.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	if got := c.RoundTrips() - before; got != 1 {
		t.Fatalf("pipelined cycle cost %d round trips, want 1", got)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}

	serial, err := DialOptions(s.Addr(), Options{ShmDir: s.cfg.ShmDir, NoPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	ssess, err := serial.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before = serial.RoundTrips()
	if err := ssess.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	if got := serial.RoundTrips() - before; got < 4 {
		t.Fatalf("serial cycle cost %d round trips, want >= 4", got)
	}
	if err := ssess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxSessionBytes covers the -max-session-bytes satellite: a REQ
// whose staging footprint exceeds the daemon limit is rejected with an
// error that names the limit, and a REQ within the limit still works.
func TestMaxSessionBytes(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Socket:          tempSocket(t),
		Functional:      true,
		MaxSessionBytes: 16 << 10,
	})
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// n=4096 floats: in 2*4096*4 = 32 KiB alone busts the 16 KiB cap.
	_, err = c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 4096}}, 0)
	if err == nil {
		t.Fatal("oversized REQ accepted despite MaxSessionBytes")
	}
	if !strings.Contains(err.Error(), "max-session-bytes") || !strings.Contains(err.Error(), "16384") {
		t.Fatalf("rejection does not name the limit: %v", err)
	}

	// n=512: 2*512*4 + 512*4 = 6 KiB fits; the connection stays usable.
	out := vecaddCycle(t, c, 512, 0)
	res := cuda.Float32s(byteMem(out), 0, 512)
	if res[100] != 100.5 {
		t.Fatalf("post-rejection cycle wrong: out[100] = %g", res[100])
	}
}

// TestBATMisuse pins the dispatcher's batch validation: malformed BAT
// frames are rejected whole with a clear error, before any owner work.
func TestBATMisuse(t *testing.T) {
	s := startServer(t, 1, true)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 64}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	id := sess.ID()

	cases := []struct {
		name string
		reqs []Request
		want string
	}{
		{"empty", nil, "empty BAT"},
		{"req-inside", []Request{{Verb: "REQ"}}, "not allowed in BAT"},
		{"duplicate-verb", []Request{
			{Verb: "SND", Session: id}, {Verb: "SND", Session: id},
		}, "once each"},
		{"out-of-order", []Request{
			{Verb: "STR", Session: id}, {Verb: "SND", Session: id},
		}, "order"},
		{"unknown-session", []Request{{Verb: "SND", Session: 999}}, "unknown session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Do(tc.reqs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}

	// The session survives all that misuse and still runs a normal cycle.
	if err := sess.RunCycle(make([]byte, sess.InBytes()), make([]byte, sess.OutBytes())); err != nil {
		t.Fatalf("session unusable after rejected batches: %v", err)
	}
}

// TestPipelinedStressRace hammers one inproc daemon with 8 concurrent
// pipelined clients for 50 cycles each and checks every output is
// byte-identical to a serial single-shard run of the same input. A
// scraper goroutine renders the daemon's /metrics registry the whole
// time. Run under -race this is the concurrency acceptance test: the
// off-owner staging copies must never race the owner's simulation work,
// and a telemetry scrape must never race either of them.
func TestPipelinedStressRace(t *testing.T) { runStressRace(t, 1) }

// TestShardedStressRace is the same stress run against a 2-shard daemon:
// two owner goroutines execute in parallel, the clients split 4/4
// across the shards, and every output must still match the single-shard
// serial reference byte for byte.
func TestShardedStressRace(t *testing.T) { runStressRace(t, 2) }

func runStressRace(t *testing.T, gpus int) {
	const (
		clients = 8
		iters   = 50
		n       = 128
	)
	s := startServerOn(t, ServerConfig{
		Listen:     []string{fmt.Sprintf("inproc://stress-g%d", gpus)},
		Functional: true,
		GPUs:       gpus,
	})

	input := func(rank int) []byte {
		in := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			in[i] = float32(rank*1000 + i)
			in[n+i] = 0.25
		}
		return cuda.HostFloat32Bytes(in)
	}

	// Serial reference pass on a separate single-shard daemon: one
	// client, one cycle per distinct input.
	refSrv := startServerOn(t, ServerConfig{
		Listen:     []string{fmt.Sprintf("inproc://stress-ref-g%d", gpus)},
		Functional: true,
	})
	ref := make([][]byte, clients)
	serial, err := Dial(refSrv.Addr(), refSrv.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < clients; r++ {
		sess, err := serial.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, sess.OutBytes())
		if err := sess.RunCycle(input(r), out); err != nil {
			t.Fatal(err)
		}
		if err := sess.Release(); err != nil {
			t.Fatal(err)
		}
		ref[r] = out
	}
	serial.Close()

	// Scrape concurrently with the traffic below: every series in the
	// registry is read while the owner and 8 connection goroutines
	// mutate them.
	scrapeDone := make(chan struct{})
	scrapeQuit := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeQuit:
				return
			default:
			}
			var sb strings.Builder
			if err := s.Metrics().WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			s.Metrics().Snapshot()
		}
	}()

	// Every client holds its session open until all of them have placed
	// theirs, so least-sessions placement splits them evenly across the
	// shards before the hammering starts.
	var openWG sync.WaitGroup
	openWG.Add(clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for r := 0; r < clients; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			signalled := false
			signal := func() {
				if !signalled {
					signalled = true
					openWG.Done()
				}
			}
			defer signal()
			c, err := Dial(s.Addr(), s.cfg.ShmDir)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			in := input(rank)
			sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
			if err != nil {
				errs <- err
				return
			}
			signal()
			openWG.Wait()
			out := make([]byte, sess.OutBytes())
			for i := 0; i < iters; i++ {
				if err := sess.RunCycle(in, out); err != nil {
					errs <- fmt.Errorf("client %d iter %d: %w", rank, i, err)
					return
				}
				if string(out) != string(ref[rank]) {
					errs <- fmt.Errorf("client %d iter %d: output differs from serial reference", rank, i)
					return
				}
			}
			errs <- sess.Release()
		}(r)
	}
	wg.Wait()
	close(scrapeQuit)
	<-scrapeDone
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The load spread evenly: clients/gpus sessions were opened per shard.
	for shard := 0; shard < gpus; shard++ {
		opened := -1
		if !s.submitProbe(shard, func() { opened = s.node.Shard(shard).Mgr.SessionsOpened() }) {
			t.Fatal("server closed early")
		}
		if opened != clients/gpus {
			t.Errorf("gpu %d opened %d sessions, want %d", shard, opened, clients/gpus)
		}
	}
}

// TestDisconnectMidBAT kills a client that sent a pipelined cycle and
// vanished before reading the response — with its STR parked at a
// two-party barrier. The surviving party must complete (barrier timeout)
// and the dead client's session and device memory must be reclaimed.
func TestDisconnectMidBAT(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Socket:         tempSocket(t),
		Parties:        2,
		Functional:     true,
		BarrierTimeout: 100 * sim.Millisecond,
	})

	// The victim speaks the raw wire so it can write one BAT frame and
	// hang up without ever reading the response.
	nc, _, err := transport.DialAddr(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WritePreamble(nc, false); err != nil {
		t.Fatal(err)
	}
	vc := transport.NewConn(nc)
	const n = 1024
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	if err := vc.WriteRequest(transport.Request{Verb: "REQ", Ref: &ref, Rank: 0, Plane: transport.PlaneInline}); err != nil {
		t.Fatal(err)
	}
	resp, err := vc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ACK" {
		t.Fatalf("victim REQ: %s %s", resp.Status, resp.Err)
	}
	id := resp.Session
	if err := vc.WriteRequest(transport.Request{Verb: "BAT", Batch: []transport.Request{
		{Verb: "SND", Session: id, Data: make([]byte, resp.InBytes)},
		{Verb: "STR", Session: id},
		{Verb: "STP", Session: id},
		{Verb: "RCV", Session: id},
	}}); err != nil {
		t.Fatal(err)
	}
	vc.Close() // gone before the barrier flushes or the response is written

	survivor, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	done := make(chan error, 1)
	go func() {
		sess, err := survivor.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}, 1)
		if err != nil {
			done <- err
			return
		}
		if err := sess.RunCycle(make([]byte, sess.InBytes()), make([]byte, sess.OutBytes())); err != nil {
			done <- err
			return
		}
		done <- sess.Release()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor wedged behind the dead client's mid-BAT barrier slot")
	}

	for deadline := 400; deadline > 0; deadline-- {
		open, mem := -1, int64(-1)
		if !s.submitProbe(0, func() {
			open = s.node.Shard(0).Mgr.OpenSessions()
			mem = s.node.Shard(0).Dev.MemInUse()
		}) {
			t.Fatal("server closed early")
		}
		if open == 0 && mem == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("mid-BAT disconnect leaked the session or device memory")
}
