package ipc

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gpuvirt/internal/metrics"
	"gpuvirt/internal/workloads"
)

var promSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

// scrapeMetrics GETs a /metrics endpoint serving reg, lints every sample
// line against the Prometheus text format, and returns the samples as a
// series -> value map keyed exactly as rendered (labels included).
func scrapeMetrics(t *testing.T, reg *metrics.Registry) map[string]int64 {
	t.Helper()
	ts := httptest.NewServer(metrics.Handler(reg))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Fatalf("malformed Prometheus sample line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsEndpoint runs pipelined traffic through a daemon and then
// scrapes its registry over HTTP: the per-verb counters and histogram
// counts must be consistent with the client's own round-trip accounting.
func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t, 1, true)
	c, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n, cycles = 256, 3
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	in, out := make([]byte, sess.InBytes()), make([]byte, sess.OutBytes())
	for i := 0; i < cycles; i++ {
		if err := sess.RunCycle(in, out); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}

	samples := scrapeMetrics(t, s.Metrics())
	verb := func(v string) int64 { return samples[`gvmd_verb_requests_total{verb="`+v+`"}`] }

	// Frame-level counters must match the client's round trips exactly:
	// one REQ, one BAT per pipelined cycle, one RLS.
	if got, want := verb("REQ")+verb("BAT")+verb("RLS"), c.RoundTrips(); got != want {
		t.Fatalf("frame-level verb counters sum to %d, client made %d round trips", got, want)
	}
	if verb("REQ") != 1 || verb("BAT") != cycles || verb("RLS") != 1 {
		t.Fatalf("REQ=%d BAT=%d RLS=%d, want 1/%d/1", verb("REQ"), verb("BAT"), verb("RLS"), cycles)
	}
	// BAT inner steps count against their own verbs too.
	for _, v := range []string{"SND", "STR", "STP", "RCV"} {
		if verb(v) != cycles {
			t.Fatalf("%s = %d, want %d (one per pipelined cycle)", v, verb(v), cycles)
		}
	}
	// Histogram counts agree with the counters they time.
	if got := samples[`gvmd_verb_latency_ns_count{verb="BAT"}`]; got != cycles {
		t.Fatalf("BAT latency histogram count = %d, want %d", got, cycles)
	}
	if got := samples["gvmd_bat_steps_count"]; got != cycles {
		t.Fatalf("bat_steps count = %d, want %d", got, cycles)
	}
	if got := samples["gvmd_bat_steps_sum"]; got != 4*cycles {
		t.Fatalf("bat_steps sum = %d, want %d (SND+STR+STP+RCV per cycle)", got, 4*cycles)
	}
	// Manager-side series flow through the same registry, labelled with
	// the owning shard's gpu index.
	if samples[`gvm_sessions_opened_total{gpu="0"}`] != 1 || samples[`gvm_sessions_closed_total{gpu="0"}`] != 1 {
		t.Fatalf("gvm sessions opened/closed = %d/%d, want 1/1",
			samples[`gvm_sessions_opened_total{gpu="0"}`], samples[`gvm_sessions_closed_total{gpu="0"}`])
	}
	if samples[`gvm_flushes_total{gpu="0"}`] != cycles {
		t.Fatalf("gvm_flushes_total = %d, want %d", samples[`gvm_flushes_total{gpu="0"}`], cycles)
	}
	// The node layer accounts placements; the session was released.
	if samples[`node_placed_sessions{gpu="0"}`] != 0 {
		t.Fatalf("node_placed_sessions = %d, want 0 after release", samples[`node_placed_sessions{gpu="0"}`])
	}
	// Data-plane byte counters: InBytes per SND, OutBytes per RCV.
	if got, want := samples[`gvmd_verb_bytes_total{dir="in",verb="SND"}`], int64(cycles)*sess.InBytes(); got != want {
		t.Fatalf("SND bytes = %d, want %d", got, want)
	}
	if got, want := samples[`gvmd_verb_bytes_total{dir="out",verb="RCV"}`], int64(cycles)*sess.OutBytes(); got != want {
		t.Fatalf("RCV bytes = %d, want %d", got, want)
	}
	// Connection-layer series: this client is still connected.
	if samples["ipc_connections"] != 1 || samples["ipc_disconnects_total"] != 0 {
		t.Fatalf("connections=%d disconnects=%d, want 1/0",
			samples["ipc_connections"], samples["ipc_disconnects_total"])
	}
	if samples["ipc_frame_errors_total"] != 0 {
		t.Fatalf("frame errors = %d, want 0", samples["ipc_frame_errors_total"])
	}
}
