package ipc

import (
	"fmt"
	"testing"
	"time"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/node"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// TestPlacementPoliciesEndToEnd boots a 2-shard daemon once per built-in
// placement policy and drives it over the wire: four uniform sessions
// opened back to back (and held open) must balance 2/2 under every
// policy, and the cycle a placed session runs must come back correct
// from whichever shard owns it.
func TestPlacementPoliciesEndToEnd(t *testing.T) {
	for _, policy := range node.PolicyNames() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			s := startServerOn(t, ServerConfig{
				Listen:     []string{"inproc://policy-" + policy},
				Functional: true,
				GPUs:       2,
				Placement:  policy,
			})
			if got := s.node.Policy(); got != policy {
				t.Fatalf("daemon runs policy %q, want %q", got, policy)
			}
			const n = 1024
			var sessions []*Session
			for i := 0; i < 4; i++ {
				c, err := Dial(s.Addr(), s.cfg.ShmDir)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}, i)
				if err != nil {
					t.Fatal(err)
				}
				sessions = append(sessions, sess)
			}
			// Uniform sessions arriving one at a time: every built-in
			// policy degenerates to strict alternation, so the split is 2/2.
			for shard := 0; shard < 2; shard++ {
				opened := -1
				if !s.submitProbe(shard, func() { opened = s.node.Shard(shard).Mgr.SessionsOpened() }) {
					t.Fatal("server closed early")
				}
				if opened != 2 {
					t.Fatalf("policy %s: gpu %d opened %d sessions, want 2", policy, shard, opened)
				}
			}
			// Each session's verbs are served by the shard it was bound to.
			in := make([]float32, 2*n)
			for i := 0; i < n; i++ {
				in[i] = float32(i)
				in[n+i] = 3
			}
			out := make([]byte, n*4)
			for _, sess := range sessions {
				if err := sess.RunCycle(cuda.HostFloat32Bytes(in), out); err != nil {
					t.Fatal(err)
				}
				res := cuda.Float32s(byteMem(out), 0, n)
				if res[99] != 102 {
					t.Fatalf("policy %s: out[99] = %g, want 102", policy, res[99])
				}
				if err := sess.Release(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestShardedDisconnectMidBAT is the cross-shard lifecycle check: a raw
// client dies mid-BAT on one shard while a survivor works on another.
// The survivor completes (its own shard's barrier times out), and the
// dead client's session, device memory, and placement reservation are
// all reclaimed from the shard that owned them.
func TestShardedDisconnectMidBAT(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Listen:         []string{"inproc://sharded-midbat"},
		GPUs:           2,
		Parties:        2,
		Functional:     true,
		BarrierTimeout: 100 * sim.Millisecond,
	})

	// The victim speaks the raw wire: REQ, one unanswered BAT, hang up.
	nc, _, err := transport.DialAddr(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WritePreamble(nc, false); err != nil {
		t.Fatal(err)
	}
	vc := transport.NewConn(nc)
	const n = 1024
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": n}}
	if err := vc.WriteRequest(transport.Request{Verb: "REQ", Ref: &ref, Rank: 0, Plane: transport.PlaneInline}); err != nil {
		t.Fatal(err)
	}
	resp, err := vc.ReadResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ACK" {
		t.Fatalf("victim REQ: %s %s", resp.Status, resp.Err)
	}
	id := resp.Session
	if err := vc.WriteRequest(transport.Request{Verb: "BAT", Batch: []transport.Request{
		{Verb: "SND", Session: id, Data: make([]byte, resp.InBytes)},
		{Verb: "STR", Session: id},
		{Verb: "STP", Session: id},
		{Verb: "RCV", Session: id},
	}}); err != nil {
		t.Fatal(err)
	}
	vc.Close() // parked at its shard's barrier, never to return

	// The survivor lands on the other shard (least-sessions) and runs a
	// full cycle behind its own barrier timeout.
	survivor, err := Dial(s.Addr(), s.cfg.ShmDir)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	done := make(chan error, 1)
	go func() {
		sess, err := survivor.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}, 1)
		if err != nil {
			done <- err
			return
		}
		if err := sess.RunCycle(make([]byte, sess.InBytes()), make([]byte, sess.OutBytes())); err != nil {
			done <- err
			return
		}
		done <- sess.Release()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor wedged behind a dead client on another shard")
	}

	// Every shard ends empty: sessions, device memory, and the node
	// layer's placement reservations.
	for deadline := 400; deadline > 0; deadline-- {
		clean := true
		for shard := 0; shard < 2 && clean; shard++ {
			open, mem := -1, int64(-1)
			if !s.submitProbe(shard, func() {
				open = s.node.Shard(shard).Mgr.OpenSessions()
				mem = s.node.Shard(shard).Dev.MemInUse()
			}) {
				t.Fatal("server closed early")
			}
			clean = open == 0 && mem == 0
		}
		if clean {
			for _, l := range s.node.Loads() {
				if l.Sessions != 0 || l.Bytes != 0 {
					t.Fatalf("gpu %d placement not drained: %d sessions, %d bytes", l.Shard, l.Sessions, l.Bytes)
				}
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("mid-BAT disconnect leaked a session, device memory, or a placement reservation")
}

// TestCloseReclaimsEveryShard opens one session per shard with staged
// input, then closes the daemon: Close must tear every shard's sessions
// down before its owner goroutine exits, returning all device memory.
func TestCloseReclaimsEveryShard(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Listen:     []string{"inproc://close-reclaim"},
		Functional: true,
		GPUs:       2,
	})
	for i := 0; i < 2; i++ {
		c, err := Dial(s.Addr(), s.cfg.ShmDir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 4096}}, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.SendInput(make([]byte, sess.InBytes())); err != nil {
			t.Fatal(err)
		}
		// The session stays open: Close has to reclaim it.
	}
	for shard := 0; shard < 2; shard++ {
		open, mem := -1, int64(-1)
		if !s.submitProbe(shard, func() {
			open = s.node.Shard(shard).Mgr.OpenSessions()
			mem = s.node.Shard(shard).Dev.MemInUse()
		}) {
			t.Fatal("server closed early")
		}
		if open != 1 || mem <= 0 {
			t.Fatalf("gpu %d before Close: %d open sessions, %d bytes in use; want 1 and > 0", shard, open, mem)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waited for every owner, so the shards are quiescent and safe
	// to read directly.
	for shard := 0; shard < 2; shard++ {
		if open := s.node.Shard(shard).Mgr.OpenSessions(); open != 0 {
			t.Errorf("gpu %d still has %d open sessions after Close", shard, open)
		}
		if mem := s.node.Shard(shard).Dev.MemInUse(); mem != 0 {
			t.Errorf("gpu %d still holds %d bytes after Close", shard, mem)
		}
	}
	for _, l := range s.node.Loads() {
		if l.Sessions != 0 || l.Bytes != 0 {
			t.Errorf("gpu %d placement not drained after Close: %d sessions, %d bytes", l.Shard, l.Sessions, l.Bytes)
		}
	}
}

// TestMetricsMultiGPUScrape holds one session on each of two shards and
// scrapes /metrics live: the manager and node series must appear once
// per gpu label, with the placement gauges draining after release.
func TestMetricsMultiGPUScrape(t *testing.T) {
	s := startServerOn(t, ServerConfig{
		Listen:     []string{"inproc://scrape-shards"},
		Functional: true,
		GPUs:       2,
	})
	var sessions []*Session
	for i := 0; i < 2; i++ {
		c, err := Dial(s.Addr(), s.cfg.ShmDir)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 512}}, i)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	samples := scrapeMetrics(t, s.Metrics())
	for shard := 0; shard < 2; shard++ {
		gpu := fmt.Sprintf(`{gpu="%d"}`, shard)
		if got := samples["gvm_sessions_opened_total"+gpu]; got != 1 {
			t.Errorf("gvm_sessions_opened_total%s = %d, want 1", gpu, got)
		}
		if got := samples["node_placed_sessions"+gpu]; got != 1 {
			t.Errorf("node_placed_sessions%s = %d, want 1", gpu, got)
		}
		if got := samples["gvm_mem_in_use_bytes"+gpu]; got <= 0 {
			t.Errorf("gvm_mem_in_use_bytes%s = %d, want > 0", gpu, got)
		}
		if got := samples["gvmd_owner_queue_wait_ns_count"+gpu]; got < 1 {
			t.Errorf("gvmd_owner_queue_wait_ns_count%s = %d, want >= 1", gpu, got)
		}
	}
	for _, sess := range sessions {
		if err := sess.Release(); err != nil {
			t.Fatal(err)
		}
	}
	samples = scrapeMetrics(t, s.Metrics())
	for shard := 0; shard < 2; shard++ {
		gpu := fmt.Sprintf(`{gpu="%d"}`, shard)
		if got := samples["node_placed_sessions"+gpu]; got != 0 {
			t.Errorf("node_placed_sessions%s = %d after release, want 0", gpu, got)
		}
		if got := samples["gvm_sessions_closed_total"+gpu]; got != 1 {
			t.Errorf("gvm_sessions_closed_total%s = %d, want 1", gpu, got)
		}
	}
}
