package ipc

import (
	"fmt"
	"sync"
	"testing"

	"gpuvirt/internal/workloads"
)

// BenchmarkDaemonThroughput measures full SND+STR+STP+RCV cycles against
// a live daemon at several client counts, pipelined (one BAT round trip)
// versus serial (four round trips), over every transport. One op is one
// round: every client completes one cycle. The JSON artifact variant of
// this matrix lives in internal/experiments (gvmbench -benchjson).
func BenchmarkDaemonThroughput(b *testing.B) {
	for _, tr := range []struct{ name, addr string }{
		{"inproc", "inproc://bench-daemon"},
		{"unix", "unix:///tmp/gvmd-bench.sock"},
		{"tcp", "tcp://127.0.0.1:0"},
		{"ring", "ring:///tmp/gvmd-bench-ring.sock"},
	} {
		b.Run(tr.name, func(b *testing.B) {
			shmDir := b.TempDir()
			s, err := NewServer(ServerConfig{
				Listen:     []string{tr.addr},
				Functional: true,
				ShmDir:     shmDir,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for _, clients := range []int{1, 8} {
				for _, mode := range []string{"pipelined", "serial"} {
					b.Run(fmt.Sprintf("c%d-%s", clients, mode), func(b *testing.B) {
						benchCycles(b, s.Addr(), shmDir, clients, mode == "serial")
					})
				}
			}
		})
	}
}

func benchCycles(b *testing.B, addr, shmDir string, clients int, serial bool) {
	b.Helper()
	cs := make([]*Client, clients)
	sess := make([]*Session, clients)
	ins := make([][]byte, clients)
	outs := make([][]byte, clients)
	defer func() {
		for i := range cs {
			if sess[i] != nil {
				sess[i].Release()
			}
			if cs[i] != nil {
				cs[i].Close()
			}
		}
	}()
	for i := range cs {
		c, err := DialOptions(addr, Options{ShmDir: shmDir, NoPipeline: serial})
		if err != nil {
			b.Fatal(err)
		}
		cs[i] = c
		sess[i], err = c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ins[i] = make([]byte, sess[i].InBytes())
		outs[i] = make([]byte, sess[i].OutBytes())
		if err := sess[i].RunCycle(ins[i], outs[i]); err != nil { // warm up
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = sess[i].RunCycle(ins[i], outs[i])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
