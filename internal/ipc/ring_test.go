package ipc

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gpuvirt/internal/shm"
	"gpuvirt/internal/transport"
	"gpuvirt/internal/workloads"
)

// startRingServer boots a functional daemon listening on ring:// with a
// per-test shm directory; both are torn down with the test.
func startRingServer(t testing.TB, gpus int) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := NewServer(ServerConfig{
		Listen:     []string{"ring://" + filepath.Join(dir, "gvmd.sock")},
		ShmDir:     dir,
		Functional: true,
		GPUs:       gpus,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, dir
}

// TestRingCycle runs warm pipelined cycles over the ring plane and
// checks that after REQ the socket goes quiet: every verb of every
// cycle travels as a ring record, one BAT trip per cycle.
func TestRingCycle(t *testing.T) {
	srv, dir := startRingServer(t, 1)
	c, err := Dial(srv.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Plane() != transport.PlaneRing {
		t.Fatalf("plane = %q, want %q", sess.Plane(), transport.PlaneRing)
	}
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	w.Fill(0, in)
	for i := 0; i < 3; i++ {
		if err := sess.RunCycle(in, out); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := w.Check(0, out); err != nil {
			t.Fatalf("cycle %d check: %v", i, err)
		}
	}
	if got := sess.RingTrips(); got != 3 {
		t.Fatalf("ring trips = %d, want 3 (one BAT per cycle)", got)
	}
	if rt := c.RoundTrips(); rt != 1 {
		t.Fatalf("socket round trips = %d, want 1 (REQ only)", rt)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestRingSerialVerbs drives the four verbs as separate ring trips (the
// NoPipeline path): even unbatched, nothing but REQ touches the socket.
func TestRingSerialVerbs(t *testing.T) {
	srv, dir := startRingServer(t, 1)
	c, err := DialOptions(srv.Addr(), Options{ShmDir: dir, NoPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	w.Fill(0, in)
	if err := sess.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(0, out); err != nil {
		t.Fatal(err)
	}
	if got := sess.RingTrips(); got != 4 {
		t.Fatalf("ring trips = %d, want 4 (SND, STR, STP, RCV)", got)
	}
	if rt := c.RoundTrips(); rt != 1 {
		t.Fatalf("socket round trips = %d, want 1 (REQ only)", rt)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestRingFallback asks a daemon that has no ring host for the ring
// plane: the REQ must be rejected with the pre-ring wording and the
// client must renegotiate down to the shm plane transparently.
func TestRingFallback(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(ServerConfig{
		Listen:     []string{"unix://" + filepath.Join(dir, "gvmd.sock")},
		ShmDir:     dir,
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialOptions(srv.Addr(), Options{ShmDir: dir, Plane: transport.PlaneRing})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatalf("fallback REQ: %v", err)
	}
	if sess.Plane() != transport.PlaneShm {
		t.Fatalf("plane = %q, want fallback to %q", sess.Plane(), transport.PlaneShm)
	}
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	w.Fill(0, in)
	if err := sess.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(0, out); err != nil {
		t.Fatal(err)
	}
	if err := sess.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestRing8ClientRace stresses eight concurrent clients over ring://
// against a two-shard daemon, then re-runs every rank's cycle serially
// and requires byte-identical output. Run under -race this also guards
// the ring host's owner-goroutine discipline.
func TestRing8ClientRace(t *testing.T) {
	const clients, cycles = 8, 4
	srv, dir := startRingServer(t, 2)
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}

	outs := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for r := 0; r < clients; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				c, err := Dial(srv.Addr(), dir)
				if err != nil {
					return err
				}
				defer c.Close()
				sess, err := c.Request(ref, rank)
				if err != nil {
					return err
				}
				if sess.Plane() != transport.PlaneRing {
					return fmt.Errorf("rank %d plane = %q, want ring", rank, sess.Plane())
				}
				in := make([]byte, sess.InBytes())
				out := make([]byte, sess.OutBytes())
				w.Fill(rank, in)
				for i := 0; i < cycles; i++ {
					if err := sess.RunCycle(in, out); err != nil {
						return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
					}
					if err := w.Check(rank, out); err != nil {
						return fmt.Errorf("rank %d cycle %d: %w", rank, i, err)
					}
				}
				outs[rank] = out
				return sess.Release()
			}()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	// Serial reference: one rank at a time, unbatched verbs.
	c, err := DialOptions(srv.Addr(), Options{ShmDir: dir, NoPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for rank := 0; rank < clients; rank++ {
		sess, err := c.Request(ref, rank)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, sess.InBytes())
		want := make([]byte, sess.OutBytes())
		w.Fill(rank, in)
		if err := sess.RunCycle(in, want); err != nil {
			t.Fatal(err)
		}
		if err := sess.Release(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(outs[rank], want) {
			t.Fatalf("rank %d: concurrent ring output differs from serial reference", rank)
		}
	}
}

// ringSegments lists session segment files ("gvmd-seg-<id>", doorbell
// excluded) currently present in the shm directory.
func ringSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "gvmd-seg-") && !strings.HasPrefix(name, "gvmd-seg-door-") {
			segs = append(segs, name)
		}
	}
	return segs
}

// TestRingOrphanReclaim kills a client (socket close, no RLS) while its
// session is mid-cycle over the ring. The daemon's hang-up path must
// reclaim the session, its device memory, and unlink the segment file —
// and keep serving new clients. Stale segments from a daemon that died
// outright are reclaimed by the startup sweep, exercised here directly
// via shm.RemoveStale.
func TestRingOrphanReclaim(t *testing.T) {
	srv, dir := startRingServer(t, 1)
	ref := workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 256}}
	w, err := workloads.FromRef(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Timeout bounds the doomed client's in-flight ring trip: once the
	// daemon reclaims the session nobody drains its submission ring, so
	// the abandoned trip must fail instead of spinning forever.
	c, err := DialOptions(srv.Addr(), Options{ShmDir: dir, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(ringSegments(t, dir)); n != 1 {
		t.Fatalf("session segments = %d, want 1", n)
	}
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	w.Fill(0, in)
	if err := sess.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	// Hammer cycles from a goroutine, then yank the socket mid-stream so
	// the hang-up races records in flight between doorbell and drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := sess.RunCycle(in, out); err != nil {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close() // no Release: simulates a killed client process
	deadline := time.Now().Add(5 * time.Second)
	for len(ringSegments(t, dir)) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session segment not reclaimed after hang-up; left: %v", ringSegments(t, dir))
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done

	// The daemon stays healthy: a fresh client gets a fresh session.
	c2, err := Dial(srv.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sess2, err := c2.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.RunCycle(in, out); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(0, out); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Release(); err != nil {
		t.Fatal(err)
	}

	// Startup-sweep half: segments a dead daemon left behind (session and
	// doorbell alike) match the "gvmd-seg-" prefix and are removed.
	stale := t.TempDir()
	for _, name := range []string{"gvmd-seg-7", "gvmd-seg-door-4242"} {
		if err := os.WriteFile(filepath.Join(stale, name), make([]byte, 64), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	n, err := shm.RemoveStale(stale, "gvmd-seg-")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("RemoveStale removed %d, want 2", n)
	}
}

// TestRingCycleZeroAllocZeroSyscall is the tentpole's acceptance test:
// a warm pipelined cycle over the ring allocates nothing and crosses
// the kernel zero times. Syscall-freedom is observed through the futex
// counters behind the doorbells — if neither side ever parks, the whole
// cycle ran on shared-memory atomics alone. Scheduling noise can park a
// side on a busy host, so the syscall half samples a few windows and
// requires one to be completely futex-free.
func TestRingCycleZeroAllocZeroSyscall(t *testing.T) {
	srv, dir := startRingServer(t, 1)
	c, err := Dial(srv.Addr(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The copy workload has no kernels: the cycle is pure control plane
	// plus the two staging copies, so any allocation or futex is the
	// ring's own.
	ref := workloads.Ref{Name: "copy", Params: map[string]int{"n": 4096}}
	sess, err := c.Request(ref, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	for i := range in {
		in[i] = byte(i)
	}
	for i := 0; i < 8; i++ { // warm: staging bound, intern table hot
		if err := sess.RunCycle(in, out); err != nil {
			t.Fatal(err)
		}
	}

	if allocs := testing.AllocsPerRun(64, func() {
		if err := sess.RunCycle(in, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm ring cycle allocates %v objects/op, want 0", allocs)
	}

	const windows, cyclesPerWindow = 5, 100
	clean := false
	for w := 0; w < windows && !clean; w++ {
		waits0, wakes0 := shm.FutexStats()
		for i := 0; i < cyclesPerWindow; i++ {
			if err := sess.RunCycle(in, out); err != nil {
				t.Fatal(err)
			}
		}
		waits1, wakes1 := shm.FutexStats()
		if waits1 == waits0 && wakes1 == wakes0 {
			clean = true
		} else {
			t.Logf("window %d: %d futex waits, %d wakes over %d cycles",
				w, waits1-waits0, wakes1-wakes0, cyclesPerWindow)
		}
	}
	if !clean {
		t.Fatalf("no futex-free window in %d attempts of %d warm cycles", windows, cyclesPerWindow)
	}
}

// BenchmarkRingCycle is the headline number for the ring control plane:
// one warm pipelined SND+STR+STP+RCV cycle per op, single client.
// Compare against BenchmarkDaemonThroughput/unix/c1-pipelined — the
// same cycle over a unix socket.
func BenchmarkRingCycle(b *testing.B) {
	srv, dir := startRingServer(b, 1)
	c, err := Dial(srv.Addr(), dir)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Request(workloads.Ref{Name: "vecadd", Params: map[string]int{"n": 1024}}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Release()
	in := make([]byte, sess.InBytes())
	out := make([]byte, sess.OutBytes())
	if err := sess.RunCycle(in, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := sess.RunCycle(in, out); err != nil {
			b.Fatal(err)
		}
	}
}
