package ipc

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// fuzzPipeConn adapts an in-memory pipe to exercise the frame codecs.
func fuzzPipeConn(t testing.TB) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	_ = a.SetDeadline(time.Now().Add(2 * time.Second))
	_ = b.SetDeadline(time.Now().Add(2 * time.Second))
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// FuzzReadRequest feeds arbitrary bytes to the request decoder: it must
// either produce a request or an error, never panic, and must reject
// frames that are not valid JSON objects.
func FuzzReadRequest(f *testing.F) {
	f.Add([]byte(`{"verb":"REQ","session":1}` + "\n"))
	f.Add([]byte(`{"verb":"SND","session":-9}` + "\n"))
	f.Add([]byte(`{}` + "\n"))
	f.Add([]byte(`garbage` + "\n"))
	f.Add([]byte(`{"verb":` + "\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, frame []byte) {
		if !bytes.ContainsRune(frame, '\n') {
			frame = append(frame, '\n')
		}
		a, b := fuzzPipeConn(t)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = a.ReadRequest() // must not panic
		}()
		if _, err := b.c.Write(frame); err != nil {
			return
		}
		<-done
	})
}

// FuzzResponseRoundTrip: any response written must decode back equal.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add("ACK", 1, "", "seg-1", int64(10), int64(20), 1.5)
	f.Add("ERR", 0, "boom", "", int64(0), int64(0), 0.0)
	f.Fuzz(func(t *testing.T, status string, session int, errStr, seg string, in, out int64, vms float64) {
		want := Response{
			Status: status, Session: session, Err: errStr,
			Segment: seg, InBytes: in, OutBytes: out, VirtualMS: vms,
		}
		a, b := fuzzPipeConn(t)
		go func() { _ = a.WriteResponse(want) }()
		got, err := b.ReadResponse()
		if err != nil {
			// JSON cannot represent some float64 values (NaN/Inf) — the
			// encoder errors rather than corrupting the stream.
			return
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}
