package gvm

import (
	"testing"

	"gpuvirt/internal/sim"
)

func TestQueueSendRecvLatency(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueue[string](env, 0, 50*sim.Microsecond)
	var recvAt sim.Time
	var got string
	env.Go("producer", func(p *sim.Proc) {
		q.Send(p, "msg") // pays one hop on the sender
	})
	env.Go("consumer", func(p *sim.Proc) {
		got = q.Recv(p) // pays one hop on the receiver
		recvAt = p.Now()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "msg" {
		t.Fatalf("got %q", got)
	}
	if recvAt != sim.Time(100*sim.Microsecond) {
		t.Fatalf("received at %v, want 100us (two hops)", recvAt)
	}
}

func TestQueueFIFOOrdering(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueue[int](env, 0, sim.Microsecond)
	var got []int
	env.Go("producer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			q.Send(p, i)
		}
	})
	env.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, q.Recv(p))
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestQueueBoundedBlocksSender(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueue[int](env, 2, 0)
	var thirdSent sim.Time
	env.Go("producer", func(p *sim.Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		q.Send(p, 3) // blocks until the consumer drains one
		thirdSent = p.Now()
	})
	env.Go("consumer", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		_ = q.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if thirdSent != sim.Time(5*sim.Millisecond) {
		t.Fatalf("third send completed at %v, want 5ms", thirdSent)
	}
}

func TestQueueTryRecv(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueue[int](env, 0, sim.Microsecond)
	env.Go("p", func(p *sim.Proc) {
		if _, ok := q.TryRecv(p); ok {
			t.Error("TryRecv on empty queue succeeded")
		}
		before := p.Now()
		if p.Now() != before {
			t.Error("TryRecv miss charged latency")
		}
		q.Send(p, 42)
		v, ok := q.TryRecv(p)
		if !ok || v != 42 {
			t.Errorf("TryRecv = %d,%v", v, ok)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStats(t *testing.T) {
	env := sim.NewEnv()
	q := NewQueue[int](env, 0, 0)
	env.Go("p", func(p *sim.Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		_ = q.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	sent, recv := q.Stats()
	if sent != 2 || recv != 1 {
		t.Fatalf("Stats = %d,%d", sent, recv)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}
