package gvm

import (
	"fmt"

	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/sim"
)

// DirectNotify delivers completions of verbs issued through
// Manager.DirectVerb. It runs on the shard-owner goroutine, either inline
// during the DirectVerb call (for verbs that complete instantly) or from a
// calendar event while the environment drains; implementations must not
// block and must tolerate being called from either context.
type DirectNotify func(verb Verb, st Status, errMsg string)

// BindDirect attaches a zero-hop control surface to a direct-staging
// session: verb completions flow through notify instead of a reply queue,
// and (when in/out are non-nil) the session's pinned staging buffers are
// rebound onto caller-owned memory — the daemon points them into the
// session's mmap'd ring segment, so a client writing the mapped file IS
// writing pinned staging and SND/RCV move zero bytes.
//
// The session keeps its reply queue, so queue-path verbs (SUS/RES, or a
// release issued by the daemon's hang-up sweep) still work alongside the
// direct path.
func (m *Manager) BindDirect(id int, in, out []byte, notify DirectNotify) error {
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("gvm: BindDirect: unknown session %d", id)
	}
	if !s.direct {
		return fmt.Errorf("gvm: BindDirect: session %d is not direct-staging", id)
	}
	if notify == nil {
		return fmt.Errorf("gvm: BindDirect: nil notify")
	}
	if in != nil && s.pinIn != nil {
		if int64(len(in)) != s.spec.InBytes {
			return fmt.Errorf("gvm: BindDirect: in is %d bytes, spec says %d", len(in), s.spec.InBytes)
		}
		s.pinIn = gpusim.WrapHost(in, m.cfg.PinnedStaging)
	}
	if out != nil && s.pinOut != nil {
		if int64(len(out)) != s.spec.OutBytes {
			return fmt.Errorf("gvm: BindDirect: out is %d bytes, spec says %d", len(out), s.spec.OutBytes)
		}
		s.pinOut = gpusim.WrapHost(out, m.cfg.PinnedStaging)
	}
	s.notify = notify
	// Prebind the copy-completion closures so the hot path schedules them
	// without allocating.
	s.sndDone = func() {
		if s.notify != nil {
			s.notify(SND, ACK, "")
		}
	}
	s.rcvDone = func() {
		if s.notify != nil {
			s.notify(RCV, ACK, "")
		}
	}
	return nil
}

// DirectVerb issues one hot-path verb on a bound session, bypassing the
// message queues entirely: the verb's virtual cost is charged as calendar
// events on the shard's clock and the outcome arrives via the session's
// DirectNotify. It must run on the owner goroutine, between or during
// env.Run drains. The synchronous error covers only caller bugs (unknown
// or unbound session, unsupported verb); protocol outcomes — including
// errors — arrive through notify.
//
// Cost model vs the queue path: a ring client writes the mapped segment
// directly, which IS the pinned staging buffer after BindDirect, so SND
// and RCV charge exactly one host copy each (the one real memcpy that
// happened) and zero message-queue hops — the mqueue latency the paper
// measures as virtualization overhead is what this path deletes.
func (m *Manager) DirectVerb(id int, verb Verb) error {
	s, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("gvm: DirectVerb: unknown session %d", id)
	}
	if s.notify == nil {
		return fmt.Errorf("gvm: DirectVerb: session %d not bound", id)
	}
	m.met.requests.Inc()
	s.lastUsed = m.env.Now()
	if s.failed != nil && verb != RLS {
		// The device faulted under this session's kernels: bounce with a
		// retryable error until the failover engine migrates the session.
		s.notify(verb, ERR, retryableSessionErr(s.id, m.cfg.GPUIndex, s.failed))
		return nil
	}
	if s.susp != nil && (verb == SND || verb == STR || verb == RCV ||
		(verb == STP && s.rerunPending)) {
		if !s.evicted {
			// Client-driven SUS still demands an explicit RES.
			s.notify(verb, ERR, fmt.Sprintf("gvm: %v on suspended session %d", verb, s.id))
			return nil
		}
		// The manager evicted this session's arena; restore it
		// transparently before the verb. DirectVerb must not block, so the
		// restore runs on a transient process and re-issues the verb — its
		// completion reaches notify during a calendar drain, exactly like
		// any deferred direct completion.
		m.env.Go("gvm-restore", func(p *sim.Proc) {
			if err := m.restoreWithBackoff(p, s); err != nil {
				if s.notify != nil {
					s.notify(verb, ERR, err.Error())
				}
				return
			}
			// Adopted mid-cycle: replay or cancel the interrupted flush
			// before serving the verb (an STP triggering a replay then
			// parks on stpDirectWait).
			m.gateRerun(s, verb)
			m.directDispatch(s, verb)
		})
		return nil
	}
	m.gateRerun(s, verb)
	return m.directDispatch(s, verb)
}

// directDispatch performs one direct verb on a live (restored) session.
func (m *Manager) directDispatch(s *session, verb Verb) error {
	switch verb {
	case SND:
		if d := m.HostCopyTime(s.spec.InBytes); d > 0 {
			m.env.After(d, s.sndDone)
		} else {
			s.sndDone()
		}
	case STR:
		m.directSTR(s)
	case STP:
		// Ring STP is always blocking-style: no WAIT polling ever crosses
		// the ring; the ack fires from the stream's completion callback.
		switch {
		case s.done:
			s.notify(STP, ACK, "")
		case s.running:
			s.stpDirectWait = true
		default:
			s.notify(STP, ERR, "gvm: STP before STR")
		}
	case RCV:
		if !s.done {
			s.notify(RCV, ERR, "gvm: RCV before completion")
			return nil
		}
		if d := m.HostCopyTime(s.spec.OutBytes); d > 0 {
			m.env.After(d, s.rcvDone)
		} else {
			s.rcvDone()
		}
	case RLS:
		notify := s.notify
		m.teardown(s)
		delete(m.sessions, s.id)
		m.met.sessionsClosed.Inc()
		m.met.openSessions.Dec()
		notify(RLS, ACK, "")
	case SUS:
		// The evacuation D2H needs a process clock; conditions are checked
		// inside the transient process, where they are authoritative.
		m.env.Go("gvm-sus", func(p *sim.Proc) {
			switch {
			case s.running:
				if s.notify != nil {
					s.notify(SUS, ERR, "gvm: SUS while running")
				}
			case s.susp != nil && s.evicted:
				// Adopt the eviction engine's snapshot as a client-held
				// suspension (evictions are transparent to the client).
				s.evicted = false
				m.met.suspensions.Inc()
				if s.notify != nil {
					s.notify(SUS, ACK, "")
				}
			case s.susp != nil:
				if s.notify != nil {
					s.notify(SUS, ERR, "gvm: already suspended")
				}
			default:
				m.suspendSession(p, s)
				m.met.suspensions.Inc()
				if s.notify != nil {
					s.notify(SUS, ACK, "")
				}
			}
		})
	case RES:
		m.env.Go("gvm-res", func(p *sim.Proc) {
			if s.susp == nil {
				if s.notify != nil {
					s.notify(RES, ERR, "gvm: RES without SUS")
				}
				return
			}
			if err := m.resumeSession(p, s, false); err != nil {
				if s.notify != nil {
					s.notify(RES, ERR, err.Error())
				}
				return
			}
			if s.notify != nil {
				s.notify(RES, ACK, "")
			}
		})
	default:
		return fmt.Errorf("gvm: DirectVerb: unsupported verb %v", verb)
	}
	return nil
}

// directSTR joins the session to the STR barrier exactly like the queue
// path does — ring and queue sessions may share one barrier generation —
// and flushes when the shard's parties have all arrived.
func (m *Manager) directSTR(s *session) {
	if s.running {
		s.notify(STR, ERR, "gvm: STR while already running")
		return
	}
	s.running = true
	s.done = false
	s.strArrived = m.env.Now()
	m.strPending = append(m.strPending, s)
	if len(m.strPending) < m.cfg.Parties {
		if m.cfg.BarrierTimeout > 0 && len(m.strPending) == 1 {
			m.armBarrierTimeout()
		}
		return
	}
	m.flushBatch(nil, false)
}
