package gvm

import (
	"encoding/json"
	"fmt"
)

// Wire codec for cross-node session migration: the federation router
// pulls a session off a draining node with the MIG verb (the dispatcher
// answers with Encode's bytes), carries the blob over the control
// plane, and lands it on the target node with ADP (the dispatcher calls
// DecodeExtracted and adopts). The encoding is JSON — migration is a
// cold path moving megabyte arenas, so self-describing beats clever —
// with []byte fields riding base64. Spec is deliberately NOT carried:
// kernel builders are closures, so the router ships the workload
// reference and rank alongside the blob and the target rebuilds the
// spec from its own registry.

// extractedWire is ExtractedSession flattened for the wire, including
// the unexported arena snapshot.
type extractedWire struct {
	ID        int    `json:"id"`
	Direct    bool   `json:"direct"`
	MemQuota  int64  `json:"mem_quota,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Weight    int    `json:"weight,omitempty"`
	Done      bool   `json:"done,omitempty"`
	Rerun     bool   `json:"rerun,omitempty"`
	Footprint int64  `json:"footprint"`
	DevBytes  int64  `json:"dev_bytes"`
	PinIn     []byte `json:"pin_in,omitempty"`
	PinOut    []byte `json:"pin_out,omitempty"`

	SnapIn      []byte   `json:"snap_in,omitempty"`
	SnapOut     []byte   `json:"snap_out,omitempty"`
	SnapInSize  int64    `json:"snap_in_size"`
	SnapOutSize int64    `json:"snap_out_size"`
	Scratch     [][]byte `json:"scratch,omitempty"`
	ScrSizes    []int64  `json:"scr_sizes,omitempty"`
	SnapTotal   int64    `json:"snap_total"`
}

// Encode serializes the extracted session (arena snapshot included) for
// cross-node transport.
func (e *ExtractedSession) Encode() ([]byte, error) {
	if e.snap == nil {
		return nil, fmt.Errorf("gvm: encode extracted session %d: no snapshot", e.ID)
	}
	w := extractedWire{
		ID: e.ID, Direct: e.Direct,
		MemQuota: e.MemQuota, Priority: e.Priority, Weight: e.Weight,
		Done: e.Done, Rerun: e.Rerun,
		Footprint: e.Footprint, DevBytes: e.DevBytes,
		PinIn: e.PinIn, PinOut: e.PinOut,
		SnapIn: e.snap.in, SnapOut: e.snap.out,
		SnapInSize: e.snap.inSize, SnapOutSize: e.snap.outSize,
		Scratch: e.snap.scratch, ScrSizes: e.snap.scrSizes,
		SnapTotal: e.snap.total,
	}
	return json.Marshal(w)
}

// DecodeExtracted rebuilds an extracted session from Encode's bytes.
// Spec is left nil — the caller must set it (rebuilt from the workload
// reference) before adoption. SetID rebinds the session id when the
// target mints a fresh one (cross-node, source ids can collide).
func DecodeExtracted(data []byte) (*ExtractedSession, error) {
	var w extractedWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("gvm: decode extracted session: %w", err)
	}
	return &ExtractedSession{
		ID: w.ID, Direct: w.Direct,
		MemQuota: w.MemQuota, Priority: w.Priority, Weight: w.Weight,
		Done: w.Done, Rerun: w.Rerun,
		Footprint: w.Footprint, DevBytes: w.DevBytes,
		PinIn: w.PinIn, PinOut: w.PinOut,
		snap: &snapshot{
			in: w.SnapIn, out: w.SnapOut,
			inSize: w.SnapInSize, outSize: w.SnapOutSize,
			scratch: w.Scratch, scrSizes: w.ScrSizes,
			total: w.SnapTotal,
		},
	}, nil
}

// SetID rebinds the extracted session to a new id before adoption. A
// cross-node adopter mints a fresh local id (the source node's striped
// id space overlaps the target's), while intra-node failover keeps the
// original.
func (e *ExtractedSession) SetID(id int) { e.ID = id }
