package gvm

import (
	"fmt"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// Suspend/resume extends the six-verb protocol with the facility the
// paper's related work [9] (vCUDA) provides: the manager records a
// session's complete GPU state — every device buffer's contents — in
// host memory, releases the device resources, and can later restore the
// session transparently. Suspended sessions keep their identity and
// shared-memory segment; only the GPU footprint is evacuated, so other
// sessions (or other tenants) can use the device memory meanwhile.
//
// The same machinery is the manager's internal evict/restore engine
// (the residency layer): when an allocation cannot fit, the allocator's
// evictor callback suspends the least-valuable idle session
// (lowest priority, then LRU) and retries, and the victim's arena is
// restored transparently on its next SND/STR/RCV. A session's logical
// reservation (devBytes) survives eviction — "admitted" no longer
// implies "resident".

// The two extension verbs.
const (
	SUS Verb = iota + RLS + 1 // suspend: evacuate GPU state to the host
	RES                       // resume: restore GPU state
)

// snapshot is a suspended session's saved device state.
type snapshot struct {
	in, out  []byte
	inSize   int64
	outSize  int64
	scratch  [][]byte
	scrSizes []int64
	total    int64
}

// handleSUS serves a client-driven suspend. Unlike an eviction, a
// client-suspended session stays down until the client's explicit RES.
func (m *Manager) handleSUS(p *sim.Proc, s *session) {
	if s.running {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: SUS while running"})
		return
	}
	if s.susp != nil {
		if s.evicted {
			// The eviction engine already evacuated the session; the client
			// cannot know that (evictions are transparent), so SUS adopts
			// the snapshot as a client-held suspension. No bytes move; the
			// session now stays down until the client's explicit RES.
			s.evicted = false
			m.met.suspensions.Inc()
			s.reply.Send(p, Response{Status: ACK, Session: s.id})
			return
		}
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: already suspended"})
		return
	}
	m.suspendSession(p, s)
	m.met.suspensions.Inc()
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// handleRES serves a client-driven resume.
func (m *Manager) handleRES(p *sim.Proc, s *session) {
	if s.susp == nil {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: RES without SUS"})
		return
	}
	if err := m.resumeSession(p, s, false); err != nil {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: err.Error()})
		return
	}
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// suspendSession evacuates the session's device buffers into a host-side
// snapshot and frees its device memory (resident bytes drop; the logical
// reservation stays). The evacuation is a D2H transfer of the session's
// whole footprint, charged on p's clock. The caller must have checked
// !s.running && s.susp == nil.
func (m *Manager) suspendSession(p *sim.Proc, s *session) {
	ctx := m.ctx
	dev := m.dev
	start := p.Now()
	snap := &snapshot{}
	save := func(ptr cuda.DevPtr) ([]byte, int64) {
		if ptr == 0 {
			return nil, 0
		}
		size, ok := ctx.SizeOf(ptr)
		if !ok {
			return nil, 0
		}
		staging := dev.AllocHost(size, true)
		ctx.MemcpyD2H(p, staging, ptr, size)
		snap.total += size
		var data []byte
		if dev.Functional() {
			data = append([]byte(nil), staging.Data()...)
		}
		_ = ctx.Free(ptr)
		return data, size
	}
	snap.in, snap.inSize = save(s.devIn)
	snap.out, snap.outSize = save(s.devOut)
	for _, ptr := range s.scratch {
		data, size := save(ptr)
		snap.scratch = append(snap.scratch, data)
		snap.scrSizes = append(snap.scrSizes, size)
	}
	s.devIn, s.devOut, s.scratch = 0, 0, nil
	s.kernels = nil // pointers are stale; rebuilt on resume
	s.ops = nil     // the prebound flush closures captured those kernels
	s.susp = snap
	m.met.swapOutBytes.Add(snap.total)
	m.cfg.trace("gvm", fmt.Sprintf("SUS s%d %dB", s.id, snap.total), start, p.Now())
}

// resumeSession reallocates the session's device buffers, restores their
// contents, rebuilds the kernel sequence against the new addresses and
// re-prepares the flush ops. On failure (device memory still exhausted
// with nothing evictable) every partial allocation is released and the
// snapshot stays intact, so the resume can be retried. evictedRestore
// selects the metric pair (lazy restore vs client RES).
func (m *Manager) resumeSession(p *sim.Proc, s *session, evictedRestore bool) error {
	// Restoring may itself need room: the allocator's evictor runs inside
	// these Mallocs and charges evacuations on m.curProc.
	prev := m.curProc
	m.curProc = p
	defer func() { m.curProc = prev }()
	ctx := m.ctx
	dev := m.dev
	snap := s.susp
	start := p.Now()
	// Snapshot-sized buffers are already counted in the session's
	// reservation, so they come back through the raw context; only
	// scratch beyond the original set (fresh bytes) goes through the
	// quota allocator below.
	restore := func(data []byte, size int64) (cuda.DevPtr, error) {
		if size == 0 {
			return 0, nil
		}
		ptr, err := ctx.Malloc(size)
		if err != nil {
			return 0, err
		}
		staging := dev.AllocHost(size, true)
		if dev.Functional() && data != nil {
			copy(staging.Data(), data)
		}
		ctx.MemcpyH2D(p, ptr, staging, size)
		return ptr, nil
	}
	var err error
	if s.devIn, err = restore(snap.in, snap.inSize); err != nil {
		m.freeSessionBuffers(s)
		return err
	}
	if s.devOut, err = restore(snap.out, snap.outSize); err != nil {
		m.freeSessionBuffers(s)
		return err
	}
	for i, data := range snap.scratch {
		ptr, err := restore(data, snap.scrSizes[i])
		if err != nil {
			m.freeSessionBuffers(s)
			return err
		}
		s.scratch = append(s.scratch, ptr)
	}
	// Rebuild the kernel sequence against the restored addresses. The
	// builder may allocate fresh scratch; to keep the restored contents
	// authoritative, rebuilding uses the restored scratch pointers via a
	// replaying allocator.
	if s.spec.Build != nil {
		replay := &replayScratch{ptrs: s.scratch}
		b := &bufReplay{in: s.devIn, out: s.devOut, fresh: &sessionAllocator{m: m, s: s}, replay: replay}
		ks, err := b.build(s)
		if err != nil {
			m.freeSessionBuffers(s)
			return err
		}
		s.kernels = ks
	}
	s.susp = nil
	s.evicted = false
	// The flush closures captured the old kernel objects; rebind them to
	// the rebuilt sequence so a post-restore STR launches live kernels.
	s.ops = nil
	m.prepareOps(s)
	if evictedRestore {
		m.met.restores.Inc()
	} else {
		m.met.resumes.Inc()
	}
	m.met.swapInBytes.Add(snap.total)
	m.cfg.trace("gvm", fmt.Sprintf("RES s%d %dB", s.id, snap.total), start, p.Now())
	return nil
}

// restoreWithBackoff resumes an evicted session, waiting out transient
// memory pressure: when the obstacle is another RUNNING session (whose
// completion will make it evictable), the restore retries on a growing
// virtual backoff instead of surfacing a spurious error on a verb that
// is valid from the client's point of view — evictions are transparent,
// so their restores must not fail while progress is possible. The wait
// is bounded (a wedged strict barrier can pin memory forever), and
// client-driven RES keeps fail-fast semantics via resumeSession.
//
// Device faults fail fast: a faulted device rejects every Malloc, so no
// amount of waiting for other sessions makes a restore succeed — without
// the check, a restore on a degraded shard with other sessions running
// would burn the full 60 virtual seconds retrying an allocation that can
// never work, stalling the failover engine's quiesce behind it.
//
// The give-up condition distinguishes HOW the blocking memory can come
// free (audited for the failover restore path, which runs off the
// request loop):
//
//   - progressCalendar: a running flush's completion, or a parked
//     barrier's timeout flush, is a calendar event — it fires while this
//     restore sleeps, so backing off and retrying makes progress.
//   - progressQueued: the memory is pinned by sessions parked at the STR
//     barrier with no timeout armed. Only queued owner work — the peer
//     STR that completes the barrier, or an RLS already waiting behind
//     the verb being served — can free it, and that work cannot run
//     while this restore occupies the loop (queue path) or keeps the
//     calendar busy (direct/adopt paths). Sleeping here is futile:
//     give up NOW with a retryable error so the owner drains its queue
//     and the client re-issues the verb against freed memory.
//   - progressNone: nothing running, nothing parked — every evictable
//     victim was already evicted by the failed resume, so no amount of
//     waiting helps. Surface the error.
func (m *Manager) restoreWithBackoff(p *sim.Proc, s *session) error {
	const maxWait = 60 * sim.Second
	delay := sim.Millisecond
	var waited sim.Duration
	for {
		err := m.resumeSession(p, s, true)
		if err == nil {
			return nil
		}
		if _, ok := gpusim.IsFault(err); ok {
			return err
		}
		if waited >= maxWait {
			return err
		}
		switch m.restoreProgress(s) {
		case progressCalendar:
			// Retry below: the calendar frees memory while we sleep.
		case progressQueued:
			return fmt.Errorf("%s", Retryable(err.Error()))
		default:
			return err
		}
		p.Sleep(delay) // calendar drains; running streams complete
		waited += delay
		if delay < 100*sim.Millisecond {
			delay *= 2
		}
	}
}

// Progress classes for a failed in-backoff restore; see
// restoreWithBackoff.
const (
	progressNone = iota
	progressQueued
	progressCalendar
)

// restoreProgress classifies how memory pinned by other sessions can
// come free for a retried restore of s.
func (m *Manager) restoreProgress(s *session) int {
	parked := func(o *session) bool {
		for _, b := range m.strPending {
			if b == o {
				return true
			}
		}
		return false
	}
	best := progressNone
	for _, o := range m.sessions {
		if o == s || !o.running {
			continue
		}
		if !parked(o) {
			// A launched flush completes on the calendar.
			return progressCalendar
		}
		// Parked at the barrier: only a timeout flush progresses on the
		// calendar; otherwise the peer STR must come through the queue.
		if m.cfg.BarrierTimeout > 0 {
			best = progressCalendar
		} else if best < progressQueued {
			best = progressQueued
		}
	}
	return best
}

// evictForAlloc is the allocator's make-room callback: suspend the
// least-valuable idle session and let the allocation retry. It returns
// false when nothing is evictable (no current process, or every session
// is running, already suspended, or holds no device bytes).
func (m *Manager) evictForAlloc(need int64) bool {
	p := m.curProc
	if p == nil {
		return false
	}
	v := m.evictionVictim()
	if v == nil {
		return false
	}
	m.suspendSession(p, v)
	v.evicted = true
	m.met.evictions.Inc()
	if m.log != nil {
		m.log.Info("gvm evict", "session", v.id, "bytes", v.susp.total, "need", need)
	}
	return true
}

// evictionVictim picks the session to evict: lowest priority first,
// least recently used within a priority, lowest id as the final
// deterministic tie-break. Running sessions (which includes sessions
// parked at the STR barrier), suspended sessions and sessions without
// device buffers are ineligible.
func (m *Manager) evictionVictim() *session {
	var best *session
	for _, s := range m.sessions {
		if s.running || s.susp != nil {
			continue
		}
		if s.devIn == 0 && s.devOut == 0 && len(s.scratch) == 0 {
			continue
		}
		if best == nil || s.priority < best.priority ||
			(s.priority == best.priority &&
				(s.lastUsed < best.lastUsed || (s.lastUsed == best.lastUsed && s.id < best.id))) {
			best = s
		}
	}
	return best
}

// sessionAllocator is the task.Allocator a session's device allocations
// flow through: it enforces the session's hard memory quota (HAMi-style,
// at Malloc time) and keeps the session's logical reservation — and the
// device's reserved-bytes gauge — in step with what the session holds.
// Restore-path reallocations of already-reserved bytes bypass it.
type sessionAllocator struct {
	m *Manager
	s *session
}

func (a *sessionAllocator) Malloc(n int64) (cuda.DevPtr, error) {
	rounded := a.m.dev.RoundUp(n)
	if a.s.memQuota > 0 && a.s.devBytes+rounded > a.s.memQuota {
		return 0, fmt.Errorf("gvm: session %d memory quota exceeded: %d bytes held + %d requested > quota %d",
			a.s.id, a.s.devBytes, rounded, a.s.memQuota)
	}
	ptr, err := a.m.ctx.Malloc(n)
	if err != nil {
		return 0, err
	}
	a.s.devBytes += rounded
	a.m.dev.Reserve(rounded)
	return ptr, nil
}

func (a *sessionAllocator) Free(p cuda.DevPtr) error {
	size, ok := a.m.ctx.SizeOf(p)
	if err := a.m.ctx.Free(p); err != nil {
		return err
	}
	if ok {
		a.s.devBytes -= size
		a.m.dev.Unreserve(size)
	}
	return nil
}

// freeSessionBuffers releases whatever device buffers a partially
// restored session holds, keeping its snapshot intact. The logical
// reservation is untouched: the session still holds its bytes, they are
// just not resident.
func (m *Manager) freeSessionBuffers(s *session) {
	ctx := m.ctx
	if s.devIn != 0 {
		_ = ctx.Free(s.devIn)
		s.devIn = 0
	}
	if s.devOut != 0 {
		_ = ctx.Free(s.devOut)
		s.devOut = 0
	}
	for _, ptr := range s.scratch {
		_ = ctx.Free(ptr)
	}
	s.scratch = nil
}

// replayScratch hands back the restored scratch allocations in the order
// the original builder requested them, so the rebuilt kernels address
// the restored data.
type replayScratch struct {
	ptrs []cuda.DevPtr
	next int
}

type bufReplay struct {
	in, out cuda.DevPtr
	fresh   allocator // beyond-the-replay allocations (quota-checked)
	replay  *replayScratch
}

type allocator interface {
	Malloc(n int64) (cuda.DevPtr, error)
	Free(p cuda.DevPtr) error
}

func (b *bufReplay) Malloc(n int64) (cuda.DevPtr, error) {
	if b.replay.next < len(b.replay.ptrs) {
		p := b.replay.ptrs[b.replay.next]
		b.replay.next++
		return p, nil
	}
	// The builder asked for more scratch than the original run: allocate
	// fresh memory (it carries no restored state, and it is new bytes —
	// quota-checked and reserved).
	return b.fresh.Malloc(n)
}

func (b *bufReplay) Free(p cuda.DevPtr) error { return b.fresh.Free(p) }

func (b *bufReplay) build(s *session) ([]*cuda.Kernel, error) {
	var extra []cuda.DevPtr
	bufs := &task.Buffers{In: b.in, Out: b.out, Alloc: b, Scratch: &extra}
	ks, err := s.spec.Build(bufs)
	if err != nil {
		// Release only the allocations beyond the replayed set: those were
		// freshly reserved by this rebuild. The replayed pointers are still
		// owned by the session (s.scratch) and are released — reservation
		// intact — by the caller's freeSessionBuffers.
		if b.replay.next < len(extra) {
			for _, p := range extra[b.replay.next:] {
				_ = b.fresh.Free(p)
			}
		}
		return nil, err
	}
	// Track any extra scratch beyond the replayed set. Replayed pointers
	// were appended too (the builder goes through NewScratch for all of
	// them), so rebuild the session scratch list from the builder's view.
	s.scratch = extra
	return ks, nil
}
