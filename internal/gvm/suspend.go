package gvm

import (
	"fmt"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// Suspend/resume extends the six-verb protocol with the facility the
// paper's related work [9] (vCUDA) provides: the manager records a
// session's complete GPU state — every device buffer's contents — in
// host memory, releases the device resources, and can later restore the
// session transparently. Suspended sessions keep their identity and
// shared-memory segment; only the GPU footprint is evacuated, so other
// sessions (or other tenants) can use the device memory meanwhile.

// The two extension verbs.
const (
	SUS Verb = iota + RLS + 1 // suspend: evacuate GPU state to the host
	RES                       // resume: restore GPU state
)

// snapshot is a suspended session's saved device state.
type snapshot struct {
	in, out  []byte
	inSize   int64
	outSize  int64
	scratch  [][]byte
	scrSizes []int64
	total    int64
}

// handleSUS evacuates the session's device buffers into a host-side
// snapshot and frees its device memory. The evacuation is a D2H transfer
// of the session's whole footprint on the session's device.
func (m *Manager) handleSUS(p *sim.Proc, s *session) {
	if s.running {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: SUS while running"})
		return
	}
	if s.susp != nil {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: already suspended"})
		return
	}
	ctx := m.ctx
	dev := m.dev
	start := p.Now()
	snap := &snapshot{}
	save := func(ptr cuda.DevPtr) ([]byte, int64) {
		if ptr == 0 {
			return nil, 0
		}
		size, ok := ctx.SizeOf(ptr)
		if !ok {
			return nil, 0
		}
		staging := dev.AllocHost(size, true)
		ctx.MemcpyD2H(p, staging, ptr, size)
		snap.total += size
		var data []byte
		if dev.Functional() {
			data = append([]byte(nil), staging.Data()...)
		}
		_ = ctx.Free(ptr)
		return data, size
	}
	snap.in, snap.inSize = save(s.devIn)
	snap.out, snap.outSize = save(s.devOut)
	for _, ptr := range s.scratch {
		data, size := save(ptr)
		snap.scratch = append(snap.scratch, data)
		snap.scrSizes = append(snap.scrSizes, size)
	}
	s.devIn, s.devOut, s.scratch = 0, 0, nil
	s.kernels = nil // pointers are stale; rebuilt on resume
	s.susp = snap
	m.met.suspensions.Inc()
	m.cfg.trace("gvm", fmt.Sprintf("SUS s%d %dB", s.id, snap.total), start, p.Now())
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// handleRES reallocates the session's device buffers, restores their
// contents and rebuilds the kernel sequence against the new addresses.
func (m *Manager) handleRES(p *sim.Proc, s *session) {
	if s.susp == nil {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: RES without SUS"})
		return
	}
	ctx := m.ctx
	dev := m.dev
	snap := s.susp
	start := p.Now()
	fail := func(err error) {
		// Restore failed (e.g. device memory now exhausted): the session
		// stays suspended so the client can retry later.
		m.freeSessionBuffers(s)
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: err.Error()})
	}
	restore := func(data []byte, size int64) (cuda.DevPtr, error) {
		if size == 0 {
			return 0, nil
		}
		ptr, err := ctx.Malloc(size)
		if err != nil {
			return 0, err
		}
		staging := dev.AllocHost(size, true)
		if dev.Functional() && data != nil {
			copy(staging.Data(), data)
		}
		ctx.MemcpyH2D(p, ptr, staging, size)
		return ptr, nil
	}
	var err error
	if s.devIn, err = restore(snap.in, snap.inSize); err != nil {
		fail(err)
		return
	}
	if s.devOut, err = restore(snap.out, snap.outSize); err != nil {
		fail(err)
		return
	}
	for i, data := range snap.scratch {
		ptr, err := restore(data, snap.scrSizes[i])
		if err != nil {
			fail(err)
			return
		}
		s.scratch = append(s.scratch, ptr)
	}
	// Rebuild the kernel sequence against the restored addresses. The
	// builder may allocate fresh scratch; to keep the restored contents
	// authoritative, rebuilding uses the restored scratch pointers via a
	// replaying allocator.
	if s.spec.Build != nil {
		replay := &replayScratch{ptrs: s.scratch}
		b := &bufReplay{in: s.devIn, out: s.devOut, ctx: ctx, replay: replay}
		ks, err := b.build(s)
		if err != nil {
			fail(err)
			return
		}
		s.kernels = ks
	}
	s.susp = nil
	m.met.resumes.Inc()
	m.cfg.trace("gvm", fmt.Sprintf("RES s%d %dB", s.id, snap.total), start, p.Now())
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// freeSessionBuffers releases whatever device buffers a partially
// restored session holds, keeping its snapshot intact.
func (m *Manager) freeSessionBuffers(s *session) {
	ctx := m.ctx
	if s.devIn != 0 {
		_ = ctx.Free(s.devIn)
		s.devIn = 0
	}
	if s.devOut != 0 {
		_ = ctx.Free(s.devOut)
		s.devOut = 0
	}
	for _, ptr := range s.scratch {
		_ = ctx.Free(ptr)
	}
	s.scratch = nil
}

// replayScratch hands back the restored scratch allocations in the order
// the original builder requested them, so the rebuilt kernels address
// the restored data.
type replayScratch struct {
	ptrs []cuda.DevPtr
	next int
}

type bufReplay struct {
	in, out cuda.DevPtr
	ctx     allocator
	replay  *replayScratch
}

type allocator interface {
	Malloc(n int64) (cuda.DevPtr, error)
	Free(p cuda.DevPtr) error
}

func (b *bufReplay) Malloc(n int64) (cuda.DevPtr, error) {
	if b.replay.next < len(b.replay.ptrs) {
		p := b.replay.ptrs[b.replay.next]
		b.replay.next++
		return p, nil
	}
	// The builder asked for more scratch than the original run: allocate
	// fresh memory (it carries no restored state).
	return b.ctx.Malloc(n)
}

func (b *bufReplay) Free(p cuda.DevPtr) error { return b.ctx.Free(p) }

func (b *bufReplay) build(s *session) ([]*cuda.Kernel, error) {
	var extra []cuda.DevPtr
	bufs := &task.Buffers{In: b.in, Out: b.out, Alloc: b, Scratch: &extra}
	ks, err := s.spec.Build(bufs)
	if err != nil {
		for _, p := range extra {
			_ = b.ctx.Free(p)
		}
		return nil, err
	}
	// Track any extra scratch beyond the replayed set. Replayed pointers
	// were appended too (the builder goes through NewScratch for all of
	// them), so rebuild the session scratch list from the builder's view.
	s.scratch = extra
	return ks, nil
}
