package gvm

import (
	"testing"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"

	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

func newManager(t *testing.T, mut func(*Config)) (*sim.Env, *Manager) {
	t.Helper()
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	cfg := Config{Device: dev}
	if mut != nil {
		mut(&cfg)
	}
	m := New(env, cfg)
	m.Start()
	return env, m
}

func TestVerbAndStatusStrings(t *testing.T) {
	if REQ.String() != "REQ" || RLS.String() != "RLS" {
		t.Fatal("verb names wrong")
	}
	if Verb(99).String() == "" {
		t.Fatal("out-of-range verb has empty name")
	}
	if ACK.String() != "ACK" || WAIT.String() != "WAIT" || ERR.String() != "ERR" {
		t.Fatal("status names wrong")
	}
}

func TestNewRequiresDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a nil device")
		}
	}()
	New(sim.NewEnv(), Config{})
}

func TestManagerInitializationPaysTinitOnce(t *testing.T) {
	env, m := newManager(t, nil)
	var readyAt sim.Time = -1
	m.Ready().OnFire(func(any) { readyAt = env.Now() })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	arch := m.Device().Arch()
	want := sim.Time(arch.DeviceInitCost + arch.ContextCreateCost)
	if readyAt != want {
		t.Fatalf("manager ready at %v, want %v (one context only)", readyAt, want)
	}
}

func TestREQWithoutSpecErrors(t *testing.T) {
	env, m := newManager(t, nil)
	var got Response
	env.Go("client", func(p *sim.Proc) {
		p.Wait(m.Ready())
		reply := NewQueue[Response](env, 0, 0)
		m.RequestQueue().Send(p, Request{Verb: REQ, Reply: reply})
		got = reply.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != ERR {
		t.Fatalf("status = %v, want ERR", got.Status)
	}
}

func TestUnknownSessionDropped(t *testing.T) {
	env, m := newManager(t, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(m.Ready())
		// SND against a session that does not exist: silently dropped
		// (the sender would time out in a real system; in the simulation
		// it just gets no reply).
		m.RequestQueue().Send(p, Request{Session: 12345, Verb: SND})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Requests() != 1 {
		t.Fatalf("Requests = %d", m.Requests())
	}
}

func TestUnknownVerbErrors(t *testing.T) {
	env, m := newManager(t, nil)
	var got Response
	env.Go("client", func(p *sim.Proc) {
		p.Wait(m.Ready())
		reply := NewQueue[Response](env, 0, 0)
		m.RequestQueue().Send(p, Request{Verb: REQ, Spec: &task.Spec{Name: "t", InBytes: 8, OutBytes: 8}, Reply: reply})
		r := reply.Recv(p)
		if r.Status != ACK {
			t.Error("REQ failed")
			return
		}
		m.RequestQueue().Send(p, Request{Session: r.Session, Verb: Verb(42)})
		got = reply.Recv(p)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Status != ERR {
		t.Fatalf("status = %v, want ERR for unknown verb", got.Status)
	}
}

func TestHostCopyTime(t *testing.T) {
	env, m := newManager(t, func(c *Config) { c.HostCopyBW = 1e9 })
	_ = env
	if got := m.HostCopyTime(1e9); got != sim.Second {
		t.Fatalf("HostCopyTime(1GB @ 1GB/s) = %v, want 1s", got)
	}
	if m.HostCopyTime(0) != 0 || m.HostCopyTime(-5) != 0 {
		t.Fatal("non-positive sizes should cost nothing")
	}
}

func TestSessionAccounting(t *testing.T) {
	env, m := newManager(t, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(m.Ready())
		reply := NewQueue[Response](env, 0, 0)
		m.RequestQueue().Send(p, Request{Verb: REQ, Spec: &task.Spec{Name: "t", InBytes: 64, OutBytes: 64}, Reply: reply})
		r := reply.Recv(p)
		if r.Status != ACK {
			t.Error("REQ failed")
			return
		}
		if m.OpenSessions() != 1 {
			t.Errorf("OpenSessions = %d", m.OpenSessions())
		}
		if m.Segment(r.Session) == nil {
			t.Error("Segment returned nil for a live session")
		}
		if m.Segment(999) != nil {
			t.Error("Segment returned something for a bogus session")
		}
		m.RequestQueue().Send(p, Request{Session: r.Session, Verb: RLS})
		if rr := reply.Recv(p); rr.Status != ACK {
			t.Errorf("RLS: %v", rr.Status)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if m.SessionsOpened() != 1 || m.SessionsClosed() != 1 || m.OpenSessions() != 0 {
		t.Fatalf("accounting: opened=%d closed=%d live=%d",
			m.SessionsOpened(), m.SessionsClosed(), m.OpenSessions())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.HostCopyBW != 24e9 {
		t.Fatalf("HostCopyBW default = %v", c.HostCopyBW)
	}
	if c.MsgLatency != 20*sim.Microsecond {
		t.Fatalf("MsgLatency default = %v", c.MsgLatency)
	}
	if c.Parties != 1 {
		t.Fatalf("Parties default = %d", c.Parties)
	}
	if c.ResourceSetup != 300*sim.Microsecond {
		t.Fatalf("ResourceSetup default = %v", c.ResourceSetup)
	}
}
