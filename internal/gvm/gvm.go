// Package gvm implements the paper's contribution: the GPU Virtualization
// Manager, a run-time layer that owns the only GPU context and exposes a
// Virtual GPU (VGPU) to every SPMD process in the node.
//
// Structure (paper Figure 7): the base layer is the manager process, one
// POSIX-style shared-memory segment per client (data plane), and
// request/response message queues (control plane). Clients drive the
// six-verb protocol of Figure 8 — REQ, SND, STR, STP, RCV, RLS — through
// the API layer in package vgpu.
//
// The manager pre-initializes the device and its single context, so
// clients never pay Tinit; it gives each client a dedicated CUDA stream
// and pinned staging buffers; and it barriers STR requests from all
// parties before flushing every stream at once, so Fermi's concurrent
// kernel execution and copy/compute overlap apply *across* processes.
package gvm

import (
	"fmt"
	"log/slog"
	"math/bits"
	"sort"
	"strconv"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/metrics"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/trace"
)

// Verb is a protocol request type (paper Figure 8).
type Verb int

// The six protocol verbs.
const (
	REQ Verb = iota // request VGPU resources
	SND             // input data is in shared memory; stage it
	STR             // start execution (barriered across parties)
	STP             // query execution status
	RCV             // copy results back to shared memory
	RLS             // release resources
)

var verbNames = [...]string{"REQ", "SND", "STR", "STP", "RCV", "RLS", "SUS", "RES"}

func (v Verb) String() string {
	if v < 0 || int(v) >= len(verbNames) {
		return fmt.Sprintf("Verb(%d)", int(v))
	}
	return verbNames[v]
}

// Status is a protocol response code.
type Status int

// Response codes: ACK (done), WAIT (execution still in flight), ERR.
const (
	ACK Status = iota
	WAIT
	ERR
)

func (s Status) String() string {
	switch s {
	case ACK:
		return "ACK"
	case WAIT:
		return "WAIT"
	default:
		return "ERR"
	}
}

// Request is a control-plane message from a client to the manager.
type Request struct {
	Session int
	Verb    Verb
	Spec    *task.Spec       // REQ only
	Reply   *Queue[Response] // REQ only; later requests use the session's queue
	// Direct (REQ only) opens the session in direct-staging mode: the
	// caller moves payload bytes straight into and out of the pinned
	// staging buffers (Staging), so SND/RCV skip the shared-memory-segment
	// copies while still charging the same virtual host-copy time. The
	// daemon dispatcher uses this to keep O(bytes) work off the
	// simulation-owner goroutine.
	Direct bool
	// MemQuota (REQ only) is a hard per-session device-memory limit in
	// bytes, enforced at every Malloc the session performs (HAMi-style).
	// 0 means unlimited.
	MemQuota int64
	// Priority (REQ only) orders eviction victims: lower-priority
	// sessions are evicted first when the device cannot fit an
	// allocation. Equal priorities fall back to LRU. 0 is the default.
	Priority int
	// Weight (REQ only) is the session's share of SM compute time
	// relative to co-resident sessions, and its precedence for
	// concurrent-kernel-window admission and wave-boundary preemption.
	// 0 derives the weight from Priority (max(1, Priority+1)); explicit
	// values are clamped to [1, gpusim.MaxLaunchWeight]. 1 everywhere
	// reproduces the unweighted scheduler exactly.
	Weight int
}

// Response is a control-plane message from the manager to a client.
type Response struct {
	Status  Status
	Session int
	Err     string
}

// Config configures a manager.
type Config struct {
	// Device is the one GPU this manager owns. A manager manages exactly
	// one device (the paper's design: one GVM, one context, one GPU);
	// multi-GPU nodes run one manager per device behind package node's
	// placement layer.
	Device *gpusim.Device
	// GPUIndex identifies this manager's device within a multi-shard
	// node. It labels every manager metric series (gpu="<index>") so
	// shards sharing a registry stay distinguishable, and prefixes error
	// messages. 0 on a single-GPU node.
	GPUIndex int
	// SessionIDStride namespaces session ids when several managers share
	// one client-visible id space: manager GPUIndex of a stride-N node
	// hands out GPUIndex+1, GPUIndex+1+N, GPUIndex+1+2N, ... so no two
	// shards ever mint the same id. 0 or 1 means the usual 1,2,3,...
	SessionIDStride int
	// Parties is the STR barrier width: the number of SPMD processes
	// whose STR requests are synchronized before all streams flush
	// together — on a multi-shard node, the width of THIS shard's
	// barrier. 1 disables barrier batching.
	Parties int
	// HostCopyBW is host memcpy bandwidth (bytes/s) for client<->shm and
	// shm<->pinned staging copies. Default 24 GB/s (dual-socket X5560
	// aggregate memcpy, matching the paper's node).
	HostCopyBW float64
	// MsgLatency is the one-way control-message latency. Default 20 us.
	MsgLatency sim.Duration
	// ResourceSetup is the manager-side cost of REQ handling (stream,
	// buffer and kernel preparation). Default 300 us.
	ResourceSetup sim.Duration
	// BlockingSTP makes the manager defer the STP response until the
	// stream completes instead of answering WAIT (an ablation of the
	// paper's poll-based handshake).
	BlockingSTP bool
	// PinnedStaging uses pinned host staging buffers (the paper's
	// design). Disabling it is an ablation: pageable staging transfers
	// more slowly and, on real hardware, would forbid async overlap.
	PinnedStaging bool
	// QueueCap bounds the request and response queues (0 = unbounded).
	QueueCap int
	// MaxSessionBytes caps the aggregate shared-memory (and staging)
	// footprint of live sessions; REQ beyond the cap is rejected. The
	// paper: "the shared memory size is user-customizable to ensure the
	// total size does not exceed the GPU memory size". 0 defaults to the
	// device's memory size, scaled by Overcommit.
	MaxSessionBytes int64
	// Overcommit scales the default MaxSessionBytes quota (the node's
	// -overcommit factor): under overcommit the manager hosts more
	// sessions than fit the card, paging idle arenas to host snapshots,
	// so the aggregate staging cap must grow in step. Values <= 1 (and 0)
	// leave the classic device-sized default.
	Overcommit float64
	// BarrierTimeout bounds how long buffered STR requests wait for the
	// remaining parties. When it expires the manager flushes the partial
	// batch, so a crashed SPMD rank cannot wedge the node. 0 disables
	// the timeout (strict barrier, the paper's behaviour).
	BarrierTimeout sim.Duration
	// FlushPolicy orders the sessions within a barrier batch when their
	// streams flush (extension; the paper flushes in STR arrival order).
	FlushPolicy FlushPolicy
	Tracer      *trace.Tracer
	// Metrics receives the manager's instruments. nil creates a private
	// registry (reachable via Manager.Metrics()); the daemon passes one
	// shared registry so gvm, transport and ipc series scrape together.
	Metrics *metrics.Registry
	// Log, when non-nil, receives one Info line per barrier flush.
	Log *slog.Logger
}

// FlushPolicy orders sessions within a barrier batch.
type FlushPolicy int

const (
	// FlushFIFO flushes in STR arrival order (the paper's behaviour).
	FlushFIFO FlushPolicy = iota
	// FlushSJF flushes the session with the smallest estimated cost
	// first: under heterogeneous tasks the engine-queue ordering then
	// minimizes mean turnaround, classic shortest-job-first.
	FlushSJF
	// FlushLJF flushes the largest estimated cost first (the
	// anti-policy, for the ablation's upper bound).
	FlushLJF
)

func (f FlushPolicy) String() string {
	switch f {
	case FlushFIFO:
		return "fifo"
	case FlushSJF:
		return "sjf"
	case FlushLJF:
		return "ljf"
	default:
		return fmt.Sprintf("FlushPolicy(%d)", int(f))
	}
}

// estimateCost scores a session's cycle for flush ordering: transfer
// time at pageable bandwidth plus modeled compute time at device peak.
func (m *Manager) estimateCost(s *session) float64 {
	arch := m.dev.Arch()
	sec := arch.TransferTime(s.spec.InBytes, true, true).Seconds() +
		arch.TransferTime(s.spec.OutBytes, false, true).Seconds()
	peak := float64(arch.TotalCores()) * arch.ClockHz
	for _, k := range s.kernels {
		sec += k.TotalWorkCycles() / peak
	}
	return sec
}

func (c Config) withDefaults() Config {
	if c.HostCopyBW == 0 {
		c.HostCopyBW = 24e9
	}
	if c.MsgLatency == 0 {
		c.MsgLatency = 20 * sim.Microsecond
	}
	if c.ResourceSetup == 0 {
		c.ResourceSetup = 300 * sim.Microsecond
	}
	if c.Parties == 0 {
		c.Parties = 1
	}
	return c
}

// Manager is the GPU Virtualization Manager run-time process: one
// manager, one device, one context (a "shard" of a multi-GPU node).
type Manager struct {
	env *sim.Env
	cfg Config
	dev *gpusim.Device
	ctx *gpusim.Context

	req      *Queue[Request]
	ready    *sim.Event
	sessions map[int]*session
	nextID   int // last id handed out; advances by the id stride

	strPending []*session // sessions buffered at the STR barrier
	strScratch []*session // retired barrier array recycled by direct flushes
	strGen     uint64     // invalidates stale barrier-timeout timers
	shmInUse   int64      // aggregate session footprint against the quota

	// curProc is the process currently inside a manager handler. The
	// allocator's evictor callback runs synchronously inside Malloc and
	// needs a process to charge the evacuation D2H on; this is it.
	curProc *sim.Proc

	reg *metrics.Registry
	met managerMetrics
	log *slog.Logger
}

// managerMetrics are the manager's registry-backed instruments. They are
// mutated only on the owner goroutine, but being atomics they can be
// read from any goroutine — tests, gvmbench and the /metrics scraper —
// without tripping the race detector.
type managerMetrics struct {
	requests        *metrics.Counter
	sessionsOpened  *metrics.Counter
	sessionsClosed  *metrics.Counter
	flushes         *metrics.Counter
	barrierTimeouts *metrics.Counter
	suspensions     *metrics.Counter
	resumes         *metrics.Counter
	evictions       *metrics.Counter
	restores        *metrics.Counter
	swapOutBytes    *metrics.Counter
	swapInBytes     *metrics.Counter
	openSessions    *metrics.Gauge
	barrierWaitNS   *metrics.Histogram
	// turnaroundNS aggregates STR->completion virtual time across all
	// sessions of this shard; the SLO placement policy reads its p99.
	turnaroundNS *metrics.Histogram
}

// session is the manager-side state of one VGPU (one client process).
type session struct {
	id      int
	spec    *task.Spec
	reply   *Queue[Response]
	seg     shm.Segment
	devIn   cuda.DevPtr
	devOut  cuda.DevPtr
	scratch []cuda.DevPtr
	pinIn   *gpusim.HostBuffer
	pinOut  *gpusim.HostBuffer
	stream  *gpusim.Stream
	kernels []*cuda.Kernel

	running    bool
	done       bool
	strArrived sim.Time  // when this session's STR joined the barrier
	direct     bool      // payloads bypass the segment (Request.Direct)
	stpWaiting bool      // a blocking STP response is owed
	footprint  int64     // bytes counted against the manager's quota
	susp       *snapshot // non-nil while suspended (extension verbs SUS/RES)

	// Failover state. failed records the first device fault that hit
	// this session's kernels; while set, every verb except RLS answers a
	// retryable error until the failover engine migrates the session to
	// a healthy shard (migration clears it — the cycle re-runs there).
	// rerunPending marks an adopted session whose interrupted cycle
	// still needs re-running here: AdoptSession could not materialize it
	// immediately, so the transparent-restore gate performs the flush on
	// the next verb.
	failed       error
	rerunPending bool

	// Residency-layer state: a session's device reservation (devBytes,
	// the rounded bytes it logically holds) outlives eviction — evicted
	// means the manager moved the arena to the host snapshot to make
	// room, and the next SND/STR/RCV restores it transparently. A
	// client-driven SUS sets susp but not evicted: it still requires an
	// explicit RES.
	evicted  bool
	lastUsed sim.Time // LRU clock for victim selection
	priority int      // lower evicts first (Request.Priority)
	weight   int      // SM compute-time share (Request.Weight, normalized)
	memQuota int64    // hard Malloc-time limit, 0 = unlimited
	devBytes int64    // logical device bytes reserved by this session

	// Prebound per-weight-class instruments (label class="<weight
	// rounded down to a power of two>", so cardinality stays bounded).
	launches    *metrics.Counter   // gpusim_sched_launches_total
	turnClassNS *metrics.Histogram // gvm_turnaround_class_ns

	// Prebound flush sequence (H2D, kernels, D2H) and completion callback,
	// built once at REQ so steady-state flushes enqueue stream work without
	// allocating a closure or event per operation.
	ops      []func(p *sim.Proc)
	finishCB func()

	// Direct control surface (Manager.BindDirect): verb completions bypass
	// the reply queue and fire these instead.
	notify        DirectNotify
	stpDirectWait bool   // a direct STP ack is owed at stream completion
	sndDone       func() // prebound SND copy-completion
	rcvDone       func() // prebound RCV copy-completion
}

// New creates a manager bound to a device. Call Start to bring it up.
func New(env *sim.Env, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	if cfg.Device == nil {
		panic("gvm: Config.Device is required")
	}
	if !cfg.PinnedStaging && cfg.Device.Arch().ConcurrentCopyExec {
		// Pageable staging is allowed (ablation) but flagged in traces.
		cfg.trace("gvm", "pageable staging (ablation)", env.Now(), env.Now())
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	stride := cfg.SessionIDStride
	if stride < 1 {
		stride = 1
	}
	m := &Manager{
		env:      env,
		cfg:      cfg,
		dev:      cfg.Device,
		req:      NewQueue[Request](env, cfg.QueueCap, cfg.MsgLatency),
		ready:    env.NewEvent(),
		sessions: make(map[int]*session),
		nextID:   cfg.GPUIndex + 1 - stride, // first id handed out is GPUIndex+1
		reg:      reg,
		log:      cfg.Log,
	}
	// Every manager series carries a gpu label so N shards sharing one
	// registry stay distinguishable in a single /metrics scrape.
	gl := metrics.L("gpu", strconv.Itoa(cfg.GPUIndex))
	m.met = managerMetrics{
		requests:        reg.Counter("gvm_requests_total", "requests received by the manager", gl),
		sessionsOpened:  reg.Counter("gvm_sessions_opened_total", "sessions provisioned by REQ", gl),
		sessionsClosed:  reg.Counter("gvm_sessions_closed_total", "sessions torn down by RLS", gl),
		flushes:         reg.Counter("gvm_flushes_total", "barrier batch flushes", gl),
		barrierTimeouts: reg.Counter("gvm_barrier_timeouts_total", "partial flushes forced by BarrierTimeout", gl),
		suspensions:     reg.Counter("gvm_suspensions_total", "sessions suspended (SUS)", gl),
		resumes:         reg.Counter("gvm_resumes_total", "sessions resumed (RES)", gl),
		evictions:       reg.Counter("gvm_evictions_total", "sessions evicted to host snapshots to make room", gl),
		restores:        reg.Counter("gvm_restores_total", "evicted sessions restored on their next verb", gl),
		swapOutBytes:    reg.Counter("gvm_swap_bytes_total", "bytes moved between device arenas and host snapshots", gl, metrics.L("dir", "out")),
		swapInBytes:     reg.Counter("gvm_swap_bytes_total", "bytes moved between device arenas and host snapshots", gl, metrics.L("dir", "in")),
		openSessions:    reg.Gauge("gvm_open_sessions", "live sessions", gl),
		barrierWaitNS:   reg.Histogram("gvm_barrier_wait_ns", "virtual ns each session waited at the STR barrier", gl),
		turnaroundNS:    reg.Histogram("gvm_turnaround_ns", "virtual ns from STR arrival to cycle completion", gl),
	}
	dev := m.dev
	reg.CounterFunc("gpusim_preemptions_total", "wave-boundary preemptions (kernels demoted from the concurrent-kernel window for a higher-weight kernel)",
		func() int64 { return dev.Preemptions() }, gl)
	reg.GaugeFunc("gvm_mem_in_use_bytes", "device memory allocated to sessions",
		func() int64 { return dev.MemInUse() }, gl)
	reg.GaugeFunc("gvm_resident_bytes", "session bytes physically resident in device memory",
		func() int64 { return dev.MemResident() }, gl)
	reg.GaugeFunc("gvm_reserved_bytes", "logical session bytes reserved (may exceed capacity under overcommit)",
		func() int64 { return dev.MemReserved() }, gl)
	return m
}

// Metrics returns the registry holding the manager's instruments (the
// one from Config.Metrics, or the private one created in its absence).
func (m *Manager) Metrics() *metrics.Registry { return m.reg }

// Requests returns how many requests the manager has received.
func (m *Manager) Requests() int { return int(m.met.requests.Value()) }

// SessionsOpened returns how many sessions REQ has provisioned.
func (m *Manager) SessionsOpened() int { return int(m.met.sessionsOpened.Value()) }

// SessionsClosed returns how many sessions RLS has torn down.
func (m *Manager) SessionsClosed() int { return int(m.met.sessionsClosed.Value()) }

// Flushes returns how many barrier batches have flushed.
func (m *Manager) Flushes() int { return int(m.met.flushes.Value()) }

// BarrierTimeouts returns how many flushes BarrierTimeout forced.
func (m *Manager) BarrierTimeouts() int { return int(m.met.barrierTimeouts.Value()) }

// Suspensions returns how many SUS verbs have completed.
func (m *Manager) Suspensions() int { return int(m.met.suspensions.Value()) }

// Resumes returns how many RES verbs have completed.
func (m *Manager) Resumes() int { return int(m.met.resumes.Value()) }

// Evictions returns how many sessions the manager evicted to make room.
func (m *Manager) Evictions() int { return int(m.met.evictions.Value()) }

// Restores returns how many evicted sessions were restored lazily.
func (m *Manager) Restores() int { return int(m.met.restores.Value()) }

func (c Config) trace(lane, label string, start, end sim.Time) {
	if c.Tracer != nil {
		c.Tracer.Add(lane, label, start, end)
	}
}

// Env returns the manager's simulation environment.
func (m *Manager) Env() *sim.Env { return m.env }

// Device returns the managed device.
func (m *Manager) Device() *gpusim.Device { return m.dev }

// GPUIndex returns this manager's device index within its node (the
// value of every manager series' gpu label).
func (m *Manager) GPUIndex() int { return m.cfg.GPUIndex }

// MintSessionID advances the manager's striped id counter and returns a
// fresh session id. REQ mints through it; the cross-node adoption path
// also calls it to re-id an ExtractedSession whose source-node id may
// collide with a live local one. Owner-goroutine side (it mutates
// manager state), like AdoptSession.
func (m *Manager) MintSessionID() int {
	stride := m.cfg.SessionIDStride
	if stride < 1 {
		stride = 1
	}
	m.nextID += stride
	return m.nextID
}

// Ready fires once the manager has initialized the device, created its
// single GPU context, and begun serving requests. Clients connecting
// earlier simply queue.
func (m *Manager) Ready() *sim.Event { return m.ready }

// RequestQueue returns the manager's request queue; clients send REQ here.
func (m *Manager) RequestQueue() *Queue[Request] { return m.req }

// MsgLatency returns the configured control-message hop latency.
func (m *Manager) MsgLatency() sim.Duration { return m.cfg.MsgLatency }

// HostCopyTime returns the virtual time for a host memcpy of n bytes.
func (m *Manager) HostCopyTime(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n) / m.cfg.HostCopyBW * 1e9)
}

// Start spawns the manager process: device + context initialization (the
// only Tinit in the system, which clients never pay), then the request
// service loop.
func (m *Manager) Start() {
	m.env.Go("gvm", func(p *sim.Proc) {
		start := p.Now()
		m.ctx = m.dev.CreateContext(p)
		// The manager holds its device for its whole lifetime: all work
		// flows through the one context, so no context switches ever
		// occur (paper Section IV.B.2).
		m.ctx.Acquire(p)
		// Residency layer: when an allocation cannot fit, the allocator
		// asks the manager to evict an idle session's arena to a host
		// snapshot and retries. The callback runs inside Malloc on the
		// owner goroutine, charging the evacuation on m.curProc's clock.
		m.dev.SetEvictor(m.evictForAlloc)
		m.cfg.trace("gvm", "init", start, p.Now())
		m.ready.Fire(nil)
		p.Daemonize()
		for {
			req := m.req.Recv(p)
			m.met.requests.Inc()
			m.handle(p, req)
		}
	})
}

// handle services one request on the manager's clock.
func (m *Manager) handle(p *sim.Proc, r Request) {
	m.curProc = p
	defer func() { m.curProc = nil }()
	if r.Verb == REQ {
		m.handleREQ(p, r)
		return
	}
	s, ok := m.sessions[r.Session]
	if !ok {
		// A verb can race a migration: the session was extracted from this
		// shard after the caller resolved it. When the request carries a
		// reply queue, answer with a retryable error so the caller can
		// re-resolve; otherwise drop (client bugs surface as timeouts in
		// their own tests).
		if r.Reply != nil {
			r.Reply.Send(p, Response{Status: ERR, Session: r.Session,
				Err: Retryable(fmt.Sprintf("gvm: unknown session %d on gpu %d", r.Session, m.cfg.GPUIndex))})
		}
		return
	}
	s.lastUsed = p.Now()
	if s.failed != nil && r.Verb != RLS {
		// The device faulted under this session's kernels. Everything but
		// release bounces with a retryable error so the client backs off
		// while the failover engine migrates the session.
		s.reply.Send(p, Response{Status: ERR, Session: s.id,
			Err: retryableSessionErr(s.id, m.cfg.GPUIndex, s.failed)})
		return
	}
	if s.susp != nil && (r.Verb == SND || r.Verb == STR || r.Verb == RCV ||
		(r.Verb == STP && s.rerunPending)) {
		if !s.evicted {
			// Client-driven SUS: the client must issue an explicit RES.
			s.reply.Send(p, Response{Status: ERR, Session: s.id,
				Err: fmt.Sprintf("gvm: %v on suspended session %d", r.Verb, s.id)})
			return
		}
		// Manager-driven eviction is transparent: restore the arena before
		// serving the verb, waiting out pressure from running sessions.
		// Failure (device still full, nothing evictable, nothing running)
		// leaves the snapshot intact so the verb can be retried.
		if err := m.restoreWithBackoff(p, s); err != nil {
			s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: err.Error()})
			return
		}
	}
	// Adopted mid-cycle: replay or cancel the interrupted flush now that
	// the arena is materialized, then serve the verb (an STP that
	// triggered a replay lands in the poll path and sees WAIT).
	m.gateRerun(s, r.Verb)
	switch r.Verb {
	case SND:
		m.handleSND(p, s)
	case STR:
		m.handleSTR(p, s)
	case STP:
		m.handleSTP(p, s)
	case RCV:
		m.handleRCV(p, s)
	case RLS:
		m.handleRLS(p, s)
	case SUS:
		m.handleSUS(p, s)
	case RES:
		m.handleRES(p, s)
	default:
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: fmt.Sprintf("gvm: unknown verb %v", r.Verb)})
	}
}

// handleREQ provisions a VGPU: shared-memory segment, device buffers,
// pinned staging, a dedicated stream, and the prepared kernel sequence.
func (m *Manager) handleREQ(p *sim.Proc, r Request) {
	start := p.Now()
	if r.Spec == nil || r.Reply == nil {
		if r.Reply != nil {
			r.Reply.Send(p, Response{Status: ERR, Err: "gvm: REQ needs Spec and Reply"})
		}
		return
	}
	fail := func(s *session, err error) {
		m.teardown(s)
		r.Reply.Send(p, Response{Status: ERR, Err: err.Error()})
	}
	p.Sleep(m.cfg.ResourceSetup)
	footprint := r.Spec.InBytes + r.Spec.OutBytes
	quota := m.cfg.MaxSessionBytes
	if quota == 0 {
		quota = m.dev.Arch().MemBytes
		if m.cfg.Overcommit > 1 {
			quota = int64(m.cfg.Overcommit * float64(quota))
		}
	}
	if m.shmInUse+footprint > quota {
		r.Reply.Send(p, Response{Status: ERR, Err: fmt.Sprintf(
			"gvm: gpu %d session quota exceeded: %d bytes live + %d requested > %d",
			m.cfg.GPUIndex, m.shmInUse, footprint, quota)})
		return
	}
	s := &session{
		id: m.MintSessionID(), spec: r.Spec, reply: r.Reply, direct: r.Direct,
		memQuota: r.MemQuota, priority: r.Priority, lastUsed: p.Now(),
		weight: sessionWeight(r),
	}
	// Weight-class instruments are prebound so the hot path pays no map
	// lookups; the registry is idempotent, so sessions of one class on
	// one shard share a series.
	cl := metrics.L("class", strconv.Itoa(weightClass(s.weight)))
	gl := metrics.L("gpu", strconv.Itoa(m.cfg.GPUIndex))
	s.launches = m.reg.Counter("gpusim_sched_launches_total", "kernel launches by weight class", gl, cl)
	s.turnClassNS = m.reg.Histogram("gvm_turnaround_class_ns", "virtual ns from STR arrival to cycle completion, by weight class", gl, cl)
	ctx := m.ctx
	dev := m.dev
	// Direct sessions never move bytes through the segment, so it stays
	// timing-only regardless of the device mode.
	s.seg = shm.NewMemory(footprint, dev.Functional() && !r.Direct)
	m.shmInUse += footprint
	s.footprint = footprint

	// All of a session's device allocations flow through its quota
	// allocator: it enforces the hard MemQuota at Malloc time and keeps
	// the device's reserved-bytes gauge in step with what the session
	// logically holds (the reservation survives eviction).
	alloc := &sessionAllocator{m: m, s: s}
	var err error
	if r.Spec.InBytes > 0 {
		if s.devIn, err = alloc.Malloc(r.Spec.InBytes); err != nil {
			fail(s, err)
			return
		}
	}
	if r.Spec.OutBytes > 0 {
		if s.devOut, err = alloc.Malloc(r.Spec.OutBytes); err != nil {
			fail(s, err)
			return
		}
	}
	if r.Spec.InBytes > 0 {
		s.pinIn = dev.AllocHost(r.Spec.InBytes, m.cfg.PinnedStaging)
	}
	if r.Spec.OutBytes > 0 {
		s.pinOut = dev.AllocHost(r.Spec.OutBytes, m.cfg.PinnedStaging)
	}
	if r.Spec.Build != nil {
		b := &task.Buffers{In: s.devIn, Out: s.devOut, Alloc: alloc, Scratch: &s.scratch}
		if s.kernels, err = r.Spec.Build(b); err != nil {
			fail(s, err)
			return
		}
		for _, k := range s.kernels {
			if err := k.Validate(dev.Arch()); err != nil {
				fail(s, err)
				return
			}
		}
	}
	s.stream = ctx.NewStream()
	m.prepareOps(s)
	m.sessions[s.id] = s
	m.met.sessionsOpened.Inc()
	m.met.openSessions.Inc()
	m.cfg.trace("gvm", fmt.Sprintf("REQ s%d (%s)", s.id, r.Spec.Name), start, p.Now())
	r.Reply.Send(p, Response{Status: ACK, Session: s.id})
}

// handleSND stages the client's input from its shared-memory segment
// into the pinned host buffer (paper Figure 8: "Copies Data from Virtual
// Shared Memory to Host Pinned Memory").
func (m *Manager) handleSND(p *sim.Proc, s *session) {
	start := p.Now()
	n := s.spec.InBytes
	p.Sleep(m.HostCopyTime(n))
	if !s.direct && m.dev.Functional() && s.pinIn != nil {
		if err := s.seg.ReadAt(s.pinIn.Data(), 0); err != nil {
			s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: err.Error()})
			return
		}
	}
	if m.cfg.Tracer != nil {
		m.cfg.trace("gvm", fmt.Sprintf("SND s%d %dB", s.id, n), start, p.Now())
	}
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// handleSTR buffers the request at the barrier; when all parties have
// arrived, every buffered session's stream is flushed simultaneously —
// async H2D from pinned memory, the kernel sequence, async D2H — and all
// STRs are acknowledged (paper Figure 8's "Barrier to Synchronize STR
// from All Processes" followed by "Starts Executing All CUDA streams").
func (m *Manager) handleSTR(p *sim.Proc, s *session) {
	if s.running {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: STR while already running"})
		return
	}
	s.running = true
	s.done = false
	s.strArrived = p.Now()
	m.strPending = append(m.strPending, s)
	if len(m.strPending) < m.cfg.Parties {
		if m.cfg.BarrierTimeout > 0 && len(m.strPending) == 1 {
			m.armBarrierTimeout()
		}
		return // barrier: wait for the remaining parties
	}
	m.flushBatch(p, false)
}

// armBarrierTimeout arms a timeout for the current barrier generation: if
// the other parties never arrive, the partial batch flushes anyway.
func (m *Manager) armBarrierTimeout() {
	gen := m.strGen
	m.env.After(m.cfg.BarrierTimeout, func() {
		if m.strGen != gen || len(m.strPending) == 0 {
			return
		}
		m.env.Go("gvm-barrier-timeout", func(p *sim.Proc) {
			// Re-check: between this proc being scheduled and it
			// running, the original barrier may have completed and
			// a NEW generation's first STR may now be pending. A
			// stale timer must never flush that newer generation.
			if m.strGen != gen || len(m.strPending) == 0 {
				return
			}
			m.flushBatch(p, true)
		})
	})
}

// flushBatch flushes all sessions buffered at the barrier and ACKs their
// STRs. timedOut marks a partial flush forced by BarrierTimeout. p may be
// nil when a direct (ring) STR completed the barrier: direct sessions are
// acknowledged inline through their notify hooks, and any queue sessions
// sharing the batch get their replies from a transient process.
func (m *Manager) flushBatch(p *sim.Proc, timedOut bool) {
	batch := m.strPending
	if len(batch) == 0 {
		return
	}
	if p == nil {
		// The direct path never parks inside this call, so no second
		// flushBatch can overlap it: recycle the retired array to keep the
		// steady-state ring cycle allocation-free.
		m.strPending = m.strScratch[:0]
		m.strScratch = batch
	} else {
		// The queue path parks in reply.Send below; a barrier-timeout flush
		// could interleave, so the batch must own its array.
		m.strPending = nil
	}
	m.strGen++
	m.met.flushes.Inc()
	if timedOut {
		m.met.barrierTimeouts.Inc()
	}
	now := m.env.Now()
	for _, bs := range batch {
		m.met.barrierWaitNS.Observe(int64(now - bs.strArrived))
	}
	if m.log != nil {
		m.log.Info("gvm flush",
			"sessions", len(batch), "timed_out", timedOut, "gen", m.strGen)
	}
	switch m.cfg.FlushPolicy {
	case FlushSJF:
		sort.SliceStable(batch, func(i, j int) bool {
			return m.estimateCost(batch[i]) < m.estimateCost(batch[j])
		})
	case FlushLJF:
		sort.SliceStable(batch, func(i, j int) bool {
			return m.estimateCost(batch[i]) > m.estimateCost(batch[j])
		})
	}
	for _, bs := range batch {
		m.flush(bs)
	}
	if m.cfg.Tracer != nil {
		m.cfg.trace("gvm", fmt.Sprintf("STR flush x%d", len(batch)), now, m.env.Now())
	}
	queued := 0
	for _, bs := range batch {
		if bs.notify != nil {
			bs.notify(STR, ACK, "")
		} else {
			queued++
		}
	}
	if queued == 0 {
		return
	}
	if p != nil {
		for _, bs := range batch {
			if bs.notify == nil {
				bs.reply.Send(p, Response{Status: ACK, Session: bs.id})
			}
		}
		return
	}
	// Mixed batch completed by a direct STR: ack the queue sessions from a
	// transient process so their reply hops happen in virtual time. Copy
	// them out first — the recycled batch array may be reused before the
	// process finishes its sends.
	rest := make([]*session, 0, queued)
	for _, bs := range batch {
		if bs.notify == nil {
			rest = append(rest, bs)
		}
	}
	m.env.Go("gvm-flush-reply", func(p *sim.Proc) {
		for _, bs := range rest {
			bs.reply.Send(p, Response{Status: ACK, Session: bs.id})
		}
	})
}

// sessionWeight derives a session's compute weight from its REQ: an
// explicit Weight wins; otherwise Priority maps to max(1, Priority+1) so
// the eviction-priority extension PR7 landed doubles as a coarse compute
// weight. The result is clamped to gpusim's launch-weight range.
func sessionWeight(r Request) int {
	w := r.Weight
	if w < 1 {
		w = r.Priority + 1
	}
	if w < 1 {
		w = 1
	}
	if w > gpusim.MaxLaunchWeight {
		w = gpusim.MaxLaunchWeight
	}
	return w
}

// weightClass buckets a weight for metric labels: the largest power of
// two <= weight, so at most 11 classes exist.
func weightClass(w int) int {
	if w < 1 {
		return 1
	}
	return 1 << (bits.Len(uint(w)) - 1)
}

// prepareOps prebinds the session's flush sequence — H2D, the kernel
// chain, D2H — and its completion callback. Building these once at REQ
// keeps every subsequent flush free of per-operation closure and event
// allocations. The copy closures read the session's fields at run time,
// so BindDirect may rebind staging underneath them; the kernel closures
// capture the kernel objects themselves, so a restore that rebuilds
// s.kernels must re-run prepareOps (resumeSession does).
func (m *Manager) prepareOps(s *session) {
	ctx := m.ctx
	if s.spec.InBytes > 0 {
		s.ops = append(s.ops, func(p *sim.Proc) { ctx.MemcpyH2D(p, s.devIn, s.pinIn, s.spec.InBytes) })
	}
	for _, k := range s.kernels {
		k := k
		s.ops = append(s.ops, func(p *sim.Proc) {
			if s.failed != nil {
				return // an earlier op already hit the device fault
			}
			s.launches.Inc()
			done, err := ctx.LaunchAsyncOpts(p, k, gpusim.LaunchOptions{Weight: s.weight})
			if err != nil {
				if _, ok := gpusim.IsFault(err); ok {
					s.failed = err
					return
				}
				// Non-fault launch errors are manager bugs: the kernel was
				// validated at REQ and resources are stream-serialized.
				panic(fmt.Sprintf("gvm: session %d: %v", s.id, err))
			}
			// A hang/fatal fault aborts in-flight kernels by firing their
			// completion events with a *FaultError payload.
			if v := p.Wait(done); v != nil {
				if e, ok := v.(error); ok {
					s.failed = e
				}
			}
		})
	}
	if s.spec.OutBytes > 0 {
		s.ops = append(s.ops, func(p *sim.Proc) { ctx.MemcpyD2H(p, s.pinOut, s.devOut, s.spec.OutBytes) })
	}
	s.finishCB = func() {
		s.running = false
		s.done = true
		if s.failed == nil {
			turn := int64(m.env.Now() - s.strArrived)
			m.met.turnaroundNS.Observe(turn)
			s.turnClassNS.Observe(turn)
		}
		st, errMsg := ACK, ""
		if s.failed != nil {
			// The cycle died on a device fault: answer pending polls with a
			// retryable error so the client backs off while the failover
			// engine migrates the session (the rerun happens there).
			st, errMsg = ERR, retryableSessionErr(s.id, m.cfg.GPUIndex, s.failed)
		}
		if s.stpWaiting {
			s.stpWaiting = false
			// Reply from a transient process so the response hop happens
			// in virtual time even though the manager loop may be busy.
			m.env.Go("gvm-stp-reply", func(p *sim.Proc) {
				s.reply.Send(p, Response{Status: st, Session: s.id, Err: errMsg})
			})
		}
		if s.stpDirectWait {
			s.stpDirectWait = false
			if s.notify != nil {
				s.notify(STP, st, errMsg)
			}
		}
	}
}

// flush enqueues one session's full GPU cycle on its stream; the finish
// callback rides the last operation.
func (m *Manager) flush(s *session) {
	n := len(s.ops)
	if n == 0 {
		s.finishCB()
		return
	}
	for i, op := range s.ops {
		var cb func()
		if i == n-1 {
			cb = s.finishCB
		}
		s.stream.EnqueueCB(op, cb)
	}
}

// handleSTP answers a status query: ACK when the stream has drained,
// WAIT otherwise (or a deferred ACK with BlockingSTP).
func (m *Manager) handleSTP(p *sim.Proc, s *session) {
	switch {
	case s.done:
		s.reply.Send(p, Response{Status: ACK, Session: s.id})
	case m.cfg.BlockingSTP:
		s.stpWaiting = true
	default:
		s.reply.Send(p, Response{Status: WAIT, Session: s.id})
	}
}

// handleRCV copies results from pinned staging into the client's
// shared-memory segment (at offset InBytes).
func (m *Manager) handleRCV(p *sim.Proc, s *session) {
	if !s.done {
		s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: "gvm: RCV before completion"})
		return
	}
	start := p.Now()
	n := s.spec.OutBytes
	p.Sleep(m.HostCopyTime(n))
	if !s.direct && m.dev.Functional() && s.pinOut != nil {
		if err := s.seg.WriteAt(s.pinOut.Data(), s.spec.InBytes); err != nil {
			s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: err.Error()})
			return
		}
	}
	if m.cfg.Tracer != nil {
		m.cfg.trace("gvm", fmt.Sprintf("RCV s%d %dB", s.id, n), start, p.Now())
	}
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// handleRLS tears the session down.
func (m *Manager) handleRLS(p *sim.Proc, s *session) {
	m.teardown(s)
	delete(m.sessions, s.id)
	m.met.sessionsClosed.Inc()
	m.met.openSessions.Dec()
	s.reply.Send(p, Response{Status: ACK, Session: s.id})
}

// teardown frees a session's device memory and stream.
func (m *Manager) teardown(s *session) {
	// A session released while parked at the STR barrier (a client that
	// hung up mid-cycle) must leave the barrier, or a later flush would
	// drive a torn-down stream.
	for i, bs := range m.strPending {
		if bs == s {
			m.strPending = append(m.strPending[:i], m.strPending[i+1:]...)
			break
		}
	}
	s.notify = nil
	s.stpDirectWait = false
	ctx := m.ctx
	if s.devIn != 0 {
		_ = ctx.Free(s.devIn)
		s.devIn = 0
	}
	if s.devOut != 0 {
		_ = ctx.Free(s.devOut)
		s.devOut = 0
	}
	for _, ptr := range s.scratch {
		_ = ctx.Free(ptr)
	}
	s.scratch = nil
	if s.stream != nil {
		s.stream.Close()
		s.stream = nil
	}
	if s.seg != nil {
		_ = s.seg.Close()
		s.seg = nil
	}
	// The logical reservation is returned whether the arena was resident
	// or sitting in a host snapshot.
	if s.devBytes > 0 {
		m.dev.Unreserve(s.devBytes)
		s.devBytes = 0
	}
	s.susp = nil
	s.evicted = false
	m.shmInUse -= s.footprint
	s.footprint = 0
}

// Staging exposes a direct session's pinned staging buffers: in receives
// SND payloads before the H2D flush, out holds RCV results after the D2H
// flush. Slices are nil for unknown sessions, timing-only devices, or
// zero-sized directions. The caller owns synchronization: it must not
// touch in/out while the session's stream is flushing (between STR and a
// completed STP), which the daemon's verb ordering guarantees.
func (m *Manager) Staging(session int) (in, out []byte) {
	s, ok := m.sessions[session]
	if !ok {
		return nil, nil
	}
	if s.pinIn != nil {
		in = s.pinIn.Data()
	}
	if s.pinOut != nil {
		out = s.pinOut.Data()
	}
	return in, out
}

// Segment returns a session's shared-memory segment; the client-side API
// uses it as the data plane. It returns nil for unknown sessions.
func (m *Manager) Segment(session int) shm.Segment {
	if s, ok := m.sessions[session]; ok {
		return s.seg
	}
	return nil
}

// OpenSessions returns the number of live sessions. It reads the
// registry gauge, so (unlike len(m.sessions)) it is safe off-owner.
func (m *Manager) OpenSessions() int { return int(m.met.openSessions.Value()) }
