package gvm

import (
	"fmt"
	"strconv"
	"strings"

	"gpuvirt/internal/metrics"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// Session failover: ExtractSession packages a session's complete state —
// arena snapshot, staging bytes, options — off a faulted or draining
// shard, and AdoptSession rebuilds it, same id, on a healthy one. The
// pair reuses the suspend/eviction machinery (suspend.go): extraction is
// a suspend whose snapshot leaves the manager, adoption is an arrival in
// the evicted state whose next restore materializes it. D2H copies work
// on a faulted device (only allocations and launches fail), so state is
// always evacuable.

// RetryableMark tags protocol error strings whose verb is safe to retry
// once after the dispatcher has migrated the session to a healthy shard.
// Clients substring-match it because every transport layer prefixes
// error strings ("vgpu: STP: ...", "ipc: STP (pipelined): ...").
const RetryableMark = "(retryable: session migrating)"

// Retryable marks an error message as safe to retry after failover.
func Retryable(msg string) string { return msg + " " + RetryableMark }

// IsRetryable reports whether a protocol error string carries the
// failover retry mark, however many transport prefixes wrap it.
func IsRetryable(msg string) bool { return strings.Contains(msg, RetryableMark) }

// retryableSessionErr is the response text verbs on a failed session
// answer with until the failover engine migrates it away.
func retryableSessionErr(id, gpu int, cause error) string {
	return Retryable(fmt.Sprintf("gvm: session %d failed on gpu %d: %v", id, gpu, cause))
}

// ExtractedSession is a session's portable state between ExtractSession
// on the source shard and AdoptSession on the target.
type ExtractedSession struct {
	ID       int
	Spec     *task.Spec
	Direct   bool
	MemQuota int64
	Priority int
	Weight   int
	// Done preserves the completed-cycle flag (an idle session whose
	// client has not collected results yet must still answer STP/RCV on
	// the target).
	Done bool
	// Rerun marks an interrupted cycle (the device fault aborted its
	// kernels, or the session was still waiting to materialize a
	// previous rerun): the target re-runs the flush after restoring, so
	// the client's in-flight poll completes with correct results.
	Rerun     bool
	Footprint int64
	DevBytes  int64
	// PinIn/PinOut carry the pinned staging contents: SND input that
	// must survive to the rerun's H2D, and completed results that RCV
	// serves without re-touching the device.
	PinIn, PinOut []byte

	snap *snapshot
}

// Bytes returns the total host bytes the migration moves (arena
// snapshot plus staging copies) — the node_migrated_bytes_total unit.
func (e *ExtractedSession) Bytes() int64 {
	return e.snap.total + int64(len(e.PinIn)) + int64(len(e.PinOut))
}

// ExtractSession quiesces session id at its next verb boundary,
// snapshots its device arenas (reusing the suspend engine) and staging
// buffers, and removes it from this manager without the close
// accounting — the session is moving, not ending. Must run on the
// manager's owner goroutine with a live process p (the evacuation D2H
// is charged on p's clock).
//
// A session parked at the STR barrier cannot keep waiting (its barrier
// peers are being migrated too): its unacknowledged STR completes with
// a retryable error and the session leaves as idle — the client
// re-issues STR on the target after failover.
func (m *Manager) ExtractSession(p *sim.Proc, id int) (*ExtractedSession, error) {
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("gvm: ExtractSession: unknown session %d", id)
	}
	prev := m.curProc
	m.curProc = p
	defer func() { m.curProc = prev }()

	for i, bs := range m.strPending {
		if bs != s {
			continue
		}
		m.strPending = append(m.strPending[:i], m.strPending[i+1:]...)
		s.running = false
		msg := Retryable(fmt.Sprintf("gvm: session %d leaving the STR barrier: migrating off gpu %d", s.id, m.cfg.GPUIndex))
		if s.notify != nil {
			s.notify(STR, ERR, msg)
		} else {
			s.reply.Send(p, Response{Status: ERR, Session: s.id, Err: msg})
		}
		break
	}

	// Quiesce an in-flight flush. On a hang/fatal-faulted device the
	// scheduler has already aborted the kernels, so the stream drains in
	// copy time; on a draining healthy shard the cycle completes
	// normally. The wait is virtual and bounded.
	const quiesceMax = 60 * sim.Second
	delay := 100 * sim.Microsecond
	var waited sim.Duration
	for s.running {
		if waited >= quiesceMax {
			return nil, fmt.Errorf("gvm: ExtractSession: session %d still running after %v", id, quiesceMax)
		}
		p.Sleep(delay)
		waited += delay
		if delay < 10*sim.Millisecond {
			delay *= 2
		}
	}

	if s.susp == nil {
		m.suspendSession(p, s)
	}
	ext := &ExtractedSession{
		ID: s.id, Spec: s.spec, Direct: s.direct,
		MemQuota: s.memQuota, Priority: s.priority, Weight: s.weight,
		Done:      s.done,
		Rerun:     s.failed != nil || s.rerunPending,
		Footprint: s.footprint, DevBytes: s.devBytes,
		snap: s.susp,
	}
	if s.pinIn != nil && s.pinIn.Data() != nil {
		ext.PinIn = append([]byte(nil), s.pinIn.Data()...)
	}
	if s.pinOut != nil && s.pinOut.Data() != nil {
		ext.PinOut = append([]byte(nil), s.pinOut.Data()...)
	}

	// Remove without sessionsClosed credit: openSessions moves shards,
	// opened/closed totals see one lifetime.
	s.notify = nil
	s.stpDirectWait = false
	if s.stream != nil {
		s.stream.Close()
		s.stream = nil
	}
	if s.seg != nil {
		_ = s.seg.Close()
		s.seg = nil
	}
	if s.devBytes > 0 {
		m.dev.Unreserve(s.devBytes)
		s.devBytes = 0
	}
	m.shmInUse -= s.footprint
	delete(m.sessions, s.id)
	m.met.openSessions.Dec()
	if m.log != nil {
		m.log.Info("gvm extract", "session", ext.ID, "gpu", m.cfg.GPUIndex,
			"bytes", ext.Bytes(), "rerun", ext.Rerun)
	}
	return ext, nil
}

// AdoptSession installs an extracted session on this manager under its
// original id, replying on the given queue from now on. The session
// arrives in the evicted state and is materialized eagerly; if the
// target is too loaded to restore right now the snapshot stays intact
// and the next verb's transparent restore retries — adoption itself
// only fails on an id collision (impossible under the node's striped id
// scheme). The session was admitted on its source shard and the node
// re-placed it against this shard's headroom, so no quota re-check.
func (m *Manager) AdoptSession(p *sim.Proc, ext *ExtractedSession, reply *Queue[Response]) error {
	if _, exists := m.sessions[ext.ID]; exists {
		return fmt.Errorf("gvm: AdoptSession: session id %d already live on gpu %d", ext.ID, m.cfg.GPUIndex)
	}
	prev := m.curProc
	m.curProc = p
	defer func() { m.curProc = prev }()
	dev := m.dev
	s := &session{
		id: ext.ID, spec: ext.Spec, reply: reply, direct: ext.Direct,
		memQuota: ext.MemQuota, priority: ext.Priority, weight: ext.Weight,
		lastUsed:     p.Now(),
		done:         ext.Done,
		footprint:    ext.Footprint,
		susp:         ext.snap,
		evicted:      true,
		rerunPending: ext.Rerun,
	}
	cl := metrics.L("class", strconv.Itoa(weightClass(s.weight)))
	gl := metrics.L("gpu", strconv.Itoa(m.cfg.GPUIndex))
	s.launches = m.reg.Counter("gpusim_sched_launches_total", "kernel launches by weight class", gl, cl)
	s.turnClassNS = m.reg.Histogram("gvm_turnaround_class_ns", "virtual ns from STR arrival to cycle completion, by weight class", gl, cl)
	s.seg = shm.NewMemory(ext.Footprint, dev.Functional() && !ext.Direct)
	m.shmInUse += ext.Footprint
	if ext.DevBytes > 0 {
		s.devBytes = ext.DevBytes
		dev.Reserve(ext.DevBytes)
	}
	if ext.Spec.InBytes > 0 {
		s.pinIn = dev.AllocHost(ext.Spec.InBytes, m.cfg.PinnedStaging)
		if s.pinIn.Data() != nil && ext.PinIn != nil {
			copy(s.pinIn.Data(), ext.PinIn)
		}
	}
	if ext.Spec.OutBytes > 0 {
		s.pinOut = dev.AllocHost(ext.Spec.OutBytes, m.cfg.PinnedStaging)
		if s.pinOut.Data() != nil && ext.PinOut != nil {
			copy(s.pinOut.Data(), ext.PinOut)
		}
	}
	s.stream = m.ctx.NewStream()
	m.sessions[s.id] = s
	m.met.openSessions.Inc()
	if err := m.restoreWithBackoff(p, s); err != nil {
		// Lazy path: the snapshot is intact, the next verb retries.
		if m.log != nil {
			m.log.Warn("gvm adopt: deferred restore", "session", s.id, "gpu", m.cfg.GPUIndex, "err", err)
		}
		return nil
	}
	// A pending rerun is NOT replayed here: the client may already be
	// re-issuing its whole batch, and its SND stages bytes into pinned
	// memory on the connection goroutine — racing an adoption-started
	// flush's H2D read. gateRerun resolves the rerun on the client's next
	// verb instead, where the protocol serializes staging and flush.
	if m.log != nil {
		m.log.Info("gvm adopt", "session", s.id, "gpu", m.cfg.GPUIndex, "rerun", ext.Rerun)
	}
	return nil
}

// gateRerun resolves a pending cycle re-run before serving a verb on a
// materialized (restored, idle) session. The client's own SND or STR
// supersedes the interrupted flush — it is re-driving the cycle with
// freshly staged input, so replaying the old one would race that
// staging and run the cycle twice. STP or RCV mean the client is
// waiting on the interrupted cycle's results, so the flush re-runs now
// and the poll path observes its completion as usual.
func (m *Manager) gateRerun(s *session, verb Verb) {
	if !s.rerunPending || s.susp != nil || s.running {
		return
	}
	switch verb {
	case SND, STR:
		s.rerunPending = false
		s.failed = nil
		s.done = false
	case STP, RCV:
		m.rerunFlush(s)
	}
}

// rerunFlush re-runs an interrupted cycle on a freshly restored session:
// the kernels are deterministic functions of the (migrated) staging
// input, so the re-run reproduces the exact bytes the aborted flush
// would have produced. The flush completes asynchronously as the shard's
// calendar drains; the client's STP poll observes completion as usual.
func (m *Manager) rerunFlush(s *session) {
	s.rerunPending = false
	s.failed = nil
	s.running = true
	s.done = false
	s.strArrived = m.env.Now()
	m.flush(s)
}
