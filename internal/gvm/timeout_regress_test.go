package gvm

import (
	"testing"

	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// TestStaleBarrierTimerDoesNotFlushNewGeneration reproduces the stale
// barrier-timeout flush: the BarrierTimeout callback passes its
// generation check and spawns the flush proc, but before that proc runs
// the original barrier completes normally AND a new generation's first
// STR arrives. Without a re-check inside the spawned proc, the stale
// timer partial-flushes the new generation — a barrier that still has
// its full timeout ahead of it.
//
// The window between the timer callback and the spawned proc is one
// scheduler step, so the test drives it white-box: it arms the real
// timer through handleSTR, then uses a same-instant calendar entry
// (scheduled later, so it runs after the timer callback but before the
// spawned proc) to perform exactly the state transition a completed
// barrier plus a fresh STR would leave behind.
func TestStaleBarrierTimerDoesNotFlushNewGeneration(t *testing.T) {
	const timeout = sim.Duration(1e6) // 1ms virtual
	env, m := newManager(t, func(c *Config) {
		c.Parties = 2
		c.BarrierTimeout = timeout
	})
	var sA, sC *session
	env.Go("driver", func(p *sim.Proc) {
		p.Wait(m.Ready())
		reply := NewQueue[Response](env, 4, 0)
		open := func() *session {
			m.RequestQueue().Send(p, Request{Verb: REQ,
				Spec: &task.Spec{Name: "t", InBytes: 8, OutBytes: 8}, Reply: reply})
			r := reply.Recv(p)
			if r.Status != ACK {
				t.Errorf("REQ failed: %s", r.Err)
				return nil
			}
			return m.sessions[r.Session]
		}
		if sA, sC = open(), open(); sA == nil || sC == nil {
			return
		}
		// A is the lone arrival of generation 0: arms the timer.
		m.handleSTR(p, sA)
		fireAt := p.Now().Add(timeout)
		// Schedule the surgery from a strictly later callback so its
		// calendar seq exceeds the timer's: at fireAt the engine runs
		// the timer callback first (check passes, stale flush proc
		// spawned), then this callback, then the spawned proc.
		env.After(timeout/2, func() {
			env.At(fireAt, func() {
				// Generation 0 completed normally...
				sA.running = false
				m.strPending = nil
				m.strGen++
				// ...and generation 1's first STR is now pending.
				sC.running = true
				m.strPending = []*session{sC}
			})
		})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if n := m.BarrierTimeouts(); n != 0 {
		t.Fatalf("stale timer flushed the new generation (BarrierTimeouts = %d)", n)
	}
	if len(m.strPending) != 1 || m.strPending[0] != sC {
		t.Fatalf("new generation's pending STR was consumed (pending = %d sessions)", len(m.strPending))
	}
	if !sC.running || sC.done {
		t.Fatal("new generation's session was flushed by the stale timer")
	}
}
