package gvm

import "gpuvirt/internal/sim"

// Queue is a bounded FIFO of control-plane messages with per-hop latency,
// modelling the POSIX message queues of the paper's original control plane
// (Section V). Every send and receive pays a configurable per-hop latency,
// which is part of the virtualization overhead the paper measures in
// Figure 10.
//
// Queue used to live in its own package (internal/msgq); it moved here when
// the daemon's hot path graduated to shared-memory rings (the mqueue → ring
// lineage documented in DESIGN.md) and the manager became its only consumer.
type Queue[T any] struct {
	env     *sim.Env
	store   *sim.Store[T]
	latency sim.Duration
	sent    int
	recv    int
}

// NewQueue returns a queue holding up to capacity messages (0 = unbounded),
// with the given one-way hop latency applied on every Send and every Recv.
func NewQueue[T any](env *sim.Env, capacity int, latency sim.Duration) *Queue[T] {
	return &Queue[T]{env: env, store: sim.NewStore[T](env, capacity), latency: latency}
}

// Send enqueues msg, blocking the process while the queue is full; the
// hop latency is paid on the sender's clock (marshalling + mq_send).
func (q *Queue[T]) Send(p *sim.Proc, msg T) {
	p.Sleep(q.latency)
	q.store.Put(p, msg)
	q.sent++
}

// Recv dequeues the oldest message, blocking while the queue is empty;
// the hop latency is paid on the receiver's clock.
func (q *Queue[T]) Recv(p *sim.Proc) T {
	msg := q.store.Get(p)
	p.Sleep(q.latency)
	q.recv++
	return msg
}

// TryRecv dequeues without blocking (no latency is charged on a miss).
func (q *Queue[T]) TryRecv(p *sim.Proc) (T, bool) {
	msg, ok := q.store.TryGet()
	if ok {
		p.Sleep(q.latency)
		q.recv++
	}
	return msg, ok
}

// Len returns the number of queued messages.
func (q *Queue[T]) Len() int { return q.store.Len() }

// Stats returns the cumulative send and receive counts.
func (q *Queue[T]) Stats() (sent, received int) { return q.sent, q.recv }
