package gvm

import (
	"testing"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// TestRestoreBlockedByParkedBarrierIsRetryable pins the
// restoreWithBackoff give-up audit (the failover restore path made it
// load-bearing): when an evicted session's transparent restore cannot
// fit because the memory is pinned by sessions parked at the STR
// barrier with no timeout armed, sleeping on the owner loop can never
// help — the peer STR that would complete the barrier is queued BEHIND
// the verb being served. Pre-fix the restore burned the full 60 virtual
// seconds of backoff and then surfaced a plain (non-retryable) OOM
// error; the client gave up even though serving the queued STR would
// have freed the memory within one round trip. Post-fix the verb
// answers immediately with a retryable error, the queued STR completes
// the barrier, and the re-issued verb restores cleanly.
func TestRestoreBlockedByParkedBarrierIsRetryable(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 256 << 10 // A(120K) + C(8K) + D(100K) fit; B(100K) cannot join
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch})
	m := New(env, Config{Device: dev, Parties: 3, BarrierTimeout: 0, MaxSessionBytes: 1 << 30})
	m.Start()

	req := func(p *sim.Proc, name string, kb int64, prio int) (int, *Queue[Response]) {
		reply := NewQueue[Response](env, 0, 0)
		m.RequestQueue().Send(p, Request{Verb: REQ, Reply: reply,
			Spec:     &task.Spec{Name: name, InBytes: kb << 10 / 2, OutBytes: kb << 10 / 2},
			Priority: prio})
		r := reply.Recv(p)
		if r.Status != ACK {
			t.Fatalf("REQ %s: %s", name, r.Err)
		}
		return r.Session, reply
	}

	env.Go("driver", func(p *sim.Proc) {
		p.Wait(m.Ready())
		aID, _ := req(p, "A", 120, 5)
		cID, _ := req(p, "C", 8, 5)
		bID, bQ := req(p, "B", 100, 0) // lowest priority: the eviction victim
		// D's arenas cannot fit alongside A+C+B: the evictor picks idle,
		// priority-0 B and snapshots it to the host.
		dID, _ := req(p, "D", 100, 5)
		if m.Evictions() != 1 {
			t.Errorf("evictions = %d, want 1 (B evicted by D's REQ)", m.Evictions())
		}

		// A and D park at the 3-party barrier: running, resident, and not
		// evictable. Their replies arrive only after the flush.
		m.RequestQueue().Send(p, Request{Session: aID, Verb: STR})
		m.RequestQueue().Send(p, Request{Session: dID, Verb: STR})

		// B's SND must transparently restore 100K, but only ~28K is free
		// and the parked barrier pins the rest. No timeout is armed, so
		// the only way forward is the peer STR queued behind this verb.
		before := p.Now()
		m.RequestQueue().Send(p, Request{Session: bID, Verb: SND})
		r := bQ.Recv(p)
		if r.Status != ERR {
			t.Fatalf("SND on barrier-blocked restore: status %v, want ERR", r.Status)
		}
		if !IsRetryable(r.Err) {
			t.Fatalf("SND error not retryable: %q", r.Err)
		}
		if waited := sim.Duration(p.Now() - before); waited > sim.Second {
			t.Fatalf("blocked restore burned %v of virtual backoff before giving up", waited)
		}

		// The queued peer: C's STR completes the barrier (C was evicted by
		// B's failed restore attempt and is restored by its own gate), the
		// generation flushes, and everyone goes idle — evictable.
		m.RequestQueue().Send(p, Request{Session: cID, Verb: STR})

		// The client's retry now restores B by evicting idle sessions.
		m.RequestQueue().Send(p, Request{Session: bID, Verb: SND})
		if r := bQ.Recv(p); r.Status != ACK {
			t.Fatalf("retried SND after barrier drained: %v %s", r.Status, r.Err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreWaitsOutRunningFlush pins the progressCalendar arm: when
// the pinning session is mid-flush (launched, not parked), its
// completion is a calendar event, so the restore must back off and
// succeed within the window rather than surfacing any error at all.
func TestRestoreWaitsOutRunningFlush(t *testing.T) {
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 256 << 10
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch})
	m := New(env, Config{Device: dev, Parties: 1, BarrierTimeout: 0, MaxSessionBytes: 1 << 30})
	m.Start()

	env.Go("driver", func(p *sim.Proc) {
		p.Wait(m.Ready())
		reqKB := func(name string, kb int64, prio int) (int, *Queue[Response]) {
			reply := NewQueue[Response](env, 0, 0)
			m.RequestQueue().Send(p, Request{Verb: REQ, Reply: reply,
				Spec:     &task.Spec{Name: name, InBytes: kb << 10 / 2, OutBytes: kb << 10 / 2},
				Priority: prio})
			r := reply.Recv(p)
			if r.Status != ACK {
				t.Fatalf("REQ %s: %s", name, r.Err)
			}
			return r.Session, reply
		}
		aID, _ := reqKB("A", 160, 5)
		bID, bQ := reqKB("B", 100, 0)
		if m.Evictions() != 1 {
			t.Errorf("evictions = %d, want 1 (A's REQ evicts nothing, B 100K forces A out? no — B is the victim)", m.Evictions())
		}
		// B was evicted by its own REQ? No: A 160K + B 100K > 256K, so B's
		// REQ evicts idle A instead (A has priority 5 but is the only
		// victim). Restore A via its STR gate, which in turn evicts B.
		m.RequestQueue().Send(p, Request{Session: aID, Verb: STR})
		// Parties=1: A's STR flushes immediately; A is running, resident.
		// B's SND must wait out A's flush (progressCalendar), then restore
		// by evicting the now-idle A. No error may surface.
		m.RequestQueue().Send(p, Request{Session: bID, Verb: SND})
		if r := bQ.Recv(p); r.Status != ACK {
			t.Fatalf("SND during running flush: %v %s", r.Status, r.Err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
