// Package fermi describes NVIDIA Fermi-class GPU architectures (and a
// pre-Fermi reference point) at the level of detail needed by the GPU
// simulator: streaming-multiprocessor geometry, occupancy limits, host-link
// bandwidths and driver overheads.
//
// The numbers for the presets come from the NVIDIA Fermi whitepaper and the
// CUDA 3.2 occupancy calculator, which are the hardware and toolkit used in
// the paper (Tesla C2070, CUDA 3.2).
package fermi

import (
	"fmt"

	"gpuvirt/internal/sim"
)

// Arch is a static description of a GPU plus its host link and driver
// overheads. All bandwidths are in bytes per second of virtual time.
type Arch struct {
	Name string

	// Compute geometry.
	SMs        int     // streaming multiprocessors
	CoresPerSM int     // SP cores per SM
	ClockHz    float64 // SP core clock
	WarpSize   int

	// Occupancy limits (per SM).
	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	MaxWarpsPerSM      int
	RegsPerSM          int // 32-bit registers
	RegAllocUnit       int // register allocation granularity, per warp
	SharedMemPerSM     int // bytes
	SharedAllocUnit    int // shared memory allocation granularity, bytes
	WarpAllocGran      int // warps are allocated to blocks in multiples of this
	LatencyHidingWarps int // resident warps an SM needs to reach full issue throughput

	// Device memory.
	MemBytes     int64
	MemBandwidth float64 // device-memory bandwidth, bytes/s

	// Concurrency features.
	MaxConcurrentKernels int  // kernels of ONE context that may run at once
	CopyEngines          int  // independent DMA engines (1 = shared for both directions)
	ConcurrentCopyExec   bool // copy/compute overlap supported

	// Host link (PCIe) characteristics.
	H2DBandwidth       float64      // pageable host->device
	D2HBandwidth       float64      // pageable device->host
	H2DPinnedBandwidth float64      // pinned host->device
	D2HPinnedBandwidth float64      // pinned device->host
	TransferLatency    sim.Duration // fixed per-transfer setup cost

	// Driver/runtime overheads.
	KernelLaunchOverhead sim.Duration
	DeviceInitCost       sim.Duration // one-time device/driver initialization
	ContextCreateCost    sim.Duration // per-context creation
	ContextSwitchCost    sim.Duration // switching the device between contexts
}

// TeslaC2070 returns the architecture used in the paper's evaluation: a
// Fermi Tesla 20-series card with 14 SMs x 32 SPs at 1.15 GHz and 6 GB of
// device memory, up to 16 concurrent kernels, two copy engines.
//
// Driver overheads are calibrated so that the micro-benchmark profile of
// the simulator matches the paper's Table II: Tinit for 8 processes
// ~1519 ms, Tctx_switch ~148-220 ms, effective pageable PCIe bandwidth
// ~2.9-3.0 GB/s each direction.
func TeslaC2070() Arch {
	return Arch{
		Name:       "Tesla C2070 (Fermi GF100)",
		SMs:        14,
		CoresPerSM: 32,
		ClockHz:    1.15e9,
		WarpSize:   32,

		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    1536,
		MaxBlocksPerSM:     8,
		MaxWarpsPerSM:      48,
		RegsPerSM:          32768,
		RegAllocUnit:       64,
		SharedMemPerSM:     48 * 1024,
		SharedAllocUnit:    128,
		WarpAllocGran:      2,
		LatencyHidingWarps: 22,

		MemBytes:     6 * 1024 * 1024 * 1024,
		MemBandwidth: 144e9,

		MaxConcurrentKernels: 16,
		CopyEngines:          2,
		ConcurrentCopyExec:   true,

		// Pageable bandwidths reproduce Table II's measured transfer
		// times; the pinned gain is calibrated so the virtualized path
		// lands 10-20% under the model's (pageable-profiled) equation (4)
		// bound, matching the paper's Table III theory-vs-experiment gap.
		H2DBandwidth:       2.95e9,
		D2HBandwidth:       3.00e9,
		H2DPinnedBandwidth: 3.50e9,
		D2HPinnedBandwidth: 3.40e9,
		TransferLatency:    15 * sim.Microsecond,

		KernelLaunchOverhead: 7 * sim.Microsecond,
		DeviceInitCost:       1103 * sim.Millisecond,
		ContextCreateCost:    52 * sim.Millisecond,
		ContextSwitchCost:    148 * sim.Millisecond,
	}
}

// TeslaC2050 is the 3 GB sibling of the C2070.
func TeslaC2050() Arch {
	a := TeslaC2070()
	a.Name = "Tesla C2050 (Fermi GF100)"
	a.MemBytes = 3 * 1024 * 1024 * 1024
	return a
}

// GeForceGTX480 is the consumer Fermi part: 15 SMs, higher clock, smaller
// memory, single copy engine.
func GeForceGTX480() Arch {
	a := TeslaC2070()
	a.Name = "GeForce GTX 480 (Fermi GF100)"
	a.SMs = 15
	a.ClockHz = 1.40e9
	a.MemBytes = 1536 * 1024 * 1024
	a.MemBandwidth = 177e9
	a.CopyEngines = 1
	return a
}

// TeslaC1060 is a pre-Fermi (GT200, compute capability 1.3) reference
// point: no concurrent kernel execution and no copy/compute overlap. It is
// used by ablation benchmarks to show how much of the paper's gain depends
// on Fermi's concurrency features.
func TeslaC1060() Arch {
	return Arch{
		Name:       "Tesla C1060 (GT200)",
		SMs:        30,
		CoresPerSM: 8,
		ClockHz:    1.296e9,
		WarpSize:   32,

		MaxThreadsPerBlock: 512,
		MaxThreadsPerSM:    1024,
		MaxBlocksPerSM:     8,
		MaxWarpsPerSM:      32,
		RegsPerSM:          16384,
		RegAllocUnit:       512, // block-granular allocation on GT200
		SharedMemPerSM:     16 * 1024,
		SharedAllocUnit:    512,
		WarpAllocGran:      2,
		LatencyHidingWarps: 16,

		MemBytes:     4 * 1024 * 1024 * 1024,
		MemBandwidth: 102e9,

		MaxConcurrentKernels: 1,
		CopyEngines:          1,
		ConcurrentCopyExec:   false,

		H2DBandwidth:       2.5e9,
		D2HBandwidth:       2.5e9,
		H2DPinnedBandwidth: 3.0e9,
		D2HPinnedBandwidth: 2.9e9,
		TransferLatency:    20 * sim.Microsecond,

		KernelLaunchOverhead: 10 * sim.Microsecond,
		DeviceInitCost:       900 * sim.Millisecond,
		ContextCreateCost:    45 * sim.Millisecond,
		ContextSwitchCost:    120 * sim.Millisecond,
	}
}

// Validate reports structural problems with an architecture description.
func (a Arch) Validate() error {
	switch {
	case a.SMs <= 0:
		return fmt.Errorf("fermi: %s: SMs must be positive", a.Name)
	case a.WarpSize <= 0:
		return fmt.Errorf("fermi: %s: WarpSize must be positive", a.Name)
	case a.MaxThreadsPerBlock <= 0 || a.MaxThreadsPerSM <= 0:
		return fmt.Errorf("fermi: %s: thread limits must be positive", a.Name)
	case a.MaxWarpsPerSM*a.WarpSize < a.MaxThreadsPerSM:
		return fmt.Errorf("fermi: %s: warp limit inconsistent with thread limit", a.Name)
	case a.MaxBlocksPerSM <= 0:
		return fmt.Errorf("fermi: %s: MaxBlocksPerSM must be positive", a.Name)
	case a.RegsPerSM <= 0 || a.SharedMemPerSM < 0:
		return fmt.Errorf("fermi: %s: SM resource limits invalid", a.Name)
	case a.LatencyHidingWarps < 1:
		return fmt.Errorf("fermi: %s: LatencyHidingWarps must be >= 1", a.Name)
	case a.MaxConcurrentKernels <= 0:
		return fmt.Errorf("fermi: %s: MaxConcurrentKernels must be >= 1", a.Name)
	case a.CopyEngines <= 0:
		return fmt.Errorf("fermi: %s: CopyEngines must be >= 1", a.Name)
	case a.H2DBandwidth <= 0 || a.D2HBandwidth <= 0:
		return fmt.Errorf("fermi: %s: host-link bandwidths must be positive", a.Name)
	case a.MemBytes <= 0:
		return fmt.Errorf("fermi: %s: MemBytes must be positive", a.Name)
	}
	return nil
}

// TotalCores returns SMs x CoresPerSM.
func (a Arch) TotalCores() int { return a.SMs * a.CoresPerSM }

// PeakSPFlops returns the single-precision peak in FLOP/s (2 flops per
// core per clock via FMA).
func (a Arch) PeakSPFlops() float64 {
	return 2 * float64(a.TotalCores()) * a.ClockHz
}

// TransferTime returns the virtual time to move n bytes across the host
// link in the given direction, using pinned or pageable buffers.
func (a Arch) TransferTime(n int64, toDevice, pinned bool) sim.Duration {
	if n <= 0 {
		return 0
	}
	var bw float64
	switch {
	case toDevice && pinned:
		bw = a.H2DPinnedBandwidth
	case toDevice:
		bw = a.H2DBandwidth
	case pinned:
		bw = a.D2HPinnedBandwidth
	default:
		bw = a.D2HBandwidth
	}
	return a.TransferLatency + sim.Duration(float64(n)/bw*1e9)
}
