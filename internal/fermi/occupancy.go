package fermi

import "fmt"

// BlockResources describes the per-block resource footprint of a kernel,
// the inputs to the CUDA occupancy calculation.
type BlockResources struct {
	ThreadsPerBlock   int
	RegsPerThread     int
	SharedMemPerBlock int // bytes (static + dynamic)
}

// Occupancy is the result of the occupancy calculation for one kernel on
// one architecture.
type Occupancy struct {
	BlocksPerSM    int     // active thread blocks per SM
	WarpsPerBlock  int     // allocation-granular warps per block
	ActiveWarps    int     // warps resident per SM
	Fraction       float64 // ActiveWarps / MaxWarpsPerSM
	LimitedBy      string  // "blocks", "warps", "registers" or "sharedmem"
	ResidentBlocks int     // BlocksPerSM x SMs: device-wide capacity
}

func roundUp(v, unit int) int {
	if unit <= 1 {
		return v
	}
	return (v + unit - 1) / unit * unit
}

// Occupancy runs the CUDA occupancy calculation for a kernel with the
// given per-block resources, following the CUDA 3.2 occupancy calculator
// rules for the architecture's limits.
func (a Arch) Occupancy(r BlockResources) (Occupancy, error) {
	if r.ThreadsPerBlock <= 0 {
		return Occupancy{}, fmt.Errorf("fermi: ThreadsPerBlock must be positive, got %d", r.ThreadsPerBlock)
	}
	if r.ThreadsPerBlock > a.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("fermi: %d threads/block exceeds %s limit %d",
			r.ThreadsPerBlock, a.Name, a.MaxThreadsPerBlock)
	}
	if r.RegsPerThread < 0 || r.SharedMemPerBlock < 0 {
		return Occupancy{}, fmt.Errorf("fermi: negative per-block resources")
	}
	if r.SharedMemPerBlock > a.SharedMemPerSM {
		return Occupancy{}, fmt.Errorf("fermi: %d B shared memory/block exceeds %s SM limit %d B",
			r.SharedMemPerBlock, a.Name, a.SharedMemPerSM)
	}

	warpsRaw := (r.ThreadsPerBlock + a.WarpSize - 1) / a.WarpSize
	warps := roundUp(warpsRaw, a.WarpAllocGran)

	byBlocks := a.MaxBlocksPerSM
	byWarps := a.MaxWarpsPerSM / warps

	byRegs := a.MaxBlocksPerSM
	if r.RegsPerThread > 0 {
		regsPerWarp := roundUp(r.RegsPerThread*a.WarpSize, a.RegAllocUnit)
		regsPerBlock := regsPerWarp * warps
		if regsPerBlock > a.RegsPerSM {
			return Occupancy{}, fmt.Errorf("fermi: kernel needs %d registers/block, SM has %d",
				regsPerBlock, a.RegsPerSM)
		}
		byRegs = a.RegsPerSM / regsPerBlock
	}

	byShmem := a.MaxBlocksPerSM
	if r.SharedMemPerBlock > 0 {
		shm := roundUp(r.SharedMemPerBlock, a.SharedAllocUnit)
		byShmem = a.SharedMemPerSM / shm
	}

	blocks := byBlocks
	limit := "blocks"
	if byWarps < blocks {
		blocks, limit = byWarps, "warps"
	}
	if byRegs < blocks {
		blocks, limit = byRegs, "registers"
	}
	if byShmem < blocks {
		blocks, limit = byShmem, "sharedmem"
	}
	if blocks < 1 {
		return Occupancy{}, fmt.Errorf("fermi: kernel cannot fit a single block on an SM (limited by %s)", limit)
	}

	active := blocks * warps
	if active > a.MaxWarpsPerSM {
		active = a.MaxWarpsPerSM
	}
	return Occupancy{
		BlocksPerSM:    blocks,
		WarpsPerBlock:  warps,
		ActiveWarps:    active,
		Fraction:       float64(active) / float64(a.MaxWarpsPerSM),
		LimitedBy:      limit,
		ResidentBlocks: blocks * a.SMs,
	}, nil
}
