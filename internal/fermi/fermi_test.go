package fermi

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvirt/internal/sim"
)

func TestPresetsValidate(t *testing.T) {
	for _, a := range []Arch{TeslaC2070(), TeslaC2050(), GeForceGTX480(), TeslaC1060()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestC2070Geometry(t *testing.T) {
	a := TeslaC2070()
	if a.SMs != 14 || a.CoresPerSM != 32 {
		t.Fatalf("C2070 geometry = %dx%d, want 14x32 (paper, Section VI)", a.SMs, a.CoresPerSM)
	}
	if a.TotalCores() != 448 {
		t.Fatalf("TotalCores = %d, want 448", a.TotalCores())
	}
	if a.MaxConcurrentKernels != 16 {
		t.Fatalf("MaxConcurrentKernels = %d, want 16", a.MaxConcurrentKernels)
	}
	if a.MemBytes != 6<<30 {
		t.Fatalf("MemBytes = %d, want 6 GiB", a.MemBytes)
	}
	// Peak single precision: 448 cores * 1.15 GHz * 2 flops = 1.03 TFLOP/s.
	if got := a.PeakSPFlops(); math.Abs(got-1.0304e12) > 1e9 {
		t.Fatalf("PeakSPFlops = %g, want ~1.03e12", got)
	}
}

func TestValidateCatchesBadArch(t *testing.T) {
	bad := func(mutate func(*Arch)) Arch {
		a := TeslaC2070()
		mutate(&a)
		return a
	}
	cases := []Arch{
		bad(func(a *Arch) { a.SMs = 0 }),
		bad(func(a *Arch) { a.WarpSize = 0 }),
		bad(func(a *Arch) { a.MaxThreadsPerBlock = 0 }),
		bad(func(a *Arch) { a.MaxWarpsPerSM = 1 }),
		bad(func(a *Arch) { a.MaxBlocksPerSM = 0 }),
		bad(func(a *Arch) { a.RegsPerSM = 0 }),
		bad(func(a *Arch) { a.MaxConcurrentKernels = 0 }),
		bad(func(a *Arch) { a.CopyEngines = 0 }),
		bad(func(a *Arch) { a.H2DBandwidth = 0 }),
		bad(func(a *Arch) { a.MemBytes = 0 }),
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken arch", i)
		}
	}
}

func TestTransferTimeBandwidths(t *testing.T) {
	a := TeslaC2070()
	var n int64 = 200 << 20 // 200 MiB
	h2d := a.TransferTime(n, true, false)
	d2h := a.TransferTime(n, false, false)
	h2dPin := a.TransferTime(n, true, true)
	// Pageable H2D at 2.95 GB/s: ~71 ms for 200 MiB.
	wantH2D := sim.Duration(float64(n)/2.95e9*1e9) + a.TransferLatency
	if h2d != wantH2D {
		t.Fatalf("h2d = %v, want %v", h2d, wantH2D)
	}
	if h2dPin >= h2d {
		t.Fatalf("pinned transfer (%v) not faster than pageable (%v)", h2dPin, h2d)
	}
	if d2h <= 0 {
		t.Fatalf("d2h = %v", d2h)
	}
	if a.TransferTime(0, true, false) != 0 {
		t.Fatal("zero-byte transfer should cost nothing")
	}
	if a.TransferTime(-5, true, false) != 0 {
		t.Fatal("negative-byte transfer should cost nothing")
	}
}

// Reference occupancy cases cross-checked against the CUDA 3.2 occupancy
// calculator for compute capability 2.0.
func TestOccupancyReferenceCases(t *testing.T) {
	a := TeslaC2070()
	cases := []struct {
		name       string
		r          BlockResources
		wantBlocks int
		wantWarps  int
		wantFrac   float64
		wantLimit  string
	}{
		// 256 thr, 20 regs, no shmem: 8 warps/block; regs allow 6 blocks;
		// warps also allow 6 blocks -> 48/48 warps = 100% (warps reported
		// as the limiter on ties, checked first).
		{"256t20r", BlockResources{256, 20, 0}, 6, 8, 1.0, "warps"},
		// 1024 thr, 20 regs: 32 warps/block, only 1 block fits by warps.
		{"1024t20r", BlockResources{1024, 20, 0}, 1, 32, 32.0 / 48.0, "warps"},
		// 64 thr, 16 regs: 2 warps/block, block limit 8 -> 16 warps = 33%.
		{"64t16r", BlockResources{64, 16, 0}, 8, 2, 16.0 / 48.0, "blocks"},
		// 192 thr, 21 regs: 6 warps/block; 21*32=672 -> 704/warp alloc;
		// 704*6=4224/block; 32768/4224=7 blocks; warps: 48/6=8 -> regs limit;
		// 7*6=42 warps = 87.5%.
		{"192t21r", BlockResources{192, 21, 0}, 7, 6, 42.0 / 48.0, "registers"},
		// Shared memory bound: 48K/SM, 12K/block -> 4 blocks.
		{"shmem12k", BlockResources{128, 8, 12 * 1024}, 4, 4, 16.0 / 48.0, "sharedmem"},
		// 33 threads round up to 2 warps (warp alloc granularity 2).
		{"33t", BlockResources{33, 8, 0}, 8, 2, 16.0 / 48.0, "blocks"},
	}
	for _, c := range cases {
		occ, err := a.Occupancy(c.r)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if occ.BlocksPerSM != c.wantBlocks {
			t.Errorf("%s: BlocksPerSM = %d, want %d", c.name, occ.BlocksPerSM, c.wantBlocks)
		}
		if occ.WarpsPerBlock != c.wantWarps {
			t.Errorf("%s: WarpsPerBlock = %d, want %d", c.name, occ.WarpsPerBlock, c.wantWarps)
		}
		if math.Abs(occ.Fraction-c.wantFrac) > 1e-9 {
			t.Errorf("%s: Fraction = %v, want %v", c.name, occ.Fraction, c.wantFrac)
		}
		if occ.LimitedBy != c.wantLimit {
			t.Errorf("%s: LimitedBy = %s, want %s", c.name, occ.LimitedBy, c.wantLimit)
		}
		if occ.ResidentBlocks != occ.BlocksPerSM*a.SMs {
			t.Errorf("%s: ResidentBlocks = %d, want %d", c.name, occ.ResidentBlocks, occ.BlocksPerSM*a.SMs)
		}
	}
}

func TestOccupancyErrors(t *testing.T) {
	a := TeslaC2070()
	cases := []BlockResources{
		{0, 8, 0},           // zero threads
		{-1, 8, 0},          // negative threads
		{2048, 8, 0},        // over max threads/block
		{128, -1, 0},        // negative regs
		{128, 8, -1},        // negative shmem
		{128, 8, 64 * 1024}, // shmem over SM limit
		{1024, 63, 0},       // registers cannot fit one block
	}
	for i, r := range cases {
		if _, err := a.Occupancy(r); err == nil {
			t.Errorf("case %d (%+v): expected error", i, r)
		}
	}
}

// Property: for any valid kernel footprint, the occupancy result respects
// every hardware limit simultaneously.
func TestQuickOccupancyRespectsLimits(t *testing.T) {
	a := TeslaC2070()
	f := func(thrRaw, regRaw uint16, shmRaw uint32) bool {
		r := BlockResources{
			ThreadsPerBlock:   int(thrRaw%1024) + 1,
			RegsPerThread:     int(regRaw % 64),
			SharedMemPerBlock: int(shmRaw % uint32(a.SharedMemPerSM+1)),
		}
		occ, err := a.Occupancy(r)
		if err != nil {
			return true // rejected footprints are fine
		}
		if occ.BlocksPerSM < 1 || occ.BlocksPerSM > a.MaxBlocksPerSM {
			return false
		}
		if occ.BlocksPerSM*occ.WarpsPerBlock > a.MaxWarpsPerSM {
			return false
		}
		if r.RegsPerThread > 0 {
			regsPerWarp := roundUp(r.RegsPerThread*a.WarpSize, a.RegAllocUnit)
			if occ.BlocksPerSM*occ.WarpsPerBlock*regsPerWarp > a.RegsPerSM {
				return false
			}
		}
		if r.SharedMemPerBlock > 0 {
			if occ.BlocksPerSM*roundUp(r.SharedMemPerBlock, a.SharedAllocUnit) > a.SharedMemPerSM {
				return false
			}
		}
		if occ.Fraction <= 0 || occ.Fraction > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy is monotonically non-increasing in every resource
// demand (more registers or shared memory never increases blocks/SM).
func TestQuickOccupancyMonotone(t *testing.T) {
	a := TeslaC2070()
	f := func(thrRaw, regRaw uint16, shmRaw uint32) bool {
		r := BlockResources{
			ThreadsPerBlock:   int(thrRaw%512) + 1,
			RegsPerThread:     int(regRaw%32) + 1,
			SharedMemPerBlock: int(shmRaw % 24576),
		}
		base, err := a.Occupancy(r)
		if err != nil {
			return true
		}
		moreRegs := r
		moreRegs.RegsPerThread++
		if o2, err := a.Occupancy(moreRegs); err == nil && o2.BlocksPerSM > base.BlocksPerSM {
			return false
		}
		moreShm := r
		moreShm.SharedMemPerBlock += 256
		if o3, err := a.Occupancy(moreShm); err == nil && o3.BlocksPerSM > base.BlocksPerSM {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct{ v, unit, want int }{
		{0, 64, 0}, {1, 64, 64}, {64, 64, 64}, {65, 64, 128},
		{100, 1, 100}, {100, 0, 100}, {127, 128, 128},
	}
	for _, c := range cases {
		if got := roundUp(c.v, c.unit); got != c.want {
			t.Errorf("roundUp(%d,%d) = %d, want %d", c.v, c.unit, got, c.want)
		}
	}
}
