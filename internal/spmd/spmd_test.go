package spmd

import (
	"math"
	"testing"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

func cfgFor(w workloads.Workload, n int, functional bool) Config {
	return Config{
		Arch:       fermi.TeslaC2070(),
		N:          n,
		Functional: functional,
		SpecFor:    w.Spec,
		SwitchCost: w.SwitchCost,
		FillInput:  w.Fill,
		CheckOutput: func(i int, buf []byte) error {
			if w.Check == nil {
				return nil
			}
			return w.Check(i, buf)
		},
	}
}

// Functional end-to-end: every workload produces host-validated results
// through BOTH execution paths at a reduced scale.
func TestFunctionalWorkloadsBothModes(t *testing.T) {
	small := []workloads.Workload{
		workloads.VectorAdd(4096),
		workloads.EP(12, 4),
		workloads.MM(64),
		workloads.MG(16, 3, 2),
		workloads.BlackScholes(1024, 2, 4),
		workloads.CG(128, 5, 3, 4),
		workloads.Electrostatics(64, 2, 3, 24, 16),
		workloads.IS(4096, 64, 2, 4),
		workloads.FT(8, 2, 4),
	}
	for _, w := range small {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := cfgFor(w, 3, true)
			if _, err := RunDirect(cfg); err != nil {
				t.Fatalf("direct: %v", err)
			}
			if _, err := RunVirt(cfg); err != nil {
				t.Fatalf("virt: %v", err)
			}
		})
	}
}

func TestDirectMatchesEquation1(t *testing.T) {
	// Paper-scale vector add, timing only: the direct path's turnaround
	// must match equation (1) within a small tolerance.
	w := workloads.PaperVectorAdd()
	cfg := cfgFor(w, 8, false)
	params, err := Profile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDirect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := params.TotalNoVirt().Seconds()
	got := res.Turnaround.Seconds()
	// Equation (1) assumes the whole Tinit strictly precedes all cycles;
	// in the simulator (as on real hardware) later processes' context
	// creations overlap earlier processes' cycles, saving exactly
	// (N-1) x ContextCreateCost. The measurement must sit just under the
	// model, by that margin.
	overlap := 7 * cfg.Arch.ContextCreateCost.Seconds()
	if got > want*1.001 {
		t.Fatalf("direct turnaround %.3fs exceeds equation (1) bound %.3fs", got, want)
	}
	if math.Abs(got-(want-overlap))/want > 0.02 {
		t.Fatalf("direct turnaround %.3fs, want %.3fs (eq. (1) %.3fs minus init overlap %.3fs)",
			got, want-overlap, want, overlap)
	}
	if res.ContextSwitches != 7 {
		t.Fatalf("ContextSwitches = %d, want 7 for 8 tasks", res.ContextSwitches)
	}
}

func TestVirtNearEquation4(t *testing.T) {
	// The virtualized path's turnaround approaches equation (4) plus the
	// virtualization-layer overheads (staging copies, messages); the
	// paper's Figure 10 bounds those at <25% for I/O-bound tasks.
	w := workloads.PaperVectorAdd()
	cfg := cfgFor(w, 8, false)
	params, err := Profile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunVirt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ideal := params.TotalVirt().Seconds()
	got := res.Turnaround.Seconds()
	// The model profiles Tin/Tout on pageable memory while the manager
	// stages through (slightly faster) pinned buffers, so the measured
	// turnaround may undercut equation (4) a little; the virtualization
	// overheads push it back up. The paper's Table III shows experiment
	// within ~20% of theory; hold the same band here.
	if got < ideal*0.85 {
		t.Fatalf("virt turnaround %.3fs far below the model bound %.3fs", got, ideal)
	}
	if got > ideal*1.3 {
		t.Fatalf("virt turnaround %.3fs, more than 1.3x the model bound %.3fs (overheads too large)", got, ideal)
	}
	if res.ContextSwitches != 0 {
		t.Fatalf("ContextSwitches = %d under virtualization", res.ContextSwitches)
	}
	if res.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", res.Flushes)
	}
}

func TestVirtEPFlatTurnaround(t *testing.T) {
	// Paper Figure 9 (right): with virtualization, the compute-intensive
	// EP turnaround stays nearly flat as processes increase, because the
	// small kernels execute concurrently.
	w := workloads.EP(24, 4) // reduced class: same shape, faster sim
	t1, err := RunVirt(cfgFor(w, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	t8, err := RunVirt(cfgFor(w, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	growth := t8.Turnaround.Seconds() / t1.Turnaround.Seconds()
	if growth > 1.15 {
		t.Fatalf("EP virt turnaround grew %.2fx from 1 to 8 processes; want ~flat", growth)
	}
}

func TestDirectEPLinearTurnaround(t *testing.T) {
	// Without virtualization the same workload serializes: turnaround at
	// 8 processes is ~8x the single-process cycle (plus init/switches).
	w := workloads.EP(24, 4)
	t1, err := RunDirect(cfgFor(w, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	t8, err := RunDirect(cfgFor(w, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	if t8.Turnaround.Seconds() < 4*t1.Turnaround.Seconds()-2 {
		t.Fatalf("direct EP turnaround t1=%.3fs t8=%.3fs: expected near-linear growth",
			t1.Turnaround.Seconds(), t8.Turnaround.Seconds())
	}
}

func TestProfileReproducesTableII(t *testing.T) {
	w := workloads.PaperVectorAdd()
	params, err := Profile(cfgFor(w, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want float64 // ms
		tol       float64 // relative
	}{
		{"Tinit", params.Tinit.Seconds() * 1e3, 1519.386, 0.01},
		{"Tdata_in", params.TdataIn.Seconds() * 1e3, 135.874, 0.03},
		{"Tcomp", params.Tcomp.Seconds() * 1e3, 0.038, 0.5},
		{"Tdata_out", params.TdataOut.Seconds() * 1e3, 66.656, 0.03},
		{"Tctx_switch", params.TctxSwitch.Seconds() * 1e3, 148.226, 0.001},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want)/c.want > c.tol {
			t.Errorf("VectorAdd %s = %.4f ms, want ~%.4f ms (Table II)", c.name, c.got, c.want)
		}
	}

	ep := workloads.PaperEP()
	epParams, err := Profile(cfgFor(ep, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	if got := epParams.Tcomp.Seconds() * 1e3; math.Abs(got-8951.346)/8951.346 > 0.02 {
		t.Errorf("EP Tcomp = %.1f ms, want ~8951 ms (Table II)", got)
	}
	if got := epParams.Tinit.Seconds() * 1e3; math.Abs(got-1519.4)/1519.4 > 0.01 {
		t.Errorf("EP Tinit = %.1f ms, want ~1519 ms", got)
	}
}

func TestConfigValidation(t *testing.T) {
	w := workloads.VectorAdd(1024)
	bad := []Config{
		{Arch: fermi.TeslaC2070(), N: 0, SpecFor: w.Spec},
		{Arch: fermi.TeslaC2070(), N: 1},
		{Arch: fermi.TeslaC2070(), N: 1, SpecFor: w.Spec, Cycles: -1},
	}
	for i, cfg := range bad {
		if _, err := RunDirect(cfg); err == nil {
			t.Errorf("case %d: RunDirect accepted invalid config", i)
		}
		if _, err := RunVirt(cfg); err == nil {
			t.Errorf("case %d: RunVirt accepted invalid config", i)
		}
	}
}

func TestMultiCycleRuns(t *testing.T) {
	w := workloads.VectorAdd(1 << 16)
	cfg := cfgFor(w, 2, false)
	cfg.Cycles = 3
	dres, err := RunDirect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dres.KernelsRun != 6 {
		t.Fatalf("direct KernelsRun = %d, want 6 (2 procs x 3 cycles)", dres.KernelsRun)
	}
	vres, err := RunVirt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vres.KernelsRun != 6 {
		t.Fatalf("virt KernelsRun = %d, want 6", vres.KernelsRun)
	}
	if vres.Flushes != 3 {
		t.Fatalf("virt Flushes = %d, want 3 (one barrier per cycle)", vres.Flushes)
	}
}

func TestPerProcessTimesPopulated(t *testing.T) {
	w := workloads.VectorAdd(1 << 16)
	res, err := RunVirt(cfgFor(w, 4, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProcess) != 4 {
		t.Fatalf("PerProcess has %d entries", len(res.PerProcess))
	}
	for i, d := range res.PerProcess {
		if d <= 0 || d > res.Turnaround {
			t.Fatalf("PerProcess[%d] = %v out of range (turnaround %v)", i, d, res.Turnaround)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w := workloads.EP(20, 4)
	cfg := cfgFor(w, 4, false)
	a, err := RunVirt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVirt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Turnaround != b.Turnaround {
		t.Fatalf("virt runs differ: %v vs %v", a.Turnaround, b.Turnaround)
	}
	da, err := RunDirect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := RunDirect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if da.Turnaround != db.Turnaround {
		t.Fatalf("direct runs differ: %v vs %v", da.Turnaround, db.Turnaround)
	}
}

var _ = sim.Millisecond
var _ = task.Spec{}
