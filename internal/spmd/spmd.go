// Package spmd is the experiment harness: it launches N identical SPMD
// processes against a simulated GPU node, in either the conventional
// direct-sharing mode or through the virtualization infrastructure, and
// measures process turnaround time — the time for all processes to finish
// after starting simultaneously, the paper's primary metric (Section VI).
package spmd

import (
	"fmt"

	"gpuvirt/internal/direct"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/model"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/trace"
	"gpuvirt/internal/vgpu"
)

// Config describes one SPMD experiment run.
type Config struct {
	Arch       fermi.Arch
	N          int // number of SPMD processes (<= CPU cores per node)
	Cycles     int // GPU execution cycles per process (default 1)
	Functional bool
	// ExecWorkers sizes the functional-execution worker pool
	// (gpusim.Config.ExecWorkers): 0 = GOMAXPROCS, 1 = serial.
	ExecWorkers int

	// SpecFor returns process i's task description. All processes run
	// the same program under SPMD; the spec may still differ per rank
	// (e.g. different data).
	SpecFor func(i int) *task.Spec

	// SwitchCost overrides the context-switch cost for the workload
	// (paper Table II profiles it per benchmark). 0 uses the arch value.
	SwitchCost sim.Duration

	// FillInput and CheckOutput are functional-mode hooks, called with
	// process i's staged input/output bytes.
	FillInput   func(i int, buf []byte)
	CheckOutput func(i int, buf []byte) error

	// Virtualization-layer knobs (ignored by RunDirect).
	HostCopyBW      float64
	MsgLatency      sim.Duration
	BlockingSTP     bool
	PageableStaging bool
	// PartiesOverride changes the STR barrier width from its default of
	// N (all processes flush together). 1 disables barrier batching —
	// the ablation of the paper's synchronized-flush design.
	PartiesOverride int
	// FlushPolicy orders sessions within a barrier batch (extension).
	FlushPolicy gvm.FlushPolicy

	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Cycles == 0 {
		c.Cycles = 1
	}
	return c
}

// Result is one experiment run's outcome.
type Result struct {
	Mode       string
	N          int
	Turnaround sim.Duration   // max process completion since simultaneous start
	PerProcess []sim.Duration // each process's completion time
	// Device/manager statistics.
	ContextSwitches int
	KernelsRun      int
	Flushes         int
	STPPolls        int
}

func (r Result) String() string {
	return fmt.Sprintf("%s N=%d turnaround=%.3f ms", r.Mode, r.N, r.Turnaround.Seconds()*1e3)
}

// RunDirect measures the conventional baseline: every process initializes
// the device (its share of Tinit), creates its own context and runs its
// cycles, serialized across contexts with switch costs (paper Figure 4).
func RunDirect(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	env := sim.NewEnv()
	dev, err := gpusim.New(env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional, ExecWorkers: cfg.ExecWorkers, Tracer: cfg.Tracer})
	if err != nil {
		return Result{}, err
	}
	res := Result{Mode: "direct", N: cfg.N, PerProcess: make([]sim.Duration, cfg.N)}
	errs := make([]error, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		env.Go(fmt.Sprintf("spmd-%d", i), func(p *sim.Proc) {
			pr, err := direct.Attach(p, dev, cfg.SpecFor(i), cfg.SwitchCost)
			if err != nil {
				errs[i] = err
				return
			}
			if cfg.Functional && cfg.FillInput != nil && pr.HostIn() != nil {
				cfg.FillInput(i, pr.HostIn().Data())
			}
			for c := 0; c < cfg.Cycles; c++ {
				if err := pr.RunCycle(p); err != nil {
					errs[i] = err
					return
				}
			}
			res.PerProcess[i] = sim.Duration(p.Now())
			if cfg.Functional && cfg.CheckOutput != nil && pr.HostOut() != nil {
				errs[i] = cfg.CheckOutput(i, pr.HostOut().Data())
			}
			pr.Detach()
		})
	}
	if err := env.Run(); err != nil {
		return Result{}, fmt.Errorf("spmd direct: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	for _, d := range res.PerProcess {
		if d > res.Turnaround {
			res.Turnaround = d
		}
	}
	res.ContextSwitches = dev.ContextSwitches
	res.KernelsRun = dev.KernelsRun
	return res, nil
}

// RunVirt measures the virtualized path: a pre-initialized manager owns
// the device's only context; N client processes connect through the VGPU
// API, and the manager barriers their STR requests and flushes all
// streams together (paper Figures 5-8). Turnaround is measured from the
// moment the manager is ready (its initialization is a one-time node
// setup cost, not part of the SPMD job).
func RunVirt(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	env := sim.NewEnv()
	dev, err := gpusim.New(env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional, ExecWorkers: cfg.ExecWorkers, Tracer: cfg.Tracer})
	if err != nil {
		return Result{}, err
	}
	parties := cfg.N
	if cfg.PartiesOverride > 0 {
		parties = cfg.PartiesOverride
	}
	mgr := gvm.New(env, gvm.Config{
		Device:        dev,
		Parties:       parties,
		HostCopyBW:    cfg.HostCopyBW,
		MsgLatency:    cfg.MsgLatency,
		BlockingSTP:   cfg.BlockingSTP,
		PinnedStaging: !cfg.PageableStaging,
		FlushPolicy:   cfg.FlushPolicy,
		Tracer:        cfg.Tracer,
	})
	mgr.Start()
	res := Result{Mode: "virt", N: cfg.N, PerProcess: make([]sim.Duration, cfg.N)}
	errs := make([]error, cfg.N)
	polls := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		env.Go(fmt.Sprintf("spmd-%d", i), func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			t0 := p.Now()
			spec := cfg.SpecFor(i)
			v, err := vgpu.Connect(p, mgr, spec)
			if err != nil {
				errs[i] = err
				return
			}
			var in, out []byte
			if cfg.Functional {
				if spec.InBytes > 0 {
					in = make([]byte, spec.InBytes)
					if cfg.FillInput != nil {
						cfg.FillInput(i, in)
					}
				}
				if spec.OutBytes > 0 {
					out = make([]byte, spec.OutBytes)
				}
			}
			for c := 0; c < cfg.Cycles; c++ {
				if err := v.RunCycle(p, in, out); err != nil {
					errs[i] = err
					return
				}
			}
			res.PerProcess[i] = p.Now().Sub(t0)
			if cfg.Functional && cfg.CheckOutput != nil && out != nil {
				errs[i] = cfg.CheckOutput(i, out)
			}
			polls[i] = v.Polls
			if err := v.Release(p); err != nil && errs[i] == nil {
				errs[i] = err
			}
		})
	}
	if err := env.Run(); err != nil {
		return Result{}, fmt.Errorf("spmd virt: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	for _, d := range res.PerProcess {
		if d > res.Turnaround {
			res.Turnaround = d
		}
	}
	for _, n := range polls {
		res.STPPolls += n
	}
	res.ContextSwitches = dev.ContextSwitches
	res.KernelsRun = dev.KernelsRun
	res.Flushes = mgr.Flushes()
	return res, nil
}

func validate(cfg Config) error {
	if cfg.N < 1 {
		return fmt.Errorf("spmd: N = %d, must be >= 1", cfg.N)
	}
	if cfg.SpecFor == nil {
		return fmt.Errorf("spmd: SpecFor is required")
	}
	if cfg.Cycles < 1 {
		return fmt.Errorf("spmd: Cycles = %d, must be >= 1", cfg.Cycles)
	}
	return nil
}

// Profile extracts the workload's Table II model parameters by
// micro-benchmarking the simulator: Tinit from N simultaneous context
// initializations, the cycle stages from a solo run on an idle device,
// and Tctx_switch from the workload's configured switch cost.
func Profile(cfg Config) (model.Params, error) {
	cfg = cfg.withDefaults()
	if err := validate(cfg); err != nil {
		return model.Params{}, err
	}
	env := sim.NewEnv()
	dev, err := gpusim.New(env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional, ExecWorkers: cfg.ExecWorkers})
	if err != nil {
		return model.Params{}, err
	}
	params := model.Params{Name: cfg.SpecFor(0).Name, Ntask: cfg.N}
	if params.TctxSwitch = cfg.SwitchCost; params.TctxSwitch == 0 {
		params.TctxSwitch = cfg.Arch.ContextSwitchCost
	}
	var initDone []sim.Time
	var profErr error
	// Tinit: N processes initialize simultaneously; the total is when the
	// last context exists.
	for i := 0; i < cfg.N; i++ {
		env.Go("init", func(p *sim.Proc) {
			pr, err := direct.Attach(p, dev, cfg.SpecFor(0), cfg.SwitchCost)
			if err != nil {
				profErr = err
				return
			}
			initDone = append(initDone, p.Now())
			// Only the first process proceeds to phase measurement.
			if len(initDone) == 1 {
				if cfg.Functional && cfg.FillInput != nil && pr.HostIn() != nil {
					cfg.FillInput(0, pr.HostIn().Data())
				}
				// Wait for the other inits to drain so phases run on an
				// idle device.
				p.Sleep(cfg.Arch.DeviceInitCost + sim.Duration(cfg.N+1)*cfg.Arch.ContextCreateCost)
				tin, tcomp, tout, err := pr.RunPhases(p)
				if err != nil {
					profErr = err
					return
				}
				params.TdataIn, params.Tcomp, params.TdataOut = tin, tcomp, tout
			}
		})
	}
	if err := env.Run(); err != nil {
		return model.Params{}, err
	}
	if profErr != nil {
		return model.Params{}, profErr
	}
	for _, tm := range initDone {
		if d := sim.Duration(tm); d > params.Tinit {
			params.Tinit = d
		}
	}
	return params, nil
}
