// Package task defines the device-agnostic description of a GPU task —
// how much data it stages each way and how to build its kernel sequence
// once device buffers exist. Both execution paths of the paper share it:
// the virtualized path (gvm/vgpu) and the conventional direct-sharing
// baseline (direct).
package task

import "gpuvirt/internal/cuda"

// Allocator allocates device memory; gpusim.Context implements it.
type Allocator interface {
	Malloc(n int64) (cuda.DevPtr, error)
	Free(p cuda.DevPtr) error
}

// Buffers gives a kernel builder access to the task's device buffers.
type Buffers struct {
	In, Out cuda.DevPtr
	Alloc   Allocator
	Scratch *[]cuda.DevPtr // extra allocations, freed at teardown
}

// NewScratch allocates an extra device buffer owned by the task.
func (b *Buffers) NewScratch(n int64) (cuda.DevPtr, error) {
	p, err := b.Alloc.Malloc(n)
	if err != nil {
		return 0, err
	}
	*b.Scratch = append(*b.Scratch, p)
	return p, nil
}

// KernelBuilder constructs a task's kernel sequence once its device
// buffers are allocated.
type KernelBuilder func(b *Buffers) ([]*cuda.Kernel, error)

// Spec describes one SPMD process's GPU task.
type Spec struct {
	Name     string
	InBytes  int64 // bytes staged host->device per cycle
	OutBytes int64 // bytes staged device->host per cycle
	Build    KernelBuilder
}
