package task

import (
	"errors"
	"testing"

	"gpuvirt/internal/cuda"
)

type recordingAlloc struct {
	next   cuda.DevPtr
	freed  []cuda.DevPtr
	failAt int
	calls  int
}

func (a *recordingAlloc) Malloc(n int64) (cuda.DevPtr, error) {
	a.calls++
	if a.failAt > 0 && a.calls >= a.failAt {
		return 0, errors.New("oom")
	}
	a.next += 4096
	return a.next, nil
}

func (a *recordingAlloc) Free(p cuda.DevPtr) error {
	a.freed = append(a.freed, p)
	return nil
}

func TestNewScratchTracksAllocations(t *testing.T) {
	al := &recordingAlloc{}
	var scratch []cuda.DevPtr
	b := &Buffers{Alloc: al, Scratch: &scratch}
	p1, err := b.NewScratch(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.NewScratch(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(scratch) != 2 || scratch[0] != p1 || scratch[1] != p2 {
		t.Fatalf("scratch = %v", scratch)
	}
}

func TestNewScratchPropagatesOOM(t *testing.T) {
	al := &recordingAlloc{failAt: 1}
	var scratch []cuda.DevPtr
	b := &Buffers{Alloc: al, Scratch: &scratch}
	if _, err := b.NewScratch(100); err == nil {
		t.Fatal("NewScratch swallowed the allocation failure")
	}
	if len(scratch) != 0 {
		t.Fatal("failed allocation was tracked")
	}
}
