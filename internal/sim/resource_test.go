package sim

import "testing"

func TestResourceBasicAcquireRelease(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(2)
	var doneAt [3]Time
	for i := 0; i < 3; i++ {
		i := i
		e.Go("u", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(10 * Millisecond)
			r.Release(1)
			doneAt[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run concurrently, third waits for a slot.
	if doneAt[0] != Time(10*Millisecond) || doneAt[1] != Time(10*Millisecond) {
		t.Fatalf("first two finished at %v, %v; want 10ms", doneAt[0], doneAt[1])
	}
	if doneAt[2] != Time(20*Millisecond) {
		t.Fatalf("third finished at %v, want 20ms", doneAt[2])
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", r.InUse())
	}
}

func TestResourceFIFONoBarging(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(4)
	var order []string
	e.Go("big-then-small", func(p *Proc) {
		r.Acquire(p, 3) // holds 3 of 4
		p.Sleep(10 * Millisecond)
		r.Release(3)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(Millisecond)
		r.Acquire(p, 4) // queued: needs all 4
		order = append(order, "big")
		r.Release(4)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		r.Acquire(p, 1) // one unit IS free, but big is ahead: must wait
		order = append(order, "small")
		r.Release(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small] (FIFO)", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire on full resource succeeded")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourcePanicsOnBadArgs(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(2)
	mustPanic(t, func() { r.Release(1) })     // nothing held
	mustPanic(t, func() { r.TryAcquire(3) })  // over capacity
	mustPanic(t, func() { r.TryAcquire(0) })  // zero
	mustPanic(t, func() { e.NewResource(0) }) // bad capacity
	mustPanic(t, func() { NewEnv().NewResource(-1) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := NewEnv()
	b := e.NewBarrier(3)
	var times []Time
	for i := 0; i < 3; i++ {
		d := Duration(i+1) * 10 * Millisecond
		e.Go("p", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			times = append(times, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("%d parties released, want 3", len(times))
	}
	for _, tm := range times {
		if tm != Time(30*Millisecond) {
			t.Fatalf("party released at %v, want 30ms (last arrival)", tm)
		}
	}
}

func TestBarrierReusableGenerations(t *testing.T) {
	e := NewEnv()
	b := e.NewBarrier(2)
	rounds := 0
	for i := 0; i < 2; i++ {
		e.Go("p", func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(Millisecond)
				if b.Wait(p) == 0 && p.Name() != "" {
					rounds++
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 5 {
		t.Fatalf("rounds = %d, want 5", rounds)
	}
}

func TestBarrierArrivalIndex(t *testing.T) {
	e := NewEnv()
	b := e.NewBarrier(2)
	var idxs []int
	e.Go("first", func(p *Proc) { idxs = append(idxs, b.Wait(p)) })
	e.Go("second", func(p *Proc) {
		p.Sleep(Millisecond)
		idxs = append(idxs, b.Wait(p))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// second arrives last -> index 1 and releases first.
	if len(idxs) != 2 {
		t.Fatalf("idxs = %v", idxs)
	}
	if idxs[0] != 1 || idxs[1] != 0 {
		t.Fatalf("idxs = %v, want [1 0] (last arriver returns first)", idxs)
	}
}
