package sim

// Resource is a counting resource (semaphore) with strict FIFO granting.
// Typical uses: DMA engines (capacity 1), SM block slots (capacity N),
// bounded queues of service slots.
type Resource struct {
	env   *Env
	cap   int
	inUse int
	queue []*resWaiter
}

type resWaiter struct {
	n     int
	grant *Event
}

// NewResource returns a resource with the given capacity (>= 1).
func (e *Env) NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, cap: capacity}
}

// Cap returns the total capacity.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.cap - r.inUse }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Acquire blocks the process until n units (1 <= n <= cap) are granted.
// Grants are strictly FIFO: a large request at the head blocks later small
// requests (no barging), which matches hardware queue semantics.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.cap {
		panic("sim: invalid acquire count")
	}
	if len(r.queue) == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		return
	}
	w := &resWaiter{n: n, grant: r.env.NewEvent()}
	r.queue = append(r.queue, w)
	p.Wait(w.grant)
}

// TryAcquire acquires n units without blocking, reporting success.
func (r *Resource) TryAcquire(n int) bool {
	if n < 1 || n > r.cap {
		panic("sim: invalid acquire count")
	}
	if len(r.queue) == 0 && r.inUse+n <= r.cap {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and grants queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n < 1 || r.inUse-n < 0 {
		panic("sim: invalid release count")
	}
	r.inUse -= n
	for len(r.queue) > 0 {
		w := r.queue[0]
		if r.inUse+w.n > r.cap {
			break
		}
		r.queue = r.queue[1:]
		r.inUse += w.n
		w.grant.Fire(nil)
	}
}

// Barrier releases all waiting processes at once when n processes have
// arrived, then resets for the next generation (reusable barrier).
type Barrier struct {
	env   *Env
	n     int
	count int
	gen   *Event
}

// NewBarrier returns a reusable barrier for n parties (n >= 1).
func (e *Env) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier party count must be >= 1")
	}
	return &Barrier{env: e, n: n, gen: e.NewEvent()}
}

// Parties returns the number of parties the barrier waits for.
func (b *Barrier) Parties() int { return b.n }

// Waiting returns the number of parties currently blocked at the barrier.
func (b *Barrier) Waiting() int { return b.count }

// Wait blocks the process until n parties have arrived. The last arriver
// releases everyone and does not block. Returns the generation's arrival
// index (0-based).
func (b *Barrier) Wait(p *Proc) int {
	idx := b.count
	b.count++
	if b.count == b.n {
		old := b.gen
		b.count = 0
		b.gen = b.env.NewEvent()
		old.Fire(nil)
		return idx
	}
	gen := b.gen
	p.Wait(gen)
	return idx
}
