// Package sim implements a deterministic, process-oriented discrete-event
// simulation engine.
//
// The engine drives a virtual clock. Work is expressed either as timer
// callbacks (At/After) or as processes: ordinary functions running on their
// own goroutines that may block on virtual time (Sleep), on events (Wait),
// on resources, stores and barriers. At any instant exactly one goroutine —
// the scheduler or a single resumed process — executes, so simulations are
// fully deterministic and need no locking of simulation state.
//
// Ties in the event calendar are broken by schedule order (FIFO), which
// keeps multi-process interleavings stable across runs.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is re-exported from package time for convenience; virtual
// durations use the same unit (nanoseconds) as wall-clock durations.
type Duration = time.Duration

// Common durations, re-exported so callers need not import time.
const (
	Nanosecond  Duration = time.Nanosecond
	Microsecond Duration = time.Microsecond
	Millisecond Duration = time.Millisecond
	Second      Duration = time.Second
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// item is a calendar entry: at time at (seq breaking ties), run fn. Items
// are stored by value in the heap slice, so scheduling a future event costs
// no per-event allocation once the slice's capacity has warmed up.
type item struct {
	at  Time
	seq uint64
	fn  func()
}

func (it item) less(o item) bool {
	if it.at != o.at {
		return it.at < o.at
	}
	return it.seq < o.seq
}

// Env is a simulation environment: a virtual clock plus an event calendar.
// The zero value is not usable; construct with NewEnv.
//
// The calendar is split in two: a value-based binary heap for future
// instants, and a flat FIFO (nowQ) for events scheduled at the current
// instant. Same-instant scheduling — process resume, unblock, Go, event
// fan-out — dominates the engine's hot path, and the FIFO turns each such
// event into one slice append against pooled capacity instead of a heap
// push. Ordering is preserved: heap entries due at the current instant were
// scheduled before the clock reached it, so they always precede nowQ
// entries, and nowQ itself is FIFO by construction.
type Env struct {
	now     Time
	cal     []item // future events, min-heap on (at, seq)
	nowQ    []func()
	nowHead int
	seq     uint64
	parked  chan struct{} // a resumed process signals here when it blocks or exits
	blocked int           // processes alive but waiting on something other than time
	procs   int           // processes alive
	running bool
}

// pushCal inserts a future entry into the heap (sift-up).
func (e *Env) pushCal(it item) {
	e.cal = append(e.cal, it)
	i := len(e.cal) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.cal[i].less(e.cal[parent]) {
			break
		}
		e.cal[i], e.cal[parent] = e.cal[parent], e.cal[i]
		i = parent
	}
}

// popCal removes the minimum heap entry (sift-down), clearing the vacated
// slot so the closure can be collected.
func (e *Env) popCal() {
	n := len(e.cal) - 1
	e.cal[0] = e.cal[n]
	e.cal[n] = item{}
	e.cal = e.cal[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && e.cal[r].less(e.cal[l]) {
			m = r
		}
		if !e.cal[m].less(e.cal[i]) {
			break
		}
		e.cal[i], e.cal[m] = e.cal[m], e.cal[i]
		i = m
	}
}

// NewEnv returns an empty simulation environment at time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// schedule enters fn into the calendar at instant at. Instants at or before
// the current time take the same-instant FIFO fast path.
func (e *Env) schedule(at Time, fn func()) {
	if at <= e.now {
		e.nowQ = append(e.nowQ, fn)
		return
	}
	e.seq++
	e.pushCal(item{at: at, seq: e.seq, fn: fn})
}

// At schedules fn to run at the given virtual instant (or now, if the
// instant is in the past). fn runs on the scheduler goroutine.
func (e *Env) At(at Time, fn func()) { e.schedule(at, fn) }

// After schedules fn to run d from now.
func (e *Env) After(d Duration, fn func()) { e.schedule(e.now.Add(d), fn) }

// Proc is a simulation process: user code running on its own goroutine,
// resumed by the scheduler one at a time.
type Proc struct {
	env    *Env
	name   string
	wake   chan struct{}
	daemon bool
	// resume is the one handoff closure every park/unpark of this process
	// schedules, bound once at spawn so the hot path (Sleep, WaitUntil,
	// unblock) enters the calendar without allocating a fresh closure.
	resume func()
}

// Daemonize marks the process as a daemon: a daemon blocked on a condition
// does not count toward deadlock detection, so service loops (e.g. queue
// consumers) may outlive the simulation without erroring Run.
func (p *Proc) Daemonize() { p.daemon = true }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process running fn, starting at the current instant
// (after already-scheduled events at this instant).
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	p.resume = func() { e.handoff(p) }
	e.procs++
	go func() {
		<-p.wake // wait for first resume
		fn(p)
		e.procs--
		e.parked <- struct{}{} // yield control back for good
	}()
	e.schedule(e.now, p.resume)
	return p
}

// handoff transfers control to p and blocks the scheduler until p either
// parks (blocks on virtual time / an event) or exits.
func (e *Env) handoff(p *Proc) {
	p.wake <- struct{}{}
	<-e.parked
}

// park suspends the calling process, returning control to the scheduler,
// until something resumes it via a calendar entry calling handoff.
func (p *Proc) park() {
	p.env.parked <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for virtual duration d (non-negative).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now.Add(d))
}

// WaitUntil suspends the process until virtual instant t.
func (p *Proc) WaitUntil(t Time) {
	p.env.schedule(t, p.resume)
	p.park()
}

// Yield reschedules the process after all events already pending at the
// current instant.
func (p *Proc) Yield() { p.WaitUntil(p.env.now) }

// block marks the process as blocked on a non-time condition and parks.
// resume must eventually be arranged by the condition's owner.
func (p *Proc) block() {
	if p.daemon {
		p.park()
		return
	}
	p.env.blocked++
	p.park()
	p.env.blocked--
}

// unblock schedules p to resume at the current instant.
func (e *Env) unblock(p *Proc) {
	e.schedule(e.now, p.resume)
}

// Run executes calendar entries in time order until the calendar is empty.
// It returns an error if processes remain blocked on conditions that can
// never fire (deadlock).
func (e *Env) Run() error { return e.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes calendar entries in time order until the calendar is
// empty or the next entry is later than horizon. The clock never advances
// past horizon.
func (e *Env) RunUntil(horizon Time) error {
	if e.running {
		return fmt.Errorf("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		// Heap entries due now were scheduled before the clock reached this
		// instant, so they precede everything queued in nowQ.
		for len(e.cal) > 0 && e.cal[0].at <= e.now {
			fn := e.cal[0].fn
			e.popCal()
			fn()
		}
		// Drain the same-instant FIFO with a cursor: callbacks may append
		// more same-instant work, which runs in this same pass in FIFO
		// order. Slots are cleared as they run so closures don't linger.
		for e.nowHead < len(e.nowQ) {
			fn := e.nowQ[e.nowHead]
			e.nowQ[e.nowHead] = nil
			e.nowHead++
			fn()
		}
		e.nowQ = e.nowQ[:0]
		e.nowHead = 0
		if len(e.cal) == 0 {
			break
		}
		if next := e.cal[0].at; next > horizon {
			e.now = horizon
			return nil
		} else {
			e.now = next
		}
	}
	if e.blocked > 0 {
		return fmt.Errorf("sim: deadlock: %d process(es) blocked with empty calendar at %v", e.blocked, e.now)
	}
	return nil
}

// Event is a one-shot condition processes can wait on. Once fired it stays
// fired; waiters arriving later proceed immediately. An optional value can
// be attached at fire time.
type Event struct {
	env     *Env
	fired   bool
	val     any
	waiters []*Proc
	cbs     []func(any)
}

// NewEvent returns a fresh unfired event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Value returns the value the event fired with (nil before firing).
func (ev *Event) Value() any { return ev.val }

// Fire fires the event with value v, waking all waiters at the current
// instant in FIFO order. Firing an already-fired event is a no-op.
func (ev *Event) Fire(v any) {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.val = v
	// Nothing re-registers on a fired event (Wait and OnFire both take
	// the already-fired fast path), so the slices can be truncated in
	// place: the backing arrays survive for the next use after Reset,
	// keeping repeated block/wake cycles allocation-free.
	for i, p := range ev.waiters {
		ev.env.unblock(p)
		ev.waiters[i] = nil
	}
	ev.waiters = ev.waiters[:0]
	for i, cb := range ev.cbs {
		if cb != nil { // detached (e.g. a WaitAny loser)
			cb(v)
		}
		ev.cbs[i] = nil
	}
	ev.cbs = ev.cbs[:0]
}

// Reset returns a fired event to the unfired state so its owner can
// arm it again, avoiding one Event allocation per blocking operation.
// Only the sole consumer of the previous firing may call it (e.g. a
// Store getter recycling its waiter): anyone still holding the event
// would otherwise see it spuriously unfired.
func (ev *Event) Reset() {
	ev.fired = false
	ev.val = nil
}

// OnFire registers a callback run (on the scheduler goroutine) when the
// event fires; if already fired the callback runs immediately.
func (ev *Event) OnFire(cb func(v any)) {
	if ev.fired {
		cb(ev.val)
		return
	}
	ev.cbs = append(ev.cbs, cb)
}

// Wait suspends the process until the event fires and returns the event's
// value. Returns immediately if already fired.
func (p *Proc) Wait(ev *Event) any {
	if ev.fired {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	p.block()
	return ev.val
}

// WaitAll suspends the process until every given event has fired.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// WaitAny suspends the process until at least one of the events has fired,
// and returns the index of the earliest-fired event among them. Once the
// winner fires, the callbacks registered on the losing events are detached,
// so long-lived events do not accumulate dead closures from repeated
// WaitAny calls.
func (p *Proc) WaitAny(evs ...*Event) int {
	for i, ev := range evs {
		if ev.fired {
			return i
		}
	}
	done := p.env.NewEvent()
	ids := make([]int, len(evs))
	for i, ev := range evs {
		i := i
		ids[i] = len(ev.cbs)
		ev.cbs = append(ev.cbs, func(any) { done.Fire(i) })
	}
	idx := p.Wait(done).(int)
	for i, ev := range evs {
		if i != idx && !ev.fired && ids[i] < len(ev.cbs) {
			ev.cbs[ids[i]] = nil
		}
	}
	return idx
}
