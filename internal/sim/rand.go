package sim

import "math"

// Rand is a small deterministic pseudo-random source (SplitMix64), used
// wherever experiments need repeatable jitter or input data. It avoids
// math/rand so that streams are stable across Go releases.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a pseudo-random float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
