package sim

import "testing"

func TestStoreFIFO(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, 0)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s.Put(p, i)
			p.Sleep(Millisecond)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, s.Get(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v, want 0..4 in order", got)
		}
	}
}

func TestStoreGetBlocksUntilPut(t *testing.T) {
	e := NewEnv()
	s := NewStore[string](e, 0)
	var gotAt Time
	e.Go("consumer", func(p *Proc) {
		if v := s.Get(p); v != "x" {
			t.Errorf("Get = %q", v)
		}
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		s.Put(p, "x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != Time(7*Millisecond) {
		t.Fatalf("consumer resumed at %v, want 7ms", gotAt)
	}
}

func TestStorePutBlocksWhenFull(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, 2)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		s.Put(p, 1)
		s.Put(p, 2)
		s.Put(p, 3) // blocks: capacity 2
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(10 * Millisecond)
		_ = s.Get(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != Time(10*Millisecond) {
		t.Fatalf("third Put completed at %v, want 10ms", putDone)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestStoreTryOps(t *testing.T) {
	e := NewEnv()
	s := NewStore[int](e, 1)
	if _, ok := s.TryGet(); ok {
		t.Fatal("TryGet on empty store succeeded")
	}
	if !s.TryPut(9) {
		t.Fatal("TryPut on empty store failed")
	}
	if s.TryPut(10) {
		t.Fatal("TryPut on full store succeeded")
	}
	v, ok := s.TryGet()
	if !ok || v != 9 {
		t.Fatalf("TryGet = %d,%v", v, ok)
	}
}

func TestStoreHandoffToWaitingGetter(t *testing.T) {
	// A Put while a getter is blocked must bypass the buffer entirely,
	// even if the buffer is full of nothing (cap 1 with pending getter).
	e := NewEnv()
	s := NewStore[int](e, 1)
	var got int
	e.Go("g", func(p *Proc) { got = s.Get(p) })
	e.Go("p", func(p *Proc) {
		p.Sleep(Millisecond)
		s.Put(p, 42)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %d, want 42", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after handoff, want 0", s.Len())
	}
}

func TestStoreNegativeCapacityPanics(t *testing.T) {
	e := NewEnv()
	mustPanic(t, func() { NewStore[int](e, -1) })
}
