package sim

// Store is a bounded FIFO queue of items of type T with blocking Put and
// Get, analogous to a POSIX message queue or a buffered channel living in
// virtual time. Capacity 0 means unbounded.
type Store[T any] struct {
	env     *Env
	cap     int
	items   []T
	getters []*storeGetter[T]
	putters []*storePutter[T]
}

type storeGetter[T any] struct{ ev *Event }

type storePutter[T any] struct {
	v  T
	ev *Event
}

// NewStore returns a FIFO store with the given capacity (0 = unbounded).
func NewStore[T any](e *Env, capacity int) *Store[T] {
	if capacity < 0 {
		panic("sim: negative store capacity")
	}
	return &Store[T]{env: e, cap: capacity}
}

// Len returns the number of buffered items.
func (s *Store[T]) Len() int { return len(s.items) }

// Cap returns the capacity (0 = unbounded).
func (s *Store[T]) Cap() int { return s.cap }

// Put enqueues v, blocking the process while the store is full.
func (s *Store[T]) Put(p *Proc, v T) {
	if s.cap == 0 || len(s.items) < s.cap || len(s.getters) > 0 {
		s.deliver(v)
		return
	}
	w := &storePutter[T]{v: v, ev: s.env.NewEvent()}
	s.putters = append(s.putters, w)
	p.Wait(w.ev)
}

// TryPut enqueues v without blocking, reporting success.
func (s *Store[T]) TryPut(v T) bool {
	if s.cap != 0 && len(s.items) >= s.cap && len(s.getters) == 0 {
		return false
	}
	s.deliver(v)
	return true
}

func (s *Store[T]) deliver(v T) {
	if len(s.getters) > 0 {
		g := s.getters[0]
		s.getters = s.getters[1:]
		g.ev.Fire(v)
		return
	}
	s.items = append(s.items, v)
}

// Get dequeues the oldest item, blocking the process while the store is
// empty.
func (s *Store[T]) Get(p *Proc) T {
	if len(s.items) > 0 {
		return s.pop()
	}
	g := &storeGetter[T]{ev: s.env.NewEvent()}
	s.getters = append(s.getters, g)
	return p.Wait(g.ev).(T)
}

// TryGet dequeues without blocking; ok reports whether an item was present.
func (s *Store[T]) TryGet() (v T, ok bool) {
	if len(s.items) == 0 {
		return v, false
	}
	return s.pop(), true
}

func (s *Store[T]) pop() T {
	v := s.items[0]
	var zero T
	s.items[0] = zero
	s.items = s.items[1:]
	// A slot opened; admit the oldest blocked putter, if any.
	if len(s.putters) > 0 && (s.cap == 0 || len(s.items) < s.cap) {
		w := s.putters[0]
		s.putters = s.putters[1:]
		s.items = append(s.items, w.v)
		w.ev.Fire(nil)
	}
	return v
}
