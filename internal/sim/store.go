package sim

// Store is a bounded FIFO queue of items of type T with blocking Put and
// Get, analogous to a POSIX message queue or a buffered channel living in
// virtual time. Capacity 0 means unbounded.
//
// The buffered items live in a head-indexed slice that is reset (not
// re-sliced) when it drains, so a steady-state put/get ping-pong — the
// daemon's warm ring cycle — reuses one backing array and allocates
// nothing. Blocked getters carry the delivered value in the waiter
// itself instead of through Event.Fire's interface payload, keeping the
// wakeup path free of boxing.
type Store[T any] struct {
	env     *Env
	cap     int
	items   []T
	head    int
	getters []*storeGetter[T]
	gethead int
	putters []*storePutter[T]
	puthead int
	// free is a small freelist of getter waiters: the same process
	// blocking on Get over and over (a stream's pump between bursts)
	// recycles one waiter instead of allocating each time.
	free []*storeGetter[T]
}

type storeGetter[T any] struct {
	v  T
	ev *Event
}

type storePutter[T any] struct {
	v  T
	ev *Event
}

// NewStore returns a FIFO store with the given capacity (0 = unbounded).
func NewStore[T any](e *Env, capacity int) *Store[T] {
	if capacity < 0 {
		panic("sim: negative store capacity")
	}
	return &Store[T]{env: e, cap: capacity}
}

// Len returns the number of buffered items.
func (s *Store[T]) Len() int { return len(s.items) - s.head }

// Cap returns the capacity (0 = unbounded).
func (s *Store[T]) Cap() int { return s.cap }

// Put enqueues v, blocking the process while the store is full.
func (s *Store[T]) Put(p *Proc, v T) {
	if s.cap == 0 || s.Len() < s.cap || s.gethead < len(s.getters) {
		s.deliver(v)
		return
	}
	w := &storePutter[T]{v: v, ev: s.env.NewEvent()}
	s.putters = append(s.putters, w)
	p.Wait(w.ev)
}

// TryPut enqueues v without blocking, reporting success.
func (s *Store[T]) TryPut(v T) bool {
	if s.cap != 0 && s.Len() >= s.cap && s.gethead == len(s.getters) {
		return false
	}
	s.deliver(v)
	return true
}

func (s *Store[T]) deliver(v T) {
	if s.gethead < len(s.getters) {
		g := s.getters[s.gethead]
		s.getters[s.gethead] = nil
		s.gethead++
		if s.gethead == len(s.getters) {
			s.getters = s.getters[:0]
			s.gethead = 0
		}
		g.v = v
		g.ev.Fire(nil)
		return
	}
	if s.head == len(s.items) && s.head > 0 {
		// Fully drained (pop zeroed every consumed slot): rewind so the
		// backing array is reused instead of growing forever.
		s.items = s.items[:0]
		s.head = 0
	}
	s.items = append(s.items, v)
}

// Get dequeues the oldest item, blocking the process while the store is
// empty.
func (s *Store[T]) Get(p *Proc) T {
	if s.head < len(s.items) {
		return s.pop()
	}
	var g *storeGetter[T]
	if n := len(s.free); n > 0 {
		g = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		g = &storeGetter[T]{ev: s.env.NewEvent()}
	}
	s.getters = append(s.getters, g)
	p.Wait(g.ev)
	v := g.v
	var zero T
	g.v = zero
	g.ev.Reset()
	if len(s.free) < 4 {
		s.free = append(s.free, g)
	}
	return v
}

// TryGet dequeues without blocking; ok reports whether an item was present.
func (s *Store[T]) TryGet() (v T, ok bool) {
	if s.head == len(s.items) {
		return v, false
	}
	return s.pop(), true
}

func (s *Store[T]) pop() T {
	v := s.items[s.head]
	var zero T
	s.items[s.head] = zero
	s.head++
	if s.head == len(s.items) {
		s.items = s.items[:0]
		s.head = 0
	}
	// A slot opened; admit the oldest blocked putter, if any.
	if s.puthead < len(s.putters) && (s.cap == 0 || s.Len() < s.cap) {
		w := s.putters[s.puthead]
		s.putters[s.puthead] = nil
		s.puthead++
		if s.puthead == len(s.putters) {
			s.putters = s.putters[:0]
			s.puthead = 0
		}
		s.items = append(s.items, w.v)
		w.ev.Fire(nil)
	}
	return v
}
