package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: events scheduled at arbitrary instants always execute in
// nondecreasing time order, and equal instants in schedule order.
func TestQuickCalendarOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEnv()
		type obs struct {
			at  Time
			seq int
		}
		var ran []obs
		for i, off := range offsets {
			i := i
			at := Time(Duration(off) * Microsecond)
			e.At(at, func() { ran = append(ran, obs{e.Now(), i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(ran) != len(offsets) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i].at < ran[i-1].at {
				return false
			}
			if ran[i].at == ran[i-1].at && ran[i].seq < ran[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a process sleeping a sequence of durations wakes at the exact
// prefix sums, regardless of other processes in the system.
func TestQuickSleepPrefixSums(t *testing.T) {
	f := func(ds []uint16, noise []uint16) bool {
		e := NewEnv()
		var wakes []Time
		e.Go("main", func(p *Proc) {
			for _, d := range ds {
				p.Sleep(Duration(d) * Microsecond)
				wakes = append(wakes, p.Now())
			}
		})
		for _, n := range noise {
			d := Duration(n) * Microsecond
			e.Go("noise", func(p *Proc) { p.Sleep(d) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		var sum Time
		for i, d := range ds {
			sum = sum.Add(Duration(d) * Microsecond)
			if wakes[i] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a capacity-1 resource held for a fixed service time by
// each of n processes, completions are spaced exactly one service time
// apart (perfect serialization), in FIFO arrival order.
func TestQuickResourceSerializes(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%16) + 1
		const service = 3 * Millisecond
		e := NewEnv()
		r := e.NewResource(1)
		var doneAt []Time
		for i := 0; i < count; i++ {
			e.Go("u", func(p *Proc) {
				r.Acquire(p, 1)
				p.Sleep(service)
				r.Release(1)
				doneAt = append(doneAt, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(doneAt) != count {
			return false
		}
		for i, tm := range doneAt {
			if tm != Time(Duration(i+1)*service) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a store preserves exact FIFO order for any payload sequence.
func TestQuickStoreFIFO(t *testing.T) {
	f := func(vals []int64, capRaw uint8) bool {
		capacity := int(capRaw % 8) // 0..7, 0 = unbounded
		e := NewEnv()
		s := NewStore[int64](e, capacity)
		var got []int64
		e.Go("producer", func(p *Proc) {
			for _, v := range vals {
				s.Put(p, v)
			}
		})
		e.Go("consumer", func(p *Proc) {
			for range vals {
				got = append(got, s.Get(p))
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the deterministic Rand produces identical streams for
// identical seeds and (overwhelmingly likely) different streams for
// different seeds; Float64 stays in [0,1).
func TestQuickRandDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 50; i++ {
			x, y := a.Float64(), b.Float64()
			if x != y || x < 0 || x >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: barrier with n parties and arbitrary arrival offsets releases
// everyone at the max arrival instant.
func TestQuickBarrierReleaseAtMax(t *testing.T) {
	f := func(offs []uint16) bool {
		if len(offs) == 0 {
			return true
		}
		if len(offs) > 32 {
			offs = offs[:32]
		}
		e := NewEnv()
		b := e.NewBarrier(len(offs))
		var releases []Time
		var max Duration
		for _, o := range offs {
			d := Duration(o) * Microsecond
			if d > max {
				max = d
			}
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				b.Wait(p)
				releases = append(releases, p.Now())
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for _, tm := range releases {
			if tm != Time(max) {
				return false
			}
		}
		return len(releases) == len(offs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Sanity: heap interface behaves like a sorted multiset of instants.
func TestQuickCalendarMatchesSort(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEnv()
		var ran []Time
		for _, off := range offsets {
			at := Time(Duration(off) * Microsecond)
			e.At(at, func() { ran = append(ran, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		want := make([]Time, len(offsets))
		for i, off := range offsets {
			want[i] = Time(Duration(off) * Microsecond)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if ran[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
