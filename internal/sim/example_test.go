package sim_test

import (
	"fmt"

	"gpuvirt/internal/sim"
)

// Two processes coordinate through an event in virtual time.
func Example() {
	env := sim.NewEnv()
	ready := env.NewEvent()

	env.Go("producer", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		ready.Fire("payload")
	})
	env.Go("consumer", func(p *sim.Proc) {
		v := p.Wait(ready)
		fmt.Printf("consumer got %q at %v\n", v, p.Now())
	})

	if err := env.Run(); err != nil {
		panic(err)
	}
	// Output: consumer got "payload" at 10ms
}

// A capacity-2 resource admits two holders at once; the third waits.
func ExampleResource() {
	env := sim.NewEnv()
	r := env.NewResource(2)
	for i := 0; i < 3; i++ {
		i := i
		env.Go(fmt.Sprintf("user-%d", i), func(p *sim.Proc) {
			r.Acquire(p, 1)
			p.Sleep(5 * sim.Millisecond)
			r.Release(1)
			fmt.Printf("user %d done at %v\n", i, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		panic(err)
	}
	// Output:
	// user 0 done at 5ms
	// user 1 done at 5ms
	// user 2 done at 10ms
}

// A barrier releases all parties when the last one arrives.
func ExampleBarrier() {
	env := sim.NewEnv()
	b := env.NewBarrier(2)
	env.Go("fast", func(p *sim.Proc) {
		b.Wait(p)
		fmt.Printf("fast released at %v\n", p.Now())
	})
	env.Go("slow", func(p *sim.Proc) {
		p.Sleep(30 * sim.Millisecond)
		b.Wait(p)
	})
	if err := env.Run(); err != nil {
		panic(err)
	}
	// Output: fast released at 30ms
}
