package sim

import "testing"

// TestCalendarFIFOAtSameInstant verifies the documented tie-break: events
// scheduled for the same instant run in schedule order, whether they were
// scheduled ahead of time (heap) or at the instant itself (nowQ).
func TestCalendarFIFOAtSameInstant(t *testing.T) {
	e := NewEnv()
	var got []int
	rec := func(i int) func() { return func() { got = append(got, i) } }
	// Scheduled before the clock reaches t=10: these are heap entries and
	// must run before anything queued at t=10 itself.
	e.At(10, rec(0))
	e.At(10, func() {
		got = append(got, 1)
		// Same-instant scheduling from within a callback: FIFO after all
		// pending heap entries at this instant.
		e.At(10, rec(3))
		e.At(5, rec(4)) // past instant clamps to now, after 3
	})
	e.At(10, rec(2))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCalendarNestedSameInstant(t *testing.T) {
	e := NewEnv()
	var got []int
	var chain func(i int) func()
	chain = func(i int) func() {
		return func() {
			got = append(got, i)
			if i < 5 {
				e.After(0, chain(i+1))
			}
		}
	}
	e.After(0, chain(0))
	e.After(0, func() { got = append(got, 100) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// chain(0) then 100 (FIFO), then the rescheduled chain(1..5).
	want := []int{0, 100, 1, 2, 3, 4, 5}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCalendarHorizonKeepsFutureEvents(t *testing.T) {
	e := NewEnv()
	ran := 0
	e.At(5, func() { ran++ })
	e.At(20, func() { ran++ })
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if ran != 1 || e.Now() != 10 {
		t.Fatalf("ran=%d now=%v, want 1 event and clock parked at horizon 10", ran, e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 || e.Now() != 20 {
		t.Fatalf("ran=%d now=%v after resume, want 2 events at t=20", ran, e.Now())
	}
}

func TestCalendarInterleavesHeapAndNowQ(t *testing.T) {
	e := NewEnv()
	var got []string
	e.At(1, func() { got = append(got, "a@1") })
	e.At(2, func() {
		got = append(got, "b@2")
		e.At(2, func() { got = append(got, "d@2-now") })
	})
	e.At(2, func() { got = append(got, "c@2") })
	e.At(3, func() { got = append(got, "e@3") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@1", "b@2", "c@2", "d@2-now", "e@3"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestWaitAnyDetachesLosers is the regression test for the WaitAny callback
// leak: closures registered on losing events must not accumulate across
// repeated WaitAny calls against a long-lived event.
func TestWaitAnyDetachesLosers(t *testing.T) {
	e := NewEnv()
	longLived := e.NewEvent()
	const rounds = 50
	e.Go("waiter", func(p *Proc) {
		for r := 0; r < rounds; r++ {
			winner := e.NewEvent()
			e.After(1, func() { winner.Fire(r) })
			if idx := p.WaitAny(winner, longLived); idx != 0 {
				t.Errorf("round %d: WaitAny returned %d, want 0", r, idx)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, cb := range longLived.cbs {
		if cb != nil {
			live++
		}
	}
	if live != 0 {
		t.Fatalf("long-lived event retains %d live callbacks after %d WaitAny rounds, want 0", live, rounds)
	}
}

func TestWaitAnyStillFiresAfterDetach(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	var first int
	e.Go("waiter", func(p *Proc) {
		e.After(1, func() { a.Fire("a") })
		first = p.WaitAny(a, b)
		// b lost and was detached; firing it later must still wake a
		// direct waiter and run remaining callbacks.
		done := false
		b.OnFire(func(any) { done = true })
		e.After(1, func() { b.Fire("b") })
		p.Wait(b)
		if !done {
			t.Error("callback registered after detach did not run")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("WaitAny returned %d, want 0", first)
	}
}

// BenchmarkCalendarSchedDrain measures scheduling and draining a batch of
// future events — the value-heap path. Seed (pointer heap via
// container/heap): 9639 ns/op, 2744 B/op, 73 allocs/op per 64 events.
func BenchmarkCalendarSchedDrain(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < 64; j++ {
			e.At(base.Add(Duration(j+1)), fn)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalendarSameInstant measures the same-instant fast path — the
// dominant pattern for process resume/unblock fan-out. Seed: 5695 ns/op,
// 1808 B/op, 71 allocs/op per 64 events.
func BenchmarkCalendarSameInstant(b *testing.B) {
	e := NewEnv()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.After(0, fn)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
