package sim

import (
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterOrdering(t *testing.T) {
	e := NewEnv()
	var order []int
	e.After(30*Millisecond, func() { order = append(order, 3) })
	e.After(10*Millisecond, func() { order = append(order, 1) })
	e.After(20*Millisecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != Time(30*Millisecond) {
		t.Fatalf("final time = %v, want 30ms", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(5*Millisecond), func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEnv()
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * Millisecond)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(42*Millisecond) {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	e.Go("p", func(p *Proc) { p.Sleep(-5 * Millisecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced to %v on negative sleep", e.Now())
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * Millisecond)
		trace = append(trace, "a10")
		p.Sleep(20 * Millisecond)
		trace = append(trace, "a30")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * Millisecond)
		trace = append(trace, "b15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestEventFireWakesWaiters(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	var got []any
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) { got = append(got, p.Wait(ev)) })
	}
	e.After(5*Millisecond, func() { ev.Fire("hello") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d wakeups, want 3", len(got))
	}
	for _, v := range got {
		if v != "hello" {
			t.Fatalf("value = %v, want hello", v)
		}
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Fire(7)
	var at Time = -1
	e.Go("w", func(p *Proc) {
		if v := p.Wait(ev); v != 7 {
			t.Errorf("value = %v, want 7", v)
		}
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Fatalf("waiter resumed at %v, want 0", at)
	}
}

func TestEventDoubleFireIsNoop(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	ev.Fire(1)
	ev.Fire(2)
	if ev.Value() != 1 {
		t.Fatalf("value = %v, want first fire value 1", ev.Value())
	}
}

func TestOnFireCallback(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	calls := 0
	ev.OnFire(func(v any) {
		calls++
		if v != "x" {
			t.Errorf("cb value = %v", v)
		}
	})
	e.After(Millisecond, func() { ev.Fire("x") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Registering after fire runs immediately.
	ev.OnFire(func(v any) { calls++ })
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestWaitAnyReturnsEarliest(t *testing.T) {
	e := NewEnv()
	a, b, c := e.NewEvent(), e.NewEvent(), e.NewEvent()
	var idx int = -1
	e.Go("w", func(p *Proc) { idx = p.WaitAny(a, b, c) })
	e.After(10*Millisecond, func() { b.Fire(nil) })
	e.After(20*Millisecond, func() { a.Fire(nil) })
	e.After(30*Millisecond, func() { c.Fire(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("WaitAny = %d, want 1", idx)
	}
}

func TestWaitAllBlocksForAll(t *testing.T) {
	e := NewEnv()
	a, b := e.NewEvent(), e.NewEvent()
	var doneAt Time
	e.Go("w", func(p *Proc) {
		p.WaitAll(a, b)
		doneAt = p.Now()
	})
	e.After(10*Millisecond, func() { a.Fire(nil) })
	e.After(25*Millisecond, func() { b.Fire(nil) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(25*Millisecond) {
		t.Fatalf("WaitAll completed at %v, want 25ms", doneAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	e.Go("stuck", func(p *Proc) { p.Wait(ev) })
	if err := e.Run(); err == nil {
		t.Fatal("Run returned nil, want deadlock error")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEnv()
	fired := false
	e.After(100*Millisecond, func() { fired = true })
	if err := e.RunUntil(Time(50 * Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != Time(50*Millisecond) {
		t.Fatalf("Now = %v, want horizon 50ms", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event never fired after resuming")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var childAt Time = -1
	e.Go("parent", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		p.Env().Go("child", func(c *Proc) {
			c.Sleep(5 * Millisecond)
			childAt = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != Time(10*Millisecond) {
		t.Fatalf("child finished at %v, want 10ms", childAt)
	}
}

func TestYieldRunsAfterPendingEvents(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("y", func(p *Proc) {
		p.Env().At(0, func() { order = append(order, "pending") })
		p.Yield()
		order = append(order, "yielded")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "pending" || order[1] != "yielded" {
		t.Fatalf("order = %v", order)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * Microsecond)
	if tm.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v, want 1.5", tm.Milliseconds())
	}
	if tm.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v, want 0.0015", tm.Seconds())
	}
	if d := tm.Sub(Time(500 * Microsecond)); d != Millisecond {
		t.Fatalf("Sub = %v, want 1ms", d)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := NewEnv()
	var ranAt Time = -1
	e.After(10*Millisecond, func() {
		e.At(Time(2*Millisecond), func() { ranAt = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ranAt != Time(10*Millisecond) {
		t.Fatalf("past event ran at %v, want clamped to 10ms", ranAt)
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var trace []string
		for i := 0; i < 20; i++ {
			name := string(rune('A' + i))
			d := Duration(i%7) * Millisecond
			e.Go(name, func(p *Proc) {
				p.Sleep(d)
				trace = append(trace, p.Name())
				p.Sleep(d)
				trace = append(trace, p.Name())
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 40 {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestDaemonBlockedIsNotDeadlock(t *testing.T) {
	e := NewEnv()
	ev := e.NewEvent()
	e.Go("daemon", func(p *Proc) {
		p.Daemonize()
		p.Wait(ev) // never fires
	})
	if err := e.Run(); err != nil {
		t.Fatalf("blocked daemon reported as deadlock: %v", err)
	}
}
