// Package stats provides the small statistical helpers the experiment
// reports use: summary statistics and speedup aggregation over
// turnaround series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Stddev, s.Min, s.Median, s.Max)
}

// Percentile returns the p-th percentile (0-100) by linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean (the conventional aggregate for
// speedups). Non-positive inputs yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Speedups divides base[i] by test[i] pointwise (turnaround ratios).
// Mismatched lengths or zero divisors yield nil.
func Speedups(base, test []float64) []float64 {
	if len(base) != len(test) {
		return nil
	}
	out := make([]float64, len(base))
	for i := range base {
		if test[i] == 0 {
			return nil
		}
		out[i] = base[i] / test[i]
	}
	return out
}
