package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Stddev != 0 || s.Median != 7 {
		t.Fatalf("singleton = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {120, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Fatal("degenerate cases should be 0")
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{10, 20}, []float64{5, 4})
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("speedups = %v", got)
	}
	if Speedups([]float64{1}, []float64{1, 2}) != nil {
		t.Fatal("length mismatch accepted")
	}
	if Speedups([]float64{1}, []float64{0}) != nil {
		t.Fatal("zero divisor accepted")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoMean(xs) lies between min and max for positive samples.
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
