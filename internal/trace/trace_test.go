package trace

import (
	"strings"
	"testing"

	"gpuvirt/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(sim.Duration(n) * sim.Millisecond) }

func TestAddAndSpans(t *testing.T) {
	tr := New()
	tr.Add("h2d", "ctx1 H2D 100B", ms(0), ms(10))
	tr.Add("sm", "ctx1 kernel k", ms(10), ms(30))
	if len(tr.Spans()) != 2 {
		t.Fatalf("%d spans", len(tr.Spans()))
	}
	if tr.Spans()[0].Duration() != 10*sim.Millisecond {
		t.Fatalf("duration = %v", tr.Spans()[0].Duration())
	}
}

func TestInvertedSpanNormalized(t *testing.T) {
	tr := New()
	tr.Add("x", "back", ms(20), ms(5))
	s := tr.Spans()[0]
	if s.Start != ms(5) || s.End != ms(20) {
		t.Fatalf("span = %+v", s)
	}
}

func TestLanesSorted(t *testing.T) {
	tr := New()
	tr.Add("z", "", ms(0), ms(1))
	tr.Add("a", "", ms(0), ms(1))
	tr.Add("z", "", ms(1), ms(2))
	lanes := tr.Lanes()
	if len(lanes) != 2 || lanes[0] != "a" || lanes[1] != "z" {
		t.Fatalf("lanes = %v", lanes)
	}
}

func TestLaneSpansOrdered(t *testing.T) {
	tr := New()
	tr.Add("l", "b", ms(10), ms(20))
	tr.Add("l", "a", ms(0), ms(5))
	spans := tr.LaneSpans("l")
	if len(spans) != 2 || spans[0].Label != "a" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestBusyMergesOverlaps(t *testing.T) {
	tr := New()
	tr.Add("l", "", ms(0), ms(10))
	tr.Add("l", "", ms(5), ms(15))  // overlaps: merged
	tr.Add("l", "", ms(20), ms(25)) // disjoint
	if got := tr.Busy("l"); got != 20*sim.Millisecond {
		t.Fatalf("Busy = %v, want 20ms", got)
	}
	if tr.Busy("missing") != 0 {
		t.Fatal("Busy of missing lane != 0")
	}
}

func TestGanttRenders(t *testing.T) {
	tr := New()
	tr.Add("h2d", "ctx1 H2D", ms(0), ms(50))
	tr.Add("sm", "ctx1 kernel k", ms(50), ms(100))
	tr.Add("d2h", "ctx1 D2H", ms(100), ms(120))
	out := tr.Gantt(60)
	if !strings.Contains(out, "h2d") || !strings.Contains(out, "sm") || !strings.Contains(out, "d2h") {
		t.Fatalf("Gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, ">") || !strings.Contains(out, "#") || !strings.Contains(out, "<") {
		t.Fatalf("Gantt missing marks:\n%s", out)
	}
	if !strings.Contains(out, "120.000 ms") {
		t.Fatalf("Gantt missing time range:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := New().Gantt(40); !strings.Contains(out, "no spans") {
		t.Fatalf("empty Gantt = %q", out)
	}
}

func TestGanttClampsWidth(t *testing.T) {
	tr := New()
	tr.Add("l", "", ms(0), ms(1))
	out := tr.Gantt(1) // clamped to a sane minimum
	if len(out) == 0 {
		t.Fatal("no output")
	}
}
