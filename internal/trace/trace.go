// Package trace records execution spans from the simulator (DMA engines,
// SM scheduler, driver, GVM protocol phases) and renders them as an ASCII
// Gantt chart, mirroring the timeline figures (3-6) of the paper.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"gpuvirt/internal/sim"
)

// Span is one labeled interval on a named lane.
type Span struct {
	Lane  string
	Label string
	Start sim.Time
	End   sim.Time
}

// Duration returns the span's extent.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Tracer collects spans. The zero value is ready to use.
type Tracer struct {
	spans []Span
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Add records a span. Inverted intervals are normalized.
func (t *Tracer) Add(lane, label string, start, end sim.Time) {
	if end < start {
		start, end = end, start
	}
	t.spans = append(t.spans, Span{Lane: lane, Label: label, Start: start, End: end})
}

// Spans returns all recorded spans in insertion order.
func (t *Tracer) Spans() []Span { return t.spans }

// Lanes returns the distinct lane names, sorted.
func (t *Tracer) Lanes() []string {
	seen := make(map[string]bool)
	var lanes []string
	for _, s := range t.spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			lanes = append(lanes, s.Lane)
		}
	}
	sort.Strings(lanes)
	return lanes
}

// LaneSpans returns the spans of one lane in start order.
func (t *Tracer) LaneSpans(lane string) []Span {
	var out []Span
	for _, s := range t.spans {
		if s.Lane == lane {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy returns the total non-overlapping busy time of a lane.
func (t *Tracer) Busy(lane string) sim.Duration {
	spans := t.LaneSpans(lane)
	var busy sim.Duration
	var cur Span
	have := false
	for _, s := range spans {
		if !have {
			cur, have = s, true
			continue
		}
		if s.Start <= cur.End {
			if s.End > cur.End {
				cur.End = s.End
			}
			continue
		}
		busy += cur.Duration()
		cur = s
	}
	if have {
		busy += cur.Duration()
	}
	return busy
}

// Gantt renders all lanes as an ASCII chart of the given width.
func (t *Tracer) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	if len(t.spans) == 0 {
		return "(no spans)\n"
	}
	var min, max sim.Time
	min = t.spans[0].Start
	max = t.spans[0].End
	for _, s := range t.spans {
		if s.Start < min {
			min = s.Start
		}
		if s.End > max {
			max = s.End
		}
	}
	total := max.Sub(min)
	if total <= 0 {
		total = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.3f ms .. %.3f ms (%.3f ms)\n",
		min.Milliseconds(), max.Milliseconds(), sim.Time(total).Milliseconds())
	lanes := t.Lanes()
	nameW := 0
	for _, l := range lanes {
		if len(l) > nameW {
			nameW = len(l)
		}
	}
	for _, lane := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.LaneSpans(lane) {
			lo := int(float64(s.Start.Sub(min)) / float64(total) * float64(width-1))
			hi := int(float64(s.End.Sub(min)) / float64(total) * float64(width-1))
			mark := markFor(s.Label)
			for i := lo; i <= hi && i < width; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, lane, string(row))
	}
	return b.String()
}

// markFor picks a stable single-character mark from a label.
func markFor(label string) byte {
	switch {
	case strings.Contains(label, "H2D"):
		return '>'
	case strings.Contains(label, "D2H"):
		return '<'
	case strings.Contains(label, "switch"):
		return 'x'
	case strings.Contains(label, "create"):
		return 'c'
	case strings.Contains(label, "kernel"):
		return '#'
	default:
		return '='
	}
}
