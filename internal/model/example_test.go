package model_test

import (
	"fmt"

	"gpuvirt/internal/model"
	"gpuvirt/internal/sim"
)

// Evaluate the paper's analytical model on the EP profile of Table II:
// equation (5) yields the paper's published theoretical speedup of 8.341
// at 8 processes.
func Example() {
	p := model.Params{
		Name:       "EP",
		Ntask:      8,
		Tinit:      1513555 * sim.Microsecond,
		TctxSwitch: 220599 * sim.Microsecond,
		TdataIn:    0,
		Tcomp:      8951346 * sim.Microsecond,
		TdataOut:   55 * sim.Nanosecond,
	}
	fmt.Printf("Ttotal_no_vt = %.1f ms\n", p.TotalNoVirt().Seconds()*1e3)
	fmt.Printf("Ttotal_vt    = %.1f ms\n", p.TotalVirt().Seconds()*1e3)
	fmt.Printf("speedup      = %.3f\n", p.Speedup())
	// Output:
	// Ttotal_no_vt = 74668.5 ms
	// Ttotal_vt    = 8951.3 ms
	// speedup      = 8.342
}
