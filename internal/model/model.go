// Package model implements the paper's analytical execution model
// (Section IV): total turnaround time of N SPMD tasks sharing one GPU
// with and without the virtualization layer (equations 1-4), the
// predicted speedup (equation 5) and its asymptotic bound (equation 6).
package model

import (
	"fmt"

	"gpuvirt/internal/sim"
)

// Params are the measured per-task profile parameters of Table I/II.
type Params struct {
	Name       string
	Ntask      int          // number of parallel SPMD tasks (<= Nprocessor)
	Tinit      sim.Duration // total init time for all processes (device + contexts)
	TctxSwitch sim.Duration // average per-process context switch cost
	TdataIn    sim.Duration // average host->device transfer time
	TdataOut   sim.Duration // average device->host transfer time
	Tcomp      sim.Duration // average kernel compute time
}

// Validate reports out-of-domain parameters.
func (p Params) Validate() error {
	if p.Ntask < 1 {
		return fmt.Errorf("model: Ntask = %d, must be >= 1", p.Ntask)
	}
	for _, d := range []sim.Duration{p.Tinit, p.TctxSwitch, p.TdataIn, p.TdataOut, p.Tcomp} {
		if d < 0 {
			return fmt.Errorf("model: negative time parameter in %+v", p)
		}
	}
	return nil
}

// CycleTime returns one task's bare execution cycle Tin + Tcomp + Tout
// (Figure 3, excluding initialization).
func (p Params) CycleTime() sim.Duration {
	return p.TdataIn + p.Tcomp + p.TdataOut
}

// TotalNoVirt is equation (1): under conventional sharing, the first task
// pays Tinit and every subsequent task pays a context switch, with whole
// cycles serialized (Figure 4).
//
//	Ttotal_no_vt = (Ntask-1)(Tctx + Tin + Tcomp + Tout)
//	             + Tinit + Tin + Tcomp + Tout
func (p Params) TotalNoVirt() sim.Duration {
	n := sim.Duration(p.Ntask)
	return (n-1)*(p.TctxSwitch+p.CycleTime()) + p.Tinit + p.CycleTime()
}

// TotalVirt is equation (4), the combination of equations (2) and (3):
// under virtualization the transfers in the dominant direction serialize
// on their DMA engine while everything else overlaps, and initialization
// is hidden inside the pre-initialized manager (Figures 5 and 6).
//
//	Ttotal_vt = Ntask * MAX(Tin, Tout) + Tcomp + MIN(Tin, Tout)
func (p Params) TotalVirt() sim.Duration {
	return sim.Duration(p.Ntask)*max(p.TdataIn, p.TdataOut) + p.Tcomp + min(p.TdataIn, p.TdataOut)
}

// totalVirtComputeBound is equation (2)'s branch condition form: used by
// tests to verify the MAX/MIN combination in TotalVirt.
func (p Params) totalVirtComputeBound() sim.Duration {
	if p.TdataIn >= p.TdataOut {
		// Equation (2).
		return sim.Duration(p.Ntask)*p.TdataIn + p.Tcomp + p.TdataOut
	}
	// Equation (3).
	return p.TdataIn + p.Tcomp + sim.Duration(p.Ntask)*p.TdataOut
}

// Speedup is equation (5): Ttotal_no_vt / Ttotal_vt.
func (p Params) Speedup() float64 {
	tv := p.TotalVirt()
	if tv <= 0 {
		return 0
	}
	return float64(p.TotalNoVirt()) / float64(tv)
}

// Smax is equation (6): the Ntask -> infinity limit of the speedup,
//
//	Smax = (Tctx + Tin + Tcomp + Tout) / MAX(Tin, Tout)
//
// showing that the gain grows with compute time and context-switch cost
// but is bounded by the dominant-direction I/O time.
func (p Params) Smax() float64 {
	m := max(p.TdataIn, p.TdataOut)
	if m <= 0 {
		return 0 // no I/O: unbounded in the model; callers special-case
	}
	return float64(p.TctxSwitch+p.CycleTime()) / float64(m)
}

// WithNtask returns a copy with a different task count.
func (p Params) WithNtask(n int) Params {
	p.Ntask = n
	return p
}

// Deviation returns the relative deviation of the theoretical speedup
// from a measured speedup, as the paper's Table III reports it:
// (theoretical - experimental) / experimental.
func Deviation(theoretical, experimental float64) float64 {
	if experimental == 0 {
		return 0
	}
	return (theoretical - experimental) / experimental
}

func max(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}

func min(a, b sim.Duration) sim.Duration {
	if a < b {
		return a
	}
	return b
}
