package model

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvirt/internal/sim"
)

// tableII returns the paper's measured Table II parameters.
func tableII(name string) Params {
	switch name {
	case "vecadd":
		return Params{
			Name:       "vecadd",
			Ntask:      8,
			Tinit:      1519386 * sim.Microsecond,
			TdataIn:    135874 * sim.Microsecond,
			Tcomp:      38 * sim.Microsecond,
			TdataOut:   66656 * sim.Microsecond,
			TctxSwitch: 148226 * sim.Microsecond,
		}
	case "ep":
		return Params{
			Name:       "ep",
			Ntask:      8,
			Tinit:      1513555 * sim.Microsecond,
			TdataIn:    0,
			Tcomp:      8951346 * sim.Microsecond,
			TdataOut:   55 * sim.Nanosecond,
			TctxSwitch: 220599 * sim.Microsecond,
		}
	}
	panic("unknown")
}

func TestEquation1Structure(t *testing.T) {
	p := Params{Ntask: 3, Tinit: 100, TctxSwitch: 10, TdataIn: 5, Tcomp: 20, TdataOut: 3}
	// (3-1)*(10+5+20+3) + 100 + 5+20+3 = 2*38 + 128 = 204
	if got := p.TotalNoVirt(); got != 204 {
		t.Fatalf("TotalNoVirt = %d, want 204", got)
	}
}

func TestEquation4Structure(t *testing.T) {
	p := Params{Ntask: 3, TdataIn: 5, Tcomp: 20, TdataOut: 3}
	// 3*max(5,3) + 20 + min(5,3) = 15 + 20 + 3 = 38
	if got := p.TotalVirt(); got != 38 {
		t.Fatalf("TotalVirt = %d, want 38", got)
	}
	p.TdataIn, p.TdataOut = 3, 5
	// 3*5 + 20 + 3 = 38
	if got := p.TotalVirt(); got != 38 {
		t.Fatalf("TotalVirt (out-dominant) = %d, want 38", got)
	}
}

// Property: equation (4) equals the branch form of equations (2)/(3).
func TestQuickEq4CombinesEq2Eq3(t *testing.T) {
	f := func(n uint8, tin, tout, tcomp uint32) bool {
		p := Params{
			Ntask:   int(n%16) + 1,
			TdataIn: sim.Duration(tin), TdataOut: sim.Duration(tout),
			Tcomp: sim.Duration(tcomp),
		}
		return p.TotalVirt() == p.totalVirtComputeBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the speedup converges to Smax from below... or above, but
// converges: |S(N) - Smax| is decreasing for large N, and S(N) -> Smax.
func TestQuickSpeedupConvergesToSmax(t *testing.T) {
	f := func(tin, tout, tcomp, tctx uint16) bool {
		p := Params{
			Ntask:      1,
			Tinit:      sim.Duration(tctx) * 10,
			TctxSwitch: sim.Duration(tctx) + 1,
			TdataIn:    sim.Duration(tin) + 1,
			TdataOut:   sim.Duration(tout) + 1,
			Tcomp:      sim.Duration(tcomp),
		}
		smax := p.Smax()
		s1e6 := p.WithNtask(1_000_000).Speedup()
		return math.Abs(s1e6-smax) < 0.01*smax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: virtualization never loses in the model once Ntask >= 2 (the
// model's Ttotal_vt <= Ttotal_no_vt when each cycle is nonempty), since
// virtualization removes Tinit and context switches and only serializes
// the dominant I/O direction.
func TestQuickVirtNeverSlower(t *testing.T) {
	f := func(n uint8, tin, tout, tcomp, tctx, tinit uint16) bool {
		p := Params{
			Ntask:      int(n%16) + 1,
			Tinit:      sim.Duration(tinit),
			TctxSwitch: sim.Duration(tctx),
			TdataIn:    sim.Duration(tin),
			TdataOut:   sim.Duration(tout),
			Tcomp:      sim.Duration(tcomp),
		}
		return p.TotalVirt() <= p.TotalNoVirt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: speedup is monotonically non-decreasing in the context-switch
// cost and in Tinit.
func TestQuickSpeedupMonotoneInOverheads(t *testing.T) {
	f := func(n uint8, tin, tcomp, tctx uint16) bool {
		p := Params{
			Ntask:      int(n%8) + 1,
			Tinit:      1000,
			TctxSwitch: sim.Duration(tctx),
			TdataIn:    sim.Duration(tin) + 1,
			TdataOut:   sim.Duration(tin)/2 + 1,
			Tcomp:      sim.Duration(tcomp),
		}
		s := p.Speedup()
		p2 := p
		p2.TctxSwitch += 500
		if p2.Speedup() < s {
			return false
		}
		p3 := p
		p3.Tinit += 500
		return p3.Speedup() >= s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperEPSpeedupMatchesTableIII(t *testing.T) {
	// With Table II's EP parameters, equation (5) at 8 processes gives
	// the paper's theoretical speedup of 8.341 (Table III).
	p := tableII("ep")
	if s := p.Speedup(); math.Abs(s-8.341) > 0.01 {
		t.Fatalf("EP theoretical speedup = %.3f, want 8.341 (Table III)", s)
	}
}

func TestPaperVecAddSpeedupOrder(t *testing.T) {
	// The vector-add theoretical speedup from Table II parameters lands
	// in the same band as the paper's Table III (2.7): the paper's exact
	// 2.721 is not reproducible from its published Table II inputs alone,
	// so we assert the band rather than the digit (see EXPERIMENTS.md).
	p := tableII("vecadd")
	s := p.Speedup()
	if s < 2.2 || s > 4.2 {
		t.Fatalf("vecadd theoretical speedup = %.3f, want within [2.2, 4.2]", s)
	}
}

func TestSmaxFormula(t *testing.T) {
	p := Params{Ntask: 4, TctxSwitch: 10, TdataIn: 5, Tcomp: 20, TdataOut: 3}
	want := float64(10+5+20+3) / 5
	if got := p.Smax(); got != want {
		t.Fatalf("Smax = %v, want %v", got, want)
	}
	p.TdataIn, p.TdataOut = 0, 0
	if got := p.Smax(); got != 0 {
		t.Fatalf("Smax with no I/O = %v, want sentinel 0", got)
	}
}

func TestDeviation(t *testing.T) {
	// Paper Table III: EP theoretical 8.341 vs experimental 7.394 is a
	// 12.81% deviation.
	if d := Deviation(8.341, 7.394); math.Abs(d-0.1281) > 0.0005 {
		t.Fatalf("deviation = %v, want ~0.1281", d)
	}
	if Deviation(1, 0) != 0 {
		t.Fatal("deviation with zero experimental should be sentinel 0")
	}
}

func TestValidate(t *testing.T) {
	good := Params{Ntask: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Ntask: 0},
		{Ntask: 1, Tcomp: -1},
		{Ntask: 1, TdataIn: -5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestCycleTime(t *testing.T) {
	p := Params{Ntask: 1, TdataIn: 5, Tcomp: 20, TdataOut: 3}
	if p.CycleTime() != 28 {
		t.Fatalf("CycleTime = %d, want 28", p.CycleTime())
	}
}
