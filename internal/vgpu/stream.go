package vgpu

import (
	"fmt"

	"gpuvirt/internal/sim"
)

// CommandStream is an S_GPU-style command queue on top of a VGPU (the
// paper's related work [13], which it calls complementary to the GVM):
// the process inserts GPU commands — input transfers, execution, result
// retrievals — in the required sequence into the stream object, then
// executes them all with one call, irrespective of how many physical
// GPUs back the VGPUs.
//
// Commands are recorded without touching the device; Execute replays
// them in order through the six-verb protocol. A stream can be executed
// repeatedly (e.g. once per SPMD iteration).
type CommandStream struct {
	v    *VGPU
	cmds []command
}

type command struct {
	kind string // "send", "run", "recv"
	data []byte
	buf  []byte
}

// NewCommandStream returns an empty command stream over v.
func (v *VGPU) NewCommandStream() *CommandStream {
	return &CommandStream{v: v}
}

// Len returns the number of recorded commands.
func (s *CommandStream) Len() int { return len(s.cmds) }

// EnqueueSend records an input transfer (SND). data may be nil in
// timing-only mode.
func (s *CommandStream) EnqueueSend(data []byte) *CommandStream {
	s.cmds = append(s.cmds, command{kind: "send", data: data})
	return s
}

// EnqueueRun records a kernel execution (STR through the barrier, then
// STP until completion).
func (s *CommandStream) EnqueueRun() *CommandStream {
	s.cmds = append(s.cmds, command{kind: "run"})
	return s
}

// EnqueueRecv records a result retrieval (RCV) into buf (nil in
// timing-only mode).
func (s *CommandStream) EnqueueRecv(buf []byte) *CommandStream {
	s.cmds = append(s.cmds, command{kind: "recv", buf: buf})
	return s
}

// EnqueueCycle records a full send/run/recv cycle.
func (s *CommandStream) EnqueueCycle(in, out []byte) *CommandStream {
	return s.EnqueueSend(in).EnqueueRun().EnqueueRecv(out)
}

// Execute replays the recorded commands in order on process p. It stops
// at the first failing command.
func (s *CommandStream) Execute(p *sim.Proc) error {
	for i, c := range s.cmds {
		var err error
		switch c.kind {
		case "send":
			err = s.v.SendInput(p, c.data)
		case "run":
			if err = s.v.Start(p); err == nil {
				err = s.v.Wait(p)
			}
		case "recv":
			err = s.v.ReceiveOutput(p, c.buf)
		default:
			err = fmt.Errorf("vgpu: unknown command %q", c.kind)
		}
		if err != nil {
			return fmt.Errorf("vgpu: command %d (%s): %w", i, c.kind, err)
		}
	}
	return nil
}

// Reset clears the recorded commands, keeping the VGPU attached.
func (s *CommandStream) Reset() { s.cmds = s.cmds[:0] }
