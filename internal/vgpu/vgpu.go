// Package vgpu is the user-process API layer of the virtualization
// infrastructure (paper Figure 7, top layer): it exposes a Virtual GPU to
// each SPMD process and drives the REQ/SND/STR/STP/RCV/RLS protocol of
// Figure 8 against the manager, handling shared-memory data exchange and
// handshake synchronization transparently.
package vgpu

import (
	"errors"
	"fmt"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/shm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// PollPolicy controls the STP status-polling loop (paper Figure 8:
// "If (WAIT), Resends STP").
type PollPolicy struct {
	Initial sim.Duration // first back-off delay
	Max     sim.Duration // back-off cap
	Factor  int          // multiplicative back-off (>= 1)
}

// DefaultPollPolicy backs off 100us -> 2ms, doubling.
func DefaultPollPolicy() PollPolicy {
	return PollPolicy{Initial: 100 * sim.Microsecond, Max: 2 * sim.Millisecond, Factor: 2}
}

// VGPU is one process's virtual GPU handle.
type VGPU struct {
	mgr     *gvm.Manager
	spec    *task.Spec
	resp    *gvm.Queue[gvm.Response]
	session int
	seg     shm.Segment
	poll    PollPolicy

	// Polls counts STP round-trips (reported as overhead statistics).
	Polls int
}

// Connect issues REQ and returns a ready VGPU. It blocks until the
// manager is up (clients arriving during manager initialization queue,
// they do not fail).
func Connect(p *sim.Proc, mgr *gvm.Manager, spec *task.Spec) (*VGPU, error) {
	return connect(p, mgr, spec, Opts{})
}

// ConnectDirect opens the session in direct-staging mode: payload bytes
// bypass the shared-memory segment and move straight through the
// manager's pinned staging buffers (gvm.Manager.Staging), while every
// verb still charges its usual virtual host-copy time. The daemon
// dispatcher uses it to keep payload memcpys off the simulation-owner
// goroutine; use SendInput/ReceiveOutput with nil buffers.
func ConnectDirect(p *sim.Proc, mgr *gvm.Manager, spec *task.Spec) (*VGPU, error) {
	return connect(p, mgr, spec, Opts{Direct: true})
}

// Opts are the optional REQ parameters a client may attach when opening
// a session.
type Opts struct {
	// Direct selects direct-staging mode (see ConnectDirect).
	Direct bool
	// MemQuota is a hard per-session device-memory cap in bytes, enforced
	// by the manager at every allocation. 0 = unlimited.
	MemQuota int64
	// Priority orders eviction under memory pressure: lower-priority
	// sessions are evicted first. 0 is the default class.
	Priority int
	// Weight is the session's weighted-fair share of SM compute time and
	// its preemption precedence. 0 derives the weight from Priority.
	Weight int
}

// ConnectOpts issues REQ with explicit session options.
func ConnectOpts(p *sim.Proc, mgr *gvm.Manager, spec *task.Spec, o Opts) (*VGPU, error) {
	return connect(p, mgr, spec, o)
}

func connect(p *sim.Proc, mgr *gvm.Manager, spec *task.Spec, o Opts) (*VGPU, error) {
	if spec == nil {
		return nil, errors.New("vgpu: nil task spec")
	}
	v := &VGPU{
		mgr:  mgr,
		spec: spec,
		resp: gvm.NewQueue[gvm.Response](mgr.Env(), 0, mgr.MsgLatency()),
		poll: DefaultPollPolicy(),
	}
	mgr.RequestQueue().Send(p, gvm.Request{
		Verb: gvm.REQ, Spec: spec, Reply: v.resp, Direct: o.Direct,
		MemQuota: o.MemQuota, Priority: o.Priority, Weight: o.Weight,
	})
	r := v.resp.Recv(p)
	if r.Status != gvm.ACK {
		return nil, fmt.Errorf("vgpu: REQ rejected: %s", r.Err)
	}
	v.session = r.Session
	v.seg = mgr.Segment(r.Session)
	return v, nil
}

// Adopt installs a session extracted from another shard's manager
// (gvm.Manager.ExtractSession) on mgr — the failover target — and
// returns a fresh handle bound to mgr's clock. The session keeps its
// id; no REQ is issued, so placement admission is the caller's job
// (the dispatcher re-places through the node before adopting). Must
// run on mgr's owner goroutine, like every manager call.
func Adopt(p *sim.Proc, mgr *gvm.Manager, ext *gvm.ExtractedSession) (*VGPU, error) {
	v := &VGPU{
		mgr:     mgr,
		spec:    ext.Spec,
		resp:    gvm.NewQueue[gvm.Response](mgr.Env(), 0, mgr.MsgLatency()),
		session: ext.ID,
		poll:    DefaultPollPolicy(),
	}
	if err := mgr.AdoptSession(p, ext, v.resp); err != nil {
		return nil, err
	}
	v.seg = mgr.Segment(ext.ID)
	return v, nil
}

// SetPollPolicy overrides the STP polling back-off.
func (v *VGPU) SetPollPolicy(p PollPolicy) {
	if p.Factor < 1 {
		p.Factor = 1
	}
	if p.Initial <= 0 {
		p.Initial = sim.Microsecond
	}
	if p.Max < p.Initial {
		p.Max = p.Initial
	}
	v.poll = p
}

// Session returns the manager-assigned session id.
func (v *VGPU) Session() int { return v.session }

func (v *VGPU) call(p *sim.Proc, verb gvm.Verb) gvm.Response {
	// Reply rides along so even an unknown-session verb (a race with a
	// failover migration) gets an answer instead of parking forever.
	v.mgr.RequestQueue().Send(p, gvm.Request{Session: v.session, Verb: verb, Reply: v.resp})
	return v.resp.Recv(p)
}

func (v *VGPU) ack(p *sim.Proc, verb gvm.Verb) error {
	r := v.call(p, verb)
	if r.Status != gvm.ACK {
		return fmt.Errorf("vgpu: %v: %v %s", verb, r.Status, r.Err)
	}
	return nil
}

// SendInput copies the task's input into the shared-memory segment (a
// host memcpy on this process's time) and issues SND so the manager
// stages it into pinned memory. data may be nil in timing-only mode.
func (v *VGPU) SendInput(p *sim.Proc, data []byte) error {
	if data != nil && int64(len(data)) != v.spec.InBytes {
		return fmt.Errorf("vgpu: input is %d bytes, spec says %d", len(data), v.spec.InBytes)
	}
	p.Sleep(v.mgr.HostCopyTime(v.spec.InBytes))
	if data != nil && v.seg != nil {
		if err := v.seg.WriteAt(data, 0); err != nil {
			return err
		}
	}
	return v.ack(p, gvm.SND)
}

// Start issues STR. The call returns when the manager has flushed all
// parties' streams (the STR barrier), not when execution finishes.
func (v *VGPU) Start(p *sim.Proc) error { return v.ack(p, gvm.STR) }

// Wait polls STP until the VGPU's execution completes.
func (v *VGPU) Wait(p *sim.Proc) error {
	delay := v.poll.Initial
	for {
		r := v.call(p, gvm.STP)
		v.Polls++
		switch r.Status {
		case gvm.ACK:
			return nil
		case gvm.WAIT:
			p.Sleep(delay)
			delay *= sim.Duration(v.poll.Factor)
			if delay > v.poll.Max {
				delay = v.poll.Max
			}
		default:
			return fmt.Errorf("vgpu: STP: %s", r.Err)
		}
	}
}

// ReceiveOutput issues RCV and copies the results out of the
// shared-memory segment into buf (nil in timing-only mode).
func (v *VGPU) ReceiveOutput(p *sim.Proc, buf []byte) error {
	if buf != nil && int64(len(buf)) != v.spec.OutBytes {
		return fmt.Errorf("vgpu: output buffer is %d bytes, spec says %d", len(buf), v.spec.OutBytes)
	}
	if err := v.ack(p, gvm.RCV); err != nil {
		return err
	}
	p.Sleep(v.mgr.HostCopyTime(v.spec.OutBytes))
	if buf != nil && v.seg != nil {
		return v.seg.ReadAt(buf, v.spec.InBytes)
	}
	return nil
}

// Release issues RLS and invalidates the handle.
func (v *VGPU) Release(p *sim.Proc) error {
	err := v.ack(p, gvm.RLS)
	v.seg = nil
	return err
}

// RunCycle performs one full GPU execution cycle — send, start, wait,
// receive — which is the per-process cycle of the paper's Figures 5/6.
func (v *VGPU) RunCycle(p *sim.Proc, in, out []byte) error {
	if err := v.SendInput(p, in); err != nil {
		return err
	}
	if err := v.Start(p); err != nil {
		return err
	}
	if err := v.Wait(p); err != nil {
		return err
	}
	return v.ReceiveOutput(p, out)
}

// Suspend evacuates the VGPU's device state into the manager's host
// memory and releases its device memory (extension verb SUS, the
// facility of the paper's related work [9]). The session stays alive;
// Resume restores it.
func (v *VGPU) Suspend(p *sim.Proc) error { return v.ack(p, gvm.SUS) }

// Resume restores a suspended VGPU's device state (extension verb RES).
func (v *VGPU) Resume(p *sim.Proc) error { return v.ack(p, gvm.RES) }
