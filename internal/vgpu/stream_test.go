package vgpu

import (
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/sim"
)

func TestCommandStreamFullCycle(t *testing.T) {
	const n = 1024
	env, _, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			in[i] = 1
			in[n+i] = float32(i)
		}
		out := make([]byte, n*4)
		cs := v.NewCommandStream().EnqueueCycle(cuda.HostFloat32Bytes(in), out)
		if cs.Len() != 3 {
			t.Errorf("Len = %d, want 3", cs.Len())
		}
		if err := cs.Execute(p); err != nil {
			t.Error(err)
			return
		}
		res := cuda.Float32s(memBytes(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != 1+float32(i) {
				t.Errorf("out[%d] = %g", i, res[i])
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCommandStreamRepeatedExecution(t *testing.T) {
	const n = 256
	env, dev, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in := make([]float32, 2*n)
		out := make([]byte, n*4)
		cs := v.NewCommandStream().EnqueueCycle(cuda.HostFloat32Bytes(in), out)
		for iter := 0; iter < 3; iter++ {
			for i := 0; i < n; i++ {
				in[i] = float32(iter)
				in[n+i] = float32(i)
			}
			if err := cs.Execute(p); err != nil {
				t.Errorf("iter %d: %v", iter, err)
				return
			}
			res := cuda.Float32s(memBytes(out), 0, n)
			for i := 0; i < n; i++ {
				if res[i] != float32(iter)+float32(i) {
					t.Errorf("iter %d: out[%d] = %g", iter, i, res[i])
					return
				}
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.KernelsRun != 3 {
		t.Fatalf("KernelsRun = %d, want 3", dev.KernelsRun)
	}
}

func TestCommandStreamStopsAtFirstError(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(1024))
		if err != nil {
			t.Error(err)
			return
		}
		// Recv before any run: the manager rejects RCV, Execute stops.
		cs := v.NewCommandStream().EnqueueRecv(nil).EnqueueRun()
		if err := cs.Execute(p); err == nil {
			t.Error("Execute succeeded through an invalid command order")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCommandStreamReset(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(64))
		if err != nil {
			t.Error(err)
			return
		}
		cs := v.NewCommandStream().EnqueueCycle(nil, nil)
		cs.Reset()
		if cs.Len() != 0 {
			t.Errorf("Len after Reset = %d", cs.Len())
		}
		// Executing an empty stream is a no-op.
		if err := cs.Execute(p); err != nil {
			t.Errorf("empty Execute: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}
