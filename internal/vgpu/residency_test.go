package vgpu

import (
	"fmt"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// lcgStep is the deterministic RNG used by the residency tests (no
// math/rand, so runs replay exactly).
func lcgStep(s *uint32) uint32 {
	*s = *s*1664525 + 1013904223
	return *s
}

// mixIn builds the deterministic input for session sess's cycle c: the
// pressured run and the unconstrained reference run feed every cycle the
// same bytes, so their outputs must match bit for bit.
func mixIn(sess, cycle, n int) []float32 {
	in := make([]float32, 2*n)
	for i := 0; i < n; i++ {
		in[i] = float32((i*7 + sess*13 + cycle*31) % 251)
		in[n+i] = float32((i*3 + sess*5 + cycle*17) % 257)
	}
	return in
}

// runResidencyMix runs `sessions` concurrent vecadd clients for `cycles`
// cycles each on a card with memBytes of device memory, injecting an
// explicit Suspend/Resume window at susPct% of the verb boundaries, and
// returns every session's per-cycle output bytes.
func runResidencyMix(t *testing.T, memBytes int64, sessions, cycles int, seed, susPct uint32) ([][][]byte, *gvm.Manager, *gpusim.Device) {
	t.Helper()
	const n = 4096
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = memBytes
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch, Functional: true})
	mgr := gvm.New(env, gvm.Config{Device: dev, MaxSessionBytes: 1 << 30})
	mgr.Start()
	outs := make([][][]byte, sessions)
	for s := 0; s < sessions; s++ {
		s := s
		outs[s] = make([][]byte, cycles)
		env.Go(fmt.Sprintf("client-%d", s), func(p *sim.Proc) {
			rng := seed + uint32(s)*977
			p.Wait(mgr.Ready())
			v, err := Connect(p, mgr, vecSpec(n))
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			// susWindow suspends the session, idles a random while (other
			// sessions' REQs and restores land in the gap), and resumes.
			susWindow := func() {
				if susPct == 0 || lcgStep(&rng)%100 >= susPct {
					return
				}
				if err := v.Suspend(p); err != nil {
					t.Errorf("session %d: suspend: %v", s, err)
					return
				}
				p.Sleep(sim.Duration(lcgStep(&rng)%2000) * sim.Microsecond)
				if err := v.Resume(p); err != nil {
					t.Errorf("session %d: resume: %v", s, err)
				}
			}
			for c := 0; c < cycles; c++ {
				in := mixIn(s, c, n)
				if err := v.SendInput(p, cuda.HostFloat32Bytes(in)); err != nil {
					t.Errorf("session %d cycle %d: SND: %v", s, c, err)
					return
				}
				susWindow()
				if err := v.Start(p); err != nil {
					t.Errorf("session %d cycle %d: STR: %v", s, c, err)
					return
				}
				if err := v.Wait(p); err != nil {
					t.Errorf("session %d cycle %d: STP: %v", s, c, err)
					return
				}
				susWindow()
				out := make([]byte, n*4)
				if err := v.ReceiveOutput(p, out); err != nil {
					t.Errorf("session %d cycle %d: RCV: %v", s, c, err)
					return
				}
				outs[s][c] = out
				susWindow()
			}
			if err := v.Release(p); err != nil {
				t.Errorf("session %d: RLS: %v", s, err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	return outs, mgr, dev
}

// TestRandomizedSuspendResumeInterleavings is the residency layer's
// equivalence test: three clients cycling on a card that fits only ~1.5
// of their arenas, with randomized explicit suspend windows layered on
// top of the engine's own evictions, must produce byte-identical outputs
// to the same clients on an unconstrained card that never suspends.
func TestRandomizedSuspendResumeInterleavings(t *testing.T) {
	const sessions, cycles = 3, 3
	ref, refMgr, _ := runResidencyMix(t, 256<<20, sessions, cycles, 1, 0)
	if refMgr.Evictions() != 0 {
		t.Fatalf("reference run evicted %d sessions on an unconstrained card", refMgr.Evictions())
	}
	for _, seed := range []uint32{2, 77, 4242} {
		got, mgr, dev := runResidencyMix(t, 96<<10, sessions, cycles, seed, 40)
		if mgr.Evictions() == 0 {
			t.Errorf("seed %d: no evictions on a 96 KiB card under 3x pressure", seed)
		}
		if mgr.Restores()+mgr.Resumes() == 0 {
			t.Errorf("seed %d: nothing was ever restored", seed)
		}
		for s := 0; s < sessions; s++ {
			for c := 0; c < cycles; c++ {
				if string(got[s][c]) != string(ref[s][c]) {
					t.Errorf("seed %d: session %d cycle %d output differs from never-suspended reference", seed, s, c)
				}
			}
		}
		if dev.MemReserved() != 0 || dev.MemInUse() != 0 {
			t.Errorf("seed %d: leak after release: reserved=%d resident=%d", seed, dev.MemReserved(), dev.MemInUse())
		}
	}
}

// TestEvictedSessionTransparentRestore pins the lazy restore path: a
// session evicted by another's REQ is restored by its own next verb
// without any client-visible SUS/RES traffic.
func TestEvictedSessionTransparentRestore(t *testing.T) {
	const n = 4096
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 64 << 10 // fits one ~48 KiB session
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch, Functional: true})
	mgr := gvm.New(env, gvm.Config{Device: dev, MaxSessionBytes: 1 << 30})
	mgr.Start()
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v1, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in := mixIn(0, 0, n)
		if err := v1.SendInput(p, cuda.HostFloat32Bytes(in)); err != nil {
			t.Error(err)
			return
		}
		// v2's REQ must evict idle v1 — including its staged input.
		v2, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Errorf("second REQ did not evict the idle session: %v", err)
			return
		}
		if mgr.Evictions() != 1 || mgr.Restores() != 0 {
			t.Errorf("evictions=%d restores=%d after REQ, want 1/0", mgr.Evictions(), mgr.Restores())
		}
		// v1's next verb transparently restores it (evicting v2 in turn)
		// and the pre-eviction input survives the round trip.
		if err := v1.Start(p); err != nil {
			t.Errorf("STR on evicted session: %v", err)
			return
		}
		if err := v1.Wait(p); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, n*4)
		if err := v1.ReceiveOutput(p, out); err != nil {
			t.Error(err)
			return
		}
		res := cuda.Float32s(memBytes(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != in[i]+in[n+i] {
				t.Errorf("out[%d] = %g, want %g (restored input corrupted)", i, res[i], in[i]+in[n+i])
				return
			}
		}
		if mgr.Restores() == 0 {
			t.Error("transparent restore did not count as a restore")
		}
		if mgr.Resumes() != 0 || mgr.Suspensions() != 0 {
			t.Errorf("transparent path leaked into client SUS/RES counters: resumes=%d suspensions=%d",
				mgr.Resumes(), mgr.Suspensions())
		}
		if err := v1.Release(p); err != nil {
			t.Error(err)
		}
		if err := v2.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemReserved() != 0 || dev.MemInUse() != 0 {
		t.Fatalf("leak: reserved=%d resident=%d", dev.MemReserved(), dev.MemInUse())
	}
}

// TestRestoreFailureLeavesSnapshotRetryable drives a resume into memory
// pressure it cannot relieve: the only other session is parked at an STR
// barrier (running, hence evict-ineligible) and holds the whole card.
// The RES must fail cleanly, leave the snapshot intact, and succeed when
// retried after the pressure clears.
func TestRestoreFailureLeavesSnapshotRetryable(t *testing.T) {
	const n = 4096
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 64 << 10 // one session's arenas at a time
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch, Functional: true})
	mgr := gvm.New(env, gvm.Config{
		Device: dev, MaxSessionBytes: 1 << 30,
		Parties: 2, BarrierTimeout: 250 * sim.Millisecond,
	})
	mgr.Start()
	var in []float32
	env.Go("holder", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		// Parks at the Parties=2 barrier holding the card until the
		// timeout flush; running sessions cannot be evicted.
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.ReceiveOutput(p, nil); err != nil {
			t.Error(err)
			return
		}
		if err := v.Release(p); err != nil {
			t.Error(err)
		}
	})
	env.Go("suspended", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in = mixIn(1, 0, n)
		if err := v.SendInput(p, cuda.HostFloat32Bytes(in)); err != nil {
			t.Error(err)
			return
		}
		if err := v.Suspend(p); err != nil {
			t.Error(err)
			return
		}
		// Let the holder connect and park at the barrier, then try to
		// resume while it pins the card.
		p.Sleep(100 * sim.Millisecond)
		if err := v.Resume(p); err == nil {
			t.Error("RES succeeded while an unevictable session held the card")
			return
		}
		// The failed restore must not have consumed the snapshot: after
		// the barrier timeout flushes the holder, the retry succeeds and
		// the session computes from its pre-suspend input.
		p.Sleep(400 * sim.Millisecond)
		if err := v.Resume(p); err != nil {
			t.Errorf("retried RES failed: %v", err)
			return
		}
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, n*4)
		if err := v.ReceiveOutput(p, out); err != nil {
			t.Error(err)
			return
		}
		res := cuda.Float32s(memBytes(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != in[i]+in[n+i] {
				t.Errorf("out[%d] = %g, want %g (snapshot damaged by failed resume)", i, res[i], in[i]+in[n+i])
				return
			}
		}
		if err := v.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemReserved() != 0 || dev.MemInUse() != 0 {
		t.Fatalf("leak: reserved=%d resident=%d", dev.MemReserved(), dev.MemInUse())
	}
}

// TestPriorityOrdersEviction pins the victim policy: under pressure the
// lowest-priority session goes first, even when a higher-priority one is
// colder (older lastUsed).
func TestPriorityOrdersEviction(t *testing.T) {
	const n = 4096
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 112 << 10 // fits two ~48 KiB sessions, not three
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch})
	mgr := gvm.New(env, gvm.Config{Device: dev, MaxSessionBytes: 1 << 30})
	mgr.Start()
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		high, err := ConnectOpts(p, mgr, vecSpec(n), Opts{Priority: 10})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * sim.Millisecond) // make high the LRU victim candidate
		low, err := ConnectOpts(p, mgr, vecSpec(n), Opts{Priority: 0})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * sim.Millisecond)
		third, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Errorf("third REQ did not evict: %v", err)
			return
		}
		if mgr.Evictions() != 1 {
			t.Errorf("evictions = %d, want 1", mgr.Evictions())
		}
		// high (priority 10) must still be resident: its verb restores
		// nothing. low (priority 0) was the victim despite being more
		// recently used.
		if err := high.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		if mgr.Restores() != 0 {
			t.Errorf("high-priority session was evicted (restores = %d)", mgr.Restores())
		}
		if err := low.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		if mgr.Restores() != 1 {
			t.Errorf("low-priority session was not the victim (restores = %d)", mgr.Restores())
		}
		for _, v := range []*VGPU{high, low, third} {
			if err := v.Release(p); err != nil {
				t.Error(err)
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMemQuotaEnforcedAtMalloc pins HAMi-style hard quotas: every device
// allocation a session makes — REQ arenas and Build-time scratch alike —
// counts against its MemQuota, and the first allocation over the line
// fails with a quota error (not a device OOM).
func TestMemQuotaEnforcedAtMalloc(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	mgr := gvm.New(env, gvm.Config{Device: dev, MaxSessionBytes: 1 << 30})
	mgr.Start()
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		// Arenas alone exceed the quota: REQ is rejected.
		spec := &task.Spec{Name: "q", InBytes: 1 << 20, OutBytes: 512 << 10}
		if _, err := ConnectOpts(p, mgr, spec, Opts{MemQuota: 1 << 20}); err == nil {
			t.Error("REQ exceeded its quota and was accepted")
		}
		// Arenas fit, but a Build-time scratch pushes past the quota.
		scratchSpec := &task.Spec{
			Name: "qs", InBytes: 1 << 20, OutBytes: 512 << 10,
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				_, err := b.NewScratch(1 << 20)
				return nil, err
			},
		}
		if _, err := ConnectOpts(p, mgr, scratchSpec, Opts{MemQuota: 2 << 20}); err == nil {
			t.Error("scratch allocation exceeded the quota and was accepted")
		}
		// The same spec under a sufficient quota works.
		v, err := ConnectOpts(p, mgr, scratchSpec, Opts{MemQuota: 4 << 20})
		if err != nil {
			t.Errorf("in-quota REQ rejected: %v", err)
			return
		}
		if err := v.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.OpenSessions() != 0 {
		t.Fatalf("%d sessions leaked", mgr.OpenSessions())
	}
	if dev.MemReserved() != 0 || dev.MemInUse() != 0 {
		t.Fatalf("leak after quota rejections: reserved=%d resident=%d", dev.MemReserved(), dev.MemInUse())
	}
}
