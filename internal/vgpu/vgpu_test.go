package vgpu

import (
	"fmt"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

func newRig(t *testing.T, functional bool, parties int, mut func(*gvm.Config)) (*sim.Env, *gpusim.Device, *gvm.Manager) {
	t.Helper()
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	if functional {
		arch.MemBytes = 256 << 20
	}
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch, Functional: functional})
	cfg := gvm.Config{Device: dev, Parties: parties}
	if mut != nil {
		mut(&cfg)
	}
	mgr := gvm.New(env, cfg)
	mgr.Start()
	return env, dev, mgr
}

// vecSpec builds a vector-add task spec over n float32 elements.
func vecSpec(n int) *task.Spec {
	return &task.Spec{
		Name:     "vecadd",
		InBytes:  int64(2 * n * 4),
		OutBytes: int64(n * 4),
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			// Input layout: a then b contiguous in the In buffer.
			a := b.In
			bb := b.In + cuda.DevPtr(n*4)
			return []*cuda.Kernel{kernels.NewVecAdd(a, bb, b.Out, n)}, nil
		},
	}
}

func TestFullProtocolFunctional(t *testing.T) {
	const n = 2048
	env, _, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			in[i] = float32(i)
			in[n+i] = float32(3 * i)
		}
		out := make([]byte, n*4)
		if err := v.RunCycle(p, cuda.HostFloat32Bytes(in), out); err != nil {
			t.Error(err)
			return
		}
		got := cuda.Float32s(memBytes(out), 0, n)
		for i := 0; i < n; i++ {
			if got[i] != 4*float32(i) {
				t.Errorf("out[%d] = %g, want %g", i, got[i], 4*float32(i))
				return
			}
		}
		if err := v.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.OpenSessions() != 0 {
		t.Fatalf("%d sessions leaked", mgr.OpenSessions())
	}
}

// memBytes adapts a raw byte slice to cuda.Memory for typed views.
type sliceMem []byte

func (s sliceMem) Bytes(p cuda.DevPtr, n int64) []byte { return s[p : int64(p)+n] }

func memBytes(b []byte) cuda.Memory { return sliceMem(b) }

func TestEightClientsBarrierAndConcurrency(t *testing.T) {
	const n = 1 << 16
	env, dev, mgr := newRig(t, false, 8, nil)
	var ends []sim.Time
	for i := 0; i < 8; i++ {
		env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			v, err := Connect(p, mgr, vecSpec(n))
			if err != nil {
				t.Error(err)
				return
			}
			if err := v.RunCycle(p, nil, nil); err != nil {
				t.Error(err)
				return
			}
			ends = append(ends, p.Now())
			if err := v.Release(p); err != nil {
				t.Error(err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 8 {
		t.Fatalf("%d clients finished", len(ends))
	}
	if mgr.Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1 (single barrier batch)", mgr.Flushes())
	}
	if dev.ContextSwitches != 0 {
		t.Fatalf("ContextSwitches = %d, want 0 under virtualization", dev.ContextSwitches)
	}
	if dev.KernelsRun != 8 {
		t.Fatalf("KernelsRun = %d, want 8", dev.KernelsRun)
	}
}

func TestBarrierActuallyBlocksEarlyClients(t *testing.T) {
	// With Parties=2 a lone STR must not flush; the first client's Start
	// completes only after the second client arrives much later.
	const n = 1 << 12
	env, _, mgr := newRig(t, false, 2, nil)
	var firstStartDone sim.Time
	env.Go("early", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		firstStartDone = p.Now()
		if err := v.Wait(p); err != nil {
			t.Error(err)
		}
	})
	var lateArrive sim.Time
	env.Go("late", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		p.Sleep(500 * sim.Millisecond)
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		lateArrive = p.Now()
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if firstStartDone < lateArrive {
		t.Fatalf("early client's STR acknowledged at %v, before the late party arrived at %v",
			firstStartDone, lateArrive)
	}
}

func TestBlockingSTPNoPolling(t *testing.T) {
	const n = 1 << 20
	run := func(blocking bool) int {
		env, _, mgr := newRig(t, false, 1, func(c *gvm.Config) { c.BlockingSTP = blocking })
		polls := 0
		env.Go("client", func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			v, err := Connect(p, mgr, vecSpec(n))
			if err != nil {
				t.Error(err)
				return
			}
			if err := v.RunCycle(p, nil, nil); err != nil {
				t.Error(err)
				return
			}
			polls = v.Polls
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return polls
	}
	if p := run(true); p != 1 {
		t.Fatalf("blocking STP polls = %d, want 1", p)
	}
	if p := run(false); p < 2 {
		t.Fatalf("polling STP polls = %d, want >= 2 (WAIT then ACK)", p)
	}
}

func TestREQRejectsInvalidKernel(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	spec := &task.Spec{
		Name: "bad", InBytes: 16, OutBytes: 16,
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			return []*cuda.Kernel{{Name: "bad", Grid: cuda.Dim(1), Block: cuda.Dim(4096)}}, nil
		},
	}
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		if _, err := Connect(p, mgr, spec); err == nil {
			t.Error("Connect accepted an invalid kernel")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.OpenSessions() != 0 {
		t.Fatal("failed REQ leaked a session")
	}
}

func TestREQRejectsOOM(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	spec := &task.Spec{Name: "huge", InBytes: 64 << 30, OutBytes: 16}
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		if _, err := Connect(p, mgr, spec); err == nil {
			t.Error("Connect accepted a 64 GiB allocation on a 6 GiB card")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRCVBeforeCompletionErrors(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(1<<12))
		if err != nil {
			t.Error(err)
			return
		}
		// RCV without SND/STR: the manager must reject it.
		if err := v.ReceiveOutput(p, nil); err == nil {
			t.Error("RCV before completion succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleSTRErrors(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(1<<22))
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SendInput(p, nil); err != nil {
			t.Error(err)
			return
		}
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		// Second STR while the first still runs.
		if err := v.Start(p); err == nil {
			t.Error("second STR while running succeeded")
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInputSizeValidation(t *testing.T) {
	env, _, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(1024))
		if err != nil {
			t.Error(err)
			return
		}
		if err := v.SendInput(p, make([]byte, 7)); err == nil {
			t.Error("SendInput accepted wrong-size data")
		}
		if err := v.ReceiveOutput(p, make([]byte, 7)); err == nil {
			t.Error("ReceiveOutput accepted wrong-size buffer")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectNilSpec(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		if _, err := Connect(p, mgr, nil); err == nil {
			t.Error("Connect accepted nil spec")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScratchBuffersFreedOnRelease(t *testing.T) {
	env, dev, mgr := newRig(t, false, 1, nil)
	spec := &task.Spec{
		Name: "scratchy", InBytes: 1024, OutBytes: 1024,
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			for i := 0; i < 4; i++ {
				if _, err := b.NewScratch(1 << 20); err != nil {
					return nil, err
				}
			}
			return nil, nil
		},
	}
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, spec)
		if err != nil {
			t.Error(err)
			return
		}
		if dev.MemInUse() == 0 {
			t.Error("no device memory in use after REQ")
		}
		if err := v.RunCycle(p, nil, nil); err != nil {
			t.Error(err)
			return
		}
		if err := v.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemInUse() != 0 {
		t.Fatalf("%d bytes of device memory leaked after RLS", dev.MemInUse())
	}
}

func TestPollPolicyClamping(t *testing.T) {
	v := &VGPU{}
	v.SetPollPolicy(PollPolicy{Initial: -1, Max: -5, Factor: 0})
	if v.poll.Factor < 1 || v.poll.Initial <= 0 || v.poll.Max < v.poll.Initial {
		t.Fatalf("poll policy not clamped: %+v", v.poll)
	}
}

func TestSessionQuotaRejectsOverCommit(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, func(c *gvm.Config) { c.MaxSessionBytes = 1 << 20 })
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		// First session fits the 1 MiB quota.
		small := &task.Spec{Name: "small", InBytes: 512 << 10, OutBytes: 128 << 10}
		v, err := Connect(p, mgr, small)
		if err != nil {
			t.Errorf("first session rejected: %v", err)
			return
		}
		// Second would exceed the aggregate quota.
		if _, err := Connect(p, mgr, small); err == nil {
			t.Error("quota-exceeding session accepted")
		}
		// Releasing the first frees quota for a third.
		if err := v.Release(p); err != nil {
			t.Error(err)
			return
		}
		if _, err := Connect(p, mgr, small); err != nil {
			t.Errorf("session after quota release rejected: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierTimeoutFlushesPartialBatch(t *testing.T) {
	// Parties=3 but only two clients ever arrive: with BarrierTimeout the
	// manager flushes the partial batch instead of wedging the node.
	env, _, mgr := newRig(t, false, 3, func(c *gvm.Config) {
		c.BarrierTimeout = 250 * sim.Millisecond
	})
	var done []sim.Time
	for i := 0; i < 2; i++ {
		env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			v, err := Connect(p, mgr, vecSpec(1<<16))
			if err != nil {
				t.Error(err)
				return
			}
			if err := v.RunCycle(p, nil, nil); err != nil {
				t.Error(err)
				return
			}
			done = append(done, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("%d clients completed, want 2 (timeout flush)", len(done))
	}
	if mgr.BarrierTimeouts() != 1 {
		t.Fatalf("BarrierTimeouts = %d, want 1", mgr.BarrierTimeouts())
	}
}

func TestBarrierTimeoutNotFiredWhenAllArrive(t *testing.T) {
	env, _, mgr := newRig(t, false, 2, func(c *gvm.Config) {
		c.BarrierTimeout = 10 * sim.Second
	})
	for i := 0; i < 2; i++ {
		env.Go("client", func(p *sim.Proc) {
			p.Wait(mgr.Ready())
			v, err := Connect(p, mgr, vecSpec(1<<16))
			if err != nil {
				t.Error(err)
				return
			}
			if err := v.RunCycle(p, nil, nil); err != nil {
				t.Error(err)
			}
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.BarrierTimeouts() != 0 {
		t.Fatalf("BarrierTimeouts = %d, want 0", mgr.BarrierTimeouts())
	}
	if mgr.Flushes() != 1 {
		t.Fatalf("Flushes = %d, want 1", mgr.Flushes())
	}
}

func TestSuspendResumePreservesState(t *testing.T) {
	// Send input, suspend, resume, run: results must be computed from
	// the restored input. The device footprint drops to zero while
	// suspended.
	const n = 1024
	env, dev, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(n))
		if err != nil {
			t.Error(err)
			return
		}
		in := make([]float32, 2*n)
		for i := 0; i < n; i++ {
			in[i] = float32(i)
			in[n+i] = 7
		}
		if err := v.SendInput(p, cuda.HostFloat32Bytes(in)); err != nil {
			t.Error(err)
			return
		}
		// SendInput stages into pinned memory; run once so the data is
		// resident on the device, then suspend.
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
			return
		}
		inUseBefore := dev.MemInUse()
		if err := v.Suspend(p); err != nil {
			t.Error(err)
			return
		}
		if dev.MemInUse() != 0 {
			t.Errorf("device holds %d bytes while suspended (was %d)", dev.MemInUse(), inUseBefore)
		}
		// Operations on a suspended session fail cleanly.
		if err := v.Start(p); err == nil {
			t.Error("STR on suspended session succeeded")
		}
		if err := v.Resume(p); err != nil {
			t.Error(err)
			return
		}
		// The restored output buffer still holds the pre-suspend result.
		out := make([]byte, n*4)
		if err := v.ReceiveOutput(p, out); err != nil {
			t.Error(err)
			return
		}
		res := cuda.Float32s(memBytes(out), 0, n)
		for i := 0; i < n; i++ {
			if res[i] != float32(i)+7 {
				t.Errorf("out[%d] = %g, want %g", i, res[i], float32(i)+7)
				return
			}
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.Suspensions() != 1 || mgr.Resumes() != 1 {
		t.Fatalf("suspensions=%d resumes=%d", mgr.Suspensions(), mgr.Resumes())
	}
}

func TestSuspendedSessionFreesRoomForOthers(t *testing.T) {
	// Residency-layer packing: with a ~2 MiB device one session fills
	// the card. Under the old fit-or-reject model the second REQ died on
	// device OOM; the eviction engine now evacuates the idle first
	// session to a host snapshot and admits the second. An explicit
	// Resume then evicts the second in turn — the device swaps arenas
	// instead of rejecting work.
	env := sim.NewEnv()
	arch := fermi.TeslaC2070()
	arch.MemBytes = 2 << 20 // tiny card: one ~1.5MiB session resident at a time
	dev := gpusim.MustNew(env, gpusim.Config{Arch: arch})
	// Lift the shm quota so device memory is the binding constraint.
	mgr := gvm.New(env, gvm.Config{Device: dev, MaxSessionBytes: 1 << 30})
	mgr.Start()
	spec := &task.Spec{Name: "big", InBytes: 1 << 20, OutBytes: 512 << 10}
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v1, err := Connect(p, mgr, spec)
		if err != nil {
			t.Error(err)
			return
		}
		// The device is full, but v1 is idle: REQ evicts it and fits.
		v2, err := Connect(p, mgr, spec)
		if err != nil {
			t.Errorf("second session rejected on a full device: %v", err)
			return
		}
		if mgr.Evictions() != 1 {
			t.Errorf("evictions = %d, want 1", mgr.Evictions())
		}
		// v1's arena sits in a host snapshot; its logical reservation
		// persists, so reserved now exceeds resident.
		if res, inUse := dev.MemReserved(), dev.MemInUse(); res <= inUse {
			t.Errorf("reserved %d <= resident %d after eviction", res, inUse)
		}
		// Resume swaps the pair: v2 is idle, so it is evicted to make
		// room for v1's restore.
		if err := v1.Resume(p); err != nil {
			t.Errorf("resume: %v", err)
			return
		}
		if mgr.Evictions() != 2 {
			t.Errorf("evictions = %d, want 2", mgr.Evictions())
		}
		if err := v2.Release(p); err != nil {
			t.Error(err)
			return
		}
		if err := v1.Release(p); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemReserved() != 0 || dev.MemInUse() != 0 {
		t.Fatalf("leak: reserved=%d inUse=%d after release", dev.MemReserved(), dev.MemInUse())
	}
}

func TestSuspendErrors(t *testing.T) {
	env, _, mgr := newRig(t, false, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		v, err := Connect(p, mgr, vecSpec(1024))
		if err != nil {
			t.Error(err)
			return
		}
		// Resume without suspend.
		if err := v.Resume(p); err == nil {
			t.Error("RES without SUS succeeded")
		}
		if err := v.Suspend(p); err != nil {
			t.Error(err)
			return
		}
		// Double suspend.
		if err := v.Suspend(p); err == nil {
			t.Error("double SUS succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendResumeMGScratchState(t *testing.T) {
	// MG carries most of its state in scratch buffers (the level
	// hierarchy); a suspend/resume round trip mid-workload must still
	// produce host-validated results.
	w := workloads.MG(16, 3, 2)
	env, _, mgr := newRig(t, true, 1, nil)
	env.Go("client", func(p *sim.Proc) {
		p.Wait(mgr.Ready())
		spec := w.Spec(0)
		v, err := Connect(p, mgr, spec)
		if err != nil {
			t.Error(err)
			return
		}
		in := make([]byte, spec.InBytes)
		w.Fill(0, in)
		if err := v.SendInput(p, in); err != nil {
			t.Error(err)
			return
		}
		if err := v.Suspend(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Resume(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Start(p); err != nil {
			t.Error(err)
			return
		}
		if err := v.Wait(p); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, spec.OutBytes)
		if err := v.ReceiveOutput(p, out); err != nil {
			t.Error(err)
			return
		}
		if err := w.Check(0, out); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlushPolicySJFImprovesMeanTurnaround(t *testing.T) {
	// Heterogeneous batch: 7 small tasks and 1 big one. When the big
	// task's STR arrives first, FIFO puts its transfers at the head of
	// the engine queue and every small task waits; SJF reorders the
	// flush so the small tasks finish first, cutting mean turnaround.
	run := func(policy gvm.FlushPolicy) (mean, max float64) {
		env, _, mgr := newRig(t, false, 8, func(c *gvm.Config) { c.FlushPolicy = policy })
		var times []float64
		for i := 0; i < 8; i++ {
			i := i
			n := 1 << 16 // small: 512 KiB in
			if i == 0 {
				n = 1 << 24 // big: 128 MiB in
			}
			env.Go(fmt.Sprintf("client-%d", i), func(p *sim.Proc) {
				p.Wait(mgr.Ready())
				// Stagger arrivals so the big task reaches the barrier
				// first (its SND staging takes ~6 ms; the small tasks
				// start after 10 ms).
				if i != 0 {
					p.Sleep(10*sim.Millisecond + sim.Duration(i)*sim.Microsecond)
				}
				t0 := p.Now()
				v, err := Connect(p, mgr, vecSpec(n))
				if err != nil {
					t.Error(err)
					return
				}
				if err := v.RunCycle(p, nil, nil); err != nil {
					t.Error(err)
					return
				}
				times = append(times, p.Now().Sub(t0).Seconds())
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		for _, v := range times {
			mean += v
			if v > max {
				max = v
			}
		}
		return mean / float64(len(times)), max
	}
	fifoMean, fifoMax := run(gvm.FlushFIFO)
	sjfMean, sjfMax := run(gvm.FlushSJF)
	ljfMean, _ := run(gvm.FlushLJF)
	if sjfMean >= fifoMean {
		t.Fatalf("SJF mean %.4fs not better than FIFO %.4fs", sjfMean, fifoMean)
	}
	if sjfMean >= ljfMean {
		t.Fatalf("SJF mean %.4fs not better than LJF %.4fs", sjfMean, ljfMean)
	}
	// Makespan is engine-bound and barely moves.
	if sjfMax > fifoMax*1.05 {
		t.Fatalf("SJF makespan %.4fs regressed vs FIFO %.4fs", sjfMax, fifoMax)
	}
}

func TestFlushPolicyStrings(t *testing.T) {
	if gvm.FlushFIFO.String() != "fifo" || gvm.FlushSJF.String() != "sjf" || gvm.FlushLJF.String() != "ljf" {
		t.Fatal("policy names wrong")
	}
	if gvm.FlushPolicy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
}
