package metrics

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): one # HELP and
// # TYPE line per family, then one sample line per series. Histograms
// render their cumulative le buckets plus _sum and _count. Buckets with
// no observations are elided — the format permits any sorted subset of
// bounds as long as +Inf is present, and eliding keeps 40-bucket
// histograms from dominating the scrape.

// WritePrometheus writes the registry in Prometheus text format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			writeSample(bw, f.name, "", s.labels, "", s.value())
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		n := s.h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		writeSample(bw, name, "_bucket", s.labels,
			strconv.FormatInt(BucketBound(i), 10), cum)
	}
	writeSample(bw, name, "_bucket", s.labels, "+Inf", s.h.Count())
	writeSample(bw, name, "_sum", s.labels, "", s.h.Sum())
	writeSample(bw, name, "_count", s.labels, "", s.h.Count())
}

// writeSample emits one line: name+suffix{labels,le="le"} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le string, v int64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(v, 10))
	bw.WriteByte('\n')
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
