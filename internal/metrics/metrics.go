// Package metrics is the daemon's telemetry registry: atomic counters,
// gauges and fixed-bucket (log2) histograms that cost one atomic
// operation per update and allocate nothing on the hot path, plus a
// Prometheus-text-format encoder (prom.go) and a JSON-friendly Snapshot.
//
// Instruments are registered once (registration is idempotent: asking
// for the same name+labels returns the same instrument) and updated from
// any goroutine; scrapes read the atomics without stopping writers. This
// is the single sanctioned way to export runtime state from the daemon
// path — the gvm.Manager statistics, the transport dispatcher's per-verb
// accounting and the ipc server's connection counters all live here, so
// none of them can race under concurrent readers.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to an instrument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of finite histogram buckets. Bucket i has
// the upper bound 2^i: bucket 0 counts observations <= 1, bucket i
// counts 2^(i-1) < v <= 2^i. The last bound is 2^39 (~9.2 minutes when
// observing nanoseconds, 512 GiB when observing bytes); larger
// observations clamp into the last bucket, so every observation lands
// in exactly one bucket and the bucket sum always equals the number of
// completed Observe calls.
const HistBuckets = 40

// Histogram is a fixed-bucket log2 histogram: Observe costs three atomic
// adds and no float math, which keeps it viable inside the verb hot path.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value (negative values clamp to zero, values
// beyond the largest finite bound clamp into the last bucket). The
// bucket is bumped before sum/count so a concurrent Quantile never
// observes a count that outruns the buckets.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v - 1))
	}
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Sum returns the running total of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Bucket returns bucket i's own (non-cumulative) count.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// BucketBound returns bucket i's inclusive upper bound (2^i).
func BucketBound(i int) int64 { return 1 << uint(i) }

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution as the upper bound of the bucket holding the rank-q
// observation — an overestimate by at most 2x, which is what a log2
// histogram can promise. It returns 0 when nothing has been observed.
// Safe to call concurrently with Observe: the rank is computed against
// the bucket counts actually read (not the separately-updated count
// word), so an Observe racing the scrape can never push the rank past
// the buckets and flash the max bound as a phantom tail.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [HistBuckets]int64
	var total int64
	for i := 0; i < HistBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instrument inside a family. Exactly one of
// c/g/h/fn is set; fn-backed series read their value at scrape time.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

type family struct {
	name   string
	help   string
	kind   kind
	series []*series          // registration order
	byKey  map[string]*series // label-set key -> series
}

// Registry holds a set of instrument families. The zero value is not
// usable; create one with NewRegistry. Registration takes a mutex;
// instrument updates and reads never do.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Counter registers (or returns the existing) counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, nil)
	if s.c == nil {
		panic(fmt.Sprintf("metrics: %s is func-backed, not a settable counter", name))
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, nil)
	if s.g == nil {
		panic(fmt.Sprintf("metrics: %s is func-backed, not a settable gauge", name))
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram name{labels}.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.register(name, help, kindHistogram, labels, nil).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters that already live elsewhere as atomics
// (e.g. the transport buffer pool's package-level statistics).
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, labels, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindGauge, labels, fn)
}

func (r *Registry) register(name, help string, k kind, labels []Label, fn func() int64) *series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var key strings.Builder
	for _, l := range ls {
		key.WriteString(l.Key)
		key.WriteByte(0xff)
		key.WriteString(l.Value)
		key.WriteByte(0xfe)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]*series)}
		r.fams[name] = f
		r.order = append(r.order, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", name, f.kind, k))
	}
	if s := f.byKey[key.String()]; s != nil {
		return s
	}
	s := &series{labels: ls, fn: fn}
	if fn == nil {
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{}
		}
	}
	f.byKey[key.String()] = s
	f.series = append(f.series, s)
	return s
}

// value reads a counter/gauge series (fn-backed or atomic).
func (s *series) value() int64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.c != nil:
		return s.c.Value()
	case s.g != nil:
		return s.g.Value()
	}
	return 0
}

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations at or below the inclusive upper bound LE.
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Sample is one instrument's state at snapshot time, shaped for JSON
// embedding (gvmbench writes these into its results artifact).
type Sample struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   int64             `json:"value,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Snapshot captures every instrument's current value. It is safe to call
// concurrently with updates; each individual value is read atomically
// (the snapshot as a whole is not one consistent cut — no telemetry
// scrape is).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		for _, s := range f.series {
			smp := Sample{Name: f.name, Type: f.kind.String()}
			if len(s.labels) > 0 {
				smp.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					smp.Labels[l.Key] = l.Value
				}
			}
			if f.kind == kindHistogram {
				var cum int64
				for i := 0; i < HistBuckets; i++ {
					if n := s.h.buckets[i].Load(); n > 0 {
						cum += n
						smp.Buckets = append(smp.Buckets, Bucket{LE: BucketBound(i), Count: cum})
					}
				}
				smp.Sum = s.h.Sum()
				smp.Count = s.h.Count()
			} else {
				smp.Value = s.value()
			}
			out = append(out, smp)
		}
	}
	return out
}
