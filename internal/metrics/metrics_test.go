package metrics

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("open", "open things")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	g.Inc()
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "", L("verb", "SND"))
	b := r.Counter("c", "", L("verb", "SND"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("c", "", L("verb", "RCV"))
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h", "", L("a", "1"), L("b", "2"))
	h2 := r.Histogram("h", "", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// Bucket i has inclusive upper bound 2^i; bucket 0 holds v <= 1.
	cases := []struct {
		v      int64
		bucket int
	}{
		{-3, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if h.Bucket(c.bucket) != before+1 {
			t.Fatalf("Observe(%d) did not land in bucket %d (le=%d)", c.v, c.bucket, BucketBound(c.bucket))
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum int64
	for _, c := range cases {
		if c.v > 0 {
			sum += c.v
		}
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	// An observation beyond the last finite bound clamps into the last
	// bucket: dropping it would leave count ahead of the bucket sum and
	// permanently skew every later Quantile toward the max bound.
	var big Histogram
	big.Observe(1 << 45)
	if got := big.Bucket(HistBuckets - 1); got != 1 {
		t.Fatalf("overflow observation: last bucket = %d, want 1", got)
	}
	for i := 0; i < HistBuckets-1; i++ {
		if big.Bucket(i) != 0 {
			t.Fatalf("overflow observation landed in bucket %d", i)
		}
	}
	if big.Count() != 1 {
		t.Fatal("overflow observation not counted")
	}
}

// TestHistogramOverflowRoundTrip pins the overflow-clamp fix: an
// observation beyond the last finite bound must round-trip through
// Quantile and Snapshot like any other observation. Pre-fix, Observe
// added it to count/sum but no bucket, so a histogram holding only
// overflow observations reported cumulative buckets that never reach
// count and (with rank computed from count) every quantile flashed to
// the max bound even at q→0.
func TestHistogramOverflowRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(1 << 45)
	if got := h.Quantile(0.5); got != BucketBound(HistBuckets-1) {
		t.Fatalf("overflow p50 = %d, want last finite bound %d", got, BucketBound(HistBuckets-1))
	}
	if got := h.Quantile(1); got != BucketBound(HistBuckets-1) {
		t.Fatalf("overflow p100 = %d, want last finite bound %d", got, BucketBound(HistBuckets-1))
	}
	// Mix with a small observation: the overflow must count as one real
	// observation above it, not vanish from the distribution.
	h.Observe(1)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("mixed p50 = %d, want 1", got)
	}
	var sum int64
	for i := 0; i < HistBuckets; i++ {
		sum += h.Bucket(i)
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum %d != count %d after overflow", sum, h.Count())
	}
	r := NewRegistry()
	rh := r.Histogram("ovf_ns", "")
	rh.Observe(1 << 45)
	snap := r.Snapshot()
	bs := snap[0].Buckets
	if len(bs) == 0 || bs[len(bs)-1].Count != snap[0].Count {
		t.Fatalf("snapshot cumulative buckets %+v never reach count %d", bs, snap[0].Count)
	}
}

// TestHistogramQuantileTornObserve pins the write-ordering fix: a
// Quantile racing an in-flight Observe must never report the max bound
// for a distribution that contains no large observation. The torn state
// is reproduced deterministically — pre-fix Observe bumped count before
// the bucket, so a concurrent reader could load count=1 with all
// buckets still zero, walk off the end, and return BucketBound(39): a
// phantom ~9-minute p99 that steers the slo placement policy away from
// a healthy shard.
func TestHistogramQuantileTornObserve(t *testing.T) {
	var h Histogram
	h.count.Store(1) // count visible, bucket increment not yet
	if got := h.Quantile(0.99); got == BucketBound(HistBuckets-1) {
		t.Fatalf("torn observe: p99 = %d (max bound); want a value derived from the buckets actually read", got)
	}
	// The symmetric torn state under the fixed ordering (bucket visible,
	// count not yet) must also resolve sanely.
	var h2 Histogram
	h2.buckets[7].Store(1)
	if got := h2.Quantile(0.99); got != BucketBound(7) {
		t.Fatalf("bucket-only torn state: p99 = %d, want %d", got, BucketBound(7))
	}
}

// TestHistogramQuantileConcurrentObserve hammers Quantile against a
// writer that only ever observes values <= 1000 (bucket le=1024). Any
// reader seeing a quantile above 1024 has manufactured a tail that was
// never observed. Fails pre-fix within a few thousand iterations on a
// multicore box; run with -race in CI either way.
func TestHistogramQuantileConcurrentObserve(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(1000)
			}
		}
	}()
	for i := 0; i < 200_000; i++ {
		if got := h.Quantile(0.99); got > 1024 {
			close(stop)
			wg.Wait()
			t.Fatalf("iteration %d: p99 = %d for a stream of 1000-valued observations (want <= 1024)", i, got)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	// 99 fast observations and one slow: the p50 resolves to the fast
	// bucket's bound, the p99 and p100 to the slow one's. Quantiles are
	// bucket upper bounds (powers of two), so use exact-bound values.
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket le=128
	}
	h.Observe(100_000) // bucket le=131072
	if got := h.Quantile(0.5); got != 128 {
		t.Fatalf("p50 = %d, want 128", got)
	}
	if got := h.Quantile(0.98); got != 128 {
		t.Fatalf("p98 = %d, want 128", got)
	}
	if got := h.Quantile(0.99); got != 128 {
		t.Fatalf("p99 (rank 99 of 100) = %d, want 128", got)
	}
	if got := h.Quantile(0.995); got != 131072 {
		t.Fatalf("p99.5 = %d, want 131072", got)
	}
	if got := h.Quantile(1); got != 131072 {
		t.Fatalf("p100 = %d, want 131072", got)
	}
	// An observation beyond the last finite bucket saturates quantiles at
	// the largest finite bound rather than inventing a value.
	var big Histogram
	big.Observe(1 << 45)
	if got := big.Quantile(0.5); got != BucketBound(HistBuckets-1) {
		t.Fatalf("overflow p50 = %d, want last finite bound %d", got, BucketBound(HistBuckets-1))
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("fn_total", "func counter", func() int64 { return n })
	n++
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 42 {
		t.Fatalf("func counter snapshot = %+v, want value 42", snap)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("verb", "SND")).Add(3)
	r.Gauge("b", "").Set(-7)
	h := r.Histogram("lat_ns", "")
	h.Observe(3)
	h.Observe(100)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 3 || snap[0].Labels["verb"] != "SND" {
		t.Fatalf("counter sample wrong: %+v", snap[0])
	}
	if snap[1].Value != -7 {
		t.Fatalf("gauge sample wrong: %+v", snap[1])
	}
	hs := snap[2]
	if hs.Count != 2 || hs.Sum != 103 {
		t.Fatalf("histogram sample wrong: %+v", hs)
	}
	// Buckets are cumulative: the last one must equal the count when no
	// observation exceeded the finite range.
	if len(hs.Buckets) == 0 || hs.Buckets[len(hs.Buckets)-1].Count != 2 {
		t.Fatalf("histogram buckets wrong: %+v", hs.Buckets)
	}
}

// promLine matches one Prometheus text sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("verb_requests_total", "requests by verb", L("verb", "SND")).Add(9)
	r.Counter("verb_requests_total", "requests by verb", L("verb", "RCV")).Add(2)
	r.Gauge("open_sessions", "live sessions").Set(4)
	h := r.Histogram("verb_latency_ns", "latency", L("verb", "SND"))
	h.Observe(700)
	h.Observe(90)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line %q in:\n%s", line, text)
		}
	}
	for _, want := range []string{
		"# TYPE verb_requests_total counter",
		`verb_requests_total{verb="SND"} 9`,
		`verb_requests_total{verb="RCV"} 2`,
		"open_sessions 4",
		"# TYPE verb_latency_ns histogram",
		`verb_latency_ns_bucket{verb="SND",le="128"} 1`,
		`verb_latency_ns_bucket{verb="SND",le="1024"} 2`,
		`verb_latency_ns_bucket{verb="SND",le="+Inf"} 2`,
		`verb_latency_ns_sum{verb="SND"} 790`,
		`verb_latency_ns_count{verb="SND"} 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total", "", L("verb", "SND"))
			h := r.Histogram("hammer_ns", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			r.Snapshot()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	if got := r.Counter("hammer_total", "", L("verb", "SND")).Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
