// Package direct implements the paper's comparison baseline: conventional
// GPU sharing without virtualization (Section IV.B.1). Every SPMD process
// initializes the device and creates its own GPU context (paying its
// share of Tinit), then runs its cycle — send data, compute, retrieve
// data — with the device serializing cycles from different contexts and
// charging a context switch whenever ownership changes (Figure 4).
package direct

import (
	"fmt"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// Process is one SPMD process's direct (non-virtualized) GPU attachment.
type Process struct {
	dev     *gpusim.Device
	ctx     *gpusim.Context
	spec    *task.Spec
	devIn   cuda.DevPtr
	devOut  cuda.DevPtr
	scratch []cuda.DevPtr
	hostIn  *gpusim.HostBuffer
	hostOut *gpusim.HostBuffer
	kernels []*cuda.Kernel
}

// Attach initializes the device for this process: context creation (the
// per-process share of Tinit), buffer allocation and kernel preparation.
// SwitchCost overrides the architecture's context-switch cost when
// nonzero (the paper's Table II measures per-application switch costs).
func Attach(p *sim.Proc, dev *gpusim.Device, spec *task.Spec, switchCost sim.Duration) (*Process, error) {
	pr := &Process{dev: dev, spec: spec}
	var err error
	if pr.ctx, err = dev.TryCreateContext(p); err != nil {
		return nil, err
	}
	pr.ctx.SwitchCost = switchCost
	if spec.InBytes > 0 {
		if pr.devIn, err = pr.ctx.Malloc(spec.InBytes); err != nil {
			pr.Detach()
			return nil, err
		}
		pr.hostIn = dev.AllocHost(spec.InBytes, false) // pageable: the conventional path
	}
	if spec.OutBytes > 0 {
		if pr.devOut, err = pr.ctx.Malloc(spec.OutBytes); err != nil {
			pr.Detach()
			return nil, err
		}
		pr.hostOut = dev.AllocHost(spec.OutBytes, false)
	}
	if spec.Build != nil {
		b := &task.Buffers{In: pr.devIn, Out: pr.devOut, Alloc: pr.ctx, Scratch: &pr.scratch}
		if pr.kernels, err = spec.Build(b); err != nil {
			pr.Detach()
			return nil, err
		}
		for _, k := range pr.kernels {
			if err := k.Validate(dev.Arch()); err != nil {
				pr.Detach()
				return nil, fmt.Errorf("direct: %w", err)
			}
		}
	}
	return pr, nil
}

// HostIn returns the process's pageable input staging buffer (nil without
// input). Callers fill it before RunCycle in functional mode.
func (pr *Process) HostIn() *gpusim.HostBuffer { return pr.hostIn }

// HostOut returns the output staging buffer.
func (pr *Process) HostOut() *gpusim.HostBuffer { return pr.hostOut }

// RunCycle performs one synchronous GPU execution cycle under this
// process's own context: acquire the device (paying the context switch if
// another context ran last), H2D, kernels, D2H, release. This serializes
// whole cycles across processes exactly as the paper's Figure 4 shows.
func (pr *Process) RunCycle(p *sim.Proc) error {
	pr.ctx.Acquire(p)
	defer pr.ctx.Release()
	if pr.spec.InBytes > 0 {
		pr.ctx.MemcpyH2D(p, pr.devIn, pr.hostIn, pr.spec.InBytes)
	}
	for _, k := range pr.kernels {
		if err := pr.ctx.Launch(p, k); err != nil {
			return err
		}
	}
	if pr.spec.OutBytes > 0 {
		pr.ctx.MemcpyD2H(p, pr.hostOut, pr.devOut, pr.spec.OutBytes)
	}
	return nil
}

// RunPhases runs one cycle like RunCycle but returns the time spent in
// each stage (data in, compute, data out). The micro-benchmark profiler
// uses it to extract the paper's Table II parameters.
func (pr *Process) RunPhases(p *sim.Proc) (tin, tcomp, tout sim.Duration, err error) {
	pr.ctx.Acquire(p)
	defer pr.ctx.Release()
	mark := p.Now()
	if pr.spec.InBytes > 0 {
		pr.ctx.MemcpyH2D(p, pr.devIn, pr.hostIn, pr.spec.InBytes)
	}
	tin = p.Now().Sub(mark)
	mark = p.Now()
	for _, k := range pr.kernels {
		if err = pr.ctx.Launch(p, k); err != nil {
			return tin, 0, 0, err
		}
	}
	tcomp = p.Now().Sub(mark)
	mark = p.Now()
	if pr.spec.OutBytes > 0 {
		pr.ctx.MemcpyD2H(p, pr.hostOut, pr.devOut, pr.spec.OutBytes)
	}
	tout = p.Now().Sub(mark)
	return tin, tcomp, tout, nil
}

// Detach frees the process's device resources.
func (pr *Process) Detach() {
	if pr.devIn != 0 {
		_ = pr.ctx.Free(pr.devIn)
		pr.devIn = 0
	}
	if pr.devOut != 0 {
		_ = pr.ctx.Free(pr.devOut)
		pr.devOut = 0
	}
	for _, s := range pr.scratch {
		_ = pr.ctx.Free(s)
	}
	pr.scratch = nil
	pr.ctx.Destroy()
}
