package direct

import (
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

func vecSpec(n int) *task.Spec {
	return &task.Spec{
		Name:     "vecadd",
		InBytes:  int64(2 * n * 4),
		OutBytes: int64(n * 4),
		Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
			return []*cuda.Kernel{kernels.NewVecAdd(b.In, b.In+cuda.DevPtr(n*4), b.Out, n)}, nil
		},
	}
}

func TestAttachRunDetachFunctional(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070(), Functional: true})
	const n = 1024
	env.Go("p", func(p *sim.Proc) {
		pr, err := Attach(p, dev, vecSpec(n), 0)
		if err != nil {
			t.Error(err)
			return
		}
		in := cuda.Float32s(memOf(pr.HostIn().Data()), 0, 2*n)
		for i := 0; i < n; i++ {
			in[i] = float32(i)
			in[n+i] = 2
		}
		if err := pr.RunCycle(p); err != nil {
			t.Error(err)
			return
		}
		out := cuda.Float32s(memOf(pr.HostOut().Data()), 0, n)
		for i := 0; i < n; i++ {
			if out[i] != float32(i)+2 {
				t.Errorf("out[%d] = %g", i, out[i])
				return
			}
		}
		pr.Detach()
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemInUse() != 0 {
		t.Fatalf("%d bytes leaked after Detach", dev.MemInUse())
	}
}

type sliceMem []byte

func (s sliceMem) Bytes(p cuda.DevPtr, n int64) []byte { return s[p : int64(p)+n] }

func memOf(b []byte) cuda.Memory { return sliceMem(b) }

func TestAttachRejectsOOM(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	env.Go("p", func(p *sim.Proc) {
		spec := &task.Spec{Name: "huge", InBytes: 64 << 30, OutBytes: 8}
		if _, err := Attach(p, dev, spec, 0); err == nil {
			t.Error("Attach accepted 64 GiB on a 6 GiB card")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.MemInUse() != 0 {
		t.Fatal("failed Attach leaked device memory")
	}
}

func TestAttachRejectsBadKernel(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	env.Go("p", func(p *sim.Proc) {
		spec := &task.Spec{
			Name: "bad", InBytes: 8, OutBytes: 8,
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				return []*cuda.Kernel{{Name: "bad", Grid: cuda.Dim(1), Block: cuda.Dim(4096)}}, nil
			},
		}
		if _, err := Attach(p, dev, spec, 0); err == nil {
			t.Error("Attach accepted an unlaunchable kernel")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesSerializeAcrossProcesses(t *testing.T) {
	// Two direct processes running one cycle each: the second's cycle
	// must start only after the first's whole cycle (Figure 4), with one
	// context switch recorded.
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	const n = 1 << 22
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		env.Go("p", func(p *sim.Proc) {
			pr, err := Attach(p, dev, vecSpec(n), 0)
			if err != nil {
				t.Error(err)
				return
			}
			if err := pr.RunCycle(p); err != nil {
				t.Error(err)
				return
			}
			ends = append(ends, p.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dev.ContextSwitches != 1 {
		t.Fatalf("ContextSwitches = %d, want 1", dev.ContextSwitches)
	}
	arch := dev.Arch()
	cycle := arch.TransferTime(2*n*4, true, false) + arch.TransferTime(n*4, false, false)
	gap := ends[1].Sub(ends[0])
	if gap < cycle {
		t.Fatalf("second cycle finished %v after the first; a full cycle is %v — overlap detected", gap, cycle)
	}
}

func TestRunPhasesSplitsTheCycle(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	const n = 1 << 22
	env.Go("p", func(p *sim.Proc) {
		pr, err := Attach(p, dev, vecSpec(n), 0)
		if err != nil {
			t.Error(err)
			return
		}
		tin, tcomp, tout, err := pr.RunPhases(p)
		if err != nil {
			t.Error(err)
			return
		}
		arch := dev.Arch()
		if want := arch.TransferTime(2*n*4, true, false); tin != want {
			t.Errorf("tin = %v, want %v", tin, want)
		}
		if want := arch.TransferTime(n*4, false, false); tout != want {
			t.Errorf("tout = %v, want %v", tout, want)
		}
		if tcomp <= 0 {
			t.Errorf("tcomp = %v", tcomp)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchCostOverride(t *testing.T) {
	env := sim.NewEnv()
	dev := gpusim.MustNew(env, gpusim.Config{Arch: fermi.TeslaC2070()})
	override := 500 * sim.Millisecond
	var starts [2]sim.Time
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		env.Go("p", func(p *sim.Proc) {
			pr, err := Attach(p, dev, &task.Spec{Name: "t", InBytes: 8, OutBytes: 8}, override)
			if err != nil {
				t.Error(err)
				return
			}
			starts[i] = p.Now()
			if err := pr.RunCycle(p); err != nil {
				t.Error(err)
			}
			ends[i] = p.Now()
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// The second process's cycle includes the 500 ms override switch.
	d1 := ends[1].Sub(ends[0])
	if d1 < 500*sim.Millisecond {
		t.Fatalf("second cycle gap %v, want >= 500ms override switch", d1)
	}
}
