// Package cluster models the multi-node HPC system of the paper's
// Figure 2: compute nodes joined by an interconnection network, each
// node with several CPU cores and (on GPU-equipped nodes) one GPU
// virtualized by a node-local GVM.
//
// Besides node-local virtualization — the paper's contribution — the
// package implements remote GPU access in the style of the paper's
// related work [11] (Duato et al., rCUDA): processes on GPU-less nodes
// reach a GPU node's manager across the interconnect, paying network
// latency on every protocol message and network bandwidth on every data
// transfer. The cluster experiment quantifies the communication overhead
// the paper argues that approach suffers.
package cluster

import (
	"fmt"

	"gpuvirt/internal/fermi"
	"gpuvirt/internal/gpusim"
	"gpuvirt/internal/gvm"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/vgpu"
)

// Interconnect models the system network at the message level.
type Interconnect struct {
	Bandwidth float64      // bytes/s, e.g. 3.2e9 for QDR InfiniBand
	Latency   sim.Duration // one-way message latency
}

// QDRInfiniBand is a 2011-era cluster interconnect (the Tianhe-1A class
// systems the paper cites used proprietary links of similar order).
func QDRInfiniBand() Interconnect {
	return Interconnect{Bandwidth: 3.2e9, Latency: 2 * sim.Microsecond}
}

// GigabitEthernet is the commodity alternative.
func GigabitEthernet() Interconnect {
	return Interconnect{Bandwidth: 118e6, Latency: 30 * sim.Microsecond}
}

// TransferTime returns the time to move n bytes as one message.
func (ic Interconnect) TransferTime(n int64) sim.Duration {
	if n <= 0 {
		return ic.Latency
	}
	return ic.Latency + sim.Duration(float64(n)/ic.Bandwidth*1e9)
}

// Node is one compute node.
type Node struct {
	ID    int
	Cores int
	Dev   *gpusim.Device // nil on GPU-less nodes
	Mgr   *gvm.Manager   // nil on GPU-less nodes
}

// HasGPU reports whether the node hosts a GPU.
func (n *Node) HasGPU() bool { return n.Dev != nil }

// Config describes a cluster.
type Config struct {
	Nodes        int
	CoresPerNode int
	GPUNodes     int // the first GPUNodes nodes carry a GPU + manager
	Arch         fermi.Arch
	Interconnect Interconnect
	Functional   bool
	// Parties is each manager's STR barrier width; 0 means one flush
	// per arriving STR (no batching), which suits mixed local/remote
	// populations whose arrival times differ by network latencies.
	Parties int
}

// Cluster is a set of nodes sharing a simulation environment.
type Cluster struct {
	env   *sim.Env
	ic    Interconnect
	nodes []*Node
}

// New builds the cluster and starts every GPU node's manager.
func New(env *sim.Env, cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 || cfg.GPUNodes < 1 || cfg.GPUNodes > cfg.Nodes {
		return nil, fmt.Errorf("cluster: need 1 <= GPUNodes (%d) <= Nodes (%d)", cfg.GPUNodes, cfg.Nodes)
	}
	if cfg.CoresPerNode < 1 {
		return nil, fmt.Errorf("cluster: CoresPerNode = %d", cfg.CoresPerNode)
	}
	if cfg.Arch.SMs == 0 {
		cfg.Arch = fermi.TeslaC2070()
	}
	if cfg.Interconnect.Bandwidth == 0 {
		cfg.Interconnect = QDRInfiniBand()
	}
	parties := cfg.Parties
	if parties == 0 {
		parties = 1
	}
	c := &Cluster{env: env, ic: cfg.Interconnect}
	for i := 0; i < cfg.Nodes; i++ {
		n := &Node{ID: i, Cores: cfg.CoresPerNode}
		if i < cfg.GPUNodes {
			dev, err := gpusim.New(env, gpusim.Config{Arch: cfg.Arch, Functional: cfg.Functional})
			if err != nil {
				return nil, err
			}
			n.Dev = dev
			n.Mgr = gvm.New(env, gvm.Config{Device: dev, Parties: parties})
			n.Mgr.Start()
		}
		c.nodes = append(c.nodes, n)
	}
	return c, nil
}

// Env returns the cluster's simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// GPUNodeFor returns the GPU node serving processes of node `from`:
// the node itself when it has a GPU, else round-robin over GPU nodes.
func (c *Cluster) GPUNodeFor(from int) *Node {
	if c.nodes[from].HasGPU() {
		return c.nodes[from]
	}
	gpus := 0
	for _, n := range c.nodes {
		if n.HasGPU() {
			gpus++
		}
	}
	return c.nodes[from%gpus]
}

// VGPU is a virtual GPU handle that may be remote: protocol verbs and
// data transfers pay interconnect costs when client and manager live on
// different nodes (the rCUDA-style access of related work [11]).
type VGPU struct {
	inner  *vgpu.VGPU
	ic     Interconnect
	remote bool
	spec   *task.Spec
	// NetworkTime accumulates the virtual time spent on the wire.
	NetworkTime sim.Duration
}

// Connect opens a VGPU for a process on node `from` against the manager
// on node `on` (use GPUNodeFor to pick). Remote connections pay one
// message round trip.
func (c *Cluster) Connect(p *sim.Proc, from, on int, spec *task.Spec) (*VGPU, error) {
	node := c.nodes[on]
	if !node.HasGPU() {
		return nil, fmt.Errorf("cluster: node %d has no GPU", on)
	}
	v := &VGPU{ic: c.ic, remote: from != on, spec: spec}
	v.hop(p, 0) // REQ out
	inner, err := vgpu.Connect(p, node.Mgr, spec)
	if err != nil {
		return nil, err
	}
	v.hop(p, 0) // ACK back
	v.inner = inner
	return v, nil
}

// hop pays one network message carrying n payload bytes (remote only).
func (v *VGPU) hop(p *sim.Proc, n int64) {
	if !v.remote {
		return
	}
	d := v.ic.TransferTime(n)
	p.Sleep(d)
	v.NetworkTime += d
}

// Remote reports whether this handle crosses the interconnect.
func (v *VGPU) Remote() bool { return v.remote }

// SendInput ships the input (over the network for remote handles) and
// issues SND.
func (v *VGPU) SendInput(p *sim.Proc, data []byte) error {
	v.hop(p, v.spec.InBytes) // payload out
	err := v.inner.SendInput(p, data)
	v.hop(p, 0) // ACK back
	return err
}

// Start issues STR (one round trip for remote handles).
func (v *VGPU) Start(p *sim.Proc) error {
	v.hop(p, 0)
	err := v.inner.Start(p)
	v.hop(p, 0)
	return err
}

// Wait polls STP; each poll is a network round trip for remote handles.
func (v *VGPU) Wait(p *sim.Proc) error {
	if !v.remote {
		return v.inner.Wait(p)
	}
	// Remote polling: re-issue STP with the client's backoff, paying two
	// hops per poll. Approximate by charging the hops per poll recorded
	// by the inner handle.
	before := v.inner.Polls
	err := v.inner.Wait(p)
	polls := v.inner.Polls - before
	for i := 0; i < polls*2; i++ {
		v.hop(p, 0)
	}
	return err
}

// ReceiveOutput issues RCV and ships the results back.
func (v *VGPU) ReceiveOutput(p *sim.Proc, buf []byte) error {
	v.hop(p, 0) // RCV out
	err := v.inner.ReceiveOutput(p, buf)
	v.hop(p, v.spec.OutBytes) // payload back
	return err
}

// Release issues RLS.
func (v *VGPU) Release(p *sim.Proc) error {
	v.hop(p, 0)
	err := v.inner.Release(p)
	v.hop(p, 0)
	return err
}

// RunCycle performs one full execution cycle.
func (v *VGPU) RunCycle(p *sim.Proc, in, out []byte) error {
	if err := v.SendInput(p, in); err != nil {
		return err
	}
	if err := v.Start(p); err != nil {
		return err
	}
	if err := v.Wait(p); err != nil {
		return err
	}
	return v.ReceiveOutput(p, out)
}

// JobResult is the outcome of a cluster-wide SPMD job.
type JobResult struct {
	Turnaround  sim.Duration
	PerProcess  []sim.Duration
	RemoteProcs int
	LocalProcs  int
	NetworkTime sim.Duration // summed across remote processes
}

// RunJob launches procsPerNode SPMD processes on every node; processes
// on GPU-less nodes reach a GPU node remotely. All processes run one
// cycle of the given spec. Turnaround counts from the moment every
// manager is ready.
func (c *Cluster) RunJob(procsPerNode int, specFor func(node, rank int) *task.Spec) (JobResult, error) {
	total := procsPerNode * len(c.nodes)
	res := JobResult{PerProcess: make([]sim.Duration, total)}
	errs := make([]error, total)
	idx := 0
	for ni := range c.nodes {
		for r := 0; r < procsPerNode; r++ {
			ni, r, i := ni, r, idx
			idx++
			c.env.Go(fmt.Sprintf("n%d-p%d", ni, r), func(p *sim.Proc) {
				target := c.GPUNodeFor(ni)
				p.Wait(target.Mgr.Ready())
				t0 := p.Now()
				v, err := c.Connect(p, ni, target.ID, specFor(ni, r))
				if err != nil {
					errs[i] = err
					return
				}
				if v.Remote() {
					res.RemoteProcs++
				} else {
					res.LocalProcs++
				}
				if err := v.RunCycle(p, nil, nil); err != nil {
					errs[i] = err
					return
				}
				res.PerProcess[i] = p.Now().Sub(t0)
				res.NetworkTime += v.NetworkTime
				errs[i] = v.Release(p)
			})
		}
	}
	if err := c.env.Run(); err != nil {
		return res, err
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	for _, d := range res.PerProcess {
		if d > res.Turnaround {
			res.Turnaround = d
		}
	}
	return res, nil
}
