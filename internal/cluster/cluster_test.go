package cluster

import (
	"testing"

	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
	"gpuvirt/internal/workloads"
)

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	bad := []Config{
		{Nodes: 0, GPUNodes: 0, CoresPerNode: 4},
		{Nodes: 2, GPUNodes: 0, CoresPerNode: 4},
		{Nodes: 2, GPUNodes: 3, CoresPerNode: 4},
		{Nodes: 2, GPUNodes: 1, CoresPerNode: 0},
	}
	for i, cfg := range bad {
		if _, err := New(env, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInterconnectTransferTime(t *testing.T) {
	ic := Interconnect{Bandwidth: 1e9, Latency: 10 * sim.Microsecond}
	if got := ic.TransferTime(0); got != 10*sim.Microsecond {
		t.Fatalf("latency-only = %v", got)
	}
	if got := ic.TransferTime(1e9); got != sim.Second+10*sim.Microsecond {
		t.Fatalf("1GB = %v", got)
	}
	if QDRInfiniBand().Bandwidth <= GigabitEthernet().Bandwidth {
		t.Fatal("IB should be faster than GigE")
	}
}

func TestGPUNodeForRoundRobin(t *testing.T) {
	env := sim.NewEnv()
	c, err := New(env, Config{Nodes: 4, GPUNodes: 2, CoresPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.GPUNodeFor(0); got.ID != 0 {
		t.Fatalf("local node 0 -> %d", got.ID)
	}
	if got := c.GPUNodeFor(2); got.ID != 0 {
		t.Fatalf("GPU-less node 2 -> %d, want 0", got.ID)
	}
	if got := c.GPUNodeFor(3); got.ID != 1 {
		t.Fatalf("GPU-less node 3 -> %d, want 1", got.ID)
	}
	if !c.Node(0).HasGPU() || c.Node(3).HasGPU() {
		t.Fatal("GPU placement wrong")
	}
}

func jobSpec(w workloads.Workload) func(node, rank int) *task.Spec {
	return func(node, rank int) *task.Spec { return w.Spec(rank) }
}

func TestLocalJobMatchesSingleNode(t *testing.T) {
	// One GPU node, local processes only: no network time.
	env := sim.NewEnv()
	c, err := New(env, Config{Nodes: 1, GPUNodes: 1, CoresPerNode: 4, Parties: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.EP(20, 4)
	res, err := c.RunJob(4, jobSpec(w))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteProcs != 0 || res.LocalProcs != 4 {
		t.Fatalf("remote=%d local=%d", res.RemoteProcs, res.LocalProcs)
	}
	if res.NetworkTime != 0 {
		t.Fatalf("local job spent %v on the network", res.NetworkTime)
	}
	if res.Turnaround <= 0 {
		t.Fatal("no turnaround measured")
	}
}

func TestRemoteAccessPaysNetworkCosts(t *testing.T) {
	// Two nodes, one GPU: node 1's processes go remote. Their cycles
	// must be slower than node 0's by at least the payload transfer time.
	w := workloads.VectorAdd(4_000_000) // 32 MB in, 16 MB out
	run := func(ic Interconnect) JobResult {
		env := sim.NewEnv()
		c, err := New(env, Config{Nodes: 2, GPUNodes: 1, CoresPerNode: 1, Interconnect: ic})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunJob(1, jobSpec(w))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ib := run(QDRInfiniBand())
	if ib.RemoteProcs != 1 || ib.LocalProcs != 1 {
		t.Fatalf("remote=%d local=%d", ib.RemoteProcs, ib.LocalProcs)
	}
	if ib.NetworkTime <= 0 {
		t.Fatal("remote job reports zero network time")
	}
	wire := QDRInfiniBand().TransferTime(32e6) + QDRInfiniBand().TransferTime(16e6)
	if ib.NetworkTime < wire {
		t.Fatalf("network time %v < payload wire time %v", ib.NetworkTime, wire)
	}
	// A slower network hurts more.
	ge := run(GigabitEthernet())
	if ge.NetworkTime <= ib.NetworkTime {
		t.Fatalf("GigE network time %v <= IB %v", ge.NetworkTime, ib.NetworkTime)
	}
	if ge.Turnaround <= ib.Turnaround {
		t.Fatalf("GigE turnaround %v <= IB %v", ge.Turnaround, ib.Turnaround)
	}
}

func TestLocalVirtualizationBeatsRemoteAccess(t *testing.T) {
	// The paper's argument against related work [11]: 8 processes on one
	// GPU node through the local GVM vs 8 processes spread over GPU-less
	// nodes reaching the same GPU remotely.
	w := workloads.VectorAdd(4_000_000)

	envL := sim.NewEnv()
	local, err := New(envL, Config{Nodes: 1, GPUNodes: 1, CoresPerNode: 8, Parties: 8})
	if err != nil {
		t.Fatal(err)
	}
	lres, err := local.RunJob(8, jobSpec(w))
	if err != nil {
		t.Fatal(err)
	}

	envR := sim.NewEnv()
	remote, err := New(envR, Config{Nodes: 9, GPUNodes: 1, CoresPerNode: 1, Interconnect: GigabitEthernet()})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 idles; nodes 1..8 each run one remote process.
	rres, err := remote.RunJob(1, jobSpec(w))
	if err != nil {
		t.Fatal(err)
	}
	if rres.Turnaround <= lres.Turnaround {
		t.Fatalf("remote access (%v) not slower than local virtualization (%v)",
			rres.Turnaround, lres.Turnaround)
	}
}

func TestConnectToGPUlessNodeFails(t *testing.T) {
	env := sim.NewEnv()
	c, err := New(env, Config{Nodes: 2, GPUNodes: 1, CoresPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.VectorAdd(1024)
	var connErr error
	env.Go("p", func(p *sim.Proc) {
		_, connErr = c.Connect(p, 0, 1, w.Spec(0))
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if connErr == nil {
		t.Fatal("Connect to a GPU-less node succeeded")
	}
}

func TestFunctionalClusterJob(t *testing.T) {
	// Real data through a remote VGPU: results still correct.
	env := sim.NewEnv()
	c, err := New(env, Config{Nodes: 2, GPUNodes: 1, CoresPerNode: 1, Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	w := workloads.VectorAdd(2048)
	var checkErr error
	env.Go("remote-proc", func(p *sim.Proc) {
		target := c.GPUNodeFor(1)
		p.Wait(target.Mgr.Ready())
		v, err := c.Connect(p, 1, target.ID, w.Spec(0))
		if err != nil {
			checkErr = err
			return
		}
		spec := w.Spec(0)
		in := make([]byte, spec.InBytes)
		w.Fill(0, in)
		out := make([]byte, spec.OutBytes)
		if err := v.RunCycle(p, in, out); err != nil {
			checkErr = err
			return
		}
		checkErr = w.Check(0, out)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if checkErr != nil {
		t.Fatal(checkErr)
	}
}

func TestClusterAccessors(t *testing.T) {
	env := sim.NewEnv()
	c, err := New(env, Config{Nodes: 2, GPUNodes: 1, CoresPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Env() != env {
		t.Fatal("Env() wrong")
	}
	if c.Nodes() != 2 {
		t.Fatalf("Nodes() = %d", c.Nodes())
	}
}
