package kernels

import (
	"gpuvirt/internal/cuda"
)

// NAS IS (Integer Sort) ranks N uniformly distributed integer keys in
// [0, Bmax) by bucket counting. The GPU version is the classic
// three-kernel pipeline every CUDA sort uses — per-block histograms, an
// exclusive scan of the global histogram, and a scatter pass that places
// each key at its rank — with kernel boundaries providing the global
// synchronization, exactly like the MG/CG ports.
//
// IS extends the paper's evaluation set with another member of the NPB
// family its reference [19] covers; class S is 2^16 keys over 2^11
// buckets.

// IS class parameters (NAS class S and W).
const (
	ISClassSKeys      = 1 << 16
	ISClassSBuckets   = 1 << 11
	ISClassWKeys      = 1 << 20
	ISClassWBuckets   = 1 << 16
	ISThreadsPerBlock = 256
)

// ISKeyGen fills keys with the NAS-style pseudo-random key sequence
// (uniform via the EP linear congruential generator, reduced to the
// bucket range).
func ISKeyGen(keys []int32, buckets int, seed uint64) {
	r := newEPRand(seed)
	for i := range keys {
		keys[i] = int32(r.next() * float64(buckets))
		if keys[i] >= int32(buckets) {
			keys[i] = int32(buckets) - 1
		}
	}
}

// ISHostSort is the host reference: counting sort returning the sorted
// keys.
func ISHostSort(keys []int32, buckets int) []int32 {
	counts := make([]int32, buckets)
	for _, k := range keys {
		counts[k]++
	}
	out := make([]int32, 0, len(keys))
	for b := int32(0); b < int32(buckets); b++ {
		for c := int32(0); c < counts[b]; c++ {
			out = append(out, b)
		}
	}
	return out
}

// ISBuffers is the device layout of one sort.
type ISBuffers struct {
	N          int
	Buckets    int
	GridBlocks int
	Keys       cuda.DevPtr // int32 x N (input)
	Sorted     cuda.DevPtr // int32 x N (output)
	BlockHist  cuda.DevPtr // int32 x GridBlocks x Buckets
	GlobalOff  cuda.DevPtr // int32 x (Buckets+1), exclusive prefix sums
}

// ISBufferBytes returns the scratch bytes (block histograms + offsets)
// the sort needs beyond its key buffers.
func ISBufferBytes(buckets, gridBlocks int) int64 {
	return int64(4*gridBlocks*buckets) + int64(4*(buckets+1))
}

// isStrip returns the key range a block owns.
func isStrip(bc *cuda.BlockCtx, n int) (lo, hi int) {
	blocks := bc.GridDim.Count()
	b := bc.BlockIdx.Flat(bc.GridDim)
	return b * n / blocks, (b + 1) * n / blocks
}

// NewISHistogram builds the per-block histogram kernel.
func NewISHistogram(b ISBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:              "is-histogram",
		Grid:              cuda.Dim(b.GridBlocks),
		Block:             cuda.Dim(ISThreadsPerBlock),
		RegsPerThread:     14,
		SharedMemPerBlock: min(b.Buckets, 12*1024/4) * 4,
		CyclesPerThread:   float64(b.N)/float64(b.GridBlocks*ISThreadsPerBlock)*12 + float64(b.Buckets)/ISThreadsPerBlock*4,
		Args:              []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(ISBuffers)
			keys := cuda.Int32s(bc.Mem, b.Keys, b.N)
			hist := cuda.Int32s(bc.Mem, b.BlockHist, b.GridBlocks*b.Buckets)
			blk := bc.BlockIdx.Flat(bc.GridDim)
			base := blk * b.Buckets
			for i := 0; i < b.Buckets; i++ {
				hist[base+i] = 0
			}
			lo, hi := isStrip(bc, b.N)
			for i := lo; i < hi; i++ {
				hist[base+int(keys[i])]++
			}
		},
	}
}

// NewISScan builds the single-block kernel that reduces the per-block
// histograms into global exclusive bucket offsets and rebases each
// block's histogram to its scatter offsets.
func NewISScan(b ISBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "is-scan",
		Grid:            cuda.Dim(1),
		Block:           cuda.Dim(ISThreadsPerBlock),
		RegsPerThread:   12,
		CyclesPerThread: float64(b.Buckets*b.GridBlocks) / ISThreadsPerBlock * 6,
		SerialOnly:      true, // scans every block's histogram in one pass
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(ISBuffers)
			hist := cuda.Int32s(bc.Mem, b.BlockHist, b.GridBlocks*b.Buckets)
			off := cuda.Int32s(bc.Mem, b.GlobalOff, b.Buckets+1)
			// Global bucket counts.
			var total int32
			for bu := 0; bu < b.Buckets; bu++ {
				off[bu] = total
				for blk := 0; blk < b.GridBlocks; blk++ {
					total += hist[blk*b.Buckets+bu]
				}
			}
			off[b.Buckets] = total
			// Rebase per-block histograms to running scatter offsets:
			// block blk writes bucket bu starting at off[bu] + sum of
			// earlier blocks' counts for bu.
			for bu := 0; bu < b.Buckets; bu++ {
				run := off[bu]
				for blk := 0; blk < b.GridBlocks; blk++ {
					c := hist[blk*b.Buckets+bu]
					hist[blk*b.Buckets+bu] = run
					run += c
				}
			}
		},
	}
}

// NewISScatter builds the rank-and-place kernel: each block walks its
// strip and writes keys to their final positions.
func NewISScatter(b ISBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "is-scatter",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(ISThreadsPerBlock),
		RegsPerThread:   16,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*ISThreadsPerBlock) * 20,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(ISBuffers)
			keys := cuda.Int32s(bc.Mem, b.Keys, b.N)
			sorted := cuda.Int32s(bc.Mem, b.Sorted, b.N)
			hist := cuda.Int32s(bc.Mem, b.BlockHist, b.GridBlocks*b.Buckets)
			blk := bc.BlockIdx.Flat(bc.GridDim)
			base := blk * b.Buckets
			lo, hi := isStrip(bc, b.N)
			for i := lo; i < hi; i++ {
				k := keys[i]
				sorted[hist[base+int(k)]] = k
				hist[base+int(k)]++
			}
		},
	}
}

// BuildISSort returns the kernel sequence of one full sort, repeated
// iterations times (NAS IS re-ranks the keys every iteration).
func BuildISSort(b ISBuffers, iterations int) []*cuda.Kernel {
	var ks []*cuda.Kernel
	for i := 0; i < iterations; i++ {
		ks = append(ks, NewISHistogram(b), NewISScan(b), NewISScatter(b))
	}
	return ks
}
