package kernels

import (
	"math"

	"gpuvirt/internal/cuda"
)

// Electrostatics is the fast molecular electrostatics benchmark from VMD
// (paper Table IV: 100K atoms, Nit = 25, grid 288): direct Coulomb
// summation of atom charges onto a regular 2-D lattice slice, the
// cionize/cuenergy kernel of Stone et al. Each thread owns one lattice
// point and accumulates q_i / r_i over all atoms; the iteration count
// re-evaluates the slice (successive z-planes).

// ESThreadsPerBlock is the lattice points per block (the CUDA kernel uses
// 16x8 thread blocks; 128 threads).
const ESThreadsPerBlock = 128

// ESParams describe the lattice slice.
type ESParams struct {
	GridX, GridY int     // lattice extent (points)
	Spacing      float32 // lattice spacing (Angstrom)
	Z            float32 // slice plane height
}

// NewElectrostatics builds the direct Coulomb summation kernel.
// atoms points to natoms packed float32 quads (x, y, z, q); out points to
// GridX*GridY float32 potentials. nit slices are evaluated, each shifting
// the plane by one spacing in z (results accumulate into out).
//
// Cost model: 9 lane-cycles per atom per lattice point (3 subs, 3 mults,
// 2 adds, rsqrt) as in Stone et al.'s analysis.
func NewElectrostatics(atoms, out cuda.DevPtr, natoms, nit, gridBlocks int, p ESParams) *cuda.Kernel {
	points := p.GridX * p.GridY
	threads := gridBlocks * ESThreadsPerBlock
	perThread := float64(points) / float64(threads)
	const cyclesPerAtom = 9.0
	return &cuda.Kernel{
		Name:              "electrostatics",
		Grid:              cuda.Dim(gridBlocks),
		Block:             cuda.Dim(ESThreadsPerBlock),
		RegsPerThread:     20,
		SharedMemPerBlock: 4 * 1024, // staged atom tile
		CyclesPerThread:   perThread * cyclesPerAtom * float64(natoms) * float64(nit),
		Args:              []any{atoms, out, natoms, nit, p},
		Func:              esBlock,
	}
}

func esBlock(bc *cuda.BlockCtx) {
	natoms := bc.Int(2)
	nit := bc.Int(3)
	p := bc.Arg(4).(ESParams)
	atoms := cuda.Float32s(bc.Mem, bc.Ptr(0), natoms*4)
	points := p.GridX * p.GridY
	out := cuda.Float32s(bc.Mem, bc.Ptr(1), points)
	stride := bc.GridDim.Count() * bc.BlockDim.Count()
	base := bc.GlobalBase()
	for it := 0; it < nit; it++ {
		z := p.Z + float32(it)*p.Spacing
		for t := 0; t < bc.BlockDim.X; t++ {
			for i := base + t; i < points; i += stride {
				gx := float32(i%p.GridX) * p.Spacing
				gy := float32(i/p.GridX) * p.Spacing
				out[i] += esPoint(atoms, natoms, gx, gy, z)
			}
		}
	}
}

// esPoint sums q/r over all atoms for one lattice point.
func esPoint(atoms []float32, natoms int, gx, gy, gz float32) float32 {
	var sum float64
	for a := 0; a < natoms; a++ {
		dx := float64(atoms[4*a] - gx)
		dy := float64(atoms[4*a+1] - gy)
		dz := float64(atoms[4*a+2] - gz)
		r2 := dx*dx + dy*dy + dz*dz
		if r2 < 1e-12 {
			continue // atom exactly on the lattice point
		}
		sum += float64(atoms[4*a+3]) / math.Sqrt(r2)
	}
	return float32(sum)
}

// ElectrostaticsHost evaluates nit slices on the host (reference).
func ElectrostaticsHost(out []float32, atoms []float32, natoms, nit int, p ESParams) {
	for it := 0; it < nit; it++ {
		z := p.Z + float32(it)*p.Spacing
		for i := 0; i < p.GridX*p.GridY; i++ {
			gx := float32(i%p.GridX) * p.Spacing
			gy := float32(i/p.GridX) * p.Spacing
			out[i] += esPoint(atoms, natoms, gx, gy, z)
		}
	}
}
