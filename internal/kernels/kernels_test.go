package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvirt/internal/cuda"
)

// testMem is a bump-allocated fake device memory for functional kernel
// tests (no simulator involved).
type testMem struct {
	data []byte
	next int64
}

func newTestMem(n int64) *testMem { return &testMem{data: make([]byte, n), next: 256} }

func (m *testMem) Bytes(p cuda.DevPtr, n int64) []byte {
	return m.data[p : int64(p)+n : int64(p)+n]
}

func (m *testMem) alloc(n int64) cuda.DevPtr {
	n = (n + 255) / 256 * 256
	p := cuda.DevPtr(m.next)
	m.next += n
	if m.next > int64(len(m.data)) {
		panic("testMem exhausted")
	}
	return p
}

func (m *testMem) putF32(v []float32) cuda.DevPtr {
	p := m.alloc(int64(len(v)) * 4)
	copy(cuda.Float32s(m, p, len(v)), v)
	return p
}

func (m *testMem) putF64(v []float64) cuda.DevPtr {
	p := m.alloc(int64(len(v)) * 8)
	copy(cuda.Float64s(m, p, len(v)), v)
	return p
}

func (m *testMem) putI32(v []int32) cuda.DevPtr {
	p := m.alloc(int64(len(v)) * 4)
	copy(cuda.Int32s(m, p, len(v)), v)
	return p
}

func runKernels(t *testing.T, mem cuda.Memory, ks ...*cuda.Kernel) {
	t.Helper()
	for _, k := range ks {
		if err := k.RunFunctional(mem); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
	}
}

// --- VectorAdd ---

func TestVecAddMatchesHost(t *testing.T) {
	const n = 5000 // not a multiple of the block size: tests the tail guard
	mem := newTestMem(1 << 20)
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = float32(i) * 0.5
		b[i] = float32(n - i)
	}
	pa, pb := mem.putF32(a), mem.putF32(b)
	pc := mem.alloc(n * 4)
	runKernels(t, mem, NewVecAdd(pa, pb, pc, n))
	want := make([]float32, n)
	VecAddHost(want, a, b)
	got := cuda.Float32s(mem, pc, n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("c[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// --- NAS EP ---

func TestEPSkipAhead(t *testing.T) {
	// Jumping to offset k must equal stepping k times.
	seq := newEPRand(0)
	var vals []float64
	for i := 0; i < 100; i++ {
		vals = append(vals, seq.next())
	}
	for _, k := range []uint64{0, 1, 7, 50, 99} {
		r := newEPRand(k)
		if got := r.next(); got != vals[k] {
			t.Fatalf("skip-ahead to %d = %v, want %v", k, got, vals[k])
		}
	}
}

func TestEPUniformsInRange(t *testing.T) {
	r := newEPRand(0)
	for i := 0; i < 10000; i++ {
		v := r.next()
		if v <= 0 || v >= 1 {
			t.Fatalf("uniform %d = %v out of (0,1)", i, v)
		}
	}
}

func TestEPKernelMatchesHost(t *testing.T) {
	const m = 16 // 65536 pairs
	mem := newTestMem(1 << 20)
	out := mem.alloc(int64(4*epResultFloats) * 8)
	k := NewEP(m, 4, out)
	runKernels(t, mem, k)
	got := EPCollect(cuda.Float64s(mem, out, 4*epResultFloats), 4)
	want := EPHost(m)
	if math.Abs(got.Sx-want.Sx) > 1e-9 || math.Abs(got.Sy-want.Sy) > 1e-9 {
		t.Fatalf("sums (%g,%g), want (%g,%g)", got.Sx, got.Sy, want.Sx, want.Sy)
	}
	if got.Q != want.Q {
		t.Fatalf("annulus counts %v, want %v", got.Q, want.Q)
	}
}

func TestEPStatisticalSanity(t *testing.T) {
	res := EPHost(18)
	pairs := res.Pairs()
	total := int64(1) << 18
	// Polar-method acceptance is pi/4 ~ 78.5%.
	frac := float64(pairs) / float64(total)
	if frac < 0.77 || frac < 0 || frac > 0.80 {
		t.Fatalf("acceptance fraction %.4f, want ~0.785", frac)
	}
	// Counts decrease with annulus index (Gaussian tails).
	for i := 1; i < 5; i++ {
		if res.Q[i] >= res.Q[i-1] {
			t.Fatalf("annulus counts not decreasing: %v", res.Q)
		}
	}
	// Means are near zero: |Sx|/pairs small.
	if math.Abs(res.Sx)/float64(pairs) > 0.02 || math.Abs(res.Sy)/float64(pairs) > 0.02 {
		t.Fatalf("means too large: Sx=%g Sy=%g over %d pairs", res.Sx, res.Sy, pairs)
	}
}

func TestEPKernelUnevenDivision(t *testing.T) {
	// 2^10 pairs over 3 blocks x 128 threads: the last thread absorbs the
	// remainder; totals still match the host run.
	const m = 10
	mem := newTestMem(1 << 20)
	out := mem.alloc(int64(3*epResultFloats) * 8)
	runKernels(t, mem, NewEP(m, 3, out))
	got := EPCollect(cuda.Float64s(mem, out, 3*epResultFloats), 3)
	want := EPHost(m)
	if got.Pairs() != want.Pairs() || math.Abs(got.Sx-want.Sx) > 1e-9 {
		t.Fatalf("uneven division: got %v pairs, want %v", got.Pairs(), want.Pairs())
	}
}

// --- MM ---

func TestMMMatchesHost(t *testing.T) {
	const n = 64
	mem := newTestMem(1 << 20)
	a := make([]float32, n*n)
	b := make([]float32, n*n)
	for i := range a {
		a[i] = float32((i*7)%13) / 13
		b[i] = float32((i*5)%11) / 11
	}
	pa, pb := mem.putF32(a), mem.putF32(b)
	pc := mem.alloc(n * n * 4)
	runKernels(t, mem, NewMM(pa, pb, pc, n))
	want := make([]float32, n*n)
	MMHost(want, a, b, n)
	got := cuda.Float32s(mem, pc, n*n)
	for i := range want {
		if !cuda.AlmostEqual(float64(got[i]), float64(want[i]), 1e-4) {
			t.Fatalf("C[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMMRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-tile-multiple size")
		}
	}()
	NewMM(0, 0, 0, 100)
}

// --- Black-Scholes ---

func TestBlackScholesMatchesHost(t *testing.T) {
	const n = 2000
	mem := newTestMem(1 << 20)
	s := make([]float32, n)
	x := make([]float32, n)
	tt := make([]float32, n)
	for i := range s {
		s[i] = 5 + float32(i%100)
		x[i] = 1 + float32(i%50)
		tt[i] = 0.25 + float32(i%40)/40*9.75
	}
	ps, px, pt := mem.putF32(s), mem.putF32(x), mem.putF32(tt)
	pc, pp := mem.alloc(n*4), mem.alloc(n*4)
	runKernels(t, mem, NewBlackScholes(ps, px, pt, pc, pp, n, 2, 4, DefaultBSParams()))
	wc := make([]float32, n)
	wp := make([]float32, n)
	BlackScholesHost(wc, wp, s, x, tt, DefaultBSParams())
	gc := cuda.Float32s(mem, pc, n)
	gp := cuda.Float32s(mem, pp, n)
	for i := range wc {
		if gc[i] != wc[i] || gp[i] != wp[i] {
			t.Fatalf("option %d: call/put (%g,%g), want (%g,%g)", i, gc[i], gp[i], wc[i], wp[i])
		}
	}
}

// Property: put-call parity C - P = S - X e^{-rT} holds for all inputs.
func TestQuickPutCallParity(t *testing.T) {
	p := DefaultBSParams()
	f := func(sRaw, xRaw, tRaw uint16) bool {
		s := 1 + float32(sRaw%10000)/100 // 1..101
		x := 1 + float32(xRaw%10000)/100 // 1..101
		tm := 0.1 + float32(tRaw%100)/10 // 0.1..10.1
		call, put := BlackScholesPrice(s, x, tm, p.Riskfree, p.Volatility)
		lhs := float64(call) - float64(put)
		rhs := float64(s) - float64(x)*math.Exp(-float64(p.Riskfree)*float64(tm))
		return math.Abs(lhs-rhs) < 1e-3*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: option prices respect no-arbitrage bounds.
func TestQuickBSBounds(t *testing.T) {
	p := DefaultBSParams()
	f := func(sRaw, xRaw, tRaw uint16) bool {
		s := 1 + float32(sRaw%10000)/100
		x := 1 + float32(xRaw%10000)/100
		tm := 0.1 + float32(tRaw%100)/10
		call, put := BlackScholesPrice(s, x, tm, p.Riskfree, p.Volatility)
		if call < -1e-4 || put < -1e-4 {
			return false // prices are non-negative
		}
		if float64(call) > float64(s)*(1+1e-6) {
			return false // a call never exceeds the spot
		}
		disc := float64(x) * math.Exp(-float64(p.Riskfree)*float64(tm))
		return float64(put) <= disc*(1+1e-6) // a put never exceeds the discounted strike
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// --- Electrostatics ---

func TestElectrostaticsMatchesHost(t *testing.T) {
	const natoms = 200
	p := ESParams{GridX: 24, GridY: 16, Spacing: 0.5, Z: 1.0}
	atoms := make([]float32, natoms*4)
	for i := 0; i < natoms; i++ {
		atoms[4*i] = float32(i%17) * 0.7
		atoms[4*i+1] = float32(i%13) * 0.6
		atoms[4*i+2] = float32(i%7) * 0.4
		atoms[4*i+3] = float32(i%3) - 1 // charges -1, 0, +1
	}
	mem := newTestMem(1 << 20)
	pa := mem.putF32(atoms)
	points := p.GridX * p.GridY
	po := mem.alloc(int64(points) * 4)
	runKernels(t, mem, NewElectrostatics(pa, po, natoms, 3, 3, p))
	want := make([]float32, points)
	ElectrostaticsHost(want, atoms, natoms, 3, p)
	got := cuda.Float32s(mem, po, points)
	for i := range want {
		if !cuda.AlmostEqual(float64(got[i]), float64(want[i]), 1e-5) {
			t.Fatalf("potential[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// --- NAS MG ---

func TestMGKernelsMatchHostReference(t *testing.T) {
	const n, levels, iters = 16, 3, 3
	mem := newTestMem(64 << 20)
	st := &MGState{}
	edge := n
	lv := make([]MGLevel, levels)
	for l := levels - 1; l >= 0; l-- {
		sz := int64(edge*edge*edge) * 8
		lv[l] = MGLevel{N: edge, U: mem.alloc(sz), R: mem.alloc(sz), S: mem.alloc(sz)}
		edge /= 2
	}
	st.Levels = lv
	v := make([]float64, n*n*n)
	MGMakeRHS(v, n, 42)
	st.V = mem.putF64(v)
	st.NormP = mem.alloc(int64(mgGridBlocks(n)) * 8)

	// Zero the finest solution, then run iterations of the kernel build.
	runKernels(t, mem, NewMGZero(st.Finest().U, n))
	var norms []float64
	for it := 0; it < iters; it++ {
		runKernels(t, mem, BuildMGIteration(st)...)
		parts := cuda.Float64s(mem, st.NormP, mgGridBlocks(n))
		var sum float64
		for _, x := range parts {
			sum += x
		}
		norms = append(norms, math.Sqrt(sum/float64(n*n*n)))
	}

	uHost := make([]float64, n*n*n)
	wantNorms := MGHostIterate(uHost, v, n, levels, iters)
	for i := range norms {
		if !cuda.AlmostEqual(norms[i], wantNorms[i], 1e-10) {
			t.Fatalf("iteration %d: device norm %g, host norm %g", i, norms[i], wantNorms[i])
		}
	}
	// Multigrid must actually converge.
	if norms[iters-1] >= norms[0]*0.5 {
		t.Fatalf("MG not converging: norms %v", norms)
	}
	// Device solution equals host solution.
	got := cuda.Float64s(mem, st.Finest().U, n*n*n)
	for i := range uHost {
		if !cuda.AlmostEqual(got[i], uHost[i], 1e-10) {
			t.Fatalf("u[%d] = %g, want %g", i, got[i], uHost[i])
		}
	}
}

func TestMGRestrictionPreservesConstants(t *testing.T) {
	// Full weighting of a constant field is the same constant.
	const nf = 8
	mem := newTestMem(1 << 20)
	rf := make([]float64, nf*nf*nf)
	for i := range rf {
		rf[i] = 3.25
	}
	prf := mem.putF64(rf)
	nc := nf / 2
	prc := mem.alloc(int64(nc*nc*nc) * 8)
	runKernels(t, mem, NewMGRprj3(prf, nf, prc))
	for i, v := range cuda.Float64s(mem, prc, nc*nc*nc) {
		if !cuda.AlmostEqual(v, 3.25, 1e-12) {
			t.Fatalf("coarse[%d] = %g, want 3.25", i, v)
		}
	}
}

func TestMGInterpolationPreservesConstants(t *testing.T) {
	const nc = 4
	mem := newTestMem(1 << 20)
	uc := make([]float64, nc*nc*nc)
	for i := range uc {
		uc[i] = -1.5
	}
	puc := mem.putF64(uc)
	nf := nc * 2
	puf := mem.alloc(int64(nf*nf*nf) * 8)
	runKernels(t, mem, NewMGInterp(puc, nc, puf))
	for i, v := range cuda.Float64s(mem, puf, nf*nf*nf) {
		if !cuda.AlmostEqual(v, -1.5, 1e-12) {
			t.Fatalf("fine[%d] = %g, want -1.5", i, v)
		}
	}
}

// --- NAS CG ---

func TestCGMatrixIsSymmetricSPD(t *testing.T) {
	m := MakeCGMatrix(200, 5, 10, 7)
	// Symmetry: A[i][j] == A[j][i] for all stored entries.
	get := func(i, j int) float64 {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == j {
				return m.Val[k]
			}
		}
		return 0
	}
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := int(m.Col[k])
			if get(j, i) != m.Val[k] {
				t.Fatalf("A[%d][%d]=%g but A[%d][%d]=%g", i, j, m.Val[k], j, i, get(j, i))
			}
		}
	}
	// Diagonal dominance (implies SPD for symmetric matrices).
	for i := 0; i < m.N; i++ {
		var diag, off float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.Col[k]) == i {
				diag = m.Val[k]
			} else {
				off += math.Abs(m.Val[k])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: diag=%g off=%g", i, diag, off)
		}
	}
}

func TestCGHostSolveConverges(t *testing.T) {
	m := MakeCGMatrix(300, 6, 10, 11)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = 1
	}
	_, r5 := CGHostSolve(m, x, 5)
	_, r25 := CGHostSolve(m, x, 25)
	if r25 >= r5 {
		t.Fatalf("CG residual did not decrease: %g -> %g", r5, r25)
	}
	if r25 > 1e-8*math.Sqrt(float64(m.N)) {
		t.Fatalf("CG residual after 25 steps too large: %g", r25)
	}
}

func TestCGKernelsMatchHostSolve(t *testing.T) {
	const n, gridBlocks, steps = 256, 8, 12
	m := MakeCGMatrix(n, 5, 10, 3)
	mem := newTestMem(64 << 20)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%5)/7
	}
	b := CGBuffers{
		N:          n,
		GridBlocks: gridBlocks,
		RowPtr:     mem.putI32(m.RowPtr),
		Col:        mem.putI32(m.Col),
		Val:        mem.putF64(m.Val),
		X:          mem.putF64(x),
		Z:          mem.alloc(n * 8),
		R:          mem.alloc(n * 8),
		P:          mem.alloc(n * 8),
		Q:          mem.alloc(n * 8),
		Partial:    mem.alloc(gridBlocks * 8),
		Scalars:    mem.alloc(cgScalarCount * 8),
	}
	runKernels(t, mem, BuildCGSolve(b, m.NNZ(), steps)...)
	want, _ := CGHostSolve(m, x, steps)
	got := cuda.Float64s(mem, b.Z, n)
	for i := range want {
		if !cuda.AlmostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("z[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCGHostBenchmarkStable(t *testing.T) {
	m := MakeCGMatrix(200, 5, 10, 13)
	z1 := CGHostBenchmark(m, 5, 10)
	z2 := CGHostBenchmark(m, 15, 10)
	// The power iteration converges: later estimate close to earlier one.
	if math.Abs(z1-z2) > 0.05*math.Abs(z2) {
		t.Fatalf("zeta not converging: %g vs %g", z1, z2)
	}
	if z2 <= 10 {
		t.Fatalf("zeta = %g, must exceed the shift", z2)
	}
}

func TestCGBufferBytesPositive(t *testing.T) {
	m := MakeCGMatrix(100, 5, 10, 1)
	if CGBufferBytes(m, 8) <= 0 {
		t.Fatal("CGBufferBytes not positive")
	}
	if MGBufferBytes(32, 4) <= 0 {
		t.Fatal("MGBufferBytes not positive")
	}
}

// TestEPAnnulusDistribution validates EP's Gaussian tallies against the
// analytic distribution: for independent standard normals X, Y the
// probability of annulus l is (2*Phi(l+1)-1)^2 - (2*Phi(l)-1)^2.
func TestEPAnnulusDistribution(t *testing.T) {
	m := 18
	if !testing.Short() {
		m = 21 // 2M pairs: tight confidence intervals
	}
	res := EPHost(m)
	pairs := float64(res.Pairs())
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	square := func(l float64) float64 {
		c := 2*phi(l) - 1
		return c * c
	}
	for l := 0; l < 4; l++ {
		want := square(float64(l+1)) - square(float64(l))
		got := float64(res.Q[l]) / pairs
		// 5-sigma binomial tolerance.
		sigma := math.Sqrt(want * (1 - want) / pairs)
		if math.Abs(got-want) > 5*sigma+1e-9 {
			t.Errorf("annulus %d: fraction %.6f, want %.6f +/- %.2g", l, got, want, 5*sigma)
		}
	}
}

// TestEPLargerClassParallelEqualsHost exercises the block decomposition
// at a bigger class (1M pairs across an 8-block grid).
func TestEPLargerClassParallelEqualsHost(t *testing.T) {
	if testing.Short() {
		t.Skip("large EP class skipped in -short mode")
	}
	const m = 20
	mem := newTestMem(1 << 20)
	out := mem.alloc(int64(8*epResultFloats) * 8)
	runKernels(t, mem, NewEP(m, 8, out))
	got := EPCollect(cuda.Float64s(mem, out, 8*epResultFloats), 8)
	want := EPHost(m)
	if got.Q != want.Q || math.Abs(got.Sx-want.Sx) > 1e-8 || math.Abs(got.Sy-want.Sy) > 1e-8 {
		t.Fatalf("parallel tally diverges: got (%.10g, %.10g) %v, want (%.10g, %.10g) %v",
			got.Sx, got.Sy, got.Q, want.Sx, want.Sy, want.Q)
	}
}
