package kernels

import (
	"math"

	"gpuvirt/internal/cuda"
)

// NAS EP (Embarrassingly Parallel) generates 2^M pairs of uniform
// pseudo-random numbers with the NAS linear congruential generator
// (a = 5^13, modulo 2^46), converts accepted pairs to independent
// Gaussians with the Marsaglia polar method, and tallies them by the
// annulus l = floor(max(|X|,|Y|)). The paper runs class B (M = 30) with a
// 4-block grid.

// EP generator constants from the NPB specification.
const (
	epA    = 1220703125 // 5^13
	epSeed = 271828183
	epMod  = 1 << 46
	epMask = epMod - 1
	// EPBins is the number of annulus counters (NAS uses 10).
	EPBins = 10
)

// epMul multiplies two LCG values modulo 2^46. Native uint64
// multiplication wraps modulo 2^64, and 2^46 divides 2^64, so the low 46
// bits of the wrapped product are exact — no 23-bit splitting (the NAS
// Fortran vranlc scheme, needed there for float arithmetic) is required.
func epMul(a, b uint64) uint64 {
	return (a * b) & epMask
}

// epPow returns a^n mod 2^46 by binary exponentiation; it implements the
// LCG skip-ahead that lets each thread jump to its own subsequence.
func epPow(a uint64, n uint64) uint64 {
	r := uint64(1)
	base := a & epMask
	for n > 0 {
		if n&1 == 1 {
			r = epMul(r, base)
		}
		base = epMul(base, base)
		n >>= 1
	}
	return r
}

// epRand is the NAS LCG positioned at an arbitrary offset.
type epRand struct{ x uint64 }

// newEPRand returns the generator positioned so its first output is
// random number index `offset` of the canonical EP stream.
func newEPRand(offset uint64) epRand {
	return epRand{x: epMul(epSeed, epPow(epA, offset))}
}

// next returns the next uniform in (0,1).
func (r *epRand) next() float64 {
	r.x = epMul(r.x, epA)
	return float64(r.x) / float64(epMod)
}

// EPResult is the EP benchmark tally.
type EPResult struct {
	Sx, Sy float64
	Q      [EPBins]int64
}

// Pairs returns the number of accepted Gaussian pairs.
func (r EPResult) Pairs() int64 {
	var n int64
	for _, q := range r.Q {
		n += q
	}
	return n
}

// Add accumulates another tally into r.
func (r *EPResult) Add(o EPResult) {
	r.Sx += o.Sx
	r.Sy += o.Sy
	for i := range r.Q {
		r.Q[i] += o.Q[i]
	}
}

// epChunk runs the EP tally for pairs [lo, hi) of the canonical stream.
func epChunk(lo, hi uint64) EPResult {
	var res EPResult
	rng := newEPRand(2 * lo)
	for i := lo; i < hi; i++ {
		x := 2*rng.next() - 1
		y := 2*rng.next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*f, y*f
		res.Sx += gx
		res.Sy += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l >= EPBins {
			l = EPBins - 1
		}
		res.Q[l]++
	}
	return res
}

// EPHost runs the whole benchmark sequentially (the host reference).
func EPHost(m int) EPResult {
	return epChunk(0, uint64(1)<<uint(m))
}

// EPThreadsPerBlock is the per-block thread count of the GPU version; the
// paper's grid size of 4 with class B means each thread processes ~2^21
// pairs.
const EPThreadsPerBlock = 128

// NewEP builds the EP kernel for 2^m pairs on a gridBlocks-block grid.
// out points to device memory holding one EPResult-sized partial tally
// per block, laid out as [Sx float64, Sy float64, Q [EPBins]float64...]
// stored as float64 for simplicity (12 float64 = 96 bytes per block).
//
// The cost model is calibrated against the paper's Table II: class B
// (M=30) on a 4-block grid computes for ~8951 ms on the C2070.
func NewEP(m int, gridBlocks int, out cuda.DevPtr) *cuda.Kernel {
	pairs := uint64(1) << uint(m)
	threads := uint64(gridBlocks * EPThreadsPerBlock)
	perThread := float64(pairs) / float64(threads)
	// ~223 SP-lane cycles per pair: RNG updates, polar rejection, the
	// occasional log/sqrt, and the tally.
	const cyclesPerPair = 223.0
	return &cuda.Kernel{
		Name:              "nas-ep",
		Grid:              cuda.Dim(gridBlocks),
		Block:             cuda.Dim(EPThreadsPerBlock),
		RegsPerThread:     24,
		SharedMemPerBlock: epResultFloats * 8,
		CyclesPerThread:   perThread * cyclesPerPair,
		Args:              []any{out, m},
		Func:              epBlock,
	}
}

// epResultFloats is the per-block tally size in float64s.
const epResultFloats = 2 + EPBins

func epBlock(bc *cuda.BlockCtx) {
	m := bc.Int(1)
	pairs := uint64(1) << uint(m)
	blocks := uint64(bc.GridDim.Count())
	threadsTotal := blocks * uint64(bc.BlockDim.Count())
	per := pairs / threadsTotal // callers size grids so this divides evenly
	out := cuda.Float64s(bc.Mem, bc.Ptr(0), bc.GridDim.Count()*epResultFloats)

	var tally EPResult
	blockIdx := uint64(bc.BlockIdx.Flat(bc.GridDim))
	for t := uint64(0); t < uint64(bc.BlockDim.Count()); t++ {
		tid := blockIdx*uint64(bc.BlockDim.Count()) + t
		lo := tid * per
		hi := lo + per
		if tid == threadsTotal-1 {
			hi = pairs // last thread absorbs the remainder
		}
		tally.Add(epChunk(lo, hi))
	}
	base := int(blockIdx) * epResultFloats
	out[base] = tally.Sx
	out[base+1] = tally.Sy
	for i, q := range tally.Q {
		out[base+2+i] = float64(q)
	}
}

// EPCollect reads the per-block tallies written by the kernel from host
// memory (after the D2H copy) and combines them.
func EPCollect(tallies []float64, gridBlocks int) EPResult {
	var res EPResult
	for b := 0; b < gridBlocks; b++ {
		base := b * epResultFloats
		res.Sx += tallies[base]
		res.Sy += tallies[base+1]
		for i := 0; i < EPBins; i++ {
			res.Q[i] += int64(tallies[base+2+i])
		}
	}
	return res
}
