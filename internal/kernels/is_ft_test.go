package kernels

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"

	"gpuvirt/internal/cuda"
)

// --- NAS IS ---

func isSetup(mem *testMem, n, buckets, gridBlocks int, seed uint64) (ISBuffers, []int32) {
	keys := make([]int32, n)
	ISKeyGen(keys, buckets, seed)
	b := ISBuffers{
		N:          n,
		Buckets:    buckets,
		GridBlocks: gridBlocks,
		Keys:       mem.putI32(keys),
		Sorted:     mem.alloc(int64(4 * n)),
		BlockHist:  mem.alloc(int64(4 * gridBlocks * buckets)),
		GlobalOff:  mem.alloc(int64(4 * (buckets + 1))),
	}
	return b, keys
}

func TestISSortsCorrectly(t *testing.T) {
	const n, buckets, grid = 10000, 128, 7
	mem := newTestMem(4 << 20)
	b, keys := isSetup(mem, n, buckets, grid, 42)
	runKernels(t, mem, BuildISSort(b, 1)...)
	got := cuda.Int32s(mem, b.Sorted, n)
	want := ISHostSort(keys, buckets)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestISGlobalOffsetsAreExclusivePrefixSums(t *testing.T) {
	const n, buckets, grid = 4096, 64, 4
	mem := newTestMem(4 << 20)
	b, keys := isSetup(mem, n, buckets, grid, 7)
	runKernels(t, mem, NewISHistogram(b), NewISScan(b))
	off := cuda.Int32s(mem, b.GlobalOff, buckets+1)
	counts := make([]int32, buckets)
	for _, k := range keys {
		counts[k]++
	}
	var run int32
	for bu := 0; bu < buckets; bu++ {
		if off[bu] != run {
			t.Fatalf("off[%d] = %d, want %d", bu, off[bu], run)
		}
		run += counts[bu]
	}
	if off[buckets] != int32(n) {
		t.Fatalf("off[end] = %d, want %d", off[buckets], n)
	}
}

func TestISRepeatedIterationsIdempotent(t *testing.T) {
	const n, buckets, grid = 2048, 32, 3
	mem := newTestMem(4 << 20)
	b, keys := isSetup(mem, n, buckets, grid, 3)
	runKernels(t, mem, BuildISSort(b, 3)...)
	got := cuda.Int32s(mem, b.Sorted, n)
	want := ISHostSort(keys, buckets)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after 3 iterations: sorted[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Property: the GPU sort output is sorted and a permutation of the input
// for arbitrary key sets and launch grids.
func TestQuickISSortIsPermutation(t *testing.T) {
	f := func(seed uint64, gridRaw uint8) bool {
		const n, buckets = 3000, 61 // non-power-of-two bucket count
		grid := int(gridRaw%7) + 1
		mem := newTestMem(4 << 20)
		b, keys := isSetup(mem, n, buckets, grid, seed)
		for _, k := range BuildISSort(b, 1) {
			if err := k.RunFunctional(mem); err != nil {
				return false
			}
		}
		got := cuda.Int32s(mem, b.Sorted, n)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		var inCount, outCount [buckets]int32
		for i := 0; i < n; i++ {
			inCount[keys[i]]++
			outCount[got[i]]++
		}
		return inCount == outCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestISKeyGenInRange(t *testing.T) {
	keys := make([]int32, 10000)
	ISKeyGen(keys, 1<<11, 1)
	seen := make(map[int32]bool)
	for _, k := range keys {
		if k < 0 || k >= 1<<11 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 1000 {
		t.Fatalf("only %d distinct keys in 10000 draws", len(seen))
	}
	if ISBufferBytes(1<<11, 8) <= 0 {
		t.Fatal("ISBufferBytes not positive")
	}
}

// --- NAS FT ---

func TestFTLineMatchesNaiveDFT(t *testing.T) {
	const n = 16
	v := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		v[2*i] = math.Sin(float64(i)*0.7) + 0.3
		v[2*i+1] = math.Cos(float64(i) * 1.3)
	}
	in := make([]complex128, n)
	for i := range in {
		in[i] = complex(v[2*i], v[2*i+1])
	}
	ftLine(v, 0, 1, n, -1)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += in[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		got := complex(v[2*k], v[2*k+1])
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", k, got, want)
		}
	}
}

func TestFTLineStrided(t *testing.T) {
	// A strided line inside a larger array transforms identically to a
	// contiguous one.
	const n = 8
	const stride = 5
	flat := make([]float64, 2*n)
	strided := make([]float64, 2*n*stride)
	for i := 0; i < n; i++ {
		re, im := float64(i)*0.25, float64(n-i)*0.5
		flat[2*i], flat[2*i+1] = re, im
		strided[2*(i*stride)], strided[2*(i*stride)+1] = re, im
	}
	ftLine(flat, 0, 1, n, -1)
	ftLine(strided, 0, stride, n, -1)
	for i := 0; i < n; i++ {
		if math.Abs(flat[2*i]-strided[2*(i*stride)]) > 1e-12 ||
			math.Abs(flat[2*i+1]-strided[2*(i*stride)+1]) > 1e-12 {
			t.Fatalf("strided transform diverges at %d", i)
		}
	}
}

func TestFTForwardInverseIdentity(t *testing.T) {
	const nx, ny, nz = 8, 4, 16
	n := nx * ny * nz
	data := make([]float64, 2*n)
	FTMakeInput(data, 99)
	orig := append([]float64(nil), data...)
	for dim := 0; dim < 3; dim++ {
		lines, length, baseOf, stride := ftDims(nx, ny, nz, dim)
		for l := 0; l < lines; l++ {
			ftLine(data, baseOf(l), stride, length, -1)
		}
	}
	for dim := 0; dim < 3; dim++ {
		lines, length, baseOf, stride := ftDims(nx, ny, nz, dim)
		for l := 0; l < lines; l++ {
			ftLine(data, baseOf(l), stride, length, +1)
		}
	}
	scale := 1.0 / float64(n)
	for i := range data {
		if math.Abs(data[i]*scale-orig[i]) > 1e-10 {
			t.Fatalf("round trip diverges at %d: %g vs %g", i, data[i]*scale, orig[i])
		}
	}
}

func TestFTKernelsMatchHostReference(t *testing.T) {
	const edge, iters, grid = 16, 3, 6
	n := edge * edge * edge
	mem := newTestMem(64 << 20)
	data := make([]float64, 2*n)
	FTMakeInput(data, 20110711)
	hostData := append([]float64(nil), data...)

	b := FTBuffers{
		NX: edge, NY: edge, NZ: edge,
		GridBlocks: grid,
		Freq:       mem.putF64(data),
		Work:       mem.alloc(int64(16 * n)),
		Checksums:  mem.alloc(int64(16 * iters)),
	}
	runKernels(t, mem, BuildFTBenchmark(b, iters)...)
	got := cuda.Float64s(mem, b.Checksums, 2*iters)
	want := FTHostReference(hostData, edge, edge, edge, iters)
	for i := range want {
		if !cuda.AlmostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("checksum[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Checksums must differ across iterations (the field evolves).
	if got[0] == got[2] && got[1] == got[3] {
		t.Fatal("checksums identical across iterations")
	}
}

func TestFTEvolveFactorProperties(t *testing.T) {
	// DC mode is unchanged; all factors in (0, 1]; symmetric in +/-k.
	if f := ftEvolveFactor(0, 0, 0, 8, 8, 8); f != 1 {
		t.Fatalf("DC factor = %g", f)
	}
	for x := 0; x < 8; x++ {
		f := ftEvolveFactor(x, 3, 5, 8, 8, 8)
		if f <= 0 || f > 1 {
			t.Fatalf("factor(%d) = %g out of (0,1]", x, f)
		}
	}
	if ftEvolveFactor(1, 0, 0, 8, 8, 8) != ftEvolveFactor(7, 0, 0, 8, 8, 8) {
		t.Fatal("factors not symmetric about Nyquist")
	}
}
