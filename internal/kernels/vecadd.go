// Package kernels implements the GPU kernels used by the paper's
// evaluation: the two micro-benchmarks (large vector addition and the NAS
// EP kernel) and the five application benchmarks of Table IV (MM, NAS MG,
// Black-Scholes, NAS CG, electrostatics). Every kernel carries both a
// functional body — it really computes its result, validated against host
// references in the tests — and a calibrated cost model for the timing
// engine.
//
// Write-disjointness audit (cuda.Executor contract): every kernel here
// either writes a strip, tile or slab owned exclusively by one block
// (vecadd, mm, blackscholes, electrostatics, ep, the CG vector steps and
// per-block partial dots, is-histogram, is-scatter, the FT passes and the
// MG stencils — which write an array they do not read within the same
// launch) and is safe under parallel block execution, or performs a
// cross-block reduction on a single-block grid and is tagged SerialOnly
// (cg reduce steps, cg-outer-reduce, is-scan, ft-checksum). The
// determinism test in exec_determinism_test.go holds every functional
// kernel to bit-identical serial/parallel results.
package kernels

import "gpuvirt/internal/cuda"

// VecAddThreadsPerBlock is the launch shape of the vector-add kernel; the
// paper's 50M-element instance uses a 50K-block grid, i.e. ~1K threads
// per block.
const VecAddThreadsPerBlock = 1024

// NewVecAdd builds the c = a + b single-precision kernel over n elements.
// a, b and c are device pointers to n float32 each.
//
// The cost model is calibrated so the paper's 50M-element instance takes
// ~0.04 ms (Table II Tcomp): the kernel is completely I/O-bound and its
// on-GPU time is negligible next to its PCIe transfers, which is the
// property the paper's "I/O-intensive" classification relies on.
func NewVecAdd(a, b, c cuda.DevPtr, n int) *cuda.Kernel {
	grid := (n + VecAddThreadsPerBlock - 1) / VecAddThreadsPerBlock
	return &cuda.Kernel{
		Name:            "vecadd",
		Grid:            cuda.Dim(grid),
		Block:           cuda.Dim(VecAddThreadsPerBlock),
		RegsPerThread:   8,
		CyclesPerThread: 0.4,
		Args:            []any{a, b, c, n},
		Func:            vecAddBlock,
	}
}

func vecAddBlock(bc *cuda.BlockCtx) {
	n := bc.Int(3)
	av := cuda.Float32s(bc.Mem, bc.Ptr(0), n)
	bv := cuda.Float32s(bc.Mem, bc.Ptr(1), n)
	cv := cuda.Float32s(bc.Mem, bc.Ptr(2), n)
	base := bc.GlobalBase()
	for t := 0; t < bc.BlockDim.X; t++ {
		if i := base + t; i < n {
			cv[i] = av[i] + bv[i]
		}
	}
}

// VecAddHost is the host reference: dst[i] = a[i] + b[i].
func VecAddHost(dst, a, b []float32) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}
