package kernels

import (
	"math"

	"gpuvirt/internal/cuda"
)

// NAS FT solves a 3-D diffusion PDE spectrally: one forward 3-D FFT of
// the initial state, then per iteration an evolution (frequency-space
// multiply), an inverse 3-D FFT and a checksum. The GPU version launches
// one kernel per 1-D FFT pass (x, y, z), plus evolve, copy and checksum
// kernels — the heaviest kernel pipeline in the suite.
//
// Data layout: complex values as interleaved (re, im) float64 pairs in a
// row-major nx x ny x nz grid. Grid edges must be powers of two
// (radix-2 Stockham-style in-place transforms with bit reversal).
//
// FT extends the paper's evaluation set with another member of the NPB
// family its reference [19] covers; class S is 64x64x64 with 6
// iterations.

// FT class parameters.
const (
	FTClassSEdge      = 64
	FTClassSIters     = 6
	FTThreadsPerBlock = 64
	ftAlpha           = 1e-6
)

// ftLine transforms one complex line of length n with stride `stride`
// starting at base (indices into the interleaved float64 array are
// 2*(base + i*stride)). sign is -1 for forward, +1 for inverse (NAS
// convention); no normalization is applied here.
func ftLine(v []float64, base, stride, n, sign int) {
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a, b := 2*(base+i*stride), 2*(base+j*stride)
			v[a], v[b] = v[b], v[a]
			v[a+1], v[b+1] = v[b+1], v[a+1]
		}
		m := n >> 1
		for ; m >= 1 && j&m != 0; m >>= 1 {
			j ^= m
		}
		j |= m
	}
	// Iterative radix-2 butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := float64(sign) * 2 * math.Pi / float64(size)
		wr0, wi0 := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			wr, wi := 1.0, 0.0
			for k := 0; k < half; k++ {
				a := 2 * (base + (start+k)*stride)
				b := 2 * (base + (start+k+half)*stride)
				tr := v[b]*wr - v[b+1]*wi
				ti := v[b]*wi + v[b+1]*wr
				v[b] = v[a] - tr
				v[b+1] = v[a+1] - ti
				v[a] += tr
				v[a+1] += ti
				wr, wi = wr*wr0-wi*wi0, wr*wi0+wi*wr0
			}
		}
	}
}

// ftDims returns the line count, base-index and stride functions for a
// pass along dim (0=x, 1=y, 2=z) of an nx x ny x nz grid with index
// ((z*ny)+y)*nx + x.
func ftDims(nx, ny, nz, dim int) (lines, length int, baseOf func(line int) int, stride int) {
	switch dim {
	case 0:
		return ny * nz, nx, func(l int) int { return l * nx }, 1
	case 1:
		return nx * nz, ny, func(l int) int {
			z, x := l/nx, l%nx
			return z*ny*nx + x
		}, nx
	default:
		return nx * ny, nz, func(l int) int { return l }, nx * ny
	}
}

// FTBuffers is the device layout of the FT benchmark.
type FTBuffers struct {
	NX, NY, NZ int
	GridBlocks int
	Freq       cuda.DevPtr // frequency-space state u~ (2*N float64)
	Work       cuda.DevPtr // scratch for the inverse transforms
	Checksums  cuda.DevPtr // 2 float64 per iteration
}

// Points returns the grid point count.
func (b FTBuffers) Points() int { return b.NX * b.NY * b.NZ }

// NewFTPass builds one 1-D FFT pass over every line of dimension dim.
// sign: -1 forward, +1 inverse.
func NewFTPass(b FTBuffers, buf cuda.DevPtr, dim, sign int) *cuda.Kernel {
	lines, length, _, _ := ftDims(b.NX, b.NY, b.NZ, dim)
	logN := math.Log2(float64(length))
	return &cuda.Kernel{
		Name:              "ft-pass",
		Grid:              cuda.Dim(b.GridBlocks),
		Block:             cuda.Dim(FTThreadsPerBlock),
		RegsPerThread:     30,
		CyclesPerThread:   float64(lines*length) * logN * 8 / float64(b.GridBlocks*FTThreadsPerBlock),
		MemBytesPerThread: float64(lines*length) * 32 / float64(b.GridBlocks*FTThreadsPerBlock),
		Args:              []any{b, buf, dim, sign},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(FTBuffers)
			buf := bc.Ptr(1)
			dim, sign := bc.Int(2), bc.Int(3)
			lines, length, baseOf, stride := ftDims(b.NX, b.NY, b.NZ, dim)
			v := cuda.Float64s(bc.Mem, buf, 2*b.Points())
			blocks := bc.GridDim.Count()
			blk := bc.BlockIdx.Flat(bc.GridDim)
			lo, hi := blk*lines/blocks, (blk+1)*lines/blocks
			for l := lo; l < hi; l++ {
				ftLine(v, baseOf(l), stride, length, sign)
			}
		},
	}
}

// NewFTEvolve advances the frequency-space state by one time step:
// u~ *= exp(-4 alpha pi^2 |k|^2), with wavenumbers folded about the
// Nyquist frequency as in NAS FT.
func NewFTEvolve(b FTBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "ft-evolve",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(FTThreadsPerBlock),
		RegsPerThread:   22,
		CyclesPerThread: float64(b.Points()) * 14 / float64(b.GridBlocks*FTThreadsPerBlock),
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(FTBuffers)
			v := cuda.Float64s(bc.Mem, b.Freq, 2*b.Points())
			blocks := bc.GridDim.Count()
			blk := bc.BlockIdx.Flat(bc.GridDim)
			n := b.Points()
			lo, hi := blk*n/blocks, (blk+1)*n/blocks
			for i := lo; i < hi; i++ {
				x := i % b.NX
				y := (i / b.NX) % b.NY
				z := i / (b.NX * b.NY)
				f := ftEvolveFactor(x, y, z, b.NX, b.NY, b.NZ)
				v[2*i] *= f
				v[2*i+1] *= f
			}
		},
	}
}

func ftFold(k, n int) int {
	if k > n/2 {
		return k - n
	}
	return k
}

func ftEvolveFactor(x, y, z, nx, ny, nz int) float64 {
	kx := float64(ftFold(x, nx))
	ky := float64(ftFold(y, ny))
	kz := float64(ftFold(z, nz))
	return math.Exp(-4 * ftAlpha * math.Pi * math.Pi * (kx*kx + ky*ky + kz*kz))
}

// NewFTCopy copies the frequency state into the work buffer before the
// inverse transform (the state must survive for the next iteration).
func NewFTCopy(b FTBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:              "ft-copy",
		Grid:              cuda.Dim(b.GridBlocks),
		Block:             cuda.Dim(FTThreadsPerBlock),
		RegsPerThread:     10,
		CyclesPerThread:   float64(b.Points()) * 2 / float64(b.GridBlocks*FTThreadsPerBlock),
		MemBytesPerThread: float64(b.Points()) * 32 / float64(b.GridBlocks*FTThreadsPerBlock),
		Args:              []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(FTBuffers)
			src := cuda.Float64s(bc.Mem, b.Freq, 2*b.Points())
			dst := cuda.Float64s(bc.Mem, b.Work, 2*b.Points())
			blocks := bc.GridDim.Count()
			blk := bc.BlockIdx.Flat(bc.GridDim)
			n := 2 * b.Points()
			lo, hi := blk*n/blocks, (blk+1)*n/blocks
			copy(dst[lo:hi], src[lo:hi])
		},
	}
}

// NewFTChecksum computes the NAS checksum of the (inverse-transformed,
// unnormalized) work buffer for iteration it: the sum of 1024 strided
// elements, scaled by 1/N for the missing inverse normalization.
func NewFTChecksum(b FTBuffers, it int) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "ft-checksum",
		Grid:            cuda.Dim(1),
		Block:           cuda.Dim(32),
		RegsPerThread:   12,
		CyclesPerThread: 1024 * 10 / 32,
		SerialOnly:      true, // cross-block reduction into one checksum slot
		Args:            []any{b, it},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(FTBuffers)
			it := bc.Int(1)
			v := cuda.Float64s(bc.Mem, b.Work, 2*b.Points())
			sums := cuda.Float64s(bc.Mem, b.Checksums, 2*(it+1))
			n := b.Points()
			scale := 1.0 / float64(n)
			var re, im float64
			for j := 1; j <= 1024; j++ {
				q := (j * 5) % n // NAS-style strided sampling
				re += v[2*q] * scale
				im += v[2*q+1] * scale
			}
			sums[2*it] = re
			sums[2*it+1] = im
		},
	}
}

// BuildFTBenchmark returns the full kernel sequence: forward 3-D FFT of
// the input (already resident in Freq), then per iteration evolve, copy,
// inverse 3-D FFT and checksum.
func BuildFTBenchmark(b FTBuffers, iterations int) []*cuda.Kernel {
	var ks []*cuda.Kernel
	for dim := 0; dim < 3; dim++ {
		ks = append(ks, NewFTPass(b, b.Freq, dim, -1))
	}
	for it := 0; it < iterations; it++ {
		ks = append(ks, NewFTEvolve(b), NewFTCopy(b))
		for dim := 0; dim < 3; dim++ {
			ks = append(ks, NewFTPass(b, b.Work, dim, +1))
		}
		ks = append(ks, NewFTChecksum(b, it))
	}
	return ks
}

// FTHostReference runs the same pipeline on the host and returns the
// per-iteration checksums (2 float64 each). The input is consumed.
func FTHostReference(data []float64, nx, ny, nz, iterations int) []float64 {
	n := nx * ny * nz
	fft3 := func(v []float64, sign int) {
		for dim := 0; dim < 3; dim++ {
			lines, length, baseOf, stride := ftDims(nx, ny, nz, dim)
			for l := 0; l < lines; l++ {
				ftLine(v, baseOf(l), stride, length, sign)
			}
		}
	}
	fft3(data, -1)
	sums := make([]float64, 0, 2*iterations)
	work := make([]float64, 2*n)
	for it := 0; it < iterations; it++ {
		for i := 0; i < n; i++ {
			x := i % nx
			y := (i / nx) % ny
			z := i / (nx * ny)
			f := ftEvolveFactor(x, y, z, nx, ny, nz)
			data[2*i] *= f
			data[2*i+1] *= f
		}
		copy(work, data)
		fft3(work, +1)
		var re, im float64
		scale := 1.0 / float64(n)
		for j := 1; j <= 1024; j++ {
			q := (j * 5) % n
			re += work[2*q] * scale
			im += work[2*q+1] * scale
		}
		sums = append(sums, re, im)
	}
	return sums
}

// FTMakeInput fills the interleaved complex input with the EP LCG
// uniforms (the NAS initial condition is pseudo-random in (0,1)).
func FTMakeInput(data []float64, seed uint64) {
	r := newEPRand(seed)
	for i := range data {
		data[i] = r.next()
	}
}
