package kernels

import (
	"bytes"
	"testing"

	"gpuvirt/internal/cuda"
)

// execCase builds one workload's full kernel sequence against a fresh
// arena with deterministic inputs, so two builds are byte-identical
// before execution.
type execCase struct {
	name  string
	build func() (*testMem, []*cuda.Kernel)
}

func execCases() []execCase {
	return []execCase{
		{"vecadd", func() (*testMem, []*cuda.Kernel) {
			const n = 40000 // 40 blocks
			mem := newTestMem(1 << 20)
			a := make([]float32, n)
			b := make([]float32, n)
			for i := range a {
				a[i] = float32(i) * 0.5
				b[i] = float32(n - i)
			}
			pa, pb := mem.putF32(a), mem.putF32(b)
			pc := mem.alloc(n * 4)
			return mem, []*cuda.Kernel{NewVecAdd(pa, pb, pc, n)}
		}},
		{"ep", func() (*testMem, []*cuda.Kernel) {
			mem := newTestMem(1 << 20)
			out := mem.alloc(int64(16*epResultFloats) * 8)
			return mem, []*cuda.Kernel{NewEP(14, 16, out)}
		}},
		{"mm", func() (*testMem, []*cuda.Kernel) {
			const n = 64 // 4x4 = 16 tile blocks
			mem := newTestMem(1 << 20)
			a := make([]float32, n*n)
			b := make([]float32, n*n)
			for i := range a {
				a[i] = float32((i*7)%13) / 13
				b[i] = float32((i*5)%11) / 11
			}
			pa, pb := mem.putF32(a), mem.putF32(b)
			pc := mem.alloc(n * n * 4)
			return mem, []*cuda.Kernel{NewMM(pa, pb, pc, n)}
		}},
		{"blackscholes", func() (*testMem, []*cuda.Kernel) {
			const n = 20000
			mem := newTestMem(1 << 20)
			s := make([]float32, n)
			x := make([]float32, n)
			tt := make([]float32, n)
			for i := range s {
				s[i] = 5 + float32(i%100)
				x[i] = 1 + float32(i%50)
				tt[i] = 0.25 + float32(i%40)/40*9.75
			}
			ps, px, pt := mem.putF32(s), mem.putF32(x), mem.putF32(tt)
			pc, pp := mem.alloc(n*4), mem.alloc(n*4)
			return mem, []*cuda.Kernel{NewBlackScholes(ps, px, pt, pc, pp, n, 2, 16, DefaultBSParams())}
		}},
		{"electrostatics", func() (*testMem, []*cuda.Kernel) {
			const natoms = 200
			p := ESParams{GridX: 64, GridY: 32, Spacing: 0.5, Z: 1.0}
			mem := newTestMem(1 << 20)
			atoms := make([]float32, natoms*4)
			for i := 0; i < natoms; i++ {
				atoms[4*i] = float32(i%17) * 0.7
				atoms[4*i+1] = float32(i%13) * 0.6
				atoms[4*i+2] = float32(i%7) * 0.4
				atoms[4*i+3] = float32(i%3) - 1
			}
			pa := mem.putF32(atoms)
			po := mem.alloc(int64(p.GridX*p.GridY) * 4)
			return mem, []*cuda.Kernel{NewElectrostatics(pa, po, natoms, 2, 16, p)}
		}},
		{"nas-mg", func() (*testMem, []*cuda.Kernel) {
			const n, levels, iters = 16, 3, 2
			mem := newTestMem(64 << 20)
			st := &MGState{}
			edge := n
			lv := make([]MGLevel, levels)
			for l := levels - 1; l >= 0; l-- {
				sz := int64(edge*edge*edge) * 8
				lv[l] = MGLevel{N: edge, U: mem.alloc(sz), R: mem.alloc(sz), S: mem.alloc(sz)}
				edge /= 2
			}
			st.Levels = lv
			v := make([]float64, n*n*n)
			MGMakeRHS(v, n, 42)
			st.V = mem.putF64(v)
			st.NormP = mem.alloc(int64(mgGridBlocks(n)) * 8)
			ks := []*cuda.Kernel{NewMGZero(st.Finest().U, n)}
			for it := 0; it < iters; it++ {
				ks = append(ks, BuildMGIteration(st)...)
			}
			return mem, ks
		}},
		{"nas-cg", func() (*testMem, []*cuda.Kernel) {
			const n, gridBlocks, steps = 256, 16, 6
			m := MakeCGMatrix(n, 5, 10, 3)
			mem := newTestMem(64 << 20)
			x := make([]float64, n)
			for i := range x {
				x[i] = 1 + float64(i%5)/7
			}
			b := CGBuffers{
				N:          n,
				GridBlocks: gridBlocks,
				RowPtr:     mem.putI32(m.RowPtr),
				Col:        mem.putI32(m.Col),
				Val:        mem.putF64(m.Val),
				X:          mem.putF64(x),
				Z:          mem.alloc(n * 8),
				R:          mem.alloc(n * 8),
				P:          mem.alloc(n * 8),
				Q:          mem.alloc(n * 8),
				Partial:    mem.alloc(gridBlocks * 8),
				Scalars:    mem.alloc(cgScalarCount * 8),
			}
			return mem, BuildCGSolve(b, m.NNZ(), steps)
		}},
		{"nas-is", func() (*testMem, []*cuda.Kernel) {
			const n, buckets, grid = 10000, 128, 16
			mem := newTestMem(4 << 20)
			b, _ := isSetup(mem, n, buckets, grid, 42)
			return mem, BuildISSort(b, 2)
		}},
		{"nas-ft", func() (*testMem, []*cuda.Kernel) {
			const edge, iters, grid = 8, 2, 16
			n := edge * edge * edge
			mem := newTestMem(4 << 20)
			data := make([]float64, 2*n)
			FTMakeInput(data, 20110711)
			b := FTBuffers{
				NX: edge, NY: edge, NZ: edge,
				GridBlocks: grid,
				Freq:       mem.putF64(data),
				Work:       mem.alloc(int64(16 * n)),
				Checksums:  mem.alloc(int64(16 * iters)),
			}
			return mem, BuildFTBenchmark(b, iters)
		}},
	}
}

// TestParallelExecutionBitIdentical is the executor's determinism
// contract applied to every functional workload in the repo: the entire
// device arena after a parallel run (workers 1, 2, 8) must equal the
// serial reference byte for byte — including float rounding. SerialOnly
// kernels inside the sequences (cg reductions, is-scan, ft-checksum)
// exercise the fallback path in context.
func TestParallelExecutionBitIdentical(t *testing.T) {
	for _, c := range execCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			refMem, refKs := c.build()
			for _, k := range refKs {
				if err := k.RunFunctional(refMem); err != nil {
					t.Fatalf("serial %s: %v", k.Name, err)
				}
			}
			for _, workers := range []int{1, 2, 8} {
				ex := cuda.NewExecutor(workers)
				mem, ks := c.build()
				for _, k := range ks {
					if err := ex.Run(k, mem); err != nil {
						t.Fatalf("workers=%d %s: %v", workers, k.Name, err)
					}
				}
				if !bytes.Equal(mem.data, refMem.data) {
					i := 0
					for i < len(mem.data) && mem.data[i] == refMem.data[i] {
						i++
					}
					t.Fatalf("workers=%d: arena diverges from serial reference at byte %d (0x%02x vs 0x%02x)",
						workers, i, mem.data[i], refMem.data[i])
				}
			}
		})
	}
}
