package kernels

import (
	"math"

	"gpuvirt/internal/cuda"
)

// Black-Scholes European option pricing (paper Table IV: 1M options,
// Nit = 512 iterations, grid 480), adapted from the CUDA SDK sample: each
// thread prices a strided subset of options, recomputing Nit times (the
// SDK sample re-runs the kernel for timing stability; the paper folds the
// iterations into the workload).

// BSThreadsPerBlock matches the SDK sample's 128-thread blocks
// (480 blocks x 128 threads covering 1M options with striding).
const BSThreadsPerBlock = 128

// BSParams are the pricing parameters shared by all options.
type BSParams struct {
	Riskfree   float32
	Volatility float32
}

// DefaultBSParams mirror the CUDA SDK sample (r = 0.02, v = 0.30).
func DefaultBSParams() BSParams {
	return BSParams{Riskfree: 0.02, Volatility: 0.30}
}

// NewBlackScholes prices n options with spot s, strike x and expiry t
// (device float32 arrays of length n) into call and put arrays, repeating
// the computation nit times.
//
// Cost model: ~190 lane-cycles per option pricing (two CNDs with exp and
// division-heavy polynomial evaluation), times nit iterations, divided
// over gridBlocks*BSThreadsPerBlock threads.
func NewBlackScholes(s, x, t, call, put cuda.DevPtr, n, nit, gridBlocks int, p BSParams) *cuda.Kernel {
	threads := gridBlocks * BSThreadsPerBlock
	perThread := float64(n) / float64(threads) * float64(nit)
	const cyclesPerOption = 190.0
	return &cuda.Kernel{
		Name:              "blackscholes",
		Grid:              cuda.Dim(gridBlocks),
		Block:             cuda.Dim(BSThreadsPerBlock),
		RegsPerThread:     26,
		CyclesPerThread:   perThread * cyclesPerOption,
		MemBytesPerThread: perThread / float64(nit) * 20, // 3 reads + 2 writes per option
		Args:              []any{s, x, t, call, put, n, nit, p},
		Func:              bsBlock,
	}
}

func bsBlock(bc *cuda.BlockCtx) {
	n := bc.Int(5)
	nit := bc.Int(6)
	params := bc.Arg(7).(BSParams)
	sv := cuda.Float32s(bc.Mem, bc.Ptr(0), n)
	xv := cuda.Float32s(bc.Mem, bc.Ptr(1), n)
	tv := cuda.Float32s(bc.Mem, bc.Ptr(2), n)
	callv := cuda.Float32s(bc.Mem, bc.Ptr(3), n)
	putv := cuda.Float32s(bc.Mem, bc.Ptr(4), n)
	stride := bc.GridDim.Count() * bc.BlockDim.Count()
	base := bc.GlobalBase()
	for it := 0; it < nit; it++ {
		for t := 0; t < bc.BlockDim.X; t++ {
			for i := base + t; i < n; i += stride {
				c, p := BlackScholesPrice(sv[i], xv[i], tv[i], params.Riskfree, params.Volatility)
				callv[i] = c
				putv[i] = p
			}
		}
	}
}

// cnd is the cumulative normal distribution approximation used by the
// CUDA SDK sample (Hull's polynomial, max error ~7.5e-8).
func cnd(d float64) float64 {
	const (
		a1       = 0.31938153
		a2       = -0.356563782
		a3       = 1.781477937
		a4       = -1.821255978
		a5       = 1.330274429
		rsqrt2pi = 0.39894228040143267794
	)
	k := 1.0 / (1.0 + 0.2316419*math.Abs(d))
	v := rsqrt2pi * math.Exp(-0.5*d*d) *
		(k * (a1 + k*(a2+k*(a3+k*(a4+k*a5)))))
	if d > 0 {
		return 1.0 - v
	}
	return v
}

// BlackScholesPrice returns the call and put price of one option.
func BlackScholesPrice(s, x, t, r, v float32) (call, put float32) {
	S, X, T, R, V := float64(s), float64(x), float64(t), float64(r), float64(v)
	sqrtT := math.Sqrt(T)
	d1 := (math.Log(S/X) + (R+0.5*V*V)*T) / (V * sqrtT)
	d2 := d1 - V*sqrtT
	cndD1 := cnd(d1)
	cndD2 := cnd(d2)
	expRT := math.Exp(-R * T)
	call = float32(S*cndD1 - X*expRT*cndD2)
	put = float32(X*expRT*(1-cndD2) - S*(1-cndD1))
	return call, put
}

// BlackScholesHost prices all options once on the host (reference).
func BlackScholesHost(call, put, s, x, t []float32, p BSParams) {
	for i := range s {
		call[i], put[i] = BlackScholesPrice(s[i], x[i], t[i], p.Riskfree, p.Volatility)
	}
}
