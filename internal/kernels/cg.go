package kernels

import (
	"math"
	"sort"

	"gpuvirt/internal/cuda"
)

// NAS CG (paper Table IV: class S, NA = 1400, Nit = 15, grid size 8)
// estimates the smallest eigenvalue of a sparse symmetric positive
// definite matrix by inverse power iteration: each of the Nit outer
// iterations runs 25 steps of conjugate gradient to solve A z = x, then
// computes zeta = shift + 1/(x.z) and normalizes x = z/||z||.
//
// The GPU version launches a short kernel sequence per CG step, exactly
// like real CUDA CG codes: the matvec + partial dot products, a scalar
// reduction, the vector updates + partial dots, and a second reduction.
// Global synchronization between steps is the kernel boundary.

// CG class parameters (NAS class S).
const (
	CGClassSNA      = 1400
	CGClassSNonzer  = 7
	CGClassSShift   = 10.0
	CGClassSNiter   = 15
	CGInnerSteps    = 25
	CGThreadsPerRow = 512 // threads per block (the paper's 8-block grid over NA=1400)
)

// CSR is a compressed-sparse-row symmetric matrix.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Val) }

// MakeCGMatrix builds a deterministic sparse symmetric diagonally
// dominant (hence SPD) matrix in the spirit of NAS makea: ~nonzer random
// off-diagonal entries per row, symmetrized, with the diagonal set to
// shift + sum of the row's absolute off-diagonals.
func MakeCGMatrix(n, nonzer int, shift float64, seed uint64) *CSR {
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	type entry struct {
		col int32
		val float64
	}
	rows := make([]map[int32]float64, n)
	for i := range rows {
		rows[i] = make(map[int32]float64)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nonzer-1; k++ {
			j := int(next() % uint64(n))
			if j == i {
				continue
			}
			v := float64(next()%2000)/1000.0 - 1.0 // [-1, 1)
			rows[i][int32(j)] = v
			rows[j][int32(i)] = v // symmetrize
		}
	}
	m := &CSR{N: n, RowPtr: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		es := make([]entry, 0, len(rows[i])+1)
		for c, v := range rows[i] {
			es = append(es, entry{c, v})
		}
		sort.Slice(es, func(a, b int) bool { return es[a].col < es[b].col })
		// Sum after sorting: accumulating during the map range would make
		// the diagonal depend on map iteration order (float addition is
		// not associative), breaking the promised bit-determinism.
		var sum float64
		for _, e := range es {
			sum += math.Abs(e.val)
		}
		es = append(es, entry{int32(i), shift + sum + 1})
		sort.Slice(es, func(a, b int) bool { return es[a].col < es[b].col })
		for _, e := range es {
			m.Col = append(m.Col, e.col)
			m.Val = append(m.Val, e.val)
		}
		m.RowPtr[i+1] = int32(len(m.Col))
	}
	return m
}

// MatVec computes y = A x on the host.
func (m *CSR) MatVec(y, x []float64) {
	for i := 0; i < m.N; i++ {
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Val[k] * x[m.Col[k]]
		}
		y[i] = sum
	}
}

// CGHostSolve runs `steps` CG iterations for A z = x starting from z = 0,
// returning z and the final residual norm (host reference).
func CGHostSolve(m *CSR, x []float64, steps int) (z []float64, rnorm float64) {
	n := m.N
	z = make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	copy(r, x)
	copy(p, r)
	rho := dot(r, r)
	for it := 0; it < steps; it++ {
		m.MatVec(q, p)
		alpha := rho / dot(p, q)
		for i := 0; i < n; i++ {
			z[i] += alpha * p[i]
			r[i] -= alpha * q[i]
		}
		rho0 := rho
		rho = dot(r, r)
		beta := rho / rho0
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
	}
	// Residual of the solve: ||x - A z||.
	m.MatVec(q, z)
	var sum float64
	for i := 0; i < n; i++ {
		d := x[i] - q[i]
		sum += d * d
	}
	return z, math.Sqrt(sum)
}

// CGHostBenchmark runs the full NAS-style outer iteration on the host and
// returns the final zeta estimate.
func CGHostBenchmark(m *CSR, niter int, shift float64) float64 {
	n := m.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var zeta float64
	for it := 0; it < niter; it++ {
		z, _ := CGHostSolve(m, x, CGInnerSteps)
		zeta = shift + 1/dot(x, z)
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return zeta
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// CGBuffers is the device layout of one CG solve. Scalars live in a small
// device array: [rho, rho0, alpha, beta, pq] at fixed slots.
type CGBuffers struct {
	N             int
	GridBlocks    int
	RowPtr        cuda.DevPtr // int32 x (N+1)
	Col           cuda.DevPtr // int32 x NNZ
	Val           cuda.DevPtr // float64 x NNZ
	X, Z, R, P, Q cuda.DevPtr // float64 x N
	Partial       cuda.DevPtr // float64 x 2*GridBlocks, per-block partial dots
	Scalars       cuda.DevPtr // float64 x 8
}

const (
	cgScalarRho = iota
	cgScalarRho0
	cgScalarAlpha
	cgScalarBeta
	cgScalarPQ
	cgScalarZeta
	cgScalarZNorm
	cgScalarCount = 8
)

// CGZeta reads the final zeta estimate from the scalars slab retrieved
// off the device (float64 slice of length >= cgScalarCount).
func CGZeta(scalars []float64) float64 { return scalars[cgScalarZeta] }

// CGBufferBytes returns the device bytes needed for matrix m with the
// given launch grid.
func CGBufferBytes(m *CSR, gridBlocks int) int64 {
	n := int64(m.N)
	return 4*(n+1) + 4*int64(m.NNZ()) + 8*int64(m.NNZ()) +
		5*8*n + 16*int64(gridBlocks) + 8*cgScalarCount
}

// cgStrip returns the row range a block owns.
func cgStrip(bc *cuda.BlockCtx, n int) (lo, hi int) {
	blocks := bc.GridDim.Count()
	b := bc.BlockIdx.Flat(bc.GridDim)
	lo = b * n / blocks
	hi = (b + 1) * n / blocks
	return
}

// cgLatencyCycles is the effective lane-cycles per stored nonzero of the
// sparse matvec. Sparse gather on Fermi is latency-bound at class-S
// occupancy, so this is far above the 2-flop arithmetic cost; the value
// calibrates class S to a compute-intensive profile as in the paper.
const cgLatencyCycles = 340.0

// NewCGInit builds the solve-start kernel: z=0, r=x, p=x, partial rho.
func NewCGInit(b CGBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-init",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   16,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*CGThreadsPerRow) * 8,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			x := cuda.Float64s(bc.Mem, b.X, b.N)
			z := cuda.Float64s(bc.Mem, b.Z, b.N)
			r := cuda.Float64s(bc.Mem, b.R, b.N)
			p := cuda.Float64s(bc.Mem, b.P, b.N)
			part := cuda.Float64s(bc.Mem, b.Partial, b.GridBlocks)
			lo, hi := cgStrip(bc, b.N)
			var rho float64
			for i := lo; i < hi; i++ {
				z[i] = 0
				r[i] = x[i]
				p[i] = x[i]
				rho += x[i] * x[i]
			}
			part[bc.BlockIdx.Flat(bc.GridDim)] = rho
		},
	}
}

// NewCGReduceRho builds the single-block reduction storing
// rho = sum(partial) into the scalar slot.
func NewCGReduceRho(b CGBuffers) *cuda.Kernel {
	return newCGReduce("cg-reduce-rho", b, func(sc, part []float64) {
		var s float64
		for _, v := range part {
			s += v
		}
		sc[cgScalarRho] = s
	})
}

func newCGReduce(name string, b CGBuffers, fn func(scalars, partial []float64)) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            name,
		Grid:            cuda.Dim(1),
		Block:           cuda.Dim(32),
		RegsPerThread:   10,
		CyclesPerThread: float64(b.GridBlocks) * 4,
		SerialOnly:      true, // cross-block reduction over the per-block partials
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			sc := cuda.Float64s(bc.Mem, b.Scalars, cgScalarCount)
			part := cuda.Float64s(bc.Mem, b.Partial, b.GridBlocks)
			fn(sc, part)
		},
	}
}

// NewCGMatvecDot builds q = A p plus per-block partial p.q.
func NewCGMatvecDot(b CGBuffers, nnz int) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-matvec",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   24,
		CyclesPerThread: float64(nnz) / float64(b.GridBlocks*CGThreadsPerRow) * cgLatencyCycles,
		Args:            []any{b, nnz},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			nnz := bc.Int(1)
			rowPtr := cuda.Int32s(bc.Mem, b.RowPtr, b.N+1)
			col := cuda.Int32s(bc.Mem, b.Col, nnz)
			val := cuda.Float64s(bc.Mem, b.Val, nnz)
			p := cuda.Float64s(bc.Mem, b.P, b.N)
			q := cuda.Float64s(bc.Mem, b.Q, b.N)
			part := cuda.Float64s(bc.Mem, b.Partial, b.GridBlocks)
			lo, hi := cgStrip(bc, b.N)
			var pq float64
			for i := lo; i < hi; i++ {
				var sum float64
				for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
					sum += val[k] * p[col[k]]
				}
				q[i] = sum
				pq += p[i] * sum
			}
			part[bc.BlockIdx.Flat(bc.GridDim)] = pq
		},
	}
}

// NewCGReduceAlpha builds the reduction alpha = rho / sum(partial pq),
// also saving rho0 = rho.
func NewCGReduceAlpha(b CGBuffers) *cuda.Kernel {
	return newCGReduce("cg-reduce-alpha", b, func(sc, part []float64) {
		var pq float64
		for _, v := range part {
			pq += v
		}
		sc[cgScalarPQ] = pq
		sc[cgScalarRho0] = sc[cgScalarRho]
		sc[cgScalarAlpha] = sc[cgScalarRho] / pq
	})
}

// NewCGUpdateDot builds z += alpha p, r -= alpha q, partial r.r.
func NewCGUpdateDot(b CGBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-update",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   18,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*CGThreadsPerRow) * 12,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			sc := cuda.Float64s(bc.Mem, b.Scalars, cgScalarCount)
			alpha := sc[cgScalarAlpha]
			z := cuda.Float64s(bc.Mem, b.Z, b.N)
			r := cuda.Float64s(bc.Mem, b.R, b.N)
			p := cuda.Float64s(bc.Mem, b.P, b.N)
			q := cuda.Float64s(bc.Mem, b.Q, b.N)
			part := cuda.Float64s(bc.Mem, b.Partial, b.GridBlocks)
			lo, hi := cgStrip(bc, b.N)
			var rr float64
			for i := lo; i < hi; i++ {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
				rr += r[i] * r[i]
			}
			part[bc.BlockIdx.Flat(bc.GridDim)] = rr
		},
	}
}

// NewCGReduceBeta builds rho = sum(partial rr), beta = rho/rho0.
func NewCGReduceBeta(b CGBuffers) *cuda.Kernel {
	return newCGReduce("cg-reduce-beta", b, func(sc, part []float64) {
		var rr float64
		for _, v := range part {
			rr += v
		}
		sc[cgScalarRho] = rr
		sc[cgScalarBeta] = rr / sc[cgScalarRho0]
	})
}

// NewCGPUpdate builds p = r + beta p.
func NewCGPUpdate(b CGBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-pupdate",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   14,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*CGThreadsPerRow) * 6,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			sc := cuda.Float64s(bc.Mem, b.Scalars, cgScalarCount)
			beta := sc[cgScalarBeta]
			r := cuda.Float64s(bc.Mem, b.R, b.N)
			p := cuda.Float64s(bc.Mem, b.P, b.N)
			lo, hi := cgStrip(bc, b.N)
			for i := lo; i < hi; i++ {
				p[i] = r[i] + beta*p[i]
			}
		},
	}
}

// BuildCGSolve returns the kernel sequence of one complete CG solve
// (init + `steps` iterations), ~4 launches per step like real GPU CG.
func BuildCGSolve(b CGBuffers, nnz, steps int) []*cuda.Kernel {
	ks := []*cuda.Kernel{NewCGInit(b), NewCGReduceRho(b)}
	for s := 0; s < steps; s++ {
		ks = append(ks,
			NewCGMatvecDot(b, nnz),
			NewCGReduceAlpha(b),
			NewCGUpdateDot(b),
			NewCGReduceBeta(b),
			NewCGPUpdate(b),
		)
	}
	return ks
}

// NewCGZDots builds the per-block partial dots of the outer iteration:
// partial[2b] = z.z over the block's strip, partial[2b+1] = x.z.
// The Partial buffer must hold 2*GridBlocks float64s.
func NewCGZDots(b CGBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-zdots",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   16,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*CGThreadsPerRow) * 8,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			x := cuda.Float64s(bc.Mem, b.X, b.N)
			z := cuda.Float64s(bc.Mem, b.Z, b.N)
			part := cuda.Float64s(bc.Mem, b.Partial, 2*b.GridBlocks)
			lo, hi := cgStrip(bc, b.N)
			var zz, xz float64
			for i := lo; i < hi; i++ {
				zz += z[i] * z[i]
				xz += x[i] * z[i]
			}
			blk := bc.BlockIdx.Flat(bc.GridDim)
			part[2*blk] = zz
			part[2*blk+1] = xz
		},
	}
}

// NewCGOuterReduce builds the outer-iteration scalar step: zeta = shift
// + 1/(x.z) and the norm ||z|| for the upcoming x update.
func NewCGOuterReduce(b CGBuffers, shift float64) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-outer-reduce",
		Grid:            cuda.Dim(1),
		Block:           cuda.Dim(32),
		RegsPerThread:   10,
		CyclesPerThread: float64(b.GridBlocks) * 6,
		SerialOnly:      true, // cross-block reduction over the per-block partials
		Args:            []any{b, shift},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			shift := bc.Float64Arg(1)
			sc := cuda.Float64s(bc.Mem, b.Scalars, cgScalarCount)
			part := cuda.Float64s(bc.Mem, b.Partial, 2*b.GridBlocks)
			var zz, xz float64
			for i := 0; i < b.GridBlocks; i++ {
				zz += part[2*i]
				xz += part[2*i+1]
			}
			sc[cgScalarZeta] = shift + 1/xz
			sc[cgScalarZNorm] = math.Sqrt(zz)
		},
	}
}

// NewCGXUpdate builds x = z / ||z||, the power-iteration step.
func NewCGXUpdate(b CGBuffers) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            "cg-xupdate",
		Grid:            cuda.Dim(b.GridBlocks),
		Block:           cuda.Dim(CGThreadsPerRow),
		RegsPerThread:   12,
		CyclesPerThread: float64(b.N) / float64(b.GridBlocks*CGThreadsPerRow) * 6,
		Args:            []any{b},
		Func: func(bc *cuda.BlockCtx) {
			b := bc.Arg(0).(CGBuffers)
			sc := cuda.Float64s(bc.Mem, b.Scalars, cgScalarCount)
			norm := sc[cgScalarZNorm]
			x := cuda.Float64s(bc.Mem, b.X, b.N)
			z := cuda.Float64s(bc.Mem, b.Z, b.N)
			lo, hi := cgStrip(bc, b.N)
			for i := lo; i < hi; i++ {
				x[i] = z[i] / norm
			}
		},
	}
}

// BuildCGBenchmark returns the full NAS CG kernel sequence: outer
// power-iteration steps, each a CG solve followed by the zeta/norm
// reduction and the x update. The Partial buffer must hold
// 2*GridBlocks float64s.
func BuildCGBenchmark(b CGBuffers, nnz, innerSteps, outerIters int, shift float64) []*cuda.Kernel {
	var ks []*cuda.Kernel
	for it := 0; it < outerIters; it++ {
		ks = append(ks, BuildCGSolve(b, nnz, innerSteps)...)
		ks = append(ks, NewCGZDots(b), NewCGOuterReduce(b, shift), NewCGXUpdate(b))
	}
	return ks
}

// CGHostOuter runs the full outer iteration on the host and returns the
// final z vector and zeta (reference for the device sequence).
func CGHostOuter(m *CSR, niter, innerSteps int, shift float64) (z []float64, zeta float64) {
	n := m.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	for it := 0; it < niter; it++ {
		z, _ = CGHostSolve(m, x, innerSteps)
		zeta = shift + 1/dot(x, z)
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return z, zeta
}
