package kernels

import "gpuvirt/internal/cuda"

// MM is the 2Kx2K single-precision dense matrix multiplication benchmark
// (paper Table IV: problem size 2048x2048, grid 4096). The GPU version is
// the classic shared-memory tiled SGEMM with 16x16 tiles: a 2048x2048
// product launches (2048/16)^2 = 16384 blocks of 256 threads; the paper's
// grid size of 4096 corresponds to its 1024x1024-output sub-grid variant,
// so the grid is configurable.

// MMTile is the default tile edge (threads per block = MMTile^2 = 256).
// The paper's Table IV grid of 4096 blocks for a 2048^2 product
// corresponds to 32x32 tiles; NewMMTiled accepts either.
const MMTile = 16

// NewMM builds C = A x B for n x n row-major float32 matrices with the
// default 16x16 tiles.
func NewMM(a, b, c cuda.DevPtr, n int) *cuda.Kernel {
	return NewMMTiled(a, b, c, n, MMTile)
}

// NewMMTiled builds the tiled SGEMM with a chosen tile edge (tile^2
// threads per block, at most 1024).
//
// Cost model: each thread computes one output element: n multiply-adds
// = n FMA lane-cycles, derated by an efficiency factor for shared-memory
// staging (real SGEMM on Fermi reaches ~60% of peak).
func NewMMTiled(a, b, c cuda.DevPtr, n, tile int) *cuda.Kernel {
	if tile < 1 || tile*tile > 1024 {
		panic("kernels: MM tile must satisfy 1 <= tile^2 <= 1024")
	}
	if n%tile != 0 {
		panic("kernels: MM size must be a multiple of the tile edge")
	}
	t := n / tile
	const efficiency = 0.60
	return &cuda.Kernel{
		Name:              "mm",
		Grid:              cuda.Dim(t, t),
		Block:             cuda.Dim(tile, tile),
		RegsPerThread:     20,
		SharedMemPerBlock: 2 * tile * tile * 4, // A-tile + B-tile
		CyclesPerThread:   float64(n) / efficiency,
		MemBytesPerThread: float64(2*n*4) / float64(tile), // tiled reuse
		Args:              []any{a, b, c, n, tile},
		Func:              mmBlock,
	}
}

func mmBlock(bc *cuda.BlockCtx) {
	n := bc.Int(3)
	tile := bc.Int(4)
	av := cuda.Float32s(bc.Mem, bc.Ptr(0), n*n)
	bv := cuda.Float32s(bc.Mem, bc.Ptr(1), n*n)
	cv := cuda.Float32s(bc.Mem, bc.Ptr(2), n*n)
	row0 := bc.BlockIdx.Y * tile
	col0 := bc.BlockIdx.X * tile
	// Tile-accumulation order matches the shared-memory version: for each
	// k-tile, accumulate its partial products, so float rounding matches
	// a real tiled kernel rather than the naive loop.
	acc := make([]float32, tile*tile)
	for k0 := 0; k0 < n; k0 += tile {
		for i := 0; i < tile; i++ {
			for j := 0; j < tile; j++ {
				var s float32
				for k := k0; k < k0+tile; k++ {
					s += av[(row0+i)*n+k] * bv[k*n+col0+j]
				}
				acc[i*tile+j] += s
			}
		}
	}
	for i := 0; i < tile; i++ {
		for j := 0; j < tile; j++ {
			cv[(row0+i)*n+col0+j] = acc[i*tile+j]
		}
	}
}

// MMHost computes the reference product C = A x B (naive order).
func MMHost(c, a, b []float32, n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += float64(a[i*n+k]) * float64(b[k*n+j])
			}
			c[i*n+j] = float32(s)
		}
	}
}
