package kernels

import (
	"math"

	"gpuvirt/internal/cuda"
)

// NAS MG (paper Table IV: class S, 32^3 grid, Nit = 4, grid size 64) is a
// V-cycle multigrid solver for the 3-D Poisson equation with periodic
// boundaries. The GPU version launches one kernel per multigrid operator
// (resid, rprj3, interp, psinv), exactly like real CUDA ports of MG: the
// global synchronization between stencil sweeps is the kernel boundary.
//
// The operators use the NAS class-S coefficient sets:
//
//	A (resid):  [-8/3,  0,    1/6,  1/12]
//	C (psinv):  [-3/8,  1/32, -1/64, 0]
//
// indexed by neighbor distance class (center, face, edge, corner).

// MGBlockThreads is the thread count per MG stencil block.
const MGBlockThreads = 128

var mgA = [4]float64{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}
var mgC = [4]float64{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}

// MGLevel is one grid level's device storage.
type MGLevel struct {
	N       int         // points per edge (power of two)
	U, R, S cuda.DevPtr // solution, residual, scratch (N^3 float64 each)
}

// MGState holds all device buffers of an MG solve.
type MGState struct {
	Levels []MGLevel   // Levels[0] is the coarsest, last is the finest
	V      cuda.DevPtr // right-hand side on the finest grid
	NormP  cuda.DevPtr // per-block partial squared norms (finest grid size)
}

// Finest returns the finest level.
func (s *MGState) Finest() MGLevel { return s.Levels[len(s.Levels)-1] }

// MGBufferBytes returns the total device memory an MG solve of edge n
// with the given number of levels needs.
func MGBufferBytes(n, levels int) int64 {
	var total int64
	edge := n
	for l := 0; l < levels; l++ {
		total += 3 * int64(edge) * int64(edge) * int64(edge) * 8
		edge /= 2
	}
	total += int64(mgGridBlocks(n)) * 8 // norm partials
	return total
}

// mgGridBlocks is the launch grid for a level of edge n: n z-slabs split
// into two y-halves (class S: 32 -> 64 blocks, the paper's grid size).
func mgGridBlocks(n int) int { return 2 * n }

func mgGridDim(n int) cuda.Dim3 { return cuda.Dim(n, 2) }

// mgCycles estimates lane-cycles per thread for a stencil kernel over an
// n-edge grid: ~points-per-thread x cycles-per-point.
func mgCycles(n int, perPoint float64) float64 {
	points := float64(n) * float64(n) * float64(n)
	threads := float64(mgGridBlocks(n) * MGBlockThreads)
	return points / threads * perPoint
}

// mgSlab returns the [z0,z1) x [y0,y1) slab owned by a block.
func mgSlab(bc *cuda.BlockCtx, n int) (z0, z1, y0, y1 int) {
	z0 = bc.BlockIdx.X
	z1 = z0 + 1
	half := n / 2
	y0 = bc.BlockIdx.Y * half
	y1 = y0 + half
	if n == 1 { // degenerate coarsest grids
		if bc.BlockIdx.X > 0 || bc.BlockIdx.Y > 0 {
			return 0, 0, 0, 0
		}
		return 0, 1, 0, 1
	}
	return
}

// stencil27 applies the 4-coefficient 27-point stencil of NAS MG to u at
// (x,y,z) with periodic wrap (n is a power of two).
func stencil27(u []float64, n, x, y, z int, coef [4]float64) float64 {
	mask := n - 1
	idx := func(x, y, z int) int {
		return ((z&mask)*n+(y&mask))*n + (x & mask)
	}
	sum := coef[0] * u[idx(x, y, z)]
	if coef[1] != 0 {
		sum += coef[1] * (u[idx(x-1, y, z)] + u[idx(x+1, y, z)] +
			u[idx(x, y-1, z)] + u[idx(x, y+1, z)] +
			u[idx(x, y, z-1)] + u[idx(x, y, z+1)])
	}
	if coef[2] != 0 {
		sum += coef[2] * (u[idx(x-1, y-1, z)] + u[idx(x+1, y-1, z)] +
			u[idx(x-1, y+1, z)] + u[idx(x+1, y+1, z)] +
			u[idx(x-1, y, z-1)] + u[idx(x+1, y, z-1)] +
			u[idx(x-1, y, z+1)] + u[idx(x+1, y, z+1)] +
			u[idx(x, y-1, z-1)] + u[idx(x, y+1, z-1)] +
			u[idx(x, y-1, z+1)] + u[idx(x, y+1, z+1)])
	}
	if coef[3] != 0 {
		sum += coef[3] * (u[idx(x-1, y-1, z-1)] + u[idx(x+1, y-1, z-1)] +
			u[idx(x-1, y+1, z-1)] + u[idx(x+1, y+1, z-1)] +
			u[idx(x-1, y-1, z+1)] + u[idx(x+1, y-1, z+1)] +
			u[idx(x-1, y+1, z+1)] + u[idx(x+1, y+1, z+1)])
	}
	return sum
}

// newMGKernel wraps common launch parameters for a level of edge n.
func newMGKernel(name string, n int, perPoint float64, args []any, fn cuda.BlockFunc) *cuda.Kernel {
	return &cuda.Kernel{
		Name:            name,
		Grid:            mgGridDim(n),
		Block:           cuda.Dim(MGBlockThreads),
		RegsPerThread:   28,
		CyclesPerThread: mgCycles(n, perPoint),
		Args:            args,
		Func:            fn,
	}
}

// NewMGZero builds u[:] = 0 on an n-edge level.
func NewMGZero(u cuda.DevPtr, n int) *cuda.Kernel {
	return newMGKernel("mg-zero", n, 2, []any{u, n}, func(bc *cuda.BlockCtx) {
		n := bc.Int(1)
		uv := cuda.Float64s(bc.Mem, bc.Ptr(0), n*n*n)
		z0, z1, y0, y1 := mgSlab(bc, n)
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				row := (z*n + y) * n
				for x := 0; x < n; x++ {
					uv[row+x] = 0
				}
			}
		}
	})
}

// NewMGResid builds r = v - A u on an n-edge level (r distinct from u,v).
func NewMGResid(u, v, r cuda.DevPtr, n int) *cuda.Kernel {
	return newMGKernel("mg-resid", n, 55, []any{u, v, r, n}, func(bc *cuda.BlockCtx) {
		n := bc.Int(3)
		uv := cuda.Float64s(bc.Mem, bc.Ptr(0), n*n*n)
		vv := cuda.Float64s(bc.Mem, bc.Ptr(1), n*n*n)
		rv := cuda.Float64s(bc.Mem, bc.Ptr(2), n*n*n)
		z0, z1, y0, y1 := mgSlab(bc, n)
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				for x := 0; x < n; x++ {
					rv[(z*n+y)*n+x] = vv[(z*n+y)*n+x] - stencil27(uv, n, x, y, z, mgA)
				}
			}
		}
	})
}

// NewMGPsinv builds u += C (x) r, the NAS smoother.
func NewMGPsinv(r, u cuda.DevPtr, n int) *cuda.Kernel {
	return newMGKernel("mg-psinv", n, 45, []any{r, u, n}, func(bc *cuda.BlockCtx) {
		n := bc.Int(2)
		rv := cuda.Float64s(bc.Mem, bc.Ptr(0), n*n*n)
		uv := cuda.Float64s(bc.Mem, bc.Ptr(1), n*n*n)
		z0, z1, y0, y1 := mgSlab(bc, n)
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				for x := 0; x < n; x++ {
					uv[(z*n+y)*n+x] += stencil27(rv, n, x, y, z, mgC)
				}
			}
		}
	})
}

// NewMGRprj3 builds the full-weighting restriction of rf (edge nf) onto
// rc (edge nf/2).
func NewMGRprj3(rf cuda.DevPtr, nf int, rc cuda.DevPtr) *cuda.Kernel {
	nc := nf / 2
	return newMGKernel("mg-rprj3", nc, 60, []any{rf, nf, rc}, func(bc *cuda.BlockCtx) {
		nf := bc.Int(1)
		nc := nf / 2
		rfv := cuda.Float64s(bc.Mem, bc.Ptr(0), nf*nf*nf)
		rcv := cuda.Float64s(bc.Mem, bc.Ptr(2), nc*nc*nc)
		mask := nf - 1
		idx := func(x, y, z int) int { return ((z&mask)*nf+(y&mask))*nf + (x & mask) }
		z0, z1, y0, y1 := mgSlab(bc, nc)
		for cz := z0; cz < z1; cz++ {
			for cy := y0; cy < y1; cy++ {
				for cx := 0; cx < nc; cx++ {
					fx, fy, fz := 2*cx, 2*cy, 2*cz
					var sum float64
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								sum += restrictWeight(dx, dy, dz) * rfv[idx(fx+dx, fy+dy, fz+dz)]
							}
						}
					}
					rcv[(cz*nc+cy)*nc+cx] = sum
				}
			}
		}
	})
}

// restrictWeight is the separable 3-D full-weighting coefficient
// (1/2)^[dx!=0] x (1/2)^[dy!=0] x (1/2)^[dz!=0] / 8, i.e. 1/8 for the
// center, 1/16 per face, 1/32 per edge, 1/64 per corner; the weights sum
// to 1 so restriction preserves constants.
func restrictWeight(dx, dy, dz int) float64 {
	w := 1.0 / 8.0
	for _, d := range [3]int{dx, dy, dz} {
		if d != 0 {
			w *= 0.5
		}
	}
	return w
}

// NewMGInterp builds the trilinear prolongation: uf (edge 2*nc) += P uc.
func NewMGInterp(uc cuda.DevPtr, nc int, uf cuda.DevPtr) *cuda.Kernel {
	nf := nc * 2
	return newMGKernel("mg-interp", nf, 25, []any{uc, nc, uf}, func(bc *cuda.BlockCtx) {
		nc := bc.Int(1)
		nf := nc * 2
		ucv := cuda.Float64s(bc.Mem, bc.Ptr(0), nc*nc*nc)
		ufv := cuda.Float64s(bc.Mem, bc.Ptr(2), nf*nf*nf)
		cmask := nc - 1
		cidx := func(x, y, z int) int { return ((z&cmask)*nc+(y&cmask))*nc + (x & cmask) }
		z0, z1, y0, y1 := mgSlab(bc, nf)
		for fz := z0; fz < z1; fz++ {
			for fy := y0; fy < y1; fy++ {
				for fx := 0; fx < nf; fx++ {
					cx, cy, cz := fx/2, fy/2, fz/2
					var val float64
					// Trilinear weights: each odd coordinate averages the
					// two bracketing coarse points.
					for _, p := range [2]int{0, 1} {
						for _, q := range [2]int{0, 1} {
							for _, s := range [2]int{0, 1} {
								wx := interpW(fx, p)
								wy := interpW(fy, q)
								wz := interpW(fz, s)
								if wx == 0 || wy == 0 || wz == 0 {
									continue
								}
								val += wx * wy * wz * ucv[cidx(cx+p, cy+q, cz+s)]
							}
						}
					}
					ufv[(fz*nf+fy)*nf+fx] += val
				}
			}
		}
	})
}

// interpW is the 1-D linear interpolation weight of coarse neighbor
// offset p (0 or 1) for fine coordinate f.
func interpW(f, p int) float64 {
	if f%2 == 0 { // coincides with coarse point f/2
		if p == 0 {
			return 1
		}
		return 0
	}
	return 0.5
}

// NewMGNorm builds the squared-norm reduction of r into per-block
// partials (one float64 per block).
func NewMGNorm(r cuda.DevPtr, n int, partials cuda.DevPtr) *cuda.Kernel {
	return newMGKernel("mg-norm", n, 6, []any{r, n, partials}, func(bc *cuda.BlockCtx) {
		n := bc.Int(1)
		rv := cuda.Float64s(bc.Mem, bc.Ptr(0), n*n*n)
		pv := cuda.Float64s(bc.Mem, bc.Ptr(2), bc.GridDim.Count())
		var sum float64
		z0, z1, y0, y1 := mgSlab(bc, n)
		for z := z0; z < z1; z++ {
			for y := y0; y < y1; y++ {
				row := (z*n + y) * n
				for x := 0; x < n; x++ {
					sum += rv[row+x] * rv[row+x]
				}
			}
		}
		pv[bc.BlockIdx.Flat(bc.GridDim)] = sum
	})
}

// BuildMGIteration returns the kernel sequence of one MG iteration
// (resid + V-cycle + final resid/smooth + norm), NAS mg3P structure.
func BuildMGIteration(s *MGState) []*cuda.Kernel {
	var ks []*cuda.Kernel
	f := len(s.Levels) - 1
	fin := s.Levels[f]

	// r_f = v - A u_f
	ks = append(ks, NewMGResid(fin.U, s.V, fin.R, fin.N))
	// Down sweep: restrict residuals.
	for l := f; l > 0; l-- {
		ks = append(ks, NewMGRprj3(s.Levels[l].R, s.Levels[l].N, s.Levels[l-1].R))
	}
	// Coarsest solve: u_0 = smooth(r_0).
	c := s.Levels[0]
	ks = append(ks, NewMGZero(c.U, c.N))
	ks = append(ks, NewMGPsinv(c.R, c.U, c.N))
	// Up sweep.
	for l := 1; l < f; l++ {
		lev := s.Levels[l]
		ks = append(ks, NewMGZero(lev.U, lev.N))
		ks = append(ks, NewMGInterp(s.Levels[l-1].U, s.Levels[l-1].N, lev.U))
		ks = append(ks, NewMGResid(lev.U, lev.R, lev.S, lev.N))
		ks = append(ks, NewMGPsinv(lev.S, lev.U, lev.N))
	}
	// Finest: correct, re-residual, smooth, norm.
	ks = append(ks, NewMGInterp(s.Levels[f-1].U, s.Levels[f-1].N, fin.U))
	ks = append(ks, NewMGResid(fin.U, s.V, fin.R, fin.N))
	ks = append(ks, NewMGPsinv(fin.R, fin.U, fin.N))
	ks = append(ks, NewMGNorm(fin.R, fin.N, s.NormP))
	return ks
}

// MGHostIterate runs iterations of the same MG cycle entirely on the host
// over plain slices (reference implementation for tests). It returns the
// residual L2 norm after each iteration.
func MGHostIterate(u, v []float64, n, levels, iters int) []float64 {
	type lev struct {
		n       int
		u, r, s []float64
	}
	ls := make([]lev, levels)
	edge := n
	for l := levels - 1; l >= 0; l-- {
		ls[l] = lev{n: edge,
			u: make([]float64, edge*edge*edge),
			r: make([]float64, edge*edge*edge),
			s: make([]float64, edge*edge*edge)}
		edge /= 2
	}
	copy(ls[levels-1].u, u)
	f := levels - 1

	resid := func(u, v, r []float64, n int) {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					r[(z*n+y)*n+x] = v[(z*n+y)*n+x] - stencil27(u, n, x, y, z, mgA)
				}
			}
		}
	}
	psinv := func(r, u []float64, n int) {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					u[(z*n+y)*n+x] += stencil27(r, n, x, y, z, mgC)
				}
			}
		}
	}
	rprj3 := func(rf []float64, nf int, rc []float64) {
		nc := nf / 2
		mask := nf - 1
		idx := func(x, y, z int) int { return ((z&mask)*nf+(y&mask))*nf + (x & mask) }
		for cz := 0; cz < nc; cz++ {
			for cy := 0; cy < nc; cy++ {
				for cx := 0; cx < nc; cx++ {
					var sum float64
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								sum += restrictWeight(dx, dy, dz) * rf[idx(2*cx+dx, 2*cy+dy, 2*cz+dz)]
							}
						}
					}
					rc[(cz*nc+cy)*nc+cx] = sum
				}
			}
		}
	}
	interp := func(uc []float64, nc int, uf []float64) {
		nf := nc * 2
		cmask := nc - 1
		cidx := func(x, y, z int) int { return ((z&cmask)*nc+(y&cmask))*nc + (x & cmask) }
		for fz := 0; fz < nf; fz++ {
			for fy := 0; fy < nf; fy++ {
				for fx := 0; fx < nf; fx++ {
					cx, cy, cz := fx/2, fy/2, fz/2
					var val float64
					for _, p := range [2]int{0, 1} {
						for _, q := range [2]int{0, 1} {
							for _, s := range [2]int{0, 1} {
								w := interpW(fx, p) * interpW(fy, q) * interpW(fz, s)
								if w != 0 {
									val += w * uc[cidx(cx+p, cy+q, cz+s)]
								}
							}
						}
					}
					uf[(fz*nf+fy)*nf+fx] += val
				}
			}
		}
	}

	var norms []float64
	for it := 0; it < iters; it++ {
		resid(ls[f].u, v, ls[f].r, ls[f].n)
		for l := f; l > 0; l-- {
			rprj3(ls[l].r, ls[l].n, ls[l-1].r)
		}
		for i := range ls[0].u {
			ls[0].u[i] = 0
		}
		psinv(ls[0].r, ls[0].u, ls[0].n)
		for l := 1; l < f; l++ {
			for i := range ls[l].u {
				ls[l].u[i] = 0
			}
			interp(ls[l-1].u, ls[l-1].n, ls[l].u)
			resid(ls[l].u, ls[l].r, ls[l].s, ls[l].n)
			psinv(ls[l].s, ls[l].u, ls[l].n)
		}
		interp(ls[f-1].u, ls[f-1].n, ls[f].u)
		resid(ls[f].u, v, ls[f].r, ls[f].n)
		psinv(ls[f].r, ls[f].u, ls[f].n)

		var sum float64
		for _, x := range ls[f].r {
			sum += x * x
		}
		norms = append(norms, math.Sqrt(sum/float64(n*n*n)))
	}
	copy(u, ls[f].u)
	return norms
}

// MGMakeRHS fills v with the NAS-style +1/-1 point charges at
// deterministic pseudo-random positions.
func MGMakeRHS(v []float64, n int, seed uint64) {
	for i := range v {
		v[i] = 0
	}
	// 10 positive and 10 negative unit charges, like NAS zran3's extremes.
	state := seed
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for k := 0; k < 10; k++ {
		i := int(next()) % len(v)
		v[i] = -1
		j := int(next()) % len(v)
		v[j] = +1
	}
}
