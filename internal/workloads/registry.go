package workloads

import (
	"fmt"

	"gpuvirt/internal/kernels"
)

// Ref names a workload plus its parameters in a wire-serializable form,
// used by the real-IPC daemon where kernel-builder closures cannot cross
// the process boundary.
type Ref struct {
	Name   string         `json:"name"`
	Params map[string]int `json:"params,omitempty"`
}

// param reads a parameter with a default.
func (r Ref) param(key string, def int) int {
	if v, ok := r.Params[key]; ok {
		return v
	}
	return def
}

// FromRef instantiates a workload from its wire reference. Unknown names
// are an error. Parameters default to the paper's instances.
func FromRef(r Ref) (Workload, error) {
	switch r.Name {
	case "vecadd":
		return VectorAdd(r.param("n", 50_000_000)), nil
	case "copy":
		return Copy(r.param("n", 1<<20)), nil
	case "ep":
		return EP(r.param("m", 30), r.param("grid", 4)), nil
	case "mm":
		return MM(r.param("n", 2048)), nil
	case "mg":
		return MG(r.param("n", 32), r.param("levels", 4), r.param("nit", 4)), nil
	case "blackscholes":
		return BlackScholes(r.param("n", 1_000_000), r.param("nit", 512), r.param("grid", 480)), nil
	case "cg":
		return CG(r.param("na", 1400), r.param("nonzer", 7), r.param("nit", 15), r.param("grid", 8)), nil
	case "is":
		return IS(r.param("n", kernels.ISClassSKeys), r.param("buckets", kernels.ISClassSBuckets),
			r.param("nit", 10), r.param("grid", 64)), nil
	case "ft":
		return FT(r.param("edge", kernels.FTClassSEdge), r.param("nit", kernels.FTClassSIters),
			r.param("grid", 64)), nil
	case "electrostatics":
		return Electrostatics(r.param("atoms", 100_000), r.param("nit", 25), r.param("grid", 288),
			r.param("gridx", 256), r.param("gridy", 144)), nil
	default:
		return Workload{}, fmt.Errorf("workloads: unknown workload %q", r.Name)
	}
}

// Names lists the registry's workload names.
func Names() []string {
	return []string{"vecadd", "copy", "ep", "mm", "mg", "blackscholes", "cg", "electrostatics", "is", "ft"}
}
