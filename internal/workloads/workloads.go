// Package workloads defines the seven benchmarks of the paper's
// evaluation at their published problem sizes (Tables II and IV), wired
// up as task.Specs runnable on both execution paths, with functional
// input/output hooks for correctness validation at small scales.
//
// # Calibration
//
// The micro-benchmarks (VectorAdd, NAS EP) are calibrated directly
// against Table II: the simulated Tinit, Tdata_in, Tcomp, Tdata_out and
// Tctx_switch reproduce the paper's measured values, and the resulting
// Table III speedups follow.
//
// The five application benchmarks have no published absolute times, so
// each carries a WorkScale factor: a multiplier on the kernels'
// cycle-cost model accounting for the gap between our throughput-model
// estimate and the efficiency of the paper's 2010-era research kernels
// (latency-bound stencils, unoptimized sparse gathers, timing-loop
// repetitions). WorkScale values are chosen so the simulated per-task
// compute times land at the scale implied by the paper's reported
// speedup band (1.4x-4.1x at 8 processes, MG and CG highest);
// EXPERIMENTS.md tabulates paper-vs-simulated for every figure.
package workloads

import (
	"fmt"
	"math"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/sim"
	"gpuvirt/internal/task"
)

// Class is the paper's application profile classification (Table IV).
type Class string

// The three profiles of Table IV.
const (
	IOIntensive   Class = "I/O-intensive"
	CompIntensive Class = "Comp-intensive"
	Intermediate  Class = "Intermediate"
)

// Workload is one benchmark of the evaluation.
type Workload struct {
	Name        string
	ProblemSize string // Table II/IV problem-size string
	GridSize    int    // Table II/IV grid size
	Class       Class
	// SwitchCost is the per-application context-switch cost; Table II
	// measures 148.226 ms for VectorAdd and 220.599 ms for EP. Zero
	// falls back to the architecture default.
	SwitchCost sim.Duration
	// WorkScale multiplies kernel cycle costs (see package comment).
	WorkScale float64
	// Spec builds process rank's task description.
	Spec func(rank int) *task.Spec
	// Fill populates rank's staged input bytes (functional runs only;
	// nil when the workload has no input).
	Fill func(rank int, buf []byte)
	// Check validates rank's staged output bytes (functional runs only).
	Check func(rank int, out []byte) error
}

// scaled multiplies every kernel's compute cost by the workload's scale.
func scaled(ks []*cuda.Kernel, scale float64) []*cuda.Kernel {
	if scale == 0 || scale == 1 {
		return ks
	}
	for _, k := range ks {
		k.CyclesPerThread *= scale
	}
	return ks
}

// sliceMem adapts a host byte slice to cuda.Memory so the typed views
// can address staged input/output buffers.
type sliceMem []byte

func (s sliceMem) Bytes(p cuda.DevPtr, n int64) []byte { return s[p : int64(p)+n : int64(p)+n] }

// f32view views a region of a host buffer as float32s.
func f32view(buf []byte, off int64, n int) []float32 {
	return cuda.Float32s(sliceMem(buf), cuda.DevPtr(off), n)
}

func f64view(buf []byte, off int64, n int) []float64 {
	return cuda.Float64s(sliceMem(buf), cuda.DevPtr(off), n)
}

// VectorAdd is the I/O-intensive micro-benchmark: c = a + b over n
// float32 elements (paper: 50M elements, 50K grid, Table II).
func VectorAdd(n int) Workload {
	w := Workload{
		Name:        "VectorAdd",
		ProblemSize: fmt.Sprintf("Vector Size = %s (float)", humanCount(n)),
		GridSize:    (n + kernels.VecAddThreadsPerBlock - 1) / kernels.VecAddThreadsPerBlock,
		Class:       IOIntensive,
		SwitchCost:  148226 * sim.Microsecond, // Table II
	}
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(2 * n * 4), // a and b
			OutBytes: int64(n * 4),     // c
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				a := b.In
				bb := b.In + cuda.DevPtr(n*4)
				return []*cuda.Kernel{kernels.NewVecAdd(a, bb, b.Out, n)}, nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		a := f32view(buf, 0, n)
		b := f32view(buf, int64(n*4), n)
		for i := 0; i < n; i++ {
			a[i] = float32(i%1000) + float32(rank)
			b[i] = float32((i*3)%777) * 0.5
		}
	}
	w.Check = func(rank int, out []byte) error {
		c := f32view(out, 0, n)
		for i := 0; i < n; i++ {
			want := float32(i%1000) + float32(rank) + float32((i*3)%777)*0.5
			if c[i] != want {
				return fmt.Errorf("VectorAdd rank %d: c[%d] = %g, want %g", rank, i, c[i], want)
			}
		}
		return nil
	}
	return w
}

// PaperVectorAdd is Table II's instance: 50M floats.
func PaperVectorAdd() Workload { return VectorAdd(50_000_000) }

// Copy is the protocol micro-benchmark workload: n bytes staged in, n
// bytes staged back, zero kernels. A cycle is purely the H2D/D2H copy
// path plus verb overhead, which is what the ring control plane's
// zero-allocation and zero-syscall tests need in isolation — a kernel
// launch costs an allocation per launch by design, so any workload with
// kernels would mask the control plane's own footprint.
func Copy(n int) Workload {
	w := Workload{
		Name:        "Copy",
		ProblemSize: fmt.Sprintf("%s bytes each way", humanCount(n)),
		Class:       IOIntensive,
	}
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{Name: w.Name, InBytes: int64(n), OutBytes: int64(n)}
	}
	return w
}

// EP is the compute-intensive micro-benchmark: NAS EP with 2^m pairs on
// a gridBlocks-block grid (paper: class B, M=30, grid 4, Table II).
func EP(m, gridBlocks int) Workload {
	w := Workload{
		Name:        "EP",
		ProblemSize: fmt.Sprintf("Class (M=%d)", m),
		GridSize:    gridBlocks,
		Class:       CompIntensive,
		SwitchCost:  220599 * sim.Microsecond, // Table II
	}
	outFloats := gridBlocks * 12
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  0, // EP generates its data on the device
			OutBytes: int64(outFloats) * 8,
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				return []*cuda.Kernel{kernels.NewEP(m, gridBlocks, b.Out)}, nil
			},
		}
	}
	w.Check = func(rank int, out []byte) error {
		got := kernels.EPCollect(f64view(out, 0, outFloats), gridBlocks)
		want := kernels.EPHost(m)
		if got.Q != want.Q || math.Abs(got.Sx-want.Sx) > 1e-9 || math.Abs(got.Sy-want.Sy) > 1e-9 {
			return fmt.Errorf("EP rank %d: tallies diverge from host reference", rank)
		}
		return nil
	}
	return w
}

// PaperEP is Table II's instance: class B (M=30), grid 4.
func PaperEP() Workload { return EP(30, 4) }

// MM is the dense matrix-multiplication application (Table IV:
// 2048x2048, grid 4096, intermediate profile). The paper's grid of 4096
// blocks corresponds to 32x32 output tiles.
func MM(n int) Workload {
	const tile = 32
	w := Workload{
		Name:        "MM",
		ProblemSize: fmt.Sprintf("%dx%d Matrix", n, n),
		GridSize:    (n / tile) * (n / tile),
		Class:       Intermediate,
		WorkScale:   10, // timing-loop repetitions + kernel efficiency
	}
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(2 * n * n * 4),
			OutBytes: int64(n * n * 4),
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				a := b.In
				bm := b.In + cuda.DevPtr(n*n*4)
				k := kernels.NewMMTiled(a, bm, b.Out, n, tile)
				return scaled([]*cuda.Kernel{k}, w.WorkScale), nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		a := f32view(buf, 0, n*n)
		b := f32view(buf, int64(n*n*4), n*n)
		for i := range a {
			a[i] = float32((i*7+rank)%13) / 13
			b[i] = float32((i*5)%11) / 11
		}
	}
	w.Check = func(rank int, out []byte) error {
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i] = float32((i*7+rank)%13) / 13
			b[i] = float32((i*5)%11) / 11
		}
		want := make([]float32, n*n)
		kernels.MMHost(want, a, b, n)
		got := f32view(out, 0, n*n)
		for i := range want {
			if !cuda.AlmostEqual(float64(got[i]), float64(want[i]), 1e-4) {
				return fmt.Errorf("MM rank %d: C[%d] = %g, want %g", rank, i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

// PaperMM is Table IV's instance: 2Kx2K.
func PaperMM() Workload { return MM(2048) }

// MG is the NAS MG application (Table IV: class S = 32^3, Nit = 4, grid
// 64, compute-intensive). Each process sends its RHS, runs Nit V-cycle
// iterations (a sequence of stencil kernels), and retrieves the solution
// plus the residual-norm partials.
func MG(n, levels, nit int) Workload {
	w := Workload{
		Name:        "MG",
		ProblemSize: fmt.Sprintf("S(%dx%dx%d Nit=%d)", n, n, n, nit),
		GridSize:    2 * n,
		Class:       CompIntensive,
		WorkScale:   1900, // latency-bound research stencils vs throughput model
	}
	cube := int64(n) * int64(n) * int64(n) * 8
	w.Spec = func(rank int) *task.Spec {
		normBytes := int64(2*n) * 8
		return &task.Spec{
			Name:     w.Name,
			InBytes:  cube,             // v (right-hand side)
			OutBytes: cube + normBytes, // u (solution) + norm partials
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				st := &kernels.MGState{V: b.In, NormP: b.Out + cuda.DevPtr(cube)}
				edge := n
				lv := make([]kernels.MGLevel, levels)
				for l := levels - 1; l >= 0; l-- {
					sz := int64(edge) * int64(edge) * int64(edge) * 8
					var u cuda.DevPtr
					var err error
					if l == levels-1 {
						u = b.Out // the finest solution is the task output
					} else if u, err = b.NewScratch(sz); err != nil {
						return nil, err
					}
					r, err := b.NewScratch(sz)
					if err != nil {
						return nil, err
					}
					s, err := b.NewScratch(sz)
					if err != nil {
						return nil, err
					}
					lv[l] = kernels.MGLevel{N: edge, U: u, R: r, S: s}
					edge /= 2
				}
				st.Levels = lv
				ks := []*cuda.Kernel{kernels.NewMGZero(st.Finest().U, n)}
				for it := 0; it < nit; it++ {
					ks = append(ks, kernels.BuildMGIteration(st)...)
				}
				return scaled(ks, w.WorkScale), nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		kernels.MGMakeRHS(f64view(buf, 0, n*n*n), n, uint64(rank)+1)
	}
	w.Check = func(rank int, out []byte) error {
		v := make([]float64, n*n*n)
		kernels.MGMakeRHS(v, n, uint64(rank)+1)
		uWant := make([]float64, n*n*n)
		norms := kernels.MGHostIterate(uWant, v, n, levels, nit)
		uGot := f64view(out, 0, n*n*n)
		for i := range uWant {
			if !cuda.AlmostEqual(uGot[i], uWant[i], 1e-9) {
				return fmt.Errorf("MG rank %d: u[%d] = %g, want %g", rank, i, uGot[i], uWant[i])
			}
		}
		parts := f64view(out, cube, 2*n)
		var sum float64
		for _, x := range parts {
			sum += x
		}
		gotNorm := math.Sqrt(sum / float64(n*n*n))
		if !cuda.AlmostEqual(gotNorm, norms[len(norms)-1], 1e-9) {
			return fmt.Errorf("MG rank %d: final norm %g, want %g", rank, gotNorm, norms[len(norms)-1])
		}
		return nil
	}
	return w
}

// PaperMG is Table IV's instance: class S, 32^3, 4 levels, Nit=4.
func PaperMG() Workload { return MG(32, 4, 4) }

// BlackScholes is the option-pricing application (Table IV: 1M options,
// Nit = 512, grid 480, I/O-intensive profile).
func BlackScholes(n, nit, gridBlocks int) Workload {
	w := Workload{
		Name:        "BlackScholes",
		ProblemSize: fmt.Sprintf("%s call, Nit=%d", humanCount(n), nit),
		GridSize:    gridBlocks,
		Class:       IOIntensive,
		WorkScale:   4, // 2010-era transcendental throughput
	}
	params := kernels.DefaultBSParams()
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(3 * n * 4), // spot, strike, expiry
			OutBytes: int64(2 * n * 4), // call, put
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				s := b.In
				x := b.In + cuda.DevPtr(n*4)
				tm := b.In + cuda.DevPtr(2*n*4)
				call := b.Out
				put := b.Out + cuda.DevPtr(n*4)
				k := kernels.NewBlackScholes(s, x, tm, call, put, n, nit, gridBlocks, params)
				return scaled([]*cuda.Kernel{k}, w.WorkScale), nil
			},
		}
	}
	fill := func(rank int, s, x, tm []float32) {
		for i := range s {
			s[i] = 5 + float32((i+rank)%100)
			x[i] = 1 + float32(i%50)
			tm[i] = 0.25 + float32(i%40)/40*9.75
		}
	}
	w.Fill = func(rank int, buf []byte) {
		fill(rank, f32view(buf, 0, n), f32view(buf, int64(n*4), n), f32view(buf, int64(2*n*4), n))
	}
	w.Check = func(rank int, out []byte) error {
		s := make([]float32, n)
		x := make([]float32, n)
		tm := make([]float32, n)
		fill(rank, s, x, tm)
		wc := make([]float32, n)
		wp := make([]float32, n)
		kernels.BlackScholesHost(wc, wp, s, x, tm, params)
		gc := f32view(out, 0, n)
		gp := f32view(out, int64(n*4), n)
		for i := range wc {
			if gc[i] != wc[i] || gp[i] != wp[i] {
				return fmt.Errorf("BlackScholes rank %d: option %d = (%g,%g), want (%g,%g)",
					rank, i, gc[i], gp[i], wc[i], wp[i])
			}
		}
		return nil
	}
	return w
}

// PaperBlackScholes is Table IV's instance: 1M options, Nit=512, grid 480.
func PaperBlackScholes() Workload { return BlackScholes(1_000_000, 512, 480) }

// CG is the NAS CG application (Table IV: class S, NA=1400, Nit=15, grid
// 8, compute-intensive): Nit outer power-iteration steps, each a 25-step
// CG solve launched as a kernel sequence, with the x-normalization and
// zeta updates between solves.
func CG(na, nonzer, nit, gridBlocks int) Workload {
	w := Workload{
		Name:        "CG",
		ProblemSize: fmt.Sprintf("S(NA=%d, Nit=%d)", na, nit),
		GridSize:    gridBlocks,
		Class:       CompIntensive,
		WorkScale:   40, // latency-bound sparse gathers vs throughput model
	}
	m := kernels.MakeCGMatrix(na, nonzer, kernels.CGClassSShift, 20110711)
	nnz := m.NNZ()
	rowBytes := int64(4 * (na + 1))
	colBytes := int64(4 * nnz)
	valBytes := int64(8 * nnz)
	xBytes := int64(8 * na)
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  rowBytes + colBytes + valBytes + xBytes,
			OutBytes: int64(8*na) + 64, // z + the scalars slab (zeta)
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				bufs := kernels.CGBuffers{
					N:          na,
					GridBlocks: gridBlocks,
					RowPtr:     b.In,
					Col:        b.In + cuda.DevPtr(rowBytes),
					Val:        b.In + cuda.DevPtr(rowBytes+colBytes),
					X:          b.In + cuda.DevPtr(rowBytes+colBytes+valBytes),
					Z:          b.Out,
					Scalars:    b.Out + cuda.DevPtr(8*na),
				}
				var err error
				alloc := func(sz int64) cuda.DevPtr {
					var p cuda.DevPtr
					if err == nil {
						p, err = b.NewScratch(sz)
					}
					return p
				}
				bufs.R = alloc(int64(8 * na))
				bufs.P = alloc(int64(8 * na))
				bufs.Q = alloc(int64(8 * na))
				bufs.Partial = alloc(int64(16 * gridBlocks))
				if err != nil {
					return nil, err
				}
				ks := kernels.BuildCGBenchmark(bufs, nnz, kernels.CGInnerSteps, nit, kernels.CGClassSShift)
				return scaled(ks, w.WorkScale), nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		copy(buf[0:], int32Bytes(m.RowPtr))
		copy(buf[rowBytes:], int32Bytes(m.Col))
		copy(buf[rowBytes+colBytes:], cuda.HostFloat64Bytes(m.Val))
		x := f64view(buf, rowBytes+colBytes+valBytes, na)
		for i := range x {
			x[i] = 1
		}
	}
	w.Check = func(rank int, out []byte) error {
		zWant, zetaWant := kernels.CGHostOuter(m, nit, kernels.CGInnerSteps, kernels.CGClassSShift)
		zGot := f64view(out, 0, na)
		for i := range zWant {
			if !cuda.AlmostEqual(zGot[i], zWant[i], 1e-9) {
				return fmt.Errorf("CG rank %d: z[%d] = %g, want %g", rank, i, zGot[i], zWant[i])
			}
		}
		zetaGot := kernels.CGZeta(f64view(out, int64(8*na), 8))
		if !cuda.AlmostEqual(zetaGot, zetaWant, 1e-9) {
			return fmt.Errorf("CG rank %d: zeta = %g, want %g", rank, zetaGot, zetaWant)
		}
		return nil
	}
	return w
}

func int32Bytes(v []int32) []byte {
	out := make([]byte, len(v)*4)
	copy(cuda.Int32s(sliceMem(out), 0, len(v)), v)
	return out
}

// PaperCG is Table IV's instance: class S.
func PaperCG() Workload {
	return CG(kernels.CGClassSNA, kernels.CGClassSNonzer, kernels.CGClassSNiter, 8)
}

// Electrostatics is the molecular electrostatics application (Table IV:
// 100K atoms, Nit = 25, grid 288, compute-intensive).
func Electrostatics(natoms, nit, gridBlocks, gridX, gridY int) Workload {
	p := kernels.ESParams{GridX: gridX, GridY: gridY, Spacing: 0.5, Z: 0.5}
	w := Workload{
		Name:        "Electrostatics",
		ProblemSize: fmt.Sprintf("%s atoms, Nit=%d", humanCount(natoms), nit),
		GridSize:    gridBlocks,
		Class:       CompIntensive,
		WorkScale:   0.15, // SFU dual-issue: effective rsqrt cost below the 9-cycle estimate
	}
	points := gridX * gridY
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(natoms * 4 * 4),
			OutBytes: int64(points * 4),
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				k := kernels.NewElectrostatics(b.In, b.Out, natoms, nit, gridBlocks, p)
				return scaled([]*cuda.Kernel{k}, w.WorkScale), nil
			},
		}
	}
	fillAtoms := func(rank int, atoms []float32) {
		for i := 0; i < natoms; i++ {
			atoms[4*i] = float32((i*13+rank)%97) * 0.61
			atoms[4*i+1] = float32((i*7)%89) * 0.53
			atoms[4*i+2] = float32((i*3)%31) * 0.47
			atoms[4*i+3] = float32(i%3) - 1
		}
	}
	w.Fill = func(rank int, buf []byte) { fillAtoms(rank, f32view(buf, 0, natoms*4)) }
	w.Check = func(rank int, out []byte) error {
		atoms := make([]float32, natoms*4)
		fillAtoms(rank, atoms)
		want := make([]float32, points)
		kernels.ElectrostaticsHost(want, atoms, natoms, nit, p)
		got := f32view(out, 0, points)
		for i := range want {
			if !cuda.AlmostEqual(float64(got[i]), float64(want[i]), 1e-5) {
				return fmt.Errorf("Electrostatics rank %d: point %d = %g, want %g", rank, i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

// PaperElectrostatics is Table IV's instance: 100K atoms, Nit=25, grid
// 288 (a 256x144 lattice slice).
func PaperElectrostatics() Workload { return Electrostatics(100_000, 25, 288, 256, 144) }

// PaperApplications returns the five Table IV application benchmarks in
// the paper's order.
func PaperApplications() []Workload {
	return []Workload{PaperMM(), PaperMG(), PaperBlackScholes(), PaperCG(), PaperElectrostatics()}
}

// humanCount formats 50_000_000 as "50M", 100_000 as "100K".
func humanCount(n int) string {
	switch {
	case n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n%1_000 == 0:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
