package workloads

import (
	"strings"
	"testing"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/fermi"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/task"
)

// buildAll constructs a workload's kernels against a fake allocator to
// check specs are internally consistent without a simulator.
type fakeAlloc struct{ next cuda.DevPtr }

func (a *fakeAlloc) Malloc(n int64) (cuda.DevPtr, error) {
	p := a.next + 256
	a.next = p + cuda.DevPtr((n+255)/256*256)
	return p, nil
}
func (a *fakeAlloc) Free(p cuda.DevPtr) error { return nil }

func buildKernels(t *testing.T, w Workload) []*cuda.Kernel {
	t.Helper()
	spec := w.Spec(0)
	al := &fakeAlloc{}
	in, _ := al.Malloc(max64(spec.InBytes, 1))
	out, _ := al.Malloc(max64(spec.OutBytes, 1))
	var scratch []cuda.DevPtr
	ks, err := spec.Build(&task.Buffers{In: in, Out: out, Alloc: al, Scratch: &scratch})
	if err != nil {
		t.Fatalf("%s: Build: %v", w.Name, err)
	}
	return ks
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestPaperProblemSizesMatchTableIV(t *testing.T) {
	cases := []struct {
		w     Workload
		size  string
		grid  int
		class Class
	}{
		{PaperMM(), "2048x2048 Matrix", 4096, Intermediate},
		{PaperMG(), "S(32x32x32 Nit=4)", 64, CompIntensive},
		{PaperBlackScholes(), "1M call, Nit=512", 480, IOIntensive},
		{PaperCG(), "S(NA=1400, Nit=15)", 8, CompIntensive},
		{PaperElectrostatics(), "100K atoms, Nit=25", 288, CompIntensive},
	}
	for _, c := range cases {
		if c.w.ProblemSize != c.size {
			t.Errorf("%s: ProblemSize = %q, want %q", c.w.Name, c.w.ProblemSize, c.size)
		}
		if c.w.GridSize != c.grid {
			t.Errorf("%s: GridSize = %d, want %d (Table IV)", c.w.Name, c.w.GridSize, c.grid)
		}
		if c.w.Class != c.class {
			t.Errorf("%s: Class = %s, want %s", c.w.Name, c.w.Class, c.class)
		}
	}
}

func TestMicroBenchmarkSwitchCosts(t *testing.T) {
	if PaperVectorAdd().SwitchCost.Seconds()*1e3 != 148.226 {
		t.Fatal("VectorAdd switch cost != Table II's 148.226 ms")
	}
	if PaperEP().SwitchCost.Seconds()*1e3 != 220.599 {
		t.Fatal("EP switch cost != Table II's 220.599 ms")
	}
}

func TestPaperVectorAddShape(t *testing.T) {
	w := PaperVectorAdd()
	if w.GridSize < 48000 || w.GridSize > 50000 {
		t.Fatalf("grid = %d, want ~50K (Table II)", w.GridSize)
	}
	spec := w.Spec(0)
	if spec.InBytes != 400_000_000 || spec.OutBytes != 200_000_000 {
		t.Fatalf("in/out = %d/%d; 50M floats move 400+200 MB", spec.InBytes, spec.OutBytes)
	}
}

func TestAllPaperKernelsValidateOnC2070(t *testing.T) {
	arch := fermi.TeslaC2070()
	all := append([]Workload{PaperVectorAdd(), PaperEP()}, PaperApplications()...)
	for _, w := range all {
		for _, k := range buildKernels(t, w) {
			if err := k.Validate(arch); err != nil {
				t.Errorf("%s kernel %s: %v", w.Name, k.Name, err)
			}
		}
	}
}

func TestGridSizesOfBuiltKernels(t *testing.T) {
	// The first (or only) compute kernel's grid equals Table II/IV's
	// published grid size.
	cases := []struct {
		w    Workload
		grid int
		name string
	}{
		{PaperVectorAdd(), 48829, "vecadd"},
		{PaperEP(), 4, "nas-ep"},
		{PaperMM(), 4096, "mm"},
		{PaperBlackScholes(), 480, "blackscholes"},
		{PaperElectrostatics(), 288, "electrostatics"},
	}
	for _, c := range cases {
		ks := buildKernels(t, c.w)
		found := false
		for _, k := range ks {
			if k.Name == c.name {
				found = true
				if k.Blocks() != c.grid {
					t.Errorf("%s: grid = %d, want %d", c.name, k.Blocks(), c.grid)
				}
				break
			}
		}
		if !found {
			t.Errorf("%s: kernel %q not built", c.w.Name, c.name)
		}
	}
}

func TestCGSequenceLength(t *testing.T) {
	// 15 outer iterations x (init 2 + 25 steps x 5 + outer 3) = 1950
	// launches: the real shape of GPU CG.
	ks := buildKernels(t, PaperCG())
	want := 15 * (2 + 25*5 + 3)
	if len(ks) != want {
		t.Fatalf("CG sequence = %d kernels, want %d", len(ks), want)
	}
}

func TestMGSequenceLength(t *testing.T) {
	ks := buildKernels(t, PaperMG())
	// 1 zero + 4 iterations x 18 kernels: resid, 3 rprj3, bottom
	// (zero+psinv), 2 up-levels x (zero,interp,resid,psinv), finest
	// (interp,resid,psinv), norm.
	want := 1 + 4*18
	if len(ks) != want {
		t.Fatalf("MG sequence = %d kernels, want %d", len(ks), want)
	}
}

func TestWorkScaleApplied(t *testing.T) {
	w := MM(64)
	built := buildKernels(t, w)[0]
	raw := kernels.NewMMTiled(0, 0, 0, 64, 32)
	ratio := built.CyclesPerThread / raw.CyclesPerThread
	if ratio != w.WorkScale {
		t.Fatalf("WorkScale ratio = %v, want %v", ratio, w.WorkScale)
	}
}

func TestFillCheckRoundTripVectorAdd(t *testing.T) {
	w := VectorAdd(512)
	spec := w.Spec(1)
	in := make([]byte, spec.InBytes)
	w.Fill(1, in)
	// Compute the expected output on the host and verify Check accepts it.
	a := f32view(in, 0, 512)
	b := f32view(in, 512*4, 512)
	out := make([]byte, spec.OutBytes)
	c := f32view(out, 0, 512)
	for i := range c {
		c[i] = a[i] + b[i]
	}
	if err := w.Check(1, out); err != nil {
		t.Fatalf("Check rejected a correct result: %v", err)
	}
	c[100] += 1
	if err := w.Check(1, out); err == nil {
		t.Fatal("Check accepted a corrupted result")
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int]string{
		50_000_000: "50M",
		1_000_000:  "1M",
		100_000:    "100K",
		123:        "123",
	}
	for n, want := range cases {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestProblemSizeStringsLookRight(t *testing.T) {
	if !strings.Contains(PaperVectorAdd().ProblemSize, "50M") {
		t.Fatalf("vecadd size = %q", PaperVectorAdd().ProblemSize)
	}
	if !strings.Contains(PaperEP().ProblemSize, "M=30") {
		t.Fatalf("EP size = %q", PaperEP().ProblemSize)
	}
}
