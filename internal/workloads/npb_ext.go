package workloads

import (
	"fmt"
	"sort"

	"gpuvirt/internal/cuda"
	"gpuvirt/internal/kernels"
	"gpuvirt/internal/task"
)

// IS and FT extend the evaluation set with two more NPB kernels from the
// family the paper's reference [19] ports to GPUs. They have no paper
// figure to match; their WorkScale factors are set the same way as the
// Table IV applications' (latency-bound 2010-era ports vs the
// throughput model), landing class-S per-task times at a scale
// comparable to the paper's applications.

// IS is the NAS integer sort: nit ranking iterations of n keys over
// `buckets` buckets on a gridBlocks-block launch.
func IS(n, buckets, nit, gridBlocks int) Workload {
	w := Workload{
		Name:        "IS",
		ProblemSize: fmt.Sprintf("S(N=2^%d, Bmax=2^%d, Nit=%d)", log2(n), log2(buckets), nit),
		GridSize:    gridBlocks,
		Class:       IOIntensive,
		WorkScale:   200, // scattered-gather ranking is latency-bound
	}
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(4 * n),
			OutBytes: int64(4 * n),
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				bufs := kernels.ISBuffers{
					N: n, Buckets: buckets, GridBlocks: gridBlocks,
					Keys:   b.In,
					Sorted: b.Out,
				}
				var err error
				if bufs.BlockHist, err = b.NewScratch(int64(4 * gridBlocks * buckets)); err != nil {
					return nil, err
				}
				if bufs.GlobalOff, err = b.NewScratch(int64(4 * (buckets + 1))); err != nil {
					return nil, err
				}
				return scaled(kernels.BuildISSort(bufs, nit), w.WorkScale), nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		keys := cuda.Int32s(sliceMem(buf), 0, n)
		kernels.ISKeyGen(keys, buckets, uint64(rank)+1)
	}
	w.Check = func(rank int, out []byte) error {
		keys := make([]int32, n)
		kernels.ISKeyGen(keys, buckets, uint64(rank)+1)
		want := kernels.ISHostSort(keys, buckets)
		got := cuda.Int32s(sliceMem(out), 0, n)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return fmt.Errorf("IS rank %d: output not sorted", rank)
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("IS rank %d: sorted[%d] = %d, want %d", rank, i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

// ClassSIS is the NAS class-S instance: 2^16 keys, 2^11 buckets, 10
// ranking iterations.
func ClassSIS() Workload { return IS(kernels.ISClassSKeys, kernels.ISClassSBuckets, 10, 64) }

// FT is the NAS 3-D FFT PDE solver: a cubic edge^3 grid, nit evolution
// iterations, each a frequency-space multiply plus an inverse 3-D FFT
// and a checksum.
func FT(edge, nit, gridBlocks int) Workload {
	w := Workload{
		Name:        "FT",
		ProblemSize: fmt.Sprintf("S(%dx%dx%d, Nit=%d)", edge, edge, edge, nit),
		GridSize:    gridBlocks,
		Class:       CompIntensive,
		WorkScale:   100, // strided butterfly passes run far below peak
	}
	points := edge * edge * edge
	w.Spec = func(rank int) *task.Spec {
		return &task.Spec{
			Name:     w.Name,
			InBytes:  int64(16 * points), // interleaved complex input
			OutBytes: int64(16 * nit),    // per-iteration checksums
			Build: func(b *task.Buffers) ([]*cuda.Kernel, error) {
				bufs := kernels.FTBuffers{
					NX: edge, NY: edge, NZ: edge,
					GridBlocks: gridBlocks,
					Freq:       b.In, // transformed in place
					Checksums:  b.Out,
				}
				var err error
				if bufs.Work, err = b.NewScratch(int64(16 * points)); err != nil {
					return nil, err
				}
				return scaled(kernels.BuildFTBenchmark(bufs, nit), w.WorkScale), nil
			},
		}
	}
	w.Fill = func(rank int, buf []byte) {
		kernels.FTMakeInput(f64view(buf, 0, 2*points), uint64(rank)+1)
	}
	w.Check = func(rank int, out []byte) error {
		data := make([]float64, 2*points)
		kernels.FTMakeInput(data, uint64(rank)+1)
		want := kernels.FTHostReference(data, edge, edge, edge, nit)
		got := f64view(out, 0, 2*nit)
		for i := range want {
			if !cuda.AlmostEqual(got[i], want[i], 1e-9) {
				return fmt.Errorf("FT rank %d: checksum[%d] = %g, want %g", rank, i, got[i], want[i])
			}
		}
		return nil
	}
	return w
}

// ClassSFT is the NAS class-S instance: 64^3, 6 iterations.
func ClassSFT() Workload { return FT(kernels.FTClassSEdge, kernels.FTClassSIters, 64) }

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
