package fed

import (
	"errors"
	"fmt"

	"gpuvirt/internal/gvm"
	"gpuvirt/internal/transport"
)

// Cross-node failover. Two paths, chosen by what is left of the source:
//
//   - migrateLocked — the source node is draining but alive: MIG on the
//     session's sticky connection extracts its full state (device
//     snapshot, staging, scheduling identity), ADP on a survivor adopts
//     it under a fresh local id, and the client's next verb lands on the
//     new node with everything intact. fed_migrated_bytes_total counts
//     the blobs.
//
//   - recreateLocked — the source node is dead, its state unrecoverable:
//     the router replays the session's recorded REQ on a survivor and
//     answers the client's in-flight verbs with retryable errors until
//     it re-stages. A pipelined client's replayed cycle starts with SND,
//     so the first retry already carries the input and the re-run is
//     byte-identical (cycles are deterministic).
//
// Both paths count in fed_failovers_total. Sessions are moved lazily on
// their next verb (ensurePlacedLocked) and eagerly by the poller's
// background evacuation when a node transitions to draining.

// ensurePlacedLocked makes sure the session has a live backend before a
// verb is forwarded: re-create it if its node died, migrate it off a
// draining node. Caller holds s.mu.
func (r *Router) ensurePlacedLocked(s *fedSession) error {
	if s.conn == nil || s.b.getState() == stateDead {
		return r.recreateLocked(s)
	}
	if s.b.getState() == stateDraining {
		if err := r.migrateLocked(s); err != nil {
			if s.conn == nil {
				return err // the move failed AND the session is gone
			}
			// Migration failed but the session still lives on the
			// draining source (e.g. no healthy target yet): keep serving
			// in place — draining is graceful, not gone.
			if r.cfg.Log != nil {
				r.cfg.Log.Warn("cross-node migration failed; serving on draining node",
					"vsession", s.vid, "node", s.b.idx, "err", err)
			}
		}
	}
	return nil
}

// recreateLocked replays the session's REQ on a surviving node after its
// backend died with the state. Caller holds s.mu.
func (r *Router) recreateLocked(s *fedSession) error {
	old := s.b
	r.dropBackendLocked(s, true)
	fwd := transport.Request{
		Verb: "REQ", Ref: &s.ref, Rank: s.rank,
		Plane:    transport.PlaneInline,
		MemQuota: s.memQuota, Priority: s.priority, Weight: s.weight,
	}
	footprint := s.inB + s.outB
	var lastErr error
	for attempt := 0; attempt <= len(r.backends); attempt++ {
		b, perr := r.place(footprint)
		if perr != nil {
			if lastErr != nil {
				perr = fmt.Errorf("%v (last backend error: %v)", perr, lastErr)
			}
			return errors.New(gvm.Retryable(fmt.Sprintf(
				"fed: session %d lost node %d and cannot be re-placed: %v", s.vid, old.idx, perr)))
		}
		conn, nc, derr := r.dialBackend(b)
		if derr != nil {
			r.unplace(b, footprint)
			r.markDead(b, derr)
			lastErr = derr
			continue
		}
		resp, terr := tripConn(conn, fwd)
		if terr != nil {
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			r.markDead(b, terr)
			lastErr = terr
			continue
		}
		if resp.Status != "ACK" {
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			return fmt.Errorf("fed: re-place session %d on node %d: %s", s.vid, b.idx, resp.Err)
		}
		s.attachLocked(b, resp.Session, conn, nc)
		s.staged = false // the input died with the old node
		r.met.failovers.Inc()
		if r.cfg.Log != nil {
			r.cfg.Log.Info("session re-created after node death",
				"vsession", s.vid, "from-node", old.idx, "to-node", b.idx, "backend-session", resp.Session)
		}
		return nil
	}
	return errors.New(gvm.Retryable(fmt.Sprintf(
		"fed: session %d lost node %d and every re-placement attempt failed: %v", s.vid, old.idx, lastErr)))
}

// migrateLocked live-migrates the session off its draining node:
// extract with MIG, re-place through the node-level policy, adopt with
// ADP. On success the virtual id is unchanged and staged state carries
// over — the client cannot tell. Caller holds s.mu.
func (r *Router) migrateLocked(s *fedSession) error {
	src := s.b
	footprint := s.inB + s.outB
	// Confirm a target exists BEFORE extracting: MIG removes the session
	// from the source, and a draining source cannot re-adopt it (its own
	// admission refuses placements). Better to keep serving in place
	// than to strand the state.
	if _, err := r.placer.Select(r.nodeLoads(), footprint); err != nil {
		return fmt.Errorf("fed: no target for migration: %v", err)
	}
	resp, terr := r.trip(s, transport.Request{Verb: "MIG", Session: s.realID})
	if terr != nil {
		// The draining node died mid-extract; fall back to re-creation.
		r.markDead(src, terr)
		return r.recreateLocked(s)
	}
	if resp.Status != "ACK" {
		// e.g. a ring-plane session that cannot leave its node.
		return fmt.Errorf("fed: MIG session %d on node %d: %s", s.vid, src.idx, resp.Err)
	}
	// The blob aliases the sticky connection's read buffer; it must
	// survive the connection teardown below.
	blob := append([]byte(nil), resp.Data...)
	r.dropBackendLocked(s, true)

	adp := transport.Request{Verb: "ADP", Data: blob}
	var lastErr error
	for attempt := 0; attempt <= len(r.backends); attempt++ {
		b, perr := r.place(footprint)
		if perr != nil {
			lastErr = perr
			break
		}
		conn, nc, derr := r.dialBackend(b)
		if derr != nil {
			r.unplace(b, footprint)
			r.markDead(b, derr)
			lastErr = derr
			continue
		}
		aresp, aerr := tripConn(conn, adp)
		if aerr != nil {
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			r.markDead(b, aerr)
			lastErr = aerr
			continue
		}
		if aresp.Status != "ACK" {
			nc.Close()
			conn.Release()
			r.unplace(b, footprint)
			lastErr = errors.New(aresp.Err)
			continue
		}
		s.attachLocked(b, aresp.Session, conn, nc)
		r.met.failovers.Inc()
		r.met.migratedBytes.Add(int64(len(blob)))
		if r.cfg.Log != nil {
			r.cfg.Log.Info("session migrated across nodes",
				"vsession", s.vid, "from-node", src.idx, "to-node", b.idx,
				"backend-session", aresp.Session, "blob-bytes", len(blob))
		}
		return nil
	}
	// Double fault: every target vanished between the pre-check and the
	// adopt. The extracted state cannot go back to the draining source
	// (its admission refuses), so the last resort is a bare re-creation —
	// the client re-stages and replays, losing only in-flight results.
	if err := r.recreateLocked(s); err != nil {
		return fmt.Errorf("fed: session %d stranded mid-migration (adopt: %v): %w", s.vid, lastErr, err)
	}
	return nil
}

// evacuate drains every session off a backend in the background,
// normally triggered by the poller seeing the node advertise itself
// unplaceable (whole-node SIGUSR1 drain). Verbs touching a session
// meanwhile migrate it themselves first — s.mu arbitrates.
func (r *Router) evacuate(b *backend) {
	r.mu.Lock()
	victims := make([]*fedSession, 0, len(r.sessions))
	for _, s := range r.sessions {
		victims = append(victims, s)
	}
	r.mu.Unlock()
	moved := 0
	for _, s := range victims {
		s.mu.Lock()
		if !s.closed && s.b == b && s.conn != nil {
			if err := r.ensurePlacedLocked(s); err == nil && s.b != b {
				moved++
			}
		}
		s.mu.Unlock()
	}
	if moved > 0 && r.cfg.Log != nil {
		r.cfg.Log.Info("background evacuation finished", "node", b.idx, "moved", moved)
	}
}
