package fed

import (
	"net"
	"testing"

	"gpuvirt/internal/transport"
)

// TestWarmProxyHopZeroAlloc asserts the warm-hop acceptance criterion:
// once a session's sticky backend connection is up, proxying a verb —
// client frame in, id rewrite, pooled zero-copy frame to the backend,
// response back with the id restored — allocates nothing in the router.
func TestWarmProxyHopZeroAlloc(t *testing.T) {
	r, err := New(Config{Backends: []string{"inproc://alloc-fake"}})
	if err != nil {
		t.Fatal(err)
	}
	// The router is not Started: the backend is never dialed or polled.
	// Hand-wire a placed session to an in-memory echo peer standing in
	// for the backend daemon.
	routerEnd, backendEnd := net.Pipe()
	conn, peer := transport.NewConn(routerEnd), transport.NewConn(backendEnd)
	t.Cleanup(func() { conn.Close(); peer.Close() })
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		for {
			req, err := peer.ReadRequest()
			if err != nil {
				select {
				case <-done:
				default:
					t.Error(err)
				}
				return
			}
			// Respond with the request's payload aliasing the read buffer,
			// exactly as the daemon's zero-copy RCV path does.
			if err := peer.WriteResponse(transport.Response{Status: "ACK", Session: req.Session, Data: req.Data}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	cc := &clientConn{}
	s := &fedSession{vid: 1, owner: cc, staged: true, inB: 64 << 10, outB: 64 << 10}
	s.attachLocked(r.backends[0], 42, conn, routerEnd)
	r.sessions[1] = s

	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	hop := func() {
		resp, locked := r.serveVerb(transport.Request{Verb: "SND", Session: 1, Data: payload}, cc)
		if locked == nil {
			t.Fatal("hop did not return the locked session")
		}
		locked.mu.Unlock()
		if resp.Status != "ACK" || resp.Session != 1 || len(resp.Data) != len(payload) {
			t.Fatalf("hop came back %q session %d with %d bytes", resp.Status, resp.Session, len(resp.Data))
		}
	}
	for i := 0; i < 4; i++ {
		hop() // warm the framing pools and retained buffers
	}
	if allocs := testing.AllocsPerRun(50, hop); allocs > 0 {
		t.Fatalf("warm proxy hop allocates %.1f times per round trip, want 0", allocs)
	}
}
